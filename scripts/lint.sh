#!/usr/bin/env bash
# Lint gate over src/ bench/ examples/ tests/ and scripts/.
#
# Three layers, cheapest first:
#   1. Repo-specific grep rules (always run; no tools needed):
#        - no lenient ArgParser getters (PR 3 made ingestion strict: use
#          get_*_or_fail / require_* so malformed flags fail loudly),
#        - no raw assert() (use BACP_ASSERT / BACP_DASSERT, which stay
#          active in Release and print context),
#        - no direct strtoull/strtol/atoi/atol number parsing outside
#          common/parse.cpp (the one audited conversion site; everything
#          else goes through common::parse_u64/parse_double).
#      A line may opt out with a NOLINT marker carrying a reason.
#   2. clang-tidy with the checked-in .clang-tidy, if installed.
#   3. shellcheck over scripts/*.sh, if installed.
#
# Usage:
#   scripts/lint.sh                 # run what is available, skip the rest
#   scripts/lint.sh --require-tools # missing clang-tidy/shellcheck is an
#                                   # error (CI mode)
#
# Exit status: 0 clean, 1 findings (or missing tools with --require-tools).

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

require_tools=0
if [[ "${1:-}" == "--require-tools" ]]; then
  require_tools=1
elif [[ -n "${1:-}" ]]; then
  echo "usage: scripts/lint.sh [--require-tools]" >&2
  exit 2
fi

fail=0
cxx_dirs=(src bench examples tests)

# --- Layer 1: grep rules ---------------------------------------------------

# Reports every line matching an ERE in the C++ tree (minus NOLINT'd lines)
# as a lint failure.
check_absent() {
  local label="$1"
  local pattern="$2"
  shift 2
  local matches
  matches="$(grep -rnE --include='*.cpp' --include='*.hpp' "$@" \
               -e "${pattern}" "${cxx_dirs[@]}" | grep -v 'NOLINT' || true)"
  if [[ -n "${matches}" ]]; then
    echo "lint: ${label}" >&2
    echo "${matches}" >&2
    echo >&2
    fail=1
  fi
}

# Lenient getters were removed when ingestion became strict; member-call
# shape so free functions named get_u64 elsewhere stay legal.
check_absent \
  "lenient ArgParser getter — use get_*_or_fail / require_* instead" \
  '(->|\.)get_(u64|i64|double|bool)\('

# Raw assert() compiles out under NDEBUG and prints no context; the BACP
# macros do neither. static_assert stays legal (leading '_' excluded).
check_absent \
  "raw assert() — use BACP_ASSERT / BACP_DASSERT instead" \
  '(^|[^_[:alnum:]])assert[[:space:]]*\('

# All textual number parsing goes through common/parse.cpp, the one place
# that rejects negatives, overflow and trailing junk.
check_absent \
  "direct strto*/ato* call — use common::parse_u64 / parse_double instead" \
  '(^|[^_[:alnum:]])(strtoull|strtoul|strtoll|strtol|atoi|atol|atoll)[[:space:]]*\(' \
  --exclude=parse.cpp

# Hash-table iteration order is unspecified and leaks straight into
# artifacts (the sched tenant tables and every report are iteration-ordered).
# Deterministic code uses common::FlatHash64 or std::map; the flat-hash unit
# test keeps std::unordered_map as its reference oracle.
check_absent \
  "std::unordered_* include — use common::FlatHash64 or std::map instead" \
  '#include <unordered_' \
  --exclude=test_flat_hash.cpp

# --- Layer 2: clang-tidy ---------------------------------------------------

if command -v clang-tidy > /dev/null 2>&1; then
  lint_build="${repo_root}/build/lint"
  if [[ ! -f "${lint_build}/compile_commands.json" ]]; then
    cmake -B "${lint_build}" -S "${repo_root}" \
      -DCMAKE_BUILD_TYPE=Release -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DBACP_AUDIT=ON > /dev/null
  fi
  mapfile -t tidy_sources < <(find "${cxx_dirs[@]}" -name '*.cpp' | sort)
  echo "clang-tidy over ${#tidy_sources[@]} files..."
  if ! clang-tidy -p "${lint_build}" --quiet "${tidy_sources[@]}"; then
    echo "lint: clang-tidy reported findings" >&2
    fail=1
  fi
else
  echo "lint: clang-tidy not installed — SKIPPING the clang-tidy layer" >&2
  if [[ "${require_tools}" -eq 1 ]]; then fail=1; fi
fi

# --- Layer 3: shellcheck ---------------------------------------------------

if command -v shellcheck > /dev/null 2>&1; then
  if ! shellcheck scripts/*.sh; then
    echo "lint: shellcheck reported findings" >&2
    fail=1
  fi
else
  echo "lint: shellcheck not installed — SKIPPING the shellcheck layer" >&2
  if [[ "${require_tools}" -eq 1 ]]; then fail=1; fi
fi

if [[ "${fail}" -eq 0 ]]; then
  echo "lint: clean"
fi
exit "${fail}"
