#!/usr/bin/env bash
# Lint gate over src/ bench/ examples/ tests/ and scripts/.
#
# Layers, most precise first; every finding is printed with the layer that
# caught it (lint[ast] / lint[grep] / lint[grep-fallback]):
#   1. bacp-analyze (tools/bacp-analyze): token/AST-level repo checks —
#      determinism hazards (bacp-det-*), snapshot completeness
#      (bacp-snapshot-fields), audit coverage (bacp-audit-coverage), the
#      promoted bans (bacp-arg-lenient, bacp-raw-assert, bacp-raw-strtol)
#      and NOLINT hygiene (bacp-nolint-reason). Opt-outs require
#      `NOLINT(check-id): reason` — a bare marker is itself a finding.
#   2. Grep fallbacks for the promoted bans + NOLINT hygiene — run only
#      when the analyzer binary is missing, so a bare checkout still gates.
#      Structural greps with no AST equivalent (std::unordered_* includes)
#      always run.
#   3. clang-tidy with the checked-in .clang-tidy, if installed.
#   4. shellcheck over scripts/*.sh, if installed.
#
# Usage:
#   scripts/lint.sh                 # run what is available, skip the rest
#   scripts/lint.sh --require-tools # missing bacp-analyze/clang-tidy/
#                                   # shellcheck is an error (CI mode)
#
# The analyzer binary is searched in build*/tools/bacp-analyze/; override
# with BACP_ANALYZE=/path/to/bacp-analyze.
#
# Exit status: 0 clean, 1 findings (or missing tools with --require-tools).

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

require_tools=0
if [[ "${1:-}" == "--require-tools" ]]; then
  require_tools=1
elif [[ -n "${1:-}" ]]; then
  echo "usage: scripts/lint.sh [--require-tools]" >&2
  exit 2
fi

fail=0
cxx_dirs=(src bench examples tests)

# --- Layer 1: bacp-analyze (AST) -------------------------------------------

analyzer=""
for candidate in "${BACP_ANALYZE:-}" build/*/tools/bacp-analyze/bacp-analyze; do
  if [[ -n "${candidate}" && -x "${candidate}" ]]; then
    analyzer="${candidate}"
    break
  fi
done

ast_ran=0
if [[ -n "${analyzer}" ]]; then
  set +e
  ast_output="$("${analyzer}" --root "${repo_root}" 2>/dev/null)"
  ast_status=$?
  set -e
  case "${ast_status}" in
    0)
      ast_ran=1
      echo "lint[ast]: bacp-analyze clean (${analyzer})"
      ;;
    1)
      ast_ran=1
      echo "lint[ast]: bacp-analyze findings (caught by the AST layer):" >&2
      sed 's/^/lint[ast]: /' <<< "${ast_output}" >&2
      echo >&2
      fail=1
      ;;
    *)
      echo "lint: bacp-analyze failed (exit ${ast_status}) — falling back to greps" >&2
      ;;
  esac
else
  echo "lint: bacp-analyze not built — grep fallbacks cover the promoted bans" >&2
fi
if [[ "${ast_ran}" -eq 0 && "${require_tools}" -eq 1 ]]; then
  echo "lint: --require-tools set and the AST layer did not run" >&2
  fail=1
fi

# --- Layer 2: grep rules ---------------------------------------------------

# Reports every line matching an ERE in the C++ tree (minus NOLINT'd lines)
# as a lint failure, tagged with the layer name in `tag`.
check_absent() {
  local tag="$1"
  local label="$2"
  local pattern="$3"
  shift 3
  local matches
  matches="$(grep -rnE --include='*.cpp' --include='*.hpp' "$@" \
               -e "${pattern}" "${cxx_dirs[@]}" | grep -v 'NOLINT' || true)"
  if [[ -n "${matches}" ]]; then
    echo "lint[${tag}]: ${label}" >&2
    sed "s/^/lint[${tag}]: /" <<< "${matches}" >&2
    echo >&2
    fail=1
  fi
}

if [[ "${ast_ran}" -eq 0 ]]; then
  # Promoted bans: AST-level as bacp-arg-lenient / bacp-raw-assert /
  # bacp-raw-strtol; these greps are the no-tools fallback.
  check_absent grep-fallback \
    "lenient ArgParser getter — use get_*_or_fail / require_* instead (bacp-arg-lenient)" \
    '(->|\.)get_(u64|i64|double|bool)\('

  check_absent grep-fallback \
    "raw assert() — use BACP_ASSERT / BACP_DASSERT instead (bacp-raw-assert)" \
    '(^|[^_[:alnum:]])assert[[:space:]]*\(' \
    --exclude=assert.hpp

  check_absent grep-fallback \
    "direct strto*/ato* call — use common::parse_u64 / parse_double instead (bacp-raw-strtol)" \
    '(^|[^_[:alnum:]])(strtoull|strtoul|strtoll|strtol|atoi|atol|atoll)[[:space:]]*\(' \
    --exclude=parse.cpp

  # NOLINT hygiene fallback (bacp-nolint-reason): a marker must name its
  # check ids and carry a ": reason" suffix; bare markers suppress nothing.
  bare_nolint="$(grep -rnE --include='*.cpp' --include='*.hpp' \
                   -e 'NOLINT' "${cxx_dirs[@]}" \
                 | grep -vE 'NOLINT(NEXTLINE)?\([a-zA-Z0-9_,-]+\): [^ ]' || true)"
  if [[ -n "${bare_nolint}" ]]; then
    echo "lint[grep-fallback]: NOLINT without '(check-id): reason' (bacp-nolint-reason)" >&2
    sed 's/^/lint[grep-fallback]: /' <<< "${bare_nolint}" >&2
    echo >&2
    fail=1
  fi
fi

# Hash-table iteration order is unspecified and leaks straight into
# artifacts (the sched tenant tables and every report are iteration-ordered).
# Deterministic code uses common::FlatHash64 or std::map; the flat-hash unit
# test keeps std::unordered_map as its reference oracle. Grep-only rule —
# include bans are textual, not structural.
check_absent grep \
  "std::unordered_* include — use common::FlatHash64 or std::map instead" \
  '#include <unordered_' \
  --exclude=test_flat_hash.cpp

# --- Layer 3: clang-tidy ---------------------------------------------------

if command -v clang-tidy > /dev/null 2>&1; then
  lint_build="${repo_root}/build/lint"
  if [[ ! -f "${lint_build}/compile_commands.json" ]]; then
    cmake -B "${lint_build}" -S "${repo_root}" \
      -DCMAKE_BUILD_TYPE=Release -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DBACP_AUDIT=ON > /dev/null
  fi
  mapfile -t tidy_sources < <(find "${cxx_dirs[@]}" -name '*.cpp' | sort)
  echo "clang-tidy over ${#tidy_sources[@]} files..."
  if ! clang-tidy -p "${lint_build}" --quiet "${tidy_sources[@]}"; then
    echo "lint[clang-tidy]: clang-tidy reported findings" >&2
    fail=1
  fi
else
  echo "lint: clang-tidy not installed — SKIPPING the clang-tidy layer" >&2
  if [[ "${require_tools}" -eq 1 ]]; then fail=1; fi
fi

# --- Layer 4: shellcheck ---------------------------------------------------

if command -v shellcheck > /dev/null 2>&1; then
  if ! shellcheck scripts/*.sh tools/bacp-analyze/check_fixture.sh; then
    echo "lint[shellcheck]: shellcheck reported findings" >&2
    fail=1
  fi
else
  echo "lint: shellcheck not installed — SKIPPING the shellcheck layer" >&2
  if [[ "${require_tools}" -eq 1 ]]; then fail=1; fi
fi

if [[ "${fail}" -eq 0 ]]; then
  echo "lint: clean"
fi
exit "${fail}"
