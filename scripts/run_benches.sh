#!/usr/bin/env bash
# Runs every bench binary and captures its structured JSON artifact into
# bench/out/<name>.json (plus the console output on the terminal). The JSON
# files are schema-stable (see src/obs/report.hpp) and carry each bench's
# headline metrics, so successive runs can be diffed or trended.
#
# Usage:
#   scripts/run_benches.sh [build-dir]
#
# Default build-dir: build/release if it exists, else build. Scale knobs
# (BACP_MC_TRIALS, BACP_SIM_INSTR, ...) are honored by the benches as
# fallbacks for their flags.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-}"
if [[ -z "${build_dir}" ]]; then
  if [[ -d "${repo_root}/build/release" ]]; then
    build_dir="${repo_root}/build/release"
  else
    build_dir="${repo_root}/build"
  fi
fi
bench_dir="${build_dir}/bench"
out_dir="${repo_root}/bench/out"

if [[ ! -d "${bench_dir}" ]]; then
  echo "error: ${bench_dir} not found — configure and build first:" >&2
  echo "  cmake --preset release && cmake --build --preset release" >&2
  exit 1
fi

mkdir -p "${out_dir}"

# Provenance for the perf trajectory: every JSON artifact records which
# build preset produced it and at which commit (obs::Report::emit appends
# BACP_BENCH_META pairs to the JSON "meta" object). The preset is inferred
# from the build directory name (build/<preset>, as CMakePresets.json lays
# them out).
preset="$(basename "${build_dir}")"
if [[ "${preset}" == "build" ]]; then preset="default"; fi
git_sha="$(git -C "${repo_root}" rev-parse --short HEAD 2>/dev/null || echo unknown)"
export BACP_BENCH_META="preset=${preset},git_sha=${git_sha}"

benches=(
  bench_fig2_msa_histogram
  bench_fig3_miss_curves
  bench_fig7_monte_carlo
  bench_fig8_miss_rate
  bench_fig9_cpi
  bench_table1_config
  bench_table2_overhead
  bench_table3_assignments
  bench_ablation_adaptation
  bench_ablation_aggregation
  bench_ablation_epoch_length
  bench_ablation_maxcap
  bench_ablation_policies
  bench_ablation_profiler_accuracy
  bench_micro_components
  bench_perf_throughput
  bench_sched_churn
  bench_trial_throughput
)

failed=0
for bench in "${benches[@]}"; do
  binary="${bench_dir}/${bench}"
  if [[ ! -x "${binary}" ]]; then
    echo "skip: ${bench} (not built)" >&2
    continue
  fi
  echo "=== ${bench} ==="
  if ! "${binary}" --json-out="${out_dir}/${bench}.json"; then
    echo "FAILED: ${bench}" >&2
    failed=1
  fi
  echo
done

echo "JSON artifacts in ${out_dir}:"
ls -1 "${out_dir}"
exit "${failed}"
