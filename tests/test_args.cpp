#include "common/args.hpp"

#include <gtest/gtest.h>

namespace bacp::common {
namespace {

ArgParser make_parser() {
  return ArgParser({{"trials=", "number of trials"},
                    {"policy=", "policy name"},
                    {"scale=", "scale factor"},
                    {"delta=", "signed adjustment"},
                    {"strict=", "boolean knob"},
                    {"verbose", "chatty output"}});
}

ArgParser parsed(std::vector<const char*> argv) {
  auto parser = make_parser();
  argv.insert(argv.begin(), "prog");
  EXPECT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
  return parser;
}

TEST(ArgParser, ParsesEqualsForm) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--trials=42", "--policy=bank-aware"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_EQ(parser.get_u64_or_fail("trials", 0), 42u);
  EXPECT_EQ(parser.get("policy", ""), "bank-aware");
}

TEST(ArgParser, ParsesSpaceForm) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--trials", "7"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_EQ(parser.get_u64_or_fail("trials", 0), 7u);
}

TEST(ArgParser, BooleanFlag) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(parser.parse(2, argv));
  EXPECT_TRUE(parser.has("verbose"));
  EXPECT_FALSE(parser.has("trials"));
}

TEST(ArgParser, PositionalArguments) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "mcf", "--trials=1", "art"};
  ASSERT_TRUE(parser.parse(4, argv));
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "mcf");
  EXPECT_EQ(parser.positional()[1], "art");
}

TEST(ArgParser, UnknownFlagFails) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(parser.parse(2, argv));
  EXPECT_NE(parser.error().find("bogus"), std::string::npos);
}

TEST(ArgParser, MissingValueFails) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--trials"};
  EXPECT_FALSE(parser.parse(2, argv));
}

TEST(ArgParser, ValueOnBooleanFails) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--verbose=1"};
  EXPECT_FALSE(parser.parse(2, argv));
}

TEST(ArgParser, AbsentFlagUsesFallback) {
  auto parser = parsed({});
  EXPECT_EQ(parser.get_u64_or_fail("trials", 9), 9u);
  EXPECT_EQ(parser.get_i64_or_fail("delta", -3), -3);
  EXPECT_DOUBLE_EQ(parser.get_double_or_fail("scale", 1.25), 1.25);
  EXPECT_TRUE(parser.get_bool_or_fail("strict", true));
}

TEST(ArgParser, StrictTypedAccess) {
  auto parser =
      parsed({"--trials=42", "--delta=-3", "--scale=1.5", "--strict=false"});
  EXPECT_EQ(parser.get_u64_or_fail("trials", 0), 42u);
  EXPECT_EQ(parser.get_i64_or_fail("delta", 0), -3);
  EXPECT_DOUBLE_EQ(parser.get_double_or_fail("scale", 0.0), 1.5);
  EXPECT_FALSE(parser.get_bool_or_fail("strict", true));
  EXPECT_EQ(parser.require_u64("trials"), 42u);
  EXPECT_DOUBLE_EQ(parser.require_double("scale"), 1.5);
  EXPECT_EQ(parser.require_string("strict"), "false");
}

// The strict accessors exit(2) with a message naming the flag — the loud
// boundary the ingestion layer guarantees. Each malformed value is a death
// test asserting both the exit code and that the message names the flag.

using ArgParserDeath = ::testing::Test;

TEST(ArgParserDeath, TrailingGarbageNamesFlag) {
  auto parser = parsed({"--trials=10k"});
  EXPECT_EXIT(parser.get_u64_or_fail("trials", 0), ::testing::ExitedWithCode(2),
              "invalid value '10k' for --trials");
}

TEST(ArgParserDeath, NegativeUnsignedNamesFlag) {
  auto parser = parsed({"--trials=-1"});
  EXPECT_EXIT(parser.get_u64_or_fail("trials", 0), ::testing::ExitedWithCode(2),
              "--trials.*negative");
}

TEST(ArgParserDeath, OverflowIsRejectedNotSaturated) {
  auto parser = parsed({"--trials=99999999999999999999"});
  EXPECT_EXIT(parser.get_u64_or_fail("trials", 0), ::testing::ExitedWithCode(2),
              "--trials.*out of range");
}

TEST(ArgParserDeath, MalformedDoubleNamesFlag) {
  auto parser = parsed({"--scale=x1.5"});
  EXPECT_EXIT(parser.get_double_or_fail("scale", 0.0), ::testing::ExitedWithCode(2),
              "invalid value 'x1.5' for --scale");
}

TEST(ArgParserDeath, NonFiniteDoubleIsRejected) {
  auto parser = parsed({"--scale=inf"});
  EXPECT_EXIT(parser.get_double_or_fail("scale", 0.0), ::testing::ExitedWithCode(2),
              "--scale.*non-finite");
}

TEST(ArgParserDeath, MalformedBoolNamesFlag) {
  auto parser = parsed({"--strict=maybe"});
  EXPECT_EXIT(parser.get_bool_or_fail("strict", false), ::testing::ExitedWithCode(2),
              "invalid value 'maybe' for --strict");
}

TEST(ArgParserDeath, MalformedSignedNamesFlag) {
  auto parser = parsed({"--delta=--2"});
  EXPECT_EXIT(parser.get_i64_or_fail("delta", 0), ::testing::ExitedWithCode(2),
              "invalid value '--2' for --delta");
}

TEST(ArgParserDeath, RequireMissingFlagFails) {
  auto parser = parsed({});
  EXPECT_EXIT(parser.require_u64("trials"), ::testing::ExitedWithCode(2),
              "missing required flag --trials");
  EXPECT_EXIT(parser.require_string("policy"), ::testing::ExitedWithCode(2),
              "missing required flag --policy");
}

TEST(ArgParserDeath, RequireMalformedFlagFails) {
  auto parser = parsed({"--trials=1e3"});
  EXPECT_EXIT(parser.require_u64("trials"), ::testing::ExitedWithCode(2),
              "invalid value '1e3' for --trials");
}

TEST(ArgParserDeath, FatalMessageIncludesUsageText) {
  auto parser = parsed({"--trials=nope"});
  EXPECT_EXIT(parser.get_u64_or_fail("trials", 0), ::testing::ExitedWithCode(2),
              "usage: prog");
}

TEST(ArgParser, HelpListsFlags) {
  const auto help = make_parser().help("prog");
  EXPECT_NE(help.find("--trials=<value>"), std::string::npos);
  EXPECT_NE(help.find("--verbose"), std::string::npos);
  EXPECT_EQ(help.find("--verbose=<value>"), std::string::npos);
}

}  // namespace
}  // namespace bacp::common
