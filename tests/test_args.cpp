#include "common/args.hpp"

#include <gtest/gtest.h>

namespace bacp::common {
namespace {

ArgParser make_parser() {
  return ArgParser({{"trials=", "number of trials"},
                    {"policy=", "policy name"},
                    {"scale=", "scale factor"},
                    {"verbose", "chatty output"}});
}

const char* argv_of(const char* s) { return s; }

TEST(ArgParser, ParsesEqualsForm) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--trials=42", "--policy=bank-aware"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_EQ(parser.get_u64("trials", 0), 42u);
  EXPECT_EQ(parser.get("policy", ""), "bank-aware");
}

TEST(ArgParser, ParsesSpaceForm) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--trials", "7"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_EQ(parser.get_u64("trials", 0), 7u);
}

TEST(ArgParser, BooleanFlag) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(parser.parse(2, argv));
  EXPECT_TRUE(parser.has("verbose"));
  EXPECT_FALSE(parser.has("trials"));
}

TEST(ArgParser, PositionalArguments) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "mcf", "--trials=1", "art"};
  ASSERT_TRUE(parser.parse(4, argv));
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "mcf");
  EXPECT_EQ(parser.positional()[1], "art");
}

TEST(ArgParser, UnknownFlagFails) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(parser.parse(2, argv));
  EXPECT_NE(parser.error().find("bogus"), std::string::npos);
}

TEST(ArgParser, MissingValueFails) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--trials"};
  EXPECT_FALSE(parser.parse(2, argv));
}

TEST(ArgParser, ValueOnBooleanFails) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--verbose=1"};
  EXPECT_FALSE(parser.parse(2, argv));
}

TEST(ArgParser, MalformedNumberFallsBack) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--trials=12x", "--scale=1.5"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_EQ(parser.get_u64("trials", 9), 9u);
  EXPECT_DOUBLE_EQ(parser.get_double("scale", 0.0), 1.5);
}

TEST(ArgParser, HelpListsFlags) {
  const auto help = make_parser().help("prog");
  EXPECT_NE(help.find("--trials=<value>"), std::string::npos);
  EXPECT_NE(help.find("--verbose"), std::string::npos);
  EXPECT_EQ(help.find("--verbose=<value>"), std::string::npos);
  (void)argv_of;
}

}  // namespace
}  // namespace bacp::common
