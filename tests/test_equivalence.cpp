// Equivalence suite for the hot-path data structures: every optimized
// component is replayed against a deliberately naive reference
// formulation on randomized streams and must agree bit-for-bit.
//
//   - cache::SetAssocCache (packed bitmask metadata + intrusive byte-wide
//     LRU links) vs. a vector<Line> + per-set `vector<WayIndex> lru_order`
//     cache, including the known-way fast paths (touch_hit, mark_dirty_at,
//     invalidate_at) and mid-stream repartitions;
//   - msa::StackProfiler (flat stacks + memmove move-to-front) vs. a
//     vector-of-vectors Mattson stack, across sampling factors and tag
//     widths;
//   - trace::SyntheticTraceGenerator (ring-buffer recency lists) vs. a
//     vector-of-vectors erase/insert formulation, including a mid-stream
//     model switch;
//   - core::CoreTimer (min-heap on done_at, in-place window scans) vs. a
//     multiset-ordered formulation of the original pop-loop semantics;
//   - nuca::DnucaCache residency index (exact {bank, way}) vs. brute-force
//     probes over every bank.
//
// Streams are >= 10^6 operations in total so LRU wrap-around, stack
// overflow, ring wrap and hash-table growth/erase churn are all exercised.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <optional>
#include <set>
#include <vector>

#include "audit/audit.hpp"
#include "cache/partial_tag.hpp"
#include "cache/set_assoc_cache.hpp"
#include "common/rng.hpp"
#include "core/core_timer.hpp"
#include "msa/stack_profiler.hpp"
#include "nuca/dnuca_cache.hpp"
#include "partition/static_policies.hpp"
#include "sim/system.hpp"
#include "sim/system_config.hpp"
#include "trace/mix.hpp"
#include "trace/spec2000.hpp"
#include "trace/synthetic.hpp"

namespace bacp {
namespace {

// ---------------------------------------------------------------------------
// Reference set-associative cache: vector<Line> per set plus an explicit
// MRU-first `lru_order` vector, shuffled with erase/insert. Matches the
// documented semantics of cache::SetAssocCache operation for operation.
// ---------------------------------------------------------------------------

class RefCache {
 public:
  struct AccessResult {
    bool hit = false;
    WayIndex way = 0;
  };
  struct FillOutcome {
    WayIndex way = 0;
    std::optional<cache::Line> evicted;
  };

  explicit RefCache(const cache::SetAssocCache::Config& config)
      : config_(config),
        lines_(std::size_t{config.num_sets} * config.ways),
        lru_(config.num_sets),
        way_masks_(config.ways, ~CoreMask{0}),
        hits_(config.num_cores, 0),
        misses_(config.num_cores, 0),
        evictions_(config.num_cores, 0) {
    for (auto& order : lru_) {
      order.resize(config_.ways);
      std::iota(order.begin(), order.end(), 0u);
    }
  }

  AccessResult access(BlockAddress block, CoreId core, bool is_write) {
    const std::uint32_t set = set_of(block);
    const int way = find_way(set, block);
    if (way < 0) {
      ++misses_[core];
      return {false, 0};
    }
    ++hits_[core];
    touch_mru(set, static_cast<WayIndex>(way));
    if (is_write) line(set, static_cast<WayIndex>(way)).dirty = true;
    return {true, static_cast<WayIndex>(way)};
  }

  FillOutcome fill(BlockAddress block, CoreId core, bool dirty) {
    const std::uint32_t set = set_of(block);
    WayIndex victim = config_.ways;  // sentinel
    for (WayIndex way = 0; way < config_.ways; ++way) {
      if (owned(core, way) && !line(set, way).valid) {
        victim = way;
        break;
      }
    }
    if (victim == config_.ways) {
      const auto& order = lru_[set];
      for (auto it = order.rbegin(); it != order.rend(); ++it) {
        if (owned(core, *it)) {
          victim = *it;
          break;
        }
      }
    }
    FillOutcome outcome;
    outcome.way = victim;
    cache::Line& slot = line(set, victim);
    if (slot.valid) {
      outcome.evicted = slot;
      ++evictions_[core];
    }
    slot.block = block;
    slot.allocator = core;
    slot.valid = true;
    slot.dirty = dirty;
    touch_mru(set, victim);
    return outcome;
  }

  bool mark_dirty(BlockAddress block) {
    const std::uint32_t set = set_of(block);
    const int way = find_way(set, block);
    if (way < 0) return false;
    line(set, static_cast<WayIndex>(way)).dirty = true;
    return true;
  }

  std::optional<cache::Line> invalidate(BlockAddress block) {
    const std::uint32_t set = set_of(block);
    const int way = find_way(set, block);
    if (way < 0) return std::nullopt;
    cache::Line& slot = line(set, static_cast<WayIndex>(way));
    const cache::Line copy = slot;
    slot.valid = false;
    slot.dirty = false;
    slot.allocator = kInvalidCore;
    demote_lru(set, static_cast<WayIndex>(way));
    return copy;
  }

  std::optional<cache::Line> lru_line_for_core(BlockAddress block, CoreId core) const {
    const std::uint32_t set = set_of(block);
    const auto& order = lru_[set];
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const cache::Line& slot = lines_[std::size_t{set} * config_.ways + *it];
      if (owned(core, *it) && slot.valid) return slot;
    }
    return std::nullopt;
  }

  void set_way_partition(const std::vector<CoreMask>& masks) { way_masks_ = masks; }

  bool probe(BlockAddress block) const {
    return find_way(set_of(block), block) >= 0;
  }

  std::optional<WayIndex> way_of(BlockAddress block) const {
    const int way = find_way(set_of(block), block);
    if (way < 0) return std::nullopt;
    return static_cast<WayIndex>(way);
  }

  std::uint64_t valid_lines() const {
    std::uint64_t count = 0;
    for (const auto& slot : lines_) {
      if (slot.valid) ++count;
    }
    return count;
  }

  const std::vector<std::uint64_t>& hits() const { return hits_; }
  const std::vector<std::uint64_t>& misses() const { return misses_; }
  const std::vector<std::uint64_t>& evictions() const { return evictions_; }

 private:
  std::uint32_t set_of(BlockAddress block) const {
    return static_cast<std::uint32_t>(block & (config_.num_sets - 1));
  }
  cache::Line& line(std::uint32_t set, WayIndex way) {
    return lines_[std::size_t{set} * config_.ways + way];
  }
  bool owned(CoreId core, WayIndex way) const {
    return (way_masks_[way] & core_bit(core)) != 0;
  }
  int find_way(std::uint32_t set, BlockAddress block) const {
    for (WayIndex way = 0; way < config_.ways; ++way) {
      const cache::Line& slot = lines_[std::size_t{set} * config_.ways + way];
      if (slot.valid && slot.block == block) return static_cast<int>(way);
    }
    return -1;
  }
  void touch_mru(std::uint32_t set, WayIndex way) {
    auto& order = lru_[set];
    order.erase(std::find(order.begin(), order.end(), way));
    order.insert(order.begin(), way);
  }
  void demote_lru(std::uint32_t set, WayIndex way) {
    auto& order = lru_[set];
    order.erase(std::find(order.begin(), order.end(), way));
    order.push_back(way);
  }

  cache::SetAssocCache::Config config_;
  std::vector<cache::Line> lines_;
  std::vector<std::vector<WayIndex>> lru_;
  std::vector<CoreMask> way_masks_;
  std::vector<std::uint64_t> hits_;
  std::vector<std::uint64_t> misses_;
  std::vector<std::uint64_t> evictions_;
};

/// Random per-way masks where every way has an owner and every core owns
/// at least one way (the fill precondition).
std::vector<CoreMask> random_partition(common::Rng& rng, WayCount ways,
                                       std::uint32_t num_cores) {
  const CoreMask all = num_cores >= 32 ? ~CoreMask{0}
                                       : ((CoreMask{1} << num_cores) - 1);
  std::vector<CoreMask> masks(ways);
  for (auto& mask : masks) {
    mask = static_cast<CoreMask>(rng.next_u64()) & all;
    if (mask == 0) mask = all;
  }
  for (CoreId core = 0; core < num_cores; ++core) {
    bool owns = false;
    for (const CoreMask mask : masks) {
      owns = owns || (mask & core_bit(core)) != 0;
    }
    if (!owns) masks[rng.next_below(ways)] |= core_bit(core);
  }
  return masks;
}

void replay_cache(const cache::SetAssocCache::Config& config, std::uint64_t seed,
                  std::size_t ops) {
  cache::SetAssocCache real(config);
  RefCache ref(config);
  common::Rng rng(seed);
  std::vector<BlockAddress> pool;

  for (std::size_t i = 0; i < ops; ++i) {
    const std::uint64_t op = rng.next_below(100);
    const CoreId core = static_cast<CoreId>(rng.next_below(config.num_cores));
    BlockAddress block;
    if (!pool.empty() && rng.next_bool(0.7)) {
      block = pool[rng.next_below(pool.size())];
    } else {
      block = rng.next_u64() & 0x3FFF;  // small space => frequent reuse
      pool.push_back(block);
    }
    const bool is_write = rng.next_bool(0.3);

    if (op < 70) {
      // Access, filling on a miss — the L2 service pattern.
      const auto expected = ref.access(block, core, is_write);
      if (expected.hit && i % 2 == 0) {
        // Exercise the known-way fast path on alternating hits.
        real.touch_hit(block, expected.way, core, is_write);
      } else {
        const auto got = real.access(block, core, is_write);
        ASSERT_EQ(got.hit, expected.hit) << "op " << i;
        if (got.hit) {
          ASSERT_EQ(got.way, expected.way) << "op " << i;
        }
      }
      if (!expected.hit) {
        const auto got = real.fill(block, core, is_write);
        const auto want = ref.fill(block, core, is_write);
        ASSERT_EQ(got.way, want.way) << "op " << i;
        ASSERT_EQ(got.evicted.has_value(), want.evicted.has_value()) << "op " << i;
        if (got.evicted) {
          ASSERT_EQ(got.evicted->block, want.evicted->block) << "op " << i;
          ASSERT_EQ(got.evicted->allocator, want.evicted->allocator) << "op " << i;
          ASSERT_EQ(got.evicted->dirty, want.evicted->dirty) << "op " << i;
        }
      }
    } else if (op < 78) {
      const auto way = ref.way_of(block);
      if (way.has_value() && i % 2 == 0) {
        real.mark_dirty_at(block, *way);
        ASSERT_TRUE(ref.mark_dirty(block)) << "op " << i;
      } else {
        ASSERT_EQ(real.mark_dirty(block), ref.mark_dirty(block)) << "op " << i;
      }
    } else if (op < 86) {
      const auto way = ref.way_of(block);
      const auto want = ref.invalidate(block);
      if (way.has_value() && i % 2 == 0) {
        const auto got = real.invalidate_at(block, *way);
        ASSERT_EQ(got.block, want->block) << "op " << i;
        ASSERT_EQ(got.allocator, want->allocator) << "op " << i;
        ASSERT_EQ(got.dirty, want->dirty) << "op " << i;
      } else {
        const auto got = real.invalidate(block);
        ASSERT_EQ(got.has_value(), want.has_value()) << "op " << i;
        if (got) {
          ASSERT_EQ(got->block, want->block) << "op " << i;
          ASSERT_EQ(got->dirty, want->dirty) << "op " << i;
        }
      }
    } else if (op < 94) {
      const auto got = real.lru_line_for_core(block, core);
      const auto want = ref.lru_line_for_core(block, core);
      ASSERT_EQ(got.has_value(), want.has_value()) << "op " << i;
      if (got) {
        ASSERT_EQ(got->block, want->block) << "op " << i;
      }
    } else {
      const auto masks = random_partition(rng, config.ways, config.num_cores);
      real.set_way_partition(masks);
      ref.set_way_partition(masks);
    }

    if (i % 10'000 == 9'999) {
      // Equivalence with the reference proves observable behavior; the
      // structural audit proves the internals (LRU byte-links, bitmasks,
      // allocator columns) that equivalence alone cannot see.
      const auto report = audit::audit_cache(real);
      ASSERT_TRUE(report.ok()) << "op " << i << ": " << report.to_string();
    }
  }
  {
    const auto report = audit::audit_cache(real);
    ASSERT_TRUE(report.ok()) << report.to_string();
  }

  ASSERT_EQ(real.valid_lines(), ref.valid_lines());
  for (CoreId core = 0; core < config.num_cores; ++core) {
    ASSERT_EQ(real.stats().hits[core], ref.hits()[core]) << "core " << core;
    ASSERT_EQ(real.stats().misses[core], ref.misses()[core]) << "core " << core;
    ASSERT_EQ(real.stats().evictions[core], ref.evictions()[core]) << "core " << core;
  }
  for (const BlockAddress block : pool) {
    ASSERT_EQ(real.probe(block), ref.probe(block)) << "block " << block;
  }
}

TEST(CacheEquivalence, DirectMappedSingleCore) {
  replay_cache({"dm", 64, 1, 1}, 0xC0FFEE, 120'000);
}

TEST(CacheEquivalence, FourWayFourCores) {
  replay_cache({"4w", 64, 4, 4}, 0xBEEF, 150'000);
}

TEST(CacheEquivalence, EightWayEightCoresRepartitioned) {
  replay_cache({"8w", 32, 8, 8}, 0xFACADE, 150'000);
}

TEST(CacheEquivalence, WideSixteenWay) {
  replay_cache({"16w", 16, 16, 4}, 0x5EED, 120'000);
}

TEST(CacheEquivalence, LongAuditedReplay) {
  // Pushes the suite's structurally-audited replay volume past 1e6 ops:
  // 540k across the four configs above + 400k here + 200k in the DNUCA
  // residency replays below, every slice audited at periodic checkpoints.
  replay_cache({"8w-long", 64, 8, 8}, 0xAD17, 400'000);
}

// ---------------------------------------------------------------------------
// Reference Mattson stack profiler: per-sampled-set vector stacks moved to
// front with erase/insert.
// ---------------------------------------------------------------------------

class RefProfiler {
 public:
  explicit RefProfiler(const msa::ProfilerConfig& config)
      : config_(config),
        set_shift_(log2_floor(config.num_sets)),
        stacks_((config.num_sets + config.set_sampling - 1) / config.set_sampling),
        bins_(std::size_t{config.profiled_ways} + 1, 0) {}

  void observe(BlockAddress block) {
    ++observed_;
    const auto set = static_cast<std::uint32_t>(block & (config_.num_sets - 1));
    if (set % config_.set_sampling != 0) return;
    ++sampled_;
    const std::uint64_t entry =
        config_.partial_tag_bits == 0
            ? (block >> set_shift_)
            : static_cast<std::uint64_t>(
                  cache::partial_tag(block >> set_shift_, config_.partial_tag_bits));
    auto& stack = stacks_[set / config_.set_sampling];
    const auto found = std::find(stack.begin(), stack.end(), entry);
    if (found != stack.end()) {
      ++bins_[static_cast<std::size_t>(found - stack.begin())];
      stack.erase(found);
    } else {
      ++bins_[config_.profiled_ways];
      if (stack.size() == config_.profiled_ways) stack.pop_back();
    }
    stack.insert(stack.begin(), entry);
  }

  void decay() {
    for (auto& bin : bins_) bin >>= 1;
  }

  const std::vector<std::uint64_t>& bins() const { return bins_; }
  std::uint64_t observed() const { return observed_; }
  std::uint64_t sampled() const { return sampled_; }

 private:
  msa::ProfilerConfig config_;
  std::uint32_t set_shift_;
  std::vector<std::vector<std::uint64_t>> stacks_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t observed_ = 0;
  std::uint64_t sampled_ = 0;
};

void replay_profiler(const msa::ProfilerConfig& config, std::uint64_t seed,
                     std::size_t ops) {
  msa::StackProfiler real(config);
  RefProfiler ref(config);
  common::Rng rng(seed);
  std::vector<BlockAddress> pool;
  for (std::size_t i = 0; i < ops; ++i) {
    BlockAddress block;
    if (!pool.empty() && rng.next_bool(0.75)) {
      block = pool[rng.next_below(pool.size())];
    } else {
      block = rng.next_u64() & 0xFFFFFF;
      pool.push_back(block);
    }
    real.observe(block);
    ref.observe(block);
    if (i % 50'000 == 49'999) {
      real.decay();
      ref.decay();
    }
  }
  ASSERT_EQ(real.observed_accesses(), ref.observed());
  ASSERT_EQ(real.sampled_accesses(), ref.sampled());
  const auto bins = real.histogram().bins();
  ASSERT_EQ(bins.size(), ref.bins().size());
  for (std::size_t bin = 0; bin < bins.size(); ++bin) {
    ASSERT_EQ(bins[bin], ref.bins()[bin]) << "bin " << bin;
  }
}

TEST(ProfilerEquivalence, FullSamplingFullTags) {
  msa::ProfilerConfig config;
  config.num_sets = 64;
  config.set_sampling = 1;
  config.partial_tag_bits = 0;
  config.profiled_ways = 16;
  replay_profiler(config, 0xAB1E, 150'000);
}

TEST(ProfilerEquivalence, SampledPartialTags) {
  msa::ProfilerConfig config;
  config.num_sets = 256;
  config.set_sampling = 8;
  config.partial_tag_bits = 12;
  config.profiled_ways = 24;
  replay_profiler(config, 0xD00D, 150'000);
}

TEST(ProfilerEquivalence, PaperScaleSampling) {
  msa::ProfilerConfig config;  // defaults: 2048 sets, 1-in-32, 12b tags, 72 ways
  replay_profiler(config, 0x90210, 150'000);
}

// ---------------------------------------------------------------------------
// Reference synthetic trace generator: per-set vector recency lists with
// erase/insert, same RNG and sampler draws as the ring-buffer generator.
// ---------------------------------------------------------------------------

class RefGenerator {
 public:
  RefGenerator(const trace::WorkloadModel& model, const trace::GeneratorConfig& config,
               std::uint64_t seed)
      : model_(&model),
        config_(config),
        rng_(seed, config.core),
        sampler_(model.stack_distance_weights(config.max_depth)),
        lists_(config.num_sets) {}

  void switch_model(const trace::WorkloadModel& model) {
    model_ = &model;
    sampler_ = common::DiscreteSampler(model.stack_distance_weights(config_.max_depth));
  }

  trace::MemoryAccess next() {
    const auto set = static_cast<std::uint32_t>(rng_.next_below(config_.num_sets));
    auto& list = lists_[set];
    const std::size_t depth_bin = sampler_.sample(rng_);
    BlockAddress block;
    if (depth_bin >= config_.max_depth || depth_bin >= list.size()) {
      const std::uint64_t id = next_block_id_++;
      block = (static_cast<std::uint64_t>(config_.core) << 52) |
              (id << log2_floor(config_.num_sets)) | set;
      list.insert(list.begin(), block);
      if (list.size() > config_.max_depth) list.pop_back();
    } else {
      block = list[depth_bin];
      list.erase(list.begin() + static_cast<std::ptrdiff_t>(depth_bin));
      list.insert(list.begin(), block);
    }
    trace::MemoryAccess access;
    access.block = block;
    access.core = config_.core;
    access.is_write = rng_.next_bool(model_->write_fraction);
    return access;
  }

 private:
  const trace::WorkloadModel* model_;
  trace::GeneratorConfig config_;
  common::Rng rng_;
  common::DiscreteSampler sampler_;
  std::vector<std::vector<BlockAddress>> lists_;
  std::uint64_t next_block_id_ = 0;
};

TEST(GeneratorEquivalence, RingBufferMatchesVectorListsAcrossModelSwitch) {
  const auto& model_a = trace::spec2000_by_name("art");
  const auto& model_b = trace::spec2000_by_name("mcf");
  trace::GeneratorConfig config;
  config.num_sets = 128;
  config.max_depth = 48;  // not a power of two: exercises ring wrap
  config.core = 3;
  trace::SyntheticTraceGenerator real(model_a, config, 77);
  RefGenerator ref(model_a, config, 77);
  for (std::size_t i = 0; i < 200'000; ++i) {
    if (i == 100'000) {
      real.switch_model(model_b);
      ref.switch_model(model_b);
    }
    const auto got = real.next();
    const auto want = ref.next();
    ASSERT_EQ(got.block, want.block) << "access " << i;
    ASSERT_EQ(got.core, want.core) << "access " << i;
    ASSERT_EQ(got.is_write, want.is_write) << "access " << i;
  }
}

// ---------------------------------------------------------------------------
// Reference core timer: multiset-ordered window (the original
// priority-queue formulation's semantics) vs. the in-place heap scans.
// ---------------------------------------------------------------------------

class RefCoreTimer {
 public:
  explicit RefCoreTimer(const core::CoreTimerConfig& config)
      : config_(config), rng_(config.seed, config.core) {}

  double peek_issue() {
    double t = time_ + next_gap();
    if (window_.size() >= config_.mlp_window) {
      // Ascending walk over completion times: the first `mlp_window`-th
      // entry still in flight at t is the earliest the issue can happen.
      std::uint32_t in_flight = 0;
      for (const double done_at : done_ats_) {
        if (done_at > t) {
          ++in_flight;
          if (in_flight >= config_.mlp_window) {
            // earliest done_at > t is the first one seen in sorted order
            t = *done_ats_.upper_bound(t);
            break;
          }
        }
      }
    }
    const double next_instr = instructions_ + config_.instructions_per_l2_access;
    for (const auto& entry : window_) {
      if (next_instr - entry.issued_at > static_cast<double>(config_.rob_entries)) {
        t = std::max(t, entry.done_at);
      }
    }
    return static_cast<double>(static_cast<Cycle>(t));
  }

  double advance_to_issue() {
    const double issue = peek_issue();
    pending_gap_ = -1.0;
    time_ = issue;
    instructions_ += config_.instructions_per_l2_access;
    while (!done_ats_.empty() && *done_ats_.begin() <= time_) {
      remove_earliest();
    }
    return issue;
  }

  void record_completion(double done_at) {
    window_.push_back({done_at, instructions_});
    done_ats_.insert(done_at);
    while (window_.size() > config_.mlp_window) {
      time_ = std::max(time_, *done_ats_.begin());
      remove_earliest();
    }
  }

  void drain() {
    if (!done_ats_.empty()) time_ = std::max(time_, *done_ats_.rbegin());
    window_.clear();
    done_ats_.clear();
  }

  double time() const { return time_; }
  double instructions() const { return instructions_; }

 private:
  struct Entry {
    double done_at = 0.0;
    double issued_at = 0.0;
  };

  double next_gap() {
    if (pending_gap_ < 0.0) {
      const double jitter = 1.0 + config_.gap_jitter * (2.0 * rng_.next_double() - 1.0);
      pending_gap_ = config_.instructions_per_l2_access * config_.base_cpi * jitter;
    }
    return pending_gap_;
  }

  void remove_earliest() {
    const double earliest = *done_ats_.begin();
    done_ats_.erase(done_ats_.begin());
    for (auto it = window_.begin(); it != window_.end(); ++it) {
      if (it->done_at == earliest) {
        window_.erase(it);
        break;
      }
    }
  }

  core::CoreTimerConfig config_;
  common::Rng rng_;
  double time_ = 0.0;
  double instructions_ = 0.0;
  double pending_gap_ = -1.0;
  std::vector<Entry> window_;
  std::multiset<double> done_ats_;
};

TEST(CoreTimerEquivalence, HeapMatchesOrderedWindow) {
  core::CoreTimerConfig config;
  config.base_cpi = 0.7;
  config.instructions_per_l2_access = 40.0;
  config.mlp_window = 4;
  config.rob_entries = 128;
  config.gap_jitter = 0.5;
  config.seed = 99;
  config.core = 1;
  core::CoreTimer real(config);
  RefCoreTimer ref(config);
  common::Rng latencies(0x1A7E);
  for (std::size_t i = 0; i < 100'000; ++i) {
    ASSERT_EQ(real.peek_issue(), static_cast<Cycle>(ref.peek_issue())) << "step " << i;
    const Cycle issue = real.advance_to_issue();
    const double ref_issue = ref.advance_to_issue();
    ASSERT_EQ(issue, static_cast<Cycle>(ref_issue)) << "step " << i;
    ASSERT_EQ(real.time(), static_cast<Cycle>(ref.time())) << "step " << i;
    ASSERT_EQ(real.instructions(), ref.instructions()) << "step " << i;
    const Cycle done_at = issue + 20 + latencies.next_below(400);
    real.record_completion(done_at);
    ref.record_completion(static_cast<double>(done_at));
    if (i % 10'000 == 9'999) {
      real.drain();
      ref.drain();
      ASSERT_EQ(real.time(), static_cast<Cycle>(ref.time())) << "step " << i;
    }
  }
  real.drain();
  ref.drain();
  ASSERT_EQ(real.time(), static_cast<Cycle>(ref.time()));
  ASSERT_EQ(real.instructions(), ref.instructions());
}

// ---------------------------------------------------------------------------
// DNUCA residency index vs. brute-force bank probes.
// ---------------------------------------------------------------------------

void check_residency_index(nuca::AggregationKind kind, std::uint64_t seed) {
  nuca::DnucaConfig config;
  config.geometry.num_cores = 4;
  config.geometry.num_banks = 8;
  config.geometry.ways_per_bank = 4;
  config.sets_per_bank = 16;
  config.aggregation = kind;
  noc::NocConfig noc_config;
  noc_config.num_cores = 4;
  noc_config.num_banks = 8;
  noc::Noc noc(noc_config);
  nuca::DnucaCache cache(config, noc);
  cache.apply_assignment(partition::equal_partition(config.geometry).assignment);

  common::Rng rng(seed);
  std::vector<BlockAddress> pool;
  for (std::size_t i = 0; i < 100'000; ++i) {
    BlockAddress block;
    if (!pool.empty() && rng.next_bool(0.7)) {
      block = pool[rng.next_below(pool.size())];
    } else {
      block = rng.next_u64() & 0xFFFF;
      pool.push_back(block);
    }
    const CoreId core = static_cast<CoreId>(rng.next_below(4));
    cache.access(block, core, rng.next_bool(0.3), static_cast<Cycle>(i));
    if (i % 1000 == 999) {
      // The residency index must agree with a brute-force scan over every
      // bank for every block ever touched, and blocks must never be
      // resident in two banks at once (the single-residency invariant).
      for (const BlockAddress probe : pool) {
        BankId found = kInvalidBank;
        std::uint32_t copies = 0;
        for (BankId bank = 0; bank < config.geometry.num_banks; ++bank) {
          if (cache.bank(bank).probe(probe)) {
            found = bank;
            ++copies;
          }
        }
        ASSERT_LE(copies, 1u) << "block " << probe << " resident in two banks";
        ASSERT_EQ(cache.bank_of(probe), found) << "block " << probe;
        ASSERT_EQ(cache.resident(probe), copies == 1) << "block " << probe;
      }
      // Brute-force probes check presence; the structural audit checks the
      // exact {bank, way} coordinates, view tables and per-bank internals.
      const auto report = audit::audit_nuca(cache);
      ASSERT_TRUE(report.ok()) << "op " << i << ": " << report.to_string();
    }
  }
}

TEST(DnucaEquivalence, ResidencyIndexMatchesBruteForceProbesParallel) {
  check_residency_index(nuca::AggregationKind::Parallel, 0xD0CA);
}

TEST(DnucaEquivalence, ResidencyIndexMatchesBruteForceProbesCascade) {
  // Cascade demotes down bank chains and swaps on promotion — the paths
  // that rewrite residency {bank, way} pairs most aggressively.
  check_residency_index(nuca::AggregationKind::Cascade, 0xCA5C);
}

// ---------------------------------------------------------------------------
// Batched access pipeline vs. one-at-a-time scalar access.
// ---------------------------------------------------------------------------

/// Drives two identical DnucaCache instances over the same access stream —
/// one through scalar access(), one through access_batch() cut into
/// `batch_size` chunks (the final chunk is a tail whenever batch_size does
/// not divide the stream) — and requires bit-identical outcomes, statistics
/// and structural state. This is the pipeline's correctness contract: the
/// batch front half may predict and prefetch whatever it likes, but the
/// replay must leave nothing distinguishable from scalar execution.
void check_batch_equivalence(nuca::AggregationKind kind, std::uint32_t batch_size,
                             std::size_t accesses, std::uint64_t seed) {
  nuca::DnucaConfig config;
  config.geometry.num_cores = 4;
  config.geometry.num_banks = 8;
  config.geometry.ways_per_bank = 4;
  config.sets_per_bank = 32;
  config.aggregation = kind;
  noc::NocConfig noc_config;
  noc_config.num_cores = 4;
  noc_config.num_banks = 8;
  noc::Noc noc_scalar(noc_config);
  noc::Noc noc_batched(noc_config);
  nuca::DnucaCache scalar(config, noc_scalar);
  nuca::DnucaCache batched(config, noc_batched);
  // SharedDnuca hashes fills over all banks, so every core must own ways
  // everywhere; the partitioned kinds run the paper's even split.
  const auto assignment =
      kind == nuca::AggregationKind::SharedDnuca
          ? partition::no_partition(config.geometry).assignment
          : partition::equal_partition(config.geometry).assignment;
  scalar.apply_assignment(assignment);
  batched.apply_assignment(assignment);

  // Column inputs with a mid-stream hot pool: plenty of in-view hits,
  // off-view hits (cores round-robin over a shared pool) and misses.
  common::Rng rng(seed);
  std::vector<BlockAddress> blocks(accesses);
  std::vector<CoreId> cores(accesses);
  std::vector<bacp::Cycle> times(accesses);
  std::vector<bool> write_bits(accesses);
  std::vector<BlockAddress> pool;
  for (std::size_t i = 0; i < accesses; ++i) {
    if (!pool.empty() && rng.next_bool(0.6)) {
      blocks[i] = pool[rng.next_below(pool.size())];
    } else {
      blocks[i] = rng.next_u64() & 0x3FFF;
      pool.push_back(blocks[i]);
    }
    cores[i] = static_cast<CoreId>(rng.next_below(config.geometry.num_cores));
    write_bits[i] = rng.next_bool(0.3);
    times[i] = static_cast<bacp::Cycle>(i * 3);
  }

  std::vector<nuca::L2AccessOutcome> scalar_outcomes(accesses);
  for (std::size_t i = 0; i < accesses; ++i) {
    scalar_outcomes[i] = scalar.access(blocks[i], cores[i], write_bits[i], times[i]);
  }

  // access_batch takes a raw bool column; std::vector<bool> is packed.
  std::vector<char> write_column(write_bits.begin(), write_bits.end());
  std::vector<nuca::L2AccessOutcome> batched_outcomes(accesses);
  for (std::size_t start = 0; start < accesses; start += batch_size) {
    const std::uint32_t count = static_cast<std::uint32_t>(
        std::min<std::size_t>(batch_size, accesses - start));
    batched.access_batch(blocks.data() + start, cores.data() + start,
                         reinterpret_cast<const bool*>(write_column.data()) + start,
                         times.data() + start, count, batched_outcomes.data() + start);
  }

  for (std::size_t i = 0; i < accesses; ++i) {
    const auto& a = scalar_outcomes[i];
    const auto& b = batched_outcomes[i];
    ASSERT_EQ(a.hit, b.hit) << "access " << i;
    ASSERT_EQ(a.bank, b.bank) << "access " << i;
    ASSERT_EQ(a.ready_at, b.ready_at) << "access " << i;
    ASSERT_EQ(a.directory_lookups, b.directory_lookups) << "access " << i;
    ASSERT_EQ(a.evicted.size(), b.evicted.size()) << "access " << i;
    for (std::size_t e = 0; e < a.evicted.size(); ++e) {
      ASSERT_EQ(a.evicted[e].block, b.evicted[e].block) << "access " << i;
      ASSERT_EQ(a.evicted[e].dirty, b.evicted[e].dirty) << "access " << i;
    }
  }

  ASSERT_EQ(scalar.stats().hits, batched.stats().hits);
  ASSERT_EQ(scalar.stats().misses, batched.stats().misses);
  ASSERT_EQ(scalar.stats().promotions, batched.stats().promotions);
  ASSERT_EQ(scalar.stats().demotions, batched.stats().demotions);
  ASSERT_EQ(scalar.stats().directory_lookups, batched.stats().directory_lookups);
  ASSERT_EQ(scalar.stats().offview_hits, batched.stats().offview_hits);

  // Structural state: every touched block resides in the same place, and
  // both instances pass the full structural audit.
  for (const BlockAddress block : pool) {
    ASSERT_EQ(scalar.bank_of(block), batched.bank_of(block)) << "block " << block;
  }
  const auto report = audit::audit_nuca(batched);
  ASSERT_TRUE(report.ok()) << report.to_string();
}

TEST(BatchEquivalence, BatchSizeOneMatchesScalarParallel) {
  check_batch_equivalence(nuca::AggregationKind::Parallel, 1, 20'000, 0xBA7C);
}

TEST(BatchEquivalence, SmallBatchesWithTailsParallel) {
  // 7 leaves a tail on nearly every chunk boundary of a 20'000 stream.
  check_batch_equivalence(nuca::AggregationKind::Parallel, 7, 20'000, 0xBA7C);
}

TEST(BatchEquivalence, FullBatchesParallel) {
  check_batch_equivalence(nuca::AggregationKind::Parallel, 64, 50'000, 0xBA7C);
}

TEST(BatchEquivalence, MaxBatchParallel) {
  check_batch_equivalence(nuca::AggregationKind::Parallel,
                          nuca::DnucaCache::kMaxBatch, 50'000, 0xBA7C);
}

TEST(BatchEquivalence, FullBatchesCascade) {
  // Cascade exercises promotion/demotion chains in the replay; the batch
  // front half's Parallel fill predictions are useless here — the contract
  // is that useless predictions still change nothing.
  check_batch_equivalence(nuca::AggregationKind::Cascade, 64, 30'000, 0xCA5C);
}

TEST(BatchEquivalence, FullBatchesSharedDnuca) {
  // SharedDnuca migrates a block one bank closer on every hit — the worst
  // case for stale bank/way hints: every certified-replay hint must still
  // be verified against the bank before it is trusted.
  check_batch_equivalence(nuca::AggregationKind::SharedDnuca, 64, 30'000, 0x5DCA);
}

TEST(BatchEquivalence, RepartitionBetweenBatches) {
  // Repartitioning mid-stream creates off-view residents — the hint paths
  // where a batch's predicted fill banks and the replay's actual cursor
  // consumption have to stay in lockstep.
  nuca::DnucaConfig config;
  config.geometry.num_cores = 4;
  config.geometry.num_banks = 8;
  config.geometry.ways_per_bank = 4;
  config.sets_per_bank = 16;
  config.aggregation = nuca::AggregationKind::Parallel;
  noc::NocConfig noc_config;
  noc_config.num_cores = 4;
  noc_config.num_banks = 8;
  noc::Noc noc_scalar(noc_config);
  noc::Noc noc_batched(noc_config);
  nuca::DnucaCache scalar(config, noc_scalar);
  nuca::DnucaCache batched(config, noc_batched);

  common::Rng rng(0x9EBA);
  const std::size_t phases = 8;
  const std::size_t per_phase = 4'096;
  for (std::size_t phase = 0; phase < phases; ++phase) {
    // Alternate between the even split and the unpartitioned baseline:
    // blocks placed anywhere under no_partition become off-view residents
    // the moment the even split comes back.
    const auto assignment =
        phase % 2 == 0 ? partition::equal_partition(config.geometry).assignment
                       : partition::no_partition(config.geometry).assignment;
    scalar.apply_assignment(assignment);
    batched.apply_assignment(assignment);

    std::vector<BlockAddress> blocks(per_phase);
    std::vector<CoreId> cores(per_phase);
    std::vector<bacp::Cycle> times(per_phase);
    std::vector<char> write_column(per_phase);
    for (std::size_t i = 0; i < per_phase; ++i) {
      blocks[i] = rng.next_u64() & 0xFFF;
      cores[i] = static_cast<CoreId>(rng.next_below(config.geometry.num_cores));
      write_column[i] = rng.next_bool(0.2) ? 1 : 0;
      times[i] = static_cast<bacp::Cycle>((phase * per_phase + i) * 2);
    }

    std::vector<nuca::L2AccessOutcome> outcomes(per_phase);
    for (std::size_t start = 0; start < per_phase;
         start += nuca::DnucaCache::kMaxBatch) {
      const std::uint32_t count = static_cast<std::uint32_t>(
          std::min<std::size_t>(nuca::DnucaCache::kMaxBatch, per_phase - start));
      batched.access_batch(blocks.data() + start, cores.data() + start,
                           reinterpret_cast<const bool*>(write_column.data()) + start,
                           times.data() + start, count, outcomes.data() + start);
    }
    for (std::size_t i = 0; i < per_phase; ++i) {
      const auto expected =
          scalar.access(blocks[i], cores[i], write_column[i] != 0, times[i]);
      ASSERT_EQ(expected.hit, outcomes[i].hit) << "phase " << phase << " i " << i;
      ASSERT_EQ(expected.bank, outcomes[i].bank) << "phase " << phase << " i " << i;
      ASSERT_EQ(expected.ready_at, outcomes[i].ready_at)
          << "phase " << phase << " i " << i;
    }
  }
  ASSERT_EQ(scalar.stats().offview_hits, batched.stats().offview_hits);
  ASSERT_GT(batched.stats().offview_hits, 0u)
      << "repartition stream never exercised the off-view path";
  const auto report = audit::audit_nuca(batched);
  ASSERT_TRUE(report.ok()) << report.to_string();
}

// ---------------------------------------------------------------------------
// Pooled System reuse: reset_in_place vs. fresh construction. The pooling
// contract (harness::SystemPool) is that a rewound System is
// indistinguishable from a newly constructed one — here the optimized
// formulation is "rewind a dirty System" and the reference is "construct a
// fresh one", compared at the save_state() byte level and replayed forward.
// ---------------------------------------------------------------------------

TEST(PoolEquivalence, ResetInPlaceMatchesFreshConstructionBitForBit) {
  sim::SystemConfig config = sim::SystemConfig::baseline();
  config.epoch_cycles = 1'500'000;
  config.finalize();
  const auto first_mix = trace::mix_from_names(
      {"mcf", "eon", "art", "gcc", "bzip2", "sixtrack", "facerec", "gzip"});
  const auto second_mix = trace::mix_from_names(
      {"gzip", "facerec", "sixtrack", "bzip2", "gcc", "art", "eon", "mcf"});

  // Dirty the reused System thoroughly: warm-up plus a measured run leaves
  // every component (caches, residency index, profiler stacks, generator
  // rings, timers, observability series) full of first-trial state.
  sim::System reused(config, first_mix);
  reused.warm_up(300'000);
  reused.run(300'000);
  reused.reset_in_place(second_mix);

  sim::System fresh(config, second_mix);
  EXPECT_EQ(reused.save_state().bytes, fresh.save_state().bytes);

  // ...and the rewound System replays the second trial on the exact
  // trajectory of the fresh one, not merely from an equal-looking start.
  // (save_state() is legal only at statistics-clean points, so the warm
  // states compare as bytes and the measured runs compare as results.)
  reused.warm_up(200'000);
  fresh.warm_up(200'000);
  EXPECT_EQ(reused.save_state().bytes, fresh.save_state().bytes);
  reused.run(400'000);
  fresh.run(400'000);
  EXPECT_EQ(reused.results().to_json().dump(), fresh.results().to_json().dump());
}

TEST(PoolEquivalence, RepeatedResetsDoNotDrift) {
  // Three successive lease cycles on one System against three fresh
  // constructions: any residue that survives one reset would compound here.
  sim::SystemConfig config = sim::SystemConfig::baseline();
  config.epoch_cycles = 1'500'000;
  config.finalize();
  const std::vector<trace::WorkloadMix> mixes = {
      trace::mix_from_names(
          {"mcf", "eon", "art", "gcc", "bzip2", "sixtrack", "facerec", "gzip"}),
      trace::mix_from_names(
          {"art", "gzip", "mcf", "facerec", "eon", "bzip2", "gcc", "sixtrack"}),
      trace::mix_from_names(
          {"bzip2", "gcc", "gzip", "eon", "sixtrack", "mcf", "art", "facerec"}),
  };

  sim::System reused(config, mixes[0]);
  for (const auto& mix : mixes) {
    reused.reset_in_place(mix);
    reused.warm_up(150'000);

    sim::System fresh(config, mix);
    fresh.warm_up(150'000);
    ASSERT_EQ(reused.save_state().bytes, fresh.save_state().bytes);

    reused.run(250'000);
    fresh.run(250'000);
    ASSERT_EQ(reused.results().to_json().dump(), fresh.results().to_json().dump());
  }
}

}  // namespace
}  // namespace bacp
