#include "mem/dram.hpp"

#include <gtest/gtest.h>

namespace bacp::mem {
namespace {

TEST(Dram, UncontendedReadLatency) {
  Dram dram(DramConfig{});
  EXPECT_EQ(dram.read(1000), 1000u + 260u);
  EXPECT_EQ(dram.stats().demand_reads, 1u);
}

TEST(Dram, ChannelSerializesAtLineRate) {
  Dram dram(DramConfig{});
  const Cycle first = dram.read(0);
  const Cycle second = dram.read(0);  // same instant
  EXPECT_EQ(first, 260u);
  EXPECT_EQ(second, 264u);  // 4-cycle line slot behind the first
  EXPECT_EQ(dram.stats().total_channel_wait, 4u);
}

TEST(Dram, SpacedRequestsDoNotWait) {
  Dram dram(DramConfig{});
  dram.read(0);
  const Cycle second = dram.read(100);
  EXPECT_EQ(second, 360u);
  EXPECT_EQ(dram.stats().total_channel_wait, 0u);
}

TEST(Dram, WritebacksConsumeBandwidthOnly) {
  Dram dram(DramConfig{});
  dram.writeback(0);
  EXPECT_EQ(dram.stats().writebacks, 1u);
  // The next read at the same instant queues behind the writeback's slot.
  EXPECT_EQ(dram.read(0), 4u + 260u);
}

TEST(Dram, SixtyFourGigabytesPerSecondEquivalence) {
  // 64 GB/s at 4 GHz = 16 B/cycle = one 64 B line every 4 cycles: the
  // sustained throughput over N back-to-back lines must match.
  Dram dram(DramConfig{});
  Cycle last = 0;
  constexpr int kLines = 100;
  for (int i = 0; i < kLines; ++i) last = dram.read(0);
  EXPECT_EQ(last, 260u + 4u * (kLines - 1));
}

TEST(Dram, ClearStatsResets) {
  Dram dram(DramConfig{});
  dram.read(0);
  dram.writeback(0);
  dram.clear_stats();
  EXPECT_EQ(dram.stats().demand_reads, 0u);
  EXPECT_EQ(dram.stats().writebacks, 0u);
  EXPECT_EQ(dram.stats().total_channel_wait, 0u);
}

TEST(Dram, CustomLatencyConfig) {
  DramConfig config;
  config.access_latency = 100;
  config.cycles_per_line = 2;
  Dram dram(config);
  EXPECT_EQ(dram.read(0), 100u);
  EXPECT_EQ(dram.read(0), 102u);
}

}  // namespace
}  // namespace bacp::mem
