#include "common/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace bacp::common {
namespace {

TEST(Env, MissingVariableUsesFallback) {
  ::unsetenv("BACP_TEST_MISSING");
  EXPECT_EQ(env_u64("BACP_TEST_MISSING", 42), 42u);
  EXPECT_DOUBLE_EQ(env_double("BACP_TEST_MISSING", 1.5), 1.5);
  EXPECT_EQ(env_string("BACP_TEST_MISSING", "x"), "x");
}

TEST(Env, ParsesValidU64) {
  ::setenv("BACP_TEST_U64", "12345", 1);
  EXPECT_EQ(env_u64("BACP_TEST_U64", 0), 12345u);
  ::unsetenv("BACP_TEST_U64");
}

TEST(Env, MalformedU64FallsBack) {
  ::setenv("BACP_TEST_BAD", "12abc", 1);
  EXPECT_EQ(env_u64("BACP_TEST_BAD", 9), 9u);
  ::setenv("BACP_TEST_BAD", "", 1);
  EXPECT_EQ(env_u64("BACP_TEST_BAD", 9), 9u);
  ::unsetenv("BACP_TEST_BAD");
}

TEST(Env, ParsesValidDouble) {
  ::setenv("BACP_TEST_DBL", "2.75", 1);
  EXPECT_DOUBLE_EQ(env_double("BACP_TEST_DBL", 0.0), 2.75);
  ::unsetenv("BACP_TEST_DBL");
}

TEST(Env, MalformedDoubleFallsBack) {
  ::setenv("BACP_TEST_DBL2", "x1.5", 1);
  EXPECT_DOUBLE_EQ(env_double("BACP_TEST_DBL2", 3.0), 3.0);
  ::unsetenv("BACP_TEST_DBL2");
}

TEST(Env, StringPassThrough) {
  ::setenv("BACP_TEST_STR", "hello", 1);
  EXPECT_EQ(env_string("BACP_TEST_STR", "d"), "hello");
  ::unsetenv("BACP_TEST_STR");
}

}  // namespace
}  // namespace bacp::common
