#include "common/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace bacp::common {
namespace {

/// Runs `body` with stderr captured and returns what was written — the
/// malformed-env contract is "fall back loudly", so tests assert both the
/// returned default and the warning that names the variable.
template <typename Body>
std::string captured_stderr(Body body) {
  ::testing::internal::CaptureStderr();
  body();
  return ::testing::internal::GetCapturedStderr();
}

TEST(Env, MissingVariableUsesFallback) {
  ::unsetenv("BACP_TEST_MISSING");
  EXPECT_EQ(env_u64("BACP_TEST_MISSING", 42), 42u);
  EXPECT_DOUBLE_EQ(env_double("BACP_TEST_MISSING", 1.5), 1.5);
  EXPECT_TRUE(env_bool("BACP_TEST_MISSING", true));
  EXPECT_EQ(env_string("BACP_TEST_MISSING", "x"), "x");
}

TEST(Env, ParsesValidU64) {
  ::setenv("BACP_TEST_U64", "12345", 1);
  EXPECT_EQ(env_u64("BACP_TEST_U64", 0), 12345u);
  ::unsetenv("BACP_TEST_U64");
}

TEST(Env, MalformedU64WarnsAndFallsBack) {
  ::setenv("BACP_TEST_BAD", "12abc", 1);
  std::uint64_t value = 0;
  const auto warning = captured_stderr([&] { value = env_u64("BACP_TEST_BAD", 9); });
  EXPECT_EQ(value, 9u);
  EXPECT_NE(warning.find("BACP_TEST_BAD"), std::string::npos) << warning;
  EXPECT_NE(warning.find("12abc"), std::string::npos) << warning;
  ::unsetenv("BACP_TEST_BAD");
}

TEST(Env, EmptyVariableIsSilentFallback) {
  // An empty variable is the conventional way to unset a knob in a wrapper
  // script; it must fall back without noise.
  ::setenv("BACP_TEST_EMPTY", "", 1);
  const auto warning =
      captured_stderr([] { EXPECT_EQ(env_u64("BACP_TEST_EMPTY", 9), 9u); });
  EXPECT_TRUE(warning.empty()) << warning;
  ::unsetenv("BACP_TEST_EMPTY");
}

TEST(Env, NegativeU64WarnsAndFallsBack) {
  // strtoull would have wrapped "-1" to 18446744073709551615 — the exact
  // silent-fallback bug this layer eradicates.
  ::setenv("BACP_TEST_NEG", "-1", 1);
  std::uint64_t value = 0;
  const auto warning = captured_stderr([&] { value = env_u64("BACP_TEST_NEG", 7); });
  EXPECT_EQ(value, 7u);
  EXPECT_NE(warning.find("BACP_TEST_NEG"), std::string::npos) << warning;
  EXPECT_NE(warning.find("negative"), std::string::npos) << warning;
  ::unsetenv("BACP_TEST_NEG");
}

TEST(Env, OverflowU64WarnsAndFallsBack) {
  ::setenv("BACP_TEST_OVF", "99999999999999999999", 1);
  std::uint64_t value = 0;
  const auto warning = captured_stderr([&] { value = env_u64("BACP_TEST_OVF", 5); });
  EXPECT_EQ(value, 5u);
  EXPECT_NE(warning.find("out of range"), std::string::npos) << warning;
  ::unsetenv("BACP_TEST_OVF");
}

TEST(Env, ParsesValidDouble) {
  ::setenv("BACP_TEST_DBL", "2.75", 1);
  EXPECT_DOUBLE_EQ(env_double("BACP_TEST_DBL", 0.0), 2.75);
  ::unsetenv("BACP_TEST_DBL");
}

TEST(Env, MalformedDoubleWarnsAndFallsBack) {
  ::setenv("BACP_TEST_DBL2", "x1.5", 1);
  double value = 0.0;
  const auto warning =
      captured_stderr([&] { value = env_double("BACP_TEST_DBL2", 3.0); });
  EXPECT_DOUBLE_EQ(value, 3.0);
  EXPECT_NE(warning.find("BACP_TEST_DBL2"), std::string::npos) << warning;
  ::unsetenv("BACP_TEST_DBL2");
}

TEST(Env, ParsesValidBool) {
  ::setenv("BACP_TEST_BOOL", "true", 1);
  EXPECT_TRUE(env_bool("BACP_TEST_BOOL", false));
  ::setenv("BACP_TEST_BOOL", "off", 1);
  EXPECT_FALSE(env_bool("BACP_TEST_BOOL", true));
  ::unsetenv("BACP_TEST_BOOL");
}

TEST(Env, MalformedBoolWarnsAndFallsBack) {
  ::setenv("BACP_TEST_BOOL2", "maybe", 1);
  bool value = false;
  const auto warning =
      captured_stderr([&] { value = env_bool("BACP_TEST_BOOL2", true); });
  EXPECT_TRUE(value);
  EXPECT_NE(warning.find("BACP_TEST_BOOL2"), std::string::npos) << warning;
  ::unsetenv("BACP_TEST_BOOL2");
}

TEST(Env, StringPassThrough) {
  ::setenv("BACP_TEST_STR", "hello", 1);
  EXPECT_EQ(env_string("BACP_TEST_STR", "d"), "hello");
  ::unsetenv("BACP_TEST_STR");
}

}  // namespace
}  // namespace bacp::common
