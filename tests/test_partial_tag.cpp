#include "cache/partial_tag.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace bacp::cache {
namespace {

TEST(PartialTag, Deterministic) {
  EXPECT_EQ(partial_tag(0xDEADBEEF, 12), partial_tag(0xDEADBEEF, 12));
}

TEST(PartialTag, FitsWidth) {
  for (std::uint32_t width : {1u, 4u, 8u, 12u, 16u, 20u, 31u}) {
    for (std::uint64_t tag = 0; tag < 1000; ++tag) {
      EXPECT_LT(partial_tag(tag, width), 1u << width) << "width " << width;
    }
  }
}

TEST(PartialTag, WidthClampedAt32) {
  // width >= 32 uses all 32 output bits; must not shift by >= 64.
  EXPECT_EQ(partial_tag(123, 32), partial_tag(123, 40));
}

TEST(PartialTag, MixesLowBitPatterns) {
  // Sequential tags (the common streaming pattern) must spread across the
  // hash space rather than collide in runs.
  std::set<std::uint32_t> values;
  for (std::uint64_t tag = 0; tag < 4096; ++tag) values.insert(partial_tag(tag, 12));
  EXPECT_GT(values.size(), 2500u);  // near-uniform occupancy of 4096 buckets
}

TEST(PartialTag, AliasingRateMatchesWidth) {
  // With w bits, random distinct tags collide at roughly the birthday rate;
  // at 12 bits and 1000 tags expect some but bounded aliasing.
  std::map<std::uint32_t, int> buckets;
  constexpr int kTags = 1000;
  for (std::uint64_t tag = 0; tag < kTags; ++tag) {
    ++buckets[partial_tag(tag * 2654435761ull, 12)];
  }
  int collisions = 0;
  for (const auto& [value, count] : buckets) collisions += count - 1;
  EXPECT_GT(collisions, 10);   // partial tags do alias (the 5%-error source)
  EXPECT_LT(collisions, 300);  // but not pathologically
}

TEST(PartialTag, WiderTagsAliasLess) {
  auto collisions_at = [](std::uint32_t width) {
    std::map<std::uint32_t, int> buckets;
    for (std::uint64_t tag = 0; tag < 2000; ++tag) {
      ++buckets[partial_tag(tag * 0x9E3779B97F4A7C15ull + 7, width)];
    }
    int collisions = 0;
    for (const auto& [value, count] : buckets) collisions += count - 1;
    return collisions;
  };
  EXPECT_GT(collisions_at(8), collisions_at(16));
}

}  // namespace
}  // namespace bacp::cache
