#include "partition/marginal_utility.hpp"

#include <gtest/gtest.h>

namespace bacp::partition {
namespace {

/// Convex curve: hits 10, 6, 3, 1 at depths 1..4, 5 deep misses.
msa::MissRatioCurve convex() { return msa::MissRatioCurve({10, 6, 3, 1}, 5); }

/// Cliff curve: zero hits until depth 4, then everything (a loop of 4).
msa::MissRatioCurve cliff() { return msa::MissRatioCurve({0, 0, 0, 20}, 5); }

TEST(MarginalUtility, DefinitionMatchesPaperFormula) {
  const auto curve = convex();
  // MU(n) = (Miss(c) - Miss(c+n)) / n
  EXPECT_DOUBLE_EQ(marginal_utility(curve, 0, 1), 10.0);
  EXPECT_DOUBLE_EQ(marginal_utility(curve, 1, 1), 6.0);
  EXPECT_DOUBLE_EQ(marginal_utility(curve, 0, 2), 8.0);
  EXPECT_DOUBLE_EQ(marginal_utility(curve, 2, 2), 2.0);
}

TEST(MarginalUtility, ZeroOnFlatRegion) {
  const auto curve = convex();
  EXPECT_DOUBLE_EQ(marginal_utility(curve, 4, 3), 0.0);  // curve exhausted
}

TEST(MaxMarginalUtility, PicksSingleStepOnConvexCurves) {
  const auto best = max_marginal_utility(convex(), 0, 4);
  EXPECT_EQ(best.extra, 1u);
  EXPECT_DOUBLE_EQ(best.utility, 10.0);
}

TEST(MaxMarginalUtility, LookaheadRidesThroughCliffs) {
  // Single-step greedy sees MU(1) = 0 at a cliff; lookahead must find the
  // jump at n = 4 (Qureshi's non-convexity fix).
  const auto best = max_marginal_utility(cliff(), 0, 4);
  EXPECT_EQ(best.extra, 4u);
  EXPECT_DOUBLE_EQ(best.utility, 5.0);  // 20 misses removed / 4 ways
}

TEST(MaxMarginalUtility, RespectsLookaheadLimit) {
  const auto best = max_marginal_utility(cliff(), 0, 3);  // cliff is out of reach
  EXPECT_EQ(best.extra, 0u);
  EXPECT_DOUBLE_EQ(best.utility, 0.0);
}

TEST(MaxMarginalUtility, ZeroWhenNoImprovementPossible) {
  const auto best = max_marginal_utility(convex(), 4, 10);
  EXPECT_EQ(best.extra, 0u);
}

TEST(MaxMarginalUtility, StartsFromCurrentAllocation) {
  const auto best = max_marginal_utility(cliff(), 2, 4);
  EXPECT_EQ(best.extra, 2u);  // only 2 more ways needed from 2
  EXPECT_DOUBLE_EQ(best.utility, 10.0);
}

}  // namespace
}  // namespace bacp::partition
