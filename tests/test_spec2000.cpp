#include "trace/spec2000.hpp"

#include <gtest/gtest.h>

#include <set>

namespace bacp::trace {
namespace {

TEST(Spec2000, HasTwentySixComponents) {
  EXPECT_EQ(spec2000_suite().size(), kNumSpec2000);
  EXPECT_EQ(kNumSpec2000, 26u);
}

TEST(Spec2000, NamesAreUniqueAndSorted) {
  std::set<std::string> names;
  std::string previous;
  for (const auto& model : spec2000_suite()) {
    EXPECT_TRUE(names.insert(model.name).second) << "duplicate " << model.name;
    EXPECT_LT(previous, model.name);
    previous = model.name;
  }
}

TEST(Spec2000, LookupByNameReturnsMatchingModel) {
  EXPECT_EQ(spec2000_by_name("mcf").name, "mcf");
  EXPECT_EQ(spec2000_by_name("sixtrack").name, "sixtrack");
  EXPECT_EQ(spec2000_index("ammp"), 0u);
  EXPECT_EQ(spec2000_index("wupwise"), 25u);
}

// --- Paper-pinned shapes (Fig. 3) -------------------------------------

TEST(Spec2000, SixtrackSaturatesByEightWays) {
  const auto& m = spec2000_by_name("sixtrack");
  // "after that point, by giving more ways, its misses are close to zero"
  EXPECT_LT(m.miss_ratio(8) - m.miss_ratio(128), 0.06);
  EXPECT_GT(m.miss_ratio(2), 0.4);  // lots of misses with few ways
}

TEST(Spec2000, AppluFlatPastTenWaysWithLowResidue) {
  const auto& m = spec2000_by_name("applu");
  EXPECT_LT(m.miss_ratio(14) - m.miss_ratio(128), 0.02);
  EXPECT_GT(m.miss_ratio(4) - m.miss_ratio(14), 0.3);  // real knee around 10
}

TEST(Spec2000, Bzip2ImprovesGraduallyOutToFortyFiveWays) {
  const auto& m = spec2000_by_name("bzip2");
  EXPECT_GT(m.miss_ratio(16) - m.miss_ratio(48), 0.2);
  EXPECT_GT(m.miss_ratio(32) - m.miss_ratio(48), 0.05);
  EXPECT_LT(m.miss_ratio(64) - m.miss_ratio(128), 0.01);
}

// --- Table III-implied appetites ---------------------------------------

TEST(Spec2000, FacerecWantsDeepCapacity) {
  const auto& m = spec2000_by_name("facerec");
  EXPECT_GT(m.miss_ratio(16) - m.miss_ratio(64), 0.35);
}

TEST(Spec2000, EonIsTiny) {
  const auto& m = spec2000_by_name("eon");
  EXPECT_LT(m.miss_ratio(8), 0.06);
  EXPECT_LT(m.l2_apki, 3.0);
}

TEST(Spec2000, GccFitsInAFewWays) {
  const auto& m = spec2000_by_name("gcc");
  EXPECT_LT(m.miss_ratio(8) - m.miss_ratio(128), 0.02);
}

TEST(Spec2000, McfIsIntenseWithLargeIncompressibleResidue) {
  const auto& m = spec2000_by_name("mcf");
  EXPECT_GT(m.l2_apki, 30.0);
  EXPECT_GT(m.miss_ratio(128), 0.3);                    // streaming residue
  EXPECT_GT(m.miss_ratio(16) - m.miss_ratio(32), 0.1);  // 24-deep loop
}

TEST(Spec2000, StreamersCarryHighMlp) {
  // Regular FP sweeps overlap their misses; art/equake are dependent-access
  // codes and deliberately do not appear here.
  for (const char* name : {"swim", "mgrid", "lucas", "wupwise", "applu"}) {
    EXPECT_GE(spec2000_by_name(name).mlp, 4.0) << name;
  }
}

TEST(Spec2000, LatencyBoundCodesCarryLowMlp) {
  for (const char* name : {"mcf", "twolf", "parser", "crafty", "eon"}) {
    EXPECT_LE(spec2000_by_name(name).mlp, 2.5) << name;
  }
}

TEST(Spec2000, IntensityTiersAreRealistic) {
  EXPECT_GT(spec2000_by_name("art").l2_apki, spec2000_by_name("mesa").l2_apki * 5);
  EXPECT_LT(spec2000_by_name("perlbmk").l2_apki, 5.0);
}

TEST(Spec2000, EveryModelValidates) {
  for (const auto& model : spec2000_suite()) model.validate();
}

}  // namespace
}  // namespace bacp::trace
