#include "sim/system.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "harness/experiments.hpp"
#include "trace/spec2000.hpp"

namespace bacp::sim {
namespace {

SystemConfig fast_config(PolicyKind policy) {
  SystemConfig config = SystemConfig::baseline();
  config.policy = policy;
  config.epoch_cycles = 1'500'000;
  config.finalize();
  return config;
}

trace::WorkloadMix capacity_diverse_mix() {
  return trace::mix_from_names(
      {"mcf", "eon", "art", "gcc", "bzip2", "sixtrack", "facerec", "gzip"});
}

TEST(System, RunsAndReportsPerCoreSlices) {
  System system(fast_config(PolicyKind::EqualPartition), capacity_diverse_mix());
  system.warm_up(200'000);
  system.run(400'000);
  const auto results = system.results();
  ASSERT_EQ(results.cores().size(), 8u);
  for (CoreId core = 0; core < 8; ++core) {
    const auto& c = results.cores()[core];
    const auto& suite = trace::spec2000_suite();
    const auto& model = suite.at(trace::spec2000_index(c.workload()));
    // Instruction slices are equal across cores...
    EXPECT_NEAR(c.instructions(), 400'000.0, 400'000.0 * 0.02 + 2000.0);
    // ...so access counts follow APKI.
    const double accesses = static_cast<double>(c.l2_accesses());
    EXPECT_NEAR(accesses, 400.0 * model.l2_apki, 400.0 * model.l2_apki * 0.15 + 50)
        << model.name;
    EXPECT_GT(c.cpi(), 0.3);
  }
  EXPECT_GT(results.l2_accesses(), 0u);
  EXPECT_GT(results.mean_cpi(), 0.0);
}

TEST(System, EqualPartitionMissRatiosTrackTheModel) {
  System system(fast_config(PolicyKind::EqualPartition), capacity_diverse_mix());
  system.warm_up(1'500'000);
  system.run(2'000'000);
  const auto results = system.results();
  const auto& suite = trace::spec2000_suite();
  for (const auto& core : results.cores()) {
    const auto& model = suite.at(trace::spec2000_index(core.workload()));
    const double measured = core.l2_miss_ratio();
    const double predicted = model.miss_ratio(16);
    // Low-APKI workloads see few accesses in a scaled run, so their warm-up
    // (cold) transient weighs more: widen the tolerance accordingly.
    const double accesses = static_cast<double>(core.l2_accesses());
    const double tolerance = 0.07 + 6.0 / std::sqrt(std::max(accesses, 1.0));
    EXPECT_NEAR(measured, predicted, tolerance) << core.workload();
  }
}

TEST(System, EpochsFireOnSchedule) {
  System system(fast_config(PolicyKind::BankAware), capacity_diverse_mix());
  system.warm_up(300'000);
  // Warm-up epochs are part of the discarded transient: the measurement
  // window starts at zero so epochs() == epoch_series().num_epochs().
  EXPECT_EQ(system.epochs_run(), 0u);
  system.run(600'000);
  EXPECT_GT(system.epochs_run(), 0u);
}

TEST(System, EpochSeriesMatchesEpochCount) {
  System system(fast_config(PolicyKind::BankAware), capacity_diverse_mix());
  system.warm_up(300'000);
  system.run(900'000);
  const auto results = system.results();
  ASSERT_GT(results.epochs(), 0u);
  const auto& series = results.epoch_series();
  EXPECT_EQ(series.num_epochs(), results.epochs());
  // One ways/cpi series per core, rectangular across epochs.
  for (CoreId core = 0; core < 8; ++core) {
    const std::string name = "core" + std::to_string(core) + ".ways";
    ASSERT_TRUE(series.has_series(name));
    EXPECT_EQ(series.series(name).size(), results.epochs());
  }
}

TEST(System, EpochSeriesDeltasConsistentWithAggregates) {
  System system(fast_config(PolicyKind::BankAware), capacity_diverse_mix());
  system.warm_up(300'000);
  system.run(1'200'000);
  const auto results = system.results();
  const auto& series = results.epoch_series();
  ASSERT_GT(series.num_epochs(), 0u);
  // Per-epoch deltas accumulate to at most the aggregate counter (the tail
  // after the last epoch boundary is not covered by the series).
  const auto sum_of = [&](std::string_view name) -> double {
    const auto span = series.series(name);
    return std::accumulate(span.begin(), span.end(), 0.0);
  };
  EXPECT_LE(sum_of("promotions"), static_cast<double>(results.promotions()));
  EXPECT_LE(sum_of("demotions"), static_cast<double>(results.demotions()));
  EXPECT_LE(sum_of("dram_reads"), static_cast<double>(results.dram_reads()));
  EXPECT_LE(sum_of("noc_queue_cycles"),
            static_cast<double>(results.noc_queue_cycles()));
  // All deltas are non-negative (counters are monotone between boundaries).
  for (const auto& name : series.names()) {
    for (const double value : series.series(name)) {
      EXPECT_GE(value, 0.0) << name;
    }
  }
}

TEST(System, BankAwareReallocatesAwayFromEqual) {
  System system(fast_config(PolicyKind::BankAware), capacity_diverse_mix());
  system.warm_up(1'000'000);
  const auto& allocation = system.current_allocation();
  EXPECT_EQ(allocation.total(), 128u);
  // facerec / bzip2 / mcf / art should not all sit at the static 16.
  bool any_nonequal = false;
  for (const WayCount ways : allocation.ways_per_core) {
    if (ways != 16) any_nonequal = true;
  }
  EXPECT_TRUE(any_nonequal);
}

TEST(System, BankAwareBeatsEqualOnCapacityDiverseMix) {
  const auto mix = capacity_diverse_mix();
  auto run = [&](PolicyKind policy) {
    System system(fast_config(policy), mix);
    system.warm_up(1'500'000);
    system.run(2'500'000);
    return system.results();
  };
  const auto equal = run(PolicyKind::EqualPartition);
  const auto bank = run(PolicyKind::BankAware);
  EXPECT_LT(static_cast<double>(bank.l2_misses()),
            static_cast<double>(equal.l2_misses()) * 1.0);
}

TEST(System, NoPartitionUsesSharedDnucaMigration) {
  System system(fast_config(PolicyKind::NoPartition), capacity_diverse_mix());
  system.warm_up(150'000);
  system.run(150'000);
  const auto results = system.results();
  EXPECT_GT(results.promotions(), 0u);  // gradual migration is active
  EXPECT_GT(results.metrics().counter_value("noc.migration_transfers"), 0u);
  for (const WayCount ways : system.current_allocation().ways_per_core) {
    EXPECT_EQ(ways, 128u);  // shared-equivalent view
  }
}

TEST(System, WarmupClearsMeasuredStatistics) {
  System system(fast_config(PolicyKind::EqualPartition), capacity_diverse_mix());
  system.warm_up(200'000);
  // No run() yet: snapshots are cleared, live counters are zero.
  const auto results = system.results();
  EXPECT_EQ(results.l2_accesses(), 0u);
  EXPECT_EQ(results.epochs(), 0u);
  EXPECT_EQ(results.epoch_series().num_epochs(), 0u);
}

TEST(System, DeterministicForFixedSeed) {
  auto run = [] {
    System system(fast_config(PolicyKind::BankAware), capacity_diverse_mix());
    system.warm_up(150'000);
    system.run(200'000);
    return system.results();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.l2_misses(), b.l2_misses());
  EXPECT_DOUBLE_EQ(a.mean_cpi(), b.mean_cpi());
  EXPECT_EQ(a.epochs(), b.epochs());
  // The whole structured artifact is byte-stable, not just the headlines.
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
}

TEST(System, DramAndNocStatsAreWired) {
  System system(fast_config(PolicyKind::EqualPartition), capacity_diverse_mix());
  system.warm_up(100'000);
  system.run(200'000);
  const auto results = system.results();
  EXPECT_GT(results.dram_reads(), 0u);
  EXPECT_GT(results.dram_writebacks(), 0u);
  // Queue contention and migrations may legitimately be zero at toy scale
  // under a static partition; the wiring contract is that the NoC counters
  // exist in the result registry.
  EXPECT_NE(results.metrics().find_counter("noc.queue_cycles"), nullptr);
  EXPECT_NE(results.metrics().find_counter("noc.migration_transfers"), nullptr);
}

TEST(System, InclusionRecallsHappenUnderPressure) {
  // At full scale the L2 is so much larger than the L1s that evicted lines
  // have long left the L1; shrink the L2 so evictions catch live L1 copies
  // and the inclusion-recall path is exercised end to end.
  SystemConfig config = fast_config(PolicyKind::EqualPartition);
  config.sets_per_bank = 64;
  config.finalize();
  System system(config, capacity_diverse_mix());
  system.warm_up(100'000);
  system.run(300'000);
  EXPECT_GT(system.results().inclusion_recalls(), 0u);
}

TEST(System, InclusionInvariantHolds) {
  // L1 ⊆ L2 at every observation point: every block valid in some L1 must
  // be resident in the L2 (the MOESI directory recalls L1 copies whenever
  // the L2 evicts a line). A small L2 makes evictions and recalls frequent.
  SystemConfig config = fast_config(PolicyKind::BankAware);
  config.sets_per_bank = 128;
  config.finalize();
  System system(config, capacity_diverse_mix());
  for (int round = 0; round < 4; ++round) {
    system.run(60'000);
    for (CoreId core = 0; core < config.geometry.num_cores; ++core) {
      for (const auto& line : system.l1(core).resident_lines()) {
        ASSERT_TRUE(system.l2().resident(line.block))
            << "round " << round << " core " << core << ": L1 block "
            << line.block << " is not in the L2 (inclusion violated)";
      }
    }
  }
  EXPECT_GT(system.results().inclusion_recalls(), 0u);
}

TEST(System, FastForwardAdvancesInstructionCounts) {
  System system(fast_config(PolicyKind::BankAware), capacity_diverse_mix());
  system.warm_up(100'000);
  system.fast_forward(300'000);
  const auto results = system.results();
  // Functional warming follows execute()'s co-scheduled-slice discipline:
  // every core retires at least its instruction budget, fast cores co-run
  // past it until the slowest finishes, and the budget-setting core stops
  // within quota-rounding slack of the budget itself.
  double min_instructions = std::numeric_limits<double>::infinity();
  for (const auto& core : results.cores()) {
    EXPECT_GE(core.instructions(), 300'000.0 * 0.98 - 2'000.0) << core.workload();
    min_instructions = std::min(min_instructions, core.instructions());
  }
  EXPECT_NEAR(min_instructions, 300'000.0, 300'000.0 * 0.02 + 2'000.0);
  EXPECT_GT(results.l2_accesses(), 0u);
}

TEST(System, FastForwardIsDeterministic) {
  const auto run_one = [] {
    System system(fast_config(PolicyKind::BankAware), capacity_diverse_mix());
    system.warm_up(100'000);
    system.fast_forward(200'000);
    system.fast_forward(200'000);
    system.reset_measurement();
    return system.save_state();
  };
  EXPECT_EQ(run_one().bytes, run_one().bytes);
}

TEST(System, FastForwardStateSupportsSnapshotForkAndDetailedRun) {
  // The sampled-run warming recipe end to end: warm, fast-forward to a
  // boundary, reset, snapshot — then restore into the same system and run
  // detailed. Two repeats must agree bit for bit.
  const auto run_one = [] {
    System system(fast_config(PolicyKind::BankAware), capacity_diverse_mix());
    system.warm_up(100'000);
    system.fast_forward(250'000);
    system.reset_measurement();
    const auto boundary = system.save_state();
    system.restore_state(boundary);
    system.reset_measurement();
    system.run(150'000);
    return system.results();
  };
  const auto a = run_one();
  const auto b = run_one();
  EXPECT_EQ(a.l2_accesses(), b.l2_accesses());
  EXPECT_EQ(a.l2_misses(), b.l2_misses());
  EXPECT_DOUBLE_EQ(a.mean_cpi(), b.mean_cpi());
}

TEST(System, FastForwardKeepsCacheWarm) {
  // A detailed interval entered after functional warming must see a warm
  // cache: its miss ratio should sit near the one measured after an equal
  // stretch of detailed simulation, and far below the cold-start ratio.
  const auto interval_ratio = [](bool functional) {
    System system(fast_config(PolicyKind::EqualPartition), capacity_diverse_mix());
    system.warm_up(100'000);
    if (functional) {
      system.fast_forward(400'000);
    } else {
      system.run(400'000);
    }
    system.reset_measurement();
    system.run(100'000);
    const auto results = system.results();
    return static_cast<double>(results.l2_misses()) /
           static_cast<double>(results.l2_accesses());
  };
  const double after_functional = interval_ratio(true);
  const double after_detailed = interval_ratio(false);
  EXPECT_NEAR(after_functional, after_detailed, 0.05 + 0.15 * after_detailed);
}

TEST(SystemConfig, BaselineMatchesTableOne) {
  const auto config = SystemConfig::baseline();
  EXPECT_EQ(config.geometry.num_cores, 8u);
  EXPECT_EQ(config.geometry.num_banks, 16u);
  EXPECT_EQ(config.sets_per_bank, 2048u);
  EXPECT_EQ(config.l1_sets * config.l1_ways * 64, 64u * 1024u);  // 64 KB L1
  EXPECT_EQ(config.dram.access_latency, 260u);
  EXPECT_EQ(config.mshr.entries_per_core, 16u);
  EXPECT_EQ(config.profiler.partial_tag_bits, 12u);
  EXPECT_EQ(config.profiler.set_sampling, 32u);
  EXPECT_EQ(config.profiler.profiled_ways, 72u);
}

TEST(SystemConfig, PolicyNames) {
  EXPECT_STREQ(to_string(PolicyKind::NoPartition), "No-partitions");
  EXPECT_STREQ(to_string(PolicyKind::EqualPartition), "Equal-partitions");
  EXPECT_STREQ(to_string(PolicyKind::BankAware), "Bank-aware");
}

}  // namespace
}  // namespace bacp::sim
