#include "cache/set_assoc_cache.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace bacp::cache {
namespace {

SetAssocCache::Config tiny(WayCount ways = 4, std::uint32_t sets = 4,
                           std::uint32_t cores = 2) {
  SetAssocCache::Config config;
  config.name = "test";
  config.num_sets = sets;
  config.ways = ways;
  config.num_cores = cores;
  return config;
}

/// Block address landing in `set` with a distinguishing tag.
BlockAddress block_in(std::uint32_t set, std::uint64_t tag, std::uint32_t sets = 4) {
  return (tag * sets) + set;
}

TEST(SetAssocCache, MissThenHit) {
  SetAssocCache cache(tiny());
  const auto b = block_in(0, 1);
  EXPECT_FALSE(cache.access(b, 0, false).hit);
  cache.fill(b, 0, false);
  EXPECT_TRUE(cache.access(b, 0, false).hit);
  EXPECT_EQ(cache.stats().hits[0], 1u);
  EXPECT_EQ(cache.stats().misses[0], 1u);
}

TEST(SetAssocCache, FillPrefersInvalidWays) {
  SetAssocCache cache(tiny());
  for (std::uint64_t t = 0; t < 4; ++t) {
    const auto result = cache.fill(block_in(1, t), 0, false);
    EXPECT_FALSE(result.evicted.has_value()) << "fill " << t;
  }
  EXPECT_EQ(cache.valid_lines(), 4u);
}

TEST(SetAssocCache, EvictsTrueLru) {
  SetAssocCache cache(tiny());
  for (std::uint64_t t = 0; t < 4; ++t) cache.fill(block_in(0, t), 0, false);
  // Touch 0 so block 1 becomes LRU.
  cache.access(block_in(0, 0), 0, false);
  const auto result = cache.fill(block_in(0, 9), 0, false);
  ASSERT_TRUE(result.evicted.has_value());
  EXPECT_EQ(result.evicted->block, block_in(0, 1));
}

TEST(SetAssocCache, WritesSetDirtyAndEvictionReportsIt) {
  SetAssocCache cache(tiny(1, 4, 1));
  cache.fill(block_in(0, 1), 0, false);
  cache.access(block_in(0, 1), 0, true);  // write hit
  const auto result = cache.fill(block_in(0, 2), 0, false);
  ASSERT_TRUE(result.evicted.has_value());
  EXPECT_TRUE(result.evicted->dirty);
}

TEST(SetAssocCache, MarkDirtyWithoutLruPerturbation) {
  SetAssocCache cache(tiny(2, 4, 1));
  cache.fill(block_in(0, 1), 0, false);
  cache.fill(block_in(0, 2), 0, false);
  // block 1 is LRU; mark_dirty must not move it to MRU.
  EXPECT_TRUE(cache.mark_dirty(block_in(0, 1)));
  const auto result = cache.fill(block_in(0, 3), 0, false);
  ASSERT_TRUE(result.evicted.has_value());
  EXPECT_EQ(result.evicted->block, block_in(0, 1));
  EXPECT_TRUE(result.evicted->dirty);
  EXPECT_FALSE(cache.mark_dirty(block_in(0, 99)));
}

TEST(SetAssocCache, ProbeDoesNotTouchLru) {
  SetAssocCache cache(tiny(2, 4, 1));
  cache.fill(block_in(0, 1), 0, false);
  cache.fill(block_in(0, 2), 0, false);
  EXPECT_TRUE(cache.probe(block_in(0, 1)));  // must NOT promote to MRU
  const auto result = cache.fill(block_in(0, 3), 0, false);
  ASSERT_TRUE(result.evicted.has_value());
  EXPECT_EQ(result.evicted->block, block_in(0, 1));
}

TEST(SetAssocCache, InvalidateRemovesAndFreesWay) {
  SetAssocCache cache(tiny(2, 4, 1));
  cache.fill(block_in(0, 1), 0, false);
  cache.fill(block_in(0, 2), 0, false);
  const auto line = cache.invalidate(block_in(0, 2));
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->block, block_in(0, 2));
  EXPECT_FALSE(cache.probe(block_in(0, 2)));
  // The freed way must be the next allocation target (no eviction).
  const auto result = cache.fill(block_in(0, 3), 0, false);
  EXPECT_FALSE(result.evicted.has_value());
}

TEST(SetAssocCache, InvalidateMissingReturnsNullopt) {
  SetAssocCache cache(tiny());
  EXPECT_FALSE(cache.invalidate(block_in(0, 5)).has_value());
}

TEST(SetAssocCache, HitAllowedInAnyWayRegardlessOfPartition) {
  SetAssocCache cache(tiny(2, 4, 2));
  cache.set_way_partition({core_bit(0), core_bit(1)});
  cache.fill(block_in(0, 1), 0, false);  // goes to way 0 (core 0's way)
  // Core 1 may *hit* on core 0's line (partitioning restricts replacement,
  // not lookup).
  EXPECT_TRUE(cache.access(block_in(0, 1), 1, false).hit);
}

TEST(SetAssocCache, VictimSelectionRespectsWayMasks) {
  SetAssocCache cache(tiny(2, 4, 2));
  cache.set_way_partition({core_bit(0), core_bit(1)});
  cache.fill(block_in(0, 1), 0, false);
  cache.fill(block_in(0, 2), 1, false);
  // Core 1 fills again: must evict its own line, not core 0's.
  const auto result = cache.fill(block_in(0, 3), 1, false);
  ASSERT_TRUE(result.evicted.has_value());
  EXPECT_EQ(result.evicted->block, block_in(0, 2));
  EXPECT_TRUE(cache.probe(block_in(0, 1)));
}

TEST(SetAssocCache, WaysOwnedCountsMaskBits) {
  SetAssocCache cache(tiny(4, 4, 2));
  cache.set_way_partition(
      {core_bit(0), core_bit(0), core_bit(1), core_bit(0) | core_bit(1)});
  EXPECT_EQ(cache.ways_owned(0), 3u);
  EXPECT_EQ(cache.ways_owned(1), 2u);
}

TEST(SetAssocCache, RepartitionLeavesResidentLines) {
  SetAssocCache cache(tiny(2, 4, 2));
  cache.set_way_partition({core_bit(0), core_bit(0)});
  cache.fill(block_in(0, 1), 0, false);
  cache.set_way_partition({core_bit(1), core_bit(1)});
  EXPECT_TRUE(cache.probe(block_in(0, 1)));  // stale line persists
  // Core 1's next fills displace it naturally.
  cache.fill(block_in(0, 5), 1, false);
  cache.fill(block_in(0, 6), 1, false);
  EXPECT_FALSE(cache.probe(block_in(0, 1)));
}

TEST(SetAssocCache, LruLineForCoreFindsOwnedLru) {
  SetAssocCache cache(tiny(4, 4, 2));
  cache.set_way_partition({core_bit(0), core_bit(0), core_bit(1), core_bit(1)});
  cache.fill(block_in(0, 1), 0, false);
  cache.fill(block_in(0, 2), 0, false);
  cache.fill(block_in(0, 3), 1, false);
  const auto lru0 = cache.lru_line_for_core(block_in(0, 0), 0);
  ASSERT_TRUE(lru0.has_value());
  EXPECT_EQ(lru0->block, block_in(0, 1));
  const auto lru1 = cache.lru_line_for_core(block_in(0, 0), 1);
  ASSERT_TRUE(lru1.has_value());
  EXPECT_EQ(lru1->block, block_in(0, 3));
}

/// Isolation property: with disjoint way masks, a core's fills can never
/// displace the other core's lines — the partitioning guarantee the whole
/// paper rests on. Randomized sweep over way splits.
class PartitionIsolation : public ::testing::TestWithParam<WayCount> {};

TEST_P(PartitionIsolation, DisjointPartitionsNeverInterfere) {
  const WayCount ways_core0 = GetParam();
  constexpr WayCount kWays = 8;
  SetAssocCache cache(tiny(kWays, 16, 2));
  std::vector<CoreMask> masks(kWays);
  for (WayCount w = 0; w < kWays; ++w) {
    masks[w] = w < ways_core0 ? core_bit(0) : core_bit(1);
  }
  cache.set_way_partition(masks);

  common::Rng rng(GetParam());
  std::set<BlockAddress> core0_resident;
  for (int i = 0; i < 20000; ++i) {
    const CoreId core = rng.next_bool(0.5) ? 0 : 1;
    const BlockAddress block =
        (rng.next_below(500) * 16 + rng.next_below(16)) * 2 + core;
    if (!cache.access(block, core, false).hit) {
      const auto result = cache.fill(block, core, false);
      if (result.evicted) {
        EXPECT_EQ(result.evicted->allocator, core)
            << "a fill displaced the other core's line";
        if (core == 0) core0_resident.erase(result.evicted->block);
      }
    }
    if (core == 0) core0_resident.insert(block);
  }
}

INSTANTIATE_TEST_SUITE_P(WaySplits, PartitionIsolation,
                         ::testing::Values(1u, 2u, 4u, 6u, 7u));

TEST(SetAssocCache, PeekVictimPredictsFillEviction) {
  // peek_victim is the batched pipeline's prefetch planner: immediately
  // before the matching fill it must name exactly the line fill() evicts —
  // including the single-owned-way fast path (core 1 below) and the
  // "invalid way available, no eviction" case.
  SetAssocCache cache(tiny(4, 8, 3));
  cache.set_way_partition(
      {core_bit(0), core_bit(0), core_bit(1), core_bit(2) | core_bit(0)});
  common::Rng rng(0xBEEF);
  for (std::size_t i = 0; i < 50'000; ++i) {
    const BlockAddress block = block_in(static_cast<std::uint32_t>(rng.next_below(8)),
                                        rng.next_below(64), 8);
    const CoreId core = static_cast<CoreId>(rng.next_below(3));
    if (cache.probe(block)) {
      cache.access(block, core, rng.next_bool(0.3));
      continue;
    }
    const auto predicted = cache.peek_victim(block, core);
    const auto result = cache.fill(block, core, false);
    ASSERT_EQ(predicted.has_value(), result.evicted.has_value()) << "step " << i;
    if (predicted.has_value()) {
      ASSERT_EQ(*predicted, result.evicted->block) << "step " << i;
    }
    // holds_at certifies the install coordinate, and only that coordinate.
    ASSERT_TRUE(cache.holds_at(block, result.way)) << "step " << i;
    ASSERT_FALSE(cache.holds_at(block ^ 0x4000, result.way)) << "step " << i;
  }
}

TEST(SetAssocCache, HoldsAtAgreesWithProbeEverywhere) {
  SetAssocCache cache(tiny(4, 4, 2));
  cache.set_way_partition(
      {core_bit(0), core_bit(0), core_bit(1), core_bit(1)});
  common::Rng rng(0x401D);
  std::vector<BlockAddress> pool;
  for (std::size_t i = 0; i < 20'000; ++i) {
    BlockAddress block;
    if (!pool.empty() && rng.next_bool(0.5)) {
      block = pool[rng.next_below(pool.size())];
    } else {
      block = block_in(static_cast<std::uint32_t>(rng.next_below(4)),
                       rng.next_below(32));
      pool.push_back(block);
    }
    const CoreId core = static_cast<CoreId>(rng.next_below(2));
    if (!cache.probe(block)) {
      cache.fill(block, core, false);
    } else if (rng.next_bool(0.2)) {
      cache.invalidate(block);
    } else {
      cache.access(block, core, rng.next_bool(0.3));
    }
    if (i % 500 == 499) {
      // holds_at over every (block, way) must reconstruct exactly probe():
      // present iff some way certifies, and at most one way ever does.
      for (const BlockAddress probe : pool) {
        std::uint32_t certified = 0;
        for (WayIndex way = 0; way < 4; ++way) {
          if (cache.holds_at(probe, way)) ++certified;
        }
        ASSERT_LE(certified, 1u) << "block " << probe;
        ASSERT_EQ(cache.probe(probe), certified == 1) << "block " << probe;
      }
    }
  }
}

TEST(CacheStats, AggregationAndClear) {
  CacheStats stats(2);
  stats.hits[0] = 3;
  stats.misses[1] = 2;
  stats.hits[1] = 5;
  EXPECT_EQ(stats.total_hits(), 8u);
  EXPECT_EQ(stats.total_misses(), 2u);
  EXPECT_EQ(stats.total_accesses(), 10u);
  EXPECT_DOUBLE_EQ(stats.miss_ratio(), 0.2);
  stats.clear();
  EXPECT_EQ(stats.total_accesses(), 0u);
  EXPECT_DOUBLE_EQ(stats.miss_ratio(), 0.0);
}

}  // namespace
}  // namespace bacp::cache
