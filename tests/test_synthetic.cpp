#include "trace/synthetic.hpp"

#include <gtest/gtest.h>

#include <set>

#include "msa/stack_profiler.hpp"
#include "trace/spec2000.hpp"

namespace bacp::trace {
namespace {

GeneratorConfig small_config(CoreId core = 0) {
  GeneratorConfig config;
  config.num_sets = 256;
  config.max_depth = 128;
  config.core = core;
  return config;
}

TEST(SyntheticGenerator, DeterministicForSameSeed) {
  const auto& model = spec2000_by_name("gzip");
  SyntheticTraceGenerator a(model, small_config(), 5);
  SyntheticTraceGenerator b(model, small_config(), 5);
  for (int i = 0; i < 2000; ++i) {
    const auto x = a.next();
    const auto y = b.next();
    EXPECT_EQ(x.block, y.block);
    EXPECT_EQ(x.is_write, y.is_write);
  }
}

TEST(SyntheticGenerator, DifferentSeedsDiffer) {
  const auto& model = spec2000_by_name("gzip");
  SyntheticTraceGenerator a(model, small_config(), 5);
  SyntheticTraceGenerator b(model, small_config(), 6);
  int equal = 0;
  for (int i = 0; i < 500; ++i) {
    if (a.next().block == b.next().block) ++equal;
  }
  EXPECT_LT(equal, 100);
}

TEST(SyntheticGenerator, BlockLowBitsEncodeTheSet) {
  // The cache derives the set as block % num_sets; the generator's recency
  // bookkeeping must agree with that mapping.
  const auto& model = spec2000_by_name("applu");
  auto config = small_config();
  SyntheticTraceGenerator generator(model, config, 9);
  std::set<std::uint64_t> sets_seen;
  for (int i = 0; i < 20000; ++i) {
    sets_seen.insert(generator.next().block % config.num_sets);
  }
  EXPECT_EQ(sets_seen.size(), config.num_sets);  // uniform set selection
}

TEST(SyntheticGenerator, CoreIdStampsAddressSpace) {
  const auto& model = spec2000_by_name("applu");
  SyntheticTraceGenerator a(model, small_config(0), 5);
  SyntheticTraceGenerator b(model, small_config(1), 5);
  std::set<BlockAddress> from_a;
  for (int i = 0; i < 5000; ++i) from_a.insert(a.next().block);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(from_a.count(b.next().block), 0u) << "address spaces must be disjoint";
  }
}

TEST(SyntheticGenerator, WriteFractionMatchesModel) {
  const auto& model = spec2000_by_name("bzip2");  // write_fraction 0.35
  SyntheticTraceGenerator generator(model, small_config(), 21);
  int writes = 0;
  constexpr int kAccesses = 50000;
  for (int i = 0; i < kAccesses; ++i) writes += generator.next().is_write ? 1 : 0;
  EXPECT_NEAR(writes / static_cast<double>(kAccesses), model.write_fraction, 0.02);
}

TEST(SyntheticGenerator, FootprintGrowsWithColdFraction) {
  const auto& cold_heavy = spec2000_by_name("swim");   // cold 0.42
  const auto& cold_light = spec2000_by_name("sixtrack");  // cold 0.05
  SyntheticTraceGenerator a(cold_heavy, small_config(), 3);
  SyntheticTraceGenerator b(cold_light, small_config(), 3);
  for (int i = 0; i < 50000; ++i) {
    a.next();
    b.next();
  }
  EXPECT_GT(a.blocks_allocated(), 2 * b.blocks_allocated());
}

/// The defining property: the generated stream's MSA histogram converges to
/// the model's stack-distance distribution (full-tag, all-sets profiler).
class GeneratorConvergence : public ::testing::TestWithParam<const char*> {};

TEST_P(GeneratorConvergence, ProfiledHistogramMatchesModel) {
  const auto& model = spec2000_by_name(GetParam());
  auto config = small_config();
  SyntheticTraceGenerator generator(model, config, 17);

  msa::ProfilerConfig profiler_config;
  profiler_config.num_sets = config.num_sets;
  profiler_config.set_sampling = 1;
  profiler_config.partial_tag_bits = 0;
  profiler_config.profiled_ways = config.max_depth;
  msa::StackProfiler profiler(profiler_config);

  constexpr std::uint64_t kWarm = 450000;
  constexpr std::uint64_t kMeasure = 400000;
  for (std::uint64_t i = 0; i < kWarm; ++i) generator.next();
  for (std::uint64_t i = 0; i < kMeasure; ++i) profiler.observe(generator.next().block);

  const auto expected = model.stack_distance_weights(config.max_depth);
  const auto measured = profiler.histogram().normalized();
  ASSERT_EQ(measured.size(), expected.size());
  // Compare cumulative distributions (pointwise bins are noisy).
  double cumulative_expected = 0.0;
  double cumulative_measured = 0.0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    cumulative_expected += expected[i];
    cumulative_measured += measured[i];
    EXPECT_NEAR(cumulative_measured, cumulative_expected, 0.04)
        << "CDF at depth " << i + 1;
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, GeneratorConvergence,
                         ::testing::Values("sixtrack", "applu", "bzip2", "mcf",
                                           "gzip", "facerec", "eon", "swim"));

}  // namespace
}  // namespace bacp::trace
