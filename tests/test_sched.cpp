#include "sched/service.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sched/events.hpp"
#include "sched/sched_audit.hpp"
#include "trace/mix.hpp"

// Service lifecycle tests: tenant admission/eviction against a live
// simulator, structural audits at every boundary, id reuse, run-to-run
// determinism, and bit-identical mid-churn checkpoint/resume.

namespace bacp::sched {
namespace {

trace::WorkloadMix substrate() {
  return trace::mix_from_names(
      {"gzip", "mesa", "eon", "crafty", "perlbmk", "gap", "vortex", "bzip2"});
}

ServiceConfig small_config() {
  ServiceConfig config;
  config.system.epoch_cycles = 10'000;
  config.system.seed = 11;
  config.warmup_instructions = 20'000;
  config.finalize();
  return config;
}

void expect_audit_clean(const Service& service, const char* where) {
  const auto report = audit_sched(service);
  EXPECT_TRUE(report.ok()) << where << ": " << report.to_string();
  EXPECT_GT(report.checks, 0u);
}

TEST(SchedService, AdmitStepEvictLifecycle) {
  Service service(small_config(), substrate());
  EXPECT_EQ(service.num_live(), 0u);
  EXPECT_EQ(service.capacity(), 8u);
  expect_audit_clean(service, "fresh");

  service.admit({101, "mcf"});
  service.admit({102, "swim"});
  expect_audit_clean(service, "after admits");
  EXPECT_EQ(service.num_live(), 2u);
  EXPECT_TRUE(service.is_live(101));
  EXPECT_EQ(service.admissions(), 2u);
  EXPECT_GE(service.replans(), 2u);  // every admission repartitions

  service.step(3);
  expect_audit_clean(service, "after steps");
  EXPECT_EQ(service.epoch(), 3u);

  const auto live = service.live_tenants();
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0].id, 101u);
  EXPECT_EQ(live[1].id, 102u);
  EXPECT_EQ(live[0].live_epochs, 3u);
  EXPECT_GT(live[0].ways, 0u);

  service.evict(101);
  expect_audit_clean(service, "after evict");
  EXPECT_EQ(service.num_live(), 1u);
  EXPECT_FALSE(service.is_live(101));
  EXPECT_EQ(service.evictions(), 1u);

  // The evicted tenant's series survive for reporting, keyed by id.
  const std::string dump = service.tenant_report().dump();
  EXPECT_NE(dump.find("\"tenant\":101"), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"tenant\":102"), std::string::npos) << dump;
}

TEST(SchedService, IdReuseAfterEvictRebindsCleanly) {
  Service service(small_config(), substrate());
  service.admit({7, "mcf"});
  service.step(2);
  service.evict(7);
  service.step(1);

  // Same id, different workload: must admit as a fresh tenant (new binding,
  // new salt for its RNG streams), not resurrect stale state.
  service.admit({7, "swim"});
  expect_audit_clean(service, "after re-admit");
  ASSERT_TRUE(service.is_live(7));
  const auto live = service.live_tenants();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].live_epochs, 0u);
  EXPECT_EQ(live[0].admitted_epoch, 3u);
  EXPECT_EQ(service.admissions(), 2u);

  service.step(2);
  expect_audit_clean(service, "after re-admit steps");
  // Both lifetimes land in one id-keyed series: 2 + 2 harvested epochs.
  const std::string dump = service.tenant_report().dump();
  EXPECT_NE(dump.find("\"workload\":\"swim\""), std::string::npos) << dump;
}

TEST(SchedService, ChurnStreamIsDeterministicAcrossServices) {
  ChurnConfig churn;
  churn.epochs = 30;
  churn.min_residency = 3;
  churn.max_residency = 12;
  churn.arrival_rate = 1.5;
  churn.thrasher_period = 10;
  churn.thrasher_residency = 5;
  const auto events = generate_churn(churn);
  ASSERT_FALSE(events.empty());

  const auto run = [&] {
    Service service(small_config(), substrate());
    service.play(events);
    service.drain(churn.epochs);
    expect_audit_clean(service, "after drain");
    EXPECT_EQ(service.num_live(), 0u);
    return service.tenant_report().dump();
  };
  EXPECT_EQ(run(), run());
}

TEST(SchedService, MidChurnSaveRestoreResumesBitIdentically) {
  const auto config = small_config();
  const auto mix = substrate();

  Service original(config, mix);
  original.admit({1, "mcf"});
  original.admit({2, "swim"});
  original.step(4);
  original.evict(1);
  original.admit({3, "art"});
  original.step(2);

  const auto snapshot = original.save_state();

  Service resumed(config, mix);
  resumed.restore_state(snapshot);
  expect_audit_clean(resumed, "after restore");
  EXPECT_EQ(resumed.epoch(), original.epoch());
  EXPECT_EQ(resumed.num_live(), original.num_live());
  EXPECT_EQ(resumed.admissions(), original.admissions());
  EXPECT_EQ(resumed.tenant_report().dump(), original.tenant_report().dump());

  // Checkpoint of the restored service is byte-identical to the original's.
  EXPECT_EQ(resumed.save_state().bytes, snapshot.bytes);

  // Both futures must now be the same run: same churn applied to each side.
  const std::vector<Event> tail = {
      {original.epoch() + 1, EventKind::Evict, 2, ""},
      {original.epoch() + 1, EventKind::Admit, 4, "gcc"},
  };
  original.play(tail);
  resumed.play(tail);
  original.step(3);
  resumed.step(3);
  expect_audit_clean(resumed, "after resumed churn");
  EXPECT_EQ(resumed.tenant_report().dump(), original.tenant_report().dump());
  EXPECT_EQ(resumed.save_state().bytes, original.save_state().bytes);
}

TEST(SchedServiceDeath, OverAdmissionAborts) {
  Service service(small_config(), substrate());
  for (std::uint64_t id = 1; id <= service.capacity(); ++id) {
    service.admit({id, "gzip"});
  }
  EXPECT_DEATH(service.admit({99, "gzip"}), "free slot");
}

TEST(SchedServiceDeath, ForeignSnapshotAborts) {
  Service service(small_config(), substrate());
  service.admit({1, "mcf"});
  service.step(1);
  const auto snapshot = service.save_state();

  auto other_config = small_config();
  other_config.streaming_ways = 12;  // different digest
  Service other(other_config, substrate());
  EXPECT_DEATH(other.restore_state(snapshot), "digest");
}

}  // namespace
}  // namespace bacp::sched
