#include "partition/static_policies.hpp"

#include <gtest/gtest.h>

#include <bit>

namespace bacp::partition {
namespace {

TEST(EqualPartition, TwoMegabytesPerCore) {
  CmpGeometry geometry;
  const auto plan = equal_partition(geometry);
  for (CoreId core = 0; core < geometry.num_cores; ++core) {
    EXPECT_EQ(plan.allocation.ways_per_core[core], 16u);
    EXPECT_EQ(plan.assignment.banks_of_core[core].size(), 2u);
  }
  EXPECT_EQ(plan.allocation.total(), geometry.total_ways());
}

TEST(EqualPartition, BanksArePrivate) {
  CmpGeometry geometry;
  const auto plan = equal_partition(geometry);
  for (BankId bank = 0; bank < geometry.num_banks; ++bank) {
    for (const CoreMask mask : plan.assignment.way_masks[bank]) {
      EXPECT_EQ(std::popcount(mask), 1) << "bank " << bank;
    }
  }
}

TEST(EqualPartition, EachCoreGetsItsLocalBankPlusTheNearestCenter) {
  CmpGeometry geometry;
  const auto plan = equal_partition(geometry);
  for (CoreId core = 0; core < geometry.num_cores; ++core) {
    const auto& banks = plan.assignment.banks_of_core[core];
    EXPECT_EQ(banks[0], geometry.local_bank(core));
    EXPECT_EQ(banks[1], geometry.num_cores + core);
  }
}

TEST(EqualPartition, ValidatesAgainstGeometry) {
  CmpGeometry geometry;
  const auto plan = equal_partition(geometry);
  plan.assignment.validate_against(geometry, plan.allocation);
}

TEST(NoPartition, EveryWaySharedByAllCores) {
  CmpGeometry geometry;
  const auto plan = no_partition(geometry);
  for (const auto& bank : plan.assignment.way_masks) {
    for (const CoreMask mask : bank) {
      EXPECT_EQ(mask, ~CoreMask{0});
    }
  }
}

TEST(NoPartition, EveryCoreSeesEveryBank) {
  CmpGeometry geometry;
  const auto plan = no_partition(geometry);
  for (CoreId core = 0; core < geometry.num_cores; ++core) {
    EXPECT_EQ(plan.assignment.banks_of_core[core].size(), geometry.num_banks);
    EXPECT_EQ(plan.allocation.ways_per_core[core], geometry.total_ways());
  }
}

TEST(CmpGeometry, PaperBaselineNumbers) {
  CmpGeometry geometry;
  EXPECT_EQ(geometry.total_ways(), 128u);
  EXPECT_EQ(geometry.max_assignable_ways(), 72u);  // 9/16 of the cache
  EXPECT_EQ(geometry.num_center_banks(), 8u);
  EXPECT_TRUE(geometry.is_center_bank(8));
  EXPECT_FALSE(geometry.is_center_bank(7));
  EXPECT_EQ(geometry.local_bank(3), 3u);
}

TEST(CmpGeometry, AdjacencyIsTheLinearRow) {
  CmpGeometry geometry;
  EXPECT_TRUE(geometry.adjacent(0, 1));
  EXPECT_TRUE(geometry.adjacent(5, 4));
  EXPECT_FALSE(geometry.adjacent(0, 2));
  EXPECT_FALSE(geometry.adjacent(3, 3));
  EXPECT_FALSE(geometry.adjacent(0, 7));
}

}  // namespace
}  // namespace bacp::partition
