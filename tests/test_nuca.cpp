#include "nuca/dnuca_cache.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "partition/bank_aware.hpp"
#include "partition/static_policies.hpp"
#include "trace/spec2000.hpp"
#include "trace/synthetic.hpp"

namespace bacp::nuca {
namespace {

/// A small DNUCA for fast tests: 4 cores, 8 banks (4 local + 4 center),
/// 4 ways per bank, 16 sets.
DnucaConfig small_config(AggregationKind kind) {
  DnucaConfig config;
  config.geometry.num_cores = 4;
  config.geometry.num_banks = 8;
  config.geometry.ways_per_bank = 4;
  config.sets_per_bank = 16;
  config.aggregation = kind;
  return config;
}

noc::NocConfig small_noc() {
  noc::NocConfig config;
  config.num_cores = 4;
  config.num_banks = 8;
  return config;
}

BlockAddress block(std::uint32_t set, std::uint64_t tag, CoreId core = 0) {
  return (static_cast<std::uint64_t>(core) << 40) | (tag * 16) | set;
}

TEST(Dnuca, MissInstallsAndHitFollows) {
  noc::Noc noc(small_noc());
  DnucaCache cache(small_config(AggregationKind::Parallel), noc);
  cache.apply_assignment(partition::equal_partition(cache.config().geometry).assignment);
  const auto miss = cache.access(block(0, 1), 0, false, 0);
  EXPECT_FALSE(miss.hit);
  const auto hit = cache.access(block(0, 1), 0, false, 100);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(cache.stats().hits[0], 1u);
  EXPECT_EQ(cache.stats().misses[0], 1u);
}

TEST(Dnuca, EqualPlanKeepsCoresInTheirOwnBanks) {
  noc::Noc noc(small_noc());
  DnucaCache cache(small_config(AggregationKind::Parallel), noc);
  cache.apply_assignment(partition::equal_partition(cache.config().geometry).assignment);
  cache.access(block(0, 1, 2), 2, false, 0);
  const BankId where = cache.bank_of(block(0, 1, 2));
  const auto& view = cache.view_of(2);
  EXPECT_NE(std::find(view.begin(), view.end(), where), view.end());
}

TEST(Dnuca, CascadeFillsAtHeadBank) {
  noc::Noc noc(small_noc());
  DnucaCache cache(small_config(AggregationKind::Cascade), noc);
  cache.apply_assignment(partition::equal_partition(cache.config().geometry).assignment);
  cache.access(block(3, 9, 1), 1, false, 0);
  EXPECT_EQ(cache.bank_of(block(3, 9, 1)), cache.view_of(1).front());
}

TEST(Dnuca, CascadeDemotesDownTheChainInsteadOfEvicting) {
  noc::Noc noc(small_noc());
  DnucaCache cache(small_config(AggregationKind::Cascade), noc);
  cache.apply_assignment(partition::equal_partition(cache.config().geometry).assignment);
  // Core 0's partition: 2 banks x 4 ways = 8 lines per set. Fill 5 distinct
  // blocks into one set: the 5th fill demotes the LRU of the head bank into
  // the second bank; nothing leaves the cache.
  for (std::uint64_t t = 1; t <= 5; ++t) {
    const auto outcome = cache.access(block(0, t), 0, false, t * 10);
    EXPECT_TRUE(outcome.evicted.empty()) << "tag " << t;
  }
  EXPECT_GE(cache.stats().demotions, 1u);
  for (std::uint64_t t = 1; t <= 5; ++t) EXPECT_TRUE(cache.resident(block(0, t)));
}

TEST(Dnuca, CascadeHitPromotesBackToHead) {
  noc::Noc noc(small_noc());
  DnucaCache cache(small_config(AggregationKind::Cascade), noc);
  cache.apply_assignment(partition::equal_partition(cache.config().geometry).assignment);
  for (std::uint64_t t = 1; t <= 5; ++t) cache.access(block(0, t), 0, false, t);
  // Block 1 was demoted to the second bank; a hit must promote it home.
  const BankId head = cache.view_of(0).front();
  EXPECT_NE(cache.bank_of(block(0, 1)), head);
  cache.access(block(0, 1), 0, false, 100);
  EXPECT_EQ(cache.bank_of(block(0, 1)), head);
  EXPECT_GE(cache.stats().promotions, 1u);
}

TEST(Dnuca, CascadeOverflowEvictsFromTheTail) {
  noc::Noc noc(small_noc());
  DnucaCache cache(small_config(AggregationKind::Cascade), noc);
  cache.apply_assignment(partition::equal_partition(cache.config().geometry).assignment);
  std::size_t evictions = 0;
  for (std::uint64_t t = 1; t <= 12; ++t) {
    evictions += cache.access(block(0, t), 0, false, t * 10).evicted.size();
  }
  // Partition capacity is 8 lines/set: 12 fills must push 4 lines out.
  EXPECT_EQ(evictions, 4u);
}

TEST(Dnuca, AddressHashIsPlacementStable) {
  // The hash-selected home bank is a pure function of the address: two
  // caches built identically place the same block in the same bank.
  noc::Noc noc_a(small_noc());
  noc::Noc noc_b(small_noc());
  DnucaCache a(small_config(AggregationKind::AddressHash), noc_a);
  DnucaCache b(small_config(AggregationKind::AddressHash), noc_b);
  a.apply_assignment(partition::equal_partition(a.config().geometry).assignment);
  b.apply_assignment(partition::equal_partition(b.config().geometry).assignment);
  for (std::uint64_t t = 0; t < 32; ++t) {
    a.access(block(1, t), 0, false, t);
    b.access(block(1, t), 0, false, t);
    EXPECT_EQ(a.bank_of(block(1, t)), b.bank_of(block(1, t))) << "tag " << t;
  }
}

TEST(Dnuca, TwoLevelCascadeSwapsWithHeadOnly) {
  noc::Noc noc(small_noc());
  DnucaCache cache(small_config(AggregationKind::TwoLevelCascade), noc);
  cache.apply_assignment(partition::equal_partition(cache.config().geometry).assignment);
  for (std::uint64_t t = 1; t <= 5; ++t) cache.access(block(0, t), 0, false, t);
  const std::uint64_t demotions_before = cache.stats().demotions;
  cache.access(block(0, 1), 0, false, 100);  // hit in the group: swap to head
  EXPECT_EQ(cache.bank_of(block(0, 1)), cache.view_of(0).front());
  EXPECT_GE(cache.stats().promotions, 1u);
  EXPECT_LE(cache.stats().demotions, demotions_before + 1);  // single swap step
}

TEST(Dnuca, WritebackUpdateMarksResidentLineDirty) {
  noc::Noc noc(small_noc());
  DnucaCache cache(small_config(AggregationKind::Parallel), noc);
  cache.apply_assignment(partition::equal_partition(cache.config().geometry).assignment);
  cache.access(block(0, 1), 0, false, 0);
  EXPECT_TRUE(cache.writeback_update(block(0, 1)));
  EXPECT_FALSE(cache.writeback_update(block(0, 99)));
}

TEST(Dnuca, OffViewHitMigratesIntoTheNewPartition) {
  noc::Noc noc(small_noc());
  DnucaCache cache(small_config(AggregationKind::Parallel), noc);
  const auto geometry = cache.config().geometry;
  cache.apply_assignment(partition::equal_partition(geometry).assignment);
  cache.access(block(2, 5, 0), 0, false, 0);  // lives in core 0's banks

  // Repartition: hand core 0's banks to core 1 and vice versa by swapping
  // the two cores' curves in a bank-aware plan. Simplest: give core 1 the
  // equal plan views of core 0 by re-applying with swapped bank lists.
  auto plan = partition::equal_partition(geometry);
  std::swap(plan.assignment.banks_of_core[0], plan.assignment.banks_of_core[1]);
  for (auto& bank_masks : plan.assignment.way_masks) {
    for (auto& mask : bank_masks) {
      if (mask == core_bit(0)) {
        mask = core_bit(1);
      } else if (mask == core_bit(1)) {
        mask = core_bit(0);
      }
    }
  }
  std::swap(plan.allocation.ways_per_core[0], plan.allocation.ways_per_core[1]);
  cache.apply_assignment(plan.assignment);

  // Core 0 hits its old line (now off-view) and the line moves into core
  // 0's new partition.
  const auto outcome = cache.access(block(2, 5, 0), 0, false, 100);
  EXPECT_TRUE(outcome.hit);
  EXPECT_EQ(cache.stats().offview_hits, 1u);
  const BankId now_at = cache.bank_of(block(2, 5, 0));
  const auto& view = cache.view_of(0);
  EXPECT_NE(std::find(view.begin(), view.end(), now_at), view.end());
}

TEST(Dnuca, SharedDnucaMigratesTowardTheRequester) {
  noc::Noc noc(small_noc());
  DnucaCache cache(small_config(AggregationKind::SharedDnuca), noc);
  // Default views (all banks, id order); core 0's head is bank 0.
  const auto b = block(0, 40);
  cache.access(b, 0, false, 0);
  const BankId home = cache.bank_of(b);
  // Repeated hits walk the line one view position closer each time.
  for (Cycle i = 1; i <= 8; ++i) cache.access(b, 0, false, i * 10);
  EXPECT_EQ(cache.bank_of(b), cache.view_of(0).front());
  if (home != cache.view_of(0).front()) {
    EXPECT_GE(cache.stats().promotions, 1u);
  }
}

TEST(Dnuca, DirectoryLookupWidthsFollowTheScheme) {
  for (const auto kind : {AggregationKind::Parallel, AggregationKind::AddressHash}) {
    noc::Noc noc(small_noc());
    DnucaCache cache(small_config(kind), noc);
    cache.apply_assignment(partition::equal_partition(cache.config().geometry).assignment);
    cache.access(block(0, 1), 0, false, 0);
    const auto outcome = cache.access(block(0, 1), 0, false, 10);
    if (kind == AggregationKind::Parallel) {
      EXPECT_EQ(outcome.directory_lookups, cache.view_of(0).size());
    } else {
      EXPECT_EQ(outcome.directory_lookups, 1u);
    }
  }
}

/// Uniqueness invariant: under every aggregation scheme and random access
/// streams, a block is resident in at most one bank.
class DnucaUniqueness : public ::testing::TestWithParam<AggregationKind> {};

TEST_P(DnucaUniqueness, BlockNeverDuplicatedAcrossBanks) {
  noc::Noc noc(small_noc());
  DnucaCache cache(small_config(GetParam()), noc);
  const auto geometry = cache.config().geometry;
  if (GetParam() != AggregationKind::SharedDnuca) {
    cache.apply_assignment(partition::equal_partition(geometry).assignment);
  }
  common::Rng rng(static_cast<std::uint64_t>(GetParam()) + 5);
  std::vector<BlockAddress> touched;
  for (int i = 0; i < 6000; ++i) {
    const auto core = static_cast<CoreId>(rng.next_below(geometry.num_cores));
    const BlockAddress b = block(static_cast<std::uint32_t>(rng.next_below(16)),
                                 rng.next_below(40), core);
    cache.access(b, core, rng.next_bool(0.3), static_cast<Cycle>(i) * 3);
    touched.push_back(b);
    if (i % 500 == 0) {
      for (const auto t : touched) {
        int copies = 0;
        for (BankId bank = 0; bank < geometry.num_banks; ++bank) {
          if (cache.bank(bank).probe(t)) ++copies;
        }
        ASSERT_LE(copies, 1) << "duplicate for block " << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, DnucaUniqueness,
                         ::testing::Values(AggregationKind::Parallel,
                                           AggregationKind::AddressHash,
                                           AggregationKind::Cascade,
                                           AggregationKind::TwoLevelCascade,
                                           AggregationKind::SharedDnuca));

TEST(Dnuca, ToStringNamesEveryKind) {
  EXPECT_STREQ(to_string(AggregationKind::Parallel), "Parallel");
  EXPECT_STREQ(to_string(AggregationKind::AddressHash), "AddressHash");
  EXPECT_STREQ(to_string(AggregationKind::Cascade), "Cascade");
  EXPECT_STREQ(to_string(AggregationKind::TwoLevelCascade), "TwoLevelCascade");
  EXPECT_STREQ(to_string(AggregationKind::SharedDnuca), "SharedDnuca");
}

TEST(Dnuca, ClearStatsResetsEverything) {
  noc::Noc noc(small_noc());
  DnucaCache cache(small_config(AggregationKind::Parallel), noc);
  cache.apply_assignment(partition::equal_partition(cache.config().geometry).assignment);
  cache.access(block(0, 1), 0, false, 0);
  cache.clear_stats();
  EXPECT_EQ(cache.stats().total_hits() + cache.stats().total_misses(), 0u);
  EXPECT_EQ(cache.stats().directory_lookups, 0u);
}

}  // namespace
}  // namespace bacp::nuca
