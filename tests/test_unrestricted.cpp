#include "partition/unrestricted.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "msa/miss_curve.hpp"
#include "trace/mix.hpp"
#include "trace/spec2000.hpp"

namespace bacp::partition {
namespace {

CmpGeometry small_geometry() {
  CmpGeometry g;
  g.num_cores = 2;
  g.num_banks = 4;
  g.ways_per_bank = 4;  // total 16 ways
  return g;
}

msa::MissRatioCurve flat() { return msa::MissRatioCurve({0, 0, 0, 0}, 10); }

TEST(Unrestricted, CoversTheWholeCache) {
  const auto geometry = small_geometry();
  std::vector<msa::MissRatioCurve> curves{flat(), flat()};
  const auto allocation = unrestricted_partition(geometry, curves);
  EXPECT_EQ(allocation.total(), geometry.total_ways());
}

TEST(Unrestricted, RespectsMinimumWays) {
  const auto geometry = small_geometry();
  // Core 1's curve is insatiable; core 0 still keeps its minimum.
  std::vector<msa::MissRatioCurve> curves{
      flat(), msa::MissRatioCurve(std::vector<double>(16, 100.0), 0)};
  UnrestrictedConfig config;
  config.min_ways_per_core = 2;
  const auto allocation = unrestricted_partition(geometry, curves, config);
  EXPECT_GE(allocation.ways_per_core[0], 2u);
  EXPECT_EQ(allocation.total(), 16u);
}

TEST(Unrestricted, RespectsMaximumCap) {
  const auto geometry = small_geometry();
  std::vector<msa::MissRatioCurve> curves{
      flat(), msa::MissRatioCurve(std::vector<double>(16, 100.0), 0)};
  UnrestrictedConfig config;
  config.max_ways_per_core = 10;
  const auto allocation = unrestricted_partition(geometry, curves, config);
  EXPECT_LE(allocation.ways_per_core[1], 10u);
  EXPECT_EQ(allocation.total(), 16u);
}

TEST(Unrestricted, GreedyFindsTheObviousSplit) {
  const auto geometry = small_geometry();
  // Core 0 benefits hugely from 12 ways; core 1 from 4.
  std::vector<double> hits0(16, 0.0), hits1(16, 0.0);
  for (int i = 0; i < 12; ++i) hits0[static_cast<std::size_t>(i)] = 10.0;
  for (int i = 0; i < 4; ++i) hits1[static_cast<std::size_t>(i)] = 9.0;
  std::vector<msa::MissRatioCurve> curves{msa::MissRatioCurve(hits0, 1),
                                          msa::MissRatioCurve(hits1, 1)};
  const auto allocation = unrestricted_partition(geometry, curves);
  EXPECT_EQ(allocation.ways_per_core[0], 12u);
  EXPECT_EQ(allocation.ways_per_core[1], 4u);
}

TEST(Unrestricted, LookaheadServesCliffCurves) {
  const auto geometry = small_geometry();
  // Core 0: loop needing exactly 10 ways (zero benefit below).
  std::vector<double> hits0(16, 0.0);
  hits0[9] = 100.0;
  std::vector<double> hits1(16, 1.0);  // gentle slope
  std::vector<msa::MissRatioCurve> curves{msa::MissRatioCurve(hits0, 1),
                                          msa::MissRatioCurve(hits1, 1)};
  const auto allocation = unrestricted_partition(geometry, curves);
  EXPECT_GE(allocation.ways_per_core[0], 10u);
}

TEST(Unrestricted, NeverWorseThanEvenShareOnSuiteMixes) {
  CmpGeometry geometry;  // full 8-core, 128-way
  const auto& suite = trace::spec2000_suite();
  common::Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const auto mix = trace::random_mix(rng, suite.size(), geometry.num_cores);
    std::vector<msa::MissRatioCurve> curves;
    std::vector<WayCount> even(geometry.num_cores, 16);
    for (const auto index : mix.workload_indices) {
      const auto& model = suite[index];
      curves.push_back(msa::MissRatioCurve::from_model(model, 128).scaled(model.l2_apki));
    }
    const auto allocation = unrestricted_partition(geometry, curves);
    const double optimized =
        projected_total_misses(curves, allocation.ways_per_core);
    const double baseline = projected_total_misses(curves, even);
    EXPECT_LE(optimized, baseline * 1.0001) << "trial " << trial;
  }
}

TEST(Unrestricted, DeterministicAcrossCalls) {
  CmpGeometry geometry;
  const auto& suite = trace::spec2000_suite();
  std::vector<msa::MissRatioCurve> curves;
  for (CoreId core = 0; core < geometry.num_cores; ++core) {
    const auto& model = suite[core];
    curves.push_back(msa::MissRatioCurve::from_model(model, 128).scaled(model.l2_apki));
  }
  const auto a = unrestricted_partition(geometry, curves);
  const auto b = unrestricted_partition(geometry, curves);
  EXPECT_EQ(a.ways_per_core, b.ways_per_core);
}

TEST(Unrestricted, IdenticalFlatCurvesSplitEvenly) {
  const auto geometry = small_geometry();
  std::vector<msa::MissRatioCurve> curves{flat(), flat()};
  const auto allocation = unrestricted_partition(geometry, curves);
  EXPECT_EQ(allocation.ways_per_core[0], 8u);
  EXPECT_EQ(allocation.ways_per_core[1], 8u);
}

}  // namespace
}  // namespace bacp::partition
