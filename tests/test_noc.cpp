#include "noc/noc.hpp"

#include <gtest/gtest.h>

namespace bacp::noc {
namespace {

TEST(Noc, LocalBankCostsTenCycles) {
  Noc noc(NocConfig{});
  for (CoreId core = 0; core < 8; ++core) {
    EXPECT_EQ(noc.hops(core, core), 1u);
    EXPECT_EQ(noc.access_latency(core, core), 10u);
  }
}

TEST(Noc, FarthestLocalBankCostsSeventyCycles) {
  // Paper: "core 0 to access the Local bank next to core 7 ... requires
  // 7 hops" = 70 cycles.
  Noc noc(NocConfig{});
  EXPECT_EQ(noc.hops(0, 7), 7u);
  EXPECT_EQ(noc.access_latency(0, 7), 70u);
  EXPECT_EQ(noc.access_latency(7, 0), 70u);
}

TEST(Noc, LatencyAlwaysInPaperRange) {
  Noc noc(NocConfig{});
  for (CoreId core = 0; core < 8; ++core) {
    for (BankId bank = 0; bank < 16; ++bank) {
      const Cycle latency = noc.access_latency(core, bank);
      EXPECT_GE(latency, 10u);
      EXPECT_LE(latency, 70u);
    }
  }
}

TEST(Noc, CenterBanksCostOneExtraVerticalHop) {
  Noc noc(NocConfig{});
  // Center bank 8 sits in column 0: core 0 pays 2 hop-units vs 1 local.
  EXPECT_EQ(noc.hops(0, 8), 2u);
  EXPECT_GT(noc.access_latency(0, 8), noc.access_latency(0, 0));
}

TEST(Noc, CenterLatencyHasSmallerSpreadThanLocal) {
  // Paper: center banks have higher average latency but less variation.
  Noc noc(NocConfig{});
  Cycle local_min = ~Cycle{0}, local_max = 0, center_min = ~Cycle{0}, center_max = 0;
  for (BankId bank = 0; bank < 8; ++bank) {
    const Cycle latency = noc.access_latency(0, bank);
    local_min = std::min(local_min, latency);
    local_max = std::max(local_max, latency);
  }
  for (BankId bank = 8; bank < 16; ++bank) {
    const Cycle latency = noc.access_latency(0, bank);
    center_min = std::min(center_min, latency);
    center_max = std::max(center_max, latency);
  }
  EXPECT_LT(center_max - center_min, local_max - local_min);
  EXPECT_GT(center_min, local_min);
}

TEST(Noc, UncontendedRequestLatencyIncludesService) {
  Noc noc(NocConfig{});
  const Cycle done = noc.request(0, 0, 100);
  // travel 10 (5 out, 5 back) + 4 service.
  EXPECT_EQ(done, 100u + 10u + 4u);
}

TEST(Noc, BackToBackRequestsQueueAtTheBank) {
  Noc noc(NocConfig{});
  const Cycle first = noc.request(0, 0, 100);
  const Cycle second = noc.request(0, 0, 100);  // same instant, same bank
  EXPECT_EQ(second, first + 4);                 // serialized by bank_busy_cycles
  EXPECT_EQ(noc.stats().total_queue_cycles, 4u);
}

TEST(Noc, DistinctBanksDoNotQueue) {
  Noc noc(NocConfig{});
  noc.request(0, 0, 100);
  noc.request(0, 1, 100);
  EXPECT_EQ(noc.stats().total_queue_cycles, 0u);
}

TEST(Noc, RequestsCountedPerBank) {
  Noc noc(NocConfig{});
  noc.request(0, 3, 0);
  noc.request(1, 3, 50);
  noc.request(2, 5, 80);
  EXPECT_EQ(noc.stats().bank_requests[3], 2u);
  EXPECT_EQ(noc.stats().bank_requests[5], 1u);
}

TEST(Noc, MigrationOccupiesDestinationBank) {
  Noc noc(NocConfig{});
  noc.migrate(0, 1, 103);  // bank 1 busy until 107
  EXPECT_EQ(noc.stats().migration_transfers, 1u);
  // A request arriving at the bank at cycle 105 queues behind the write.
  const Cycle done = noc.request(1, 1, 100);
  EXPECT_GT(done, 100u + 10u + 4u);
}

TEST(Noc, ClearStatsResets) {
  Noc noc(NocConfig{});
  noc.request(0, 0, 0);
  noc.migrate(0, 1, 0);
  noc.clear_stats();
  EXPECT_EQ(noc.stats().migration_transfers, 0u);
  EXPECT_EQ(noc.stats().total_queue_cycles, 0u);
  EXPECT_EQ(noc.stats().bank_requests[0], 0u);
}

}  // namespace
}  // namespace bacp::noc
