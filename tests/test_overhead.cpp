#include "msa/overhead_model.hpp"

#include <gtest/gtest.h>

namespace bacp::msa {
namespace {

TEST(OverheadModel, PaperTableTwoNumbers) {
  // 12-bit tags x 72 ways x 64 monitored sets = 55296 bits = 54 kbits.
  const auto report = compute_overhead(OverheadConfig{});
  EXPECT_EQ(report.partial_tag_bits_total, 12u * 72u * 64u);
  EXPECT_DOUBLE_EQ(static_cast<double>(report.partial_tag_bits_total) / 1024.0, 54.0);

  // ((6-bit pointers x 72) + head/tail) x 64 = 28416 bits ~ 27.75 kbits
  // (the paper rounds to 27 kbits).
  EXPECT_EQ(report.lru_stack_bits_total, ((6u * 72u) + 12u) * 64u);
  EXPECT_NEAR(static_cast<double>(report.lru_stack_bits_total) / 1024.0, 27.75, 0.01);

  // 72 ways x 32-bit counters = 2304 bits = 2.25 kbits.
  EXPECT_EQ(report.hit_counter_bits_total, 72u * 32u);
  EXPECT_DOUBLE_EQ(static_cast<double>(report.hit_counter_bits_total) / 1024.0, 2.25);
}

TEST(OverheadModel, TotalFractionOfCacheNearPaperEstimate) {
  const auto report = compute_overhead(OverheadConfig{});
  const double fraction = report.fraction_of_cache(16ull * 1024 * 1024, 8);
  // Paper says ~0.4%; the exact equations give ~0.5%.
  EXPECT_GT(fraction, 0.003);
  EXPECT_LT(fraction, 0.006);
}

TEST(OverheadModel, ScalesLinearlyWithMonitoredSets) {
  OverheadConfig half;
  half.monitored_sets = 32;
  const auto base = compute_overhead(OverheadConfig{});
  const auto reduced = compute_overhead(half);
  EXPECT_EQ(reduced.partial_tag_bits_total * 2, base.partial_tag_bits_total);
  EXPECT_EQ(reduced.lru_stack_bits_total * 2, base.lru_stack_bits_total);
  // Hit counters are shared across sets: unaffected by sampling.
  EXPECT_EQ(reduced.hit_counter_bits_total, base.hit_counter_bits_total);
}

TEST(OverheadModel, WiderTagsCostProportionally) {
  OverheadConfig wide;
  wide.partial_tag_bits = 24;
  EXPECT_EQ(compute_overhead(wide).partial_tag_bits_total,
            2 * compute_overhead(OverheadConfig{}).partial_tag_bits_total);
}

TEST(OverheadModel, PerProfilerTotalsAddUp) {
  const auto report = compute_overhead(OverheadConfig{});
  EXPECT_EQ(report.per_profiler_bits(),
            report.partial_tag_bits_total + report.lru_stack_bits_total +
                report.hit_counter_bits_total);
  EXPECT_NEAR(report.per_profiler_kbits(), 84.0, 0.1);
}

}  // namespace
}  // namespace bacp::msa
