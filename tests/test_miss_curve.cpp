#include "msa/miss_curve.hpp"

#include <gtest/gtest.h>

#include "common/histogram.hpp"
#include "trace/spec2000.hpp"

namespace bacp::msa {
namespace {

TEST(MissRatioCurve, BasicProjection) {
  // Hits at depths 1..4: 10, 5, 3, 2; deep misses: 10. Total = 30.
  MissRatioCurve curve({10, 5, 3, 2}, 10);
  EXPECT_DOUBLE_EQ(curve.total(), 30.0);
  EXPECT_DOUBLE_EQ(curve.miss_count(0), 30.0);
  EXPECT_DOUBLE_EQ(curve.miss_count(1), 20.0);
  EXPECT_DOUBLE_EQ(curve.miss_count(2), 15.0);
  EXPECT_DOUBLE_EQ(curve.miss_count(4), 10.0);
  EXPECT_DOUBLE_EQ(curve.miss_count(100), 10.0);  // clamps beyond max_ways
  EXPECT_EQ(curve.max_ways(), 4u);
}

TEST(MissRatioCurve, MissRatioNormalizes) {
  MissRatioCurve curve({6, 2}, 2);
  EXPECT_DOUBLE_EQ(curve.miss_ratio(1), 0.4);
  EXPECT_DOUBLE_EQ(curve.miss_ratio(2), 0.2);
}

TEST(MissRatioCurve, EmptyCurveIsZero) {
  MissRatioCurve curve;
  EXPECT_TRUE(curve.empty());
  EXPECT_DOUBLE_EQ(curve.miss_ratio(4), 0.0);
}

TEST(MissRatioCurve, FromHistogramUsesLastBinAsMisses) {
  common::Histogram h(4);  // depths 1..3 + miss bin
  h.increment(0, 7);
  h.increment(2, 3);
  h.increment(3, 5);
  const auto curve = MissRatioCurve::from_histogram(h);
  EXPECT_DOUBLE_EQ(curve.total(), 15.0);
  EXPECT_DOUBLE_EQ(curve.miss_count(1), 8.0);
  EXPECT_DOUBLE_EQ(curve.miss_count(3), 5.0);
}

TEST(MissRatioCurve, ScaledMultipliesCounts) {
  MissRatioCurve curve({4, 4}, 2);
  const auto scaled = curve.scaled(2.5);
  EXPECT_DOUBLE_EQ(scaled.total(), 25.0);
  EXPECT_DOUBLE_EQ(scaled.miss_count(1), 15.0);
  // Ratios are scale-invariant.
  EXPECT_DOUBLE_EQ(scaled.miss_ratio(1), curve.miss_ratio(1));
}

TEST(MissRatioCurve, MonotoneNonIncreasing) {
  const auto curve =
      MissRatioCurve::from_model(trace::spec2000_by_name("twolf"), 128);
  double previous = curve.miss_count(0);
  for (WayCount w = 1; w <= 128; ++w) {
    EXPECT_LE(curve.miss_count(w), previous + 1e-12);
    previous = curve.miss_count(w);
  }
}

TEST(MissRatioCurve, FromModelNormalizedToOneAccess) {
  const auto curve = MissRatioCurve::from_model(trace::spec2000_by_name("gcc"), 64);
  EXPECT_NEAR(curve.total(), 1.0, 1e-12);
}

}  // namespace
}  // namespace bacp::msa
