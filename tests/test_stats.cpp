#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace bacp::common {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, KnownMoments) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StreamingStats, MergeMatchesConcatenation) {
  Rng rng(3);
  std::vector<double> all;
  StreamingStats left, right, merged_reference;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.next_double() * 10.0;
    all.push_back(x);
    (i < 200 ? left : right).add(x);
    merged_reference.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), merged_reference.count());
  EXPECT_NEAR(left.mean(), merged_reference.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), merged_reference.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), merged_reference.min());
  EXPECT_DOUBLE_EQ(left.max(), merged_reference.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(GeometricMean, KnownValues) {
  const double v1[] = {4.0, 9.0};
  EXPECT_NEAR(geometric_mean(v1), 6.0, 1e-12);
  const double v2[] = {1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(geometric_mean(v2), 1.0);
  const double v3[] = {2.0, 8.0};
  EXPECT_NEAR(geometric_mean(v3), 4.0, 1e-12);
}

TEST(GeometricMean, LessThanArithmeticForSpreadValues) {
  const double v[] = {1.0, 100.0};
  EXPECT_LT(geometric_mean(v), arithmetic_mean(v));
}

TEST(ArithmeticMean, KnownValue) {
  const double v[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(arithmetic_mean(v), 2.5);
}

TEST(Percentile, Endpoints) {
  const double v[] = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.0);
}

TEST(Percentile, Interpolates) {
  const double v[] = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75.0), 7.5);
}

TEST(Percentile, SingleElement) {
  const double v[] = {42.0};
  EXPECT_DOUBLE_EQ(percentile(v, 13.0), 42.0);
}

// Reference values computed with numpy.percentile (linear / R-7 method).
TEST(Percentile, MatchesNumpyLinearReferences) {
  const double v[] = {1.0, 2.0, 3.0, 4.0};
  struct Case {
    double p;
    double expected;
  };
  const Case cases[] = {
      {0.0, 1.0},  {25.0, 1.75}, {50.0, 2.5},
      {75.0, 3.25}, {99.0, 3.97}, {100.0, 4.0},
  };
  for (const Case& c : cases) {
    EXPECT_NEAR(percentile(v, c.p), c.expected, 1e-12) << "p=" << c.p;
  }
  const double pair[] = {10.0, 20.0};
  EXPECT_NEAR(percentile(pair, 1.0), 10.1, 1e-12);
  EXPECT_NEAR(percentile(pair, 99.0), 19.9, 1e-12);
}

TEST(Percentile, UnsortedInputMatchesSorted) {
  const double shuffled[] = {4.0, 1.0, 3.0, 2.0};
  const double sorted[] = {1.0, 2.0, 3.0, 4.0};
  for (double p : {0.0, 13.0, 25.0, 50.0, 77.7, 100.0}) {
    EXPECT_DOUBLE_EQ(percentile(shuffled, p), percentile_sorted(sorted, p));
  }
}

TEST(Percentile, NearlyHundredStaysInRange) {
  // p/100 * (n-1) can overshoot n-1 by an ulp; the rank clamp keeps the
  // result inside [min, max] instead of reading past the array.
  std::vector<double> v;
  for (int i = 0; i < 17; ++i) v.push_back(static_cast<double>(i));
  const double near_max = percentile(v, 99.9999999999999);
  EXPECT_GT(near_max, 15.0);
  EXPECT_LE(near_max, 16.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 16.0);
}

TEST(GuardedGeomean, CleanInputMatchesStrictGeomean) {
  const double v[] = {4.0, 9.0, 6.0};
  const GuardedGeomean g = guarded_geometric_mean(v);
  EXPECT_TRUE(g.clean());
  EXPECT_EQ(g.count, 3u);
  EXPECT_EQ(g.clamped, 0u);
  EXPECT_DOUBLE_EQ(g.value, geometric_mean(v));
  EXPECT_EQ(g.warning(1e-12), "");
}

TEST(GuardedGeomean, ClampsZerosToEpsilonAndCountsThem) {
  const double v[] = {0.0, 4.0};
  const GuardedGeomean g = guarded_geometric_mean(v, /*epsilon=*/1e-6);
  EXPECT_FALSE(g.clean());
  EXPECT_EQ(g.count, 2u);
  EXPECT_EQ(g.clamped, 1u);
  // geomean(1e-6, 4) = sqrt(4e-6) = 2e-3: the zero drags hard but finitely.
  EXPECT_NEAR(g.value, 2e-3, 1e-15);
  EXPECT_EQ(g.warning(1e-6),
            "geometric mean clamped 1 of 2 non-positive value(s) up to 1e-06");
}

TEST(GuardedGeomean, NegativesClampLikeZeros) {
  const double v[] = {-3.0, 0.0, 1.0, 1.0};
  const GuardedGeomean g = guarded_geometric_mean(v, /*epsilon=*/1e-4);
  EXPECT_EQ(g.clamped, 2u);
  EXPECT_NEAR(g.value, std::pow(1e-8, 0.25), 1e-12);
}

TEST(WeightedMeanCi, HandComputedCase) {
  // Strata: value 1 with weight 1, value 3 with weight 3.
  // mean = (1 + 9) / 4 = 2.5; W = 4, W2 = 10, denom = 4 - 10/4 = 1.5;
  // s^2 = (1*(1-2.5)^2 + 3*(3-2.5)^2) / 1.5 = (2.25 + 0.75) / 1.5 = 2;
  // SE = sqrt(2 * 10) / 4 = sqrt(20)/4.
  const double values[] = {1.0, 3.0};
  const double weights[] = {1.0, 3.0};
  const WeightedMeanCi ci = weighted_mean_ci(values, weights);
  EXPECT_DOUBLE_EQ(ci.mean, 2.5);
  EXPECT_DOUBLE_EQ(ci.weight_total, 4.0);
  EXPECT_NEAR(ci.std_error, std::sqrt(20.0) / 4.0, 1e-12);
  EXPECT_NEAR(ci.ci_half, 1.96 * ci.std_error, 1e-12);
  EXPECT_DOUBLE_EQ(ci.ci_low(), ci.mean - ci.ci_half);
  EXPECT_DOUBLE_EQ(ci.ci_high(), ci.mean + ci.ci_half);
}

TEST(WeightedMeanCi, InvariantUnderWeightScaling) {
  const double values[] = {0.2, 0.5, 0.9, 0.4};
  const double weights[] = {2.0, 7.0, 1.0, 6.0};
  const double scaled[] = {20.0, 70.0, 10.0, 60.0};
  const WeightedMeanCi a = weighted_mean_ci(values, weights);
  const WeightedMeanCi b = weighted_mean_ci(values, scaled);
  EXPECT_NEAR(a.mean, b.mean, 1e-12);
  EXPECT_NEAR(a.std_error, b.std_error, 1e-12);
  EXPECT_NEAR(a.ci_half, b.ci_half, 1e-12);
}

TEST(WeightedMeanCi, SingleStratumDegeneratesToZeroWidth) {
  const double values[] = {0.7};
  const double weights[] = {5.0};
  const WeightedMeanCi ci = weighted_mean_ci(values, weights);
  EXPECT_DOUBLE_EQ(ci.mean, 0.7);
  EXPECT_DOUBLE_EQ(ci.std_error, 0.0);
  EXPECT_DOUBLE_EQ(ci.ci_half, 0.0);
}

TEST(WeightedMeanCi, AllWeightOnOneValueDegeneratesToZeroWidth) {
  const double values[] = {0.7, 0.1};
  const double weights[] = {5.0, 0.0};
  const WeightedMeanCi ci = weighted_mean_ci(values, weights);
  EXPECT_DOUBLE_EQ(ci.mean, 0.7);
  EXPECT_DOUBLE_EQ(ci.std_error, 0.0);
}

TEST(WeightedMeanCi, EqualWeightsMatchUnweightedStats) {
  const double values[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const double weights[] = {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  const WeightedMeanCi ci = weighted_mean_ci(values, weights, /*z=*/1.0);
  EXPECT_DOUBLE_EQ(ci.mean, 5.0);
  // Equal weights reduce to the classic SE = s / sqrt(n).
  const double s = std::sqrt(32.0 / 7.0);
  EXPECT_NEAR(ci.std_error, s / std::sqrt(8.0), 1e-12);
  EXPECT_NEAR(ci.ci_half, ci.std_error, 1e-12);
}

TEST(Ratio, FallbackOnZeroDenominator) {
  EXPECT_DOUBLE_EQ(ratio(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(ratio(6.0, 3.0), 2.0);
}

}  // namespace
}  // namespace bacp::common
