#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace bacp::common {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, KnownMoments) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StreamingStats, MergeMatchesConcatenation) {
  Rng rng(3);
  std::vector<double> all;
  StreamingStats left, right, merged_reference;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.next_double() * 10.0;
    all.push_back(x);
    (i < 200 ? left : right).add(x);
    merged_reference.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), merged_reference.count());
  EXPECT_NEAR(left.mean(), merged_reference.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), merged_reference.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), merged_reference.min());
  EXPECT_DOUBLE_EQ(left.max(), merged_reference.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(GeometricMean, KnownValues) {
  const double v1[] = {4.0, 9.0};
  EXPECT_NEAR(geometric_mean(v1), 6.0, 1e-12);
  const double v2[] = {1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(geometric_mean(v2), 1.0);
  const double v3[] = {2.0, 8.0};
  EXPECT_NEAR(geometric_mean(v3), 4.0, 1e-12);
}

TEST(GeometricMean, LessThanArithmeticForSpreadValues) {
  const double v[] = {1.0, 100.0};
  EXPECT_LT(geometric_mean(v), arithmetic_mean(v));
}

TEST(ArithmeticMean, KnownValue) {
  const double v[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(arithmetic_mean(v), 2.5);
}

TEST(Percentile, Endpoints) {
  const double v[] = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.0);
}

TEST(Percentile, Interpolates) {
  const double v[] = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75.0), 7.5);
}

TEST(Percentile, SingleElement) {
  const double v[] = {42.0};
  EXPECT_DOUBLE_EQ(percentile(v, 13.0), 42.0);
}

TEST(Ratio, FallbackOnZeroDenominator) {
  EXPECT_DOUBLE_EQ(ratio(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(ratio(6.0, 3.0), 2.0);
}

}  // namespace
}  // namespace bacp::common
