// Atomic file publication: the rename fast path, the EXDEV copy+fsync+rename
// fallback, and the TMPDIR-aware staging-directory policy that can make the
// fallback necessary in the first place.

#include "common/fsio.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "harness/snapshot_cache.hpp"
#include "snapshot/codec.hpp"
#include "snapshot/snapshot.hpp"

namespace bacp::common {
namespace {

std::string fresh_dir(const std::string& leaf) {
  const std::string dir = testing::TempDir() + "/" + leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

std::string read_text(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Scoped TMPDIR override that restores the previous value on destruction,
/// so tests cannot leak staging policy into each other.
class ScopedTmpdir {
 public:
  explicit ScopedTmpdir(const std::string& value) {
    const char* previous = std::getenv("TMPDIR");
    if (previous != nullptr) saved_ = previous;
    had_previous_ = previous != nullptr;
    ::setenv("TMPDIR", value.c_str(), 1);
  }
  ~ScopedTmpdir() {
    if (had_previous_) {
      ::setenv("TMPDIR", saved_.c_str(), 1);
    } else {
      ::unsetenv("TMPDIR");
    }
  }

 private:
  std::string saved_;
  bool had_previous_ = false;
};

TEST(Fsio, PublishAtomicRenamesAndConsumesTemp) {
  const std::string dir = fresh_dir("bacp-fsio-rename");
  const std::string temp = dir + "/staged.tmp";
  const std::string final_path = dir + "/published.txt";
  write_text(temp, "payload");

  EXPECT_TRUE(publish_file_atomic(temp, final_path));
  EXPECT_EQ(read_text(final_path), "payload");
  EXPECT_FALSE(std::filesystem::exists(temp));
  std::filesystem::remove_all(dir);
}

TEST(Fsio, PublishAtomicReplacesExistingDestination) {
  const std::string dir = fresh_dir("bacp-fsio-replace");
  const std::string temp = dir + "/staged.tmp";
  const std::string final_path = dir + "/published.txt";
  write_text(final_path, "old");
  write_text(temp, "new");

  EXPECT_TRUE(publish_file_atomic(temp, final_path));
  EXPECT_EQ(read_text(final_path), "new");
  std::filesystem::remove_all(dir);
}

TEST(Fsio, PublishAtomicFailsCleanlyOnMissingTemp) {
  const std::string dir = fresh_dir("bacp-fsio-missing");
  EXPECT_FALSE(publish_file_atomic(dir + "/never-created.tmp", dir + "/out.txt"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/out.txt"));
  std::filesystem::remove_all(dir);
}

TEST(Fsio, PublishByCopyDeliversBytesAndCleansUpTemps) {
  // The EXDEV fallback, driven directly: most test hosts mount TempDir and
  // the destination on one filesystem, so rename would never return EXDEV.
  const std::string src_dir = fresh_dir("bacp-fsio-copy-src");
  const std::string dst_dir = fresh_dir("bacp-fsio-copy-dst");
  const std::string temp = src_dir + "/staged.tmp";
  const std::string final_path = dst_dir + "/published.bin";
  std::string payload;
  for (int i = 0; i < 300'000; ++i) payload.push_back(static_cast<char>(i % 251));
  write_text(temp, payload);

  EXPECT_TRUE(publish_file_by_copy(temp, final_path));
  EXPECT_EQ(read_text(final_path), payload);
  EXPECT_FALSE(std::filesystem::exists(temp));
  // No sibling staging file left behind in the destination directory.
  std::size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dst_dir)) {
    ++entries;
    EXPECT_EQ(entry.path().string(), final_path);
  }
  EXPECT_EQ(entries, 1u);
  std::filesystem::remove_all(src_dir);
  std::filesystem::remove_all(dst_dir);
}

TEST(Fsio, PublishByCopyFailsCleanlyOnUnwritableDestination) {
  const std::string src_dir = fresh_dir("bacp-fsio-copy-fail");
  const std::string temp = src_dir + "/staged.tmp";
  write_text(temp, "payload");
  EXPECT_FALSE(publish_file_by_copy(temp, "/nonexistent-bacp-dir/out.bin"));
  // The temp is consumed either way; the caller re-stages on retry.
  EXPECT_FALSE(std::filesystem::exists(temp));
  std::filesystem::remove_all(src_dir);
}

TEST(Fsio, StagingDirectoryHonorsTmpdir) {
  const std::string scratch = fresh_dir("bacp-fsio-scratch");
  {
    ScopedTmpdir tmpdir(scratch);
    EXPECT_EQ(staging_directory("/some/bank"), scratch);
  }
  std::filesystem::remove_all(scratch);
}

TEST(Fsio, StagingDirectoryFallsBackToDestination) {
  ScopedTmpdir tmpdir("");
  // Empty TMPDIR means "unset" — stage next to the destination so the
  // publishing rename stays same-filesystem.
  ::unsetenv("TMPDIR");
  EXPECT_EQ(staging_directory("/some/bank"), "/some/bank");
}

TEST(Fsio, SnapshotBankPublishesThroughForeignTmpdir) {
  // End-to-end: a SnapshotCache file bank staging through a TMPDIR that is
  // not the bank directory still lands intact snapshots a fresh cache
  // instance can reload.
  const std::string scratch = fresh_dir("bacp-fsio-bank-scratch");
  const std::string bank = fresh_dir("bacp-fsio-bank");
  ScopedTmpdir tmpdir(scratch);

  const auto warm = [] {
    snapshot::SnapshotBuilder builder(/*config_digest=*/0xF510);
    return builder.finish();
  };
  {
    harness::SnapshotCache cache;
    cache.set_file_bank(bank);
    cache.get_or_warm(0xBEEF, warm);
  }
  // The staging scratch holds no leftovers and the bank holds the snapshot.
  EXPECT_TRUE(std::filesystem::is_empty(scratch));
  int warmed = 0;
  harness::SnapshotCache cache;
  cache.set_file_bank(bank);
  const auto snapshot = cache.get_or_warm(0xBEEF, [&] {
    ++warmed;
    return snapshot::SnapshotBuilder(0xF510).finish();
  });
  EXPECT_EQ(warmed, 0);
  EXPECT_EQ(cache.file_hits(), 1u);
  // Bank reloads default to the mmap zero-copy path, so the reloaded
  // snapshot's contents live behind data(), not the owned-bytes vector.
  const auto reloaded = snapshot->data();
  EXPECT_EQ(std::vector<std::uint8_t>(reloaded.begin(), reloaded.end()), warm().bytes);
  std::filesystem::remove_all(scratch);
  std::filesystem::remove_all(bank);
}

}  // namespace
}  // namespace bacp::common
