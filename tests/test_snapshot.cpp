#include "snapshot/snapshot.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "audit/snapshot_audit.hpp"
#include "audit/system_audit.hpp"
#include "common/thread_pool.hpp"
#include "harness/experiments.hpp"
#include "harness/snapshot_cache.hpp"
#include "sim/system.hpp"
#include "sim/system_config.hpp"
#include "snapshot/codec.hpp"
#include "trace/mix.hpp"

namespace bacp {
namespace {

sim::SystemConfig fast_config(sim::PolicyKind policy) {
  sim::SystemConfig config = sim::SystemConfig::baseline();
  config.policy = policy;
  config.epoch_cycles = 1'500'000;
  config.finalize();
  return config;
}

trace::WorkloadMix capacity_diverse_mix() {
  return trace::mix_from_names(
      {"mcf", "eon", "art", "gcc", "bzip2", "sixtrack", "facerec", "gzip"});
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

TEST(Codec, RoundTripsScalarsStringsAndArrays) {
  std::vector<std::uint8_t> buffer;
  snapshot::Writer writer(buffer);
  writer.u8(0xAB);
  writer.u16(0xCDEF);
  writer.u32(0x12345678u);
  writer.u64(0x1122334455667788ull);
  writer.f64(-0.125);
  const std::vector<std::uint32_t> values = {1, 2, 3, 5, 8};
  writer.scalars(std::span<const std::uint32_t>(values));
  writer.str("bacp");

  snapshot::Reader reader(buffer);
  EXPECT_EQ(reader.u8(), 0xAB);
  EXPECT_EQ(reader.u16(), 0xCDEF);
  EXPECT_EQ(reader.u32(), 0x12345678u);
  EXPECT_EQ(reader.u64(), 0x1122334455667788ull);
  EXPECT_EQ(reader.f64(), -0.125);
  EXPECT_EQ(reader.scalars<std::uint32_t>(), values);
  EXPECT_EQ(reader.str(), "bacp");
  EXPECT_TRUE(reader.exhausted());
}

TEST(Codec, BuilderProducesAuditCleanFraming) {
  snapshot::SnapshotBuilder builder(/*config_digest=*/42);
  {
    auto writer = builder.begin_section(snapshot::SectionId::Noc);
    writer.u64(7);
  }
  {
    auto writer = builder.begin_section(snapshot::SectionId::Dram);
    writer.str("payload");
  }
  const snapshot::SystemSnapshot snapshot = builder.finish();
  const snapshot::SnapshotView view(snapshot);
  EXPECT_EQ(view.config_digest(), 42u);
  EXPECT_TRUE(view.has_section(snapshot::SectionId::Noc));
  EXPECT_FALSE(view.has_section(snapshot::SectionId::L2));
  const auto report = audit::audit_snapshot(snapshot);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checks, 0u);
}

// ---------------------------------------------------------------------------
// System round trip
// ---------------------------------------------------------------------------

TEST(SystemSnapshot, SaveIsDeterministic) {
  sim::System system(fast_config(sim::PolicyKind::BankAware), capacity_diverse_mix());
  system.warm_up(400'000);
  const auto first = system.save_state();
  const auto second = system.save_state();
  EXPECT_EQ(first.bytes, second.bytes);
  EXPECT_GT(first.size_bytes(), 0u);
}

TEST(SystemSnapshot, RestoreResumesBitIdentically) {
  const auto config = fast_config(sim::PolicyKind::BankAware);
  const auto mix = capacity_diverse_mix();

  sim::System original(config, mix);
  original.warm_up(600'000);
  const auto snapshot = original.save_state();
  EXPECT_TRUE(audit::audit_snapshot(snapshot).ok());

  sim::System restored(config, mix);
  restored.restore_state(snapshot);

  // The restored system must pass the full structural audit before running.
  const auto structural = audit::audit_system(restored);
  EXPECT_TRUE(structural.ok()) << structural.to_string();
  EXPECT_GT(structural.checks, 0u);

  original.run(900'000);
  restored.run(900'000);
  EXPECT_EQ(original.results().to_json().dump(), restored.results().to_json().dump());
  EXPECT_EQ(original.epochs_run(), restored.epochs_run());

  // ...and resume along the *same* trajectory, not merely a similar one:
  // the warm states coincide byte-for-byte after the measured window too
  // (compare through a second save from freshly restored twins).
  sim::System twin_a(config, mix);
  twin_a.restore_state(snapshot);
  const auto resaved = twin_a.save_state();
  EXPECT_EQ(resaved.bytes, snapshot.bytes);
}

TEST(SystemSnapshot, RestoreRejectsMismatchedConfig) {
  const auto mix = capacity_diverse_mix();
  sim::System original(fast_config(sim::PolicyKind::BankAware), mix);
  original.warm_up(100'000);
  const auto snapshot = original.save_state();

  sim::System other(fast_config(sim::PolicyKind::EqualPartition), mix);
  EXPECT_DEATH(other.restore_state(snapshot), "digest");
}

TEST(SystemSnapshot, AdoptWarmStateRunsAllPolicies) {
  const auto mix = capacity_diverse_mix();
  const auto base = fast_config(sim::PolicyKind::BankAware);

  sim::System canonical(sim::canonical_warm_config(base), mix);
  canonical.warm_up(400'000);
  const auto snapshot = canonical.save_state();

  for (const auto policy : {sim::PolicyKind::NoPartition, sim::PolicyKind::EqualPartition,
                            sim::PolicyKind::BankAware}) {
    sim::System variant(fast_config(policy), mix);
    variant.adopt_warm_state(snapshot);
    const auto structural = audit::audit_system(variant);
    EXPECT_TRUE(structural.ok()) << structural.to_string();
    variant.run(600'000);
    EXPECT_GT(variant.results().l2_misses(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Warm-state fingerprint
// ---------------------------------------------------------------------------

TEST(ConfigDigest, SeparatesWarmStateRelevantFields) {
  const auto mix = capacity_diverse_mix();
  const auto base = fast_config(sim::PolicyKind::BankAware);
  const std::uint64_t digest = sim::config_digest(base, mix);

  auto changed = base;
  changed.seed = base.seed + 1;
  EXPECT_NE(sim::config_digest(changed, mix), digest);

  changed = base;
  changed.policy = sim::PolicyKind::EqualPartition;
  EXPECT_NE(sim::config_digest(changed, mix), digest);

  changed = base;
  changed.epoch_cycles = base.epoch_cycles * 2;
  EXPECT_NE(sim::config_digest(changed, mix), digest);

  changed = base;
  changed.aggregation = nuca::AggregationKind::Cascade;
  EXPECT_NE(sim::config_digest(changed, mix), digest);

  changed = base;
  changed.gap_jitter = base.gap_jitter + 0.001;
  EXPECT_NE(sim::config_digest(changed, mix), digest);

  const auto other_mix = trace::mix_from_names(
      {"gcc", "eon", "art", "mcf", "bzip2", "sixtrack", "facerec", "gzip"});
  EXPECT_NE(sim::config_digest(base, other_mix), digest);
}

TEST(ConfigDigest, WarmStateDigestIsPolicyNeutral) {
  const auto mix = capacity_diverse_mix();
  const auto base = fast_config(sim::PolicyKind::BankAware);
  const std::uint64_t digest = sim::warm_state_digest(base, mix);

  // The canonical warm-up neutralizes the knobs that only matter once
  // epochs fire: policy, aggregation and epoch length.
  auto changed = base;
  changed.policy = sim::PolicyKind::NoPartition;
  EXPECT_EQ(sim::warm_state_digest(changed, mix), digest);
  changed.aggregation = nuca::AggregationKind::AddressHash;
  EXPECT_EQ(sim::warm_state_digest(changed, mix), digest);
  changed.epoch_cycles = 123'456;
  EXPECT_EQ(sim::warm_state_digest(changed, mix), digest);

  // Everything that shapes warm contents still separates.
  changed = base;
  changed.seed = base.seed + 1;
  EXPECT_NE(sim::warm_state_digest(changed, mix), digest);
}

// Fingerprint completeness is enforced at compile time: system_config.cpp
// static_asserts the exact sizeof of SystemConfig and every nested config
// struct, so adding a warm-state-relevant field without extending
// config_digest() fails the build rather than silently aliasing cache keys.
// This test pins the contract at runtime too (a changed size with an
// *updated* assert but unextended digest would still alias): two configs
// differing in any single scalar field must never collide.
TEST(ConfigDigest, NearbyConfigsDoNotCollide) {
  const auto mix = capacity_diverse_mix();
  const auto base = fast_config(sim::PolicyKind::BankAware);
  const std::uint64_t digest = sim::config_digest(base, mix);

  auto changed = base;
  changed.l1_ways += 1;
  EXPECT_NE(sim::config_digest(changed, mix), digest);
  changed = base;
  changed.noc.cycles_per_hop += 1;
  EXPECT_NE(sim::config_digest(changed, mix), digest);
  changed = base;
  changed.dram.access_latency += 1;
  EXPECT_NE(sim::config_digest(changed, mix), digest);
  changed = base;
  changed.mshr.entries_per_core += 1;
  EXPECT_NE(sim::config_digest(changed, mix), digest);
  changed = base;
  changed.profiler.set_sampling *= 2;
  EXPECT_NE(sim::config_digest(changed, mix), digest);
}

// ---------------------------------------------------------------------------
// SnapshotCache
// ---------------------------------------------------------------------------

TEST(SnapshotCache, WarmsEachKeyExactlyOnce) {
  harness::SnapshotCache cache;
  std::atomic<int> warmups{0};
  common::ThreadPool pool(4);
  pool.parallel_for(16, [&](std::size_t task) {
    const auto snapshot = cache.get_or_warm(task % 2, [&] {
      ++warmups;
      return snapshot::SnapshotBuilder(/*config_digest=*/task % 2).finish();
    });
    ASSERT_NE(snapshot, nullptr);
  });
  EXPECT_EQ(warmups.load(), 2);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 14u);
}

TEST(SnapshotCache, WarmupKeySeparatesLengths) {
  EXPECT_NE(harness::warmup_key(1, 100), harness::warmup_key(1, 200));
  EXPECT_NE(harness::warmup_key(1, 100), harness::warmup_key(2, 100));
  EXPECT_EQ(harness::warmup_key(1, 100), harness::warmup_key(1, 100));
}

// The tentpole's headline invariant: with snapshot reuse on (default) and
// shared warm-up off, sweep results are byte-identical to cold warm-up and
// independent of the worker count.
TEST(SnapshotCache, SweepResultsIndependentOfReuseAndThreads) {
  const auto sets = std::vector<harness::ExperimentSet>{harness::table3_sets()[1]};
  auto config = harness::DetailedRunConfig{}
                    .with_warmup_instructions(150'000)
                    .with_measure_instructions(300'000)
                    .with_epoch_cycles(1'500'000);

  const auto reference = harness::run_detailed_sweep(
      sets, config.with_num_threads(1).with_snapshot_reuse(false));
  const auto reused = harness::run_detailed_sweep(
      sets, config.with_num_threads(3).with_snapshot_reuse(true));
  ASSERT_EQ(reference.size(), reused.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(reference[i].none.to_json().dump(), reused[i].none.to_json().dump());
    EXPECT_EQ(reference[i].equal.to_json().dump(), reused[i].equal.to_json().dump());
    EXPECT_EQ(reference[i].bank_aware.to_json().dump(),
              reused[i].bank_aware.to_json().dump());
  }
}

// ---------------------------------------------------------------------------
// mmap zero-copy bank reads
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> contents(const snapshot::SystemSnapshot& snapshot) {
  const auto span = snapshot.data();
  return {span.begin(), span.end()};
}

// The mmap read path is a pure speed dial: a bank entry loaded zero-copy and
// one loaded through buffered reads carry identical bytes, and a System
// restored from the mapped pages resumes on the exact trajectory the saved
// System was on.
TEST(SnapshotCache, MmapAndBufferedBankReadsAreByteIdentical) {
  const std::string dir = testing::TempDir() + "/bacp-snapbank-mmap";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const auto config = fast_config(sim::PolicyKind::BankAware);
  const auto mix = capacity_diverse_mix();
  sim::System original(config, mix);
  original.warm_up(400'000);
  const auto saved = original.save_state();
  {
    harness::SnapshotCache cache;
    cache.set_file_bank(dir);
    cache.get_or_warm(0xD15C, [&] { return saved; });
  }

  harness::SnapshotCache mapped_cache;
  mapped_cache.set_file_bank(dir);
  const auto mapped = mapped_cache.get_or_warm(0xD15C, [&] { return saved; });
  ASSERT_EQ(mapped_cache.file_hits(), 1u);
  EXPECT_NE(mapped->backing, nullptr);
  EXPECT_TRUE(mapped->bytes.empty());
  EXPECT_EQ(contents(*mapped), saved.bytes);

  harness::SnapshotCache buffered_cache;
  buffered_cache.set_file_bank(dir);
  buffered_cache.set_mmap_reads(false);
  const auto buffered = buffered_cache.get_or_warm(0xD15C, [&] { return saved; });
  ASSERT_EQ(buffered_cache.file_hits(), 1u);
  EXPECT_EQ(buffered->backing, nullptr);
  EXPECT_EQ(contents(*buffered), contents(*mapped));

  // Restoring straight off the mapped pages lands on the saved trajectory:
  // a re-save of the restored twin reproduces the banked bytes exactly.
  sim::System restored(config, mix);
  restored.restore_state(*mapped);
  EXPECT_TRUE(audit::audit_system(restored).ok());
  EXPECT_EQ(restored.save_state().bytes, saved.bytes);

  std::filesystem::remove_all(dir);
}

// Fail-closed: the per-section checksums are recomputed from the mapped
// region itself, so a truncated (or otherwise damaged) bank file is rejected
// before any restore can read it, and the cache falls back to warming.
TEST(SnapshotCache, TruncatedBankEntryFailsClosedUnderMmap) {
  const std::string dir = testing::TempDir() + "/bacp-snapbank-truncated";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    harness::SnapshotCache cache;
    cache.set_file_bank(dir);
    cache.get_or_warm(0x7C0B, [] {
      return snapshot::SnapshotBuilder(/*config_digest=*/0x7C0B).finish();
    });
  }
  std::string path;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    path = entry.path().string();
  }
  ASSERT_FALSE(path.empty());
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);

  int warmed = 0;
  harness::SnapshotCache cache;
  cache.set_file_bank(dir);
  const auto snapshot = cache.get_or_warm(0x7C0B, [&] {
    ++warmed;
    return snapshot::SnapshotBuilder(0x7C0B).finish();
  });
  EXPECT_EQ(warmed, 1);
  EXPECT_EQ(cache.file_hits(), 0u);
  EXPECT_TRUE(audit::audit_snapshot(*snapshot).ok());
  std::filesystem::remove_all(dir);
}

TEST(SnapshotCache, VariantSweepForksOneWarmupInSharedMode) {
  const auto mix = capacity_diverse_mix();
  std::vector<harness::SweepVariant> variants;
  for (const Cycle epoch : {750'000ull, 1'500'000ull, 3'000'000ull}) {
    auto config = fast_config(sim::PolicyKind::BankAware);
    config.epoch_cycles = epoch;
    config.finalize();
    variants.push_back({std::to_string(epoch), config, 200'000});
  }
  harness::VariantSweepOptions options;
  options.num_threads = 3;
  options.shared_warmup = true;
  std::vector<std::uint64_t> misses(variants.size());
  harness::run_variant_sweep(variants, mix, options,
                             [&](sim::System& system, std::size_t index) {
                               system.run(400'000);
                               misses[index] = system.results().l2_misses();
                             });
  for (const std::uint64_t count : misses) EXPECT_GT(count, 0u);
}

}  // namespace
}  // namespace bacp
