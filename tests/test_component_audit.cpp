#include "audit/component_audit.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "audit/audit.hpp"
#include "core/core_timer.hpp"
#include "mem/dram.hpp"
#include "msa/stack_profiler.hpp"
#include "noc/noc.hpp"
#include "obs/timeseries.hpp"
#include "trace/spec2000.hpp"
#include "trace/synthetic.hpp"

// Mutation kill-tests for the per-component auditors (the bacp-audit-coverage
// entry points): each test plants exactly one corruption through the
// structure's TestPeer and asserts the auditor reports a violation with the
// exact (Component, field) coordinates, plus a clean-structure test per
// auditor so none of them cries wolf.

namespace bacp::noc {
/// Test-only backdoor into Noc internals (friend of the class).
struct NocTestPeer {
  static NocConfig& config(Noc& noc) { return noc.config_; }
  static std::vector<Cycle>& bank_free_at(Noc& noc) { return noc.bank_free_at_; }
  static std::vector<std::uint64_t>& bank_requests(Noc& noc) {
    return noc.stats_.bank_requests;
  }
};
}  // namespace bacp::noc

namespace bacp::trace {
/// Test-only backdoor into SyntheticTraceGenerator internals.
struct GeneratorTestPeer {
  static std::uint32_t& ring_mask(SyntheticTraceGenerator& generator) {
    return generator.ring_mask_;
  }
  static std::uint32_t& head(SyntheticTraceGenerator& generator, std::uint32_t set) {
    return generator.recency_heads_[set];
  }
  static std::uint32_t& size(SyntheticTraceGenerator& generator, std::uint32_t set) {
    return generator.recency_sizes_[set];
  }
  static BlockAddress& entry(SyntheticTraceGenerator& generator, std::uint32_t set,
                             std::uint32_t depth) {
    const std::uint32_t capacity = generator.ring_capacity_;
    const std::uint32_t slot =
        (generator.recency_heads_[set] + depth) & generator.ring_mask_;
    return generator.recency_entries_[std::size_t{set} * capacity + slot];
  }
  static bool& live_batch(SyntheticTraceGenerator& generator) {
    return generator.live_batch_;
  }
};
}  // namespace bacp::trace

namespace bacp::msa {
/// Test-only backdoor into StackProfiler internals.
struct ProfilerTestPeer {
  static std::vector<std::uint64_t>& stack_entries(StackProfiler& profiler) {
    return profiler.stack_entries_;
  }
  static std::vector<std::uint32_t>& stack_sizes(StackProfiler& profiler) {
    return profiler.stack_sizes_;
  }
  static std::uint64_t& sampled(StackProfiler& profiler) { return profiler.sampled_; }
  static std::uint32_t& sample_mask(StackProfiler& profiler) {
    return profiler.sample_mask_;
  }
};
}  // namespace bacp::msa

namespace bacp::core {
/// Test-only backdoor into CoreTimer internals.
struct TimerTestPeer {
  using InFlight = CoreTimer::InFlight;
  static std::vector<InFlight>& outstanding(CoreTimer& timer) {
    return timer.outstanding_;
  }
  static double& mark_time(CoreTimer& timer) { return timer.mark_time_; }
};
}  // namespace bacp::core

namespace bacp::obs {
/// Test-only backdoor into TimeSeries internals.
struct SeriesTestPeer {
  static std::map<std::string, TimeSeries::SeriesHandle, std::less<>>& index(
      TimeSeries& series) {
    return series.index_;
  }
  static std::vector<std::vector<double>>& columns(TimeSeries& series) {
    return series.columns_;
  }
};
}  // namespace bacp::obs

namespace bacp::audit {
namespace {

/// First violation matching (Component, field) on `object`, or nullptr.
const Violation* find_violation(const AuditReport& report, const std::string& field) {
  for (const Violation& violation : report.violations) {
    if (violation.structure == Structure::Component && violation.field == field) {
      return &violation;
    }
  }
  return nullptr;
}

void require_violation(const AuditReport& report, const std::string& field) {
  EXPECT_NE(find_violation(report, field), nullptr)
      << "expected a component/" << field
      << " violation; report: " << (report.ok() ? "clean" : report.to_string());
}

// ---------------------------------------------------------------------------
// Noc
// ---------------------------------------------------------------------------

noc::Noc exercised_noc() {
  noc::Noc noc(noc::NocConfig{});
  Cycle now = 0;
  for (CoreId core = 0; core < 8; ++core) {
    for (BankId bank = 0; bank < 16; ++bank) {
      noc.request(core, bank, now);
      now += 3;
    }
  }
  return noc;
}

TEST(ComponentAuditNoc, CleanFabricPassesAndCountsChecks) {
  const noc::Noc noc = exercised_noc();
  const AuditReport report = audit_noc_fabric(noc);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checks, 100u);  // 8 cores x 16 banks of hop checks alone
}

TEST(ComponentAuditNoc, KillsResizedBankOccupancyTable) {
  noc::Noc noc = exercised_noc();
  noc::NocTestPeer::bank_free_at(noc).pop_back();
  require_violation(audit_noc_fabric(noc), "bank_occupancy");
}

TEST(ComponentAuditNoc, KillsResizedRequestCounters) {
  noc::Noc noc = exercised_noc();
  noc::NocTestPeer::bank_requests(noc).push_back(0);
  require_violation(audit_noc_fabric(noc), "bank_requests");
}

TEST(ComponentAuditNoc, KillsZeroedBankService) {
  noc::Noc noc = exercised_noc();
  noc::NocTestPeer::config(noc).bank_busy_cycles = 0;
  require_violation(audit_noc_fabric(noc), "bank_service");
}

TEST(ComponentAuditNoc, KillsZeroedHopCap) {
  noc::Noc noc = exercised_noc();
  // hops() clamps to the cap, so a zeroed cap collapses every distance to
  // zero — below the floorplan's one-hop floor.
  noc::NocTestPeer::config(noc).max_hops = 0;
  const AuditReport report = audit_noc_fabric(noc);
  require_violation(report, "latency_model");
  require_violation(report, "hops");
}

// ---------------------------------------------------------------------------
// Dram
// ---------------------------------------------------------------------------

TEST(ComponentAuditDram, CleanChannelPasses) {
  const mem::Dram dram(mem::DramConfig{});
  const AuditReport report = audit_dram_channel(dram);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checks, 0u);
}

TEST(ComponentAuditDram, KillsZeroAccessLatency) {
  mem::DramConfig config;
  config.access_latency = 0;
  require_violation(audit_dram_channel(mem::Dram(config)), "access_latency");
}

TEST(ComponentAuditDram, KillsZeroLineTransferTime) {
  mem::DramConfig config;
  config.cycles_per_line = 0;
  require_violation(audit_dram_channel(mem::Dram(config)), "cycles_per_line");
}

// ---------------------------------------------------------------------------
// SyntheticTraceGenerator
// ---------------------------------------------------------------------------

trace::SyntheticTraceGenerator exercised_generator() {
  trace::GeneratorConfig config;
  config.num_sets = 64;
  config.max_depth = 32;
  trace::SyntheticTraceGenerator generator(trace::spec2000_by_name("gzip"), config, 7);
  for (int i = 0; i < 5000; ++i) generator.next();
  return generator;
}

TEST(ComponentAuditGenerator, CleanGeneratorPassesAndCountsChecks) {
  const auto generator = exercised_generator();
  const AuditReport report = audit_trace_generator(generator);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checks, 100u);  // per-set ring walks dominate
}

TEST(ComponentAuditGenerator, KillsDesyncedRingMask) {
  auto generator = exercised_generator();
  trace::GeneratorTestPeer::ring_mask(generator) += 1;
  require_violation(audit_trace_generator(generator), "ring_mask");
}

TEST(ComponentAuditGenerator, KillsHeadBeyondCapacity) {
  auto generator = exercised_generator();
  trace::GeneratorTestPeer::head(generator, 3) = 32;  // capacity is 32
  require_violation(audit_trace_generator(generator), "ring_head");
}

TEST(ComponentAuditGenerator, KillsBlockBeyondAllocationCounter) {
  auto generator = exercised_generator();
  ASSERT_GT(trace::GeneratorTestPeer::size(generator, 0), 0u);
  // A block id the allocator never handed out: the signature of a rewind
  // path that restored the counter but not the ring bytes.
  trace::GeneratorTestPeer::entry(generator, 0, 0) = ~BlockAddress{0};
  require_violation(audit_trace_generator(generator), "ring_entry");
}

TEST(ComponentAuditGenerator, KillsDuplicatedRecencyEntry) {
  auto generator = exercised_generator();
  ASSERT_GT(trace::GeneratorTestPeer::size(generator, 0), 1u);
  trace::GeneratorTestPeer::entry(generator, 0, 1) =
      trace::GeneratorTestPeer::entry(generator, 0, 0);
  require_violation(audit_trace_generator(generator), "ring_uniqueness");
}

TEST(ComponentAuditGenerator, KillsLiveBatchWithoutUndoLog) {
  auto generator = exercised_generator();
  // A live flag with an empty undo log is unrewindable: truncate_batch()
  // could no longer restore the pre-batch rings.
  trace::GeneratorTestPeer::live_batch(generator) = true;
  require_violation(audit_trace_generator(generator), "batch_bookkeeping");
}

// ---------------------------------------------------------------------------
// StackProfiler
// ---------------------------------------------------------------------------

msa::StackProfiler exercised_profiler() {
  msa::ProfilerConfig config;
  config.num_sets = 256;
  config.set_sampling = 4;
  config.profiled_ways = 16;
  msa::StackProfiler profiler(config);
  for (BlockAddress block = 0; block < 4096; ++block) {
    profiler.observe(block * 37 % 8192);
  }
  return profiler;
}

TEST(ComponentAuditProfiler, CleanProfilerPassesAndCountsChecks) {
  const auto profiler = exercised_profiler();
  const AuditReport report = audit_stack_profiler(profiler);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checks, 50u);  // per-stack size checks dominate
}

TEST(ComponentAuditProfiler, KillsResizedStackStorage) {
  auto profiler = exercised_profiler();
  msa::ProfilerTestPeer::stack_entries(profiler).pop_back();
  require_violation(audit_stack_profiler(profiler), "stack_storage");
}

TEST(ComponentAuditProfiler, KillsOverflowedStack) {
  auto profiler = exercised_profiler();
  msa::ProfilerTestPeer::stack_sizes(profiler)[0] = 17;  // 16 profiled ways
  require_violation(audit_stack_profiler(profiler), "stack_size");
}

TEST(ComponentAuditProfiler, KillsDesyncedSamplingMask) {
  auto profiler = exercised_profiler();
  msa::ProfilerTestPeer::sample_mask(profiler) = 7;  // sampling 4 -> mask 3
  require_violation(audit_stack_profiler(profiler), "sampling_mask");
}

TEST(ComponentAuditProfiler, KillsSampledExceedingObserved) {
  auto profiler = exercised_profiler();
  msa::ProfilerTestPeer::sampled(profiler) = profiler.observed_accesses() + 1;
  require_violation(audit_stack_profiler(profiler), "access_counters");
}

// ---------------------------------------------------------------------------
// CoreTimer
// ---------------------------------------------------------------------------

core::CoreTimer exercised_timer() {
  core::CoreTimerConfig config;
  config.mlp_window = 4;
  core::CoreTimer timer(config);
  for (int i = 0; i < 32; ++i) {
    const Cycle issued = timer.advance_to_issue();
    timer.record_completion(issued + 40);
  }
  timer.mark();
  const Cycle issued = timer.advance_to_issue();
  timer.record_completion(issued + 40);
  return timer;
}

TEST(ComponentAuditTimer, CleanTimerPassesAndCountsChecks) {
  const auto timer = exercised_timer();
  const AuditReport report = audit_core_timer(timer);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checks, 4u);
}

TEST(ComponentAuditTimer, KillsOverfullInFlightWindow) {
  auto timer = exercised_timer();
  auto& outstanding = core::TimerTestPeer::outstanding(timer);
  while (outstanding.size() <= 4) outstanding.push_back(outstanding.back());
  require_violation(audit_core_timer(timer), "inflight_window");
}

TEST(ComponentAuditTimer, KillsBrokenCompletionHeap) {
  auto timer = exercised_timer();
  auto& outstanding = core::TimerTestPeer::outstanding(timer);
  ASSERT_FALSE(outstanding.empty());
  core::TimerTestPeer::InFlight late;
  late.done_at = outstanding.front().done_at + 1e9;
  outstanding.insert(outstanding.begin(), late);  // a root later than its children
  // Keep the window legal so only the heap-order invariant fires.
  while (outstanding.size() > 4) outstanding.pop_back();
  require_violation(audit_core_timer(timer), "inflight_heap");
}

TEST(ComponentAuditTimer, KillsMarkAheadOfClock) {
  auto timer = exercised_timer();
  core::TimerTestPeer::mark_time(timer) = static_cast<double>(timer.time()) + 1000.0;
  require_violation(audit_core_timer(timer), "clock_marks");
}

// ---------------------------------------------------------------------------
// TimeSeries
// ---------------------------------------------------------------------------

obs::TimeSeries exercised_series() {
  obs::TimeSeries series;
  const auto cpi = series.intern("cpi");
  const auto miss = series.intern("miss_ratio");
  for (int epoch = 0; epoch < 4; ++epoch) {
    series.begin_epoch();
    series.record(cpi, 0.7 + epoch * 0.01);
    series.record(miss, 0.2);
  }
  return series;
}

TEST(ComponentAuditSeries, CleanSeriesPassesAndCountsChecks) {
  const auto series = exercised_series();
  const AuditReport report = audit_epoch_series(series);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checks, 4u);
}

TEST(ComponentAuditSeries, KillsDanglingHandle) {
  auto series = exercised_series();
  obs::SeriesTestPeer::index(series)["ghost"] = 99;  // no such column
  require_violation(audit_epoch_series(series), "handle_range");
}

TEST(ComponentAuditSeries, KillsAliasedHandles) {
  auto series = exercised_series();
  obs::SeriesTestPeer::index(series)["alias"] = 0;  // shares cpi's column
  require_violation(audit_epoch_series(series), "handle_uniqueness");
}

TEST(ComponentAuditSeries, KillsOrphanedColumn) {
  auto series = exercised_series();
  obs::SeriesTestPeer::columns(series).emplace_back();  // column with no name
  require_violation(audit_epoch_series(series), "column_ownership");
}

TEST(ComponentAuditSeries, KillsColumnLongerThanEpochCount) {
  auto series = exercised_series();
  obs::SeriesTestPeer::columns(series)[0].push_back(0.0);  // 5 samples, 4 epochs
  require_violation(audit_epoch_series(series), "column_length");
}

}  // namespace
}  // namespace bacp::audit
