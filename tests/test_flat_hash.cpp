#include "common/flat_hash.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"

namespace bacp::common {
namespace {

TEST(FlatHash64, InsertFindErase) {
  FlatHash64<int> map;
  EXPECT_TRUE(map.empty());
  map.insert_or_assign(42, 7);
  ASSERT_NE(map.find(42), nullptr);
  EXPECT_EQ(*map.find(42), 7);
  EXPECT_EQ(map.find(43), nullptr);

  map.insert_or_assign(42, 9);  // overwrite, not duplicate
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.find(42), 9);

  EXPECT_TRUE(map.erase(42));
  EXPECT_FALSE(map.erase(42));
  EXPECT_EQ(map.find(42), nullptr);
  EXPECT_TRUE(map.empty());
}

TEST(FlatHash64, FindOrEmplaceDefaultConstructs) {
  FlatHash64<std::uint64_t> map;
  std::uint64_t& value = map.find_or_emplace(5);
  EXPECT_EQ(value, 0u);
  value = 99;
  EXPECT_EQ(map.find_or_emplace(5), 99u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHash64, GrowsPastInitialCapacityAndKeepsEntries) {
  FlatHash64<std::uint64_t> map;
  for (std::uint64_t key = 0; key < 10'000; ++key) {
    map.insert_or_assign(key * 0x10001, key);
  }
  ASSERT_EQ(map.size(), 10'000u);
  for (std::uint64_t key = 0; key < 10'000; ++key) {
    const auto* value = map.find(key * 0x10001);
    ASSERT_NE(value, nullptr) << key;
    EXPECT_EQ(*value, key);
  }
}

TEST(FlatHash64, ReservePreventsRehash) {
  FlatHash64<int> map;
  map.reserve(1000);
  const std::size_t capacity = map.capacity();
  for (std::uint64_t key = 0; key < 1000; ++key) map.insert_or_assign(key, 1);
  EXPECT_EQ(map.capacity(), capacity);
}

TEST(FlatHash64, ClearEmptiesButKeepsCapacity) {
  FlatHash64<int> map;
  for (std::uint64_t key = 0; key < 100; ++key) map.insert_or_assign(key, 1);
  const std::size_t capacity = map.capacity();
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.capacity(), capacity);
  EXPECT_EQ(map.find(5), nullptr);
  map.insert_or_assign(5, 3);
  EXPECT_EQ(*map.find(5), 3);
}

/// Backward-shift deletion is the delicate part: hammer the table with a
/// random insert/erase/lookup mix and require exact agreement with
/// std::unordered_map at every step.
TEST(FlatHash64, RandomizedAgainstStdUnorderedMap) {
  FlatHash64<std::uint32_t> map;
  std::unordered_map<std::uint64_t, std::uint32_t> reference;
  Rng rng(1234, 0);
  // A small key universe forces constant collisions, erasures of displaced
  // entries and reinsertions into freshly shifted runs.
  constexpr std::uint64_t kUniverse = 512;
  for (std::uint32_t step = 0; step < 200'000; ++step) {
    const std::uint64_t key = rng.next_below(kUniverse) * 0x9E3779B9ull;
    switch (rng.next_below(4)) {
      case 0:
      case 1: {
        map.insert_or_assign(key, step);
        reference[key] = step;
        break;
      }
      case 2: {
        EXPECT_EQ(map.erase(key), reference.erase(key) > 0) << "step " << step;
        break;
      }
      default: {
        const auto* found = map.find(key);
        const auto it = reference.find(key);
        ASSERT_EQ(found != nullptr, it != reference.end()) << "step " << step;
        if (found != nullptr) {
          EXPECT_EQ(*found, it->second) << "step " << step;
        }
        break;
      }
    }
    ASSERT_EQ(map.size(), reference.size()) << "step " << step;
  }
  // Full sweep at the end: every key agrees.
  for (std::uint64_t raw = 0; raw < kUniverse; ++raw) {
    const std::uint64_t key = raw * 0x9E3779B9ull;
    const auto* found = map.find(key);
    const auto it = reference.find(key);
    ASSERT_EQ(found != nullptr, it != reference.end()) << "key " << key;
    if (found != nullptr) {
      EXPECT_EQ(*found, it->second);
    }
  }
}

}  // namespace
}  // namespace bacp::common
