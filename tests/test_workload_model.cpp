#include "trace/workload_model.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "msa/miss_curve.hpp"
#include "trace/spec2000.hpp"

namespace bacp::trace {
namespace {

WorkloadModel simple_model() {
  WorkloadModel m;
  m.name = "toy";
  m.components = {{0.5, 4, false}, {0.3, 10, true}};
  m.cold_fraction = 0.2;
  return m;
}

TEST(WorkloadModel, ValidatePassesForWellFormedModel) {
  simple_model().validate();  // aborts on violation
}

TEST(WorkloadModel, MissRatioAtZeroWaysIsOne) {
  EXPECT_DOUBLE_EQ(simple_model().miss_ratio(0), 1.0);
}

TEST(WorkloadModel, MissRatioFloorIsColdFraction) {
  const auto m = simple_model();
  EXPECT_NEAR(m.miss_ratio(128), m.cold_fraction, 1e-12);
}

TEST(WorkloadModel, MixedComponentIsPiecewiseLinear) {
  WorkloadModel m;
  m.name = "mixed";
  m.components = {{0.8, 10, false}};
  m.cold_fraction = 0.2;
  EXPECT_NEAR(m.miss_ratio(5), 1.0 - 0.8 * 0.5, 1e-12);
  EXPECT_NEAR(m.miss_ratio(10), 0.2, 1e-12);
  EXPECT_NEAR(m.miss_ratio(20), 0.2, 1e-12);
}

TEST(WorkloadModel, CyclicComponentHasSteepRamp) {
  WorkloadModel m;
  m.name = "loop";
  m.components = {{1.0, 30, true}};
  m.cold_fraction = 0.0;
  // Smear: +-30/3 = 10 -> span [20, 40].
  EXPECT_DOUBLE_EQ(m.miss_ratio(19), 1.0);  // below the span: nothing
  EXPECT_LT(m.miss_ratio(30), m.miss_ratio(25));
  EXPECT_NEAR(m.miss_ratio(40), 0.0, 1e-12);  // span fully captured
  EXPECT_NEAR(m.miss_ratio(128), 0.0, 1e-12);
}

TEST(WorkloadModel, StackDistanceWeightsSumToOne) {
  const auto weights = simple_model().stack_distance_weights(64);
  const double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(WorkloadModel, DeepLoopFoldsIntoColdBin) {
  WorkloadModel m;
  m.name = "deep";
  m.components = {{1.0, 100, true}};
  m.cold_fraction = 0.0;
  const auto weights = m.stack_distance_weights(16);
  // Loop span [67, 133] lies entirely beyond depth 16.
  for (std::size_t i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(weights[i], 0.0);
  EXPECT_NEAR(weights[16], 1.0, 1e-12);
}

TEST(WorkloadModel, DeepMixedComponentSplitsAcrossBinAndCold) {
  WorkloadModel m;
  m.name = "deepmix";
  m.components = {{1.0, 20, false}};
  m.cold_fraction = 0.0;
  const auto weights = m.stack_distance_weights(10);
  double in_range = 0.0;
  for (std::size_t i = 0; i < 10; ++i) in_range += weights[i];
  EXPECT_NEAR(in_range, 0.5, 1e-12);
  EXPECT_NEAR(weights[10], 0.5, 1e-12);
}

/// Property over the whole calibrated suite: the analytic projection from
/// the stack-distance weights must agree with miss_ratio, and curves must
/// be monotone non-increasing in capacity.
class SuiteModelProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SuiteModelProperty, CurveMatchesMissRatio) {
  const auto& model = spec2000_suite()[GetParam()];
  const auto curve = msa::MissRatioCurve::from_model(model, 128);
  for (WayCount w : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    EXPECT_NEAR(curve.miss_ratio(w), model.miss_ratio(w), 1e-9)
        << model.name << " at " << w << " ways";
  }
}

TEST_P(SuiteModelProperty, MissRatioMonotoneNonIncreasing) {
  const auto& model = spec2000_suite()[GetParam()];
  double previous = model.miss_ratio(0);
  for (WayCount w = 1; w <= 128; ++w) {
    const double mr = model.miss_ratio(w);
    EXPECT_LE(mr, previous + 1e-12) << model.name << " at " << w;
    previous = mr;
  }
}

TEST_P(SuiteModelProperty, WeightsSumToOneAtAnyDepth) {
  const auto& model = spec2000_suite()[GetParam()];
  for (WayCount depth : {8u, 72u, 128u}) {
    const auto weights = model.stack_distance_weights(depth);
    EXPECT_NEAR(std::accumulate(weights.begin(), weights.end(), 0.0), 1.0, 1e-9)
        << model.name << " depth " << depth;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSpec2000, SuiteModelProperty,
                         ::testing::Range<std::size_t>(0, kNumSpec2000));

}  // namespace
}  // namespace bacp::trace
