#include "common/histogram.hpp"

#include <gtest/gtest.h>

namespace bacp::common {
namespace {

TEST(Histogram, StartsEmpty) {
  Histogram h(4);
  EXPECT_EQ(h.num_bins(), 4u);
  EXPECT_EQ(h.total(), 0u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(h.bin(i), 0u);
}

TEST(Histogram, IncrementTracksTotals) {
  Histogram h(3);
  h.increment(0);
  h.increment(1, 5);
  h.increment(1);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 6u);
  EXPECT_EQ(h.bin(2), 0u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Histogram, DecayHalvesEveryBin) {
  Histogram h(3);
  h.increment(0, 8);
  h.increment(1, 5);
  h.increment(2, 1);
  h.decay_halve();
  EXPECT_EQ(h.bin(0), 4u);
  EXPECT_EQ(h.bin(1), 2u);  // floor(5/2)
  EXPECT_EQ(h.bin(2), 0u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, RepeatedDecayReachesZero) {
  Histogram h(1);
  h.increment(0, 1000);
  for (int i = 0; i < 11; ++i) h.decay_halve();
  EXPECT_EQ(h.total(), 0u);
}

TEST(Histogram, ClearResets) {
  Histogram h(2);
  h.increment(0, 10);
  h.clear();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.bin(0), 0u);
  EXPECT_EQ(h.num_bins(), 2u);
}

TEST(Histogram, AccumulateAddsElementwise) {
  Histogram a(2), b(2);
  a.increment(0, 1);
  b.increment(0, 2);
  b.increment(1, 3);
  a.accumulate(b);
  EXPECT_EQ(a.bin(0), 3u);
  EXPECT_EQ(a.bin(1), 3u);
  EXPECT_EQ(a.total(), 6u);
}

TEST(Histogram, NormalizedSumsToOne) {
  Histogram h(4);
  h.increment(0, 1);
  h.increment(2, 3);
  const auto n = h.normalized();
  EXPECT_DOUBLE_EQ(n[0], 0.25);
  EXPECT_DOUBLE_EQ(n[1], 0.0);
  EXPECT_DOUBLE_EQ(n[2], 0.75);
  double sum = 0.0;
  for (double x : n) sum += x;
  EXPECT_DOUBLE_EQ(sum, 1.0);
}

TEST(Histogram, NormalizedOfEmptyIsZeros) {
  Histogram h(3);
  for (double x : h.normalized()) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(Histogram, BinsSpanAccess) {
  Histogram h(3);
  h.increment(1, 9);
  const auto view = h.bins();
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[1], 9u);
}

}  // namespace
}  // namespace bacp::common
