#include "msa/stack_profiler.hpp"

#include <gtest/gtest.h>

#include "trace/spec2000.hpp"
#include "trace/synthetic.hpp"

namespace bacp::msa {
namespace {

ProfilerConfig exact_config(std::uint32_t sets = 8, WayCount ways = 4) {
  ProfilerConfig config;
  config.num_sets = sets;
  config.set_sampling = 1;
  config.partial_tag_bits = 0;  // full tags
  config.profiled_ways = ways;
  return config;
}

/// Block in `set` with tag `t` for an 8-set view.
BlockAddress block(std::uint32_t set, std::uint64_t tag) { return tag * 8 + set; }

TEST(StackProfiler, FirstTouchIsAMiss) {
  StackProfiler profiler(exact_config());
  profiler.observe(block(0, 1));
  EXPECT_EQ(profiler.histogram().bin(4), 1u);  // C(K+1) miss counter
  EXPECT_EQ(profiler.histogram().total(), 1u);
}

TEST(StackProfiler, ImmediateReuseHitsMru) {
  StackProfiler profiler(exact_config());
  profiler.observe(block(0, 1));
  profiler.observe(block(0, 1));
  EXPECT_EQ(profiler.histogram().bin(0), 1u);  // C1 == MRU position
}

TEST(StackProfiler, StackDistanceMatchesInterveningDistinctBlocks) {
  StackProfiler profiler(exact_config());
  profiler.observe(block(0, 1));
  profiler.observe(block(0, 2));
  profiler.observe(block(0, 3));
  profiler.observe(block(0, 1));  // two distinct blocks since -> depth 3 -> C3
  EXPECT_EQ(profiler.histogram().bin(2), 1u);
}

TEST(StackProfiler, BeyondDepthCountsAsMiss) {
  StackProfiler profiler(exact_config(8, 2));  // 2-deep stack
  profiler.observe(block(0, 1));
  profiler.observe(block(0, 2));
  profiler.observe(block(0, 3));
  profiler.observe(block(0, 1));  // fell off the 2-deep stack
  EXPECT_EQ(profiler.histogram().bin(2), 4u);  // all four count as misses
}

TEST(StackProfiler, SetsAreIndependentStacks) {
  StackProfiler profiler(exact_config());
  profiler.observe(block(0, 1));
  profiler.observe(block(1, 2));  // different set: no aging of set 0
  profiler.observe(block(0, 1));
  EXPECT_EQ(profiler.histogram().bin(0), 1u);  // still MRU in its own set
}

TEST(StackProfiler, SetSamplingIgnoresUnsampledSets) {
  ProfilerConfig config = exact_config(8, 4);
  config.set_sampling = 4;  // only sets 0 and 4 are monitored
  StackProfiler profiler(config);
  profiler.observe(block(1, 1));
  profiler.observe(block(2, 1));
  profiler.observe(block(3, 1));
  EXPECT_EQ(profiler.sampled_accesses(), 0u);
  EXPECT_EQ(profiler.observed_accesses(), 3u);
  profiler.observe(block(0, 1));
  profiler.observe(block(4, 1));
  EXPECT_EQ(profiler.sampled_accesses(), 2u);
}

TEST(StackProfiler, CurveScalesBackBySamplingFactor) {
  ProfilerConfig config = exact_config(8, 4);
  config.set_sampling = 4;
  StackProfiler profiler(config);
  profiler.observe(block(0, 1));
  profiler.observe(block(4, 2));
  // 2 sampled misses scaled by 4 -> the curve estimates 8 accesses.
  EXPECT_DOUBLE_EQ(profiler.curve().total(), 8.0);
}

TEST(StackProfiler, DecayHalvesHistogram) {
  StackProfiler profiler(exact_config());
  for (int i = 0; i < 10; ++i) profiler.observe(block(0, 1));
  profiler.decay();
  // 1 miss + 9 MRU hits -> after decay: floor(9/2) = 4 hits.
  EXPECT_EQ(profiler.histogram().bin(0), 4u);
}

TEST(StackProfiler, ClearResetsEverything) {
  StackProfiler profiler(exact_config());
  profiler.observe(block(0, 1));
  profiler.observe(block(0, 1));
  profiler.clear();
  EXPECT_EQ(profiler.histogram().total(), 0u);
  EXPECT_EQ(profiler.observed_accesses(), 0u);
  // The stack is cleared too: the next touch is a fresh miss.
  profiler.observe(block(0, 1));
  EXPECT_EQ(profiler.histogram().bin(4), 1u);
}

/// Pins the stored-tag geometry: the partial tag hashes the bits *above*
/// the set index (with the set shift derived from num_sets once at
/// construction), so set bits never leak into the tag and tag bits are
/// never dropped. Regression test for the per-observe log2 recompute fix.
TEST(StackProfiler, StoredTagStripsExactlyTheSetIndexBits) {
  ProfilerConfig config = exact_config(64, 4);
  config.partial_tag_bits = 16;
  StackProfiler profiler(config);

  // Same tag bits, same set: a genuine reuse -> MRU hit.
  profiler.observe(7 * 64 + 3);
  profiler.observe(7 * 64 + 3);
  EXPECT_EQ(profiler.histogram().bin(0), 1u);

  // Same tag bits, different (sampled) set: distinct stacks, both misses,
  // and neither ages the other's stack.
  StackProfiler across_sets(config);
  across_sets.observe(7 * 64 + 0);
  across_sets.observe(7 * 64 + 1);
  across_sets.observe(7 * 64 + 0);
  EXPECT_EQ(across_sets.histogram().bin(0), 1u);  // still MRU in set 0
  EXPECT_EQ(across_sets.histogram().bin(4), 2u);  // one cold miss per set

  // Different tag bits, same set: distinct entries (16-bit tags over a
  // 6-bit tag distance cannot alias these), so no false hit.
  StackProfiler across_tags(config);
  across_tags.observe(7 * 64 + 3);
  across_tags.observe(8 * 64 + 3);
  EXPECT_EQ(across_tags.histogram().bin(4), 2u);
  EXPECT_EQ(across_tags.histogram().bin(0), 0u);
}

TEST(StackProfiler, PartialTagsCanAliasDistinctBlocks) {
  ProfilerConfig config = exact_config(2, 8);
  config.partial_tag_bits = 2;  // tiny tags force aliasing
  StackProfiler profiler(config);
  int false_hits = 0;
  for (std::uint64_t t = 0; t < 64; ++t) {
    profiler.observe(t * 2);  // set 0, all distinct blocks
  }
  // With 2-bit tags only 4 distinct entries exist: most "distinct" blocks
  // alias onto an existing entry and are recorded as (false) hits.
  for (std::size_t depth = 0; depth < 8; ++depth) {
    false_hits += static_cast<int>(profiler.histogram().bin(depth));
  }
  EXPECT_GT(false_hits, 30);
}

/// Accuracy property (the paper's Section III-A claim): the production
/// configuration — 12-bit tags, 1-in-32 sampling — projects miss curves
/// within ~5% of the full-tag reference.
TEST(StackProfiler, ProductionConfigWithinFivePercentOfReference) {
  const auto& model = trace::spec2000_by_name("bzip2");
  trace::GeneratorConfig generator_config;  // 2048 sets, 128 depth
  trace::SyntheticTraceGenerator generator(model, generator_config, 33);

  ProfilerConfig reference_config = exact_config(2048, 72);
  StackProfiler reference(reference_config);
  ProfilerConfig production_config;
  production_config.num_sets = 2048;
  production_config.set_sampling = 32;
  production_config.partial_tag_bits = 12;
  production_config.profiled_ways = 72;
  StackProfiler production(production_config);

  for (int i = 0; i < 600000; ++i) {
    const auto b = generator.next().block;
    reference.observe(b);
    production.observe(b);
  }
  const auto reference_curve = reference.curve();
  const auto production_curve = production.curve();
  for (WayCount w : {4u, 8u, 16u, 32u, 48u, 64u, 72u}) {
    const double ref = reference_curve.miss_ratio(w);
    const double got = production_curve.miss_ratio(w);
    EXPECT_NEAR(got, ref, 0.05 * ref + 0.02) << "at " << w << " ways";
  }
}

}  // namespace
}  // namespace bacp::msa
