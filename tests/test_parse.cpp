#include "common/parse.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace bacp::common {
namespace {

// ---------------------------------------------------------------------------
// Table-driven coverage of the strict scalar parsers: the exact set of
// failure modes the ingestion layer promises to catch (empty input, trailing
// garbage, sign wraparound, overflow saturation, non-finite doubles), plus
// the valid forms that must keep parsing.
// ---------------------------------------------------------------------------

struct U64Case {
  const char* text;
  bool ok;
  std::uint64_t value;          // when ok
  const char* error_contains;   // when !ok
};

TEST(ParseU64, Table) {
  const std::vector<U64Case> cases = {
      {"0", true, 0, ""},
      {"42", true, 42, ""},
      {"18446744073709551615", true, std::numeric_limits<std::uint64_t>::max(), ""},
      {"007", true, 7, ""},  // leading zeros are harmless decimal
      {"", false, 0, "empty"},
      {"-1", false, 0, "negative"},  // strtoull would wrap to 2^64-1
      {"-99999999999999999999", false, 0, "negative"},
      {"+1", false, 0, "leading '+'"},
      {"18446744073709551616", false, 0, "out of range"},  // 2^64
      {"99999999999999999999999", false, 0, "out of range"},
      {"10k", false, 0, "trailing characters 'k'"},
      {"1e3", false, 0, "trailing"},  // scientific notation is not an integer
      {"12 ", false, 0, "trailing"},
      {" 12", false, 0, "not a number"},
      {"0x10", false, 0, "trailing"},
      {"abc", false, 0, "not a number"},
      {"12.5", false, 0, "trailing"},
  };
  for (const auto& c : cases) {
    const auto result = parse_u64(c.text);
    EXPECT_EQ(result.ok(), c.ok) << "input: '" << c.text << "'";
    if (c.ok && result.ok()) {
      EXPECT_EQ(*result, c.value) << "input: '" << c.text << "'";
    } else if (!c.ok && !result.ok()) {
      EXPECT_NE(result.error.find(c.error_contains), std::string::npos)
          << "input: '" << c.text << "' error: " << result.error;
    }
  }
}

struct I64Case {
  const char* text;
  bool ok;
  std::int64_t value;
  const char* error_contains;
};

TEST(ParseI64, Table) {
  const std::vector<I64Case> cases = {
      {"0", true, 0, ""},
      {"-1", true, -1, ""},
      {"42", true, 42, ""},
      {"9223372036854775807", true, std::numeric_limits<std::int64_t>::max(), ""},
      {"-9223372036854775808", true, std::numeric_limits<std::int64_t>::min(), ""},
      {"", false, 0, "empty"},
      {"9223372036854775808", false, 0, "out of range"},
      {"-9223372036854775809", false, 0, "out of range"},
      {"+1", false, 0, "leading '+'"},
      {"--2", false, 0, "not a number"},
      {"-", false, 0, "not a number"},
      {"1_000", false, 0, "trailing"},
      {"x", false, 0, "not a number"},
  };
  for (const auto& c : cases) {
    const auto result = parse_i64(c.text);
    EXPECT_EQ(result.ok(), c.ok) << "input: '" << c.text << "'";
    if (c.ok && result.ok()) {
      EXPECT_EQ(*result, c.value) << "input: '" << c.text << "'";
    } else if (!c.ok && !result.ok()) {
      EXPECT_NE(result.error.find(c.error_contains), std::string::npos)
          << "input: '" << c.text << "' error: " << result.error;
    }
  }
}

struct DoubleCase {
  const char* text;
  bool ok;
  double value;
  const char* error_contains;
};

TEST(ParseDouble, Table) {
  const std::vector<DoubleCase> cases = {
      {"0", true, 0.0, ""},
      {"1.5", true, 1.5, ""},
      {"-2.75", true, -2.75, ""},
      {"1e3", true, 1000.0, ""},
      {"2.5e-2", true, 0.025, ""},
      {"", false, 0, "empty"},
      {"x1.5", false, 0, "not a number"},
      {"1.5x", false, 0, "trailing"},
      {"1.5 ", false, 0, "trailing"},
      {"+1.5", false, 0, "leading '+'"},
      {"1e999", false, 0, "out of range"},
      {"inf", false, 0, "non-finite"},
      {"-inf", false, 0, "non-finite"},
      {"nan", false, 0, "non-finite"},
  };
  for (const auto& c : cases) {
    const auto result = parse_double(c.text);
    EXPECT_EQ(result.ok(), c.ok) << "input: '" << c.text << "'";
    if (c.ok && result.ok()) {
      EXPECT_DOUBLE_EQ(*result, c.value) << "input: '" << c.text << "'";
    } else if (!c.ok && !result.ok()) {
      EXPECT_NE(result.error.find(c.error_contains), std::string::npos)
          << "input: '" << c.text << "' error: " << result.error;
    }
  }
}

TEST(ParseBool, Table) {
  for (const char* text : {"1", "true", "yes", "on"}) {
    const auto result = parse_bool(text);
    ASSERT_TRUE(result.ok()) << text;
    EXPECT_TRUE(*result) << text;
  }
  for (const char* text : {"0", "false", "no", "off"}) {
    const auto result = parse_bool(text);
    ASSERT_TRUE(result.ok()) << text;
    EXPECT_FALSE(*result) << text;
  }
  for (const char* text : {"", "maybe", "TRUE", "2", "y", "truex"}) {
    EXPECT_FALSE(parse_bool(text).ok()) << text;
  }
}

}  // namespace
}  // namespace bacp::common
