#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_timer.hpp"
#include "obs/report.hpp"
#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace bacp::obs {
namespace {

// ---------------------------------------------------------------- Json --

TEST(Json, DumpIsInsertionOrderedAndStable) {
  Json object = Json::object();
  object.set("b", Json(1.0));
  object.set("a", Json(std::uint64_t{2}));
  object.set("c", Json("three"));
  EXPECT_EQ(object.dump(), "{\"b\":1,\"a\":2,\"c\":\"three\"}");
  // Re-setting an existing key keeps its original position.
  object.set("b", Json(std::uint64_t{9}));
  EXPECT_EQ(object.dump(), "{\"b\":9,\"a\":2,\"c\":\"three\"}");
}

TEST(Json, RoundTripsThroughParse) {
  Json object = Json::object();
  object.set("name", Json("bench"));
  object.set("ratio", Json(0.7305));
  object.set("count", Json(std::uint64_t{12345}));
  object.set("flag", Json(true));
  object.set("missing", Json());
  Json array = Json::array();
  array.push_back(Json(1.5));
  array.push_back(Json("x"));
  object.set("list", std::move(array));

  std::string error;
  const auto parsed = Json::parse(object.dump(2), &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(parsed, object);
}

TEST(Json, DoublesSerializeShortestRoundTrip) {
  EXPECT_EQ(Json(0.5).dump(), "0.5");
  EXPECT_EQ(Json(1.0).dump(), "1");
  EXPECT_EQ(Json(-0.25).dump(), "-0.25");
}

TEST(Json, ParseErrorsCarryBytePositions) {
  struct Case {
    const char* text;
    const char* error_contains;
  };
  const Case cases[] = {
      {"{\"a\":1,}", "expected object key at offset 7"},
      {"[1,2", "expected ',' at offset 4"},
      {"{\"a\" 1}", "expected ':' at offset 5"},
      {"\"unterminated", "unterminated string at offset 13"},
      {"[1] junk", "trailing characters at offset 4"},
      {"", "unexpected end of input at offset 0"},
  };
  for (const auto& c : cases) {
    std::string error;
    const auto parsed = Json::parse(c.text, &error);
    EXPECT_TRUE(parsed.is_null()) << c.text;
    EXPECT_NE(error.find(c.error_contains), std::string::npos)
        << "input: " << c.text << " error: " << error;
  }
}

TEST(Json, NestingDepthIsLimited) {
  // 64 levels (the default limit) parse; 65 must fail with a positioned
  // error instead of recursing toward a stack overflow.
  const std::string ok_text = std::string(64, '[') + std::string(64, ']');
  std::string error;
  EXPECT_FALSE(Json::parse(ok_text, &error).is_null());
  EXPECT_TRUE(error.empty()) << error;

  const std::string deep_text = std::string(65, '[') + std::string(65, ']');
  const auto parsed = Json::parse(deep_text, &error);
  EXPECT_TRUE(parsed.is_null());
  EXPECT_NE(error.find("nesting depth"), std::string::npos) << error;

  // A pathologically deep document (the classic parser-killer input) is
  // rejected quickly and safely regardless of length.
  const std::string hostile(100'000, '[');
  EXPECT_TRUE(Json::parse(hostile, &error).is_null());
  EXPECT_NE(error.find("nesting depth"), std::string::npos) << error;
}

TEST(Json, CustomLimitsAreHonored) {
  JsonLimits limits;
  limits.max_depth = 2;
  std::string error;
  EXPECT_FALSE(Json::parse("[[1]]", &error, limits).is_null());
  EXPECT_TRUE(Json::parse("[[[1]]]", &error, limits).is_null());
  EXPECT_NE(error.find("limit of 2"), std::string::npos) << error;

  limits = JsonLimits{};
  limits.max_input_bytes = 10;
  error.clear();
  EXPECT_TRUE(Json::parse("[1,2,3,4,5,6]", &error, limits).is_null());
  EXPECT_NE(error.find("size limit"), std::string::npos) << error;
}

// Deterministic byte-mutation fuzz over the JSON parser: flip one bit at
// every position of a representative sink document and require "error or
// valid parse, never crash". Runs under asan-ubsan in CI.
TEST(Json, BitFlipFuzzNeverCrashes) {
  Json doc = Json::object();
  doc.set("schema", Json(std::uint64_t{1}));
  doc.set("title", Json("fuzz \"quoted\" \\ text\n"));
  doc.set("ratio", Json(0.7305));
  doc.set("neg", Json(std::int64_t{-42}));
  Json rows = Json::array();
  for (int i = 0; i < 8; ++i) {
    Json row = Json::array();
    row.push_back(Json(std::uint64_t(i)));
    row.push_back(Json(i * 0.125));
    row.push_back(Json(i % 2 == 0));
    row.push_back(Json());
    rows.push_back(std::move(row));
  }
  doc.set("rows", std::move(rows));
  const std::string text = doc.dump(2);

  for (std::size_t pos = 0; pos < text.size(); ++pos) {
    for (const int bit : {0, 3, 6}) {
      std::string mutated = text;
      mutated[pos] = static_cast<char>(static_cast<unsigned char>(mutated[pos]) ^
                                       (1u << bit));
      std::string error;
      const auto parsed = Json::parse(mutated, &error);
      if (parsed.is_null() && !error.empty()) continue;  // rejected: fine
      // Accepted: the result must re-serialize without tripping any
      // internal assertion — i.e. it is a structurally valid document.
      (void)parsed.dump();
    }
  }
}

// ------------------------------------------------------------- Registry --

TEST(Registry, KindsAndValues) {
  Registry registry;
  registry.counter("a.count").add(3);
  registry.counter("a.count").add(4);
  registry.gauge("a.ratio").set(0.25);
  registry.distribution("a.dist").observe(8.0);
  EXPECT_EQ(registry.counter_value("a.count"), 7u);
  EXPECT_DOUBLE_EQ(registry.gauge_value("a.ratio"), 0.25);
  EXPECT_EQ(registry.counter_value("absent", 42), 42u);
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_NE(registry.find_distribution("a.dist"), nullptr);
  EXPECT_EQ(registry.find_counter("absent"), nullptr);
}

TEST(Registry, MergeAddsCountersAndMergesDistributions) {
  Registry a, b;
  a.counter("hits").add(10);
  b.counter("hits").add(5);
  b.counter("only_b").add(1);
  a.distribution("lat").observe(2.0);
  b.distribution("lat").observe(6.0);
  b.gauge("cpi").set(1.5);
  a.merge(b);
  EXPECT_EQ(a.counter_value("hits"), 15u);
  EXPECT_EQ(a.counter_value("only_b"), 1u);
  EXPECT_EQ(a.find_distribution("lat")->count(), 2u);
  EXPECT_DOUBLE_EQ(a.find_distribution("lat")->mean(), 4.0);
  EXPECT_DOUBLE_EQ(a.gauge_value("cpi"), 1.5);
}

TEST(Registry, ShardedMergeIsDeterministicAcrossThreadCounts) {
  // The monte-carlo pattern: N trials, each observing into its own shard
  // from a per-trial RNG stream; shards merged in index order afterwards.
  // The result must not depend on how many workers ran the trials.
  constexpr std::size_t kTrials = 64;
  const auto run = [&](std::size_t num_threads) {
    std::vector<Registry> shards(kTrials);
    common::ThreadPool pool(num_threads);
    pool.parallel_for(kTrials, [&](std::size_t trial) {
      common::Rng rng(1234, trial);
      auto& shard = shards[trial];
      for (int i = 0; i < 100; ++i) {
        shard.counter("events").add(rng.next_below(8));
        shard.distribution("values").observe(rng.next_double());
      }
    });
    Registry merged;
    for (const auto& shard : shards) merged.merge(shard);
    return merged.to_json().dump(2);
  };
  const auto one = run(1);
  const auto two = run(2);
  const auto eight = run(8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST(Registry, JsonAndCsvAreNameSorted) {
  Registry registry;
  registry.counter("z.last").add(1);
  registry.counter("a.first").add(2);
  registry.gauge("m.middle").set(3.0);
  const std::string json = registry.to_json().dump();
  EXPECT_LT(json.find("a.first"), json.find("z.last"));
  std::ostringstream csv;
  registry.write_csv(csv);
  const std::string text = csv.str();
  EXPECT_LT(text.find("a.first"), text.find("z.last"));
  EXPECT_NE(text.find("counter,a.first,2"), std::string::npos);
  EXPECT_NE(text.find("gauge,m.middle,,3"), std::string::npos);
}

// ----------------------------------------------------------- TimeSeries --

TEST(TimeSeries, RecordsRectangularColumns) {
  TimeSeries series;
  series.begin_epoch();
  series.record("ways", 16.0);
  series.begin_epoch();
  series.record("ways", 20.0);
  series.record("late", 1.0);  // first appearance in epoch 2: back-filled
  EXPECT_EQ(series.num_epochs(), 2u);
  ASSERT_TRUE(series.has_series("late"));
  const auto late = series.series("late");
  ASSERT_EQ(late.size(), 2u);
  EXPECT_DOUBLE_EQ(late[0], 0.0);
  EXPECT_DOUBLE_EQ(late[1], 1.0);
  const auto ways = series.series("ways");
  EXPECT_DOUBLE_EQ(ways[1], 20.0);
}

TEST(TimeSeries, JsonAndCsvShapes) {
  TimeSeries series;
  series.begin_epoch();
  series.record("a", 1.0);
  series.record("b", 2.0);
  series.begin_epoch();
  series.record("a", 3.0);
  series.record("b", 4.0);
  const Json json = series.to_json();
  EXPECT_DOUBLE_EQ(json.at("epochs").as_double(), 2.0);
  std::ostringstream csv;
  series.write_csv(csv);
  EXPECT_EQ(csv.str(), "epoch,a,b\n0,1,2\n1,3,4\n");
}

// ---------------------------------------------------------- PhaseTimers --

TEST(PhaseTimers, ScopesAccumulateByName) {
  PhaseTimers timers;
  { const auto t = timers.scope("profile"); }
  { const auto t = timers.scope("profile"); }
  { const auto t = timers.scope("allocate"); }
  const auto phases = timers.phases();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_GE(timers.seconds("profile"), 0.0);
  EXPECT_GE(timers.seconds("allocate"), 0.0);
  timers.clear();
  EXPECT_TRUE(timers.phases().empty());
}

// --------------------------------------------------------------- Report --

Report sample_report() {
  Report report("sample", "Sample report");
  report.meta("trials", "3");
  report.table("rows", {"name", "value"})
      .begin_row()
      .cell("first")
      .cell(0.75)
      .begin_row()
      .cell("second")
      .cell(std::uint64_t{42});
  report.metric("headline", 0.7305);
  report.metric("count", std::uint64_t{42});
  report.note("a note");
  return report;
}

TEST(Report, JsonIsSchemaStableAndDeterministic) {
  const auto a = sample_report().to_json();
  const auto b = sample_report().to_json();
  EXPECT_EQ(a.dump(2), b.dump(2));
  EXPECT_DOUBLE_EQ(a.at("schema").as_double(), 1.0);
  EXPECT_EQ(a.at("report").as_string(), "sample");
  EXPECT_EQ(a.at("title").as_string(), "Sample report");
  EXPECT_DOUBLE_EQ(a.at("metrics").at("headline").as_double(), 0.7305);
  std::string error;
  const auto parsed = Json::parse(a.dump(2), &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(parsed, a);
}

TEST(Report, MetricValueLookup) {
  const auto report = sample_report();
  EXPECT_DOUBLE_EQ(report.metric_value("headline"), 0.7305);
  EXPECT_DOUBLE_EQ(report.metric_value("count"), 42.0);
  EXPECT_DOUBLE_EQ(report.metric_value("absent", -1.0), -1.0);
}

TEST(Report, EmitWritesJsonAndCsvFiles) {
  const std::string dir = ::testing::TempDir();
  ReportOptions options;
  options.json_out = dir + "/obs_report_test/out.json";
  options.csv_out = dir + "/obs_report_test/out.csv";
  std::ostringstream console;
  ASSERT_TRUE(sample_report().emit(console, options));
  EXPECT_NE(console.str().find("Sample report"), std::string::npos);

  std::ifstream json_file(options.json_out);
  ASSERT_TRUE(json_file.good());
  std::stringstream json_text;
  json_text << json_file.rdbuf();
  std::string error;
  const auto parsed = Json::parse(json_text.str(), &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(parsed.at("report").as_string(), "sample");

  std::ifstream csv_file(options.csv_out);
  ASSERT_TRUE(csv_file.good());
  std::string first_line;
  std::getline(csv_file, first_line);
  EXPECT_FALSE(first_line.empty());
}

TEST(ReportOptions, ExtractFromArgvStripsReportFlags) {
  std::vector<std::string> storage = {"prog", "--json-out=a.json",
                                      "--benchmark_filter=x", "--csv-out=b.csv"};
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  int argc = static_cast<int>(argv.size());
  const auto options = ReportOptions::extract_from_argv(argc, argv.data());
  EXPECT_EQ(options.json_out, "a.json");
  EXPECT_EQ(options.csv_out, "b.csv");
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[0], "prog");
  EXPECT_STREQ(argv[1], "--benchmark_filter=x");
}

}  // namespace
}  // namespace bacp::obs
