#include "harness/experiments.hpp"

#include <gtest/gtest.h>

#include "trace/spec2000.hpp"

namespace bacp::harness {
namespace {

TEST(Table3Sets, ExactlyEightSets) { EXPECT_EQ(table3_sets().size(), 8u); }

TEST(Table3Sets, EverySetHasEightBenchmarksAndWays) {
  for (const auto& set : table3_sets()) {
    EXPECT_EQ(set.benchmarks.size(), 8u) << set.label;
    EXPECT_EQ(set.paper_ways.size(), 8u) << set.label;
  }
}

TEST(Table3Sets, BenchmarksResolveInTheSuite) {
  for (const auto& set : table3_sets()) {
    const auto mix = set.mix();
    EXPECT_EQ(mix.num_cores(), 8u);
    for (const auto index : mix.workload_indices) {
      EXPECT_LT(index, trace::spec2000_suite().size());
    }
  }
}

TEST(Table3Sets, MatchesPaperListing) {
  const auto& sets = table3_sets();
  EXPECT_EQ(sets[0].label, "Set1");
  EXPECT_EQ(sets[0].benchmarks[0], "apsi");
  EXPECT_EQ(sets[0].benchmarks[6], "facerec");
  EXPECT_EQ(sets[0].paper_ways[6], 56u);
  EXPECT_EQ(sets[1].benchmarks[6], "bzip2");
  EXPECT_EQ(sets[1].paper_ways[6], 48u);
  EXPECT_EQ(sets[6].benchmarks[7], "mcf");
  EXPECT_EQ(sets[6].paper_ways[7], 24u);
  EXPECT_EQ(sets[7].benchmarks[1], "eon");
  EXPECT_EQ(sets[7].paper_ways[1], 3u);
}

TEST(Table3Sets, MixLabelsAreReadable) {
  const auto label = trace::mix_label(table3_sets()[0].mix());
  EXPECT_NE(label.find("apsi"), std::string::npos);
  EXPECT_NE(label.find("facerec"), std::string::npos);
}

TEST(DetailedRunConfig, FluentSettersChain) {
  const auto config = DetailedRunConfig{}
                          .with_warmup_instructions(123)
                          .with_measure_instructions(456)
                          .with_epoch_cycles(789)
                          .with_seed(7)
                          .with_num_threads(3);
  EXPECT_EQ(config.warmup_instructions, 123u);
  EXPECT_EQ(config.measure_instructions, 456u);
  EXPECT_EQ(config.epoch_cycles, 789u);
  EXPECT_EQ(config.seed, 7u);
  EXPECT_EQ(config.num_threads, 3u);
}

TEST(DetailedRunConfig, FromArgsPrefersFlags) {
  common::ArgParser parser(DetailedRunConfig::cli_flags());
  const char* argv[] = {"prog", "--warmup=111", "--instr=222", "--epoch=333",
                        "--seed=444", "--threads=2"};
  ASSERT_TRUE(parser.parse(6, argv));
  const auto config = DetailedRunConfig::from_args(parser);
  EXPECT_EQ(config.warmup_instructions, 111u);
  EXPECT_EQ(config.measure_instructions, 222u);
  EXPECT_EQ(config.epoch_cycles, 333u);
  EXPECT_EQ(config.seed, 444u);
  EXPECT_EQ(config.num_threads, 2u);
}

TEST(SetComparison, RatiosComputeAgainstNoPartition) {
  SetComparison comparison;
  comparison.none.set_l2_misses(1000).set_mean_cpi(2.0);
  comparison.equal.set_l2_misses(400).set_mean_cpi(1.5);
  comparison.bank_aware.set_l2_misses(300).set_mean_cpi(1.2);
  EXPECT_DOUBLE_EQ(comparison.equal_relative_misses(), 0.4);
  EXPECT_DOUBLE_EQ(comparison.bank_relative_misses(), 0.3);
  EXPECT_DOUBLE_EQ(comparison.equal_relative_cpi(), 0.75);
  EXPECT_DOUBLE_EQ(comparison.bank_relative_cpi(), 0.6);
}

TEST(SetComparison, EndToEndSmokeRun) {
  // A miniature full-pipeline run: all three policies on Set2 at toy scale.
  DetailedRunConfig config;
  config.warmup_instructions = 400'000;
  config.measure_instructions = 600'000;
  config.epoch_cycles = 600'000;
  const auto comparison =
      run_set_comparison("smoke", table3_sets()[1].mix(), config);
  EXPECT_GT(comparison.none.l2_misses(), 0u);
  EXPECT_GT(comparison.equal.l2_misses(), 0u);
  EXPECT_GT(comparison.bank_aware.l2_misses(), 0u);
  EXPECT_GT(comparison.equal_relative_misses(), 0.1);
  EXPECT_LT(comparison.equal_relative_misses(), 3.0);
  EXPECT_GT(comparison.none.mean_cpi(), 0.0);
}

void expect_same_results(const sim::SystemResults& a, const sim::SystemResults& b) {
  EXPECT_EQ(a.l2_accesses(), b.l2_accesses());
  EXPECT_EQ(a.l2_misses(), b.l2_misses());
  EXPECT_EQ(a.promotions(), b.promotions());
  EXPECT_EQ(a.demotions(), b.demotions());
  EXPECT_EQ(a.dram_reads(), b.dram_reads());
  EXPECT_EQ(a.dram_writebacks(), b.dram_writebacks());
  EXPECT_EQ(a.epochs(), b.epochs());
  EXPECT_EQ(a.mean_cpi(), b.mean_cpi());  // bitwise: same runs, same doubles
}

TEST(SetComparison, ResultsIndependentOfWorkerCount) {
  // Every policy run is an isolated System seeded identically, so the
  // sweep must produce bit-identical results for any thread count.
  DetailedRunConfig config;
  config.warmup_instructions = 200'000;
  config.measure_instructions = 400'000;
  config.epoch_cycles = 400'000;
  const auto mix = table3_sets()[1].mix();
  const auto serial = run_set_comparison("smoke", mix, config.with_num_threads(1));
  const auto parallel = run_set_comparison("smoke", mix, config.with_num_threads(3));
  expect_same_results(serial.none, parallel.none);
  expect_same_results(serial.equal, parallel.equal);
  expect_same_results(serial.bank_aware, parallel.bank_aware);
}

TEST(DetailedSweep, FlattenedSweepMatchesPerSetRuns) {
  DetailedRunConfig config;
  config.warmup_instructions = 200'000;
  config.measure_instructions = 400'000;
  config.epoch_cycles = 400'000;
  config.num_threads = 2;
  const auto& sets = table3_sets();
  const auto sweep = run_detailed_sweep(std::span(sets.data(), 2), config);
  ASSERT_EQ(sweep.size(), 2u);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_EQ(sweep[i].label, sets[i].label);
    const auto solo = run_set_comparison(sets[i].label, sets[i].mix(), config);
    expect_same_results(solo.none, sweep[i].none);
    expect_same_results(solo.equal, sweep[i].equal);
    expect_same_results(solo.bank_aware, sweep[i].bank_aware);
  }
}

}  // namespace
}  // namespace bacp::harness
