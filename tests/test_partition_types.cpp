#include "partition/partition_types.hpp"

#include <gtest/gtest.h>

#include "common/types.hpp"
#include "partition/static_policies.hpp"

namespace bacp::partition {
namespace {

TEST(Allocation, TotalSumsWays) {
  Allocation allocation;
  allocation.ways_per_core = {8, 16, 24, 80};
  EXPECT_EQ(allocation.total(), 128u);
  EXPECT_EQ(Allocation{}.total(), 0u);
}

TEST(BankAssignment, WaysOfCoreCountsAcrossBanks) {
  CmpGeometry geometry;
  const auto plan = equal_partition(geometry);
  for (CoreId core = 0; core < geometry.num_cores; ++core) {
    EXPECT_EQ(plan.assignment.ways_of_core(core), 16u);
  }
}

TEST(BankAssignment, SharedWaysCountForEveryHolder) {
  BankAssignment assignment;
  assignment.way_masks = {{core_bit(0) | core_bit(1), core_bit(0)}};
  EXPECT_EQ(assignment.ways_of_core(0), 2u);
  EXPECT_EQ(assignment.ways_of_core(1), 1u);
  EXPECT_EQ(assignment.ways_of_core(2), 0u);
}

TEST(ProjectedTotalMisses, SumsPerCoreProjections) {
  std::vector<msa::MissRatioCurve> curves;
  curves.emplace_back(std::vector<double>{10.0, 5.0}, 5.0);  // total 20
  curves.emplace_back(std::vector<double>{4.0, 4.0}, 2.0);   // total 10
  const std::vector<WayCount> ways{1, 2};
  // core 0 at 1 way: 20 - 10 = 10; core 1 at 2 ways: 10 - 8 = 2.
  EXPECT_DOUBLE_EQ(projected_total_misses(curves, ways), 12.0);
}

TEST(CmpGeometry, CustomShapesValidate) {
  CmpGeometry geometry;
  geometry.num_cores = 4;
  geometry.num_banks = 8;
  geometry.ways_per_bank = 4;
  geometry.validate();
  EXPECT_EQ(geometry.total_ways(), 32u);
  EXPECT_EQ(geometry.max_assignable_ways(), 18u);
  EXPECT_EQ(geometry.num_center_banks(), 4u);
}

TEST(Types, Pow2AndLog2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2048));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2048), 11u);
  EXPECT_EQ(log2_floor(72), 6u);  // the Table II pointer width
  EXPECT_EQ(ceil_div(7, 3), 3u);
  EXPECT_EQ(ceil_div(6, 3), 2u);
}

TEST(Types, CoreBitMasks) {
  EXPECT_EQ(core_bit(0), 1u);
  EXPECT_EQ(core_bit(5), 32u);
  EXPECT_EQ(core_bit(3) | core_bit(4), 24u);
}

}  // namespace
}  // namespace bacp::partition
