#include "core/core_timer.hpp"

#include <gtest/gtest.h>

namespace bacp::core {
namespace {

CoreTimerConfig deterministic(double base_cpi = 1.0, double ipa = 50.0,
                              std::uint32_t mlp = 4) {
  CoreTimerConfig config;
  config.base_cpi = base_cpi;
  config.instructions_per_l2_access = ipa;
  config.mlp_window = mlp;
  config.rob_entries = 10000;  // effectively unbounded unless a test sets it
  config.gap_jitter = 0.0;
  return config;
}

TEST(CoreTimer, BaseCpiWithInstantMemory) {
  CoreTimer timer(deterministic(0.8, 50.0));
  for (int i = 0; i < 1000; ++i) {
    const Cycle issue = timer.advance_to_issue();
    timer.record_completion(issue);  // zero-latency memory
  }
  timer.drain();
  EXPECT_NEAR(timer.cpi(), 0.8, 0.05);
}

TEST(CoreTimer, FullyOverlappedMissesStayGapLimited) {
  // Latency 200, gap 50 cycles, window 8 -> the window hides everything.
  CoreTimer timer(deterministic(1.0, 50.0, 8));
  for (int i = 0; i < 2000; ++i) {
    const Cycle issue = timer.advance_to_issue();
    timer.record_completion(issue + 200);
  }
  timer.drain();
  EXPECT_NEAR(timer.cpi(), 1.0, 0.1);
}

TEST(CoreTimer, SerializedMissesAreLatencyBound) {
  // Window 1: every access waits for the previous one.
  CoreTimer timer(deterministic(1.0, 50.0, 1));
  for (int i = 0; i < 2000; ++i) {
    const Cycle issue = timer.advance_to_issue();
    timer.record_completion(issue + 200);
  }
  timer.drain();
  // Each access waits for the previous completion; the 50-cycle gap fully
  // overlaps the in-flight miss, so the steady state is one access per 200
  // cycles: CPI = 200 / 50 = 4.
  EXPECT_NEAR(timer.cpi(), 4.0, 0.3);
}

TEST(CoreTimer, MlpWindowInterpolatesBetweenExtremes) {
  auto run = [](std::uint32_t mlp) {
    CoreTimer timer(deterministic(1.0, 20.0, mlp));
    for (int i = 0; i < 3000; ++i) {
      const Cycle issue = timer.advance_to_issue();
      timer.record_completion(issue + 300);
    }
    timer.drain();
    return timer.cpi();
  };
  const double serialized = run(1);
  const double two = run(2);
  const double four = run(4);
  EXPECT_GT(serialized, two);
  EXPECT_GT(two, four);
}

TEST(CoreTimer, RobLimitsRunahead) {
  // ROB of 100 with 50 instructions/access allows only ~2 in flight even
  // though the MLP window says 8.
  CoreTimerConfig config = deterministic(1.0, 50.0, 8);
  config.rob_entries = 100;
  CoreTimer timer(config);
  for (int i = 0; i < 2000; ++i) {
    const Cycle issue = timer.advance_to_issue();
    timer.record_completion(issue + 400);
  }
  timer.drain();
  // ~400 cycles with ~2-3 overlapped -> 130-200 cycles per 50 instructions.
  EXPECT_GT(timer.cpi(), 2.2);
  EXPECT_LT(timer.cpi(), 4.5);
}

TEST(CoreTimer, PeekMatchesAdvance) {
  CoreTimer timer(deterministic());
  for (int i = 0; i < 100; ++i) {
    const Cycle peeked = timer.peek_issue();
    const Cycle actual = timer.advance_to_issue();
    EXPECT_EQ(peeked, actual);
    timer.record_completion(actual + 100);
  }
}

TEST(CoreTimer, InstructionsAccumulatePerAccess) {
  CoreTimer timer(deterministic(1.0, 25.0));
  for (int i = 0; i < 10; ++i) {
    timer.record_completion(timer.advance_to_issue());
  }
  EXPECT_DOUBLE_EQ(timer.instructions(), 250.0);
}

TEST(CoreTimer, MarkIsolatesTheMeasurementWindow) {
  CoreTimer timer(deterministic(1.0, 10.0, 1));
  // Warm phase with slow memory.
  for (int i = 0; i < 500; ++i) {
    timer.record_completion(timer.advance_to_issue() + 1000);
  }
  timer.mark();
  // Measured phase with instant memory: CPI since mark must reflect only
  // the fast phase.
  for (int i = 0; i < 500; ++i) {
    timer.record_completion(timer.advance_to_issue());
  }
  timer.drain();
  EXPECT_LT(timer.cpi_since_mark(), 3.0);
  EXPECT_GT(timer.cpi(), timer.cpi_since_mark());
}

TEST(CoreTimer, JitterVariesGapsButConservesInstructions) {
  CoreTimerConfig config = deterministic();
  config.gap_jitter = 0.5;
  config.seed = 99;
  CoreTimer timer(config);
  Cycle previous = 0;
  bool saw_variation = false;
  Cycle first_gap = 0;
  for (int i = 0; i < 50; ++i) {
    const Cycle issue = timer.advance_to_issue();
    const Cycle gap = issue - previous;
    if (i == 0) {
      first_gap = gap;
    } else if (gap != first_gap) {
      saw_variation = true;
    }
    previous = issue;
    timer.record_completion(issue);
  }
  EXPECT_TRUE(saw_variation);
  EXPECT_DOUBLE_EQ(timer.instructions(), 50 * 50.0);
}

TEST(CoreTimer, DrainWaitsForAllOutstanding) {
  CoreTimer timer(deterministic(1.0, 50.0, 8));
  Cycle latest = 0;
  for (int i = 0; i < 4; ++i) {
    const Cycle issue = timer.advance_to_issue();
    latest = issue + 5000;
    timer.record_completion(latest);
  }
  timer.drain();
  EXPECT_GE(timer.time(), latest);
}

}  // namespace
}  // namespace bacp::core
