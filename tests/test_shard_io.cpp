// Process-sharded Monte-Carlo: shard artifacts round-trip losslessly, a
// merged shard set reproduces the unsharded sweep bit-for-bit, and the
// merge refuses illegal sets. Plus the file-backed SnapshotCache bank the
// shard processes share: persisted snapshots warm later runs, corrupt bank
// entries are rejected and rewarmed, never trusted.

#include "harness/shard_io.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/monte_carlo.hpp"
#include "harness/snapshot_cache.hpp"
#include "obs/report.hpp"
#include "snapshot/snapshot.hpp"

namespace bacp::harness {
namespace {

MonteCarloConfig small_config() {
  MonteCarloConfig config;
  config.trials = 50;
  config.seed = 77;
  config.num_threads = 2;
  return config;
}

/// Bitwise double equality: the shard contract is bit-identity, not
/// within-epsilon agreement.
void expect_bits_equal(double a, double b, const char* what, std::size_t index) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << what << " at trial " << index;
}

TEST(ShardIo, ArtifactRoundTripsThroughText) {
  auto config = small_config();
  config.shards = 3;
  config.shard_id = 1;
  const auto summary = run_monte_carlo(config);
  const auto artifact = make_shard_artifact(config, summary);
  ASSERT_EQ(artifact.owned.size(), 17u);  // ceil((50 - 1) / 3)

  std::stringstream stream;
  write_shard_artifact(artifact, stream);
  const auto loaded = read_shard_artifact(stream);

  EXPECT_EQ(loaded.shards, artifact.shards);
  EXPECT_EQ(loaded.shard_id, artifact.shard_id);
  EXPECT_EQ(loaded.trials, artifact.trials);
  EXPECT_EQ(loaded.seed, artifact.seed);
  EXPECT_EQ(loaded.curve_depth, artifact.curve_depth);
  EXPECT_EQ(loaded.config_digest, artifact.config_digest);
  ASSERT_EQ(loaded.owned.size(), artifact.owned.size());
  for (std::size_t i = 0; i < artifact.owned.size(); ++i) {
    EXPECT_EQ(loaded.owned[i].trial, artifact.owned[i].trial);
    EXPECT_EQ(loaded.owned[i].result.mix.workload_indices,
              artifact.owned[i].result.mix.workload_indices);
    expect_bits_equal(loaded.owned[i].result.fixed_share_misses,
                      artifact.owned[i].result.fixed_share_misses, "fixed", i);
    expect_bits_equal(loaded.owned[i].result.unrestricted_misses,
                      artifact.owned[i].result.unrestricted_misses, "unrestricted", i);
    expect_bits_equal(loaded.owned[i].result.bank_aware_misses,
                      artifact.owned[i].result.bank_aware_misses, "bank", i);
  }
}

TEST(ShardIo, ShardRunsEvaluateOnlyOwnedTrials) {
  auto config = small_config();
  config.shards = 4;
  config.shard_id = 2;
  const auto summary = run_monte_carlo(config);
  ASSERT_EQ(summary.trials.size(), config.trials);
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    if (trial % 4 == 2) {
      EXPECT_GT(summary.trials[trial].fixed_share_misses, 0.0) << "trial " << trial;
    } else {
      EXPECT_EQ(summary.trials[trial].fixed_share_misses, 0.0) << "trial " << trial;
    }
  }
  // A shard never finalizes: the means belong to the merged sweep.
  EXPECT_EQ(summary.mean_unrestricted_ratio, 0.0);
}

TEST(ShardIo, MergedShardsReproduceUnshardedSweepBitForBit) {
  const auto unsharded_config = small_config();
  const auto unsharded = run_monte_carlo(unsharded_config);

  std::vector<ShardArtifact> artifacts;
  for (std::uint32_t k = 0; k < 4; ++k) {
    auto config = small_config();
    config.shards = 4;
    config.shard_id = k;
    artifacts.push_back(make_shard_artifact(config, run_monte_carlo(config)));
  }
  const auto merged = merge_shard_artifacts(artifacts);
  ASSERT_TRUE(merged.audit.ok()) << merged.audit.to_string();

  ASSERT_EQ(merged.summary.trials.size(), unsharded.trials.size());
  for (std::size_t i = 0; i < unsharded.trials.size(); ++i) {
    EXPECT_EQ(merged.summary.trials[i].mix.workload_indices,
              unsharded.trials[i].mix.workload_indices);
    expect_bits_equal(merged.summary.trials[i].fixed_share_misses,
                      unsharded.trials[i].fixed_share_misses, "fixed", i);
    expect_bits_equal(merged.summary.trials[i].unrestricted_misses,
                      unsharded.trials[i].unrestricted_misses, "unrestricted", i);
    expect_bits_equal(merged.summary.trials[i].bank_aware_misses,
                      unsharded.trials[i].bank_aware_misses, "bank", i);
  }
  expect_bits_equal(merged.summary.mean_unrestricted_ratio,
                    unsharded.mean_unrestricted_ratio, "mean_unrestricted", 0);
  expect_bits_equal(merged.summary.mean_bank_aware_ratio,
                    unsharded.mean_bank_aware_ratio, "mean_bank_aware", 0);

  // And the emitted artifact is byte-identical, meta included.
  const auto unsharded_report = monte_carlo_report(unsharded_config, unsharded);
  const auto merged_report = monte_carlo_report(merged.config, merged.summary);
  EXPECT_EQ(unsharded_report.to_json(), merged_report.to_json());
}

TEST(ShardIo, MergeRefusesIncompleteSet) {
  std::vector<ShardArtifact> artifacts;
  for (std::uint32_t k = 0; k < 3; ++k) {
    auto config = small_config();
    config.shards = 4;  // four-way split, but only three slices show up
    config.shard_id = k;
    artifacts.push_back(make_shard_artifact(config, run_monte_carlo(config)));
  }
  const auto merged = merge_shard_artifacts(artifacts);
  EXPECT_FALSE(merged.audit.ok());
  EXPECT_TRUE(merged.summary.trials.empty());
}

TEST(ShardIo, MergeRefusesMismatchedSweeps) {
  std::vector<ShardArtifact> artifacts;
  for (std::uint32_t k = 0; k < 2; ++k) {
    auto config = small_config();
    config.shards = 2;
    config.shard_id = k;
    if (k == 1) config.seed = 78;  // different sweep, same shape
    artifacts.push_back(make_shard_artifact(config, run_monte_carlo(config)));
  }
  const auto merged = merge_shard_artifacts(artifacts);
  EXPECT_FALSE(merged.audit.ok());
}

TEST(ShardIo, DigestSeparatesSweepParameters) {
  const auto base = small_config();
  EXPECT_EQ(monte_carlo_digest(base), monte_carlo_digest(base));
  EXPECT_NE(monte_carlo_digest(base),
            monte_carlo_digest(MonteCarloConfig(base).with_seed(base.seed + 1)));
  EXPECT_NE(monte_carlo_digest(base),
            monte_carlo_digest(MonteCarloConfig(base).with_trials(base.trials + 1)));
  EXPECT_NE(monte_carlo_digest(base),
            monte_carlo_digest(MonteCarloConfig(base).with_curve_depth(64)));
  // Sharding is not part of the digest: all slices of one sweep agree.
  EXPECT_EQ(monte_carlo_digest(base),
            monte_carlo_digest(MonteCarloConfig(base).with_shards(8).with_shard_id(3)));
}

TEST(ShardIo, NonDivisibleTrialCountMergesBitForBit) {
  // 53 trials over 5 shards: shards own 11, 11, 11, 10, 10 trials. The
  // per-trial RNG is keyed by the global trial index, never by the shard's
  // local position, so the ragged split must still reassemble the exact
  // unsharded stream.
  auto base = small_config();
  base.trials = 53;
  const auto unsharded = run_monte_carlo(base);

  std::vector<ShardArtifact> artifacts;
  for (std::uint32_t k = 0; k < 5; ++k) {
    auto config = base;
    config.shards = 5;
    config.shard_id = k;
    artifacts.push_back(make_shard_artifact(config, run_monte_carlo(config)));
  }
  EXPECT_EQ(artifacts[0].owned.size(), 11u);
  EXPECT_EQ(artifacts[4].owned.size(), 10u);

  const auto merged = merge_shard_artifacts(artifacts);
  ASSERT_TRUE(merged.audit.ok()) << merged.audit.to_string();
  ASSERT_EQ(merged.summary.trials.size(), unsharded.trials.size());
  for (std::size_t i = 0; i < unsharded.trials.size(); ++i) {
    EXPECT_EQ(merged.summary.trials[i].mix.workload_indices,
              unsharded.trials[i].mix.workload_indices) << "trial " << i;
    expect_bits_equal(merged.summary.trials[i].bank_aware_misses,
                      unsharded.trials[i].bank_aware_misses, "bank", i);
  }
  const auto unsharded_report = monte_carlo_report(base, unsharded);
  const auto merged_report = monte_carlo_report(merged.config, merged.summary);
  EXPECT_EQ(unsharded_report.to_json(), merged_report.to_json());
}

TEST(ShardIo, FewerTrialsThanShardsMerges) {
  // 3 trials over 5 shards: two shards own nothing and must still produce
  // legal (empty) artifacts the merge accepts.
  auto base = small_config();
  base.trials = 3;
  const auto unsharded = run_monte_carlo(base);

  std::vector<ShardArtifact> artifacts;
  for (std::uint32_t k = 0; k < 5; ++k) {
    auto config = base;
    config.shards = 5;
    config.shard_id = k;
    artifacts.push_back(make_shard_artifact(config, run_monte_carlo(config)));
  }
  EXPECT_TRUE(artifacts[3].owned.empty());
  EXPECT_TRUE(artifacts[4].owned.empty());

  const auto merged = merge_shard_artifacts(artifacts);
  ASSERT_TRUE(merged.audit.ok()) << merged.audit.to_string();
  ASSERT_EQ(merged.summary.trials.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    expect_bits_equal(merged.summary.trials[i].bank_aware_misses,
                      unsharded.trials[i].bank_aware_misses, "bank", i);
  }
}

TEST(ShardIo, SaveLoadRoundTripsThroughDisk) {
  auto config = small_config();
  config.shards = 2;
  config.shard_id = 0;
  const auto artifact = make_shard_artifact(config, run_monte_carlo(config));
  const std::string path = testing::TempDir() + "/bacp-shard-roundtrip.shard";
  save_shard_artifact(artifact, path);
  const auto loaded = load_shard_artifact(path);
  EXPECT_EQ(loaded.owned.size(), artifact.owned.size());
  EXPECT_EQ(loaded.config_digest, artifact.config_digest);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Sampled-interval sweeps through the shard pipeline
// ---------------------------------------------------------------------------

MonteCarloConfig sampled_config() {
  MonteCarloConfig config;
  config.trials = 4;
  config.seed = 91;
  config.num_threads = 2;
  config.sampled_k = 2;
  config.sampled_intervals = 8;
  config.sampled_interval_instructions = 2'000;
  config.sampled_warmup = 4'000;
  return config;
}

TEST(ShardIo, DigestSeparatesSampledParameters) {
  const auto base = sampled_config();
  EXPECT_EQ(monte_carlo_digest(base), monte_carlo_digest(base));
  EXPECT_NE(monte_carlo_digest(base),
            monte_carlo_digest(MonteCarloConfig(base).with_sampled_k(0)));
  EXPECT_NE(monte_carlo_digest(base),
            monte_carlo_digest(MonteCarloConfig(base).with_sampled_intervals(16)));
  EXPECT_NE(monte_carlo_digest(base),
            monte_carlo_digest(
                MonteCarloConfig(base).with_sampled_interval_instructions(4'000)));
  EXPECT_NE(monte_carlo_digest(base),
            monte_carlo_digest(MonteCarloConfig(base).with_sampled_warmup(8'000)));
}

TEST(ShardIo, SampledArtifactRoundTripsThroughText) {
  auto config = sampled_config();
  config.shards = 2;
  config.shard_id = 1;
  const auto artifact = make_shard_artifact(config, run_monte_carlo(config));
  ASSERT_EQ(artifact.owned.size(), 2u);
  EXPECT_EQ(artifact.sampled_k, 2u);

  std::stringstream stream;
  write_shard_artifact(artifact, stream);
  const auto loaded = read_shard_artifact(stream);

  EXPECT_EQ(loaded.sampled_k, artifact.sampled_k);
  EXPECT_EQ(loaded.sampled_intervals, artifact.sampled_intervals);
  EXPECT_EQ(loaded.sampled_interval_instructions,
            artifact.sampled_interval_instructions);
  EXPECT_EQ(loaded.sampled_warmup, artifact.sampled_warmup);
  ASSERT_EQ(loaded.owned.size(), artifact.owned.size());
  for (std::size_t i = 0; i < artifact.owned.size(); ++i) {
    const auto& got = loaded.owned[i].result.sampled;
    const auto& want = artifact.owned[i].result.sampled;
    EXPECT_TRUE(got.evaluated);
    expect_bits_equal(got.miss_ratio, want.miss_ratio, "sampled miss ratio", i);
    expect_bits_equal(got.miss_ratio_ci_half, want.miss_ratio_ci_half,
                      "sampled miss ratio ci", i);
    expect_bits_equal(got.cpi, want.cpi, "sampled cpi", i);
    expect_bits_equal(got.cpi_ci_half, want.cpi_ci_half, "sampled cpi ci", i);
  }
}

TEST(ShardIo, SampledMergedShardsReproduceUnshardedSweepBitForBit) {
  const auto base = sampled_config();
  const auto unsharded = run_monte_carlo(base);
  ASSERT_TRUE(unsharded.trials.front().sampled.evaluated);
  EXPECT_GT(unsharded.mean_sampled_miss_ratio, 0.0);
  EXPECT_GT(unsharded.mean_sampled_cpi, 0.0);

  std::vector<ShardArtifact> artifacts;
  for (std::uint32_t k = 0; k < 2; ++k) {
    auto config = base;
    config.shards = 2;
    config.shard_id = k;
    artifacts.push_back(make_shard_artifact(config, run_monte_carlo(config)));
  }
  const auto merged = merge_shard_artifacts(artifacts);
  ASSERT_TRUE(merged.audit.ok()) << merged.audit.to_string();

  ASSERT_EQ(merged.summary.trials.size(), unsharded.trials.size());
  for (std::size_t i = 0; i < unsharded.trials.size(); ++i) {
    expect_bits_equal(merged.summary.trials[i].sampled.miss_ratio,
                      unsharded.trials[i].sampled.miss_ratio, "sampled miss", i);
    expect_bits_equal(merged.summary.trials[i].sampled.cpi,
                      unsharded.trials[i].sampled.cpi, "sampled cpi", i);
  }
  expect_bits_equal(merged.summary.mean_sampled_miss_ratio,
                    unsharded.mean_sampled_miss_ratio, "mean sampled miss", 0);
  expect_bits_equal(merged.summary.mean_sampled_cpi, unsharded.mean_sampled_cpi,
                    "mean sampled cpi", 0);

  const auto unsharded_report = monte_carlo_report(base, unsharded);
  const auto merged_report = monte_carlo_report(merged.config, merged.summary);
  EXPECT_EQ(unsharded_report.to_json(), merged_report.to_json());
}

TEST(ShardIo, MergeRefusesMixedSampledAndAnalyticShards) {
  auto sampled = sampled_config();
  sampled.shards = 2;
  sampled.shard_id = 0;
  auto analytic = sampled_config();
  analytic.sampled_k = 0;
  analytic.shards = 2;
  analytic.shard_id = 1;
  std::vector<ShardArtifact> artifacts;
  artifacts.push_back(make_shard_artifact(sampled, run_monte_carlo(sampled)));
  artifacts.push_back(make_shard_artifact(analytic, run_monte_carlo(analytic)));
  const auto merged = merge_shard_artifacts(artifacts);
  EXPECT_FALSE(merged.audit.ok());
  EXPECT_TRUE(merged.summary.trials.empty());
}

// ---------------------------------------------------------------------------
// File-backed SnapshotCache bank
// ---------------------------------------------------------------------------

snapshot::SystemSnapshot tiny_snapshot() {
  // A minimal structurally-valid snapshot: header + empty section table.
  snapshot::SnapshotBuilder builder(/*config_digest=*/0x5EED);
  return builder.finish();
}

TEST(SnapshotFileBank, PersistsAndReloadsAcrossCacheInstances) {
  const std::string dir = testing::TempDir() + "/bacp-snapbank-reload";
  std::filesystem::create_directories(dir);
  int warmed = 0;
  const auto warm = [&] {
    ++warmed;
    return tiny_snapshot();
  };

  {
    SnapshotCache cache;
    cache.set_file_bank(dir);
    cache.get_or_warm(0xABCD, warm);
    EXPECT_EQ(warmed, 1);
    EXPECT_EQ(cache.file_hits(), 0u);
  }
  {
    // A fresh process (new cache instance) finds the banked snapshot and
    // never runs the warm-up.
    SnapshotCache cache;
    cache.set_file_bank(dir);
    const auto snapshot = cache.get_or_warm(0xABCD, warm);
    EXPECT_EQ(warmed, 1);
    EXPECT_EQ(cache.file_hits(), 1u);
    // The reload arrives through the mmap zero-copy path (backing set, owned
    // bytes empty); its mapped contents must match what was banked.
    EXPECT_NE(snapshot->backing, nullptr);
    const auto reloaded = snapshot->data();
    EXPECT_EQ(std::vector<std::uint8_t>(reloaded.begin(), reloaded.end()),
              tiny_snapshot().bytes);
  }
  std::filesystem::remove_all(dir);
}

TEST(SnapshotFileBank, RejectsCorruptBankEntryAndRewarms) {
  const std::string dir = testing::TempDir() + "/bacp-snapbank-corrupt";
  std::filesystem::create_directories(dir);
  {
    SnapshotCache cache;
    cache.set_file_bank(dir);
    cache.get_or_warm(0x1234, [] { return tiny_snapshot(); });
  }
  // Flip one byte of the banked file: the audit must reject it and the next
  // cache must fall back to warming.
  std::string path;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    path = entry.path().string();
  }
  ASSERT_FALSE(path.empty());
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(0);
    file.put('X');  // clobbers the magic
  }
  int warmed = 0;
  SnapshotCache cache;
  cache.set_file_bank(dir);
  cache.get_or_warm(0x1234, [&] {
    ++warmed;
    return tiny_snapshot();
  });
  EXPECT_EQ(warmed, 1);
  EXPECT_EQ(cache.file_hits(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(SnapshotFileBank, UnwritableBankDegradesToInMemory) {
  SnapshotCache cache;
  cache.set_file_bank("/nonexistent-bacp-bank-dir/nested");
  int warmed = 0;
  const auto snapshot = cache.get_or_warm(0x77, [&] {
    ++warmed;
    return tiny_snapshot();
  });
  EXPECT_EQ(warmed, 1);
  EXPECT_FALSE(snapshot->data().empty());
  // Second get on the same key still hits in memory.
  cache.get_or_warm(0x77, [&] {
    ++warmed;
    return tiny_snapshot();
  });
  EXPECT_EQ(warmed, 1);
}

}  // namespace
}  // namespace bacp::harness
