#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace bacp::common {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123, 0);
  Rng b(123, 0);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsProduceDifferentStreams) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, DifferentStreamIdsProduceDifferentStreams) {
  Rng a(7, 0), b(7, 1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(42);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowIsApproximatelyUniform) {
  Rng rng(9);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::array<int, kBound> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBound)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / static_cast<int>(kBound), 600);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NextBoolMatchesProbability) {
  Rng rng(13);
  int trues = 0;
  for (int i = 0; i < 20000; ++i) trues += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(trues / 20000.0, 0.3, 0.02);
}

TEST(DiscreteSampler, SingleElement) {
  const double w[] = {3.0};
  DiscreteSampler sampler{std::span<const double>(w)};
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sampler.sample(rng), 0u);
}

TEST(DiscreteSampler, ZeroWeightNeverSampled) {
  const double w[] = {1.0, 0.0, 1.0};
  DiscreteSampler sampler{std::span<const double>(w)};
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) EXPECT_NE(sampler.sample(rng), 1u);
}

TEST(DiscreteSampler, NormalizedProbabilities) {
  const double w[] = {2.0, 6.0};
  DiscreteSampler sampler{std::span<const double>(w)};
  EXPECT_DOUBLE_EQ(sampler.probability_of(0), 0.25);
  EXPECT_DOUBLE_EQ(sampler.probability_of(1), 0.75);
}

/// Property sweep: for several distribution shapes, empirical frequencies
/// converge to the normalized weights.
class DiscreteSamplerConvergence
    : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(DiscreteSamplerConvergence, EmpiricalMatchesWeights) {
  const auto& weights = GetParam();
  DiscreteSampler sampler{std::span<const double>(weights)};
  Rng rng(77);
  constexpr int kDraws = 200000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.sample(rng)];
  double total = 0.0;
  for (double w : weights) total += w;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(kDraws), weights[i] / total, 0.01)
        << "bin " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DiscreteSamplerConvergence,
    ::testing::Values(std::vector<double>{1.0, 1.0},
                      std::vector<double>{1.0, 2.0, 3.0, 4.0},
                      std::vector<double>{10.0, 0.0, 1.0, 0.0, 5.0},
                      std::vector<double>{0.5, 0.25, 0.125, 0.0625, 0.0625},
                      std::vector<double>(64, 1.0)));

TEST(DiscreteSampler, SizeReflectsInput) {
  const double w[] = {1.0, 2.0, 3.0};
  DiscreteSampler sampler{std::span<const double>(w)};
  EXPECT_EQ(sampler.size(), 3u);
  EXPECT_FALSE(sampler.empty());
  EXPECT_TRUE(DiscreteSampler{}.empty());
}

}  // namespace
}  // namespace bacp::common
