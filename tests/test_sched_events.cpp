#include "sched/events.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

// The churn event stream is an ingestion surface: every malformed line must
// fail with a positioned "line N: ..." error, never a silently dropped or
// repaired event. The generator side must be a pure function of its config
// and structurally admissible (never over-admits, never evicts a stranger).

namespace bacp::sched {
namespace {

TEST(SchedEvents, ParsesWellFormedStream) {
  const auto result = parse_events(
      "# fleet warm-up\n"
      "\n"
      "0 admit 1 gzip\n"
      "0 admit 2 mcf   # same-epoch ties keep file order\n"
      "10 evict 1\n"
      "10 admit 3 swim\n");
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_EQ(result.events.size(), 4u);
  EXPECT_EQ(result.events[0].epoch, 0u);
  EXPECT_EQ(result.events[0].kind, EventKind::Admit);
  EXPECT_EQ(result.events[0].tenant, 1u);
  EXPECT_EQ(result.events[0].workload, "gzip");
  EXPECT_EQ(result.events[2].kind, EventKind::Evict);
  EXPECT_EQ(result.events[2].tenant, 1u);
  EXPECT_EQ(result.events[2].workload, "");
  EXPECT_EQ(result.events[3].epoch, 10u);
}

TEST(SchedEvents, FormatRoundTrips) {
  const std::string text = "0 admit 7 gzip\n5 evict 7\n5 admit 8 art\n";
  const auto parsed = parse_events(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(format_events(parsed.events), text);
}

TEST(SchedEvents, RejectsMalformedEpoch) {
  const auto result = parse_events("10k admit 1 gzip\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("line 1"), std::string::npos) << result.error;
  EXPECT_NE(result.error.find("bad epoch '10k'"), std::string::npos) << result.error;
}

TEST(SchedEvents, RejectsMalformedTenantId) {
  const auto result = parse_events("0 admit 1 gzip\n3 evict -2\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("line 2"), std::string::npos) << result.error;
  EXPECT_NE(result.error.find("bad tenant id '-2'"), std::string::npos) << result.error;
}

TEST(SchedEvents, RejectsUnknownEventKind) {
  const auto result = parse_events("0 spawn 1 gzip\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("unknown event kind 'spawn'"), std::string::npos)
      << result.error;
}

TEST(SchedEvents, RejectsUnknownWorkload) {
  const auto result = parse_events("0 admit 1 notabenchmark\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("unknown workload 'notabenchmark'"), std::string::npos)
      << result.error;
}

TEST(SchedEvents, RejectsWrongArity) {
  const auto missing = parse_events("0 admit 1\n");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.error.find("line 1"), std::string::npos) << missing.error;

  const auto extra = parse_events("0 evict 1 gzip\n");
  ASSERT_FALSE(extra.ok());
  EXPECT_NE(extra.error.find("evict takes exactly"), std::string::npos) << extra.error;

  const auto bare = parse_events("7\n");
  ASSERT_FALSE(bare.ok());
  EXPECT_NE(bare.error.find("line 1"), std::string::npos) << bare.error;
}

TEST(SchedEvents, RejectsEpochRegression) {
  const auto result = parse_events("5 admit 1 gzip\n4 evict 1\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("line 2"), std::string::npos) << result.error;
  EXPECT_NE(result.error.find("regresses"), std::string::npos) << result.error;
}

TEST(SchedEvents, MissingFileReportsThroughErrorChannel) {
  const auto result = parse_events_file("/nonexistent/churn.events");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("cannot read"), std::string::npos) << result.error;
}

TEST(SchedEvents, GeneratorIsDeterministic) {
  ChurnConfig config;
  config.epochs = 400;
  config.seed = 7;
  const auto first = generate_churn(config);
  const auto second = generate_churn(config);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].epoch, second[i].epoch);
    EXPECT_EQ(first[i].kind, second[i].kind);
    EXPECT_EQ(first[i].tenant, second[i].tenant);
    EXPECT_EQ(first[i].workload, second[i].workload);
  }
  EXPECT_FALSE(first.empty());

  ChurnConfig reseeded = config;
  reseeded.seed = 8;
  EXPECT_NE(format_events(generate_churn(reseeded)), format_events(first));
}

TEST(SchedEvents, GeneratorRoundTripsThroughParser) {
  ChurnConfig config;
  config.epochs = 300;
  const auto events = generate_churn(config);
  const auto reparsed = parse_events(format_events(events));
  ASSERT_TRUE(reparsed.ok()) << reparsed.error;
  EXPECT_EQ(reparsed.events.size(), events.size());
}

TEST(SchedEvents, GeneratorNeverOverAdmitsOrEvictsStrangers) {
  ChurnConfig config;
  config.epochs = 1000;
  config.num_slots = 4;
  config.arrival_rate = 3.0;  // well above capacity: forces balking
  config.min_residency = 2;
  config.max_residency = 9;
  const auto events = generate_churn(config);

  std::vector<std::uint64_t> live;
  for (const Event& event : events) {
    if (event.kind == EventKind::Admit) {
      for (const std::uint64_t id : live) ASSERT_NE(id, event.tenant);
      live.push_back(event.tenant);
      ASSERT_LE(live.size(), config.num_slots) << "over-admitted at epoch " << event.epoch;
      EXPECT_FALSE(event.workload.empty());
    } else {
      const auto it = std::find(live.begin(), live.end(), event.tenant);
      ASSERT_NE(it, live.end()) << "evicted unknown tenant " << event.tenant;
      live.erase(it);
    }
  }
}

}  // namespace
}  // namespace bacp::sched
