#include "partition/bank_aware.hpp"

#include <gtest/gtest.h>

#include <bit>

#include "common/rng.hpp"
#include "trace/mix.hpp"
#include "trace/spec2000.hpp"

namespace bacp::partition {
namespace {

std::vector<msa::MissRatioCurve> curves_for_names(
    const std::vector<std::string>& names) {
  std::vector<msa::MissRatioCurve> curves;
  for (const auto& name : names) {
    const auto& model = trace::spec2000_by_name(name);
    curves.push_back(msa::MissRatioCurve::from_model(model, 128).scaled(model.l2_apki));
  }
  return curves;
}

std::vector<msa::MissRatioCurve> identical_flat_curves(std::size_t n) {
  std::vector<msa::MissRatioCurve> curves;
  for (std::size_t i = 0; i < n; ++i) {
    curves.emplace_back(std::vector<double>(128, 0.0), 1.0);
  }
  return curves;
}

TEST(BankAware, AllocationCoversTheCache) {
  CmpGeometry geometry;
  const auto result = bank_aware_partition(geometry, identical_flat_curves(8));
  EXPECT_EQ(result.allocation.total(), 128u);
}

TEST(BankAware, AssignmentValidatesAgainstAllocation) {
  CmpGeometry geometry;
  const auto curves = curves_for_names({"mcf", "eon", "art", "gcc", "bzip2",
                                        "sixtrack", "facerec", "gzip"});
  const auto result = bank_aware_partition(geometry, curves);
  result.assignment.validate_against(geometry, result.allocation);
}

TEST(BankAware, RuleOneCenterBanksAreWhollyOwned) {
  CmpGeometry geometry;
  const auto curves = curves_for_names({"mcf", "eon", "art", "gcc", "bzip2",
                                        "sixtrack", "facerec", "gzip"});
  const auto result = bank_aware_partition(geometry, curves);
  for (BankId bank = geometry.num_cores; bank < geometry.num_banks; ++bank) {
    const auto& masks = result.assignment.way_masks[bank];
    for (const CoreMask mask : masks) {
      EXPECT_EQ(mask, masks.front()) << "center bank " << bank << " split";
      EXPECT_EQ(std::popcount(mask), 1) << "center bank " << bank << " shared";
    }
  }
}

TEST(BankAware, RuleTwoCenterHoldersOwnTheirFullLocalBank) {
  CmpGeometry geometry;
  const auto curves = curves_for_names({"mcf", "eon", "art", "gcc", "bzip2",
                                        "sixtrack", "facerec", "gzip"});
  const auto result = bank_aware_partition(geometry, curves);
  for (CoreId core = 0; core < geometry.num_cores; ++core) {
    if (result.center_banks_of_core[core].empty()) continue;
    const auto& local = result.assignment.way_masks[geometry.local_bank(core)];
    for (const CoreMask mask : local) {
      EXPECT_EQ(mask, core_bit(core))
          << "core " << core << " holds center banks but shares its local bank";
    }
  }
}

TEST(BankAware, RuleThreePairsAreAdjacent) {
  CmpGeometry geometry;
  common::Rng rng(4242);
  const auto& suite = trace::spec2000_suite();
  for (int trial = 0; trial < 100; ++trial) {
    const auto mix = trace::random_mix(rng, suite.size(), geometry.num_cores);
    std::vector<msa::MissRatioCurve> curves;
    for (const auto index : mix.workload_indices) {
      const auto& model = suite[index];
      curves.push_back(msa::MissRatioCurve::from_model(model, 128).scaled(model.l2_apki));
    }
    const auto result = bank_aware_partition(geometry, curves);
    for (const auto& pair : result.pairs) {
      EXPECT_TRUE(geometry.adjacent(pair.first, pair.second))
          << "trial " << trial << ": pair " << pair.first << "," << pair.second;
      EXPECT_EQ(pair.first_ways + pair.second_ways, 2 * geometry.ways_per_bank);
      EXPECT_GE(pair.first_ways, 1u);
      EXPECT_GE(pair.second_ways, 1u);
    }
    result.assignment.validate_against(geometry, result.allocation);
  }
}

TEST(BankAware, CapacityClampAtNineSixteenths) {
  CmpGeometry geometry;
  // One insatiable core against seven tiny ones.
  auto curves = identical_flat_curves(8);
  curves[3] = msa::MissRatioCurve(std::vector<double>(128, 100.0), 0.0).scaled(50.0);
  const auto result = bank_aware_partition(geometry, curves);
  EXPECT_LE(result.allocation.ways_per_core[3], geometry.max_assignable_ways());
  EXPECT_EQ(result.allocation.ways_per_core[3], 72u);  // it should max out
}

TEST(BankAware, IdenticalCurvesYieldEvenBanks) {
  CmpGeometry geometry;
  // Identical appetites spanning two banks each -> everyone ends with 16.
  std::vector<msa::MissRatioCurve> curves;
  for (int i = 0; i < 8; ++i) {
    std::vector<double> hits(128, 0.0);
    for (int d = 0; d < 16; ++d) hits[static_cast<std::size_t>(d)] = 5.0;
    curves.emplace_back(hits, 1.0);
  }
  const auto result = bank_aware_partition(geometry, curves);
  for (CoreId core = 0; core < geometry.num_cores; ++core) {
    EXPECT_EQ(result.allocation.ways_per_core[core], 16u) << "core " << core;
  }
}

TEST(BankAware, HungryCoreWinsCenterBanks) {
  CmpGeometry geometry;
  const auto curves = curves_for_names({"eon", "eon", "eon", "facerec", "eon",
                                        "eon", "eon", "eon"});
  const auto result = bank_aware_partition(geometry, curves);
  EXPECT_GE(result.allocation.ways_per_core[3], 48u);
  EXPECT_FALSE(result.center_banks_of_core[3].empty());
}

TEST(BankAware, CenterBanksNearTheirOwner) {
  CmpGeometry geometry;
  const auto curves = curves_for_names({"facerec", "eon", "eon", "eon", "eon",
                                        "eon", "eon", "bzip2"});
  const auto result = bank_aware_partition(geometry, curves);
  // facerec (core 0) receives center banks from the left end of the center
  // row (C8 has column 0); bzip2 (core 7) from the right end.
  ASSERT_FALSE(result.center_banks_of_core[0].empty());
  EXPECT_EQ(result.center_banks_of_core[0].front(), 8u);
  if (!result.center_banks_of_core[7].empty()) {
    EXPECT_EQ(result.center_banks_of_core[7].front(), 15u);
  }
}

TEST(BankAware, LocalBankListedFirstInViews) {
  CmpGeometry geometry;
  const auto curves = curves_for_names({"mcf", "eon", "art", "gcc", "bzip2",
                                        "sixtrack", "facerec", "gzip"});
  const auto result = bank_aware_partition(geometry, curves);
  for (CoreId core = 0; core < geometry.num_cores; ++core) {
    const auto& banks = result.assignment.banks_of_core[core];
    ASSERT_FALSE(banks.empty());
    EXPECT_EQ(banks.front(), geometry.local_bank(core)) << "core " << core;
  }
}

TEST(BankAware, ProjectedMissesNeverWorseThanEvenShareByMuch) {
  CmpGeometry geometry;
  common::Rng rng(2718);
  const auto& suite = trace::spec2000_suite();
  int wins = 0;
  constexpr int kTrials = 60;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto mix = trace::random_mix(rng, suite.size(), geometry.num_cores);
    std::vector<msa::MissRatioCurve> curves;
    for (const auto index : mix.workload_indices) {
      const auto& model = suite[index];
      curves.push_back(msa::MissRatioCurve::from_model(model, 128).scaled(model.l2_apki));
    }
    const auto result = bank_aware_partition(geometry, curves);
    const double bank_aware =
        projected_total_misses(curves, result.allocation.ways_per_core);
    const std::vector<WayCount> even(geometry.num_cores, 16);
    const double fixed = projected_total_misses(curves, even);
    if (bank_aware <= fixed * 1.001) ++wins;
  }
  // The paper's Fig. 7: Bank-aware tracks Unrestricted except outliers; it
  // must beat or match the fixed share in the overwhelming majority.
  EXPECT_GE(wins, kTrials * 8 / 10);
}

TEST(BankAware, DeterministicAcrossCalls) {
  CmpGeometry geometry;
  const auto curves = curves_for_names({"mcf", "eon", "art", "gcc", "bzip2",
                                        "sixtrack", "facerec", "gzip"});
  const auto a = bank_aware_partition(geometry, curves);
  const auto b = bank_aware_partition(geometry, curves);
  EXPECT_EQ(a.allocation.ways_per_core, b.allocation.ways_per_core);
  EXPECT_EQ(a.assignment.way_masks, b.assignment.way_masks);
}

}  // namespace
}  // namespace bacp::partition
