#include "common/inline_vec.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace bacp::common {
namespace {

TEST(InlineVec, StartsEmpty) {
  InlineVec<int, 4> vec;
  EXPECT_TRUE(vec.empty());
  EXPECT_EQ(vec.size(), 0u);
  EXPECT_EQ(vec.capacity(), 4u);
  EXPECT_EQ(vec.begin(), vec.end());
}

TEST(InlineVec, PushBackAndIndexing) {
  InlineVec<int, 4> vec;
  vec.push_back(10);
  vec.push_back(20);
  vec.push_back(30);
  ASSERT_EQ(vec.size(), 3u);
  EXPECT_EQ(vec[0], 10);
  EXPECT_EQ(vec[1], 20);
  EXPECT_EQ(vec[2], 30);
  EXPECT_EQ(vec.front(), 10);
  EXPECT_EQ(vec.back(), 30);
}

TEST(InlineVec, RangeForIteratesInInsertionOrder) {
  InlineVec<int, 8> vec;
  for (int i = 0; i < 5; ++i) vec.push_back(i + 1);
  int sum = 0;
  for (const int value : vec) sum += value;
  EXPECT_EQ(sum, 15);
  EXPECT_EQ(std::accumulate(vec.begin(), vec.end(), 0), 15);
}

TEST(InlineVec, ClearAndPopBack) {
  InlineVec<int, 4> vec;
  vec.push_back(1);
  vec.push_back(2);
  vec.pop_back();
  ASSERT_EQ(vec.size(), 1u);
  EXPECT_EQ(vec.back(), 1);
  vec.clear();
  EXPECT_TRUE(vec.empty());
  vec.push_back(7);  // usable again after clear
  EXPECT_EQ(vec.front(), 7);
}

TEST(InlineVec, HoldsAggregates) {
  struct Pair {
    int a = 0;
    int b = 0;
  };
  InlineVec<Pair, 2> vec;
  vec.push_back(Pair{1, 2});
  vec.push_back(Pair{3, 4});
  EXPECT_EQ(vec[0].a, 1);
  EXPECT_EQ(vec[1].b, 4);
}

TEST(InlineVecDeathTest, OverflowAsserts) {
  InlineVec<int, 2> vec;
  vec.push_back(1);
  vec.push_back(2);
  EXPECT_DEATH(vec.push_back(3), "capacity");
}

}  // namespace
}  // namespace bacp::common
