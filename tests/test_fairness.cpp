#include "partition/fairness.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "partition/unrestricted.hpp"
#include "trace/mix.hpp"
#include "trace/spec2000.hpp"

namespace bacp::partition {
namespace {

CmpGeometry small_geometry() {
  CmpGeometry g;
  g.num_cores = 2;
  g.num_banks = 4;
  g.ways_per_bank = 4;  // 16 ways total
  return g;
}

TEST(Communist, CoversTheCache) {
  const auto geometry = small_geometry();
  std::vector<msa::MissRatioCurve> curves{
      msa::MissRatioCurve(std::vector<double>(16, 1.0), 4.0),
      msa::MissRatioCurve(std::vector<double>(16, 1.0), 4.0)};
  const auto allocation = communist_partition(geometry, curves);
  EXPECT_EQ(allocation.total(), 16u);
}

TEST(Communist, IdenticalCurvesSplitEvenly) {
  const auto geometry = small_geometry();
  std::vector<msa::MissRatioCurve> curves{
      msa::MissRatioCurve(std::vector<double>(16, 1.0), 4.0),
      msa::MissRatioCurve(std::vector<double>(16, 1.0), 4.0)};
  const auto allocation = communist_partition(geometry, curves);
  EXPECT_EQ(allocation.ways_per_core[0], 8u);
  EXPECT_EQ(allocation.ways_per_core[1], 8u);
}

TEST(Communist, FeedsTheWorstOffCore) {
  const auto geometry = small_geometry();
  // Core 0 halves its misses with each early way; core 1 is already fine.
  std::vector<double> steep(16, 0.0);
  steep[0] = 50;
  steep[1] = 25;
  steep[2] = 12;
  steep[3] = 8;
  std::vector<double> shallow(16, 0.0);
  shallow[0] = 99;
  std::vector<msa::MissRatioCurve> curves{msa::MissRatioCurve(steep, 100.0),
                                          msa::MissRatioCurve(shallow, 1.0)};
  const auto allocation = communist_partition(geometry, curves);
  EXPECT_GT(allocation.ways_per_core[0], allocation.ways_per_core[1]);
}

TEST(Communist, EqualizesEvenWhenCapacityIsWasted) {
  const auto geometry = small_geometry();
  // Core 0 is incompressible (pure streaming): communist still showers it
  // with ways because its miss ratio stays worst — the classic
  // throughput-vs-fairness pathology Hsu et al. describe.
  std::vector<msa::MissRatioCurve> curves{
      msa::MissRatioCurve(std::vector<double>(16, 0.0), 10.0),  // all misses
      msa::MissRatioCurve(std::vector<double>(16, 1.0), 0.5)};
  const auto allocation = communist_partition(geometry, curves);
  EXPECT_GT(allocation.ways_per_core[0], 10u);
}

TEST(Communist, NeverFairerToBeUtilitarian) {
  // Property: over random suite mixes, the communist allocation's miss-
  // ratio spread is never (materially) larger than the utilitarian one's.
  CmpGeometry geometry;
  common::Rng rng(31);
  const auto& suite = trace::spec2000_suite();
  for (int trial = 0; trial < 30; ++trial) {
    const auto mix = trace::random_mix(rng, suite.size(), geometry.num_cores);
    std::vector<msa::MissRatioCurve> curves;
    for (const auto index : mix.workload_indices) {
      const auto& model = suite[index];
      curves.push_back(msa::MissRatioCurve::from_model(model, 128).scaled(model.l2_apki));
    }
    const auto communist = communist_partition(geometry, curves);
    const auto utilitarian = unrestricted_partition(geometry, curves);
    EXPECT_LE(miss_ratio_spread(curves, communist.ways_per_core),
              miss_ratio_spread(curves, utilitarian.ways_per_core) + 1e-9)
        << "trial " << trial;
  }
}

TEST(MissRatioSpread, KnownValues) {
  std::vector<msa::MissRatioCurve> curves{
      msa::MissRatioCurve({5.0, 5.0}, 0.0),   // 0 misses at 2 ways
      msa::MissRatioCurve({0.0, 0.0}, 10.0)}; // all misses
  const std::vector<WayCount> ways{2, 2};
  EXPECT_DOUBLE_EQ(miss_ratio_spread(curves, ways), 1.0);
}

TEST(Communist, RespectsMinimumWays) {
  const auto geometry = small_geometry();
  std::vector<msa::MissRatioCurve> curves{
      msa::MissRatioCurve(std::vector<double>(16, 0.0), 10.0),
      msa::MissRatioCurve(std::vector<double>(16, 1.0), 0.0)};
  CommunistConfig config;
  config.min_ways_per_core = 3;
  const auto allocation = communist_partition(geometry, curves, config);
  EXPECT_GE(allocation.ways_per_core[1], 3u);
}

}  // namespace
}  // namespace bacp::partition
