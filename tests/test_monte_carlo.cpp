#include "harness/monte_carlo.hpp"

#include <gtest/gtest.h>

namespace bacp::harness {
namespace {

MonteCarloConfig small(std::size_t trials = 60, std::size_t threads = 1) {
  MonteCarloConfig config;
  config.trials = trials;
  config.seed = 1234;
  config.num_threads = threads;
  return config;
}

TEST(MonteCarlo, ProducesRequestedTrialCount) {
  const auto summary = run_monte_carlo(small(25));
  EXPECT_EQ(summary.trials.size(), 25u);
}

TEST(MonteCarlo, DeterministicAcrossThreadCounts) {
  const auto one = run_monte_carlo(small(40, 1));
  const auto four = run_monte_carlo(small(40, 4));
  ASSERT_EQ(one.trials.size(), four.trials.size());
  for (std::size_t i = 0; i < one.trials.size(); ++i) {
    EXPECT_EQ(one.trials[i].mix.workload_indices, four.trials[i].mix.workload_indices);
    EXPECT_DOUBLE_EQ(one.trials[i].unrestricted_misses,
                     four.trials[i].unrestricted_misses);
    EXPECT_DOUBLE_EQ(one.trials[i].bank_aware_misses, four.trials[i].bank_aware_misses);
  }
  EXPECT_DOUBLE_EQ(one.mean_unrestricted_ratio, four.mean_unrestricted_ratio);
}

TEST(MonteCarlo, UnrestrictedNeverWorseThanFixedShare) {
  const auto summary = run_monte_carlo(small(80));
  for (const auto& trial : summary.trials) {
    EXPECT_LE(trial.unrestricted_ratio(), 1.0001);
  }
}

TEST(MonteCarlo, BankAwareNeverBeatsUnrestrictedByMuch) {
  // Unrestricted is the envelope: Bank-aware adds constraints, so it can
  // only match or lose (numerical ties aside).
  const auto summary = run_monte_carlo(small(80));
  for (const auto& trial : summary.trials) {
    EXPECT_GE(trial.bank_aware_misses, trial.unrestricted_misses * 0.999);
  }
}

TEST(MonteCarlo, MeansSitInThePaperNeighbourhood) {
  // Paper Fig. 7: Unrestricted ~0.70, Bank-aware ~0.73 of the fixed share.
  const auto summary = run_monte_carlo(small(300));
  EXPECT_GT(summary.mean_unrestricted_ratio, 0.55);
  EXPECT_LT(summary.mean_unrestricted_ratio, 0.85);
  EXPECT_GT(summary.mean_bank_aware_ratio, summary.mean_unrestricted_ratio - 0.01);
  EXPECT_LT(summary.mean_bank_aware_ratio, 0.90);
}

TEST(MonteCarlo, MixesDrawWithRepetition) {
  // With 26 workloads and 8 slots, some trial must repeat a workload
  // (probability of all-distinct every time is negligible).
  const auto summary = run_monte_carlo(small(50));
  bool repeated = false;
  for (const auto& trial : summary.trials) {
    auto sorted = trial.mix.workload_indices;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      repeated = true;
    }
  }
  EXPECT_TRUE(repeated);
}

TEST(MonteCarlo, ReportIsByteIdenticalAcrossThreadCounts) {
  // The acceptance contract of the observability layer: the JSON artifact
  // of a fixed-seed sweep must not depend on the worker count.
  const auto config_one = small(40, 1);
  const auto config_four = small(40, 4);
  const std::string one =
      monte_carlo_report(config_one, run_monte_carlo(config_one)).to_json().dump(2);
  const std::string four =
      monte_carlo_report(config_four, run_monte_carlo(config_four)).to_json().dump(2);
  EXPECT_EQ(one, four);
}

TEST(MonteCarlo, ReportCarriesHeadlineMetrics) {
  const auto config = small(30);
  const auto report = monte_carlo_report(config, run_monte_carlo(config));
  EXPECT_GT(report.metric_value("mean_bank_aware_ratio"), 0.0);
  EXPECT_GT(report.metric_value("mean_unrestricted_ratio"), 0.0);
  EXPECT_DOUBLE_EQ(report.metric_value("trials"), 30.0);
}

MonteCarloConfig small_sampled(std::size_t threads) {
  MonteCarloConfig config;
  config.trials = 3;
  config.seed = 4242;
  config.num_threads = threads;
  config.sampled_k = 2;
  config.sampled_intervals = 6;
  config.sampled_interval_instructions = 2'000;
  config.sampled_warmup = 4'000;
  return config;
}

TEST(MonteCarlo, SampledSweepFillsSampledColumns) {
  const auto summary = run_monte_carlo(small_sampled(2));
  ASSERT_EQ(summary.trials.size(), 3u);
  for (const auto& trial : summary.trials) {
    EXPECT_TRUE(trial.sampled.evaluated);
    EXPECT_GT(trial.sampled.miss_ratio, 0.0);
    EXPECT_LE(trial.sampled.miss_ratio, 1.0);
    EXPECT_GT(trial.sampled.cpi, 0.0);
  }
  EXPECT_GT(summary.mean_sampled_miss_ratio, 0.0);
  EXPECT_GT(summary.mean_sampled_cpi, 0.0);
}

TEST(MonteCarlo, AnalyticSweepLeavesSampledColumnsOff) {
  const auto summary = run_monte_carlo(small(10));
  for (const auto& trial : summary.trials) {
    EXPECT_FALSE(trial.sampled.evaluated);
  }
  EXPECT_DOUBLE_EQ(summary.mean_sampled_miss_ratio, 0.0);
  EXPECT_DOUBLE_EQ(summary.mean_sampled_cpi, 0.0);
}

TEST(MonteCarlo, SampledReportIsByteIdenticalAcrossThreadCounts) {
  // The sampled columns ride the same determinism contract as the analytic
  // ones: snapshot-store sharing across pool workers must never leak into
  // the artifact bytes.
  const auto config_one = small_sampled(1);
  const auto config_four = small_sampled(4);
  const std::string one =
      monte_carlo_report(config_one, run_monte_carlo(config_one)).to_json().dump(2);
  const std::string four =
      monte_carlo_report(config_four, run_monte_carlo(config_four)).to_json().dump(2);
  EXPECT_EQ(one, four);
}

TEST(MonteCarlo, SampledReportCarriesSampledMetrics) {
  const auto config = small_sampled(2);
  const auto report = monte_carlo_report(config, run_monte_carlo(config));
  EXPECT_GT(report.metric_value("mean_sampled_miss_ratio"), 0.0);
  EXPECT_GT(report.metric_value("mean_sampled_cpi"), 0.0);
  EXPECT_GT(report.metric_value("sampled_miss_ratio_p95"), 0.0);
  EXPECT_GE(report.metric_value("sampled_miss_ratio_p95"),
            report.metric_value("sampled_miss_ratio_p50"));
}

TEST(MonteCarloConfig, FluentSettersChain) {
  const auto config =
      MonteCarloConfig{}.with_trials(5).with_seed(11).with_num_threads(3).with_curve_depth(64);
  EXPECT_EQ(config.trials, 5u);
  EXPECT_EQ(config.seed, 11u);
  EXPECT_EQ(config.num_threads, 3u);
  EXPECT_EQ(config.curve_depth, 64u);
}

TEST(MonteCarloConfig, FromArgsPrefersFlags) {
  common::ArgParser parser(MonteCarloConfig::cli_flags());
  const char* argv[] = {"prog", "--trials=7", "--seed=99", "--threads=2"};
  ASSERT_TRUE(parser.parse(4, argv));
  const auto config = MonteCarloConfig::from_args(parser);
  EXPECT_EQ(config.trials, 7u);
  EXPECT_EQ(config.seed, 99u);
  EXPECT_EQ(config.num_threads, 2u);
}

TEST(MonteCarloConfig, FromArgsReadsSampledKnobs) {
  common::ArgParser parser(MonteCarloConfig::cli_flags());
  const char* argv[] = {"prog", "--sampled=3", "--sampled-intervals=16",
                        "--sampled-interval-instr=10000", "--sampled-warmup=20000"};
  ASSERT_TRUE(parser.parse(5, argv));
  const auto config = MonteCarloConfig::from_args(parser);
  EXPECT_EQ(config.sampled_k, 3u);
  EXPECT_EQ(config.sampled_intervals, 16u);
  EXPECT_EQ(config.sampled_interval_instructions, 10'000u);
  EXPECT_EQ(config.sampled_warmup, 20'000u);
}

TEST(MonteCarlo, DifferentSeedsGiveDifferentMixes) {
  auto config_a = small(10);
  auto config_b = small(10);
  config_b.seed = 999;
  const auto a = run_monte_carlo(config_a);
  const auto b = run_monte_carlo(config_b);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    if (a.trials[i].mix.workload_indices != b.trials[i].mix.workload_indices) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace bacp::harness
