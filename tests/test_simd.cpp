// Oracle tests for the runtime-dispatched SIMD kernels in common/simd.hpp:
// every vector kernel is checked lane-for-lane against its scalar reference
// on randomized inputs, including the wrap-around and tail shapes the
// batched access pipeline produces. On hosts without AVX2 the vector entry
// points fall back to scalar, so the comparisons stay valid (they just stop
// being interesting) — the CI matrix re-runs the full artifact suite under
// BACP_SIMD=off to cover the forced-scalar configuration end to end.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "cache/partial_tag.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"

namespace bacp {
namespace {

using common::simd::detail::kGroupOccupiedOffset;
using common::simd::detail::kGroupSlotBytes;
using common::simd::detail::kRunMatch;

/// Whether the AVX2 kernels actually run vector code here (otherwise the
/// _avx2 symbols are the portable fallbacks and the oracle is trivially
/// true).
bool host_runs_avx2() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

/// A random linear-probe table in the FlatHash64 slot layout: `count`
/// 16-byte slots, u64 key at offset 0, occupancy byte at offset 12.
/// `load` controls the occupied fraction; occupied slots get distinct keys
/// derived from their index so tests can aim probes at known keys.
std::vector<unsigned char> random_table(std::size_t count, double load,
                                        common::Rng& rng) {
  std::vector<unsigned char> table(count * kGroupSlotBytes, 0);
  for (std::size_t slot = 0; slot < count; ++slot) {
    if (!rng.next_bool(load)) continue;
    const std::uint64_t key = 0x9E3779B97F4A7C15ull * (slot + 1);
    std::memcpy(table.data() + slot * kGroupSlotBytes, &key, sizeof(key));
    table[slot * kGroupSlotBytes + kGroupOccupiedOffset] = 1;
  }
  return table;
}

std::uint64_t key_at(const std::vector<unsigned char>& table, std::size_t slot) {
  std::uint64_t key;
  std::memcpy(&key, table.data() + slot * kGroupSlotBytes, sizeof(key));
  return key;
}

bool occupied_at(const std::vector<unsigned char>& table, std::size_t slot) {
  return table[slot * kGroupSlotBytes + kGroupOccupiedOffset] != 0;
}

// ---------------------------------------------------------------------------
// probe_group16: four-slot group probe.
// ---------------------------------------------------------------------------

TEST(SimdProbeGroup16, MatchesScalarOnRandomGroups) {
  common::Rng rng(0x516D);
  for (std::uint32_t round = 0; round < 20000; ++round) {
    const auto table = random_table(4, 0.6, rng);
    // Probe for a present key, an absent key, or garbage, in rotation.
    std::uint64_t needle;
    if (round % 3 == 0) {
      needle = key_at(table, rng.next_below(4));
    } else if (round % 3 == 1) {
      needle = 0xDEADBEEFull + round;
    } else {
      needle = rng.next_u64();
    }
    const std::uint32_t scalar =
        common::simd::detail::probe_group16_scalar(table.data(), needle);
    const std::uint32_t avx2 =
        common::simd::detail::probe_group16_avx2(table.data(), needle);
    ASSERT_EQ(scalar, avx2) << "round " << round;
    // The dispatching wrapper must agree with both.
    ASSERT_EQ(common::simd::probe_group16(table.data(), needle), scalar);
  }
}

// ---------------------------------------------------------------------------
// probe_run16: whole-run probe with wrap-around.
// ---------------------------------------------------------------------------

TEST(SimdProbeRun16, MatchesScalarOnRandomTables) {
  common::Rng rng(0x9716);
  for (const std::size_t count : {16u, 64u, 256u}) {
    const std::uint64_t mask = count - 1;
    for (std::uint32_t round = 0; round < 5000; ++round) {
      // 0.8 load keeps probe runs long enough to cross group boundaries; a
      // forced empty slot guarantees termination (FlatHash64 never exceeds
      // 7/8 load, so full tables are outside the kernel's contract).
      auto table = random_table(count, 0.8, rng);
      const std::size_t forced_empty = rng.next_below(count);
      std::memset(table.data() + forced_empty * kGroupSlotBytes, 0, kGroupSlotBytes);
      const std::uint64_t start = rng.next_below(count);
      std::uint64_t needle;
      if (round % 2 == 0) {
        needle = key_at(table, rng.next_below(count));  // maybe absent slot key
      } else {
        needle = rng.next_u64() | 1;  // never a generated key
      }
      const std::uint64_t scalar = common::simd::detail::probe_run16_scalar(
          table.data(), mask, start, needle);
      const std::uint64_t avx2 = common::simd::detail::probe_run16_avx2(
          table.data(), mask, start, needle);
      ASSERT_EQ(scalar, avx2) << "count " << count << " round " << round;

      // Decode and check the contract directly against the table.
      const std::uint64_t slot = scalar >> 1;
      ASSERT_LT(slot, count);
      if ((scalar & kRunMatch) != 0) {
        ASSERT_TRUE(occupied_at(table, slot));
        ASSERT_EQ(key_at(table, slot), needle);
      } else {
        ASSERT_FALSE(occupied_at(table, slot));
      }
    }
  }
}

TEST(SimdProbeRun16, WrapAroundRunsCrossTheTableEnd) {
  // A cluster that straddles the table end: slots [12..15] and [0..2]
  // occupied, the rest empty. Probes starting inside the tail must wrap to
  // find keys (or the first empty slot) at the front.
  const std::size_t count = 16;
  const std::uint64_t mask = count - 1;
  std::vector<unsigned char> table(count * kGroupSlotBytes, 0);
  auto occupy = [&](std::size_t slot) {
    const std::uint64_t key = 0x9E3779B97F4A7C15ull * (slot + 1);
    std::memcpy(table.data() + slot * kGroupSlotBytes, &key, sizeof(key));
    table[slot * kGroupSlotBytes + kGroupOccupiedOffset] = 1;
  };
  for (const std::size_t slot : {12u, 13u, 14u, 15u, 0u, 1u, 2u}) occupy(slot);

  for (std::uint64_t start = 0; start < count; ++start) {
    // Key physically before the start slot in the cluster: reachable only
    // by wrapping through the table end.
    for (const std::size_t target : {12u, 15u, 0u, 2u}) {
      const std::uint64_t needle = key_at(table, target);
      const std::uint64_t scalar = common::simd::detail::probe_run16_scalar(
          table.data(), mask, start, needle);
      const std::uint64_t avx2 = common::simd::detail::probe_run16_avx2(
          table.data(), mask, start, needle);
      ASSERT_EQ(scalar, avx2) << "start " << start << " target " << target;
    }
    // Absent key: both must land on the same empty slot.
    const std::uint64_t scalar = common::simd::detail::probe_run16_scalar(
        table.data(), mask, start, 0xFEEDull);
    const std::uint64_t avx2 = common::simd::detail::probe_run16_avx2(
        table.data(), mask, start, 0xFEEDull);
    ASSERT_EQ(scalar, avx2) << "start " << start;
    ASSERT_EQ(scalar & kRunMatch, 0u);
  }
}

// ---------------------------------------------------------------------------
// find_first_equal_u64: tag-column scan.
// ---------------------------------------------------------------------------

TEST(SimdFindFirstEqual, MatchesScalarAcrossCountsAndPositions) {
  common::Rng rng(0xF1F5);
  for (std::uint32_t count = 0; count <= 33; ++count) {
    for (std::uint32_t round = 0; round < 500; ++round) {
      std::vector<std::uint64_t> values(count);
      for (auto& value : values) value = rng.next_below(8);  // force duplicates
      const std::uint64_t needle = rng.next_below(8);
      const std::uint32_t scalar = common::simd::detail::find_first_equal_u64_scalar(
          values.data(), count, needle);
      ASSERT_EQ(common::simd::find_first_equal_u64(values.data(), count, needle),
                scalar)
          << "count " << count;
      if (host_runs_avx2()) {
        ASSERT_EQ(common::simd::detail::find_first_equal_u64_avx2(values.data(), count,
                                                                  needle),
                  scalar)
            << "count " << count;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// mix_to_partial_tags / collect_masked_zero: batched profiler front half.
// ---------------------------------------------------------------------------

TEST(SimdPartialTags, BatchedMixMatchesScalarPartialTag) {
  common::Rng rng(0x7A65);
  for (const std::uint32_t width : {1u, 9u, 16u, 21u, 32u}) {
    for (const std::size_t count : {0u, 1u, 3u, 4u, 7u, 64u, 255u}) {
      std::vector<std::uint64_t> tags(count);
      for (auto& tag : tags) tag = rng.next_u64();
      std::vector<std::uint64_t> out(count, ~0ull);
      common::simd::mix_to_partial_tags(tags.data(), out.data(), count, width);
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(out[i], cache::partial_tag(tags[i], width))
            << "width " << width << " lane " << i;
      }
    }
  }
}

TEST(SimdCollectMaskedZero, MatchesScalarFilter) {
  common::Rng rng(0xC011);
  for (const std::size_t count : {0u, 1u, 5u, 64u, 250u}) {
    for (std::uint32_t round = 0; round < 200; ++round) {
      std::vector<std::uint64_t> values(count);
      for (auto& value : values) value = rng.next_below(64);
      const std::uint64_t mask = 0x30;  // pow2-ish sampling mask
      std::vector<std::uint32_t> out(count + 1, 0xABABABABu);
      const std::size_t matched =
          common::simd::collect_masked_zero(values.data(), count, mask, out.data());
      std::vector<std::uint32_t> expected;
      for (std::uint32_t i = 0; i < count; ++i) {
        if ((values[i] & mask) == 0) expected.push_back(i);
      }
      ASSERT_EQ(matched, expected.size());
      for (std::size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(out[i], expected[i]);
      }
    }
  }
}

}  // namespace
}  // namespace bacp
