#include "coherence/moesi.hpp"

#include <gtest/gtest.h>

#include <bit>

#include "common/rng.hpp"

namespace bacp::coherence {
namespace {

constexpr BlockAddress kBlock = 0x1000;

TEST(Moesi, FirstReadGrantsExclusive) {
  MoesiDirectory directory(4);
  const auto action = directory.on_l1_read_fill(kBlock, 0);
  EXPECT_EQ(action.invalidations, 0u);
  EXPECT_EQ(action.interventions, 0u);
  EXPECT_EQ(directory.state_at(kBlock, 0), MoesiState::Exclusive);
}

TEST(Moesi, SecondReaderDegradesExclusiveToShared) {
  MoesiDirectory directory(4);
  directory.on_l1_read_fill(kBlock, 0);
  const auto action = directory.on_l1_read_fill(kBlock, 1);
  EXPECT_EQ(action.interventions, 0u);  // E is clean: data from L2
  EXPECT_EQ(directory.state_at(kBlock, 0), MoesiState::Shared);
  EXPECT_EQ(directory.state_at(kBlock, 1), MoesiState::Shared);
}

TEST(Moesi, WriteMakesModifiedAndInvalidatesSharers) {
  MoesiDirectory directory(4);
  directory.on_l1_read_fill(kBlock, 0);
  directory.on_l1_read_fill(kBlock, 1);
  directory.on_l1_read_fill(kBlock, 2);
  const auto action = directory.on_l1_write_fill(kBlock, 3);
  EXPECT_EQ(action.invalidations, 3u);
  EXPECT_EQ(directory.state_at(kBlock, 3), MoesiState::Modified);
  EXPECT_EQ(directory.state_at(kBlock, 0), MoesiState::Invalid);
  EXPECT_EQ(directory.sharers_of(kBlock), core_bit(3));
}

TEST(Moesi, ReadOfModifiedForcesOwnedWithIntervention) {
  MoesiDirectory directory(4);
  directory.on_l1_write_fill(kBlock, 0);
  const auto action = directory.on_l1_read_fill(kBlock, 1);
  EXPECT_EQ(action.interventions, 1u);  // dirty owner forwards the data
  EXPECT_EQ(directory.state_at(kBlock, 0), MoesiState::Owned);
  EXPECT_EQ(directory.state_at(kBlock, 1), MoesiState::Shared);
}

TEST(Moesi, OwnedKeepsServingFurtherReaders) {
  MoesiDirectory directory(4);
  directory.on_l1_write_fill(kBlock, 0);
  directory.on_l1_read_fill(kBlock, 1);
  const auto action = directory.on_l1_read_fill(kBlock, 2);
  EXPECT_EQ(action.interventions, 1u);
  EXPECT_EQ(directory.state_at(kBlock, 0), MoesiState::Owned);
  EXPECT_EQ(std::popcount(directory.sharers_of(kBlock)), 3);
}

TEST(Moesi, UpgradeFromSharedCountsAsUpgrade) {
  MoesiDirectory directory(4);
  directory.on_l1_read_fill(kBlock, 0);
  directory.on_l1_read_fill(kBlock, 1);
  directory.on_l1_write_fill(kBlock, 0);
  EXPECT_EQ(directory.stats().upgrades, 1u);
  EXPECT_EQ(directory.state_at(kBlock, 0), MoesiState::Modified);
  EXPECT_EQ(directory.state_at(kBlock, 1), MoesiState::Invalid);
}

TEST(Moesi, WriteToOwnedRemoteForwardsAndInvalidates) {
  MoesiDirectory directory(4);
  directory.on_l1_write_fill(kBlock, 0);
  directory.on_l1_read_fill(kBlock, 1);  // 0: Owned, 1: Shared
  const auto action = directory.on_l1_write_fill(kBlock, 2);
  EXPECT_EQ(action.invalidations, 2u);
  EXPECT_EQ(action.interventions, 1u);
  EXPECT_EQ(directory.state_at(kBlock, 2), MoesiState::Modified);
}

TEST(Moesi, DirtyEvictionWritesBack) {
  MoesiDirectory directory(4);
  directory.on_l1_write_fill(kBlock, 0);
  const auto action = directory.on_l1_evict(kBlock, 0, true);
  EXPECT_TRUE(action.writeback_below);
  EXPECT_EQ(directory.state_at(kBlock, 0), MoesiState::Invalid);
  EXPECT_EQ(directory.tracked_blocks(), 0u);
}

TEST(Moesi, CleanExclusiveEvictionIsSilent) {
  MoesiDirectory directory(4);
  directory.on_l1_read_fill(kBlock, 0);
  const auto action = directory.on_l1_evict(kBlock, 0, false);
  EXPECT_FALSE(action.writeback_below);
  EXPECT_EQ(directory.tracked_blocks(), 0u);
}

TEST(Moesi, SharerEvictionLeavesOthersIntact) {
  MoesiDirectory directory(4);
  directory.on_l1_read_fill(kBlock, 0);
  directory.on_l1_read_fill(kBlock, 1);
  directory.on_l1_evict(kBlock, 0, false);
  EXPECT_EQ(directory.state_at(kBlock, 1), MoesiState::Shared);
  EXPECT_EQ(directory.tracked_blocks(), 1u);
}

TEST(Moesi, OwnerEvictionPromotesRemainingToCleanShared) {
  MoesiDirectory directory(4);
  directory.on_l1_write_fill(kBlock, 0);
  directory.on_l1_read_fill(kBlock, 1);  // 0: Owned
  const auto action = directory.on_l1_evict(kBlock, 0, true);
  EXPECT_TRUE(action.writeback_below);  // dirty data drains below
  EXPECT_EQ(directory.state_at(kBlock, 1), MoesiState::Shared);
}

TEST(Moesi, L2EvictionRecallsAllCopies) {
  MoesiDirectory directory(4);
  directory.on_l1_read_fill(kBlock, 0);
  directory.on_l1_read_fill(kBlock, 1);
  directory.on_l1_read_fill(kBlock, 2);
  const auto action = directory.on_l2_evict(kBlock);
  EXPECT_EQ(action.invalidations, 3u);
  EXPECT_FALSE(action.writeback_below);  // all copies clean
  EXPECT_EQ(directory.tracked_blocks(), 0u);
  EXPECT_EQ(directory.stats().inclusion_recalls, 3u);
}

TEST(Moesi, L2EvictionOfDirtyBlockWritesBack) {
  MoesiDirectory directory(4);
  directory.on_l1_write_fill(kBlock, 2);
  const auto action = directory.on_l2_evict(kBlock);
  EXPECT_EQ(action.invalidations, 1u);
  EXPECT_TRUE(action.writeback_below);
}

TEST(Moesi, L2EvictionOfUntrackedBlockIsNoop) {
  MoesiDirectory directory(4);
  const auto action = directory.on_l2_evict(kBlock);
  EXPECT_EQ(action.invalidations, 0u);
  EXPECT_FALSE(action.writeback_below);
}

TEST(Moesi, RereadAfterOwnershipIsStable) {
  MoesiDirectory directory(4);
  directory.on_l1_read_fill(kBlock, 0);
  const auto action = directory.on_l1_read_fill(kBlock, 0);  // already present
  EXPECT_EQ(action.invalidations + action.interventions, 0u);
  EXPECT_EQ(directory.state_at(kBlock, 0), MoesiState::Exclusive);
}

TEST(Moesi, StateToString) {
  EXPECT_STREQ(to_string(MoesiState::Modified), "M");
  EXPECT_STREQ(to_string(MoesiState::Owned), "O");
  EXPECT_STREQ(to_string(MoesiState::Exclusive), "E");
  EXPECT_STREQ(to_string(MoesiState::Shared), "S");
  EXPECT_STREQ(to_string(MoesiState::Invalid), "I");
}

/// Protocol invariants under random event streams, for several core counts:
/// at most one owner; owner never merely Shared; a Modified owner is the
/// sole sharer.
class MoesiInvariants : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MoesiInvariants, RandomStressHoldsInvariants) {
  const std::uint32_t num_cores = GetParam();
  MoesiDirectory directory(num_cores);
  common::Rng rng(GetParam() * 7919);
  constexpr int kBlocks = 16;
  for (int step = 0; step < 20000; ++step) {
    const BlockAddress block = rng.next_below(kBlocks);
    const auto core = static_cast<CoreId>(rng.next_below(num_cores));
    switch (rng.next_below(4)) {
      case 0: directory.on_l1_read_fill(block, core); break;
      case 1: directory.on_l1_write_fill(block, core); break;
      case 2:
        if (directory.state_at(block, core) != MoesiState::Invalid) {
          const auto state = directory.state_at(block, core);
          const bool dirty =
              state == MoesiState::Modified || state == MoesiState::Owned;
          directory.on_l1_evict(block, core, dirty);
        }
        break;
      default: directory.on_l2_evict(block); break;
    }
    // Invariants over every block.
    for (BlockAddress b = 0; b < kBlocks; ++b) {
      int owners = 0;
      int modified = 0;
      const CoreMask sharers = directory.sharers_of(b);
      for (CoreId c = 0; c < num_cores; ++c) {
        const auto state = directory.state_at(b, c);
        if (state == MoesiState::Invalid) {
          ASSERT_EQ(sharers & core_bit(c), 0u);
          continue;
        }
        ASSERT_NE(sharers & core_bit(c), 0u);
        if (state == MoesiState::Modified || state == MoesiState::Owned ||
            state == MoesiState::Exclusive) {
          ++owners;
        }
        if (state == MoesiState::Modified) ++modified;
      }
      ASSERT_LE(owners, 1) << "two owners for block " << b;
      if (modified == 1) {
        ASSERT_EQ(std::popcount(sharers), 1) << "M with other sharers";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, MoesiInvariants, ::testing::Values(2u, 4u, 8u));

}  // namespace
}  // namespace bacp::coherence
