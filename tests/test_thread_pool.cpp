#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace bacp::common {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> touched(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) { ++touched[i]; });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPool, SingleIteration) {
  ThreadPool pool(3);
  std::atomic<int> runs{0};
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++runs;
  });
  EXPECT_EQ(runs.load(), 1);
}

TEST(ThreadPool, MoreWorkThanThreads) {
  ThreadPool pool(1);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, SequentialCallsReusePool) {
  ThreadPool pool(2);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(50, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPool, ResultsIndependentOfThreadCount) {
  // Work that writes f(i) into slot i must produce identical results under
  // any parallelism (the Monte-Carlo determinism requirement).
  auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> out(500);
    pool.parallel_for(out.size(), [&](std::size_t i) {
      out[i] = i * 2654435761u;  // deterministic per-index work
    });
    return out;
  };
  EXPECT_EQ(run(1), run(4));
}

}  // namespace
}  // namespace bacp::common
