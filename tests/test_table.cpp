#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace bacp::common {
namespace {

TEST(Table, CellsRoundTrip) {
  Table t({"a", "b"});
  t.begin_row().add_cell("x").add_cell(std::uint64_t{7});
  t.begin_row().add_cell(1.5, 2).add_cell("y");
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.cell(0, 0), "x");
  EXPECT_EQ(t.cell(0, 1), "7");
  EXPECT_EQ(t.cell(1, 0), "1.50");
}

TEST(Table, FormatDoublePrecision) {
  EXPECT_EQ(Table::format_double(3.14159, 2), "3.14");
  EXPECT_EQ(Table::format_double(2.0, 0), "2");
  EXPECT_EQ(Table::format_double(0.5, 3), "0.500");
}

TEST(Table, PrintAlignsColumns) {
  Table t({"col", "x"});
  t.begin_row().add_cell("longer-cell").add_cell("1");
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("| col"), std::string::npos);
  EXPECT_NE(out.find("longer-cell"), std::string::npos);
  // Header separator rule present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(Table, CsvPlainCells) {
  Table t({"a", "b"});
  t.begin_row().add_cell("1").add_cell("2");
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"a"});
  t.begin_row().add_cell("x,y");
  t.begin_row().add_cell("say \"hi\"");
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_EQ(oss.str(), "a\n\"x,y\"\n\"say \"\"hi\"\"\"\n");
}

TEST(Table, EmptyTablePrintsHeaderOnly) {
  Table t({"only"});
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_EQ(oss.str(), "only\n");
}

}  // namespace
}  // namespace bacp::common
