// The sampled-interval engine: deterministic k-medoids selection over
// per-interval feature vectors, audited plans, snapshot-forked detailed
// simulation of only the representative intervals, and population-weighted
// extrapolation that tracks the full detailed run.

#include "sampling/sampled_run.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <numeric>
#include <vector>

#include "audit/pool_audit.hpp"
#include "audit/sampling_audit.hpp"
#include "harness/system_pool.hpp"
#include "sampling/interval_features.hpp"
#include "sampling/kmedoids.hpp"
#include "sim/system.hpp"
#include "trace/mix.hpp"

namespace bacp::sampling {
namespace {

// ---------------------------------------------------------------------------
// k-medoids
// ---------------------------------------------------------------------------

std::vector<std::vector<double>> two_blobs() {
  // Two tight clusters on a line; medoids must land one per blob.
  return {{0.0}, {0.1}, {0.2}, {10.0}, {10.1}, {10.2}};
}

TEST(KMedoids, FindsObviousClusters) {
  const auto points = two_blobs();
  const KMedoidsResult result = kmedoids(points, 2);
  ASSERT_EQ(result.medoids.size(), 2u);
  EXPECT_EQ(result.medoids[0], 1u);  // 0.1 is the center of the first blob
  EXPECT_EQ(result.medoids[1], 4u);  // 10.1 of the second
  EXPECT_EQ(result.weights[0], 3u);
  EXPECT_EQ(result.weights[1], 3u);
  const std::vector<std::uint32_t> expected = {0, 0, 0, 1, 1, 1};
  EXPECT_EQ(result.assignment, expected);
}

TEST(KMedoids, IsDeterministicAcrossRepeats) {
  const auto points = two_blobs();
  const KMedoidsResult a = kmedoids(points, 3);
  const KMedoidsResult b = kmedoids(points, 3);
  EXPECT_EQ(a.medoids, b.medoids);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.weights, b.weights);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.total_cost),
            std::bit_cast<std::uint64_t>(b.total_cost));
}

TEST(KMedoids, MedoidsAreAscendingAndSelfAssigned) {
  const auto points = two_blobs();
  for (std::uint32_t k = 1; k <= 6; ++k) {
    const KMedoidsResult result = kmedoids(points, k);
    ASSERT_EQ(result.medoids.size(), k);
    for (std::size_t slot = 1; slot < result.medoids.size(); ++slot) {
      EXPECT_LT(result.medoids[slot - 1], result.medoids[slot]);
    }
    for (std::size_t slot = 0; slot < result.medoids.size(); ++slot) {
      EXPECT_EQ(result.assignment[result.medoids[slot]], slot) << "k=" << k;
    }
    const std::uint64_t covered =
        std::accumulate(result.weights.begin(), result.weights.end(),
                        std::uint64_t{0});
    EXPECT_EQ(covered, points.size());
  }
}

TEST(KMedoids, SurvivesDuplicatePoints) {
  // More medoids than distinct points: duplicates force medoid-valued
  // points into different slots, the canonicalization must keep every
  // medoid self-assigned (the audit invariant).
  const std::vector<std::vector<double>> points = {{1.0}, {1.0}, {1.0}, {1.0}};
  const KMedoidsResult result = kmedoids(points, 3);
  ASSERT_EQ(result.medoids.size(), 3u);
  for (std::size_t slot = 0; slot < result.medoids.size(); ++slot) {
    EXPECT_EQ(result.assignment[result.medoids[slot]], slot);
  }
  EXPECT_DOUBLE_EQ(result.total_cost, 0.0);
}

TEST(KMedoids, SingleClusterPicksCentralPoint) {
  const std::vector<std::vector<double>> points = {{0.0}, {1.0}, {2.0}, {9.0}};
  const KMedoidsResult result = kmedoids(points, 1);
  ASSERT_EQ(result.medoids.size(), 1u);
  EXPECT_EQ(result.medoids[0], 2u);  // minimizes summed distance
  EXPECT_EQ(result.weights[0], 4u);
}

// ---------------------------------------------------------------------------
// Interval profiling
// ---------------------------------------------------------------------------

sim::SystemConfig tiny_config() {
  return sampled_system_config(partition::CmpGeometry{}, /*seed=*/5,
                               /*interval_instructions=*/2'000);
}

TEST(IntervalFeatures, ProfileHasDeclaredShape) {
  IntervalProfileConfig intervals;
  intervals.num_intervals = 6;
  intervals.interval_instructions = 2'000;
  const auto profile =
      profile_workload_intervals(tiny_config(), /*workload=*/0, /*core=*/0, intervals);
  ASSERT_EQ(profile.features.size(), 6u);
  ASSERT_EQ(profile.sampled_accesses.size(), 6u);
  for (const auto& feature : profile.features) {
    ASSERT_EQ(feature.size(), kFeatureDim);
    for (double v : feature) {
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_GE(v, 0.0);
    }
  }
}

TEST(IntervalFeatures, ProfileIsDeterministic) {
  IntervalProfileConfig intervals;
  intervals.num_intervals = 4;
  intervals.interval_instructions = 2'000;
  const auto a =
      profile_workload_intervals(tiny_config(), /*workload=*/3, /*core=*/2, intervals);
  const auto b =
      profile_workload_intervals(tiny_config(), /*workload=*/3, /*core=*/2, intervals);
  ASSERT_EQ(a.features.size(), b.features.size());
  for (std::size_t i = 0; i < a.features.size(); ++i) {
    for (std::size_t d = 0; d < kFeatureDim; ++d) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a.features[i][d]),
                std::bit_cast<std::uint64_t>(b.features[i][d]))
          << "interval " << i << " dim " << d;
    }
  }
  EXPECT_EQ(a.sampled_accesses, b.sampled_accesses);
}

TEST(IntervalFeatures, BankMemoizesPerWorkloadCorePair) {
  IntervalProfileConfig intervals;
  intervals.num_intervals = 4;
  intervals.interval_instructions = 2'000;
  IntervalProfileBank bank(tiny_config(), intervals);
  const auto first = bank.get(/*workload=*/1, /*core=*/0);
  const auto second = bank.get(/*workload=*/1, /*core=*/0);
  EXPECT_EQ(first.get(), second.get());  // same shared profile, not a re-run
  const auto other_core = bank.get(/*workload=*/1, /*core=*/1);
  EXPECT_NE(first.get(), other_core.get());
  // The bank serves the same bytes direct profiling computes.
  const auto direct =
      profile_workload_intervals(tiny_config(), /*workload=*/1, /*core=*/0, intervals);
  ASSERT_EQ(first->features.size(), direct.features.size());
  for (std::size_t i = 0; i < direct.features.size(); ++i) {
    EXPECT_EQ(first->features[i], direct.features[i]);
  }
}

// ---------------------------------------------------------------------------
// Plans
// ---------------------------------------------------------------------------

trace::WorkloadMix eight_core_mix() {
  return trace::mix_from_names(
      {"mcf", "eon", "art", "gcc", "bzip2", "sixtrack", "facerec", "gzip"});
}

SampledRunConfig tiny_run() {
  SampledRunConfig run;
  run.k = 3;
  run.num_intervals = 8;
  run.interval_instructions = 2'000;
  run.warmup_instructions = 4'000;
  return run;
}

TEST(SamplingPlan, IsAuditCleanAndDeterministic) {
  const auto config = tiny_config();
  const auto mix = eight_core_mix();
  const SamplingPlan a = plan_mix(config, mix, tiny_run(), nullptr);
  const SamplingPlan b = plan_mix(config, mix, tiny_run(), nullptr);
  EXPECT_EQ(a.medoids, b.medoids);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.weights, b.weights);
  EXPECT_EQ(a.k, 3u);
  EXPECT_EQ(a.num_intervals, 8u);

  audit::SamplingPlanInput claim;
  claim.num_intervals = a.num_intervals;
  claim.k = a.k;
  claim.medoids = a.medoids;
  claim.assignment = a.assignment;
  claim.weights = a.weights;
  const auto report = audit::audit_sampling_plan(claim);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checks, 0u);
}

TEST(SamplingPlan, BankAndDirectProfilesAgree) {
  const auto config = tiny_config();
  const auto mix = eight_core_mix();
  IntervalProfileConfig intervals;
  intervals.num_intervals = tiny_run().num_intervals;
  intervals.interval_instructions = tiny_run().interval_instructions;
  IntervalProfileBank bank(config, intervals);
  const SamplingPlan with_bank = plan_mix(config, mix, tiny_run(), &bank);
  const SamplingPlan direct = plan_mix(config, mix, tiny_run(), nullptr);
  EXPECT_EQ(with_bank.medoids, direct.medoids);
  EXPECT_EQ(with_bank.weights, direct.weights);
}

TEST(SamplingPlan, CapsKAtIntervalCount) {
  SampledRunConfig run = tiny_run();
  run.k = 64;  // more representatives than intervals
  const SamplingPlan plan = plan_mix(tiny_config(), eight_core_mix(), run, nullptr);
  EXPECT_EQ(plan.k, run.num_intervals);
  EXPECT_EQ(plan.medoids.size(), run.num_intervals);
}

// ---------------------------------------------------------------------------
// Sampled runs
// ---------------------------------------------------------------------------

/// Trivial deterministic store: a std::map plus hit/miss counters.
class MapStore final : public SnapshotStore {
 public:
  SnapshotPtr get_or_warm(std::uint64_t key, const WarmFn& warm) override {
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
    auto snapshot = std::make_shared<const snapshot::SystemSnapshot>(warm());
    entries_.emplace(key, snapshot);
    return snapshot;
  }

  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }

 private:
  std::map<std::uint64_t, SnapshotPtr> entries_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

void expect_estimates_identical(const SampledEstimate& a, const SampledEstimate& b) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.miss_ratio),
            std::bit_cast<std::uint64_t>(b.miss_ratio));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.miss_ratio_ci_half),
            std::bit_cast<std::uint64_t>(b.miss_ratio_ci_half));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.cpi), std::bit_cast<std::uint64_t>(b.cpi));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.cpi_ci_half),
            std::bit_cast<std::uint64_t>(b.cpi_ci_half));
  EXPECT_EQ(a.detailed_intervals, b.detailed_intervals);
  EXPECT_EQ(a.total_intervals, b.total_intervals);
}

TEST(SampledRun, ProducesFiniteEstimateWithDeclaredShape) {
  const SampledEstimate estimate =
      run_sampled_mix(tiny_config(), eight_core_mix(), tiny_run(), nullptr, nullptr);
  EXPECT_GT(estimate.miss_ratio, 0.0);
  EXPECT_LE(estimate.miss_ratio, 1.0);
  EXPECT_GT(estimate.cpi, 0.0);
  EXPECT_TRUE(std::isfinite(estimate.miss_ratio_ci_half));
  EXPECT_TRUE(std::isfinite(estimate.cpi_ci_half));
  EXPECT_EQ(estimate.detailed_intervals, 3u);
  EXPECT_EQ(estimate.total_intervals, 8u);
}

TEST(SampledRun, IsBitIdenticalAcrossRepeats) {
  const SampledEstimate a =
      run_sampled_mix(tiny_config(), eight_core_mix(), tiny_run(), nullptr, nullptr);
  const SampledEstimate b =
      run_sampled_mix(tiny_config(), eight_core_mix(), tiny_run(), nullptr, nullptr);
  expect_estimates_identical(a, b);
}

TEST(SampledRun, StoreReuseDoesNotChangeBytes) {
  const auto config = tiny_config();
  const auto mix = eight_core_mix();
  const SampledEstimate bare =
      run_sampled_mix(config, mix, tiny_run(), nullptr, nullptr);

  MapStore store;
  const SampledEstimate first =
      run_sampled_mix(config, mix, tiny_run(), nullptr, &store);
  expect_estimates_identical(bare, first);
  EXPECT_EQ(store.misses(), 3u);  // one boundary per medoid
  EXPECT_EQ(store.hits(), 0u);

  // A second trial of the same mix hits every banked boundary and still
  // produces the identical bytes — the forked state is byte-equal to the
  // state the live system would have reached.
  const SampledEstimate second =
      run_sampled_mix(config, mix, tiny_run(), nullptr, &store);
  expect_estimates_identical(bare, second);
  EXPECT_EQ(store.misses(), 3u);
  EXPECT_EQ(store.hits(), 3u);
}

TEST(SampledRun, PooledSystemReuseDoesNotChangeBytes) {
  // The SystemPool seam: a trial handed a dirty leased System (previous
  // trial's leftovers) must produce the identical estimate to one that
  // constructs fresh — run_sampled_mix rewinds the reuse System itself.
  const auto config = tiny_config();
  const auto mix = eight_core_mix();
  const auto other = trace::mix_from_names(
      {"gzip", "mcf", "eon", "art", "gcc", "bzip2", "sixtrack", "facerec"});
  const SampledEstimate bare =
      run_sampled_mix(config, mix, tiny_run(), nullptr, nullptr);

  harness::SystemPool pool;
  {
    // Dirty a pooled System with a different mix's trial, then return it.
    auto lease = pool.acquire(config, other);
    const SampledEstimate ignored =
        run_sampled_mix(config, other, tiny_run(), nullptr, nullptr, lease.get());
    (void)ignored;
  }
  auto lease = pool.acquire(config, mix);
  ASSERT_TRUE(lease.pooled_hit());
  const SampledEstimate pooled =
      run_sampled_mix(config, mix, tiny_run(), nullptr, nullptr, lease.get());
  expect_estimates_identical(bare, pooled);
}

TEST(SystemPoolLease, ReusesSystemsPerConfigShapeAndKeepsBooksClean) {
  harness::SystemPool pool;
  const auto config = tiny_config();
  const auto mix = eight_core_mix();

  {
    auto first = pool.acquire(config, mix);
    EXPECT_FALSE(first.pooled_hit());
    EXPECT_EQ(pool.outstanding(), 1u);
    // A second concurrent lease of the same shape cannot steal the first.
    auto second = pool.acquire(config, mix);
    EXPECT_FALSE(second.pooled_hit());
    EXPECT_EQ(pool.misses(), 2u);
    EXPECT_EQ(pool.outstanding(), 2u);
  }
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_EQ(pool.idle(), 2u);

  // Same config shape — even under a different mix — is a pooled hit; the
  // mix-independent digest keys the pool because reset_in_place rebinds it.
  const auto other = trace::mix_from_names(
      {"gzip", "mcf", "eon", "art", "gcc", "bzip2", "sixtrack", "facerec"});
  {
    auto lease = pool.acquire(config, other);
    EXPECT_TRUE(lease.pooled_hit());
    EXPECT_EQ(pool.hits(), 1u);
  }

  // A different config shape misses.
  auto bigger = config;
  bigger.epoch_cycles *= 2;
  bigger.finalize();
  {
    auto lease = pool.acquire(bigger, mix);
    EXPECT_FALSE(lease.pooled_hit());
  }

  const auto report = audit::audit_pool_bookkeeping(pool.bookkeeping());
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checks, 0u);
}

TEST(SampledRun, DifferentMixesNeverShareSnapshotKeys) {
  MapStore store;
  const auto config = tiny_config();
  run_sampled_mix(config, eight_core_mix(), tiny_run(), nullptr, &store);
  const std::size_t after_first = store.misses();
  const auto other = trace::mix_from_names(
      {"gzip", "mcf", "eon", "art", "gcc", "bzip2", "sixtrack", "facerec"});
  run_sampled_mix(config, other, tiny_run(), nullptr, &store);
  // The second mix warms its own boundaries: all misses, no cross-mix hits.
  EXPECT_EQ(store.hits(), 0u);
  EXPECT_GT(store.misses(), after_first);
}

TEST(SampledRun, TracksFullDetailedRun) {
  // The extrapolated miss ratio must sit near the every-interval detailed
  // reference under the same measurement protocol (each interval measured
  // in isolation). The tolerance is loose — sampling is an estimator — but
  // tight enough to catch a broken weighting or a misaligned boundary
  // (those are 2x-class errors, not 15%).
  const auto config = tiny_config();
  const auto mix = eight_core_mix();
  SampledRunConfig run = tiny_run();
  run.k = 4;

  const SampledEstimate estimate = run_sampled_mix(config, mix, run, nullptr, nullptr);

  sim::System full(config, mix);
  full.warm_up(run.warmup_instructions);
  double misses = 0.0;
  double accesses = 0.0;
  for (std::uint32_t interval = 0; interval < run.num_intervals; ++interval) {
    full.reset_measurement();
    full.run(run.interval_instructions);
    const sim::SystemResults results = full.results();
    misses += static_cast<double>(results.l2_misses());
    accesses += static_cast<double>(results.l2_accesses());
  }
  const double full_ratio = misses / accesses;

  EXPECT_GT(full_ratio, 0.0);
  EXPECT_NEAR(estimate.miss_ratio, full_ratio, 0.15 * full_ratio)
      << "sampled " << estimate.miss_ratio << " vs full " << full_ratio;
}

TEST(SampledRun, MedoidIntervalsReproduceReferenceIntervalsExactly) {
  // The strong form of the boundary contract: fast_forward leaves the
  // system in exactly the state run() over the same span leaves it, so a
  // sampled medoid interval measures bit-for-bit what the every-interval
  // reference measures for that interval. The estimate must therefore be
  // *reconstructible* from the reference's per-interval numbers and the
  // published plan — the only freedom the estimator has is which intervals
  // it runs, never what they measure.
  const auto config = tiny_config();
  const auto mix = eight_core_mix();
  const SampledRunConfig run = tiny_run();

  const SamplingPlan plan = plan_mix(config, mix, run, nullptr);
  const SampledEstimate estimate = run_sampled_mix(config, mix, run, nullptr, nullptr);

  sim::System reference(config, mix);
  reference.warm_up(run.warmup_instructions);
  std::vector<double> interval_misses(run.num_intervals, 0.0);
  std::vector<double> interval_accesses(run.num_intervals, 0.0);
  for (std::uint32_t interval = 0; interval < run.num_intervals; ++interval) {
    reference.reset_measurement();
    reference.run(run.interval_instructions);
    const sim::SystemResults results = reference.results();
    interval_misses[interval] = static_cast<double>(results.l2_misses());
    interval_accesses[interval] = static_cast<double>(results.l2_accesses());
  }

  double weighted_misses = 0.0;
  double weighted_accesses = 0.0;
  for (std::uint32_t slot = 0; slot < plan.k; ++slot) {
    const std::uint32_t medoid = plan.medoids[slot];
    const double weight = static_cast<double>(plan.weights[slot]);
    weighted_misses += weight * interval_misses[medoid];
    weighted_accesses += weight * interval_accesses[medoid];
  }
  ASSERT_GT(weighted_accesses, 0.0);
  EXPECT_DOUBLE_EQ(estimate.miss_ratio, weighted_misses / weighted_accesses);
}

}  // namespace
}  // namespace bacp::sampling
