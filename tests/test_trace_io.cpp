#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "trace/spec2000.hpp"
#include "trace/synthetic.hpp"

namespace bacp::trace {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TraceIo, RoundTripsAccesses) {
  const auto path = temp_path("roundtrip.bacptrc");
  std::vector<MemoryAccess> accesses;
  SyntheticTraceGenerator generator(spec2000_by_name("gzip"),
                                    GeneratorConfig{.num_sets = 64, .core = 3}, 5);
  for (int i = 0; i < 5000; ++i) accesses.push_back(generator.next());

  ASSERT_TRUE(write_trace(path, accesses));
  const auto loaded = read_trace(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), accesses.size());
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    EXPECT_EQ((*loaded)[i].block, accesses[i].block) << i;
    EXPECT_EQ((*loaded)[i].core, accesses[i].core) << i;
    EXPECT_EQ((*loaded)[i].is_write, accesses[i].is_write) << i;
  }
  std::remove(path.c_str());
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  const auto path = temp_path("empty.bacptrc");
  ASSERT_TRUE(write_trace(path, {}));
  const auto loaded = read_trace(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileIsNullopt) {
  EXPECT_FALSE(read_trace(temp_path("does-not-exist.bacptrc")).has_value());
}

TEST(TraceIo, BadMagicIsRejected) {
  const auto path = temp_path("badmagic.bacptrc");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTATRACEFILE and some padding bytes";
  }
  EXPECT_FALSE(read_trace(path).has_value());
  std::remove(path.c_str());
}

TEST(TraceIo, TruncatedRecordsAreRejected) {
  const auto path = temp_path("truncated.bacptrc");
  std::vector<MemoryAccess> accesses(100);
  for (std::uint64_t i = 0; i < accesses.size(); ++i) accesses[i].block = i;
  ASSERT_TRUE(write_trace(path, accesses));
  // Chop the last few bytes off.
  {
    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(), static_cast<std::streamsize>(contents.size() - 5));
  }
  EXPECT_FALSE(read_trace(path).has_value());
  std::remove(path.c_str());
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
}

std::vector<MemoryAccess> sample_trace(std::size_t n) {
  std::vector<MemoryAccess> accesses(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    accesses[i].block = 0x1000 + i * 37;
    accesses[i].core = static_cast<CoreId>(i % 32);
    accesses[i].is_write = (i % 3) == 0;
  }
  return accesses;
}

TEST(TraceIo, WriteRejectsCoreBeyondFiveBits) {
  const auto path = temp_path("bigcore.bacptrc");
  std::vector<MemoryAccess> accesses(3);
  accesses[1].core = 32;  // the old writer masked this to core 0
  std::string error;
  EXPECT_FALSE(write_trace(path, accesses, &error));
  EXPECT_NE(error.find("core 32"), std::string::npos) << error;
  EXPECT_NE(error.find("record 1"), std::string::npos) << error;
  // The invalid trace must not have clobbered the path.
  EXPECT_FALSE(std::ifstream(path).good());
}

TEST(TraceIo, CorruptHeaderCountIsRejectedBeforeAllocation) {
  const auto path = temp_path("hugecount.bacptrc");
  ASSERT_TRUE(write_trace(path, sample_trace(4)));
  auto contents = slurp(path);
  // Overwrite the count field (bytes 8..15, little-endian) with a value
  // claiming ~10^18 records in a 52-byte file. Pre-fix this drove
  // reserve(count) into a multi-GB allocation before EOF was ever seen.
  for (std::size_t i = 0; i < 8; ++i) contents[8 + i] = static_cast<char>(0x0D);
  spit(path, contents);
  std::string error;
  EXPECT_FALSE(read_trace(path, &error).has_value());
  EXPECT_NE(error.find("header claims"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(TraceIo, TrailingGarbageIsRejected) {
  const auto path = temp_path("trailing.bacptrc");
  ASSERT_TRUE(write_trace(path, sample_trace(4)));
  spit(path, slurp(path) + "junk");
  EXPECT_FALSE(read_trace(path).has_value());
  std::remove(path.c_str());
}

TEST(TraceIo, ReservedFlagBitsAreRejected) {
  const auto path = temp_path("reserved.bacptrc");
  ASSERT_TRUE(write_trace(path, sample_trace(2)));
  auto contents = slurp(path);
  // Flags byte of record 0 sits at offset 16 + 8.
  contents[24] = static_cast<char>(static_cast<unsigned char>(contents[24]) | 0x20u);
  spit(path, contents);
  std::string error;
  EXPECT_FALSE(read_trace(path, &error).has_value());
  EXPECT_NE(error.find("reserved flag bits"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(TraceIo, EveryTruncationPointIsErrorOrValid) {
  const auto path = temp_path("trunc-sweep.bacptrc");
  const auto accesses = sample_trace(16);
  ASSERT_TRUE(write_trace(path, accesses));
  const auto contents = slurp(path);
  for (std::size_t len = 0; len < contents.size(); ++len) {
    spit(path, contents.substr(0, len));
    std::string error;
    const auto loaded = read_trace(path, &error);
    // Every strict prefix is corrupt (the header count no longer matches),
    // so the reader must fail with a reason — never crash or mis-parse.
    EXPECT_FALSE(loaded.has_value()) << "prefix length " << len;
    EXPECT_FALSE(error.empty()) << "prefix length " << len;
  }
  std::remove(path.c_str());
}

// Deterministic byte-mutation fuzz: flip one bit at every byte position and
// assert the invariant "error or valid parse, never crash/OOM/garbage".
// Runs under the asan-ubsan preset in CI, so a latent overflow or
// over-allocation fails loudly.
TEST(TraceIo, BitFlipFuzzNeverCrashesOrOverAllocates) {
  const auto path = temp_path("fuzz.bacptrc");
  const auto accesses = sample_trace(64);
  ASSERT_TRUE(write_trace(path, accesses));
  const auto contents = slurp(path);
  for (std::size_t pos = 0; pos < contents.size(); ++pos) {
    for (const int bit : {0, 4, 7}) {
      auto mutated = contents;
      mutated[pos] = static_cast<char>(static_cast<unsigned char>(mutated[pos]) ^
                                       (1u << bit));
      spit(path, mutated);
      std::string error;
      const auto loaded = read_trace(path, &error);
      if (!loaded.has_value()) {
        EXPECT_FALSE(error.empty()) << "pos " << pos << " bit " << bit;
        continue;
      }
      // A parse that survives a bit flip must still satisfy the format's
      // invariants: count bounded by the file size, cores within 5 bits.
      EXPECT_EQ(loaded->size(), accesses.size()) << "pos " << pos << " bit " << bit;
      for (const auto& access : *loaded) {
        EXPECT_LE(access.core, kTraceMaxCore);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(TraceIo, WriteBitAndCoreSurviveEncoding) {
  const auto path = temp_path("flags.bacptrc");
  std::vector<MemoryAccess> accesses;
  for (CoreId core = 0; core < 32; ++core) {
    accesses.push_back({0xABCDEF00ull + core, core, core % 2 == 0});
  }
  ASSERT_TRUE(write_trace(path, accesses));
  const auto loaded = read_trace(path);
  ASSERT_TRUE(loaded.has_value());
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    EXPECT_EQ((*loaded)[i].core, accesses[i].core);
    EXPECT_EQ((*loaded)[i].is_write, accesses[i].is_write);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bacp::trace
