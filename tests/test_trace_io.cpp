#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "trace/spec2000.hpp"
#include "trace/synthetic.hpp"

namespace bacp::trace {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TraceIo, RoundTripsAccesses) {
  const auto path = temp_path("roundtrip.bacptrc");
  std::vector<MemoryAccess> accesses;
  SyntheticTraceGenerator generator(spec2000_by_name("gzip"),
                                    GeneratorConfig{.num_sets = 64, .core = 3}, 5);
  for (int i = 0; i < 5000; ++i) accesses.push_back(generator.next());

  ASSERT_TRUE(write_trace(path, accesses));
  const auto loaded = read_trace(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), accesses.size());
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    EXPECT_EQ((*loaded)[i].block, accesses[i].block) << i;
    EXPECT_EQ((*loaded)[i].core, accesses[i].core) << i;
    EXPECT_EQ((*loaded)[i].is_write, accesses[i].is_write) << i;
  }
  std::remove(path.c_str());
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  const auto path = temp_path("empty.bacptrc");
  ASSERT_TRUE(write_trace(path, {}));
  const auto loaded = read_trace(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileIsNullopt) {
  EXPECT_FALSE(read_trace(temp_path("does-not-exist.bacptrc")).has_value());
}

TEST(TraceIo, BadMagicIsRejected) {
  const auto path = temp_path("badmagic.bacptrc");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTATRACEFILE and some padding bytes";
  }
  EXPECT_FALSE(read_trace(path).has_value());
  std::remove(path.c_str());
}

TEST(TraceIo, TruncatedRecordsAreRejected) {
  const auto path = temp_path("truncated.bacptrc");
  std::vector<MemoryAccess> accesses(100);
  for (std::uint64_t i = 0; i < accesses.size(); ++i) accesses[i].block = i;
  ASSERT_TRUE(write_trace(path, accesses));
  // Chop the last few bytes off.
  {
    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(), static_cast<std::streamsize>(contents.size() - 5));
  }
  EXPECT_FALSE(read_trace(path).has_value());
  std::remove(path.c_str());
}

TEST(TraceIo, WriteBitAndCoreSurviveEncoding) {
  const auto path = temp_path("flags.bacptrc");
  std::vector<MemoryAccess> accesses;
  for (CoreId core = 0; core < 32; ++core) {
    accesses.push_back({0xABCDEF00ull + core, core, core % 2 == 0});
  }
  ASSERT_TRUE(write_trace(path, accesses));
  const auto loaded = read_trace(path);
  ASSERT_TRUE(loaded.has_value());
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    EXPECT_EQ((*loaded)[i].core, accesses[i].core);
    EXPECT_EQ((*loaded)[i].is_write, accesses[i].is_write);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bacp::trace
