#include "audit/audit.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "audit/pool_audit.hpp"
#include "audit/sampling_audit.hpp"
#include "audit/shard_audit.hpp"
#include "audit/snapshot_audit.hpp"
#include "audit/system_audit.hpp"
#include "cache/set_assoc_cache.hpp"
#include "snapshot/codec.hpp"
#include "snapshot/snapshot.hpp"
#include "coherence/moesi.hpp"
#include "noc/noc.hpp"
#include "nuca/dnuca_cache.hpp"
#include "partition/static_policies.hpp"
#include "sched/sched_audit.hpp"
#include "sched/service.hpp"
#include "sim/system.hpp"
#include "trace/mix.hpp"
#include "trace/spec2000.hpp"

// Mutation kill-tests: each test plants exactly one corruption through a
// TestPeer (the structures' second friend, next to the auditor itself) and
// asserts the auditor reports a violation with the exact structure and
// field — not merely "something failed". A clean-structure test per auditor
// guards against the dual failure mode of an auditor that cries wolf.

namespace bacp::cache {
/// Test-only backdoor into SetAssocCache internals (friend of the class).
struct CacheTestPeer {
  static std::uint8_t& link(SetAssocCache& cache, std::uint32_t set, WayIndex way,
                            std::size_t offset) {
    return cache.links_[cache.link_index(set, way) + offset];
  }
  static std::uint64_t& valid_mask(SetAssocCache& cache, std::uint32_t set) {
    return cache.meta_[set].valid;
  }
  static std::uint64_t& dirty_mask(SetAssocCache& cache, std::uint32_t set) {
    return cache.meta_[set].dirty;
  }
  static CoreId& allocator(SetAssocCache& cache, std::uint32_t set, WayIndex way) {
    return cache.allocators_[cache.line_index(set, way)];
  }
  static BlockAddress& tag(SetAssocCache& cache, std::uint32_t set, WayIndex way) {
    return cache.tags_[cache.line_index(set, way)];
  }
  static std::uint64_t& owned_ways(SetAssocCache& cache, CoreId core) {
    return cache.owned_ways_[core];
  }
};
}  // namespace bacp::cache

namespace bacp::nuca {
/// Test-only backdoor into DnucaCache internals (friend of the class).
struct NucaTestPeer {
  using Location = DnucaCache::Location;

  static common::FlatHash64<Location>& residency(DnucaCache& cache) {
    return cache.residency_;
  }
  static cache::SetAssocCache& bank(DnucaCache& cache, BankId id) {
    return cache.banks_[id];
  }
  static std::vector<std::uint32_t>& view_pos(DnucaCache& cache) {
    return cache.view_pos_;
  }
};
}  // namespace bacp::nuca

namespace bacp::coherence {
/// Test-only backdoor into MoesiDirectory internals (friend of the class).
struct DirectoryTestPeer {
  using Entry = MoesiDirectory::Entry;

  static Entry& entry(MoesiDirectory& directory, BlockAddress block) {
    Entry* found = directory.entries_.find(block);
    EXPECT_NE(found, nullptr) << "no directory entry for block " << block;
    return *found;
  }
  static constexpr std::uint8_t no_owner() { return MoesiDirectory::kNoOwner; }
};
}  // namespace bacp::coherence

namespace bacp::audit {
namespace {

using cache::CacheTestPeer;
using cache::SetAssocCache;
using coherence::DirectoryTestPeer;
using coherence::MoesiDirectory;
using nuca::DnucaCache;
using nuca::NucaTestPeer;

/// First violation matching (structure, field), or nullptr.
const Violation* find_violation(const AuditReport& report, Structure structure,
                                const std::string& field) {
  for (const Violation& violation : report.violations) {
    if (violation.structure == structure && violation.field == field) {
      return &violation;
    }
  }
  return nullptr;
}

/// Asserts the report contains a (structure, field) violation and returns it.
const Violation& require_violation(const AuditReport& report, Structure structure,
                                   const std::string& field) {
  const Violation* violation = find_violation(report, structure, field);
  EXPECT_NE(violation, nullptr)
      << "expected a " << to_string(structure) << "/" << field
      << " violation; report: " << (report.ok() ? "clean" : report.to_string());
  static const Violation kEmpty{};
  return violation != nullptr ? *violation : kEmpty;
}

// ---------------------------------------------------------------------------
// SetAssocCache
// ---------------------------------------------------------------------------

SetAssocCache small_cache() {
  SetAssocCache::Config config;
  config.name = "test-cache";
  config.num_sets = 8;
  config.ways = 4;
  config.num_cores = 2;
  SetAssocCache cache(config);
  // A few resident lines across sets, one dirty, from both cores.
  cache.fill(/*block=*/0 * 8 + 0, /*core=*/0, /*dirty=*/false);
  cache.fill(/*block=*/1 * 8 + 0, /*core=*/0, /*dirty=*/true);
  cache.fill(/*block=*/2 * 8 + 3, /*core=*/1, /*dirty=*/false);
  cache.fill(/*block=*/3 * 8 + 3, /*core=*/1, /*dirty=*/false);
  cache.access(/*block=*/0 * 8 + 0, /*core=*/0, /*is_write=*/false);
  return cache;
}

TEST(AuditCache, CleanCachePassesAndCountsChecks) {
  const SetAssocCache cache = small_cache();
  const AuditReport report = audit_cache(cache);
  EXPECT_TRUE(report.ok()) << report.to_string();
  // 8 sets x 4 ways of per-line checks alone exceed this; a tiny count
  // would mean the auditor skipped the structure.
  EXPECT_GT(report.checks, 50u);
}

TEST(AuditCache, KillsBrokenLruLink) {
  SetAssocCache cache = small_cache();
  // Point way 0's next-link back at way 0: whenever the recency walk
  // reaches way 0 it revisits or self-cycles, so the per-set permutation
  // breaks.
  CacheTestPeer::link(cache, 0, 0, 1) = 0;
  const AuditReport report = audit_cache(cache);
  const Violation& violation = require_violation(report, Structure::Cache, "lru_links");
  EXPECT_EQ(violation.set, 0u);
  EXPECT_EQ(violation.object, "test-cache");
}

TEST(AuditCache, KillsDirtyBitOnInvalidLine) {
  SetAssocCache cache = small_cache();
  // Set 5 is empty: forge a dirty bit with no valid line under it.
  CacheTestPeer::dirty_mask(cache, 5) |= 0x2;
  const AuditReport report = audit_cache(cache);
  const Violation& violation = require_violation(report, Structure::Cache, "dirty_mask");
  EXPECT_EQ(violation.set, 5u);
}

TEST(AuditCache, KillsValidBitBeyondWayCount) {
  SetAssocCache cache = small_cache();
  CacheTestPeer::valid_mask(cache, 2) |= std::uint64_t{1} << 7;  // only 4 ways
  const AuditReport report = audit_cache(cache);
  const Violation& violation = require_violation(report, Structure::Cache, "valid_mask");
  EXPECT_EQ(violation.set, 2u);
}

TEST(AuditCache, KillsStaleAllocatorOnInvalidLine) {
  SetAssocCache cache = small_cache();
  // Way 3 of set 0 is invalid; a leftover core id there means invalidate()
  // forgot to reset the allocator column.
  CacheTestPeer::allocator(cache, 0, 3) = 1;
  const AuditReport report = audit_cache(cache);
  const Violation& violation = require_violation(report, Structure::Cache, "allocator");
  EXPECT_EQ(violation.set, 0u);
}

TEST(AuditCache, KillsTagMappedToWrongSet) {
  SetAssocCache cache = small_cache();
  // Set 0 way 0 holds block 0; rewrite the tag to a block whose set index
  // is 3 — a misfiled line that lookups of set 3 would never find.
  CacheTestPeer::tag(cache, 0, 0) = 3;
  const AuditReport report = audit_cache(cache);
  const Violation& violation = require_violation(report, Structure::Cache, "tags");
  EXPECT_EQ(violation.set, 0u);
}

TEST(AuditCache, KillsDesyncedOwnedWaysCache) {
  SetAssocCache cache = small_cache();
  // owned_ways_ is derived from way_masks_; flipping a bit simulates a
  // repartition path that forgot rebuild_owned_ways().
  CacheTestPeer::owned_ways(cache, 0) ^= 0x1;
  const AuditReport report = audit_cache(cache);
  const Violation& violation = require_violation(report, Structure::Cache, "owned_ways");
  EXPECT_EQ(violation.set, 0u);  // set column carries the core id here
}

// ---------------------------------------------------------------------------
// DnucaCache
// ---------------------------------------------------------------------------

nuca::DnucaConfig small_dnuca_config() {
  nuca::DnucaConfig config;
  config.geometry.num_cores = 4;
  config.geometry.num_banks = 8;
  config.geometry.ways_per_bank = 4;
  config.sets_per_bank = 16;
  config.aggregation = nuca::AggregationKind::Parallel;
  return config;
}

noc::NocConfig small_noc_config() {
  noc::NocConfig config;
  config.num_cores = 4;
  config.num_banks = 8;
  return config;
}

BlockAddress dnuca_block(std::uint32_t set, std::uint64_t tag) {
  return tag * 16 + set;
}

void populate(DnucaCache& cache) {
  Cycle now = 0;
  for (CoreId core = 0; core < 4; ++core) {
    for (std::uint64_t i = 0; i < 12; ++i) {
      cache.access(dnuca_block(static_cast<std::uint32_t>(i % 16), 100 + core * 32 + i),
                   core, (i % 3) == 0, now);
      now += 10;
    }
  }
}

TEST(AuditNuca, CleanDnucaPassesAndCountsChecks) {
  noc::Noc noc(small_noc_config());
  DnucaCache cache(small_dnuca_config(), noc);
  cache.apply_assignment(partition::equal_partition(cache.config().geometry).assignment);
  populate(cache);
  const AuditReport report = audit_nuca(cache);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checks, 500u);
}

TEST(AuditNuca, KillsMissingResidencyEntry) {
  noc::Noc noc(small_noc_config());
  DnucaCache cache(small_dnuca_config(), noc);
  cache.apply_assignment(partition::equal_partition(cache.config().geometry).assignment);
  populate(cache);
  // Drop one resident block from the index: the line is still in its bank,
  // but every future lookup would miss it (a silent duplicate-fill bug).
  const BlockAddress victim = dnuca_block(0, 100);
  ASSERT_TRUE(cache.resident(victim));
  ASSERT_TRUE(NucaTestPeer::residency(cache).erase(victim));
  const AuditReport report = audit_nuca(cache);
  const Violation& violation =
      require_violation(report, Structure::Nuca, "residency_index");
  EXPECT_NE(violation.bank, kNoIndex);
}

TEST(AuditNuca, KillsResidencyEntryPointingAtWrongWay) {
  noc::Noc noc(small_noc_config());
  DnucaCache cache(small_dnuca_config(), noc);
  cache.apply_assignment(partition::equal_partition(cache.config().geometry).assignment);
  populate(cache);
  const BlockAddress victim = dnuca_block(0, 100);
  ASSERT_TRUE(cache.resident(victim));
  auto* location = NucaTestPeer::residency(cache).find(victim);
  ASSERT_NE(location, nullptr);
  location->way = static_cast<std::uint16_t>((location->way + 1) % 4);
  const AuditReport report = audit_nuca(cache);
  require_violation(report, Structure::Nuca, "residency_index");
}

TEST(AuditNuca, KillsStaleResidencyEntryForEvictedBlock) {
  noc::Noc noc(small_noc_config());
  DnucaCache cache(small_dnuca_config(), noc);
  cache.apply_assignment(partition::equal_partition(cache.config().geometry).assignment);
  populate(cache);
  // Index an address no bank holds — the signature of an eviction path
  // that forgot to erase the index entry.
  NucaTestPeer::Location bogus;
  bogus.bank = 0;
  bogus.way = 0;
  NucaTestPeer::residency(cache).insert_or_assign(dnuca_block(7, 9999), bogus);
  const AuditReport report = audit_nuca(cache);
  require_violation(report, Structure::Nuca, "residency_index");
}

TEST(AuditNuca, KillsDesyncedViewPositionTable) {
  noc::Noc noc(small_noc_config());
  DnucaCache cache(small_dnuca_config(), noc);
  cache.apply_assignment(partition::equal_partition(cache.config().geometry).assignment);
  populate(cache);
  // view_pos_ is the flattened inverse of views_; corrupt one entry.
  NucaTestPeer::view_pos(cache)[0] += 1;
  const AuditReport report = audit_nuca(cache);
  require_violation(report, Structure::Nuca, "view_pos");
}

// ---------------------------------------------------------------------------
// MoesiDirectory
// ---------------------------------------------------------------------------

TEST(AuditDirectory, CleanDirectoryPassesAndCountsChecks) {
  MoesiDirectory directory(4);
  directory.on_l1_read_fill(10, 0);
  directory.on_l1_read_fill(10, 1);   // S + S
  directory.on_l1_write_fill(20, 2);  // M
  directory.on_l1_read_fill(30, 3);   // E
  directory.on_l1_write_fill(40, 1);
  directory.on_l1_read_fill(40, 0);   // O + S
  const AuditReport report = audit_directory(directory);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checks, 8u);
}

TEST(AuditDirectory, KillsForgedSecondCopyInModifiedState) {
  MoesiDirectory directory(4);
  directory.on_l1_write_fill(20, 2);  // core 2 Modified, sole copy
  // Forge a second sharer while the owner believes it is Modified: two
  // cores could now observe divergent data.
  DirectoryTestPeer::entry(directory, 20).sharers |= core_bit(0);
  const AuditReport report = audit_directory(directory);
  const Violation& violation =
      require_violation(report, Structure::Directory, "exclusive_sharers");
  EXPECT_EQ(violation.set, 20u);  // set column carries the block address
}

TEST(AuditDirectory, KillsOwnerWithoutSharerBit) {
  MoesiDirectory directory(4);
  directory.on_l1_write_fill(20, 2);
  DirectoryTestPeer::entry(directory, 20).sharers = core_bit(1);  // owner 2 dropped
  const AuditReport report = audit_directory(directory);
  require_violation(report, Structure::Directory, "owner");
}

TEST(AuditDirectory, KillsOwnershipStateWithoutOwner) {
  MoesiDirectory directory(4);
  directory.on_l1_write_fill(20, 2);
  DirectoryTestPeer::entry(directory, 20).owner = DirectoryTestPeer::no_owner();
  const AuditReport report = audit_directory(directory);
  require_violation(report, Structure::Directory, "owner_state");
}

TEST(AuditDirectory, KillsEmptySharerMask) {
  MoesiDirectory directory(4);
  directory.on_l1_read_fill(10, 0);
  DirectoryTestPeer::entry(directory, 10).sharers = 0;
  const AuditReport report = audit_directory(directory);
  require_violation(report, Structure::Directory, "sharers");
}

TEST(AuditDirectory, KillsSharerBeyondCoreCount) {
  MoesiDirectory directory(4);
  directory.on_l1_read_fill(10, 0);
  DirectoryTestPeer::entry(directory, 10).sharers |= core_bit(7);  // only 4 cores
  const AuditReport report = audit_directory(directory);
  require_violation(report, Structure::Directory, "sharers");
}

// ---------------------------------------------------------------------------
// Partition plans
// ---------------------------------------------------------------------------

TEST(AuditPartition, CleanEqualPlanPasses) {
  partition::CmpGeometry geometry;
  geometry.num_cores = 4;
  geometry.num_banks = 8;
  geometry.ways_per_bank = 4;
  const auto plan = partition::equal_partition(geometry);
  const AuditReport report =
      audit_partition(geometry, plan.assignment, &plan.allocation);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checks, 30u);
}

TEST(AuditPartition, CleanSharedPlanPasses) {
  partition::CmpGeometry geometry;
  geometry.num_cores = 4;
  geometry.num_banks = 8;
  geometry.ways_per_bank = 4;
  const auto plan = partition::no_partition(geometry);
  const AuditReport report =
      audit_partition(geometry, plan.assignment, &plan.allocation);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(AuditPartition, KillsOversubscribedCore) {
  partition::CmpGeometry geometry;
  geometry.num_cores = 4;
  geometry.num_banks = 8;
  geometry.ways_per_bank = 4;
  auto plan = partition::equal_partition(geometry);
  // Hand every way of every bank to core 0: 32 of 32 ways, far beyond the
  // paper's 9/16 cap (18 ways). Keep the bank lists and allocation in sync
  // so only the capacity rule is violated.
  for (auto& bank_masks : plan.assignment.way_masks) {
    for (CoreMask& mask : bank_masks) mask = core_bit(0);
  }
  plan.assignment.banks_of_core.assign(geometry.num_cores, {});
  for (BankId bank = 0; bank < geometry.num_banks; ++bank) {
    plan.assignment.banks_of_core[0].push_back(bank);
  }
  plan.allocation.ways_per_core = {32, 0, 0, 0};
  const AuditReport report =
      audit_partition(geometry, plan.assignment, &plan.allocation);
  const Violation& violation = require_violation(report, Structure::Partition, "max_cap");
  EXPECT_EQ(violation.set, 0u);  // the oversubscribed core
}

TEST(AuditPartition, KillsWaySumAllocationMismatch) {
  partition::CmpGeometry geometry;
  geometry.num_cores = 4;
  geometry.num_banks = 8;
  geometry.ways_per_bank = 4;
  auto plan = partition::equal_partition(geometry);
  plan.allocation.ways_per_core[1] += 1;  // claims a way the masks never grant
  const AuditReport report =
      audit_partition(geometry, plan.assignment, &plan.allocation);
  const Violation& violation = require_violation(report, Structure::Partition, "way_sum");
  EXPECT_EQ(violation.set, 1u);
}

TEST(AuditPartition, KillsOrphanedWay) {
  partition::CmpGeometry geometry;
  geometry.num_cores = 4;
  geometry.num_banks = 8;
  geometry.ways_per_bank = 4;
  auto plan = partition::equal_partition(geometry);
  plan.assignment.way_masks[3][2] = 0;  // capacity silently lost
  const AuditReport report = audit_partition(geometry, plan.assignment, nullptr);
  const Violation& violation =
      require_violation(report, Structure::Partition, "way_masks");
  EXPECT_EQ(violation.bank, 3u);
}

TEST(AuditPartition, KillsBankListDesync) {
  partition::CmpGeometry geometry;
  geometry.num_cores = 4;
  geometry.num_banks = 8;
  geometry.ways_per_bank = 4;
  auto plan = partition::equal_partition(geometry);
  ASSERT_FALSE(plan.assignment.banks_of_core[2].empty());
  plan.assignment.banks_of_core[2].pop_back();  // owns ways there, list disagrees
  const AuditReport report = audit_partition(geometry, plan.assignment, nullptr);
  require_violation(report, Structure::Partition, "banks_of_core");
}

// ---------------------------------------------------------------------------
// Cross-structure (manual SystemView)
// ---------------------------------------------------------------------------

/// A hand-built three-structure hierarchy the cross-checks can bite into:
/// per-core single-core L1s, the DNUCA L2, and the directory, kept
/// consistent the way sim::System keeps them.
struct MiniHierarchy {
  noc::Noc noc;
  DnucaCache l2;
  std::vector<SetAssocCache> l1s;
  MoesiDirectory directory;

  MiniHierarchy()
      : noc(small_noc_config()),
        l2(small_dnuca_config(), noc),
        directory(4) {
    l2.apply_assignment(partition::equal_partition(l2.config().geometry).assignment);
    for (CoreId core = 0; core < 4; ++core) {
      SetAssocCache::Config config;
      config.name = "L1.core" + std::to_string(core);
      config.num_sets = 4;
      config.ways = 2;
      config.num_cores = 1;
      l1s.emplace_back(config);
    }
    Cycle now = 0;
    for (CoreId core = 0; core < 4; ++core) {
      for (std::uint64_t i = 0; i < 4; ++i) {
        const BlockAddress block = dnuca_block(static_cast<std::uint32_t>(i), 7 + core);
        l2.access(block, core, false, now);
        if (!l1s[core].probe(block)) {
          l1s[core].fill(block, 0, false);
          directory.on_l1_read_fill(block, core);
        }
        now += 10;
      }
    }
  }

  SystemView view() {
    SystemView result;
    result.l2 = &l2;
    result.l1s = {l1s.data(), l1s.size()};
    result.directory = &directory;
    return result;
  }
};

TEST(AuditCross, CleanHierarchyPasses) {
  MiniHierarchy hierarchy;
  const AuditReport report = audit_system_components(hierarchy.view());
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checks, 100u);
}

TEST(AuditCross, KillsInclusionViolation) {
  MiniHierarchy hierarchy;
  // Evict a block from the L2 behind the directory's back while core 0's
  // L1 still holds it (keeping the L2's own index consistent, so only the
  // cross-structure inclusion check can see the hole).
  const BlockAddress block = dnuca_block(0, 7);
  ASSERT_TRUE(hierarchy.l1s[0].probe(block));
  const BankId bank = hierarchy.l2.bank_of(block);
  ASSERT_NE(bank, kInvalidBank);
  NucaTestPeer::bank(hierarchy.l2, bank).invalidate(block);
  ASSERT_TRUE(NucaTestPeer::residency(hierarchy.l2).erase(block));
  const AuditReport report = audit_system_components(hierarchy.view());
  const Violation& violation = require_violation(report, Structure::Cross, "inclusion");
  EXPECT_EQ(violation.set, 0u);  // the core whose L1 lost its backing copy
}

TEST(AuditCross, KillsUntrackedL1Line) {
  MiniHierarchy hierarchy;
  // Drop core 1's sharer bit for a block its L1 still holds: the directory
  // would never invalidate that copy again.
  const BlockAddress block = dnuca_block(0, 8);
  ASSERT_TRUE(hierarchy.l1s[1].probe(block));
  hierarchy.directory.on_l1_evict(block, 1, false);
  const AuditReport report = audit_system_components(hierarchy.view());
  require_violation(report, Structure::Cross, "sharers");
  require_violation(report, Structure::Cross, "copy_tokens");
}

TEST(AuditCross, KillsForgedSharerToken) {
  MiniHierarchy hierarchy;
  // Forge a sharer bit for a core whose L1 holds nothing: token conservation
  // (sum of sharer bits == total L1 lines) breaks upward.
  const BlockAddress block = dnuca_block(0, 7);  // core 0's block, S state
  DirectoryTestPeer::entry(hierarchy.directory, block).sharers |= core_bit(3);
  const AuditReport report = audit_system_components(hierarchy.view());
  require_violation(report, Structure::Cross, "sharers");
  require_violation(report, Structure::Cross, "copy_tokens");
}

TEST(AuditCross, KillsPartitionAllocationMismatch) {
  MiniHierarchy hierarchy;
  partition::Allocation allocation =
      partition::equal_partition(hierarchy.l2.config().geometry).allocation;
  allocation.ways_per_core[2] -= 1;  // installed masks grant one more
  SystemView view = hierarchy.view();
  view.allocation = &allocation;
  const AuditReport report = audit_system_components(view);
  const Violation& violation = require_violation(report, Structure::Cross, "way_sum");
  EXPECT_EQ(violation.set, 2u);
}

// ---------------------------------------------------------------------------
// Whole-system smoke: a real simulation passes its own audit.
// ---------------------------------------------------------------------------

TEST(AuditSystem, RealSimulationPassesFullAudit) {
  sim::SystemConfig config = sim::SystemConfig::baseline();
  config.policy = sim::PolicyKind::BankAware;
  config.epoch_cycles = 400'000;
  config.finalize();
  sim::System system(config, trace::mix_from_names({"mcf", "eon", "art", "gcc",
                                                    "bzip2", "sixtrack", "facerec",
                                                    "gzip"}));
  system.warm_up(100'000);
  system.run(200'000);
  const AuditReport report = audit_system(system);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checks, 1000u);
}

// ---------------------------------------------------------------------------
// Snapshot framing (mutation kill-tests: one corruption each, asserting the
// exact structure/field the auditor must report)
// ---------------------------------------------------------------------------

snapshot::SystemSnapshot small_snapshot() {
  snapshot::SnapshotBuilder builder(/*config_digest=*/7);
  {
    auto writer = builder.begin_section(snapshot::SectionId::Noc);
    writer.u64(11);
    writer.u64(13);
  }
  {
    auto writer = builder.begin_section(snapshot::SectionId::Dram);
    writer.str("dram-state");
  }
  return builder.finish();
}

TEST(SnapshotAudit, CleanSnapshotPasses) {
  const auto report = audit_snapshot(small_snapshot());
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checks, 0u);
}

TEST(SnapshotAudit, FlagsTruncatedBuffer) {
  auto snapshot = small_snapshot();
  snapshot.bytes.resize(snapshot::kHeaderBytes - 1);
  require_violation(audit_snapshot(snapshot), Structure::Snapshot, "min_size");
}

TEST(SnapshotAudit, FlagsTruncatedSectionTable) {
  auto snapshot = small_snapshot();
  snapshot.bytes.resize(snapshot::kHeaderBytes + snapshot::kTableEntryBytes / 2);
  require_violation(audit_snapshot(snapshot), Structure::Snapshot, "table_bounds");
}

TEST(SnapshotAudit, FlagsCorruptedMagic) {
  auto snapshot = small_snapshot();
  snapshot.bytes[0] ^= 0xFF;
  require_violation(audit_snapshot(snapshot), Structure::Snapshot, "magic");
}

TEST(SnapshotAudit, FlagsVersionSkew) {
  auto snapshot = small_snapshot();
  snapshot.bytes[8] += 1;  // version field sits right after the u64 magic
  require_violation(audit_snapshot(snapshot), Structure::Snapshot, "version");
}

TEST(SnapshotAudit, FlagsCorruptedSectionPayload) {
  auto snapshot = small_snapshot();
  snapshot.bytes.back() ^= 0x01;  // last payload byte, checksummed
  const auto report = audit_snapshot(snapshot);
  const Violation& violation =
      require_violation(report, Structure::Snapshot, "checksum");
  EXPECT_NE(violation.object.find("dram"), std::string::npos);
}

TEST(SnapshotAudit, FlagsTrailingBytes) {
  auto snapshot = small_snapshot();
  snapshot.bytes.push_back(0);
  require_violation(audit_snapshot(snapshot), Structure::Snapshot, "trailing_bytes");
}

TEST(SnapshotAudit, FlagsOversizedSectionCount) {
  auto snapshot = small_snapshot();
  snapshot.bytes[12] = 0xFF;  // section count field
  require_violation(audit_snapshot(snapshot), Structure::Snapshot, "section_count");
}

// ---------------------------------------------------------------------------
// SystemPool lease bookkeeping
// ---------------------------------------------------------------------------

PoolBookkeepingInput healthy_pool() {
  // 5 acquires (2 constructions, 3 reuses), one lease still out, one System
  // parked idle: outstanding + idle == misses holds.
  PoolBookkeepingInput input;
  input.hits = 3;
  input.misses = 2;
  input.outstanding = 1;
  input.idle = 1;
  return input;
}

TEST(PoolAudit, CleanBookkeepingPassesAndCountsChecks) {
  const auto report = audit_pool_bookkeeping(healthy_pool());
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checks, 0u);
}

TEST(PoolAudit, FreshPoolPasses) {
  const auto report = audit_pool_bookkeeping(PoolBookkeepingInput{});
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(PoolAudit, KillsDroppedLease) {
  // A lease destroyed without returning its System: outstanding decremented
  // nowhere, the System gone — conservation breaks.
  auto input = healthy_pool();
  input.outstanding = 0;
  require_violation(audit_pool_bookkeeping(input), Structure::Pool, "conservation");
}

TEST(PoolAudit, KillsDoubleReturnedSystem) {
  auto input = healthy_pool();
  input.idle += 1;  // one System parked twice
  require_violation(audit_pool_bookkeeping(input), Structure::Pool, "conservation");
}

TEST(PoolAudit, KillsHitsWithoutAnyConstruction) {
  PoolBookkeepingInput input;
  input.hits = 4;  // served from an idle list no miss ever populated
  require_violation(audit_pool_bookkeeping(input), Structure::Pool,
                    "hit_provenance");
}

TEST(PoolAudit, KillsMoreLeasesOutThanAcquires) {
  PoolBookkeepingInput input;
  input.misses = 2;
  input.hits = 1;
  input.outstanding = 4;
  require_violation(audit_pool_bookkeeping(input), Structure::Pool, "lease_bound");
}

TEST(AuditReportTest, ViolationRendersAllCoordinates) {
  Violation violation;
  violation.structure = Structure::Nuca;
  violation.object = "dnuca";
  violation.field = "residency_index";
  violation.bank = 3;
  violation.set = 12;
  violation.expected = "{3,1}";
  violation.actual = "{3,2}";
  EXPECT_EQ(violation.to_string(),
            "structure=nuca object=dnuca field=residency_index bank=3 set=12: "
            "expected {3,1}, actual {3,2}");
}

TEST(AuditReportTest, MergeAccumulatesChecksAndViolations) {
  AuditReport a;
  a.checks = 5;
  a.violations.push_back({});
  AuditReport b;
  b.checks = 7;
  b.violations.push_back({});
  b.violations.push_back({});
  a.merge(std::move(b));
  EXPECT_EQ(a.checks, 12u);
  EXPECT_EQ(a.violations.size(), 3u);
  EXPECT_FALSE(a.ok());
}

}  // namespace
}  // namespace bacp::audit

namespace bacp::sched {
/// Test-only backdoor into Service internals (friend of the class).
struct ServiceTestPeer {
  static std::vector<std::uint64_t>& slot_tenant(Service& service) {
    return service.slot_tenant_;
  }
  static CoreId& slot(Service& service, std::uint64_t id) {
    return service.tenants_.at(id).slot;
  }
  static WayCount& ways(Service& service, std::uint64_t id) {
    return service.tenants_.at(id).ways;
  }
  static std::size_t& workload(Service& service, std::uint64_t id) {
    return service.tenants_.at(id).workload;
  }
  static void set_slot_active(Service& service, CoreId slot, bool active) {
    service.system_.set_core_active(slot, active);
  }
  static void drop_tenant(Service& service, std::uint64_t id) {
    service.tenants_.erase(id);
  }
};
}  // namespace bacp::sched

namespace bacp::audit {
namespace {

using sched::Service;
using sched::ServiceTestPeer;

/// Two live tenants on slots 0 and 1, a couple of epochs of history.
Service small_service() {
  sched::ServiceConfig config;
  config.system.epoch_cycles = 10'000;
  config.system.seed = 13;
  config.finalize();
  Service service(config, trace::mix_from_names({"gzip", "mesa", "eon", "crafty",
                                                 "perlbmk", "gap", "vortex", "bzip2"}));
  service.admit({1, "mcf"});
  service.admit({2, "swim"});
  service.step(2);
  return service;
}

TEST(AuditSched, CleanServicePassesAndCountsChecks) {
  const Service service = small_service();
  const AuditReport report = sched::audit_sched(service);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checks, 0u);
}

TEST(AuditSched, KillsOrphanedActiveSlotAfterEviction) {
  Service service = small_service();
  service.evict(2);
  // Resurrect the freed slot's activity behind the scheduler's back — the
  // exact "orphaned allocation after evict" failure the audit exists for.
  ServiceTestPeer::set_slot_active(service, 1, true);
  require_violation(sched::audit_sched(service), Structure::Sched,
                    "orphaned_active_slot");
}

TEST(AuditSched, KillsDeactivatedLiveTenant) {
  Service service = small_service();
  ServiceTestPeer::set_slot_active(service, 0, false);
  require_violation(sched::audit_sched(service), Structure::Sched, "tenant_active");
}

TEST(AuditSched, KillsSlotTableDesync) {
  Service service = small_service();
  ServiceTestPeer::slot_tenant(service)[0] = 2;  // both slots now claim tenant 2
  require_violation(sched::audit_sched(service), Structure::Sched, "slot_ownership");
}

TEST(AuditSched, KillsTenantPointingAtForeignSlot) {
  Service service = small_service();
  ServiceTestPeer::slot(service, 1) = 5;  // a free slot tenant 1 does not own
  require_violation(sched::audit_sched(service), Structure::Sched, "slot_ownership");
}

TEST(AuditSched, KillsOutOfRangeSlot) {
  Service service = small_service();
  ServiceTestPeer::slot(service, 1) = 64;
  require_violation(sched::audit_sched(service), Structure::Sched, "tenant_slot_range");
}

TEST(AuditSched, KillsStaleSlotOwner) {
  Service service = small_service();
  ServiceTestPeer::drop_tenant(service, 2);  // slot 1 now names a ghost
  require_violation(sched::audit_sched(service), Structure::Sched,
                    "orphaned_slot_owner");
}

TEST(AuditSched, KillsAllocationDrift) {
  Service service = small_service();
  ServiceTestPeer::ways(service, 1) += 1;
  require_violation(sched::audit_sched(service), Structure::Sched,
                    "allocation_agreement");
}

TEST(AuditSched, KillsWorkloadRebindingBehindTheScheduler) {
  Service service = small_service();
  ServiceTestPeer::workload(service, 1) += 1;
  require_violation(sched::audit_sched(service), Structure::Sched, "workload_binding");
}

// ---------------------------------------------------------------------------
// Monte-Carlo shard merge
// ---------------------------------------------------------------------------

/// A legal 3-shard split of a 10-trial sweep (shard k owns trial t iff
/// t % 3 == k); each kill-test below plants exactly one corruption.
std::vector<ShardMergeInput> clean_shard_set() {
  std::vector<ShardMergeInput> shards(3);
  for (std::uint32_t k = 0; k < 3; ++k) {
    shards[k].shards = 3;
    shards[k].shard_id = k;
    shards[k].trials = 10;
    shards[k].config_digest = 0xD16E57;
    for (std::uint64_t trial = k; trial < 10; trial += 3) {
      shards[k].trial_indices.push_back(trial);
    }
  }
  return shards;
}

TEST(AuditShardMerge, CleanShardSetPassesAndCountsChecks) {
  const auto shards = clean_shard_set();
  const AuditReport report = audit_shard_merge(shards);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checks, 0u);
}

TEST(AuditShardMerge, EmptySetIsRefused) {
  require_violation(audit_shard_merge({}), Structure::Shard, "shard_count");
}

TEST(AuditShardMerge, KillsDisagreeingShardCounts) {
  auto shards = clean_shard_set();
  shards[1].shards = 4;  // slice cut from a different split
  require_violation(audit_shard_merge(shards), Structure::Shard, "shards_agreement");
}

TEST(AuditShardMerge, KillsDisagreeingTrialCounts) {
  auto shards = clean_shard_set();
  shards[2].trials = 12;
  require_violation(audit_shard_merge(shards), Structure::Shard, "trials_agreement");
}

TEST(AuditShardMerge, KillsDisagreeingConfigDigests) {
  auto shards = clean_shard_set();
  shards[1].config_digest ^= 1;  // same shape, different sweep parameters
  require_violation(audit_shard_merge(shards), Structure::Shard, "config_digest");
}

TEST(AuditShardMerge, KillsMissingShard) {
  auto shards = clean_shard_set();
  shards.pop_back();
  require_violation(audit_shard_merge(shards), Structure::Shard, "shard_set_size");
}

TEST(AuditShardMerge, KillsShardIdBeyondCount) {
  auto shards = clean_shard_set();
  shards[2].shard_id = 3;
  require_violation(audit_shard_merge(shards), Structure::Shard, "shard_id_range");
}

TEST(AuditShardMerge, KillsDuplicatedShard) {
  auto shards = clean_shard_set();
  shards[2] = shards[0];  // the same slice merged twice = double-counted mixes
  require_violation(audit_shard_merge(shards), Structure::Shard, "shard_id_unique");
}

TEST(AuditShardMerge, KillsTrialIndexBeyondSweep) {
  auto shards = clean_shard_set();
  shards[1].trial_indices.back() = 13;  // 13 % 3 == 1: ownership alone misses it
  require_violation(audit_shard_merge(shards), Structure::Shard, "trial_range");
}

TEST(AuditShardMerge, KillsForeignTrialInShard) {
  auto shards = clean_shard_set();
  shards[0].trial_indices[1] = 4;  // trial 4 belongs to shard 1
  require_violation(audit_shard_merge(shards), Structure::Shard, "trial_ownership");
}

TEST(AuditShardMerge, KillsDuplicatedTrialWithinShard) {
  auto shards = clean_shard_set();
  shards[0].trial_indices = {0, 3, 3, 9};  // still 4 entries, still owned
  require_violation(audit_shard_merge(shards), Structure::Shard, "trial_order");
}

TEST(AuditShardMerge, KillsDroppedTrial) {
  auto shards = clean_shard_set();
  shards[1].trial_indices.pop_back();  // shard 1 silently lost trial 7
  require_violation(audit_shard_merge(shards), Structure::Shard, "shard_coverage");
}

// ---------------------------------------------------------------------------
// Sampling-plan legality
// ---------------------------------------------------------------------------

/// A clean plan: 6 intervals, medoids {1, 4}, intervals 0-2 in slot 0 and
/// 3-5 in slot 1.
SamplingPlanInput clean_sampling_plan() {
  SamplingPlanInput plan;
  plan.num_intervals = 6;
  plan.k = 2;
  plan.medoids = {1, 4};
  plan.assignment = {0, 0, 0, 1, 1, 1};
  plan.weights = {3, 3};
  return plan;
}

TEST(AuditSampling, CleanPlanPassesAndCountsChecks) {
  const AuditReport report = audit_sampling_plan(clean_sampling_plan());
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checks, 0u);
}

TEST(AuditSampling, KillsEmptyPlan) {
  auto plan = clean_sampling_plan();
  plan.num_intervals = 0;
  require_violation(audit_sampling_plan(plan), Structure::Sampling, "interval_count");
}

TEST(AuditSampling, KillsKBeyondIntervalCount) {
  auto plan = clean_sampling_plan();
  plan.k = 7;
  require_violation(audit_sampling_plan(plan), Structure::Sampling, "k_range");
}

TEST(AuditSampling, KillsMedoidCountMismatch) {
  auto plan = clean_sampling_plan();
  plan.medoids.push_back(5);  // three medoids, k still 2
  require_violation(audit_sampling_plan(plan), Structure::Sampling, "medoid_set_size");
}

TEST(AuditSampling, KillsOutOfRangeMedoid) {
  auto plan = clean_sampling_plan();
  plan.medoids[1] = 6;  // intervals are 0..5
  const AuditReport report = audit_sampling_plan(plan);
  const Violation& violation =
      require_violation(report, Structure::Sampling, "medoid_range");
  EXPECT_EQ(violation.set, 1u);
}

TEST(AuditSampling, KillsUnorderedMedoids) {
  auto plan = clean_sampling_plan();
  plan.medoids = {4, 1};
  plan.assignment = {1, 1, 1, 0, 0, 0};
  require_violation(audit_sampling_plan(plan), Structure::Sampling, "medoid_order");
}

TEST(AuditSampling, KillsAssignmentSizeMismatch) {
  auto plan = clean_sampling_plan();
  plan.assignment.pop_back();  // one interval left unassigned
  require_violation(audit_sampling_plan(plan), Structure::Sampling, "assignment_size");
}

TEST(AuditSampling, KillsAssignmentToMissingSlot) {
  auto plan = clean_sampling_plan();
  plan.assignment[5] = 2;  // only slots 0 and 1 exist
  require_violation(audit_sampling_plan(plan), Structure::Sampling, "assignment_range");
}

TEST(AuditSampling, KillsMedoidAssignedToForeignCluster) {
  auto plan = clean_sampling_plan();
  plan.assignment[4] = 0;  // medoid 4 defected to slot 0
  plan.weights = {4, 2};   // keep weights honest so only the defect fires
  require_violation(audit_sampling_plan(plan), Structure::Sampling,
                    "medoid_self_assignment");
}

TEST(AuditSampling, KillsWeightCountMismatch) {
  auto plan = clean_sampling_plan();
  plan.weights.pop_back();
  require_violation(audit_sampling_plan(plan), Structure::Sampling, "weight_set_size");
}

TEST(AuditSampling, KillsWeightPopulationMismatch) {
  auto plan = clean_sampling_plan();
  plan.weights = {2, 4};  // populations are 3 and 3
  const AuditReport report = audit_sampling_plan(plan);
  const Violation& violation =
      require_violation(report, Structure::Sampling, "weight_match");
  EXPECT_EQ(violation.set, 0u);
}

}  // namespace
}  // namespace bacp::audit
