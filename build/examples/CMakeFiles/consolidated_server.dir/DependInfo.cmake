
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/consolidated_server.cpp" "examples/CMakeFiles/consolidated_server.dir/consolidated_server.cpp.o" "gcc" "examples/CMakeFiles/consolidated_server.dir/consolidated_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/bacp_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bacp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/bacp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/bacp_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bacp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nuca/CMakeFiles/bacp_nuca.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/bacp_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/msa/CMakeFiles/bacp_msa.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bacp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/bacp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/bacp_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bacp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
