# Empty compiler generated dependencies file for epoch_dynamics.
# This may be replaced when dependencies are built.
