file(REMOVE_RECURSE
  "CMakeFiles/epoch_dynamics.dir/epoch_dynamics.cpp.o"
  "CMakeFiles/epoch_dynamics.dir/epoch_dynamics.cpp.o.d"
  "epoch_dynamics"
  "epoch_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epoch_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
