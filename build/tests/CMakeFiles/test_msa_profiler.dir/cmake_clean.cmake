file(REMOVE_RECURSE
  "CMakeFiles/test_msa_profiler.dir/test_msa_profiler.cpp.o"
  "CMakeFiles/test_msa_profiler.dir/test_msa_profiler.cpp.o.d"
  "test_msa_profiler"
  "test_msa_profiler.pdb"
  "test_msa_profiler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msa_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
