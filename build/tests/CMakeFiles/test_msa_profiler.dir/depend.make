# Empty dependencies file for test_msa_profiler.
# This may be replaced when dependencies are built.
