file(REMOVE_RECURSE
  "CMakeFiles/test_bank_aware.dir/test_bank_aware.cpp.o"
  "CMakeFiles/test_bank_aware.dir/test_bank_aware.cpp.o.d"
  "test_bank_aware"
  "test_bank_aware.pdb"
  "test_bank_aware[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bank_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
