# Empty compiler generated dependencies file for test_bank_aware.
# This may be replaced when dependencies are built.
