# Empty dependencies file for test_nuca.
# This may be replaced when dependencies are built.
