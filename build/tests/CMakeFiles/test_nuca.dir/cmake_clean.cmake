file(REMOVE_RECURSE
  "CMakeFiles/test_nuca.dir/test_nuca.cpp.o"
  "CMakeFiles/test_nuca.dir/test_nuca.cpp.o.d"
  "test_nuca"
  "test_nuca.pdb"
  "test_nuca[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nuca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
