# Empty compiler generated dependencies file for test_partial_tag.
# This may be replaced when dependencies are built.
