file(REMOVE_RECURSE
  "CMakeFiles/test_partial_tag.dir/test_partial_tag.cpp.o"
  "CMakeFiles/test_partial_tag.dir/test_partial_tag.cpp.o.d"
  "test_partial_tag"
  "test_partial_tag.pdb"
  "test_partial_tag[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partial_tag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
