file(REMOVE_RECURSE
  "CMakeFiles/test_partition_types.dir/test_partition_types.cpp.o"
  "CMakeFiles/test_partition_types.dir/test_partition_types.cpp.o.d"
  "test_partition_types"
  "test_partition_types.pdb"
  "test_partition_types[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partition_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
