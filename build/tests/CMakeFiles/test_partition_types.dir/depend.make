# Empty dependencies file for test_partition_types.
# This may be replaced when dependencies are built.
