file(REMOVE_RECURSE
  "CMakeFiles/test_core_timer.dir/test_core_timer.cpp.o"
  "CMakeFiles/test_core_timer.dir/test_core_timer.cpp.o.d"
  "test_core_timer"
  "test_core_timer.pdb"
  "test_core_timer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_timer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
