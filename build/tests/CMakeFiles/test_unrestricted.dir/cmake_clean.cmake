file(REMOVE_RECURSE
  "CMakeFiles/test_unrestricted.dir/test_unrestricted.cpp.o"
  "CMakeFiles/test_unrestricted.dir/test_unrestricted.cpp.o.d"
  "test_unrestricted"
  "test_unrestricted.pdb"
  "test_unrestricted[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unrestricted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
