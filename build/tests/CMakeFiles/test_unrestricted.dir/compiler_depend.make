# Empty compiler generated dependencies file for test_unrestricted.
# This may be replaced when dependencies are built.
