file(REMOVE_RECURSE
  "CMakeFiles/test_static_policies.dir/test_static_policies.cpp.o"
  "CMakeFiles/test_static_policies.dir/test_static_policies.cpp.o.d"
  "test_static_policies"
  "test_static_policies.pdb"
  "test_static_policies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_static_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
