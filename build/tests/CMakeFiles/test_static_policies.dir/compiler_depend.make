# Empty compiler generated dependencies file for test_static_policies.
# This may be replaced when dependencies are built.
