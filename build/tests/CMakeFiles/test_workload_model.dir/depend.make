# Empty dependencies file for test_workload_model.
# This may be replaced when dependencies are built.
