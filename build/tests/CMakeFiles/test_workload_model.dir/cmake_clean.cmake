file(REMOVE_RECURSE
  "CMakeFiles/test_workload_model.dir/test_workload_model.cpp.o"
  "CMakeFiles/test_workload_model.dir/test_workload_model.cpp.o.d"
  "test_workload_model"
  "test_workload_model.pdb"
  "test_workload_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
