# Empty dependencies file for test_miss_curve.
# This may be replaced when dependencies are built.
