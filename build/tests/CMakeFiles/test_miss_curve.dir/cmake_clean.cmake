file(REMOVE_RECURSE
  "CMakeFiles/test_miss_curve.dir/test_miss_curve.cpp.o"
  "CMakeFiles/test_miss_curve.dir/test_miss_curve.cpp.o.d"
  "test_miss_curve"
  "test_miss_curve.pdb"
  "test_miss_curve[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_miss_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
