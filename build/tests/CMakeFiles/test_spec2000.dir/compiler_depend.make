# Empty compiler generated dependencies file for test_spec2000.
# This may be replaced when dependencies are built.
