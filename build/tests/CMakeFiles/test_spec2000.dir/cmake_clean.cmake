file(REMOVE_RECURSE
  "CMakeFiles/test_spec2000.dir/test_spec2000.cpp.o"
  "CMakeFiles/test_spec2000.dir/test_spec2000.cpp.o.d"
  "test_spec2000"
  "test_spec2000.pdb"
  "test_spec2000[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spec2000.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
