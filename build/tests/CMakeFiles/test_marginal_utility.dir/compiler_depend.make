# Empty compiler generated dependencies file for test_marginal_utility.
# This may be replaced when dependencies are built.
