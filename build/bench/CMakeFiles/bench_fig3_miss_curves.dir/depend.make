# Empty dependencies file for bench_fig3_miss_curves.
# This may be replaced when dependencies are built.
