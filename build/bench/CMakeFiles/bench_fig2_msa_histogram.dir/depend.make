# Empty dependencies file for bench_fig2_msa_histogram.
# This may be replaced when dependencies are built.
