file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_adaptation.dir/bench_ablation_adaptation.cpp.o"
  "CMakeFiles/bench_ablation_adaptation.dir/bench_ablation_adaptation.cpp.o.d"
  "bench_ablation_adaptation"
  "bench_ablation_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
