# Empty dependencies file for bench_ablation_epoch_length.
# This may be replaced when dependencies are built.
