file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_epoch_length.dir/bench_ablation_epoch_length.cpp.o"
  "CMakeFiles/bench_ablation_epoch_length.dir/bench_ablation_epoch_length.cpp.o.d"
  "bench_ablation_epoch_length"
  "bench_ablation_epoch_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_epoch_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
