file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_assignments.dir/bench_table3_assignments.cpp.o"
  "CMakeFiles/bench_table3_assignments.dir/bench_table3_assignments.cpp.o.d"
  "bench_table3_assignments"
  "bench_table3_assignments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_assignments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
