file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_maxcap.dir/bench_ablation_maxcap.cpp.o"
  "CMakeFiles/bench_ablation_maxcap.dir/bench_ablation_maxcap.cpp.o.d"
  "bench_ablation_maxcap"
  "bench_ablation_maxcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_maxcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
