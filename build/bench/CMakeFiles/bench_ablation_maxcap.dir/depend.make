# Empty dependencies file for bench_ablation_maxcap.
# This may be replaced when dependencies are built.
