file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_monte_carlo.dir/bench_fig7_monte_carlo.cpp.o"
  "CMakeFiles/bench_fig7_monte_carlo.dir/bench_fig7_monte_carlo.cpp.o.d"
  "bench_fig7_monte_carlo"
  "bench_fig7_monte_carlo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_monte_carlo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
