file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_cpi.dir/bench_fig9_cpi.cpp.o"
  "CMakeFiles/bench_fig9_cpi.dir/bench_fig9_cpi.cpp.o.d"
  "bench_fig9_cpi"
  "bench_fig9_cpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_cpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
