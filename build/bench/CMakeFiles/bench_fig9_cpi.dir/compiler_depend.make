# Empty compiler generated dependencies file for bench_fig9_cpi.
# This may be replaced when dependencies are built.
