# Empty compiler generated dependencies file for bench_fig8_miss_rate.
# This may be replaced when dependencies are built.
