file(REMOVE_RECURSE
  "CMakeFiles/bacp_noc.dir/noc.cpp.o"
  "CMakeFiles/bacp_noc.dir/noc.cpp.o.d"
  "libbacp_noc.a"
  "libbacp_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bacp_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
