# Empty dependencies file for bacp_noc.
# This may be replaced when dependencies are built.
