file(REMOVE_RECURSE
  "libbacp_noc.a"
)
