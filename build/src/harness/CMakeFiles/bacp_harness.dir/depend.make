# Empty dependencies file for bacp_harness.
# This may be replaced when dependencies are built.
