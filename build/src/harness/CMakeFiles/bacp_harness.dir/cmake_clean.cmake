file(REMOVE_RECURSE
  "CMakeFiles/bacp_harness.dir/experiments.cpp.o"
  "CMakeFiles/bacp_harness.dir/experiments.cpp.o.d"
  "CMakeFiles/bacp_harness.dir/monte_carlo.cpp.o"
  "CMakeFiles/bacp_harness.dir/monte_carlo.cpp.o.d"
  "libbacp_harness.a"
  "libbacp_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bacp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
