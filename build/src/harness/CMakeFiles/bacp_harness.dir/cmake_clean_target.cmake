file(REMOVE_RECURSE
  "libbacp_harness.a"
)
