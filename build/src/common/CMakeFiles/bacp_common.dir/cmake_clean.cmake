file(REMOVE_RECURSE
  "CMakeFiles/bacp_common.dir/args.cpp.o"
  "CMakeFiles/bacp_common.dir/args.cpp.o.d"
  "CMakeFiles/bacp_common.dir/env.cpp.o"
  "CMakeFiles/bacp_common.dir/env.cpp.o.d"
  "CMakeFiles/bacp_common.dir/rng.cpp.o"
  "CMakeFiles/bacp_common.dir/rng.cpp.o.d"
  "CMakeFiles/bacp_common.dir/stats.cpp.o"
  "CMakeFiles/bacp_common.dir/stats.cpp.o.d"
  "CMakeFiles/bacp_common.dir/table.cpp.o"
  "CMakeFiles/bacp_common.dir/table.cpp.o.d"
  "CMakeFiles/bacp_common.dir/thread_pool.cpp.o"
  "CMakeFiles/bacp_common.dir/thread_pool.cpp.o.d"
  "libbacp_common.a"
  "libbacp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bacp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
