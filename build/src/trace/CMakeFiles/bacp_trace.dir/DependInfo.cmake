
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/mix.cpp" "src/trace/CMakeFiles/bacp_trace.dir/mix.cpp.o" "gcc" "src/trace/CMakeFiles/bacp_trace.dir/mix.cpp.o.d"
  "/root/repo/src/trace/spec2000.cpp" "src/trace/CMakeFiles/bacp_trace.dir/spec2000.cpp.o" "gcc" "src/trace/CMakeFiles/bacp_trace.dir/spec2000.cpp.o.d"
  "/root/repo/src/trace/synthetic.cpp" "src/trace/CMakeFiles/bacp_trace.dir/synthetic.cpp.o" "gcc" "src/trace/CMakeFiles/bacp_trace.dir/synthetic.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/trace/CMakeFiles/bacp_trace.dir/trace_io.cpp.o" "gcc" "src/trace/CMakeFiles/bacp_trace.dir/trace_io.cpp.o.d"
  "/root/repo/src/trace/workload_model.cpp" "src/trace/CMakeFiles/bacp_trace.dir/workload_model.cpp.o" "gcc" "src/trace/CMakeFiles/bacp_trace.dir/workload_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bacp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
