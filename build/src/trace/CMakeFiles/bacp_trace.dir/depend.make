# Empty dependencies file for bacp_trace.
# This may be replaced when dependencies are built.
