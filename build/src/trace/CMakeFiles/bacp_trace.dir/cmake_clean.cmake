file(REMOVE_RECURSE
  "CMakeFiles/bacp_trace.dir/mix.cpp.o"
  "CMakeFiles/bacp_trace.dir/mix.cpp.o.d"
  "CMakeFiles/bacp_trace.dir/spec2000.cpp.o"
  "CMakeFiles/bacp_trace.dir/spec2000.cpp.o.d"
  "CMakeFiles/bacp_trace.dir/synthetic.cpp.o"
  "CMakeFiles/bacp_trace.dir/synthetic.cpp.o.d"
  "CMakeFiles/bacp_trace.dir/trace_io.cpp.o"
  "CMakeFiles/bacp_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/bacp_trace.dir/workload_model.cpp.o"
  "CMakeFiles/bacp_trace.dir/workload_model.cpp.o.d"
  "libbacp_trace.a"
  "libbacp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bacp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
