file(REMOVE_RECURSE
  "libbacp_trace.a"
)
