# Empty compiler generated dependencies file for bacp_core.
# This may be replaced when dependencies are built.
