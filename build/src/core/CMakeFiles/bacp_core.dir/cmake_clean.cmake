file(REMOVE_RECURSE
  "CMakeFiles/bacp_core.dir/core_timer.cpp.o"
  "CMakeFiles/bacp_core.dir/core_timer.cpp.o.d"
  "libbacp_core.a"
  "libbacp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bacp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
