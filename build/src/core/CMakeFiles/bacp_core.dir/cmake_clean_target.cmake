file(REMOVE_RECURSE
  "libbacp_core.a"
)
