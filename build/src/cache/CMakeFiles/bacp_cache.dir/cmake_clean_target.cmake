file(REMOVE_RECURSE
  "libbacp_cache.a"
)
