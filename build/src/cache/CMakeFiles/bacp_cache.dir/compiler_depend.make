# Empty compiler generated dependencies file for bacp_cache.
# This may be replaced when dependencies are built.
