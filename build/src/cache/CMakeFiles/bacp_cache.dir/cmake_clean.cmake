file(REMOVE_RECURSE
  "CMakeFiles/bacp_cache.dir/set_assoc_cache.cpp.o"
  "CMakeFiles/bacp_cache.dir/set_assoc_cache.cpp.o.d"
  "libbacp_cache.a"
  "libbacp_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bacp_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
