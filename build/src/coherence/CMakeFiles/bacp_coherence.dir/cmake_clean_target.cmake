file(REMOVE_RECURSE
  "libbacp_coherence.a"
)
