# Empty dependencies file for bacp_coherence.
# This may be replaced when dependencies are built.
