file(REMOVE_RECURSE
  "CMakeFiles/bacp_coherence.dir/moesi.cpp.o"
  "CMakeFiles/bacp_coherence.dir/moesi.cpp.o.d"
  "libbacp_coherence.a"
  "libbacp_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bacp_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
