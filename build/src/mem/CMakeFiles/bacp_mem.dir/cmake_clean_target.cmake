file(REMOVE_RECURSE
  "libbacp_mem.a"
)
