# Empty compiler generated dependencies file for bacp_mem.
# This may be replaced when dependencies are built.
