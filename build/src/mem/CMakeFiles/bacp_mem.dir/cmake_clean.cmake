file(REMOVE_RECURSE
  "CMakeFiles/bacp_mem.dir/dram.cpp.o"
  "CMakeFiles/bacp_mem.dir/dram.cpp.o.d"
  "libbacp_mem.a"
  "libbacp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bacp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
