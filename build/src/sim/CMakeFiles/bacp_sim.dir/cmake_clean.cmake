file(REMOVE_RECURSE
  "CMakeFiles/bacp_sim.dir/system.cpp.o"
  "CMakeFiles/bacp_sim.dir/system.cpp.o.d"
  "CMakeFiles/bacp_sim.dir/system_config.cpp.o"
  "CMakeFiles/bacp_sim.dir/system_config.cpp.o.d"
  "libbacp_sim.a"
  "libbacp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bacp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
