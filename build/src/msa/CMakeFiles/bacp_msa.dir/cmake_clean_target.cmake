file(REMOVE_RECURSE
  "libbacp_msa.a"
)
