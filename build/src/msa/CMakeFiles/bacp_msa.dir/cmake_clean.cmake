file(REMOVE_RECURSE
  "CMakeFiles/bacp_msa.dir/miss_curve.cpp.o"
  "CMakeFiles/bacp_msa.dir/miss_curve.cpp.o.d"
  "CMakeFiles/bacp_msa.dir/overhead_model.cpp.o"
  "CMakeFiles/bacp_msa.dir/overhead_model.cpp.o.d"
  "CMakeFiles/bacp_msa.dir/stack_profiler.cpp.o"
  "CMakeFiles/bacp_msa.dir/stack_profiler.cpp.o.d"
  "libbacp_msa.a"
  "libbacp_msa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bacp_msa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
