
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/msa/miss_curve.cpp" "src/msa/CMakeFiles/bacp_msa.dir/miss_curve.cpp.o" "gcc" "src/msa/CMakeFiles/bacp_msa.dir/miss_curve.cpp.o.d"
  "/root/repo/src/msa/overhead_model.cpp" "src/msa/CMakeFiles/bacp_msa.dir/overhead_model.cpp.o" "gcc" "src/msa/CMakeFiles/bacp_msa.dir/overhead_model.cpp.o.d"
  "/root/repo/src/msa/stack_profiler.cpp" "src/msa/CMakeFiles/bacp_msa.dir/stack_profiler.cpp.o" "gcc" "src/msa/CMakeFiles/bacp_msa.dir/stack_profiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bacp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/bacp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bacp_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
