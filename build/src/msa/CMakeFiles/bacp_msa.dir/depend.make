# Empty dependencies file for bacp_msa.
# This may be replaced when dependencies are built.
