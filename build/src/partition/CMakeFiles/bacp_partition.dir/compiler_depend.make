# Empty compiler generated dependencies file for bacp_partition.
# This may be replaced when dependencies are built.
