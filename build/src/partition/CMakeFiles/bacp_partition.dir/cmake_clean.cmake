file(REMOVE_RECURSE
  "CMakeFiles/bacp_partition.dir/bank_aware.cpp.o"
  "CMakeFiles/bacp_partition.dir/bank_aware.cpp.o.d"
  "CMakeFiles/bacp_partition.dir/fairness.cpp.o"
  "CMakeFiles/bacp_partition.dir/fairness.cpp.o.d"
  "CMakeFiles/bacp_partition.dir/marginal_utility.cpp.o"
  "CMakeFiles/bacp_partition.dir/marginal_utility.cpp.o.d"
  "CMakeFiles/bacp_partition.dir/partition_types.cpp.o"
  "CMakeFiles/bacp_partition.dir/partition_types.cpp.o.d"
  "CMakeFiles/bacp_partition.dir/static_policies.cpp.o"
  "CMakeFiles/bacp_partition.dir/static_policies.cpp.o.d"
  "CMakeFiles/bacp_partition.dir/unrestricted.cpp.o"
  "CMakeFiles/bacp_partition.dir/unrestricted.cpp.o.d"
  "libbacp_partition.a"
  "libbacp_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bacp_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
