file(REMOVE_RECURSE
  "libbacp_partition.a"
)
