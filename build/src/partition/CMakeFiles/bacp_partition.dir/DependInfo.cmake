
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/bank_aware.cpp" "src/partition/CMakeFiles/bacp_partition.dir/bank_aware.cpp.o" "gcc" "src/partition/CMakeFiles/bacp_partition.dir/bank_aware.cpp.o.d"
  "/root/repo/src/partition/fairness.cpp" "src/partition/CMakeFiles/bacp_partition.dir/fairness.cpp.o" "gcc" "src/partition/CMakeFiles/bacp_partition.dir/fairness.cpp.o.d"
  "/root/repo/src/partition/marginal_utility.cpp" "src/partition/CMakeFiles/bacp_partition.dir/marginal_utility.cpp.o" "gcc" "src/partition/CMakeFiles/bacp_partition.dir/marginal_utility.cpp.o.d"
  "/root/repo/src/partition/partition_types.cpp" "src/partition/CMakeFiles/bacp_partition.dir/partition_types.cpp.o" "gcc" "src/partition/CMakeFiles/bacp_partition.dir/partition_types.cpp.o.d"
  "/root/repo/src/partition/static_policies.cpp" "src/partition/CMakeFiles/bacp_partition.dir/static_policies.cpp.o" "gcc" "src/partition/CMakeFiles/bacp_partition.dir/static_policies.cpp.o.d"
  "/root/repo/src/partition/unrestricted.cpp" "src/partition/CMakeFiles/bacp_partition.dir/unrestricted.cpp.o" "gcc" "src/partition/CMakeFiles/bacp_partition.dir/unrestricted.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bacp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/msa/CMakeFiles/bacp_msa.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/bacp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bacp_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
