# Empty compiler generated dependencies file for bacp_nuca.
# This may be replaced when dependencies are built.
