file(REMOVE_RECURSE
  "CMakeFiles/bacp_nuca.dir/dnuca_cache.cpp.o"
  "CMakeFiles/bacp_nuca.dir/dnuca_cache.cpp.o.d"
  "libbacp_nuca.a"
  "libbacp_nuca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bacp_nuca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
