file(REMOVE_RECURSE
  "libbacp_nuca.a"
)
