
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nuca/dnuca_cache.cpp" "src/nuca/CMakeFiles/bacp_nuca.dir/dnuca_cache.cpp.o" "gcc" "src/nuca/CMakeFiles/bacp_nuca.dir/dnuca_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bacp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/bacp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/bacp_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/bacp_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/msa/CMakeFiles/bacp_msa.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bacp_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
