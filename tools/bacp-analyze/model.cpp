#include "model.hpp"

#include <cctype>

namespace bacp::analyze {

namespace {

bool is_open(const std::string& t) { return t == "{" || t == "(" || t == "["; }

std::string closer_for(const std::string& t) {
  if (t == "{") return "}";
  if (t == "(") return ")";
  return "]";
}

bool capitalized(const std::string& text) {
  return !text.empty() && std::isupper(static_cast<unsigned char>(text[0])) != 0;
}

/// True when the '(' at `paren` opens an annotation/keyword argument list
/// (BACP_GUARDED_BY(mutex_), alignas(64), decltype(x), noexcept(...)) rather
/// than a function parameter list.
bool annotation_paren(const std::vector<Token>& toks, std::size_t paren) {
  if (paren == 0) return false;
  const std::string& prev = toks[paren - 1].text;
  return prev.rfind("BACP_", 0) == 0 || prev == "alignas" ||
         prev == "decltype" || prev == "noexcept" || prev == "sizeof";
}

const std::set<std::string>& cxx_keywords() {
  static const std::set<std::string> keywords = {
      "alignas", "alignof", "auto", "bool", "break", "case", "catch", "char",
      "class", "const", "consteval", "constexpr", "constinit", "continue",
      "decltype", "default", "delete", "do", "double", "else", "enum",
      "explicit", "export", "extern", "false", "final", "float", "for",
      "friend", "goto", "if", "inline", "int", "long", "mutable", "namespace",
      "new", "noexcept", "nullptr", "operator", "override", "private",
      "protected", "public", "register", "requires", "return", "short",
      "signed", "sizeof", "static", "struct", "switch", "template", "this",
      "throw", "true", "try", "typedef", "typename", "union", "unsigned",
      "using", "virtual", "void", "volatile", "while",
  };
  return keywords;
}

/// Parses the class-head after a `class` / `struct` keyword at `kw`.
/// Returns the class name and sets `body_open` to the index of the body's
/// '{', or returns "" for forward declarations / non-definitions.
std::string parse_class_head(const std::vector<Token>& toks, std::size_t kw,
                             std::size_t& body_open) {
  std::string name;
  std::size_t i = kw + 1;
  while (i < toks.size()) {
    const Token& tok = toks[i];
    if (tok.kind == Tok::PpDirective) {
      ++i;
      continue;
    }
    if (tok.kind == Tok::Identifier) {
      // Attribute-like macro (BACP_CAPABILITY("mutex")): skip its arguments.
      if (i + 1 < toks.size() && toks[i + 1].text == "(") {
        const std::size_t close = match_close(toks, i + 1);
        // `name` followed by '(' can't be a class definition head otherwise.
        if (close >= toks.size()) return "";
        name = tok.text;  // remembered in case the macro IS the name (no)
        i = close + 1;
        // A macro directly before '{' or ':' is an annotation, not a name;
        // keep whatever identifier follows instead.
        name.clear();
        continue;
      }
      name = tok.text;
      ++i;
      continue;
    }
    if (tok.text == "<") {
      // Template-id in a specialization head: skip the angle list naively.
      int depth = 1;
      ++i;
      while (i < toks.size() && depth > 0) {
        if (toks[i].text == "<") ++depth;
        if (toks[i].text == ">") --depth;
        if (toks[i].text == ">>") depth -= 2;
        ++i;
      }
      continue;
    }
    if (tok.text == ":") {  // base clause; the name is already parsed
      while (i < toks.size() && toks[i].text != "{" && toks[i].text != ";") ++i;
      continue;
    }
    if (tok.text == "{") {
      body_open = i;
      return name;
    }
    if (tok.text == ";") return "";  // forward declaration
    if (tok.text == "::") {
      // Out-of-line nested definition (class A::B) — index under the last
      // component.
      ++i;
      continue;
    }
    // enum class, alignas(...), etc. — skip single tokens we don't model.
    ++i;
  }
  return "";
}

/// Indexes one class body: members, method names, inline bodies, nested
/// types. `open`/`close` delimit the body braces.
void index_class_body(const SourceFile& file, const std::vector<Token>& toks,
                      std::size_t open, std::size_t close, ClassInfo& info,
                      std::vector<ClassInfo>& extra) {
  std::size_t i = open + 1;
  while (i < close) {
    const Token& tok = toks[i];
    if (tok.kind == Tok::PpDirective) {
      ++i;
      continue;
    }
    // Access specifiers.
    if ((tok.text == "public" || tok.text == "private" ||
         tok.text == "protected") &&
        i + 1 < close && toks[i + 1].text == ":") {
      i += 2;
      continue;
    }
    // Nested class/struct definition: recurse, record, skip.
    if ((tok.text == "class" || tok.text == "struct") &&
        tok.kind == Tok::Identifier) {
      std::size_t nested_open = 0;
      const std::string nested = parse_class_head(toks, i, nested_open);
      if (!nested.empty()) {
        info.nested_types.insert(nested);
        const std::size_t nested_close = match_close(toks, nested_open);
        ClassInfo child;
        child.name = nested;
        child.file = &file;
        child.body_begin = nested_open;
        child.body_end = nested_close;
        child.line = tok.line;
        index_class_body(file, toks, nested_open, nested_close, child, extra);
        extra.push_back(std::move(child));
        i = nested_close + 1;
        if (i < close && toks[i].text == ";") ++i;
        continue;
      }
      // Forward declaration / friend class: fall through to statement skip.
    }
    // Enum definitions: skip their bodies (enumerators are not members).
    if (tok.text == "enum") {
      while (i < close && toks[i].text != "{" && toks[i].text != ";") ++i;
      if (i < close && toks[i].text == "{") i = match_close(toks, i);
      ++i;
      continue;
    }
    // One member statement: scan to ';' at this depth, tracking the first
    // top-level '(' (function-ness) and '=' / '{' initializers.
    const std::size_t stmt_begin = i;
    bool is_friend = false;
    bool is_static = false;
    bool is_using = false;
    std::size_t first_paren = 0;
    std::size_t stmt_end = close;  // index of ';' terminating the statement
    std::size_t j = i;
    while (j < close) {
      const Token& t = toks[j];
      if (t.kind == Tok::PpDirective) {
        ++j;
        continue;
      }
      if (t.text == "friend") is_friend = true;
      if (t.text == "static") is_static = true;
      if (t.text == "using" || t.text == "typedef") is_using = true;
      if (t.text == "(" && first_paren == 0 && !annotation_paren(toks, j)) {
        first_paren = j;
      }
      if (is_open(t.text)) {
        const std::size_t c = match_close(toks, j);
        // Function body: `name(...) ... {` — an inline definition ends at
        // its closing brace (no ';' required).
        if (t.text == "{" && first_paren != 0) {
          // Find the method name: identifier before the first '('.
          std::size_t name_at = first_paren;
          while (name_at > stmt_begin && toks[name_at - 1].kind != Tok::Identifier)
            --name_at;
          if (name_at > stmt_begin) {
            const std::string& method = toks[name_at - 1].text;
            if (!is_friend) info.inline_bodies[method].push_back({j, c});
          }
          stmt_end = c;
          break;
        }
        j = c + 1;
        continue;
      }
      if (t.text == ";") {
        stmt_end = j;
        break;
      }
      ++j;
    }
    if (stmt_end >= close) break;
    const bool ended_with_body = toks[stmt_end].text == "}";
    if (!is_friend && !is_using) {
      if (first_paren != 0) {
        // Method declaration (or inline definition, already recorded):
        // remember the name for closure resolution.
        std::size_t name_at = first_paren;
        while (name_at > stmt_begin && toks[name_at - 1].kind != Tok::Identifier)
          --name_at;
        if (name_at > stmt_begin) info.method_names.insert(toks[name_at - 1].text);
      } else if (!is_static && !ended_with_body) {
        // Data member: the last identifier followed by ';', '=', '{' or '['
        // (annotation macros like BACP_GUARDED_BY(mutex_) are transparent).
        MemberVar member;
        for (std::size_t k = stmt_begin; k < stmt_end; ++k) {
          const Token& t = toks[k];
          if (t.kind != Tok::Identifier) continue;
          if (cxx_keywords().count(t.text) != 0) continue;
          if (t.text.rfind("BACP_", 0) == 0 && k + 1 < stmt_end &&
              toks[k + 1].text == "(") {
            k = match_close(toks, k + 1);  // skip the annotation's arguments
            continue;
          }
          std::size_t next_at = k + 1;
          if (toks[next_at].text.rfind("BACP_", 0) == 0 &&
              next_at + 1 <= stmt_end && toks[next_at + 1].text == "(") {
            next_at = match_close(toks, next_at + 1) + 1;
          }
          const std::string& next =
              next_at <= stmt_end ? toks[next_at].text : toks[stmt_end].text;
          if (next == ";" || next == "=" || next == "{" || next == "[") {
            member.name = t.text;
            member.line = t.line;
            break;  // identifiers after the name are initializer expression
          } else if (capitalized(t.text)) {
            member.type_ids.push_back(t.text);
          }
        }
        if (!member.name.empty()) info.members.push_back(std::move(member));
      }
    }
    i = stmt_end + 1;
    // An inline body may be followed by ';' — consume it.
    if (ended_with_body && i < close && toks[i].text == ";") ++i;
  }
}

}  // namespace

std::size_t match_close(const std::vector<Token>& toks, std::size_t open) {
  const std::string want = closer_for(toks[open].text);
  const std::string& open_text = toks[open].text;
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind == Tok::PpDirective) continue;
    if (toks[i].text == open_text) ++depth;
    if (toks[i].text == want) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return toks.size();
}

bool is_free_call(const std::vector<Token>& toks, std::size_t i,
                  const std::string& name) {
  if (toks[i].kind != Tok::Identifier || toks[i].text != name) return false;
  if (i + 1 >= toks.size() || toks[i + 1].text != "(") return false;
  if (i == 0) return true;
  const std::string& prev = toks[i - 1].text;
  if (prev == "." || prev == "->") return false;  // member call
  if (prev == "::") {
    // std::name( and ::name( count; Other::name( does not.
    if (i < 2) return true;
    const Token& qual = toks[i - 2];
    if (qual.kind == Tok::Identifier && qual.text != "std") return false;
    return true;
  }
  // A declaration like `void time(...)` — identifier preceded by a type
  // name — still reads as a call here; the banned names never appear as
  // declarations in this tree, and fixtures pin the call shape.
  return true;
}

void CodeModel::build_indices() {
  for (const SourceFile& file : files) {
    const std::vector<Token>& toks = file.toks();
    std::vector<ClassInfo> found;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& tok = toks[i];
      if (tok.kind != Tok::Identifier) continue;
      if (tok.text == "class" || tok.text == "struct") {
        if (i > 0 && toks[i - 1].text == "enum") continue;  // enum class
        std::size_t body_open = 0;
        const std::string name = parse_class_head(toks, i, body_open);
        if (name.empty()) continue;
        const std::size_t body_close = match_close(toks, body_open);
        ClassInfo info;
        info.name = name;
        info.file = &file;
        info.body_begin = body_open;
        info.body_end = body_close;
        info.line = tok.line;
        index_class_body(file, toks, body_open, body_close, info, found);
        found.push_back(std::move(info));
        continue;
      }
      // Out-of-line member function definition: Class :: name ( ... ) ... {
      if (i + 3 < toks.size() && toks[i + 1].text == "::" &&
          toks[i + 2].kind == Tok::Identifier && toks[i + 3].text == "(") {
        const std::size_t close_paren = match_close(toks, i + 3);
        if (close_paren >= toks.size()) continue;
        // Walk past cv/ref/noexcept/trailing-return to '{' or give up at
        // ';' / ',' / ')' (declaration, call or member-initializer list).
        std::size_t j = close_paren + 1;
        bool is_def = false;
        while (j < toks.size()) {
          const std::string& t = toks[j].text;
          if (t == "{") {
            is_def = true;
            break;
          }
          if (t == ";" || t == "," || t == ")" || t == "}") break;
          if (t == ":") {
            // Constructor member-init list: items are `name(args)` or
            // `name{args}` separated by ','; after the last item comes the
            // body's '{' (which the outer loop then recognises).
            std::size_t k = j + 1;
            while (k < toks.size()) {
              while (k < toks.size() && toks[k].text != "(" &&
                     toks[k].text != "{" && toks[k].text != ";") {
                ++k;
              }
              if (k >= toks.size() || toks[k].text == ";") break;
              const std::size_t c = match_close(toks, k);
              if (c >= toks.size()) {
                k = toks.size();
                break;
              }
              k = c + 1;
              if (k < toks.size() && toks[k].text == ",") {
                ++k;
                continue;
              }
              break;  // next token should be the body '{'
            }
            j = k;
            continue;
          }
          if (t == "(") {
            const std::size_t c = match_close(toks, j);
            if (c >= toks.size()) break;
            j = c;
          }
          ++j;
        }
        if (!is_def || j >= toks.size()) continue;
        const std::size_t body_close = match_close(toks, j);
        method_bodies[{toks[i].text, toks[i + 2].text}].push_back(
            {&file, j, body_close});
      }
    }
    for (ClassInfo& info : found) classes[info.name].push_back(std::move(info));
  }

  // Audit entry points: functions named audit_* declared under src/audit/
  // (or any file whose path contains "audit"); their parameter-list type
  // names are the covered set, expanded one level through view structs.
  std::set<std::string> direct;
  for (const SourceFile& file : files) {
    if (file.rel.find("audit") == std::string::npos) continue;
    const std::vector<Token>& toks = file.toks();
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Tok::Identifier) continue;
      if (toks[i].text.rfind("audit_", 0) != 0) continue;
      if (toks[i + 1].text != "(") continue;
      const std::size_t close = match_close(toks, i + 1);
      for (std::size_t j = i + 2; j < close; ++j) {
        if (toks[j].kind == Tok::Identifier && capitalized(toks[j].text) &&
            cxx_keywords().count(toks[j].text) == 0) {
          direct.insert(toks[j].text);
        }
      }
    }
  }
  audited_types = direct;
  for (const std::string& type : direct) {
    // Expand only through *view* structs (SystemView's members are the
    // audited structures). Expanding through audited aggregates themselves
    // (audit_system takes the whole System) would mark every member of
    // System as covered and hollow out the audit-coverage check.
    if (type.size() < 4 || type.compare(type.size() - 4, 4, "View") != 0)
      continue;
    const auto it = classes.find(type);
    if (it == classes.end()) continue;
    for (const ClassInfo& info : it->second) {
      for (const MemberVar& member : info.members) {
        for (const std::string& id : member.type_ids) audited_types.insert(id);
      }
    }
  }
}

}  // namespace bacp::analyze
