// Planted violation for bacp-det-wallclock: reading the environment outside
// the sanctioned common/ + config_cli sites lets host state leak into runs.
#include <cstdlib>
#include <string>

namespace fixture {

inline std::string output_dir() {
  const char* dir = std::getenv("BACP_OUT");  // PLANT
  return dir != nullptr ? std::string(dir) : std::string("out");
}

}  // namespace fixture
