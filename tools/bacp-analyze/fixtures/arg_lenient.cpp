// Planted violation for bacp-arg-lenient: the defaulting getters silently
// paper over typoed flags; required()/present() are the sanctioned forms.
#include <cstdint>

namespace fixture {

struct ArgParser {
  std::uint64_t get_u64(const char*, std::uint64_t fallback = 0) { return fallback; }
};

inline std::uint64_t epochs(ArgParser& args) {
  return args.get_u64("epochs");  // PLANT
}

}  // namespace fixture
