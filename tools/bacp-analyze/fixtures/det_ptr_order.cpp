// Planted violation for bacp-det-ptr-order: sorting by raw pointer value
// produces an address-dependent (non-deterministic) order.
#include <algorithm>
#include <vector>

namespace fixture {

struct Node {
  int id = 0;
};

inline void order_nodes(std::vector<Node*>& nodes) {
  std::sort(nodes.begin(), nodes.end(),
            [](const Node* a, const Node* b) { return a < b; });  // PLANT
}

}  // namespace fixture
