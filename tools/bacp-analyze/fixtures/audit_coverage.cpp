// Planted violation for bacp-audit-coverage: SystemLike checkpoints itself
// but its Gadget member has no registered audit_* entry point.
namespace fixture {

class Gadget {
 private:
  int charge_ = 0;
};

class SystemLike {
 public:
  void audit_checkpoint() const {}

 private:
  Gadget gadget_;  // PLANT
};

}  // namespace fixture
