// Planted violation for bacp-det-ptr-key: an ordered container keyed by
// pointer value iterates in address order, which varies run to run.
#include <map>
#include <string>

namespace fixture {

struct Tenant {
  std::string name;
};

struct Ledger {
  std::map<const Tenant*, int> credits;  // PLANT
};

}  // namespace fixture
