// Planted violation for bacp-det-float-reduce: accumulating a float across
// ThreadPool workers makes the sum depend on scheduling order.
#include <cstddef>
#include <vector>

namespace fixture {

struct ThreadPool {
  template <typename F>
  void parallel_for(std::size_t n, F&& f) {
    for (std::size_t i = 0; i < n; ++i) f(i);
  }
};

inline double total_cost(const std::vector<double>& costs) {
  double sum = 0.0;
  ThreadPool pool;
  pool.parallel_for(costs.size(), [&](std::size_t i) {
    sum += costs[i];  // PLANT
  });
  return sum;
}

}  // namespace fixture
