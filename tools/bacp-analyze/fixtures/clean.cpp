// Control fixture: idiomatic code that must produce zero findings under
// every check. Guards against the analyzer drifting into false positives.
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fixture {

struct Writer {
  void u64(std::uint64_t) {}
};
struct Reader {
  std::uint64_t u64() { return 0; }
};

class Histogram {
 public:
  void record(std::uint64_t bin) { counts_[bin] += 1; }

  void save_state(Writer& writer) const {
    writer.u64(total_);
    for (const auto& [bin, count] : counts_) {
      writer.u64(bin);
      writer.u64(count);
    }
  }
  void restore_state(Reader& reader) {
    total_ = reader.u64();
    counts_.clear();
    const std::uint64_t bin = reader.u64();
    counts_[bin] = reader.u64();
  }

 private:
  std::map<std::uint64_t, std::uint64_t> counts_;  ///< value-keyed: fine
  std::uint64_t total_ = 0;
};

inline std::uint64_t sum(const std::vector<std::uint64_t>& values) {
  std::uint64_t total = 0;
  for (const std::uint64_t value : values) total += value;
  return total;
}

}  // namespace fixture
