// Planted violation for bacp-reset-fields: cursor_ is never touched by
// reset_in_place (or anything it calls), so a pooled reuse of Ring would
// resume mid-buffer with the previous run's cursor.
#include <cstdint>
#include <vector>

namespace fixture {

class Ring {
 public:
  void reset_in_place() {
    clear_entries();
    total_ = 0;
  }

 private:
  void clear_entries() {
    for (auto& entry : entries_) entry = 0;
  }

  std::vector<std::uint64_t> entries_;
  std::uint64_t total_ = 0;
  std::uint64_t cursor_ = 0;  // PLANT
};

}  // namespace fixture
