// Planted violation for bacp-snapshot-fields: misses_ is written by
// save_state but never restored, so a checkpoint round-trip loses it.
#include <cstdint>

namespace fixture {

struct Writer {
  void u64(std::uint64_t) {}
};
struct Reader {
  std::uint64_t u64() { return 0; }
};

class Counter {
 public:
  void save_state(Writer& writer) const {
    writer.u64(hits_);
    writer.u64(misses_);
  }
  void restore_state(Reader& reader) { hits_ = reader.u64(); }

 private:
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;  // PLANT
};

}  // namespace fixture
