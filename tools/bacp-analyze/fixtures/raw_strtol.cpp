// Planted violation for bacp-raw-strtol: the raw C parsers accept trailing
// garbage and saturate silently; common/parse.hpp is the strict front door.
#include <cstdlib>
#include <cstdint>

namespace fixture {

inline std::uint64_t parse_count(const char* text) {
  return std::strtoull(text, nullptr, 10);  // PLANT
}

}  // namespace fixture
