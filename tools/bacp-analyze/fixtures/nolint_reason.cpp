// Planted violation for bacp-nolint-reason: a NOLINT marker without a
// ": reason" suffix is itself a finding and suppresses nothing.
#include <cassert>

namespace fixture {

inline void check_positive(int value) {
  assert(value > 0);  // NOLINT(bacp-raw-assert) PLANT
}

}  // namespace fixture
