// Planted violation for bacp-raw-assert: raw assert() compiles out under
// NDEBUG; BACP_ASSERT stays armed in every build preset.
#include <cassert>
#include <cstdint>

namespace fixture {

inline std::uint64_t half(std::uint64_t value) {
  assert(value % 2 == 0);  // PLANT
  return value / 2;
}

}  // namespace fixture
