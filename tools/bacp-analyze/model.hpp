#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace bacp::analyze {

/// One scanned source file: path bookkeeping plus the token stream.
struct SourceFile {
  std::string path;  ///< as opened (absolute or caller-relative)
  std::string rel;   ///< root-relative, forward slashes; == path when no root
  LexedFile lexed;

  const std::vector<Token>& toks() const { return lexed.tokens; }
};

/// Non-static data member of an indexed class.
struct MemberVar {
  std::string name;
  std::vector<std::string> type_ids;  ///< capitalized identifiers in the decl
  std::uint32_t line = 0;
};

/// Structural summary of one class/struct definition. Token indices refer
/// to the owning SourceFile's token stream; body_begin/body_end are the
/// positions of the '{' and matching '}'.
struct ClassInfo {
  std::string name;
  const SourceFile* file = nullptr;
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  std::uint32_t line = 0;
  std::vector<MemberVar> members;
  std::set<std::string> method_names;
  /// Inline method bodies: method name -> list of {begin, end} token ranges
  /// (overloads share the name).
  std::map<std::string, std::vector<std::pair<std::size_t, std::size_t>>>
      inline_bodies;
  std::set<std::string> nested_types;

  bool has_method(const std::string& method) const {
    return method_names.count(method) != 0 || inline_bodies.count(method) != 0;
  }
};

/// Out-of-line member function body (`Ret Class::name(...) { ... }`).
struct MethodBody {
  const SourceFile* file = nullptr;
  std::size_t begin = 0;  ///< token index of '{'
  std::size_t end = 0;    ///< token index of matching '}'
};

/// Whole-corpus structural index built from every scanned file: class
/// definitions, out-of-line method bodies, and the audit_* entry-point
/// signatures (for the audit-coverage check).
struct CodeModel {
  std::vector<SourceFile> files;
  /// Class name -> definitions (rarely more than one across namespaces).
  std::map<std::string, std::vector<ClassInfo>> classes;
  /// (class name, method name) -> out-of-line bodies.
  std::map<std::pair<std::string, std::string>, std::vector<MethodBody>>
      method_bodies;
  /// Types named in the parameter lists of audit_* functions declared under
  /// src/audit/, expanded one level through the members of view structs
  /// (SystemView's members cover DnucaCache, SetAssocCache, ...).
  std::set<std::string> audited_types;

  void build_indices();
};

/// Finds the matching close token for the open bracket at `open` ('{', '(',
/// '[') in `toks`; returns toks.size() when unbalanced. PpDirective tokens
/// are transparent.
std::size_t match_close(const std::vector<Token>& toks, std::size_t open);

/// True when toks[i] starts a call expression of bare or std:: / global ::
/// qualified `name`: identifier `name` followed by '(' and not preceded by
/// '.', '->', or a non-std qualifier.
bool is_free_call(const std::vector<Token>& toks, std::size_t i,
                  const std::string& name);

}  // namespace bacp::analyze
