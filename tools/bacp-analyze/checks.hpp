#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model.hpp"

namespace bacp::analyze {

/// One analyzer finding: stable check id plus exact location. Output format
/// is `rel:line: [check-id] message`, the contract the CTest kill-test
/// fixtures assert on.
struct Finding {
  std::string rel;
  std::uint32_t line = 0;
  std::string check;
  std::string message;

  bool operator<(const Finding& other) const {
    if (rel != other.rel) return rel < other.rel;
    if (line != other.line) return line < other.line;
    return check < other.check;
  }
};

/// Stable catalog entry. `scoped` checks apply their own path scoping over
/// a tree scan; when the caller passed explicit files (fixture mode) every
/// file is in scope for every requested check.
struct CheckInfo {
  const char* id;
  const char* summary;
};

/// The check catalog, in stable id order (DESIGN.md section 13 documents
/// each check's contract).
const std::vector<CheckInfo>& check_catalog();

/// Runs `check_ids` (empty = all) over the model. `explicit_files` disables
/// per-check path scoping (fixture mode). Findings are sorted and already
/// filtered through well-formed NOLINT suppressions.
std::vector<Finding> run_checks(const CodeModel& model,
                                const std::vector<std::string>& check_ids,
                                bool explicit_files);

}  // namespace bacp::analyze
