// bacp-analyze: repo-specific static analysis for the bank-aware cache
// partitioning tree. Token/structure level (no compiler dependency), driven
// off the CMake-exported compile_commands.json so the file universe and
// repo root match the build. See DESIGN.md section 13 for the check
// contracts and scripts/lint.sh for the enforcement wiring.
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "checks.hpp"
#include "common/args.hpp"
#include "lexer.hpp"
#include "model.hpp"
#include "obs/json.hpp"

namespace fs = std::filesystem;

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

/// Derives the repo root from the `file` entries of a compile_commands.json:
/// the prefix of the first absolute source path that lives under src/.
std::string root_from_compile_commands(const std::string& path,
                                       std::string& error) {
  std::string text;
  if (!read_file(path, text)) {
    error = "cannot read compile commands: " + path;
    return "";
  }
  std::string parse_error;
  const bacp::obs::Json db = bacp::obs::Json::parse(text, &parse_error);
  if (db.kind() != bacp::obs::Json::Kind::Array) {
    error = "compile commands " + path + " is not a JSON array" +
            (parse_error.empty() ? "" : " (" + parse_error + ")");
    return "";
  }
  for (std::size_t i = 0; i < db.size(); ++i) {
    const bacp::obs::Json* file = db.at(i).find("file");
    if (file == nullptr ||
        file->kind() != bacp::obs::Json::Kind::String) {
      continue;
    }
    const std::string& source = file->as_string();
    const std::size_t src = source.find("/src/");
    if (src != std::string::npos) return source.substr(0, src);
  }
  error = "no src/ translation units in " + path;
  return "";
}

void collect_tree(const std::string& root, std::vector<std::string>& paths,
                  std::vector<std::string>& rels) {
  static const char* const kDirs[] = {"src", "bench", "examples", "tests"};
  for (const char* dir : kDirs) {
    const fs::path base = fs::path(root) / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) continue;
    for (fs::recursive_directory_iterator it(base, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext != ".cpp" && ext != ".hpp" && ext != ".h") continue;
      paths.push_back(it->path().string());
      rels.push_back(fs::relative(it->path(), root).generic_string());
    }
  }
  // Deterministic order regardless of directory enumeration order.
  std::vector<std::size_t> order(paths.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return rels[a] < rels[b];
  });
  std::vector<std::string> sorted_paths;
  std::vector<std::string> sorted_rels;
  for (const std::size_t i : order) {
    sorted_paths.push_back(paths[i]);
    sorted_rels.push_back(rels[i]);
  }
  paths.swap(sorted_paths);
  rels.swap(sorted_rels);
}

}  // namespace

int main(int argc, char** argv) {
  bacp::common::ArgParser args({
      {"compile-commands=",
       "path to a CMake-exported compile_commands.json; the repo root is "
       "derived from its translation units"},
      {"root=", "repo root to scan (overrides --compile-commands derivation)"},
      {"checks=", "comma-separated check ids to run (default: all)"},
      {"list-checks", "print the check catalog and exit"},
  });
  if (!args.parse(argc, argv)) {
    std::cerr << "error: " << args.error() << "\n"
              << args.help(argv[0]) << "\n";
    return 2;
  }
  if (args.get_bool_or_fail("list-checks", false)) {
    for (const bacp::analyze::CheckInfo& info :
         bacp::analyze::check_catalog()) {
      std::cout << info.id << "  " << info.summary << "\n";
    }
    return 0;
  }

  // Requested checks (default all); unknown ids are a usage error so a typo
  // in CI cannot silently skip enforcement.
  std::vector<std::string> check_ids;
  {
    const std::string raw = args.get("checks", "");
    std::set<std::string> known;
    for (const bacp::analyze::CheckInfo& info :
         bacp::analyze::check_catalog()) {
      known.insert(info.id);
    }
    std::string id;
    std::istringstream stream(raw);
    while (std::getline(stream, id, ',')) {
      if (id.empty()) continue;
      if (known.count(id) == 0) {
        std::cerr << "error: unknown check id `" << id
                  << "` (see --list-checks)\n";
        return 2;
      }
      check_ids.push_back(id);
    }
  }

  // File universe: explicit positional files (fixture mode, scoping off) or
  // a tree scan rooted at --root / the compile-commands derivation.
  std::vector<std::string> paths;
  std::vector<std::string> rels;
  const bool explicit_files = !args.positional().empty();
  if (explicit_files) {
    for (const std::string& path : args.positional()) {
      paths.push_back(path);
      std::string rel = path;
      if (rel.rfind("./", 0) == 0) rel = rel.substr(2);
      rels.push_back(rel);
    }
  } else {
    std::string root = args.get("root", "");
    const std::string compile_commands = args.get("compile-commands", "");
    if (root.empty() && !compile_commands.empty()) {
      std::string error;
      root = root_from_compile_commands(compile_commands, error);
      if (root.empty()) {
        std::cerr << "error: " << error << "\n";
        return 2;
      }
    }
    if (root.empty()) root = ".";
    collect_tree(root, paths, rels);
    if (paths.empty()) {
      std::cerr << "error: no C++ sources under " << root
                << " (expected src/, bench/, examples/, tests/)\n";
      return 2;
    }
  }

  bacp::analyze::CodeModel model;
  model.files.reserve(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    std::string text;
    if (!read_file(paths[i], text)) {
      std::cerr << "error: cannot read " << paths[i] << "\n";
      return 2;
    }
    bacp::analyze::SourceFile file;
    file.path = paths[i];
    file.rel = rels[i];
    file.lexed = bacp::analyze::lex(text);
    model.files.push_back(std::move(file));
  }
  model.build_indices();

  const std::vector<bacp::analyze::Finding> findings =
      bacp::analyze::run_checks(model, check_ids, explicit_files);
  for (const bacp::analyze::Finding& finding : findings) {
    std::cout << finding.rel << ":" << finding.line << ": [" << finding.check
              << "] " << finding.message << "\n";
  }
  std::cerr << "bacp-analyze: " << model.files.size() << " file(s), "
            << findings.size() << " finding(s)\n";
  return findings.empty() ? 0 : 1;
}
