#!/usr/bin/env bash
# Kill-test driver for one analyzer fixture.
#
#   check_fixture.sh <bacp-analyze> <tool-source-dir> <fixture-name>
#
# For a violation fixture <name>, the analyzer must exit 1 and report the
# check id bacp-<name-with-hyphens> at exactly the line carrying the PLANT
# marker in fixtures/<name>.cpp. For the "clean" control fixture, every
# check runs and the analyzer must exit 0. Either way, removing or breaking
# a check makes its fixture test fail.
set -u

if [ "$#" -ne 3 ]; then
  echo "usage: check_fixture.sh <bacp-analyze> <tool-source-dir> <fixture-name>" >&2
  exit 2
fi

analyzer=$1
srcdir=$2
name=$3
fixture="fixtures/${name}.cpp"

cd "${srcdir}" || exit 2
if [ ! -f "${fixture}" ]; then
  echo "FAIL: missing fixture ${srcdir}/${fixture}" >&2
  exit 1
fi

if [ "${name}" = "clean" ]; then
  output=$("${analyzer}" "${fixture}" 2>&1)
  status=$?
  if [ "${status}" -ne 0 ]; then
    echo "FAIL: clean fixture produced findings (exit ${status}):" >&2
    echo "${output}" >&2
    exit 1
  fi
  echo "PASS: clean fixture has no findings"
  exit 0
fi

check="bacp-$(printf '%s' "${name}" | tr '_' '-')"
line=$(grep -n 'PLANT' "${fixture}" | head -n 1 | cut -d: -f1)
if [ -z "${line}" ]; then
  echo "FAIL: no PLANT marker in ${fixture}" >&2
  exit 1
fi

output=$("${analyzer}" --checks "${check}" "${fixture}" 2>&1)
status=$?
if [ "${status}" -ne 1 ]; then
  echo "FAIL: expected exit 1 from ${check} on ${fixture}, got ${status}:" >&2
  echo "${output}" >&2
  exit 1
fi

expected="${fixture}:${line}: [${check}]"
if ! printf '%s\n' "${output}" | grep -F -q "${expected}"; then
  echo "FAIL: expected finding '${expected}' not in analyzer output:" >&2
  echo "${output}" >&2
  exit 1
fi

echo "PASS: ${check} fires at ${expected}"
exit 0
