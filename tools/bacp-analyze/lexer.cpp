#include "lexer.hpp"

#include <cctype>
#include <cstddef>

namespace bacp::analyze {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Multi-character punctuators the checks distinguish. Longest match wins;
/// everything else lexes as single characters.
const char* const kPuncts[] = {
    "->*", "...", "<<=", ">>=", "::", "->", "+=", "-=", "*=", "/=", "%=",
    "&=",  "|=",  "^=",  "<<",  ">>", "<=", ">=", "==", "!=", "&&", "||",
    "++",  "--",
};

/// Parses NOLINT markers out of one comment's text.
void scan_nolint(const std::string& text, std::uint32_t line,
                 std::vector<NolintMarker>& out) {
  std::size_t pos = 0;
  while ((pos = text.find("NOLINT", pos)) != std::string::npos) {
    // Skip matches inside longer words (e.g. "BACP_NOLINTED" would not be a
    // marker; neither is the "NOLINT" in "NOLINTNEXTLINE" once consumed).
    if (pos > 0 && ident_char(text[pos - 1])) {
      pos += 6;
      continue;
    }
    NolintMarker marker;
    marker.line = line;
    std::size_t cursor = pos + 6;
    if (text.compare(cursor, 8, "NEXTLINE") == 0) {
      marker.nextline = true;
      cursor += 8;
    }
    bool has_ids = false;
    if (cursor < text.size() && text[cursor] == '(') {
      const std::size_t close = text.find(')', cursor);
      if (close != std::string::npos) {
        std::string id;
        for (std::size_t i = cursor + 1; i <= close; ++i) {
          const char c = i < close ? text[i] : ',';
          if (c == ',' || c == ' ' || c == '\t') {
            if (!id.empty()) marker.ids.push_back(id);
            id.clear();
          } else {
            id.push_back(c);
          }
        }
        has_ids = !marker.ids.empty();
        cursor = close + 1;
      }
    }
    // Reason tail: ":" followed by non-blank text.
    bool has_reason = false;
    if (cursor < text.size() && text[cursor] == ':') {
      std::size_t tail = cursor + 1;
      while (tail < text.size() &&
             std::isspace(static_cast<unsigned char>(text[tail])) != 0) {
        ++tail;
      }
      has_reason = tail < text.size();
    }
    marker.well_formed = has_ids && has_reason;
    out.push_back(std::move(marker));
    pos = cursor;
  }
}

}  // namespace

bool LexedFile::suppressed(const std::string& check_id, std::uint32_t line) const {
  for (const NolintMarker& marker : nolints) {
    if (!marker.well_formed) continue;
    const std::uint32_t covered = marker.nextline ? marker.line + 1 : marker.line;
    if (covered != line) continue;
    for (const std::string& id : marker.ids) {
      if (id == check_id) return true;
    }
  }
  return false;
}

LexedFile lex(const std::string& source) {
  LexedFile out;
  const std::size_t n = source.size();
  std::size_t i = 0;
  std::uint32_t line = 1;
  bool at_line_start = true;

  auto add_comment = [&](std::uint32_t at, const std::string& text) {
    std::string& slot = out.comments[at];
    if (!slot.empty()) slot.push_back(' ');
    slot += text;
    scan_nolint(text, at, out.nolints);
  };

  auto consume_string = [&](char quote) {
    // Called with source[i] == quote; consumes through the closing quote.
    std::string text;
    ++i;
    while (i < n && source[i] != quote) {
      if (source[i] == '\\' && i + 1 < n) {
        text.push_back(source[i]);
        text.push_back(source[i + 1]);
        if (source[i + 1] == '\n') ++line;
        i += 2;
        continue;
      }
      if (source[i] == '\n') ++line;  // unterminated; keep line counts right
      text.push_back(source[i]);
      ++i;
    }
    if (i < n) ++i;  // closing quote
    return text;
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      const std::size_t start = i;
      while (i < n && source[i] != '\n') ++i;
      add_comment(line, source.substr(start, i - start));
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      const std::uint32_t start_line = line;
      const std::size_t start = i;
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') ++line;
        ++i;
      }
      i = i + 1 < n ? i + 2 : n;
      add_comment(start_line, source.substr(start, i - start));
      if (line != start_line) {
        // A NOLINT at the end of a block comment covers the closing line.
        out.comments[line];  // ensure the line exists for debugging dumps
      }
      continue;
    }
    // Preprocessor directive: swallow the logical line (continuations too).
    if (c == '#' && at_line_start) {
      const std::uint32_t start_line = line;
      std::string text;
      while (i < n) {
        if (source[i] == '\\' && i + 1 < n && source[i + 1] == '\n') {
          ++line;
          i += 2;
          text.push_back(' ');
          continue;
        }
        if (source[i] == '\n') break;
        // Comments inside directives still carry NOLINT markers.
        if (source[i] == '/' && i + 1 < n && source[i + 1] == '/') {
          const std::size_t start = i;
          while (i < n && source[i] != '\n') ++i;
          add_comment(line, source.substr(start, i - start));
          break;
        }
        text.push_back(source[i]);
        ++i;
      }
      out.tokens.push_back({Tok::PpDirective, std::move(text), start_line});
      at_line_start = true;
      continue;
    }
    at_line_start = false;
    // String / char literals (incl. raw strings via the prefix identifier).
    if (c == '"') {
      const std::uint32_t start_line = line;
      out.tokens.push_back({Tok::String, consume_string('"'), start_line});
      continue;
    }
    if (c == '\'') {
      const std::uint32_t start_line = line;
      out.tokens.push_back({Tok::CharLit, consume_string('\''), start_line});
      continue;
    }
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(source[i])) ++i;
      std::string text = source.substr(start, i - start);
      // Raw string literal: R"delim( ... )delim" (with optional u8/u/U/L).
      if (i < n && source[i] == '"' && text.size() >= 1 && text.back() == 'R' &&
          (text == "R" || text == "u8R" || text == "uR" || text == "UR" ||
           text == "LR")) {
        ++i;  // opening quote
        std::string delim;
        while (i < n && source[i] != '(') delim.push_back(source[i++]);
        if (i < n) ++i;  // '('
        const std::string closer = ")" + delim + "\"";
        const std::size_t end = source.find(closer, i);
        const std::uint32_t start_line = line;
        std::size_t stop = end == std::string::npos ? n : end;
        for (std::size_t k = i; k < stop; ++k) {
          if (source[k] == '\n') ++line;
        }
        out.tokens.push_back(
            {Tok::String, source.substr(i, stop - i), start_line});
        i = end == std::string::npos ? n : end + closer.size();
        continue;
      }
      // Ordinary prefixed strings (u8"x") — lex the literal separately.
      out.tokens.push_back({Tok::Identifier, std::move(text), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])) != 0)) {
      const std::size_t start = i;
      ++i;
      while (i < n) {
        const char d = source[i];
        if (ident_char(d) || d == '.') {
          ++i;
          continue;
        }
        if ((d == '+' || d == '-') && i > start) {
          const char prev = source[i - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            ++i;
            continue;
          }
        }
        if (d == '\'' && i + 1 < n && ident_char(source[i + 1])) {
          i += 2;  // digit separator
          continue;
        }
        break;
      }
      out.tokens.push_back({Tok::Number, source.substr(start, i - start), line});
      continue;
    }
    // Punctuation: longest multi-char match first.
    bool matched = false;
    for (const char* punct : kPuncts) {
      const std::size_t len = std::char_traits<char>::length(punct);
      if (source.compare(i, len, punct) == 0) {
        out.tokens.push_back({Tok::Punct, punct, line});
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.tokens.push_back({Tok::Punct, std::string(1, c), line});
      ++i;
    }
  }
  return out;
}

}  // namespace bacp::analyze
