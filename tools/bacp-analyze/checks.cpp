#include "checks.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <initializer_list>
#include <set>

namespace bacp::analyze {

namespace {

/// Which part of the tree a check patrols during a tree scan. Explicit file
/// arguments (fixture mode) bypass scoping entirely.
enum class Scope : std::uint8_t {
  kSimulation,  ///< src/ bench/ examples/ — determinism checks; tests may
                ///< legitimately use wall clocks and pointers
  kAllCode,     ///< src/ bench/ examples/ tests/ — API-ban checks
  kSrcOnly,     ///< src/ — snapshot/audit structural contracts
  kEverything,  ///< every scanned file — NOLINT hygiene
};

bool under_dir(const std::string& rel, const char* dir) {
  const std::string prefix = std::string(dir) + "/";
  return rel.rfind(prefix, 0) == 0;
}

bool in_scope(const std::string& rel, Scope scope) {
  switch (scope) {
    case Scope::kSimulation:
      return under_dir(rel, "src") || under_dir(rel, "bench") ||
             under_dir(rel, "examples");
    case Scope::kAllCode:
      return under_dir(rel, "src") || under_dir(rel, "bench") ||
             under_dir(rel, "examples") || under_dir(rel, "tests");
    case Scope::kSrcOnly:
      return under_dir(rel, "src");
    case Scope::kEverything:
      return true;
  }
  return false;
}

/// Emits a finding unless a well-formed NOLINT marker covers the line.
void emit(const SourceFile& file, const char* check, std::uint32_t line,
          std::string message, std::vector<Finding>& out) {
  if (file.lexed.suppressed(check, line)) return;
  out.push_back({file.rel, line, check, std::move(message)});
}

/// Scans the template argument list opened by the '<' at `open_angle` and
/// reports whether the first top-level argument (for `first_only`) or any
/// argument contains a raw pointer declarator. Returns false for token runs
/// that turn out not to be template argument lists (stray comparisons).
bool template_args_have_ptr(const std::vector<Token>& toks,
                            std::size_t open_angle, bool first_only) {
  int depth = 1;
  bool saw_ptr = false;
  for (std::size_t i = open_angle + 1; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "<") {
      ++depth;
    } else if (t == ">") {
      if (--depth == 0) return saw_ptr;
    } else if (t == ">>") {
      depth -= 2;
      if (depth <= 0) return saw_ptr;
    } else if (t == "," && depth == 1 && first_only) {
      return saw_ptr;
    } else if (t == ";" || t == "{" || t == "}") {
      return false;  // not a template argument list after all
    } else if (t == "*") {
      saw_ptr = true;
    }
  }
  return false;
}

/// True when toks[i..] spells `std :: name` with `name` in `names`.
bool std_qualified(const std::vector<Token>& toks, std::size_t i,
                   std::initializer_list<const char*> names) {
  if (i + 2 >= toks.size()) return false;
  if (toks[i].text != "std" || toks[i + 1].text != "::") return false;
  for (const char* name : names) {
    if (toks[i + 2].text == name) return true;
  }
  return false;
}

// --- bacp-det-ptr-key -------------------------------------------------------

void check_det_ptr_key(const CodeModel& model, bool explicit_files,
                       std::vector<Finding>& out) {
  for (const SourceFile& file : model.files) {
    if (!explicit_files && !in_scope(file.rel, Scope::kSimulation)) continue;
    const std::vector<Token>& toks = file.toks();
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
      if (!std_qualified(toks, i, {"map", "set", "multimap", "multiset"}))
        continue;
      if (toks[i + 3].text != "<") continue;
      if (template_args_have_ptr(toks, i + 3, /*first_only=*/true)) {
        emit(file, "bacp-det-ptr-key", toks[i].line,
             "ordered container keyed by raw pointer: iteration order is "
             "allocation-address order and varies run to run; key by a stable "
             "id instead",
             out);
      }
    }
  }
}

// --- bacp-det-ptr-order -----------------------------------------------------

void check_det_ptr_order(const CodeModel& model, bool explicit_files,
                         std::vector<Finding>& out) {
  for (const SourceFile& file : model.files) {
    if (!explicit_files && !in_scope(file.rel, Scope::kSimulation)) continue;
    const std::vector<Token>& toks = file.toks();
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
      // std::hash<T*> / std::less<T*>: ordering or hashing by address.
      if (std_qualified(toks, i, {"hash", "less", "greater"}) &&
          toks[i + 3].text == "<" &&
          template_args_have_ptr(toks, i + 3, /*first_only=*/false)) {
        emit(file, "bacp-det-ptr-order", toks[i].line,
             "hashing/ordering raw pointers compares allocation addresses, "
             "which differ across runs; use a stable id",
             out);
        continue;
      }
      // sort-family call with a lambda comparator that compares its pointer
      // parameters directly.
      const std::string& name = toks[i].text;
      if (name != "sort" && name != "stable_sort" && name != "partial_sort" &&
          name != "nth_element") {
        continue;
      }
      if (!is_free_call(toks, i, name)) continue;
      const std::size_t call_close = match_close(toks, i + 1);
      for (std::size_t j = i + 2; j < call_close; ++j) {
        if (toks[j].text != "[") continue;
        const std::string& prev = toks[j - 1].text;
        if (prev != "(" && prev != "," && prev != "=") continue;  // subscript
        const std::size_t intro_close = match_close(toks, j);
        if (intro_close >= call_close ||
            toks[intro_close + 1].text != "(") {
          continue;
        }
        const std::size_t params_open = intro_close + 1;
        const std::size_t params_close = match_close(toks, params_open);
        // Collect parameter names whose declarators contain '*'.
        std::set<std::string> ptr_params;
        {
          bool arg_has_ptr = false;
          std::string last_ident;
          for (std::size_t k = params_open + 1; k <= params_close; ++k) {
            const std::string& t = toks[k].text;
            if (t == "*") arg_has_ptr = true;
            if (toks[k].kind == Tok::Identifier) last_ident = t;
            if (t == "," || k == params_close) {
              if (arg_has_ptr && !last_ident.empty())
                ptr_params.insert(last_ident);
              arg_has_ptr = false;
              last_ident.clear();
            }
          }
        }
        if (ptr_params.size() < 2) continue;
        std::size_t body_open = params_close + 1;
        while (body_open < call_close && toks[body_open].text != "{")
          ++body_open;
        if (body_open >= call_close) continue;
        const std::size_t body_close = match_close(toks, body_open);
        for (std::size_t k = body_open + 1; k + 1 < body_close; ++k) {
          if ((toks[k].text == "<" || toks[k].text == ">") &&
              ptr_params.count(toks[k - 1].text) != 0 &&
              ptr_params.count(toks[k + 1].text) != 0) {
            emit(file, "bacp-det-ptr-order", toks[k].line,
                 "sort comparator orders raw pointer parameters by address; "
                 "compare a stable field instead",
                 out);
            break;
          }
        }
      }
    }
  }
}

// --- bacp-det-wallclock -----------------------------------------------------

bool wallclock_sanctioned(const std::string& rel) {
  return rel.rfind("src/common/", 0) == 0 ||
         rel == "src/harness/config_cli.hpp" ||
         rel == "src/harness/config_cli.cpp";
}

void check_det_wallclock(const CodeModel& model, bool explicit_files,
                         std::vector<Finding>& out) {
  static const std::set<std::string> banned_calls = {
      "time",          "clock",    "rand",      "srand",   "random",
      "drand48",       "lrand48",  "mrand48",   "srand48", "gettimeofday",
      "clock_gettime", "localtime", "gmtime",   "mktime",  "getenv",
      "setenv",        "putenv",   "unsetenv",
  };
  static const std::set<std::string> clock_types = {
      "steady_clock", "system_clock", "high_resolution_clock"};
  for (const SourceFile& file : model.files) {
    if (!explicit_files && !in_scope(file.rel, Scope::kSimulation)) continue;
    if (wallclock_sanctioned(file.rel)) continue;
    const std::vector<Token>& toks = file.toks();
    // Per-file clock aliases: using X = ...steady_clock...;
    std::set<std::string> clock_names = clock_types;
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
      if (toks[i].text != "using" || toks[i + 2].text != "=") continue;
      if (toks[i + 1].kind != Tok::Identifier) continue;
      for (std::size_t j = i + 3; j < toks.size() && toks[j].text != ";"; ++j) {
        if (clock_types.count(toks[j].text) != 0) {
          clock_names.insert(toks[i + 1].text);
          break;
        }
      }
    }
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != Tok::Identifier) continue;
      const std::string& text = toks[i].text;
      if (banned_calls.count(text) != 0 && is_free_call(toks, i, text)) {
        // A method *declaration* that shares a banned name (CoreTimer::time)
        // is not a call: its parameter list is followed by cv-qualifiers, a
        // body, or an annotation rather than an expression continuation.
        const std::size_t after = match_close(toks, i + 1) + 1;
        if (after < toks.size() &&
            (toks[after].text == "const" || toks[after].text == "{" ||
             toks[after].text == "noexcept" || toks[after].text == "override" ||
             toks[after].text.rfind("BACP_", 0) == 0)) {
          continue;
        }
        emit(file, "bacp-det-wallclock", toks[i].line,
             "call to " + text +
                 "() injects wall-clock/environment state into the "
                 "simulation; sanctioned sites are src/common/ and "
                 "harness/config_cli",
             out);
        continue;
      }
      if (text == "random_device") {
        emit(file, "bacp-det-wallclock", toks[i].line,
             "std::random_device is nondeterministic; seed SplitMix/PCG "
             "streams from the config digest instead",
             out);
        continue;
      }
      if (clock_names.count(text) != 0 && i + 3 < toks.size() &&
          toks[i + 1].text == "::" && toks[i + 2].text == "now" &&
          toks[i + 3].text == "(") {
        emit(file, "bacp-det-wallclock", toks[i].line,
             "reading a real clock (" + text +
                 "::now) makes results timing-dependent; simulation time must "
                 "come from the epoch counter",
             out);
      }
    }
  }
}

// --- bacp-det-float-reduce --------------------------------------------------

/// True when `name` has a float-typed declaration in `toks` outside
/// [skip_begin, skip_end): a {double,float} token within the preceding eight
/// tokens with no statement/argument separators in between (covers
/// `double x`, `std::vector<double> xs`, `std::atomic<float> f`).
bool declared_float(const std::vector<Token>& toks, const std::string& name,
                    std::size_t skip_begin, std::size_t skip_end) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (i >= skip_begin && i < skip_end) continue;
    if (toks[i].kind != Tok::Identifier || toks[i].text != name) continue;
    const std::size_t lo = i >= 8 ? i - 8 : 0;
    for (std::size_t j = i; j-- > lo;) {
      const std::string& t = toks[j].text;
      if (t == ";" || t == "," || t == "(" || t == ")" || t == "{" ||
          t == "}" || t == "=") {
        break;
      }
      if (t == "double" || t == "float") return true;
    }
  }
  return false;
}

void check_det_float_reduce(const CodeModel& model, bool explicit_files,
                            std::vector<Finding>& out) {
  static const std::set<std::string> ops = {"+=", "-=", "*=", "/="};
  for (const SourceFile& file : model.files) {
    if (!explicit_files && !in_scope(file.rel, Scope::kSimulation)) continue;
    const std::vector<Token>& toks = file.toks();
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Tok::Identifier) continue;
      if (toks[i].text != "parallel_for" && toks[i].text != "submit") continue;
      if (toks[i + 1].text != "(") continue;
      const std::size_t call_close = match_close(toks, i + 1);
      for (std::size_t j = i + 2; j < call_close; ++j) {
        if (toks[j].text != "[") continue;
        const std::string& prev = toks[j - 1].text;
        if (prev != "(" && prev != "," && prev != "=") continue;
        const std::size_t intro_close = match_close(toks, j);
        std::size_t body_open = intro_close + 1;
        if (body_open < call_close && toks[body_open].text == "(") {
          body_open = match_close(toks, body_open) + 1;
        }
        while (body_open < call_close && toks[body_open].text != "{")
          ++body_open;
        if (body_open >= call_close) continue;
        const std::size_t body_close = match_close(toks, body_open);
        for (std::size_t k = body_open + 1; k < body_close; ++k) {
          if (toks[k].kind != Tok::Punct || ops.count(toks[k].text) == 0)
            continue;
          // LHS base identifier: step over a subscript if present.
          std::size_t lhs = k - 1;
          if (toks[lhs].text == "]") {
            int depth = 0;
            while (lhs > body_open) {
              if (toks[lhs].text == "]") ++depth;
              if (toks[lhs].text == "[" && --depth == 0) break;
              --lhs;
            }
            if (lhs == body_open) continue;
            --lhs;
          }
          if (toks[lhs].kind != Tok::Identifier) continue;
          const std::string& base = toks[lhs].text;
          // A declaration of `base` inside the lambda body means a local
          // accumulator; only captured floats race.
          bool local = false;
          for (std::size_t m = body_open + 1; m + 1 < body_close; ++m) {
            if ((toks[m].text == "double" || toks[m].text == "float" ||
                 toks[m].text == "auto") &&
                toks[m + 1].kind == Tok::Identifier &&
                toks[m + 1].text == base) {
              local = true;
              break;
            }
          }
          if (local) continue;
          if (declared_float(toks, base, body_open, body_close)) {
            emit(file, "bacp-det-float-reduce", toks[k].line,
                 "compound assignment to captured float `" + base +
                     "` inside a ThreadPool lambda: concurrent float "
                     "accumulation is order-dependent; reduce per-worker "
                     "partials after join",
                 out);
          }
        }
      }
    }
  }
}

// --- bacp-snapshot-fields ---------------------------------------------------

/// Collects every identifier reachable from the named seed methods of
/// `info`, following calls into other methods of the same class (inline or
/// out-of-line bodies).
std::set<std::string> reachable_identifiers(
    const CodeModel& model, const ClassInfo& info,
    std::initializer_list<const char*> seeds) {
  std::set<std::string> ids;
  std::set<std::string> visited;
  std::vector<std::string> work;
  for (const char* seed : seeds) {
    if (info.has_method(seed)) work.emplace_back(seed);
  }
  while (!work.empty()) {
    const std::string method = work.back();
    work.pop_back();
    if (!visited.insert(method).second) continue;
    std::vector<std::pair<const SourceFile*, std::pair<std::size_t, std::size_t>>>
        bodies;
    const auto inline_it = info.inline_bodies.find(method);
    if (inline_it != info.inline_bodies.end()) {
      for (const auto& range : inline_it->second)
        bodies.push_back({info.file, range});
    }
    const auto out_it = model.method_bodies.find({info.name, method});
    if (out_it != model.method_bodies.end()) {
      for (const MethodBody& body : out_it->second)
        bodies.push_back({body.file, {body.begin, body.end}});
    }
    for (const auto& [file, range] : bodies) {
      const std::vector<Token>& toks = file->toks();
      for (std::size_t i = range.first; i <= range.second && i < toks.size();
           ++i) {
        if (toks[i].kind != Tok::Identifier) continue;
        ids.insert(toks[i].text);
        if (info.has_method(toks[i].text) &&
            visited.count(toks[i].text) == 0) {
          work.push_back(toks[i].text);
        }
      }
    }
  }
  return ids;
}

void check_snapshot_fields(const CodeModel& model, bool explicit_files,
                           std::vector<Finding>& out) {
  for (const auto& [name, infos] : model.classes) {
    for (const ClassInfo& info : infos) {
      if (!explicit_files && !in_scope(info.file->rel, Scope::kSrcOnly))
        continue;
      const bool has_save =
          info.has_method("save_state") || info.has_method("save_into");
      const bool has_restore =
          info.has_method("restore_state") || info.has_method("restore_from");
      if (!has_save || !has_restore) continue;
      const std::set<std::string> save_ids =
          reachable_identifiers(model, info, {"save_state", "save_into"});
      const std::set<std::string> restore_ids = reachable_identifiers(
          model, info, {"restore_state", "restore_from"});
      for (const MemberVar& member : info.members) {
        const bool saved = save_ids.count(member.name) != 0;
        const bool restored = restore_ids.count(member.name) != 0;
        if (saved && restored) continue;
        std::string missing;
        if (!saved && !restored) {
          missing = "save and restore paths";
        } else if (!saved) {
          missing = "save path";
        } else {
          missing = "restore path";
        }
        emit(*info.file, "bacp-snapshot-fields", member.line,
             "member `" + member.name + "` of serialized class `" + name +
                 "` is not referenced on the " + missing +
                 "; a snapshot round-trip would silently drop or corrupt it",
             out);
      }
    }
  }
}

// --- bacp-reset-fields ------------------------------------------------------

/// Mirror of bacp-snapshot-fields for the reset contract: a class offering
/// reset_in_place() promises a rewind to cold-construction state, so every
/// member must be referenced somewhere on the reset path (directly or via a
/// same-class helper it calls). A member the reset never touches leaks the
/// previous trial's state into the next one — exactly the corruption class
/// the pooled-System engine (harness::SystemPool) must exclude. Immutable
/// geometry echoes and derived lookup tables are waived per-member with
/// `NOLINTNEXTLINE(bacp-reset-fields): why`.
void check_reset_fields(const CodeModel& model, bool explicit_files,
                        std::vector<Finding>& out) {
  for (const auto& [name, infos] : model.classes) {
    for (const ClassInfo& info : infos) {
      if (!explicit_files && !in_scope(info.file->rel, Scope::kSrcOnly))
        continue;
      if (!info.has_method("reset_in_place")) continue;
      const std::set<std::string> reset_ids =
          reachable_identifiers(model, info, {"reset_in_place"});
      for (const MemberVar& member : info.members) {
        if (reset_ids.count(member.name) != 0) continue;
        emit(*info.file, "bacp-reset-fields", member.line,
             "member `" + member.name + "` of resettable class `" + name +
                 "` is not referenced on the reset_in_place path; a pooled "
                 "reuse would leak the previous run's state into the next",
             out);
      }
    }
  }
}

// --- bacp-audit-coverage ----------------------------------------------------

void check_audit_coverage(const CodeModel& model, bool explicit_files,
                          std::vector<Finding>& out) {
  for (const auto& [name, infos] : model.classes) {
    for (const ClassInfo& info : infos) {
      if (!explicit_files && !in_scope(info.file->rel, Scope::kSrcOnly))
        continue;
      if (!info.has_method("audit_checkpoint")) continue;
      for (const MemberVar& member : info.members) {
        for (const std::string& type : member.type_ids) {
          if (type == name) continue;
          if (info.nested_types.count(type) != 0) continue;
          if (model.classes.count(type) == 0) continue;  // std / external
          if (model.audited_types.count(type) != 0) continue;
          emit(*info.file, "bacp-audit-coverage", member.line,
               "stateful member `" + member.name + "` (type `" + type +
                   "`) of audited aggregate `" + name +
                   "` has no registered audit_* entry point",
               out);
          break;  // one finding per member
        }
      }
    }
  }
}

// --- bacp-arg-lenient -------------------------------------------------------

void check_arg_lenient(const CodeModel& model, bool explicit_files,
                       std::vector<Finding>& out) {
  static const std::set<std::string> getters = {"get_u64", "get_i64",
                                               "get_double", "get_bool"};
  for (const SourceFile& file : model.files) {
    if (!explicit_files && !in_scope(file.rel, Scope::kAllCode)) continue;
    const std::vector<Token>& toks = file.toks();
    for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Tok::Identifier || getters.count(toks[i].text) == 0)
        continue;
      const std::string& prev = toks[i - 1].text;
      if (prev != "." && prev != "->") continue;
      if (toks[i + 1].text != "(") continue;
      emit(file, "bacp-arg-lenient", toks[i].line,
           "lenient ArgParser getter `" + toks[i].text +
               "` swallows typos; use the strict *_or_fail form "
               "(common/args.hpp)",
           out);
    }
  }
}

// --- bacp-raw-assert --------------------------------------------------------

void check_raw_assert(const CodeModel& model, bool explicit_files,
                      std::vector<Finding>& out) {
  for (const SourceFile& file : model.files) {
    if (!explicit_files && !in_scope(file.rel, Scope::kAllCode)) continue;
    if (file.rel == "src/common/assert.hpp") continue;
    const std::vector<Token>& toks = file.toks();
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (is_free_call(toks, i, "assert")) {
        emit(file, "bacp-raw-assert", toks[i].line,
             "raw assert() vanishes under NDEBUG; use BACP_ASSERT "
             "(common/assert.hpp) so release builds keep the invariant",
             out);
      }
    }
  }
}

// --- bacp-raw-strtol --------------------------------------------------------

void check_raw_strtol(const CodeModel& model, bool explicit_files,
                      std::vector<Finding>& out) {
  static const std::set<std::string> raw_parsers = {
      "strtoull", "strtoul", "strtoll", "strtol", "atoi", "atol", "atoll"};
  for (const SourceFile& file : model.files) {
    if (!explicit_files && !in_scope(file.rel, Scope::kAllCode)) continue;
    if (file.rel == "src/common/parse.cpp") continue;
    const std::vector<Token>& toks = file.toks();
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != Tok::Identifier ||
          raw_parsers.count(toks[i].text) == 0) {
        continue;
      }
      if (!is_free_call(toks, i, toks[i].text)) continue;
      emit(file, "bacp-raw-strtol", toks[i].line,
           "raw " + toks[i].text +
               "() accepts trailing garbage and saturates silently; use the "
               "strict parsers in common/parse.hpp",
           out);
    }
  }
}

// --- bacp-nolint-reason -----------------------------------------------------

void check_nolint_reason(const CodeModel& model, bool /*explicit_files*/,
                         std::vector<Finding>& out) {
  for (const SourceFile& file : model.files) {
    for (const NolintMarker& marker : file.lexed.nolints) {
      if (marker.well_formed) continue;
      // Deliberately not suppressible: a bare marker cannot waive itself.
      out.push_back(
          {file.rel, marker.line, "bacp-nolint-reason",
           "NOLINT marker without check id and reason; write "
           "`NOLINT(check-id): why this site is exempt`"});
    }
  }
}

// --- registry ---------------------------------------------------------------

using CheckFn = void (*)(const CodeModel&, bool, std::vector<Finding>&);

struct CheckEntry {
  CheckInfo info;
  CheckFn fn;
};

const std::vector<CheckEntry>& registry() {
  static const std::vector<CheckEntry> entries = {
      {{"bacp-det-ptr-key",
        "ordered containers keyed by raw pointers (address-order iteration)"},
       &check_det_ptr_key},
      {{"bacp-det-ptr-order",
        "hashing/sorting by raw pointer value (address-order results)"},
       &check_det_ptr_order},
      {{"bacp-det-wallclock",
        "wall-clock/environment reads outside sanctioned common/ sites"},
       &check_det_wallclock},
      {{"bacp-det-float-reduce",
        "float compound-assignment into captures inside ThreadPool lambdas"},
       &check_det_float_reduce},
      {{"bacp-snapshot-fields",
        "serialized classes whose members miss the save or restore path"},
       &check_snapshot_fields},
      {{"bacp-reset-fields",
        "resettable classes whose members miss the reset_in_place path"},
       &check_reset_fields},
      {{"bacp-audit-coverage",
        "audited aggregates with members lacking an audit_* entry point"},
       &check_audit_coverage},
      {{"bacp-arg-lenient",
        "lenient ArgParser getters instead of strict *_or_fail forms"},
       &check_arg_lenient},
      {{"bacp-raw-assert",
        "raw assert() instead of BACP_ASSERT (common/assert.hpp)"},
       &check_raw_assert},
      {{"bacp-raw-strtol",
        "raw strto*/ato* parsing instead of common/parse.hpp"},
       &check_raw_strtol},
      {{"bacp-nolint-reason",
        "NOLINT markers without a check id and reason"},
       &check_nolint_reason},
  };
  return entries;
}

}  // namespace

const std::vector<CheckInfo>& check_catalog() {
  static const std::vector<CheckInfo> catalog = [] {
    std::vector<CheckInfo> out;
    for (const CheckEntry& entry : registry()) out.push_back(entry.info);
    return out;
  }();
  return catalog;
}

std::vector<Finding> run_checks(const CodeModel& model,
                                const std::vector<std::string>& check_ids,
                                bool explicit_files) {
  std::vector<Finding> findings;
  for (const CheckEntry& entry : registry()) {
    if (!check_ids.empty() &&
        std::find(check_ids.begin(), check_ids.end(), entry.info.id) ==
            check_ids.end()) {
      continue;
    }
    entry.fn(model, explicit_files, findings);
  }
  std::sort(findings.begin(), findings.end());
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.rel == b.rel && a.line == b.line &&
                                      a.check == b.check;
                             }),
                 findings.end());
  return findings;
}

}  // namespace bacp::analyze
