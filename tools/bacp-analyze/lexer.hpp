#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bacp::analyze {

/// Token kinds the checks care about. Comments and whitespace never become
/// tokens; comments are collected per line (NOLINT markers live there).
/// A whole preprocessor directive (with continuations) is one PpDirective
/// token, so macro bodies can't masquerade as call expressions.
enum class Tok : std::uint8_t {
  Identifier,
  Number,
  String,   ///< string literal, including raw strings; text excludes quotes
  CharLit,  ///< character literal
  Punct,    ///< operator/punctuation; multi-char for :: -> += etc.
  PpDirective,
};

struct Token {
  Tok kind = Tok::Punct;
  std::string text;
  std::uint32_t line = 0;
};

/// One NOLINT marker parsed out of a comment. The repo convention (enforced
/// by the bacp-nolint-reason check) is
///     NOLINT(check-id[, check-id...]): reason text
/// optionally as NOLINTNEXTLINE(...): ... on the preceding line. A marker
/// missing the check list or the ": reason" tail is recorded as malformed
/// and suppresses nothing.
struct NolintMarker {
  bool nextline = false;
  bool well_formed = false;  ///< has (ids) and a non-empty ": reason"
  std::vector<std::string> ids;
  std::uint32_t line = 0;
};

/// Lexed translation unit: token stream plus per-line comment text and the
/// NOLINT markers found in comments.
struct LexedFile {
  std::vector<Token> tokens;
  std::map<std::uint32_t, std::string> comments;  ///< line -> comment text
  std::vector<NolintMarker> nolints;

  /// True when a well-formed marker for `check_id` covers `line` (same-line
  /// NOLINT or NOLINTNEXTLINE on the line above).
  bool suppressed(const std::string& check_id, std::uint32_t line) const;
};

/// Tokenizes C++ source. Handles //, /* */, string/char literals with
/// escapes, raw strings, digit separators and preprocessor continuations.
/// Never fails: unterminated constructs are closed at end of file.
LexedFile lex(const std::string& source);

}  // namespace bacp::analyze
