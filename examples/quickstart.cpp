// Quickstart: the three core steps of the bacp library in ~60 lines.
//
//   1. profile a workload's L2 reference stream with the hardware-faithful
//      MSA stack-distance profiler (12-bit partial tags, 1-in-32 sampling);
//   2. project its miss-ratio curve via the LRU inclusion property;
//   3. hand a set of curves to the Bank-aware allocator and get back a
//      physically realizable DNUCA partitioning plan.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <iostream>

#include "common/table.hpp"
#include "msa/stack_profiler.hpp"
#include "partition/bank_aware.hpp"
#include "trace/spec2000.hpp"
#include "trace/synthetic.hpp"

int main() {
  using namespace bacp;

  // --- 1. Profile a synthetic bzip2 running stand-alone. ----------------
  const auto& bzip2 = trace::spec2000_by_name("bzip2");
  trace::SyntheticTraceGenerator generator(bzip2, trace::GeneratorConfig{}, 1);
  msa::StackProfiler profiler(msa::ProfilerConfig{});  // production config
  for (int i = 0; i < 1'000'000; ++i) profiler.observe(generator.next().block);

  // --- 2. Project the miss-ratio curve. ----------------------------------
  const auto curve = profiler.curve();
  std::cout << "bzip2 projected miss ratio by dedicated ways:\n";
  common::Table curve_table({"ways", "miss ratio"});
  for (WayCount ways : {4u, 8u, 16u, 32u, 48u, 72u}) {
    curve_table.begin_row().add_cell(std::to_string(ways)).add_cell(
        curve.miss_ratio(ways), 3);
  }
  curve_table.print(std::cout);

  // --- 3. Partition an 8-workload mix Bank-aware. ------------------------
  partition::CmpGeometry geometry;  // 8 cores, 16 x 1MB banks
  const char* mix[] = {"bzip2", "eon",      "mcf",  "gcc",
                       "art",   "sixtrack", "swim", "facerec"};
  std::vector<msa::MissRatioCurve> curves;
  for (const char* name : mix) {
    const auto& model = trace::spec2000_by_name(name);
    curves.push_back(msa::MissRatioCurve::from_model(model, 128).scaled(model.l2_apki));
  }
  const auto plan = partition::bank_aware_partition(geometry, curves);

  std::cout << "\nBank-aware allocation (total "
            << plan.allocation.total() << " ways):\n";
  common::Table allocation_table({"core", "workload", "ways", "center banks"});
  for (CoreId core = 0; core < geometry.num_cores; ++core) {
    std::string banks;
    for (const BankId bank : plan.center_banks_of_core[core]) {
      banks += (banks.empty() ? "C" : "+C") + std::to_string(bank);
    }
    allocation_table.begin_row()
        .add_cell(std::to_string(core))
        .add_cell(mix[core])
        .add_cell(std::to_string(plan.allocation.ways_per_core[core]))
        .add_cell(banks.empty() ? "-" : banks);
  }
  allocation_table.print(std::cout);

  for (const auto& pair : plan.pairs) {
    std::cout << "cores " << pair.first << " & " << pair.second
              << " share their Local banks (" << pair.first_ways << "/"
              << pair.second_ways << " ways)\n";
  }
  return 0;
}
