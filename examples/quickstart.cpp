// Quickstart: the three core steps of the bacp library in ~60 lines.
//
//   1. profile a workload's L2 reference stream with the hardware-faithful
//      MSA stack-distance profiler (12-bit partial tags, 1-in-32 sampling);
//   2. project its miss-ratio curve via the LRU inclusion property;
//   3. hand a set of curves to the Bank-aware allocator and get back a
//      physically realizable DNUCA partitioning plan.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
// Add --json-out=plan.json / --csv-out=plan.csv to capture the result.

#include <iostream>

#include "msa/stack_profiler.hpp"
#include "obs/report.hpp"
#include "partition/bank_aware.hpp"
#include "trace/spec2000.hpp"
#include "trace/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace bacp;

  common::ArgParser parser(obs::with_report_flags({}));
  if (const auto exit_code = obs::handle_cli(parser, argc, argv)) return *exit_code;
  const auto options = obs::ReportOptions::from_args(parser);

  // --- 1. Profile a synthetic bzip2 running stand-alone. ----------------
  const auto& bzip2 = trace::spec2000_by_name("bzip2");
  trace::SyntheticTraceGenerator generator(bzip2, trace::GeneratorConfig{}, 1);
  msa::StackProfiler profiler(msa::ProfilerConfig{});  // production config
  for (int i = 0; i < 1'000'000; ++i) profiler.observe(generator.next().block);

  obs::Report report("quickstart", "Quickstart: profile -> curve -> partition");

  // --- 2. Project the miss-ratio curve. ----------------------------------
  const auto curve = profiler.curve();
  auto& curve_table = report.table("bzip2_curve", {"ways", "miss ratio"});
  for (WayCount ways : {4u, 8u, 16u, 32u, 48u, 72u}) {
    curve_table.begin_row().cell(std::to_string(ways)).cell(curve.miss_ratio(ways));
  }

  // --- 3. Partition an 8-workload mix Bank-aware. ------------------------
  partition::CmpGeometry geometry;  // 8 cores, 16 x 1MB banks
  const char* mix[] = {"bzip2", "eon",      "mcf",  "gcc",
                       "art",   "sixtrack", "swim", "facerec"};
  std::vector<msa::MissRatioCurve> curves;
  for (const char* name : mix) {
    const auto& model = trace::spec2000_by_name(name);
    curves.push_back(msa::MissRatioCurve::from_model(model, 128).scaled(model.l2_apki));
  }
  const auto plan = partition::bank_aware_partition(geometry, curves);

  auto& allocation_table =
      report.table("allocation", {"core", "workload", "ways", "center banks"});
  for (CoreId core = 0; core < geometry.num_cores; ++core) {
    std::string banks;
    for (const BankId bank : plan.center_banks_of_core[core]) {
      banks += (banks.empty() ? "C" : "+C") + std::to_string(bank);
    }
    allocation_table.begin_row()
        .cell(std::to_string(core))
        .cell(mix[core])
        .cell(std::to_string(plan.allocation.ways_per_core[core]))
        .cell(banks.empty() ? "-" : banks);
  }
  report.metric("total_allocated_ways", static_cast<std::uint64_t>(plan.allocation.total()));

  for (const auto& pair : plan.pairs) {
    report.note("cores " + std::to_string(pair.first) + " & " +
                std::to_string(pair.second) + " share their Local banks (" +
                std::to_string(pair.first_ways) + "/" +
                std::to_string(pair.second_ways) + " ways)");
  }
  return report.emit(std::cout, options) ? 0 : 1;
}
