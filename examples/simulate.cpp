// simulate — command-line driver for the full-system simulator. Runs any
// 8-workload mix under any policy without writing C++:
//
//   simulate --policy=bank-aware --instr=8000000
//            mcf art bzip2 gcc sixtrack swim facerec eon   (one mix)
//   simulate --set=Set7 --policy=none --csv
//   simulate --set=Set2 --json-out=run.json
//   simulate --list
//
// Prints per-core results as a table (or CSV for scripting) and writes the
// full structured result — including the per-epoch time series — with
// --json-out / --csv-out.

#include <iostream>
#include <sstream>

#include "common/args.hpp"
#include "common/table.hpp"
#include "harness/experiments.hpp"
#include "obs/report.hpp"
#include "sim/system.hpp"
#include "trace/mix.hpp"
#include "trace/spec2000.hpp"

namespace {

std::optional<bacp::sim::PolicyKind> parse_policy(const std::string& name) {
  using bacp::sim::PolicyKind;
  if (name == "none") return PolicyKind::NoPartition;
  if (name == "equal") return PolicyKind::EqualPartition;
  if (name == "bank-aware") return PolicyKind::BankAware;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bacp;

  common::ArgParser parser(obs::with_report_flags({
      {"policy=", "partitioning policy: none | equal | bank-aware (default)"},
      {"instr=", "measured instructions per core (default 8000000)"},
      {"warmup=", "warm-up instructions per core (default instr/2)"},
      {"epoch=", "repartition epoch in cycles (default 8000000)"},
      {"seed=", "simulation seed (default 42)"},
      {"set=", "run a paper Table III set (Set1..Set8) instead of a mix"},
      {"csv", "emit CSV instead of an aligned table"},
      {"list", "list the available workload models and exit"},
  }));
  if (const auto exit_code = obs::handle_cli(parser, argc, argv)) return *exit_code;
  const auto options = obs::ReportOptions::from_args(parser);
  if (parser.has("list")) {
    common::Table table({"workload", "L2 APKI", "miss ratio @16 ways", "@72 ways"});
    for (const auto& model : trace::spec2000_suite()) {
      table.begin_row()
          .add_cell(model.name)
          .add_cell(model.l2_apki, 1)
          .add_cell(model.miss_ratio(16), 3)
          .add_cell(model.miss_ratio(72), 3);
    }
    table.print(std::cout);
    return 0;
  }

  const auto policy = parse_policy(parser.get("policy", "bank-aware"));
  if (!policy) {
    std::cerr << "unknown policy; use none | equal | bank-aware\n";
    return 2;
  }

  trace::WorkloadMix mix;
  std::string label;
  if (parser.has("set")) {
    const auto set_name = parser.get("set", "");
    bool found = false;
    for (const auto& set : harness::table3_sets()) {
      if (set.label == set_name) {
        mix = set.mix();
        label = set.label;
        found = true;
      }
    }
    if (!found) {
      std::cerr << "unknown set " << set_name << " (use Set1..Set8)\n";
      return 2;
    }
  } else {
    if (parser.positional().size() != 8) {
      std::cerr << "need exactly 8 workload names (or --set=SetN); see --list\n";
      return 2;
    }
    for (const auto& name : parser.positional()) {
      bool known = false;
      for (const auto& model : trace::spec2000_suite()) {
        if (model.name == name) known = true;
      }
      if (!known) {
        std::cerr << "unknown workload '" << name << "'; see --list\n";
        return 2;
      }
    }
    mix = trace::mix_from_names(parser.positional());
    label = trace::mix_label(mix);
  }

  const std::uint64_t instructions = parser.get_u64_or_fail("instr", 8'000'000);
  const std::uint64_t warmup = parser.get_u64_or_fail("warmup", instructions / 2);

  sim::SystemConfig config = sim::SystemConfig::baseline();
  config.policy = *policy;
  config.epoch_cycles = parser.get_u64_or_fail("epoch", config.epoch_cycles);
  config.seed = parser.get_u64_or_fail("seed", config.seed);
  config.finalize();

  sim::System system(config, mix);
  system.warm_up(warmup);
  system.run(instructions);
  const auto results = system.results();

  obs::Report report("simulate", "mix: " + label + "   policy: " +
                                     std::string(to_string(*policy)) +
                                     "   instructions/core: " +
                                     std::to_string(instructions));
  report.meta("mix", label);
  report.meta("policy", to_string(*policy));
  report.meta("instructions", std::to_string(instructions));
  auto& table = report.table("per_core", {"core", "workload", "ways", "L2 accesses",
                                          "L2 misses", "miss ratio", "CPI"});
  for (CoreId core = 0; core < config.geometry.num_cores; ++core) {
    const auto& c = results.cores()[core];
    table.begin_row()
        .cell(std::to_string(core))
        .cell(c.workload())
        .cell(std::to_string(c.allocated_ways()))
        .cell(c.l2_accesses())
        .cell(c.l2_misses())
        .cell(c.l2_miss_ratio())
        .cell(c.cpi());
  }
  report.metric("l2_miss_ratio", results.l2_miss_ratio());
  report.metric("mean_cpi", results.mean_cpi());
  report.metric("epochs", results.epochs());
  // The full structured result (all component counters + epoch series).
  report.attach("system_results", results.to_json());

  if (parser.has("csv")) {
    // Legacy scripting mode: CSV on stdout; file sinks still honored.
    std::cout << report.to_csv();
    std::ostringstream sink;
    return report.emit(sink, options) ? 0 : 1;
  }
  return report.emit(std::cout, options) ? 0 : 1;
}
