// simulate — command-line driver for the full-system simulator. Runs any
// 8-workload mix under any policy without writing C++:
//
//   simulate --policy=bank-aware --instr=8000000
//            mcf art bzip2 gcc sixtrack swim facerec eon   (one mix)
//   simulate --set=Set7 --policy=none --csv
//   simulate --list
//
// Prints per-core results as a table (or CSV for scripting).

#include <iostream>

#include "common/args.hpp"
#include "common/table.hpp"
#include "harness/experiments.hpp"
#include "sim/system.hpp"
#include "trace/mix.hpp"
#include "trace/spec2000.hpp"

namespace {

std::optional<bacp::sim::PolicyKind> parse_policy(const std::string& name) {
  using bacp::sim::PolicyKind;
  if (name == "none") return PolicyKind::NoPartition;
  if (name == "equal") return PolicyKind::EqualPartition;
  if (name == "bank-aware") return PolicyKind::BankAware;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bacp;

  common::ArgParser parser({
      {"policy=", "partitioning policy: none | equal | bank-aware (default)"},
      {"instr=", "measured instructions per core (default 8000000)"},
      {"warmup=", "warm-up instructions per core (default instr/2)"},
      {"epoch=", "repartition epoch in cycles (default 8000000)"},
      {"seed=", "simulation seed (default 42)"},
      {"set=", "run a paper Table III set (Set1..Set8) instead of a mix"},
      {"csv", "emit CSV instead of an aligned table"},
      {"list", "list the available workload models and exit"},
      {"help", "show this help"},
  });
  if (!parser.parse(argc, argv)) {
    std::cerr << parser.error() << "\n\n" << parser.help("simulate");
    return 2;
  }
  if (parser.has("help")) {
    std::cout << parser.help("simulate");
    return 0;
  }
  if (parser.has("list")) {
    common::Table table({"workload", "L2 APKI", "miss ratio @16 ways", "@72 ways"});
    for (const auto& model : trace::spec2000_suite()) {
      table.begin_row()
          .add_cell(model.name)
          .add_cell(model.l2_apki, 1)
          .add_cell(model.miss_ratio(16), 3)
          .add_cell(model.miss_ratio(72), 3);
    }
    table.print(std::cout);
    return 0;
  }

  const auto policy = parse_policy(parser.get("policy", "bank-aware"));
  if (!policy) {
    std::cerr << "unknown policy; use none | equal | bank-aware\n";
    return 2;
  }

  trace::WorkloadMix mix;
  std::string label;
  if (parser.has("set")) {
    const auto set_name = parser.get("set", "");
    bool found = false;
    for (const auto& set : harness::table3_sets()) {
      if (set.label == set_name) {
        mix = set.mix();
        label = set.label;
        found = true;
      }
    }
    if (!found) {
      std::cerr << "unknown set " << set_name << " (use Set1..Set8)\n";
      return 2;
    }
  } else {
    if (parser.positional().size() != 8) {
      std::cerr << "need exactly 8 workload names (or --set=SetN); see --list\n";
      return 2;
    }
    for (const auto& name : parser.positional()) {
      bool known = false;
      for (const auto& model : trace::spec2000_suite()) {
        if (model.name == name) known = true;
      }
      if (!known) {
        std::cerr << "unknown workload '" << name << "'; see --list\n";
        return 2;
      }
    }
    mix = trace::mix_from_names(parser.positional());
    label = trace::mix_label(mix);
  }

  const std::uint64_t instructions = parser.get_u64("instr", 8'000'000);
  const std::uint64_t warmup = parser.get_u64("warmup", instructions / 2);

  sim::SystemConfig config = sim::SystemConfig::baseline();
  config.policy = *policy;
  config.epoch_cycles = parser.get_u64("epoch", config.epoch_cycles);
  config.seed = parser.get_u64("seed", config.seed);
  config.finalize();

  sim::System system(config, mix);
  system.warm_up(warmup);
  system.run(instructions);
  const auto results = system.results();

  common::Table table({"core", "workload", "ways", "L2 accesses", "L2 misses",
                       "miss ratio", "CPI"});
  for (CoreId core = 0; core < config.geometry.num_cores; ++core) {
    const auto& c = results.cores[core];
    const std::uint64_t accesses = c.l2_hits + c.l2_misses;
    table.begin_row()
        .add_cell(std::to_string(core))
        .add_cell(c.workload)
        .add_cell(std::to_string(c.allocated_ways))
        .add_cell(accesses)
        .add_cell(c.l2_misses)
        .add_cell(accesses ? static_cast<double>(c.l2_misses) /
                                 static_cast<double>(accesses)
                           : 0.0,
                  3)
        .add_cell(c.cpi, 3);
  }

  std::cout << "mix: " << label << "   policy: " << to_string(*policy)
            << "   instructions/core: " << instructions << '\n';
  if (parser.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "total L2 miss ratio " << common::Table::format_double(
                   results.l2_miss_ratio, 3)
            << ", mean CPI " << common::Table::format_double(results.mean_cpi, 3)
            << ", epochs " << results.epochs << '\n';
  return 0;
}
