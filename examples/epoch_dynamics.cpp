// Watches the dynamic side of the scheme: every epoch the controller reads
// the MSA profilers, reruns the Bank-aware allocator and reconfigures the
// banks. This example prints the per-epoch way allocations so you can see
// the partitioning converge from the equal-split bootstrap toward the
// steady-state assignment, and dumps the full obs::TimeSeries the
// simulator records (per-core ways and CPI, promotion/demotion deltas,
// DRAM and NoC traffic) for offline plotting via --json-out/--csv-out.
//
// Flags: --instr, --epoch (legacy env knobs BACP_EXAMPLE_INSTR,
// BACP_EXAMPLE_EPOCH still work).

#include <iostream>

#include "common/env.hpp"
#include "obs/report.hpp"
#include "sim/system.hpp"
#include "trace/mix.hpp"

int main(int argc, char** argv) {
  using namespace bacp;

  common::ArgParser parser(obs::with_report_flags(
      {{"instr=", "instructions per core (env BACP_EXAMPLE_INSTR)"},
       {"epoch=", "repartition epoch in cycles (env BACP_EXAMPLE_EPOCH)"}}));
  if (const auto exit_code = obs::handle_cli(parser, argc, argv)) return *exit_code;
  const auto options = obs::ReportOptions::from_args(parser);

  const auto mix = trace::mix_from_names(
      {"facerec", "eon", "mcf", "gcc", "bzip2", "sixtrack", "art", "gzip"});

  sim::SystemConfig config = sim::SystemConfig::baseline();
  config.policy = sim::PolicyKind::BankAware;
  config.epoch_cycles =
      parser.get_u64_or_fail("epoch", common::env_u64("BACP_EXAMPLE_EPOCH", 2'000'000));
  config.finalize();

  sim::System system(config, mix);
  system.run(parser.get_u64_or_fail("instr", common::env_u64("BACP_EXAMPLE_INSTR", 6'000'000)));
  const auto results = system.results();

  obs::Report report("epoch_dynamics", "Epoch-by-epoch Bank-aware allocations");
  auto& table = report.table("allocations", {"epoch", "facerec", "eon", "mcf", "gcc",
                                             "bzip2", "sixtrack", "art", "gzip"});
  std::size_t epoch_index = 0;
  for (const auto& allocation : system.allocation_history()) {
    auto& row = table.begin_row().cell(std::to_string(epoch_index++));
    for (const WayCount ways : allocation.ways_per_core) {
      row.cell(std::to_string(ways));
    }
  }

  auto& final_table =
      report.table("final", {"core", "workload", "ways", "measured miss ratio"});
  for (CoreId core = 0; core < 8; ++core) {
    const auto& c = results.cores()[core];
    final_table.begin_row()
        .cell(std::to_string(core))
        .cell(c.workload())
        .cell(std::to_string(c.allocated_ways()))
        .cell(c.l2_miss_ratio());
  }

  report.metric("epochs", results.epochs());
  report.metric("offview_hits", results.offview_hits());
  // The per-epoch time series the simulator recorded at every repartition
  // boundary — the machine-readable twin of the allocations table above.
  report.attach("epoch_series", results.epoch_series().to_json());
  report.note("series 'core<N>.ways' mirrors the allocations table; "
              "'promotions'/'demotions' are per-epoch deltas");
  return report.emit(std::cout, options) ? 0 : 1;
}
