// Watches the dynamic side of the scheme: every epoch the controller reads
// the MSA profilers, reruns the Bank-aware allocator and reconfigures the
// banks. This example prints the per-epoch way allocations so you can see
// the partitioning converge from the equal-split bootstrap toward the
// steady-state assignment (and how the histogram decay keeps it stable).
//
// Scale knobs: BACP_EXAMPLE_INSTR (default 6M), BACP_EXAMPLE_EPOCH (cycles).

#include <iostream>

#include "common/env.hpp"
#include "common/table.hpp"
#include "sim/system.hpp"
#include "trace/mix.hpp"

int main() {
  using namespace bacp;

  const auto mix = trace::mix_from_names(
      {"facerec", "eon", "mcf", "gcc", "bzip2", "sixtrack", "art", "gzip"});

  sim::SystemConfig config = sim::SystemConfig::baseline();
  config.policy = sim::PolicyKind::BankAware;
  config.epoch_cycles = common::env_u64("BACP_EXAMPLE_EPOCH", 2'000'000);
  config.finalize();

  sim::System system(config, mix);
  system.run(common::env_u64("BACP_EXAMPLE_INSTR", 6'000'000));
  const auto results = system.results();

  std::cout << "=== Epoch-by-epoch Bank-aware allocations ===\n";
  common::Table table({"epoch", "facerec", "eon", "mcf", "gcc", "bzip2",
                       "sixtrack", "art", "gzip"});
  std::size_t epoch_index = 0;
  for (const auto& allocation : system.allocation_history()) {
    auto& row = table.begin_row().add_cell(std::to_string(epoch_index++));
    for (const WayCount ways : allocation.ways_per_core) {
      row.add_cell(std::to_string(ways));
    }
  }
  table.print(std::cout);

  std::cout << "\nfinal profiler-projected miss ratios at the final allocation:\n";
  common::Table final_table({"core", "workload", "ways", "measured miss ratio"});
  for (CoreId core = 0; core < 8; ++core) {
    const auto& c = results.cores[core];
    const double accesses = static_cast<double>(c.l2_hits + c.l2_misses);
    final_table.begin_row()
        .add_cell(std::to_string(core))
        .add_cell(c.workload)
        .add_cell(std::to_string(c.allocated_ways))
        .add_cell(accesses > 0 ? static_cast<double>(c.l2_misses) / accesses : 0.0, 3);
  }
  final_table.print(std::cout);
  std::cout << "\nepochs run: " << results.epochs
            << ", off-partition transient hits absorbed: " << results.offview_hits
            << '\n';
  return 0;
}
