// The paper's motivating scenario (Section I): many small servers
// consolidated onto one 8-core CMP by virtualization, with dissimilar
// workloads competing for the shared L2. This example runs one such
// consolidation — a web-ish front end, two databases, batch compression,
// scientific batch jobs and an idle-ish service — under all three
// partitioning policies of the paper's evaluation and prints the per-VM
// damage report.
//
// Scale knob: BACP_EXAMPLE_INSTR (instructions per core, default 4M).

#include <iostream>

#include "common/env.hpp"
#include "common/table.hpp"
#include "sim/system.hpp"
#include "trace/mix.hpp"

int main() {
  using namespace bacp;

  // VM -> SPEC CPU2000 stand-in. The mix deliberately pairs latency-bound
  // services with streaming batch jobs: the unfair-interference case.
  const std::vector<std::pair<const char*, const char*>> vms = {
      {"web front end", "gzip"},    {"database A", "mcf"},
      {"database B", "twolf"},      {"batch compress", "bzip2"},
      {"hpc batch 1", "swim"},      {"hpc batch 2", "mgrid"},
      {"analytics", "art"},         {"idle service", "eon"},
  };
  std::vector<std::string> names;
  for (const auto& [vm, bench] : vms) names.emplace_back(bench);
  const auto mix = trace::mix_from_names(names);

  const std::uint64_t instructions =
      common::env_u64("BACP_EXAMPLE_INSTR", 4'000'000);

  common::Table table({"VM", "stand-in", "CPI none", "CPI equal", "CPI bank-aware",
                       "ways (bank-aware)"});
  std::vector<sim::SystemResults> results;
  for (const auto policy :
       {sim::PolicyKind::NoPartition, sim::PolicyKind::EqualPartition,
        sim::PolicyKind::BankAware}) {
    sim::SystemConfig config = sim::SystemConfig::baseline();
    config.policy = policy;
    config.finalize();
    sim::System system(config, mix);
    system.warm_up(instructions / 2);
    system.run(instructions);
    results.push_back(system.results());
  }

  for (std::size_t vm = 0; vm < vms.size(); ++vm) {
    table.begin_row()
        .add_cell(vms[vm].first)
        .add_cell(vms[vm].second)
        .add_cell(results[0].cores[vm].cpi, 2)
        .add_cell(results[1].cores[vm].cpi, 2)
        .add_cell(results[2].cores[vm].cpi, 2)
        .add_cell(std::to_string(results[2].cores[vm].allocated_ways));
  }

  std::cout << "=== Consolidated-server study (8 VMs on one CMP) ===\n";
  table.print(std::cout);
  std::cout << "\nwhole-chip L2 misses:  no-partitions " << results[0].l2_misses
            << "  equal " << results[1].l2_misses << "  bank-aware "
            << results[2].l2_misses << '\n'
            << "mean CPI:              no-partitions "
            << common::Table::format_double(results[0].mean_cpi, 3) << "  equal "
            << common::Table::format_double(results[1].mean_cpi, 3)
            << "  bank-aware "
            << common::Table::format_double(results[2].mean_cpi, 3) << '\n';
  return 0;
}
