// The paper's motivating scenario (Section I): many small servers
// consolidated onto one 8-core CMP by virtualization, with dissimilar
// workloads competing for the shared L2. This example runs one such
// consolidation — a web-ish front end, two databases, batch compression,
// scientific batch jobs and an idle-ish service — under all three
// partitioning policies of the paper's evaluation and prints the per-VM
// damage report.
//
// Flags: --instr, --json-out, --csv-out (legacy env knob
// BACP_EXAMPLE_INSTR still works).

#include <iostream>

#include "common/env.hpp"
#include "obs/report.hpp"
#include "sim/system.hpp"
#include "trace/mix.hpp"

int main(int argc, char** argv) {
  using namespace bacp;

  common::ArgParser parser(obs::with_report_flags(
      {{"instr=", "instructions per core (env BACP_EXAMPLE_INSTR)"}}));
  if (const auto exit_code = obs::handle_cli(parser, argc, argv)) return *exit_code;
  const auto options = obs::ReportOptions::from_args(parser);

  // VM -> SPEC CPU2000 stand-in. The mix deliberately pairs latency-bound
  // services with streaming batch jobs: the unfair-interference case.
  const std::vector<std::pair<const char*, const char*>> vms = {
      {"web front end", "gzip"},    {"database A", "mcf"},
      {"database B", "twolf"},      {"batch compress", "bzip2"},
      {"hpc batch 1", "swim"},      {"hpc batch 2", "mgrid"},
      {"analytics", "art"},         {"idle service", "eon"},
  };
  std::vector<std::string> names;
  for (const auto& [vm, bench] : vms) names.emplace_back(bench);
  const auto mix = trace::mix_from_names(names);

  const std::uint64_t instructions =
      parser.get_u64_or_fail("instr", common::env_u64("BACP_EXAMPLE_INSTR", 4'000'000));

  std::vector<sim::SystemResults> results;
  for (const auto policy :
       {sim::PolicyKind::NoPartition, sim::PolicyKind::EqualPartition,
        sim::PolicyKind::BankAware}) {
    sim::SystemConfig config = sim::SystemConfig::baseline();
    config.policy = policy;
    config.finalize();
    sim::System system(config, mix);
    system.warm_up(instructions / 2);
    system.run(instructions);
    results.push_back(system.results());
  }

  obs::Report report("consolidated_server",
                     "Consolidated-server study (8 VMs on one CMP)");
  report.meta("instructions", std::to_string(instructions));
  auto& table = report.table("per_vm", {"VM", "stand-in", "CPI none", "CPI equal",
                                        "CPI bank-aware", "ways (bank-aware)"});
  for (std::size_t vm = 0; vm < vms.size(); ++vm) {
    table.begin_row()
        .cell(vms[vm].first)
        .cell(vms[vm].second)
        .cell(results[0].cores()[vm].cpi(), 2)
        .cell(results[1].cores()[vm].cpi(), 2)
        .cell(results[2].cores()[vm].cpi(), 2)
        .cell(std::to_string(results[2].cores()[vm].allocated_ways()));
  }

  report.metric("none_l2_misses", results[0].l2_misses());
  report.metric("equal_l2_misses", results[1].l2_misses());
  report.metric("bank_aware_l2_misses", results[2].l2_misses());
  report.metric("none_mean_cpi", results[0].mean_cpi());
  report.metric("equal_mean_cpi", results[1].mean_cpi());
  report.metric("bank_aware_mean_cpi", results[2].mean_cpi());
  return report.emit(std::cout, options) ? 0 : 1;
}
