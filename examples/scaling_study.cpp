// The paper motivates Bank-aware partitioning as a scheme that "can scale
// with the number of cores". This example exercises exactly that: the same
// Monte-Carlo comparison (Fig. 7 methodology) on growing CMP geometries —
// 4 cores / 8 banks up to 16 cores / 32 banks — each keeping the paper's
// 2-banks-per-core shape. The banking rules and the allocator are geometry-
// generic, so nothing else changes.
//
// Scale knob: BACP_EXAMPLE_TRIALS (default 200).

#include <iostream>

#include "common/env.hpp"
#include "common/table.hpp"
#include "harness/monte_carlo.hpp"

int main() {
  using namespace bacp;

  struct Shape {
    std::uint32_t cores;
    std::uint32_t banks;
  };
  const Shape shapes[] = {{4, 8}, {8, 16}, {12, 24}, {16, 32}};
  const std::size_t trials = common::env_u64("BACP_EXAMPLE_TRIALS", 200);

  std::cout << "=== Bank-aware scalability across CMP geometries ===\n";
  common::Table table({"cores", "banks", "total ways", "mean Unrestricted/fixed",
                       "mean Bank-aware/fixed"});
  for (const auto& shape : shapes) {
    harness::MonteCarloConfig config;
    config.geometry.num_cores = shape.cores;
    config.geometry.num_banks = shape.banks;
    config.trials = trials;
    config.seed = 7;
    const auto summary = harness::run_monte_carlo(config);
    table.begin_row()
        .add_cell(std::to_string(shape.cores))
        .add_cell(std::to_string(shape.banks))
        .add_cell(std::to_string(config.geometry.total_ways()))
        .add_cell(summary.mean_unrestricted_ratio, 3)
        .add_cell(summary.mean_bank_aware_ratio, 3);
  }
  table.print(std::cout);
  std::cout << "\nThe Bank-aware/Unrestricted gap should stay small at every "
               "scale: the banking\nrestrictions cost a few points regardless "
               "of core count (paper Section IV-A).\n";
  return 0;
}
