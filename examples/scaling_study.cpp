// The paper motivates Bank-aware partitioning as a scheme that "can scale
// with the number of cores". This example exercises exactly that: the same
// Monte-Carlo comparison (Fig. 7 methodology) on growing CMP geometries —
// 4 cores / 8 banks up to 16 cores / 32 banks — each keeping the paper's
// 2-banks-per-core shape. The banking rules and the allocator are geometry-
// generic, so nothing else changes.
//
// Flags: --trials, --json-out, --csv-out (legacy env knob
// BACP_EXAMPLE_TRIALS still works).

#include <iostream>

#include "common/env.hpp"
#include "harness/monte_carlo.hpp"
#include "obs/report.hpp"

int main(int argc, char** argv) {
  using namespace bacp;

  common::ArgParser parser(obs::with_report_flags(
      {{"trials=", "Monte-Carlo trials per geometry (env BACP_EXAMPLE_TRIALS)"}}));
  if (const auto exit_code = obs::handle_cli(parser, argc, argv)) return *exit_code;
  const auto options = obs::ReportOptions::from_args(parser);

  struct Shape {
    std::uint32_t cores;
    std::uint32_t banks;
  };
  const Shape shapes[] = {{4, 8}, {8, 16}, {12, 24}, {16, 32}};
  const std::size_t trials = static_cast<std::size_t>(
      parser.get_u64_or_fail("trials", common::env_u64("BACP_EXAMPLE_TRIALS", 200)));

  obs::Report report("scaling_study",
                     "Bank-aware scalability across CMP geometries");
  report.meta("trials", std::to_string(trials));
  auto& table =
      report.table("geometries", {"cores", "banks", "total ways",
                                  "mean Unrestricted/fixed", "mean Bank-aware/fixed"});
  for (const auto& shape : shapes) {
    partition::CmpGeometry geometry;
    geometry.num_cores = shape.cores;
    geometry.num_banks = shape.banks;
    const auto config = harness::MonteCarloConfig{}
                            .with_geometry(geometry)
                            .with_trials(trials)
                            .with_seed(7);
    const auto summary = harness::run_monte_carlo(config);
    table.begin_row()
        .cell(std::to_string(shape.cores))
        .cell(std::to_string(shape.banks))
        .cell(std::to_string(geometry.total_ways()))
        .cell(summary.mean_unrestricted_ratio)
        .cell(summary.mean_bank_aware_ratio);
    if (shape.cores == 16) {
      report.metric("largest_geometry_bank_aware_ratio",
                    summary.mean_bank_aware_ratio);
    }
  }
  report.note("the Bank-aware/Unrestricted gap should stay small at every "
              "scale: the banking restrictions cost a few points regardless "
              "of core count (paper Section IV-A)");
  return report.emit(std::cout, options) ? 0 : 1;
}
