// Sampled-interval validation bench: how far the bacp::sampling estimator
// lands from the full detailed run it extrapolates, and how much detailed
// simulation it buys back. For each random mix the bench runs the complete
// detailed simulation (every interval) and the sampled run (K k-medoid
// representatives, snapshot-forked boundaries), then reports per-mix
// relative errors and the wall-clock detail-time reduction from the phase
// timers.
//
// This is a *gated* bench: it exits non-zero unless the p95 relative
// miss-ratio error is at or under --max-p95-error (default 3%) AND the
// detailed-simulation time shrank by at least --min-detail-reduction
// (default 20x). CI runs it as the sampling-validation job, so an estimator
// regression fails the build instead of quietly biasing million-mix sweeps.
//
// Flags: --mixes, --seed, --sampled, --intervals, --interval-instr,
// --warmup, --max-p95-error, --min-detail-reduction, --json-out, --csv-out.

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "common/args.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "obs/phase_timer.hpp"
#include "obs/report.hpp"
#include "partition/partition_types.hpp"
#include "sampling/sampled_run.hpp"
#include "sim/system.hpp"
#include "trace/mix.hpp"
#include "trace/spec2000.hpp"

int main(int argc, char** argv) {
  using namespace bacp;

  common::ArgParser parser(obs::with_report_flags({
      {"mixes=", "random mixes to validate (default 8)"},
      {"seed=", "mix-draw and simulation seed (default 2009)"},
      {"sampled=", "representative intervals K per mix (default 3)"},
      {"intervals=", "total intervals per run (default 96)"},
      {"interval-instr=", "instructions per interval per core (default 50000)"},
      {"warmup=", "detailed warm-up instructions before interval 0 (default 500000)"},
      {"max-p95-error=", "gate: max p95 relative miss-ratio error (default 0.03)"},
      {"min-detail-reduction=", "gate: min detail-time reduction factor (default 20)"},
  }));
  if (const auto exit_code = obs::handle_cli(parser, argc, argv)) return *exit_code;
  const auto options = obs::ReportOptions::from_args(parser);

  const std::uint64_t mixes = parser.get_u64_or_fail("mixes", 8);
  const std::uint64_t seed = parser.get_u64_or_fail("seed", 2009);
  sampling::SampledRunConfig run;
  run.k = static_cast<std::uint32_t>(parser.get_u64_or_fail("sampled", 3));
  run.num_intervals =
      static_cast<std::uint32_t>(parser.get_u64_or_fail("intervals", 96));
  run.interval_instructions = parser.get_u64_or_fail("interval-instr", 50'000);
  run.warmup_instructions = parser.get_u64_or_fail("warmup", 500'000);
  const double max_p95_error = parser.get_double_or_fail("max-p95-error", 0.03);
  const double min_reduction = parser.get_double_or_fail("min-detail-reduction", 20.0);

  const partition::CmpGeometry geometry;
  const sim::SystemConfig config =
      sampling::sampled_system_config(geometry, seed, run.interval_instructions);

  auto& timers = obs::global_phase_timers();
  timers.clear();  // only this bench's phases feed the reduction gate

  obs::Report report("sampling_error",
                     "Sampled-interval estimator error vs full detailed runs");
  report.meta("mixes", std::to_string(mixes));
  report.meta("seed", std::to_string(seed));
  report.meta("sampled", std::to_string(run.k));
  report.meta("intervals", std::to_string(run.num_intervals));
  report.meta("interval_instr", std::to_string(run.interval_instructions));
  report.meta("warmup", std::to_string(run.warmup_instructions));

  auto& table = report.table("mixes", {"mix", "full_miss_ratio", "sampled_miss_ratio",
                                       "miss_error", "full_cpi", "sampled_cpi",
                                       "cpi_error"});

  std::vector<double> miss_errors;
  std::vector<double> cpi_errors;
  const std::size_t suite_size = trace::spec2000_suite().size();
  for (std::uint64_t index = 0; index < mixes; ++index) {
    // The Monte-Carlo discipline: mix i is a pure function of (seed, i).
    common::Rng rng(seed, index);
    const trace::WorkloadMix mix =
        trace::random_mix(rng, suite_size, geometry.num_cores);

    // The ground truth is the every-interval detailed run under the same
    // measurement protocol the sampler extrapolates: each interval measured
    // in isolation (reset at its boundary), misses/accesses pooled over the
    // population and CPI averaged with equal interval weight. A single
    // run() over the whole span measures something different — each core's
    // window then covers a different stretch of global time — and would
    // charge the estimator for a protocol mismatch, not estimation error.
    double full_ratio = 0.0;
    double full_cpi = 0.0;
    {
      sim::System full(config, mix);
      full.warm_up(run.warmup_instructions);
      const auto scope = timers.scope("full.detail");
      double misses = 0.0;
      double accesses = 0.0;
      std::vector<double> interval_cpis;
      interval_cpis.reserve(run.num_intervals);
      for (std::uint32_t interval = 0; interval < run.num_intervals; ++interval) {
        full.reset_measurement();
        full.run(run.interval_instructions);
        const sim::SystemResults results = full.results();
        misses += static_cast<double>(results.l2_misses());
        accesses += static_cast<double>(results.l2_accesses());
        interval_cpis.push_back(results.mean_cpi());
      }
      full_ratio = accesses > 0.0 ? misses / accesses : 0.0;
      full_cpi = common::arithmetic_mean(interval_cpis);
    }

    const sampling::SampledEstimate estimate =
        sampling::run_sampled_mix(config, mix, run, nullptr, nullptr);

    const double miss_error =
        full_ratio > 0.0 ? std::abs(estimate.miss_ratio - full_ratio) / full_ratio
                         : 0.0;
    const double cpi_error =
        full_cpi > 0.0 ? std::abs(estimate.cpi - full_cpi) / full_cpi : 0.0;
    miss_errors.push_back(miss_error);
    cpi_errors.push_back(cpi_error);

    table.begin_row()
        .cell(std::to_string(index))
        .cell(full_ratio, 5)
        .cell(estimate.miss_ratio, 5)
        .cell(miss_error, 5)
        .cell(full_cpi, 4)
        .cell(estimate.cpi, 4)
        .cell(cpi_error, 5);
  }

  const double p50_error = common::percentile(miss_errors, 50.0);
  const double p95_error = common::percentile(miss_errors, 95.0);
  const double max_error = common::percentile(miss_errors, 100.0);
  const double cpi_p95 = common::percentile(cpi_errors, 95.0);

  // The time the estimator is allowed to claim it saved: detailed-interval
  // simulation only. Warm-up/fast-forward/profiling overheads are reported
  // separately — at Monte-Carlo scale they amortize across trials through
  // the profile bank and snapshot store, which this serial bench forgoes.
  const double full_detail_s = timers.seconds("full.detail");
  const double sampled_detail_s = timers.seconds("sampling.detail");
  const double sampled_warm_s = timers.seconds("sampling.warm");
  const double detail_reduction =
      sampled_detail_s > 0.0 ? full_detail_s / sampled_detail_s : 0.0;

  report.metric("miss_error_p50", p50_error, 5);
  report.metric("miss_error_p95", p95_error, 5);
  report.metric("miss_error_max", max_error, 5);
  report.metric("cpi_error_p95", cpi_p95, 5);
  report.metric("detail_reduction", detail_reduction, 2);
  report.metric("full_detail_seconds", full_detail_s, 3);
  report.metric("sampled_detail_seconds", sampled_detail_s, 3);
  report.metric("sampled_warm_seconds", sampled_warm_s, 3);
  report.metric("gate_max_p95_error", max_p95_error, 5);
  report.metric("gate_min_detail_reduction", min_reduction, 2);
  report.note("gated bench: exits non-zero when miss_error_p95 > "
              "gate_max_p95_error or detail_reduction < "
              "gate_min_detail_reduction");

  if (!report.emit(std::cout, options)) return 1;

  bool failed = false;
  if (p95_error > max_p95_error) {
    std::cerr << "GATE FAILED: miss_error_p95 " << p95_error << " > "
              << max_p95_error << "\n";
    failed = true;
  }
  if (detail_reduction < min_reduction) {
    std::cerr << "GATE FAILED: detail_reduction " << detail_reduction << " < "
              << min_reduction << "\n";
    failed = true;
  }
  return failed ? 1 : 0;
}
