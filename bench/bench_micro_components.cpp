// Engineering micro-benchmarks (google-benchmark): per-operation cost of
// the hot simulator components. These back the claim that the profiler and
// allocator are cheap enough to run at every epoch of a long simulation.
//
// Accepts --json-out/--csv-out like the other benches; the flags are
// stripped from argv before google-benchmark parses it, and every timed
// run lands in the report as a `<name>_real_time` metric.

#include <benchmark/benchmark.h>

#include <sstream>

#include "msa/stack_profiler.hpp"
#include "nuca/dnuca_cache.hpp"
#include "obs/report.hpp"
#include "partition/bank_aware.hpp"
#include "partition/static_policies.hpp"
#include "partition/unrestricted.hpp"
#include "trace/spec2000.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace bacp;

void BM_GeneratorNext(benchmark::State& state) {
  const auto& model = trace::spec2000_by_name("bzip2");
  trace::GeneratorConfig config;
  trace::SyntheticTraceGenerator generator(model, config, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.next().block);
  }
}
BENCHMARK(BM_GeneratorNext);

void BM_ProfilerObserve(benchmark::State& state) {
  const auto& model = trace::spec2000_by_name("bzip2");
  trace::GeneratorConfig config;
  trace::SyntheticTraceGenerator generator(model, config, 1);
  msa::ProfilerConfig profiler_config;
  profiler_config.set_sampling = static_cast<std::uint32_t>(state.range(0));
  msa::StackProfiler profiler(profiler_config);
  for (auto _ : state) {
    profiler.observe(generator.next().block);
  }
}
BENCHMARK(BM_ProfilerObserve)->Arg(1)->Arg(32);

void BM_L2Access(benchmark::State& state) {
  nuca::DnucaConfig config;
  config.aggregation = static_cast<nuca::AggregationKind>(state.range(0));
  noc::NocConfig noc_config;
  noc::Noc noc(noc_config);
  nuca::DnucaCache l2(config, noc);
  l2.apply_assignment(partition::equal_partition(config.geometry).assignment);

  const auto& model = trace::spec2000_by_name("art");
  trace::GeneratorConfig generator_config;
  trace::SyntheticTraceGenerator generator(model, generator_config, 1);
  Cycle now = 0;
  for (auto _ : state) {
    const auto access = generator.next();
    benchmark::DoNotOptimize(l2.access(access.block, 0, access.is_write, now));
    now += 10;
  }
}
BENCHMARK(BM_L2Access)
    ->Arg(static_cast<int>(nuca::AggregationKind::Parallel))
    ->Arg(static_cast<int>(nuca::AggregationKind::Cascade));

void BM_BankAwareAllocator(benchmark::State& state) {
  partition::CmpGeometry geometry;
  const auto& suite = trace::spec2000_suite();
  std::vector<msa::MissRatioCurve> curves;
  for (CoreId core = 0; core < geometry.num_cores; ++core) {
    const auto& model = suite[core % suite.size()];
    curves.push_back(msa::MissRatioCurve::from_model(model, 128).scaled(model.l2_apki));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::bank_aware_partition(geometry, curves));
  }
}
BENCHMARK(BM_BankAwareAllocator);

void BM_UnrestrictedAllocator(benchmark::State& state) {
  partition::CmpGeometry geometry;
  const auto& suite = trace::spec2000_suite();
  std::vector<msa::MissRatioCurve> curves;
  for (CoreId core = 0; core < geometry.num_cores; ++core) {
    const auto& model = suite[(core * 3) % suite.size()];
    curves.push_back(msa::MissRatioCurve::from_model(model, 128).scaled(model.l2_apki));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::unrestricted_partition(geometry, curves));
  }
}
BENCHMARK(BM_UnrestrictedAllocator);

// ConsoleReporter that additionally funnels every completed run into the
// obs::Report, so --json-out captures the same numbers the console shows.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CollectingReporter(obs::Report& report)
      : report_(report),
        table_(report.table("benchmarks", {"benchmark", "real time", "cpu time",
                                           "unit", "iterations"})) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      table_.begin_row()
          .cell(name)
          .cell(run.GetAdjustedRealTime())
          .cell(run.GetAdjustedCPUTime())
          .cell(benchmark::GetTimeUnitString(run.time_unit))
          .cell(static_cast<std::uint64_t>(run.iterations));
      report_.metric(name + "_real_time", run.GetAdjustedRealTime());
    }
  }

 private:
  obs::Report& report_;
  obs::ReportTable& table_;
};

}  // namespace

int main(int argc, char** argv) {
  // Pull our flags out before google-benchmark rejects them as unknown.
  const auto options = bacp::obs::ReportOptions::extract_from_argv(argc, argv);

  bacp::obs::Report report("micro_components",
                           "Micro-benchmarks: hot simulator components");
  CollectingReporter reporter(report);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  // The ConsoleReporter already printed the live results; emit only writes
  // the optional JSON/CSV artifacts, so the console copy goes to a sink.
  std::ostringstream sink;
  return report.emit(sink, options) ? 0 : 1;
}
