// Engineering micro-benchmarks (google-benchmark): per-operation cost of
// the hot simulator components. These back the claim that the profiler and
// allocator are cheap enough to run at every epoch of a long simulation.

#include <benchmark/benchmark.h>

#include "msa/stack_profiler.hpp"
#include "nuca/dnuca_cache.hpp"
#include "partition/bank_aware.hpp"
#include "partition/static_policies.hpp"
#include "partition/unrestricted.hpp"
#include "trace/spec2000.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace bacp;

void BM_GeneratorNext(benchmark::State& state) {
  const auto& model = trace::spec2000_by_name("bzip2");
  trace::GeneratorConfig config;
  trace::SyntheticTraceGenerator generator(model, config, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.next().block);
  }
}
BENCHMARK(BM_GeneratorNext);

void BM_ProfilerObserve(benchmark::State& state) {
  const auto& model = trace::spec2000_by_name("bzip2");
  trace::GeneratorConfig config;
  trace::SyntheticTraceGenerator generator(model, config, 1);
  msa::ProfilerConfig profiler_config;
  profiler_config.set_sampling = static_cast<std::uint32_t>(state.range(0));
  msa::StackProfiler profiler(profiler_config);
  for (auto _ : state) {
    profiler.observe(generator.next().block);
  }
}
BENCHMARK(BM_ProfilerObserve)->Arg(1)->Arg(32);

void BM_L2Access(benchmark::State& state) {
  nuca::DnucaConfig config;
  config.aggregation = static_cast<nuca::AggregationKind>(state.range(0));
  noc::NocConfig noc_config;
  noc::Noc noc(noc_config);
  nuca::DnucaCache l2(config, noc);
  l2.apply_assignment(partition::equal_partition(config.geometry).assignment);

  const auto& model = trace::spec2000_by_name("art");
  trace::GeneratorConfig generator_config;
  trace::SyntheticTraceGenerator generator(model, generator_config, 1);
  Cycle now = 0;
  for (auto _ : state) {
    const auto access = generator.next();
    benchmark::DoNotOptimize(l2.access(access.block, 0, access.is_write, now));
    now += 10;
  }
}
BENCHMARK(BM_L2Access)
    ->Arg(static_cast<int>(nuca::AggregationKind::Parallel))
    ->Arg(static_cast<int>(nuca::AggregationKind::Cascade));

void BM_BankAwareAllocator(benchmark::State& state) {
  partition::CmpGeometry geometry;
  const auto& suite = trace::spec2000_suite();
  std::vector<msa::MissRatioCurve> curves;
  for (CoreId core = 0; core < geometry.num_cores; ++core) {
    const auto& model = suite[core % suite.size()];
    curves.push_back(msa::MissRatioCurve::from_model(model, 128).scaled(model.l2_apki));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::bank_aware_partition(geometry, curves));
  }
}
BENCHMARK(BM_BankAwareAllocator);

void BM_UnrestrictedAllocator(benchmark::State& state) {
  partition::CmpGeometry geometry;
  const auto& suite = trace::spec2000_suite();
  std::vector<msa::MissRatioCurve> curves;
  for (CoreId core = 0; core < geometry.num_cores; ++core) {
    const auto& model = suite[(core * 3) % suite.size()];
    curves.push_back(msa::MissRatioCurve::from_model(model, 128).scaled(model.l2_apki));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::unrestricted_partition(geometry, curves));
  }
}
BENCHMARK(BM_UnrestrictedAllocator);

}  // namespace

BENCHMARK_MAIN();
