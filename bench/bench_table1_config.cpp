// Reproduces paper Table I: the baseline DNUCA-CMP parameters, as actually
// instantiated by SystemConfig::baseline(). Anything printed here is read
// back from the live configuration objects, so the table cannot drift from
// the simulator.
//
// Flags: --json-out, --csv-out.

#include <iostream>

#include "obs/report.hpp"
#include "sim/system_config.hpp"

int main(int argc, char** argv) {
  using namespace bacp;

  common::ArgParser parser(obs::with_report_flags({}));
  if (const auto exit_code = obs::handle_cli(parser, argc, argv)) return *exit_code;
  const auto options = obs::ReportOptions::from_args(parser);

  const auto config = sim::SystemConfig::baseline();

  obs::Report report("table1_config", "Table I: baseline DNUCA-CMP parameters");
  auto& table = report.table("parameters", {"parameter", "paper (Table I)",
                                            "this model"});
  auto row = [&](const char* name, const char* paper, const std::string& ours) {
    table.begin_row().cell(name).cell(paper).cell(ours);
  };

  row("L1 cache", "64 KB, 2-way, 3 cycles, 64 B blocks",
      std::to_string(config.l1_sets * config.l1_ways * 64 / 1024) + " KB, " +
          std::to_string(config.l1_ways) + "-way, " +
          std::to_string(config.l1_latency) + " cycles, 64 B blocks");
  row("L2 cache", "16 MB (16 x 1 MB banks), 8-way, 10-70 cycles",
      std::to_string(config.geometry.num_banks) + " x " +
          std::to_string(config.sets_per_bank * config.geometry.ways_per_bank * 64 /
                         (1024 * 1024)) +
          " MB banks, " + std::to_string(config.geometry.ways_per_bank) + "-way, " +
          std::to_string(config.noc.cycles_per_hop) + "-" +
          std::to_string(config.noc.cycles_per_hop * config.noc.max_hops) +
          " cycles bank access");
  row("128-way equivalent", "16 banks x 8 ways",
      std::to_string(config.geometry.total_ways()) + " ways x " +
          std::to_string(config.sets_per_bank) + " sets");
  row("Memory latency", "260 cycles", std::to_string(config.dram.access_latency) + " cycles");
  row("Memory bandwidth", "64 GB/s",
      "1 line / " + std::to_string(config.dram.cycles_per_line) + " cycles (= 64 GB/s @ 4 GHz)");
  row("Outstanding requests", "16 / core",
      std::to_string(config.mshr.entries_per_core) + " / core");
  row("Cores", "8 x 4-wide OoO, 128-entry ROB",
      std::to_string(config.geometry.num_cores) + " x MLP-windowed OoO timing model");
  row("Repartition epoch", "100M cycles",
      std::to_string(config.epoch_cycles) + " cycles (scaled; override epoch_cycles)");
  row("Max assignable capacity", "9/16 of cache",
      std::to_string(config.geometry.max_assignable_ways()) + " of " +
          std::to_string(config.geometry.total_ways()) + " ways");

  report.metric("total_ways", std::uint64_t{config.geometry.total_ways()});
  report.metric("max_assignable_ways",
                std::uint64_t{config.geometry.max_assignable_ways()});
  return report.emit(std::cout, options) ? 0 : 1;
}
