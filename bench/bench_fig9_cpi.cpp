// Reproduces paper Fig. 9: relative CPI of Equal-partitions and Bank-aware
// over No-partitions for the eight Table III sets plus the geometric mean.
// Paper headline: Bank-aware reduces CPI ~43% vs. No-partitions (GM ~0.57)
// and ~11% vs. Equal-partitions. Note the paper's Fig. 8-vs-9 observation:
// CPI gains are smaller than miss gains, and low-MPKI sets (Set 1) show
// large miss reductions with little CPI change.
//
// Scale knobs: BACP_SIM_WARMUP, BACP_SIM_INSTR, BACP_SIM_SETS,
// BACP_SIM_EPOCH, BACP_SIM_SEED.

#include <iostream>

#include "common/env.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/experiments.hpp"

int main() {
  using namespace bacp;

  harness::DetailedRunConfig config;
  config.warmup_instructions =
      common::env_u64("BACP_SIM_WARMUP", config.warmup_instructions);
  config.measure_instructions =
      common::env_u64("BACP_SIM_INSTR", config.measure_instructions);
  config.epoch_cycles = common::env_u64("BACP_SIM_EPOCH", config.epoch_cycles);
  config.seed = common::env_u64("BACP_SIM_SEED", config.seed);
  const std::size_t num_sets = static_cast<std::size_t>(
      common::env_u64("BACP_SIM_SETS", harness::table3_sets().size()));

  std::cout << "=== Fig. 9: relative CPI over No-partitions ===\n";
  common::Table table({"set", "No-partitions", "Equal-partitions", "Bank-aware",
                       "miss-reduction (for contrast)"});
  std::vector<double> equal_ratios;
  std::vector<double> bank_ratios;

  const auto& sets = harness::table3_sets();
  for (std::size_t i = 0; i < sets.size() && i < num_sets; ++i) {
    const auto comparison =
        harness::run_set_comparison(sets[i].label, sets[i].mix(), config);
    equal_ratios.push_back(comparison.equal_relative_cpi());
    bank_ratios.push_back(comparison.bank_relative_cpi());
    table.begin_row()
        .add_cell(sets[i].label)
        .add_cell(1.0, 3)
        .add_cell(comparison.equal_relative_cpi(), 3)
        .add_cell(comparison.bank_relative_cpi(), 3)
        .add_cell(1.0 - comparison.bank_relative_misses(), 3);
  }
  table.begin_row()
      .add_cell("GM")
      .add_cell(1.0, 3)
      .add_cell(common::geometric_mean(equal_ratios), 3)
      .add_cell(common::geometric_mean(bank_ratios), 3)
      .add_cell("");
  table.print(std::cout);

  std::cout << "\npaper GM: Bank-aware CPI ~0.57 (43% reduction vs No-partitions; "
               "~11% vs Equal-partitions)\n"
            << "measured: Bank-aware GM = "
            << common::Table::format_double(common::geometric_mean(bank_ratios), 3)
            << ", vs Equal = "
            << common::Table::format_double(common::geometric_mean(bank_ratios) /
                                                common::geometric_mean(equal_ratios),
                                            3)
            << '\n';
  return 0;
}
