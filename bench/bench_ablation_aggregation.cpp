// Ablation of the paper's Section III-B aggregation discussion (Fig. 4):
//   - Cascade offers the most faithful LRU stitching, but "the migration
//     rates observed in simulation are prohibitively high";
//   - Address Hash has the lowest lookup cost but requires symmetric banks;
//   - Parallel matches Address Hash's migration rate at the cost of wider
//     directory look-ups (the scheme the paper adopts);
//   - the Fig. 4c mitigation limits cascading to two levels.
// This bench runs the same Bank-aware workload set under all four schemes
// and reports migrations, look-up width, miss ratio and CPI.
//
// Flags: --warmup, --instr, --seed, --json-out, --csv-out (legacy env
// knobs BACP_SIM_{WARMUP,INSTR,SEED} still work).

#include <iostream>

#include "common/env.hpp"
#include "harness/experiments.hpp"
#include "obs/report.hpp"
#include "sim/system.hpp"

int main(int argc, char** argv) {
  using namespace bacp;

  common::ArgParser parser(obs::with_report_flags(
      {{"warmup=", "warm-up instructions per core (env BACP_SIM_WARMUP)"},
       {"instr=", "measured instructions per core (env BACP_SIM_INSTR)"},
       {"seed=", "simulation seed (env BACP_SIM_SEED)"}}));
  if (const auto exit_code = obs::handle_cli(parser, argc, argv)) return *exit_code;
  const auto options = obs::ReportOptions::from_args(parser);

  const std::uint64_t warmup =
      parser.get_u64_or_fail("warmup", common::env_u64("BACP_SIM_WARMUP", 3'000'000));
  const std::uint64_t accesses =
      parser.get_u64_or_fail("instr", common::env_u64("BACP_SIM_INSTR", 6'000'000));
  const std::uint64_t seed =
      parser.get_u64_or_fail("seed", common::env_u64("BACP_SIM_SEED", 42));
  const auto mix = harness::table3_sets()[1].mix();  // Set2: capacity-diverse

  obs::Report report("ablation_aggregation",
                     "Ablation: bank aggregation schemes (Fig. 4), workload Set2");
  auto& table = report.table(
      "schemes", {"scheme", "migrations / 1k accesses", "dir look-ups / access",
                  "L2 miss ratio", "mean CPI"});

  const nuca::AggregationKind kinds[] = {
      nuca::AggregationKind::Cascade,
      nuca::AggregationKind::AddressHash,
      nuca::AggregationKind::Parallel,
      nuca::AggregationKind::TwoLevelCascade,
  };
  for (const auto kind : kinds) {
    sim::SystemConfig config = sim::SystemConfig::baseline();
    config.policy = sim::PolicyKind::BankAware;
    config.aggregation = kind;
    config.seed = seed;
    config.finalize();

    sim::System system(config, mix);
    system.warm_up(warmup);
    system.run(accesses);
    const auto results = system.results();

    const double per_k =
        1000.0 * static_cast<double>(results.promotions() + results.demotions()) /
        static_cast<double>(results.live_l2_accesses());
    const double lookups = static_cast<double>(results.directory_lookups()) /
                           static_cast<double>(results.live_l2_accesses());
    table.begin_row()
        .cell(nuca::to_string(kind))
        .cell(per_k, 1)
        .cell(lookups, 2)
        .cell(results.l2_miss_ratio())
        .cell(results.mean_cpi());
    if (kind == nuca::AggregationKind::Parallel) {
      report.metric("parallel_migrations_per_kilo_access", per_k, 1);
      report.metric("parallel_miss_ratio", results.l2_miss_ratio());
    }
  }
  report.note("paper: Cascade migration 'prohibitively high'; Parallel ~ Hash "
              "migrations with wider look-ups; two-level cascading mitigates");
  return report.emit(std::cout, options) ? 0 : 1;
}
