// Ablation of the paper's Section III-B aggregation discussion (Fig. 4):
//   - Cascade offers the most faithful LRU stitching, but "the migration
//     rates observed in simulation are prohibitively high";
//   - Address Hash has the lowest lookup cost but requires symmetric banks;
//   - Parallel matches Address Hash's migration rate at the cost of wider
//     directory look-ups (the scheme the paper adopts);
//   - the Fig. 4c mitigation limits cascading to two levels.
// This bench runs the same Bank-aware workload set under all four schemes
// and reports migrations, look-up width, miss ratio and CPI. The four
// scheme variants run concurrently over the sweep harness's snapshot-aware
// thread pool; rows are emitted in sweep order, so the artifact is
// byte-identical for any --threads value.
//
// Flags: --warmup, --instr, --seed, --threads, --no-snapshot-reuse,
// --shared-warmup, --json-out, --csv-out (legacy env knobs
// BACP_SIM_{WARMUP,INSTR,SEED} and BACP_THREADS still work).

#include <iostream>
#include <vector>

#include "harness/config_cli.hpp"
#include "harness/experiments.hpp"
#include "harness/snapshot_cache.hpp"
#include "obs/report.hpp"
#include "sim/system.hpp"

int main(int argc, char** argv) {
  using namespace bacp;

  harness::FlagSpec spec = {harness::value_flag(harness::kWarmupKnob),
                            harness::value_flag(harness::kInstrKnob),
                            harness::value_flag(harness::kSimSeedKnob)};
  for (auto& row : harness::VariantSweepOptions::cli_flags()) spec.push_back(std::move(row));
  common::ArgParser parser(obs::with_report_flags(std::move(spec)));
  if (const auto exit_code = obs::handle_cli(parser, argc, argv)) return *exit_code;
  const auto options = obs::ReportOptions::from_args(parser);

  const std::uint64_t warmup = harness::read_u64(parser, harness::kWarmupKnob, 3'000'000);
  const std::uint64_t accesses = harness::read_u64(parser, harness::kInstrKnob, 6'000'000);
  const std::uint64_t seed = harness::read_u64(parser, harness::kSimSeedKnob, 42);
  const auto sweep_options = harness::VariantSweepOptions::from_args(parser);
  const auto mix = harness::table3_sets()[1].mix();  // Set2: capacity-diverse

  const nuca::AggregationKind kinds[] = {
      nuca::AggregationKind::Cascade,
      nuca::AggregationKind::AddressHash,
      nuca::AggregationKind::Parallel,
      nuca::AggregationKind::TwoLevelCascade,
  };
  std::vector<harness::SweepVariant> variants;
  for (const auto kind : kinds) {
    sim::SystemConfig config = sim::SystemConfig::baseline();
    config.policy = sim::PolicyKind::BankAware;
    config.aggregation = kind;
    config.seed = seed;
    config.finalize();
    variants.push_back({nuca::to_string(kind), config, warmup});
  }

  std::vector<sim::SystemResults> results(variants.size());
  harness::run_variant_sweep(variants, mix, sweep_options,
                             [&](sim::System& system, std::size_t index) {
                               system.run(accesses);
                               results[index] = system.results();
                             });

  obs::Report report("ablation_aggregation",
                     "Ablation: bank aggregation schemes (Fig. 4), workload Set2");
  auto& table = report.table(
      "schemes", {"scheme", "migrations / 1k accesses", "dir look-ups / access",
                  "L2 miss ratio", "mean CPI"});

  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto& run = results[i];
    const double per_k =
        1000.0 * static_cast<double>(run.promotions() + run.demotions()) /
        static_cast<double>(run.live_l2_accesses());
    const double lookups = static_cast<double>(run.directory_lookups()) /
                           static_cast<double>(run.live_l2_accesses());
    table.begin_row()
        .cell(variants[i].label)
        .cell(per_k, 1)
        .cell(lookups, 2)
        .cell(run.l2_miss_ratio())
        .cell(run.mean_cpi());
    if (kinds[i] == nuca::AggregationKind::Parallel) {
      report.metric("parallel_migrations_per_kilo_access", per_k, 1);
      report.metric("parallel_miss_ratio", run.l2_miss_ratio());
    }
  }
  report.note("paper: Cascade migration 'prohibitively high'; Parallel ~ Hash "
              "migrations with wider look-ups; two-level cascading mitigates");
  return report.emit(std::cout, options) ? 0 : 1;
}
