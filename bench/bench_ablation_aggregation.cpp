// Ablation of the paper's Section III-B aggregation discussion (Fig. 4):
//   - Cascade offers the most faithful LRU stitching, but "the migration
//     rates observed in simulation are prohibitively high";
//   - Address Hash has the lowest lookup cost but requires symmetric banks;
//   - Parallel matches Address Hash's migration rate at the cost of wider
//     directory look-ups (the scheme the paper adopts);
//   - the Fig. 4c mitigation limits cascading to two levels.
// This bench runs the same Bank-aware workload set under all four schemes
// and reports migrations, look-up width, miss ratio and CPI.
//
// Scale knobs: BACP_SIM_WARMUP, BACP_SIM_INSTR (instructions/core), BACP_SIM_SEED.

#include <iostream>

#include "common/env.hpp"
#include "common/table.hpp"
#include "harness/experiments.hpp"
#include "sim/system.hpp"

int main() {
  using namespace bacp;

  const std::uint64_t warmup = common::env_u64("BACP_SIM_WARMUP", 3'000'000);
  const std::uint64_t accesses = common::env_u64("BACP_SIM_INSTR", 6'000'000);
  const std::uint64_t seed = common::env_u64("BACP_SIM_SEED", 42);
  const auto mix = harness::table3_sets()[1].mix();  // Set2: capacity-diverse

  std::cout << "=== Ablation: bank aggregation schemes (Fig. 4), workload Set2 ===\n";
  common::Table table({"scheme", "migrations / 1k accesses", "dir look-ups / access",
                       "L2 miss ratio", "mean CPI"});

  const nuca::AggregationKind kinds[] = {
      nuca::AggregationKind::Cascade,
      nuca::AggregationKind::AddressHash,
      nuca::AggregationKind::Parallel,
      nuca::AggregationKind::TwoLevelCascade,
  };
  for (const auto kind : kinds) {
    sim::SystemConfig config = sim::SystemConfig::baseline();
    config.policy = sim::PolicyKind::BankAware;
    config.aggregation = kind;
    config.seed = seed;
    config.finalize();

    sim::System system(config, mix);
    system.warm_up(warmup);
    system.run(accesses);
    const auto results = system.results();

    const double per_k =
        1000.0 * static_cast<double>(results.promotions + results.demotions) /
        static_cast<double>(results.live_l2_accesses);
    const double lookups = static_cast<double>(results.directory_lookups) /
                           static_cast<double>(results.live_l2_accesses);
    table.begin_row()
        .add_cell(nuca::to_string(kind))
        .add_cell(per_k, 1)
        .add_cell(lookups, 2)
        .add_cell(results.l2_miss_ratio, 3)
        .add_cell(results.mean_cpi, 3);
  }
  table.print(std::cout);
  std::cout << "\npaper: Cascade migration 'prohibitively high'; Parallel ~ Hash "
               "migrations with wider look-ups; two-level cascading mitigates.\n";
  return 0;
}
