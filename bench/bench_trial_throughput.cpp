// Trial-engine throughput benchmark: trials/second through the Monte-Carlo
// sweep in its two modes, so bench/out/ tracks per-trial *setup and
// allocation* cost PR over PR (the lever ISSUE 10 targets; the per-access
// hot path is bench_perf_throughput's beat).
//
// Measured surfaces:
//   - analytic: run_monte_carlo with sampling off — per trial, a random
//               mix, the three capacity assignments (fixed share,
//               Unrestricted, Bank-aware) and their projected miss counts.
//               Thousands of these per second is what makes the 10^5-mix
//               sweeps of ROADMAP item 2 tractable.
//   - sampled:  run_monte_carlo --sampled against a *warm* snapshot bank —
//               an untimed populate sweep fills a file bank with every
//               boundary state, then the timed sweep replays the identical
//               trials from it. This is the production shape (shards and
//               re-sweeps share a bank; PR 8), and it isolates per-trial
//               *start* cost — System setup, snapshot load, restore —
//               which pooling + zero-copy restore attack, over the
//               irreducible detailed-interval floor.
//
// Both surfaces report allocs/trial through the same global operator-new
// counter bench_perf_throughput uses, plus a deterministic checksum over
// the summary ratios so result drift is distinguishable from speed drift.
//
// Flags: --trials (analytic trials), --sampled-trials, --seed, --threads,
// --sampled, --sampled-intervals, --sampled-interval-instr,
// --sampled-warmup, --json-out, --csv-out (legacy BACP_MC_* env knobs
// work). Scale defaults are laptop-friendly; CI passes them explicitly.

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <new>

#include "common/assert.hpp"
#include "common/env.hpp"
#include "harness/monte_carlo.hpp"
#include "obs/phase_timer.hpp"
#include "obs/report.hpp"

namespace {

/// Global operator new/delete instrumentation, as in bench_perf_throughput:
/// counts every heap allocation in the process so allocs/trial is an
/// honest whole-engine number (curve copies, vector churn, snapshot
/// buffers — everything). Relaxed ordering suffices; readings bracket
/// whole sweeps.
std::atomic<std::uint64_t> g_allocations{0};

std::uint64_t allocations() { return g_allocations.load(std::memory_order_relaxed); }

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size == 0 ? 1 : size)) return ptr;
  throw std::bad_alloc();
}

/// FNV-1a over the bit pattern of a double: the summary means must land on
/// identical bytes at a fixed seed regardless of thread count, pool size,
/// restore path or SIMD tier — the determinism contract this bench pins.
std::uint64_t fold_bits(std::uint64_t hash, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  for (unsigned shift = 0; shift < 64; shift += 8) {
    hash ^= (bits >> shift) & 0xFFu;
    hash *= 0x100000001B3ull;
  }
  return hash;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

int main(int argc, char** argv) {
  using namespace bacp;

  auto spec = harness::MonteCarloConfig::cli_flags();
  spec.push_back(
      {"sampled-trials=", "trials for the sampled surface (env BACP_TRIAL_SAMPLED)"});
  common::ArgParser parser(obs::with_report_flags(std::move(spec)));
  if (const auto exit_code = obs::handle_cli(parser, argc, argv)) return *exit_code;
  const auto options = obs::ReportOptions::from_args(parser);

  // --trials sizes the analytic surface (default large: analytic trials are
  // cheap and the rate estimate needs the sweep to dominate fixed costs);
  // --sampled-trials sizes the detailed surface (default small: each trial
  // runs the simulator). The sampled scale knobs default to short intervals
  // so trial *start* cost — the quantity under test — dominates the run.
  harness::MonteCarloConfig base = harness::MonteCarloConfig::from_args(parser);
  const auto analytic_trials = static_cast<std::size_t>(parser.get_u64_or_fail(
      "trials", common::env_u64("BACP_MC_TRIALS", 20'000)));
  const auto sampled_trials = static_cast<std::size_t>(parser.get_u64_or_fail(
      "sampled-trials", common::env_u64("BACP_TRIAL_SAMPLED", 12)));

  obs::PhaseTimers timers;
  obs::Report report("trial_throughput", "Trial-engine throughput (trials/second)");
  report.meta("analytic_trials", std::to_string(analytic_trials));
  report.meta("sampled_trials", std::to_string(sampled_trials));
  report.meta("seed", std::to_string(base.seed));
  std::uint64_t checksum = 0;

  auto& table = report.table(
      "throughput", {"surface", "trials", "seconds", "trials/sec", "allocs/trial"});
  const auto add_row = [&](const std::string& surface, std::uint64_t count,
                           double seconds, std::uint64_t allocs) {
    const double rate = seconds > 0.0 ? static_cast<double>(count) / seconds : 0.0;
    const double allocs_per_trial =
        count == 0 ? 0.0 : static_cast<double>(allocs) / static_cast<double>(count);
    table.begin_row()
        .cell(surface)
        .cell(count)
        .cell(seconds, 4)
        .cell(rate, 0)
        .cell(allocs_per_trial, 1);
    return rate;
  };

  // --- Analytic-only surface. ------------------------------------------
  {
    harness::MonteCarloConfig config = base;
    config.trials = analytic_trials;
    config.sampled_k = 0;
    // Untimed warm-up sweep at 1/8 scale: faults in the curve bank, the
    // thread pool and the allocator arenas so the timed sweep measures
    // steady-state trial cost.
    harness::MonteCarloConfig warm = config;
    warm.trials = std::max<std::size_t>(1, analytic_trials / 8);
    (void)harness::run_monte_carlo(warm);
    const std::uint64_t allocs_before = allocations();
    harness::MonteCarloSummary summary;
    {
      const auto scope = timers.scope("analytic");
      summary = harness::run_monte_carlo(config);
    }
    const std::uint64_t allocs = allocations() - allocs_before;
    checksum = fold_bits(checksum, summary.mean_unrestricted_ratio);
    checksum = fold_bits(checksum, summary.mean_bank_aware_ratio);
    report.metric("analytic_trials_per_sec",
                  add_row("analytic", analytic_trials, timers.seconds("analytic"),
                          allocs),
                  0);
    report.metric("analytic_allocs_per_trial",
                  analytic_trials == 0 ? 0.0
                                       : static_cast<double>(allocs) /
                                             static_cast<double>(analytic_trials),
                  1);
  }

  // --- Sampled surface (detailed simulator over k intervals). -----------
  {
    harness::MonteCarloConfig config = base;
    config.trials = sampled_trials;
    if (config.sampled_k == 0) config.sampled_k = 3;
    // Bench-scale defaults unless the caller pinned them: short intervals
    // and warm-up keep the run seconds-long while preserving the cost
    // shape (setup + snapshot load + restore around small measured runs).
    if (config.sampled_intervals == 96) config.sampled_intervals = 24;
    if (config.sampled_interval_instructions == 50'000) {
      config.sampled_interval_instructions = 20'000;
    }
    if (config.sampled_warmup == 500'000) config.sampled_warmup = 60'000;
    // Warm snapshot bank: unless the caller supplied one, populate a
    // private bank with an untimed sweep of the identical trials, so the
    // timed sweep loads every boundary state from the bank instead of
    // re-warming — the repeated-sweep / multi-shard steady state whose
    // per-trial start cost this surface tracks.
    std::string bank = config.snapshot_bank;
    if (bank.empty()) {
      std::string pattern =
          common::env_string("TMPDIR", "/tmp") + "/bacp-trial-bank.XXXXXX";
      if (char* made = mkdtemp(pattern.data())) bank = made;
      config.snapshot_bank = bank;
    }
    (void)harness::run_monte_carlo(config);
    const std::uint64_t allocs_before = allocations();
    harness::MonteCarloSummary summary;
    {
      const auto scope = timers.scope("sampled");
      summary = harness::run_monte_carlo(config);
    }
    const std::uint64_t allocs = allocations() - allocs_before;
    // Private bank: best-effort cleanup (a shared --snapshot-bank is the
    // caller's to keep).
    if (base.snapshot_bank.empty() && !bank.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(bank, ec);
    }
    checksum = fold_bits(checksum, summary.mean_sampled_miss_ratio);
    checksum = fold_bits(checksum, summary.mean_sampled_cpi);
    report.metric("sampled_trials_per_sec",
                  add_row("sampled", sampled_trials, timers.seconds("sampled"),
                          allocs),
                  1);
    report.metric("sampled_allocs_per_trial",
                  sampled_trials == 0 ? 0.0
                                      : static_cast<double>(allocs) /
                                            static_cast<double>(sampled_trials),
                  1);
  }

  report.metric("checksum", checksum);
  report.note("trials/sec is the headline; checksum pins the summary ratios "
              "(must not drift across pool size, restore path or SIMD tier "
              "at a fixed seed)");
  return report.emit(std::cout, options) ? 0 : 1;
}
