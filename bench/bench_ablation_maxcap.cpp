// Ablation of the maximum-assignable-capacity restriction (paper Section
// III-A: each core limited to 9/16 of the cache to shrink the profiler,
// "the maximum assignable capacity can potentially restrict the
// effectiveness of our partitioning scheme"). We quantify that risk by
// running the Unrestricted allocator with different per-core caps over the
// Monte-Carlo mix distribution and compare against Bank-aware.
//
// Scale knobs: BACP_MC_TRIALS, BACP_MC_SEED.

#include <iostream>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "msa/miss_curve.hpp"
#include "partition/bank_aware.hpp"
#include "partition/unrestricted.hpp"
#include "trace/mix.hpp"
#include "trace/spec2000.hpp"

int main() {
  using namespace bacp;
  const std::size_t trials =
      static_cast<std::size_t>(common::env_u64("BACP_MC_TRIALS", 400));
  const std::uint64_t seed = common::env_u64("BACP_MC_SEED", 2009);

  partition::CmpGeometry geometry;
  const auto& suite = trace::spec2000_suite();
  const WayCount caps[] = {128, 96, geometry.max_assignable_ways(), 48, 32, 16};

  std::vector<common::StreamingStats> cap_stats(std::size(caps));
  common::StreamingStats bank_stats;

  for (std::size_t trial = 0; trial < trials; ++trial) {
    common::Rng rng(seed, trial);
    const auto mix = trace::random_mix(rng, suite.size(), geometry.num_cores);
    std::vector<msa::MissRatioCurve> curves;
    for (const std::size_t index : mix.workload_indices) {
      const auto& model = suite.at(index);
      curves.push_back(msa::MissRatioCurve::from_model(model, 128).scaled(model.l2_apki));
    }
    const std::vector<WayCount> even(geometry.num_cores,
                                     geometry.total_ways() / geometry.num_cores);
    const double fixed = partition::projected_total_misses(curves, even);

    for (std::size_t c = 0; c < std::size(caps); ++c) {
      partition::UnrestrictedConfig config;
      config.max_ways_per_core = caps[c];
      const auto allocation = partition::unrestricted_partition(geometry, curves, config);
      cap_stats[c].add(
          partition::projected_total_misses(curves, allocation.ways_per_core) / fixed);
    }
    const auto bank = partition::bank_aware_partition(geometry, curves);
    bank_stats.add(
        partition::projected_total_misses(curves, bank.allocation.ways_per_core) /
        fixed);
  }

  std::cout << "=== Ablation: per-core capacity cap (" << trials << " mixes) ===\n";
  common::Table table({"allocator", "per-core cap (ways)", "mean miss ratio vs fixed-share"});
  for (std::size_t c = 0; c < std::size(caps); ++c) {
    table.begin_row()
        .add_cell("Unrestricted")
        .add_cell(std::to_string(caps[c]) +
                  (caps[c] == geometry.max_assignable_ways() ? " (= 9/16, paper)" : ""))
        .add_cell(cap_stats[c].mean(), 3);
  }
  table.begin_row()
      .add_cell("Bank-aware")
      .add_cell(std::to_string(geometry.max_assignable_ways()) + " (built-in)")
      .add_cell(bank_stats.mean(), 3);
  table.print(std::cout);
  std::cout << "\npaper: the 9/16 clamp should cost almost nothing relative to a "
               "fully unrestricted assignment; tight caps (<=2MB/core) forfeit most "
               "of the benefit.\n";
  return 0;
}
