// Ablation of the maximum-assignable-capacity restriction (paper Section
// III-A: each core limited to 9/16 of the cache to shrink the profiler,
// "the maximum assignable capacity can potentially restrict the
// effectiveness of our partitioning scheme"). We quantify that risk by
// running the Unrestricted allocator with different per-core caps over the
// Monte-Carlo mix distribution and compare against Bank-aware.
//
// Flags: --trials, --seed, --json-out, --csv-out (legacy env knobs
// BACP_MC_TRIALS, BACP_MC_SEED still work).

#include <iostream>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "harness/config_cli.hpp"
#include "msa/miss_curve.hpp"
#include "obs/report.hpp"
#include "partition/bank_aware.hpp"
#include "partition/unrestricted.hpp"
#include "trace/mix.hpp"
#include "trace/spec2000.hpp"

int main(int argc, char** argv) {
  using namespace bacp;

  common::ArgParser parser(obs::with_report_flags(
      {harness::value_flag(harness::kTrialsKnob), harness::value_flag(harness::kMcSeedKnob)}));
  if (const auto exit_code = obs::handle_cli(parser, argc, argv)) return *exit_code;
  const auto options = obs::ReportOptions::from_args(parser);

  const std::size_t trials =
      static_cast<std::size_t>(harness::read_u64(parser, harness::kTrialsKnob, 400));
  const std::uint64_t seed = harness::read_u64(parser, harness::kMcSeedKnob, 2009);

  partition::CmpGeometry geometry;
  const auto& suite = trace::spec2000_suite();
  const WayCount caps[] = {128, 96, geometry.max_assignable_ways(), 48, 32, 16};

  std::vector<common::StreamingStats> cap_stats(std::size(caps));
  common::StreamingStats bank_stats;

  for (std::size_t trial = 0; trial < trials; ++trial) {
    common::Rng rng(seed, trial);
    const auto mix = trace::random_mix(rng, suite.size(), geometry.num_cores);
    std::vector<msa::MissRatioCurve> curves;
    for (const std::size_t index : mix.workload_indices) {
      const auto& model = suite.at(index);
      curves.push_back(msa::MissRatioCurve::from_model(model, 128).scaled(model.l2_apki));
    }
    const std::vector<WayCount> even(geometry.num_cores,
                                     geometry.total_ways() / geometry.num_cores);
    const double fixed = partition::projected_total_misses(curves, even);

    for (std::size_t c = 0; c < std::size(caps); ++c) {
      partition::UnrestrictedConfig config;
      config.max_ways_per_core = caps[c];
      const auto allocation = partition::unrestricted_partition(geometry, curves, config);
      cap_stats[c].add(
          partition::projected_total_misses(curves, allocation.ways_per_core) / fixed);
    }
    const auto bank = partition::bank_aware_partition(geometry, curves);
    bank_stats.add(
        partition::projected_total_misses(curves, bank.allocation.ways_per_core) /
        fixed);
  }

  obs::Report report("ablation_maxcap", "Ablation: per-core capacity cap (" +
                                            std::to_string(trials) + " mixes)");
  report.meta("trials", std::to_string(trials));
  report.meta("seed", std::to_string(seed));
  auto& table = report.table(
      "caps", {"allocator", "per-core cap (ways)", "mean miss ratio vs fixed-share"});
  for (std::size_t c = 0; c < std::size(caps); ++c) {
    table.begin_row()
        .cell("Unrestricted")
        .cell(std::to_string(caps[c]) +
              (caps[c] == geometry.max_assignable_ways() ? " (= 9/16, paper)" : ""))
        .cell(cap_stats[c].mean());
    if (caps[c] == geometry.max_assignable_ways()) {
      report.metric("paper_cap_mean_ratio", cap_stats[c].mean());
    } else if (caps[c] == 128) {
      report.metric("uncapped_mean_ratio", cap_stats[c].mean());
    }
  }
  table.begin_row()
      .cell("Bank-aware")
      .cell(std::to_string(geometry.max_assignable_ways()) + " (built-in)")
      .cell(bank_stats.mean());
  report.metric("bank_aware_mean_ratio", bank_stats.mean());
  report.note("paper: the 9/16 clamp should cost almost nothing relative to a "
              "fully unrestricted assignment; tight caps (<=2MB/core) forfeit "
              "most of the benefit");
  return report.emit(std::cout, options) ? 0 : 1;
}
