// Reproduces paper Fig. 2: the MSA LRU histogram of an application on an
// 8-way associative view — counters C1..C8 for the MRU..LRU stack
// positions plus C9 for misses — and demonstrates the inclusion-property
// projection the figure illustrates: misses at half size = misses + hits
// in positions 5..8.
//
// Flags: --accesses, --json-out, --csv-out (legacy env knob
// BACP_FIG2_ACCESSES still works).

#include <iostream>

#include "common/env.hpp"
#include "msa/stack_profiler.hpp"
#include "obs/report.hpp"
#include "trace/spec2000.hpp"
#include "trace/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace bacp;

  common::ArgParser parser(obs::with_report_flags(
      {{"accesses=", "profiled accesses (env BACP_FIG2_ACCESSES)"}}));
  if (const auto exit_code = obs::handle_cli(parser, argc, argv)) return *exit_code;
  const auto options = obs::ReportOptions::from_args(parser);

  // A temporally-reusing workload, as in the figure's example; profile its
  // stream against an 8-way MSA stack with full tags and no sampling so
  // the histogram is exact.
  const auto& model = trace::spec2000_by_name("gzip");
  trace::GeneratorConfig generator_config;
  generator_config.num_sets = 256;
  generator_config.max_depth = 16;
  trace::SyntheticTraceGenerator generator(model, generator_config, 7);

  msa::ProfilerConfig profiler_config;
  profiler_config.num_sets = 256;
  profiler_config.set_sampling = 1;
  profiler_config.partial_tag_bits = 0;
  profiler_config.profiled_ways = 8;
  msa::StackProfiler profiler(profiler_config);

  const std::uint64_t accesses =
      parser.get_u64_or_fail("accesses", common::env_u64("BACP_FIG2_ACCESSES", 400'000));
  for (std::uint64_t i = 0; i < accesses; ++i) profiler.observe(generator.next().block);

  obs::Report report("fig2_msa_histogram",
                     "Fig. 2: MSA LRU histogram (8-way view, workload '" +
                         model.name + "')");
  report.meta("workload", model.name);
  report.meta("accesses", std::to_string(accesses));

  const auto& histogram = profiler.histogram();
  auto& table = report.table("histogram", {"counter", "stack position", "count",
                                           "fraction"});
  for (std::size_t c = 0; c < histogram.num_bins(); ++c) {
    const bool miss_bin = c + 1 == histogram.num_bins();
    std::string position;
    if (miss_bin) {
      position = "miss (beyond LRU)";
    } else if (c == 0) {
      position = "MRU";
    } else if (c == 7) {
      position = "LRU";
    } else {
      position = std::to_string(c + 1);
    }
    table.begin_row()
        .cell("C" + std::to_string(c + 1))
        .cell(position)
        .cell(histogram.bin(c))
        .cell(static_cast<double>(histogram.bin(c)) /
                  static_cast<double>(histogram.total()),
              4);
  }

  const auto curve = msa::MissRatioCurve::from_histogram(histogram);
  report.metric("misses_at_8_ways", curve.miss_count(8));
  report.metric("misses_at_4_ways", curve.miss_count(4));
  report.note("inclusion-property projection: misses at size N/2 = "
              "misses(N) + hits in positions 5..8");
  return report.emit(std::cout, options) ? 0 : 1;
}
