// Reproduces paper Fig. 3: projected cumulative miss ratio of sixtrack,
// bzip2 and applu as a function of dedicated cache ways, from MSA stack
// profiles collected on each workload running stand-alone. The paper's
// observations to verify: sixtrack's curve collapses by ~6 ways (one bank
// fits it), applu flattens past ~10 ways, bzip2 improves gradually out to
// ~45 ways.
//
// Flags: --accesses, --json-out, --csv-out (legacy env knob
// BACP_FIG3_ACCESSES still works).

#include <iostream>
#include <vector>

#include "common/env.hpp"
#include "msa/stack_profiler.hpp"
#include "obs/report.hpp"
#include "trace/spec2000.hpp"
#include "trace/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace bacp;

  common::ArgParser parser(obs::with_report_flags(
      {{"accesses=", "profiled accesses per workload (env BACP_FIG3_ACCESSES)"}}));
  if (const auto exit_code = obs::handle_cli(parser, argc, argv)) return *exit_code;
  const auto options = obs::ReportOptions::from_args(parser);

  const char* names[] = {"sixtrack", "bzip2", "applu"};
  const std::uint64_t accesses =
      parser.get_u64_or_fail("accesses", common::env_u64("BACP_FIG3_ACCESSES", 2'000'000));

  std::vector<msa::MissRatioCurve> profiled;
  std::vector<msa::MissRatioCurve> analytic;
  for (const char* name : names) {
    const auto& model = trace::spec2000_by_name(name);
    trace::GeneratorConfig generator_config;  // 2048-set 128-way equivalent view
    trace::SyntheticTraceGenerator generator(model, generator_config, 11);

    // Production profiler configuration: 12-bit partial tags, 1-in-32 set
    // sampling, but a full 128-deep stack so the whole x-axis is covered.
    msa::ProfilerConfig profiler_config;
    profiler_config.profiled_ways = 128;
    msa::StackProfiler profiler(profiler_config);
    for (std::uint64_t i = 0; i < accesses; ++i) profiler.observe(generator.next().block);

    profiled.push_back(profiler.curve());
    analytic.push_back(msa::MissRatioCurve::from_model(model, 128));
  }

  obs::Report report("fig3_miss_curves",
                     "Fig. 3: cumulative miss ratio vs. dedicated ways");
  report.meta("accesses", std::to_string(accesses));
  auto& table = report.table(
      "miss_ratio_vs_ways", {"ways", "sixtrack", "bzip2", "applu", "sixtrack(model)",
                             "bzip2(model)", "applu(model)"});
  const WayCount stations[] = {1, 2, 4, 6, 8, 10, 12, 16, 24, 32, 45, 56, 64, 96, 128};
  for (const WayCount ways : stations) {
    auto& row = table.begin_row().cell(std::to_string(ways));
    for (const auto& curve : profiled) row.cell(curve.miss_ratio(ways));
    for (const auto& curve : analytic) row.cell(curve.miss_ratio(ways));
  }

  // Loop lengths are smeared +-1/3 (set-to-set variation), so the knees
  // complete one bank past their nominal depth.
  report.metric("sixtrack_ratio_at_8_ways", profiled[0].miss_ratio(8));
  report.metric("applu_residual_after_14_ways",
                profiled[2].miss_ratio(14) - profiled[2].miss_ratio(128));
  report.metric("bzip2_gain_16_to_48_ways",
                profiled[1].miss_ratio(16) - profiled[1].miss_ratio(48));
  report.note("paper: sixtrack close to zero past its knee, applu flat beyond "
              "its knee, bzip2 keeps improving to ~48 ways");
  return report.emit(std::cout, options) ? 0 : 1;
}
