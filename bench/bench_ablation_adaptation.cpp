// Ablation of the *dynamic* in "dynamic cache partitioning": a program
// phase change swaps the capacity appetites of two cores mid-run. A static
// Equal split cannot respond; the Bank-aware epoch controller re-profiles
// and reallocates within a few epochs. This is the scenario the paper's
// monitoring scheme exists for ("dynamically profile the cache
// requirements of each core ... during the execution of an application").
//
// Setup: core 0 runs facerec-like (56-way appetite) next to a statically
// hungry bzip2 on core 2. After phase 1, core 0's program moves into a
// gcc-like phase (its working set collapses). The dynamic scheme must
// detect the collapse (the decaying MSA histogram drains the ghost of the
// old profile) and hand the freed Center banks to bzip2. We report
// per-phase misses under Equal-partitions and Bank-aware, plus the
// allocation trace of the two cores. The two policy runs execute
// concurrently over the sweep harness's snapshot-aware thread pool; rows
// are emitted in policy order, so the artifact is byte-identical for any
// --threads value.
//
// Flags: --instr (per phase), --epoch, --threads, --no-snapshot-reuse,
// --shared-warmup, --json-out, --csv-out (legacy env knobs BACP_SIM_INSTR,
// BACP_SIM_EPOCH, BACP_THREADS still work).

#include <iostream>
#include <vector>

#include "harness/config_cli.hpp"
#include "harness/snapshot_cache.hpp"
#include "obs/report.hpp"
#include "sim/system.hpp"
#include "trace/mix.hpp"

int main(int argc, char** argv) {
  using namespace bacp;

  harness::FlagSpec spec = {harness::value_flag(harness::kInstrKnob),
                            harness::value_flag(harness::kEpochKnob)};
  for (auto& row : harness::VariantSweepOptions::cli_flags()) spec.push_back(std::move(row));
  common::ArgParser parser(obs::with_report_flags(std::move(spec)));
  if (const auto exit_code = obs::handle_cli(parser, argc, argv)) return *exit_code;
  const auto options = obs::ReportOptions::from_args(parser);

  const std::uint64_t phase_instructions =
      harness::read_u64(parser, harness::kInstrKnob, 8'000'000);
  const Cycle epoch = harness::read_u64(parser, harness::kEpochKnob, 1'500'000);
  const auto sweep_options = harness::VariantSweepOptions::from_args(parser);

  const auto mix = trace::mix_from_names(
      {"facerec", "gzip", "bzip2", "mesa", "sixtrack", "eon", "crafty", "perlbmk"});

  struct PhaseResult {
    std::uint64_t phase1_misses = 0;
    std::uint64_t phase2_misses = 0;
    std::vector<partition::Allocation> history;
  };

  std::vector<harness::SweepVariant> variants;
  for (const auto policy :
       {sim::PolicyKind::EqualPartition, sim::PolicyKind::BankAware}) {
    sim::SystemConfig config = sim::SystemConfig::baseline();
    config.policy = policy;
    config.epoch_cycles = epoch;
    config.finalize();
    variants.push_back({sim::to_string(policy), config, phase_instructions / 2});
  }

  std::vector<PhaseResult> phases(variants.size());
  harness::run_variant_sweep(
      variants, mix, sweep_options, [&](sim::System& system, std::size_t index) {
        system.run(phase_instructions);
        PhaseResult result;
        result.phase1_misses = system.results().l2_misses();

        // Phase change: core 0's working set collapses.
        system.switch_workload(0, "gcc");
        system.run(phase_instructions);
        result.phase2_misses = system.results().l2_misses() - result.phase1_misses;
        result.history = system.allocation_history();
        phases[index] = std::move(result);
      });
  const PhaseResult& equal = phases[0];
  const PhaseResult& bank = phases[1];

  obs::Report report("ablation_adaptation",
                     "Ablation: adaptation to a program phase change");
  report.meta("phase_instructions", std::to_string(phase_instructions));
  report.meta("epoch_cycles", std::to_string(epoch));

  auto& table = report.table(
      "per_phase_misses", {"policy", "phase-1 misses", "phase-2 misses (post swap)"});
  table.begin_row()
      .cell("Equal-partitions (static)")
      .cell(equal.phase1_misses)
      .cell(equal.phase2_misses);
  table.begin_row()
      .cell("Bank-aware (dynamic)")
      .cell(bank.phase1_misses)
      .cell(bank.phase2_misses);

  auto& history = report.table("allocation_history",
                               {"epoch", "core0 ways", "core2 ways"});
  for (std::size_t e = 0; e < bank.history.size(); ++e) {
    history.begin_row()
        .cell(std::uint64_t{e})
        .cell(std::uint64_t{bank.history[e].ways_per_core[0]})
        .cell(std::uint64_t{bank.history[e].ways_per_core[2]});
  }

  report.metric("equal_phase2_misses", equal.phase2_misses);
  report.metric("bank_aware_phase2_misses", bank.phase2_misses);
  report.metric("phase2_miss_ratio_vs_static",
                equal.phase2_misses == 0
                    ? 0.0
                    : static_cast<double>(bank.phase2_misses) /
                          static_cast<double>(equal.phase2_misses));
  report.note("expected: core0's allocation collapses toward one bank over a few "
              "post-swap epochs (histogram decay drains the ghost profile) while "
              "bzip2's grows; the dynamic scheme's phase-2 misses sit below the "
              "static split's");
  return report.emit(std::cout, options) ? 0 : 1;
}
