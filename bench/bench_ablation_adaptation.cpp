// Ablation of the *dynamic* in "dynamic cache partitioning": a program
// phase change swaps the capacity appetites of two cores mid-run. A static
// Equal split cannot respond; the Bank-aware epoch controller re-profiles
// and reallocates within a few epochs. This is the scenario the paper's
// monitoring scheme exists for ("dynamically profile the cache
// requirements of each core ... during the execution of an application").
//
// Setup: core 0 runs facerec-like (56-way appetite) next to a statically
// hungry bzip2 on core 2. After phase 1, core 0's program moves into a
// gcc-like phase (its working set collapses). The dynamic scheme must
// detect the collapse (the decaying MSA histogram drains the ghost of the
// old profile) and hand the freed Center banks to bzip2. We report
// per-phase misses under Equal-partitions and Bank-aware, plus the
// allocation trace of the two cores.
//
// Scale knobs: BACP_SIM_INSTR (per phase, default 8M), BACP_SIM_EPOCH.

#include <iostream>

#include "common/env.hpp"
#include "common/table.hpp"
#include "sim/system.hpp"
#include "trace/mix.hpp"

int main() {
  using namespace bacp;
  const std::uint64_t phase_instructions =
      common::env_u64("BACP_SIM_INSTR", 8'000'000);
  const Cycle epoch = common::env_u64("BACP_SIM_EPOCH", 1'500'000);

  const auto mix = trace::mix_from_names(
      {"facerec", "gzip", "bzip2", "mesa", "sixtrack", "eon", "crafty", "perlbmk"});

  struct PhaseResult {
    std::uint64_t phase1_misses = 0;
    std::uint64_t phase2_misses = 0;
    std::vector<partition::Allocation> history;
  };

  auto run_policy = [&](sim::PolicyKind policy) {
    sim::SystemConfig config = sim::SystemConfig::baseline();
    config.policy = policy;
    config.epoch_cycles = epoch;
    config.finalize();
    sim::System system(config, mix);

    system.warm_up(phase_instructions / 2);
    system.run(phase_instructions);
    PhaseResult result;
    result.phase1_misses = system.results().l2_misses;

    // Phase change: core 0's working set collapses.
    system.switch_workload(0, "gcc");
    system.run(phase_instructions);
    result.phase2_misses = system.results().l2_misses - result.phase1_misses;
    result.history = system.allocation_history();
    return result;
  };

  const auto equal = run_policy(sim::PolicyKind::EqualPartition);
  const auto bank = run_policy(sim::PolicyKind::BankAware);

  std::cout << "=== Ablation: adaptation to a program phase change ===\n";
  common::Table table({"policy", "phase-1 misses", "phase-2 misses (post swap)"});
  table.begin_row()
      .add_cell("Equal-partitions (static)")
      .add_cell(equal.phase1_misses)
      .add_cell(equal.phase2_misses);
  table.begin_row()
      .add_cell("Bank-aware (dynamic)")
      .add_cell(bank.phase1_misses)
      .add_cell(bank.phase2_misses);
  table.print(std::cout);

  std::cout << "\nBank-aware allocation of core0 (facerec->gcc) and core2 "
               "(bzip2, static) per epoch:\n";
  common::Table history({"epoch", "core0 ways", "core2 ways"});
  for (std::size_t e = 0; e < bank.history.size(); ++e) {
    history.begin_row()
        .add_cell(std::to_string(e))
        .add_cell(std::to_string(bank.history[e].ways_per_core[0]))
        .add_cell(std::to_string(bank.history[e].ways_per_core[2]));
  }
  history.print(std::cout);
  std::cout << "\nexpected: core0's allocation collapses toward one bank over a few\n"
               "post-swap epochs (histogram decay drains the ghost profile) while\n"
               "bzip2's grows; the dynamic scheme's phase-2 misses sit below the\n"
               "static split's.\n";
  return 0;
}
