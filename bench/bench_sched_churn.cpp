// Tenant-churn throughput and determinism bench for the bacp::sched online
// partitioning service: several independent service "lanes" each play a
// deterministic synthetic churn stream (diurnal Poisson arrivals, uniform
// residencies, periodic adversarial thrashers) against a live simulator,
// repartitioning on every admission, departure and class change. Lanes fan
// out over a ThreadPool but results are keyed and emitted in lane order, so
// the JSON artifact is byte-identical for any --threads — the determinism
// contract CI diffs two runs against. Wall-clock throughput goes to stderr
// only, keeping the artifact environment-independent.
//
// Default scale sums to >10k scheduling events across the lanes.
//
// Flags: --epochs, --lanes, --seed, --epoch, --warmup, --threads,
// --batch-size, --no-snapshot-reuse, --json-out, --csv-out.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <vector>

#include "harness/config_cli.hpp"
#include "harness/snapshot_cache.hpp"
#include "common/thread_pool.hpp"
#include "obs/report.hpp"
#include "sched/service.hpp"
#include "trace/mix.hpp"

namespace {

constexpr bacp::harness::EnvFlag kEpochsKnob{"epochs", "BACP_CHURN_EPOCHS",
                                             "churn stream length per lane, epochs"};
constexpr bacp::harness::EnvFlag kLanesKnob{"lanes", "BACP_CHURN_LANES",
                                            "independent service lanes"};

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t hash = 0xCBF29CE484222325ull;
  for (const char byte : bytes) {
    hash ^= static_cast<unsigned char>(byte);
    hash *= 0x00000100000001B3ull;
  }
  return hash;
}

std::string hex64(std::uint64_t value) {
  char buffer[19];
  std::snprintf(buffer, sizeof buffer, "%016llx", static_cast<unsigned long long>(value));
  return buffer;
}

struct LaneResult {
  std::size_t events = 0;
  std::uint64_t admissions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t replans = 0;
  std::uint64_t class_changes = 0;
  std::uint64_t report_digest = 0;
  std::size_t report_bytes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace bacp;

  harness::FlagSpec spec = {
      harness::value_flag(kEpochsKnob),
      harness::value_flag(kLanesKnob),
      harness::value_flag(harness::kSimSeedKnob),
      harness::value_flag(harness::kEpochKnob),
      harness::value_flag(harness::kWarmupKnob),
      harness::value_flag(harness::kThreadsKnob),
      harness::value_flag(harness::kBatchKnob),
      harness::bool_flag("no-snapshot-reuse",
                         "warm every lane cold instead of forking snapshots"),
  };
  common::ArgParser parser(obs::with_report_flags(std::move(spec)));
  if (const auto exit_code = obs::handle_cli(parser, argc, argv)) return *exit_code;
  const auto options = obs::ReportOptions::from_args(parser);

  const std::uint64_t epochs = harness::read_u64(parser, kEpochsKnob, 1'500);
  const std::uint64_t lanes = harness::read_u64(parser, kLanesKnob, 8);
  const std::uint64_t seed = harness::read_u64(parser, harness::kSimSeedKnob, 42);
  const Cycle epoch_cycles = harness::read_u64(parser, harness::kEpochKnob, 20'000);
  const std::uint64_t warmup = harness::read_u64(parser, harness::kWarmupKnob, 200'000);
  const std::size_t num_threads = harness::read_threads(parser);
  const auto batch_size =
      static_cast<std::uint32_t>(harness::read_u64(parser, harness::kBatchKnob, 0));
  const bool snapshot_reuse = !parser.get_bool_or_fail("no-snapshot-reuse", false);

  // The substrate mix seeds the warm-up; it is shared by every lane, so with
  // snapshot reuse the hierarchy warms exactly once and forks bit-identically.
  const auto mix = trace::mix_from_names(
      {"gzip", "mesa", "eon", "crafty", "perlbmk", "gap", "vortex", "bzip2"});

  sched::ServiceConfig base;
  base.system.epoch_cycles = epoch_cycles;
  base.system.seed = seed;
  base.warmup_instructions = warmup;
  base.finalize();

  // High-churn stream: short residencies and an above-capacity arrival rate
  // keep slot turnover (and with it admission/eviction repartitioning) near
  // the structural maximum, which is what this bench is stressing.
  std::vector<std::vector<sched::Event>> streams(lanes);
  for (std::uint64_t lane = 0; lane < lanes; ++lane) {
    sched::ChurnConfig churn;
    churn.epochs = epochs;
    churn.num_slots = base.system.geometry.num_cores;
    churn.seed = seed + lane;
    churn.arrival_rate = 2.0;
    churn.diurnal_period = 250.0;
    churn.min_residency = 4;
    churn.max_residency = 16;
    churn.thrasher_period = 125;
    churn.thrasher_residency = 12;
    streams[lane] = sched::generate_churn(churn);
  }

  harness::SnapshotCache cache;
  harness::SnapshotCache* cache_ptr = snapshot_reuse ? &cache : nullptr;
  std::vector<LaneResult> results(lanes);

  // NOLINTNEXTLINE(bacp-det-wallclock): bench wall-time reporting; never feeds simulated state
  const auto start = std::chrono::steady_clock::now();
  common::ThreadPool pool(num_threads);
  pool.parallel_for(lanes, [&](std::size_t lane) {
    sched::Service service(base, mix, cache_ptr);
    if (batch_size != 0) service.set_batch_size(batch_size);
    service.play(streams[lane]);
    service.drain(epochs);

    LaneResult& out = results[lane];
    out.events = streams[lane].size();
    out.admissions = service.admissions();
    out.evictions = service.evictions();
    out.replans = service.replans();
    out.class_changes = service.class_changes();
    const std::string dump = service.tenant_report().dump();
    out.report_digest = fnv1a(dump);
    out.report_bytes = dump.size();
  });
  // NOLINTNEXTLINE(bacp-det-wallclock): bench wall-time reporting, as above
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;

  std::uint64_t total_events = 0;
  std::uint64_t total_replans = 0;
  std::uint64_t total_class_changes = 0;
  obs::Report report("sched_churn", "bacp::sched tenant-churn service bench");
  auto& table = report.table(
      "lanes", {"lane", "events", "admits", "evicts", "replans", "class_changes",
                "report_digest", "report_bytes"});
  for (std::uint64_t lane = 0; lane < lanes; ++lane) {
    const LaneResult& lr = results[lane];
    total_events += lr.events;
    total_replans += lr.replans;
    total_class_changes += lr.class_changes;
    table.begin_row()
        .cell(static_cast<std::uint64_t>(lane))
        .cell(static_cast<std::uint64_t>(lr.events))
        .cell(lr.admissions)
        .cell(lr.evictions)
        .cell(lr.replans)
        .cell(lr.class_changes)
        .cell(hex64(lr.report_digest))
        .cell(static_cast<std::uint64_t>(lr.report_bytes));
  }
  report.meta("seed", std::to_string(seed))
      .meta("epoch_cycles", std::to_string(epoch_cycles))
      .meta("warmup_instructions", std::to_string(warmup))
      .metric("lanes", lanes)
      .metric("epochs_per_lane", epochs)
      .metric("total_events", total_events)
      .metric("total_replans", total_replans)
      .metric("total_class_changes", total_class_changes);
  report.note("per-lane report_digest is the FNV-1a of the full tenant_report() JSON; "
              "identical digests across runs/thread counts == identical service history");

  // Timing stays off the artifact so two runs diff clean.
  std::cerr << "sched_churn: " << total_events << " events in " << elapsed.count()
            << " s (" << (elapsed.count() > 0.0
                              ? static_cast<double>(total_events) / elapsed.count()
                              : 0.0)
            << " events/s)\n";

  return report.emit(std::cout, options) ? 0 : 1;
}
