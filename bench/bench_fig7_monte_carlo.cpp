// Reproduces paper Fig. 7: relative miss ratio (vs. the static even share)
// of the Unrestricted and Bank-aware partitioning algorithms over random
// 8-workload mixes, sorted by the Unrestricted reduction; plus the headline
// averages (paper: Unrestricted ~30% reduction, Bank-aware ~27%).
//
// Scale knobs: BACP_MC_TRIALS (default 1000), BACP_MC_SEED, BACP_THREADS.

#include <algorithm>
#include <iostream>

#include "common/env.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/monte_carlo.hpp"

int main() {
  using namespace bacp;

  harness::MonteCarloConfig config;
  config.trials = common::env_u64("BACP_MC_TRIALS", 1000);
  config.seed = common::env_u64("BACP_MC_SEED", 2009);
  config.num_threads = common::env_u64("BACP_THREADS", 0);

  std::cout << "=== Fig. 7: relative miss ratio to fixed-share (" << config.trials
            << " random mixes) ===\n";
  const auto summary = harness::run_monte_carlo(config);

  // Sort by the Unrestricted reduction, as the paper does, and print the
  // sorted series at percentile stations.
  std::vector<std::size_t> order(summary.trials.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return summary.trials[a].unrestricted_ratio() <
           summary.trials[b].unrestricted_ratio();
  });

  common::Table series({"sorted position", "Unrestricted/fixed", "Bank-aware/fixed"});
  const std::size_t stations = std::min<std::size_t>(summary.trials.size(), 21);
  for (std::size_t s = 0; s < stations; ++s) {
    const std::size_t pos =
        stations == 1 ? 0 : s * (summary.trials.size() - 1) / (stations - 1);
    const auto& trial = summary.trials[order[pos]];
    series.begin_row()
        .add_cell(std::to_string(pos))
        .add_cell(trial.unrestricted_ratio(), 3)
        .add_cell(trial.bank_aware_ratio(), 3);
  }
  series.print(std::cout);

  // Bank-aware never beats Unrestricted by construction; count outliers
  // (trials where the banking restrictions cost more than 5 points).
  std::size_t outliers = 0;
  for (const auto& trial : summary.trials) {
    if (trial.bank_aware_ratio() > trial.unrestricted_ratio() + 0.05) ++outliers;
  }

  common::Table headline({"metric", "paper", "measured"});
  headline.begin_row().add_cell("mean Unrestricted ratio").add_cell("0.70").add_cell(
      summary.mean_unrestricted_ratio, 3);
  headline.begin_row().add_cell("mean Bank-aware ratio").add_cell("0.73").add_cell(
      summary.mean_bank_aware_ratio, 3);
  headline.begin_row()
      .add_cell("Bank-aware outliers (>5pt worse)")
      .add_cell("few")
      .add_cell(std::to_string(outliers) + " / " + std::to_string(summary.trials.size()));
  std::cout << '\n';
  headline.print(std::cout);
  return 0;
}
