// Reproduces paper Fig. 7: relative miss ratio (vs. the static even share)
// of the Unrestricted and Bank-aware partitioning algorithms over random
// 8-workload mixes, sorted by the Unrestricted reduction; plus the headline
// averages (paper: Unrestricted ~30% reduction, Bank-aware ~27%).
//
// Flags: --trials, --seed, --threads, --json-out, --csv-out (legacy env
// knobs BACP_MC_TRIALS, BACP_MC_SEED, BACP_THREADS still work).

#include <iostream>

#include "harness/monte_carlo.hpp"
#include "obs/report.hpp"

int main(int argc, char** argv) {
  using namespace bacp;

  common::ArgParser parser(
      obs::with_report_flags(harness::MonteCarloConfig::cli_flags()));
  if (const auto exit_code = obs::handle_cli(parser, argc, argv)) return *exit_code;
  const auto options = obs::ReportOptions::from_args(parser);

  const auto config = harness::MonteCarloConfig::from_args(parser);
  const auto summary = harness::run_monte_carlo(config);
  const auto report = harness::monte_carlo_report(config, summary);
  return report.emit(std::cout, options) ? 0 : 1;
}
