// Reproduces paper Fig. 7: relative miss ratio (vs. the static even share)
// of the Unrestricted and Bank-aware partitioning algorithms over random
// 8-workload mixes, sorted by the Unrestricted reduction; plus the headline
// averages (paper: Unrestricted ~30% reduction, Bank-aware ~27%).
//
// Flags: --trials, --seed, --threads, --json-out, --csv-out (legacy env
// knobs BACP_MC_TRIALS, BACP_MC_SEED, BACP_THREADS still work).
//
// Process sharding: `--shards N --shard-id k --shard-out slice.shard`
// evaluates only the trials owned by shard k (trial % N == k) and writes a
// shard artifact instead of the report; `--merge DIR` loads every *.shard
// file in DIR, audits merge legality (refusing on any violation) and emits
// the combined report — byte-identical to an unsharded run of the same
// sweep, so mix counts scale with machines, not cores.

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "harness/monte_carlo.hpp"
#include "harness/shard_io.hpp"
#include "obs/report.hpp"

namespace {

int run_merge(const std::string& directory, const bacp::obs::ReportOptions& options) {
  using namespace bacp;
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(directory)) {
    if (entry.path().extension() == ".shard") paths.push_back(entry.path().string());
  }
  // Artifact order must not matter, but scan order is filesystem-dependent;
  // sort so diagnostics are stable run to run.
  std::sort(paths.begin(), paths.end());
  if (paths.empty()) {
    std::cerr << "error: no *.shard artifacts in " << directory << "\n";
    return 1;
  }

  std::vector<harness::ShardArtifact> artifacts;
  artifacts.reserve(paths.size());
  for (const std::string& path : paths) {
    artifacts.push_back(harness::load_shard_artifact(path));
  }

  const auto merged = harness::merge_shard_artifacts(artifacts);
  if (!merged.audit.ok()) {
    std::cerr << "error: shard merge refused:\n" << merged.audit.to_string();
    return 1;
  }
  const auto report = harness::monte_carlo_report(merged.config, merged.summary);
  return report.emit(std::cout, options) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bacp;

  auto flags = obs::with_report_flags(harness::MonteCarloConfig::cli_flags());
  flags.emplace_back("shard-out=", "write this shard's slice artifact here (no report)");
  flags.emplace_back("merge=", "merge every *.shard artifact in this directory");
  common::ArgParser parser(std::move(flags));
  if (const auto exit_code = obs::handle_cli(parser, argc, argv)) return *exit_code;
  const auto options = obs::ReportOptions::from_args(parser);

  if (parser.has("merge")) return run_merge(parser.require_string("merge"), options);

  const auto config = harness::MonteCarloConfig::from_args(parser);
  const auto summary = harness::run_monte_carlo(config);

  if (config.shards > 1 || parser.has("shard-out")) {
    // A shard's summary has holes, so there is no report to emit — only the
    // slice artifact the merge step consumes.
    const std::string out = parser.require_string("shard-out");
    harness::save_shard_artifact(harness::make_shard_artifact(config, summary), out);
    std::cout << "shard " << config.shard_id << "/" << config.shards << " -> " << out
              << "\n";
    return 0;
  }

  const auto report = harness::monte_carlo_report(config, summary);
  return report.emit(std::cout, options) ? 0 : 1;
}
