// Reproduces paper Fig. 8: relative L2 miss rate of Equal-partitions and
// Bank-aware over No-partitions for the eight Table III workload sets plus
// the geometric mean. Paper headline: Bank-aware removes ~70% of misses
// vs. No-partitions (GM ~= 0.30) and ~25% vs. Equal-partitions.
//
// Flags: --warmup, --instr, --epoch, --seed, --threads, --sets, --json-out,
// --csv-out
// (legacy env knobs BACP_SIM_{WARMUP,INSTR,EPOCH,SEED,SETS} still work).

#include <algorithm>
#include <iostream>
#include <span>

#include "common/env.hpp"
#include "common/stats.hpp"
#include "harness/experiments.hpp"
#include "obs/report.hpp"

int main(int argc, char** argv) {
  using namespace bacp;

  auto spec = harness::DetailedRunConfig::cli_flags();
  spec.push_back({"sets=", "first N Table III sets only (env BACP_SIM_SETS)"});
  common::ArgParser parser(obs::with_report_flags(std::move(spec)));
  if (const auto exit_code = obs::handle_cli(parser, argc, argv)) return *exit_code;
  const auto options = obs::ReportOptions::from_args(parser);

  const auto config = harness::DetailedRunConfig::from_args(parser);
  const std::size_t num_sets = static_cast<std::size_t>(parser.get_u64_or_fail(
      "sets", common::env_u64("BACP_SIM_SETS", harness::table3_sets().size())));

  obs::Report report("fig8_miss_rate", "Fig. 8: relative miss rate over No-partitions");
  auto& table = report.table(
      "relative_misses", {"set", "No-partitions", "Equal-partitions", "Bank-aware"});
  std::vector<double> equal_ratios;
  std::vector<double> bank_ratios;

  const auto& sets = harness::table3_sets();
  const auto sweep = harness::run_detailed_sweep(
      std::span(sets.data(), std::min(num_sets, sets.size())), config);
  for (const auto& comparison : sweep) {
    equal_ratios.push_back(comparison.equal_relative_misses());
    bank_ratios.push_back(comparison.bank_relative_misses());
    table.begin_row()
        .cell(comparison.label)
        .cell(1.0)
        .cell(comparison.equal_relative_misses())
        .cell(comparison.bank_relative_misses());
  }
  const double equal_gm = common::geometric_mean(equal_ratios);
  const double bank_gm = common::geometric_mean(bank_ratios);
  table.begin_row().cell("GM").cell(1.0).cell(equal_gm).cell(bank_gm);

  report.metric("equal_gm", equal_gm);
  report.metric("bank_aware_gm", bank_gm);
  report.metric("bank_vs_equal", bank_gm / equal_gm);
  report.note("paper GM: Bank-aware ~0.30 (70% reduction vs No-partitions; "
              "~25% vs Equal-partitions)");
  return report.emit(std::cout, options) ? 0 : 1;
}
