// Reproduces paper Fig. 8: relative L2 miss rate of Equal-partitions and
// Bank-aware over No-partitions for the eight Table III workload sets plus
// the geometric mean. Paper headline: Bank-aware removes ~70% of misses
// vs. No-partitions (GM ~= 0.30) and ~25% vs. Equal-partitions.
//
// Scale knobs: BACP_SIM_WARMUP, BACP_SIM_INSTR (instructions per core), BACP_SIM_SETS
// (first N sets only), BACP_SIM_EPOCH, BACP_SIM_SEED.

#include <iostream>

#include "common/env.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/experiments.hpp"

int main() {
  using namespace bacp;

  harness::DetailedRunConfig config;
  config.warmup_instructions =
      common::env_u64("BACP_SIM_WARMUP", config.warmup_instructions);
  config.measure_instructions =
      common::env_u64("BACP_SIM_INSTR", config.measure_instructions);
  config.epoch_cycles = common::env_u64("BACP_SIM_EPOCH", config.epoch_cycles);
  config.seed = common::env_u64("BACP_SIM_SEED", config.seed);
  const std::size_t num_sets = static_cast<std::size_t>(
      common::env_u64("BACP_SIM_SETS", harness::table3_sets().size()));

  std::cout << "=== Fig. 8: relative miss rate over No-partitions ===\n";
  common::Table table({"set", "No-partitions", "Equal-partitions", "Bank-aware"});
  std::vector<double> equal_ratios;
  std::vector<double> bank_ratios;

  const auto& sets = harness::table3_sets();
  for (std::size_t i = 0; i < sets.size() && i < num_sets; ++i) {
    const auto comparison =
        harness::run_set_comparison(sets[i].label, sets[i].mix(), config);
    equal_ratios.push_back(comparison.equal_relative_misses());
    bank_ratios.push_back(comparison.bank_relative_misses());
    table.begin_row()
        .add_cell(sets[i].label)
        .add_cell(1.0, 3)
        .add_cell(comparison.equal_relative_misses(), 3)
        .add_cell(comparison.bank_relative_misses(), 3);
  }
  table.begin_row()
      .add_cell("GM")
      .add_cell(1.0, 3)
      .add_cell(common::geometric_mean(equal_ratios), 3)
      .add_cell(common::geometric_mean(bank_ratios), 3);
  table.print(std::cout);

  std::cout << "\npaper GM: Bank-aware ~0.30 (70% reduction vs No-partitions; "
               "~25% vs Equal-partitions)\n"
            << "measured: Bank-aware GM = "
            << common::Table::format_double(common::geometric_mean(bank_ratios), 3)
            << ", vs Equal = "
            << common::Table::format_double(common::geometric_mean(bank_ratios) /
                                                common::geometric_mean(equal_ratios),
                                            3)
            << '\n';
  return 0;
}
