// Policy-family ablation: where does Bank-aware sit between fairness and
// throughput? Compares, over the Fig. 7 Monte-Carlo mix distribution:
//   - Capitalist  (free-for-all)      -> modelled as the fixed even share
//                                        for projection purposes (the
//                                        detailed shared run is Fig. 8's
//                                        No-partition baseline),
//   - Communist   (equalized misses)  -> Hsu et al.'s fairness policy,
//   - Utilitarian (minimized misses)  -> the Unrestricted allocator,
//   - Bank-aware  (the paper).
// Reported: mean total projected misses vs fixed share, and the mean
// max-min spread of per-core miss ratios (the fairness metric).
//
// Flags: --trials, --seed, --json-out, --csv-out (legacy env knobs
// BACP_MC_TRIALS, BACP_MC_SEED still work).

#include <iostream>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "harness/config_cli.hpp"
#include "msa/miss_curve.hpp"
#include "obs/report.hpp"
#include "partition/bank_aware.hpp"
#include "partition/fairness.hpp"
#include "partition/unrestricted.hpp"
#include "trace/mix.hpp"
#include "trace/spec2000.hpp"

int main(int argc, char** argv) {
  using namespace bacp;

  common::ArgParser parser(obs::with_report_flags(
      {harness::value_flag(harness::kTrialsKnob), harness::value_flag(harness::kMcSeedKnob)}));
  if (const auto exit_code = obs::handle_cli(parser, argc, argv)) return *exit_code;
  const auto options = obs::ReportOptions::from_args(parser);

  const std::size_t trials =
      static_cast<std::size_t>(harness::read_u64(parser, harness::kTrialsKnob, 300));
  const std::uint64_t seed = harness::read_u64(parser, harness::kMcSeedKnob, 2009);

  partition::CmpGeometry geometry;
  const auto& suite = trace::spec2000_suite();
  const std::vector<WayCount> even(geometry.num_cores,
                                   geometry.total_ways() / geometry.num_cores);

  common::StreamingStats miss_even, miss_communist, miss_utilitarian, miss_bank;
  common::StreamingStats spread_even, spread_communist, spread_utilitarian,
      spread_bank;

  for (std::size_t trial = 0; trial < trials; ++trial) {
    common::Rng rng(seed, trial);
    const auto mix = trace::random_mix(rng, suite.size(), geometry.num_cores);
    std::vector<msa::MissRatioCurve> curves;
    for (const auto index : mix.workload_indices) {
      const auto& model = suite[index];
      curves.push_back(msa::MissRatioCurve::from_model(model, 128).scaled(model.l2_apki));
    }
    const double fixed = partition::projected_total_misses(curves, even);

    const auto communist = partition::communist_partition(geometry, curves);
    const auto utilitarian = partition::unrestricted_partition(geometry, curves);
    const auto bank = partition::bank_aware_partition(geometry, curves);

    miss_even.add(1.0);
    miss_communist.add(
        partition::projected_total_misses(curves, communist.ways_per_core) / fixed);
    miss_utilitarian.add(
        partition::projected_total_misses(curves, utilitarian.ways_per_core) / fixed);
    miss_bank.add(
        partition::projected_total_misses(curves, bank.allocation.ways_per_core) /
        fixed);

    spread_even.add(partition::miss_ratio_spread(curves, even));
    spread_communist.add(partition::miss_ratio_spread(curves, communist.ways_per_core));
    spread_utilitarian.add(
        partition::miss_ratio_spread(curves, utilitarian.ways_per_core));
    spread_bank.add(
        partition::miss_ratio_spread(curves, bank.allocation.ways_per_core));
  }

  obs::Report report("ablation_policies",
                     "Ablation: Communist / Utilitarian / Bank-aware (" +
                         std::to_string(trials) + " mixes)");
  report.meta("trials", std::to_string(trials));
  report.meta("seed", std::to_string(seed));
  auto& table = report.table("policies", {"policy", "mean misses vs fixed share",
                                          "mean miss-ratio spread (max-min)"});
  table.begin_row().cell("Fixed even share").cell(miss_even.mean()).cell(
      spread_even.mean());
  table.begin_row()
      .cell("Communist (equalize)")
      .cell(miss_communist.mean())
      .cell(spread_communist.mean());
  table.begin_row()
      .cell("Utilitarian (Unrestricted)")
      .cell(miss_utilitarian.mean())
      .cell(spread_utilitarian.mean());
  table.begin_row()
      .cell("Bank-aware (paper)")
      .cell(miss_bank.mean())
      .cell(spread_bank.mean());

  report.metric("communist_mean_misses", miss_communist.mean());
  report.metric("utilitarian_mean_misses", miss_utilitarian.mean());
  report.metric("bank_aware_mean_misses", miss_bank.mean());
  report.metric("bank_aware_mean_spread", spread_bank.mean());
  report.note("expected shape (Hsu et al. / this paper): Communist minimizes the "
              "spread but forfeits misses; Utilitarian minimizes misses; "
              "Bank-aware tracks Utilitarian within a few points under physical "
              "constraints");
  return report.emit(std::cout, options) ? 0 : 1;
}
