// Policy-family ablation: where does Bank-aware sit between fairness and
// throughput? Compares, over the Fig. 7 Monte-Carlo mix distribution:
//   - Capitalist  (free-for-all)      -> modelled as the fixed even share
//                                        for projection purposes (the
//                                        detailed shared run is Fig. 8's
//                                        No-partition baseline),
//   - Communist   (equalized misses)  -> Hsu et al.'s fairness policy,
//   - Utilitarian (minimized misses)  -> the Unrestricted allocator,
//   - Bank-aware  (the paper).
// Reported: mean total projected misses vs fixed share, and the mean
// max-min spread of per-core miss ratios (the fairness metric).
//
// Scale knobs: BACP_MC_TRIALS (default 300), BACP_MC_SEED.

#include <iostream>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "msa/miss_curve.hpp"
#include "partition/bank_aware.hpp"
#include "partition/fairness.hpp"
#include "partition/unrestricted.hpp"
#include "trace/mix.hpp"
#include "trace/spec2000.hpp"

int main() {
  using namespace bacp;
  const std::size_t trials =
      static_cast<std::size_t>(common::env_u64("BACP_MC_TRIALS", 300));
  const std::uint64_t seed = common::env_u64("BACP_MC_SEED", 2009);

  partition::CmpGeometry geometry;
  const auto& suite = trace::spec2000_suite();
  const std::vector<WayCount> even(geometry.num_cores,
                                   geometry.total_ways() / geometry.num_cores);

  common::StreamingStats miss_even, miss_communist, miss_utilitarian, miss_bank;
  common::StreamingStats spread_even, spread_communist, spread_utilitarian,
      spread_bank;

  for (std::size_t trial = 0; trial < trials; ++trial) {
    common::Rng rng(seed, trial);
    const auto mix = trace::random_mix(rng, suite.size(), geometry.num_cores);
    std::vector<msa::MissRatioCurve> curves;
    for (const auto index : mix.workload_indices) {
      const auto& model = suite[index];
      curves.push_back(msa::MissRatioCurve::from_model(model, 128).scaled(model.l2_apki));
    }
    const double fixed = partition::projected_total_misses(curves, even);

    const auto communist = partition::communist_partition(geometry, curves);
    const auto utilitarian = partition::unrestricted_partition(geometry, curves);
    const auto bank = partition::bank_aware_partition(geometry, curves);

    miss_even.add(1.0);
    miss_communist.add(
        partition::projected_total_misses(curves, communist.ways_per_core) / fixed);
    miss_utilitarian.add(
        partition::projected_total_misses(curves, utilitarian.ways_per_core) / fixed);
    miss_bank.add(
        partition::projected_total_misses(curves, bank.allocation.ways_per_core) /
        fixed);

    spread_even.add(partition::miss_ratio_spread(curves, even));
    spread_communist.add(partition::miss_ratio_spread(curves, communist.ways_per_core));
    spread_utilitarian.add(
        partition::miss_ratio_spread(curves, utilitarian.ways_per_core));
    spread_bank.add(
        partition::miss_ratio_spread(curves, bank.allocation.ways_per_core));
  }

  std::cout << "=== Ablation: Communist / Utilitarian / Bank-aware (" << trials
            << " mixes) ===\n";
  common::Table table({"policy", "mean misses vs fixed share",
                       "mean miss-ratio spread (max-min)"});
  table.begin_row().add_cell("Fixed even share").add_cell(miss_even.mean(), 3).add_cell(
      spread_even.mean(), 3);
  table.begin_row()
      .add_cell("Communist (equalize)")
      .add_cell(miss_communist.mean(), 3)
      .add_cell(spread_communist.mean(), 3);
  table.begin_row()
      .add_cell("Utilitarian (Unrestricted)")
      .add_cell(miss_utilitarian.mean(), 3)
      .add_cell(spread_utilitarian.mean(), 3);
  table.begin_row()
      .add_cell("Bank-aware (paper)")
      .add_cell(miss_bank.mean(), 3)
      .add_cell(spread_bank.mean(), 3);
  table.print(std::cout);
  std::cout << "\nexpected shape (Hsu et al. / this paper): Communist minimizes the\n"
               "spread but forfeits misses; Utilitarian minimizes misses; Bank-aware\n"
               "tracks Utilitarian within a few points under physical constraints.\n";
  return 0;
}
