// Reproduces paper Table II: the hardware overhead of the proposed MSA
// profiler — 12-bit partial tags, 1-in-32 set sampling, 72-way (9/16
// capacity) stack — and the ~0.4-0.5% of-L2 total the paper reports.

#include <iostream>

#include "common/table.hpp"
#include "msa/overhead_model.hpp"
#include "sim/system_config.hpp"

int main() {
  using namespace bacp;
  const auto system = sim::SystemConfig::baseline();

  msa::OverheadConfig config;
  config.partial_tag_bits = system.profiler.partial_tag_bits;
  config.profiled_ways = system.profiler.profiled_ways;
  config.monitored_sets = system.profiler.num_sets / system.profiler.set_sampling;
  config.num_profilers = system.geometry.num_cores;
  const auto report = msa::compute_overhead(config);

  common::Table table({"structure", "overhead equation", "paper", "this model"});
  table.begin_row()
      .add_cell("Partial tags")
      .add_cell("tag_width x ways x sets")
      .add_cell("54 kbits")
      .add_cell(common::Table::format_double(
                    static_cast<double>(report.partial_tag_bits_total) / 1024.0, 2) +
                " kbits");
  table.begin_row()
      .add_cell("LRU stack distance impl.")
      .add_cell("((ptr x ways) + head/tail) x sets")
      .add_cell("27 kbits")
      .add_cell(common::Table::format_double(
                    static_cast<double>(report.lru_stack_bits_total) / 1024.0, 2) +
                " kbits");
  table.begin_row()
      .add_cell("Hit counters")
      .add_cell("ways x counter_size")
      .add_cell("2.25 kbits")
      .add_cell(common::Table::format_double(
                    static_cast<double>(report.hit_counter_bits_total) / 1024.0, 2) +
                " kbits");

  std::cout << "=== Table II: overhead of the proposed MSA profiler ===\n";
  std::cout << "(config: " << config.partial_tag_bits << "-bit tags, "
            << config.monitored_sets << " monitored sets, " << config.profiled_ways
            << "-way stack)\n";
  table.print(std::cout);

  const std::uint64_t l2_bytes = 16ull * 1024 * 1024;
  std::cout << "\nPer profiler: "
            << common::Table::format_double(report.per_profiler_kbits(), 2)
            << " kbits;  all " << config.num_profilers << " profilers = "
            << common::Table::format_double(
                   report.fraction_of_cache(l2_bytes, config.num_profilers) * 100.0, 2)
            << "% of the 16 MB L2 (paper: ~0.4%)\n";
  return 0;
}
