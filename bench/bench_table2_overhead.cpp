// Reproduces paper Table II: the hardware overhead of the proposed MSA
// profiler — 12-bit partial tags, 1-in-32 set sampling, 72-way (9/16
// capacity) stack — and the ~0.4-0.5% of-L2 total the paper reports.
//
// Flags: --json-out, --csv-out.

#include <iostream>

#include "msa/overhead_model.hpp"
#include "obs/report.hpp"
#include "sim/system_config.hpp"

int main(int argc, char** argv) {
  using namespace bacp;

  common::ArgParser parser(obs::with_report_flags({}));
  if (const auto exit_code = obs::handle_cli(parser, argc, argv)) return *exit_code;
  const auto options = obs::ReportOptions::from_args(parser);

  const auto system = sim::SystemConfig::baseline();

  msa::OverheadConfig config;
  config.partial_tag_bits = system.profiler.partial_tag_bits;
  config.profiled_ways = system.profiler.profiled_ways;
  config.monitored_sets = system.profiler.num_sets / system.profiler.set_sampling;
  config.num_profilers = system.geometry.num_cores;
  const auto overhead = msa::compute_overhead(config);

  obs::Report report("table2_overhead", "Table II: overhead of the proposed MSA profiler");
  report.meta("partial_tag_bits", std::to_string(config.partial_tag_bits));
  report.meta("monitored_sets", std::to_string(config.monitored_sets));
  report.meta("profiled_ways", std::to_string(config.profiled_ways));

  auto& table = report.table(
      "overhead", {"structure", "overhead equation", "paper", "this model (kbits)"});
  table.begin_row()
      .cell("Partial tags")
      .cell("tag_width x ways x sets")
      .cell("54 kbits")
      .cell(static_cast<double>(overhead.partial_tag_bits_total) / 1024.0, 2);
  table.begin_row()
      .cell("LRU stack distance impl.")
      .cell("((ptr x ways) + head/tail) x sets")
      .cell("27 kbits")
      .cell(static_cast<double>(overhead.lru_stack_bits_total) / 1024.0, 2);
  table.begin_row()
      .cell("Hit counters")
      .cell("ways x counter_size")
      .cell("2.25 kbits")
      .cell(static_cast<double>(overhead.hit_counter_bits_total) / 1024.0, 2);

  const std::uint64_t l2_bytes = 16ull * 1024 * 1024;
  const double fraction =
      overhead.fraction_of_cache(l2_bytes, config.num_profilers);
  report.metric("per_profiler_kbits", overhead.per_profiler_kbits(), 2);
  report.metric("fraction_of_l2_percent", fraction * 100.0, 2);
  report.note("paper: all profilers together ~0.4% of the 16 MB L2");
  return report.emit(std::cout, options) ? 0 : 1;
}
