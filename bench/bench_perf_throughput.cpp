// Simulator-speed microbenchmark: accesses/second through the hot paths
// that every figure regeneration leans on, so the bench/out/ trajectory
// tracks simulator throughput PR over PR alongside the figure artifacts.
//
// Measured surfaces:
//   - system:   the full Fig. 8 configuration (Set1 mix, all three
//               policies) through sim::System::run;
//   - l2_path:  nuca::DnucaCache::access_batch driven directly (the
//               batched per-access L2 path), with a heap-allocation
//               counter — the PR contract is zero per-access allocations
//               in steady state;
//   - l2_batch.N: batch-size sweep over fresh instances, each fed the
//               identical access stream; every point must land on the
//               same checksum (batching is a speed dial, not a result
//               knob) and the fastest point justifies kDefaultBatchSize;
//   - cache:    cache::SetAssocCache access/fill on one bank's geometry;
//   - profiler: msa::StackProfiler::observe at the production sampling
//               configuration and at dense (1-in-1) sampling.
//
// Wall-clock readings are inherently non-deterministic; they are emitted
// as metrics (this artifact *is* the perf trajectory) plus a deterministic
// checksum so result drift is distinguishable from speed drift.
//
// Flags: --warmup, --instr, --epoch, --seed, --accesses, --batch-size,
// --json-out, --csv-out (legacy env knobs BACP_SIM_* / BACP_BATCH work).

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <new>

#include "common/assert.hpp"
#include "common/env.hpp"
#include "harness/experiments.hpp"
#include "obs/phase_timer.hpp"
#include "obs/report.hpp"
#include "partition/static_policies.hpp"
#include "trace/spec2000.hpp"

namespace {

/// Global operator new/delete instrumentation: counts every heap
/// allocation in the process so the bench can prove the L2 access path is
/// allocation-free in steady state. Relaxed ordering suffices — readings
/// are taken on the measuring thread around single-threaded loops.
std::atomic<std::uint64_t> g_allocations{0};

std::uint64_t allocations() { return g_allocations.load(std::memory_order_relaxed); }

/// Batched driver for the L2 surfaces. The access stream is exactly the
/// PR-5 scalar loop's (block from the rng, core = i % num_cores, every 8th
/// access a write, now += 3) pushed through DnucaCache::access_batch, which
/// replays scalar access() in order — so the checksum matches the scalar
/// drive for every batch size and SIMD tier. Column buffers are members,
/// keeping the timed loop allocation-free.
struct L2BatchDriver {
  static constexpr std::uint32_t kMax = bacp::nuca::DnucaCache::kMaxBatch;
  std::array<bacp::BlockAddress, kMax> blocks{};
  std::array<bacp::CoreId, kMax> cores{};
  std::array<bool, kMax> writes{};
  std::array<bacp::Cycle, kMax> times{};
  std::array<bacp::nuca::L2AccessOutcome, kMax> outcomes{};
  std::uint64_t index = 0;  ///< global access index (core / write pattern)
  bacp::Cycle now = 0;

  std::uint64_t drive(bacp::nuca::DnucaCache& l2, bacp::common::Rng& rng,
                      std::uint64_t working_set, std::uint32_t num_cores,
                      std::uint64_t count, std::uint32_t batch) {
    std::uint64_t sum = 0;
    for (std::uint64_t done = 0; done < count;) {
      const auto n =
          static_cast<std::uint32_t>(std::min<std::uint64_t>(batch, count - done));
      for (std::uint32_t j = 0; j < n; ++j) {
        blocks[j] = rng.next_below(working_set);
        cores[j] = static_cast<bacp::CoreId>(index % num_cores);
        writes[j] = (index & 7) == 0;
        times[j] = now;
        now += 3;
        ++index;
      }
      l2.access_batch(blocks.data(), cores.data(), writes.data(), times.data(), n,
                      outcomes.data());
      for (std::uint32_t j = 0; j < n; ++j) {
        sum += outcomes[j].bank + (outcomes[j].hit ? 1 : 0) + outcomes[j].evicted.size();
      }
      done += n;
    }
    return sum;
  }
};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size == 0 ? 1 : size)) return ptr;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

int main(int argc, char** argv) {
  using namespace bacp;

  auto spec = harness::DetailedRunConfig::cli_flags();
  spec.push_back({"accesses=", "accesses per micro loop (env BACP_PERF_ACCESSES)"});
  common::ArgParser parser(obs::with_report_flags(std::move(spec)));
  if (const auto exit_code = obs::handle_cli(parser, argc, argv)) return *exit_code;
  const auto options = obs::ReportOptions::from_args(parser);

  auto config = harness::DetailedRunConfig::from_args(parser);
  const auto accesses = parser.get_u64_or_fail(
      "accesses", common::env_u64("BACP_PERF_ACCESSES", 4'000'000));
  // Effective pipeline batch (--batch-size > BACP_BATCH > built-in default),
  // clamped to what one AccessBatch holds.
  const std::uint32_t batch_size =
      config.batch_size != 0
          ? std::min<std::uint32_t>(config.batch_size, nuca::DnucaCache::kMaxBatch)
          : sim::System::kDefaultBatchSize;

  obs::PhaseTimers timers;
  obs::Report report("perf_throughput", "Simulator throughput (accesses/second)");
  report.meta("warmup", std::to_string(config.warmup_instructions));
  report.meta("instr", std::to_string(config.measure_instructions));
  report.meta("accesses", std::to_string(accesses));
  report.meta("seed", std::to_string(config.seed));
  report.meta("batch_size", std::to_string(batch_size));
  std::uint64_t checksum = 0;

  auto& table = report.table("throughput",
                             {"surface", "accesses", "seconds", "accesses/sec",
                              "allocs/access"});
  const auto add_row = [&](const std::string& surface, std::uint64_t count,
                           double seconds, std::uint64_t allocs) {
    const double rate = seconds > 0.0 ? static_cast<double>(count) / seconds : 0.0;
    const double allocs_per_access =
        count == 0 ? 0.0
                   : static_cast<double>(allocs) / static_cast<double>(count);
    table.begin_row()
        .cell(surface)
        .cell(count)
        .cell(seconds, 4)
        .cell(rate, 0)
        .cell(allocs_per_access, 6);
    return rate;
  };

  // --- Full system, Fig. 8 configuration: Set1 mix, three policies. ----
  const auto mix = harness::table3_sets().front().mix();
  const sim::PolicyKind policies[] = {sim::PolicyKind::NoPartition,
                                      sim::PolicyKind::EqualPartition,
                                      sim::PolicyKind::BankAware};
  std::uint64_t system_accesses = 0;
  std::uint64_t system_allocs = 0;
  double system_seconds = 0.0;
  for (const auto policy : policies) {
    sim::SystemConfig system_config = sim::SystemConfig::baseline();
    system_config.policy = policy;
    system_config.epoch_cycles = config.epoch_cycles;
    system_config.seed = config.seed;
    system_config.finalize();
    sim::System system(system_config, mix);
    system.set_batch_size(batch_size);
    system.warm_up(config.warmup_instructions);

    const auto live = [&] {
      return system.l2().stats().total_hits() + system.l2().stats().total_misses();
    };
    const std::uint64_t accesses_before = live();
    const std::uint64_t allocs_before = allocations();
    const std::string phase = std::string("system.") + sim::to_string(policy);
    {
      const auto scope = timers.scope(phase);
      system.run(config.measure_instructions);
    }
    const std::uint64_t ran = live() - accesses_before;
    const std::uint64_t allocs = allocations() - allocs_before;
    const double seconds = timers.seconds(phase);
    system_accesses += ran;
    system_allocs += allocs;
    system_seconds += seconds;
    checksum += system.results().l2_misses();
    add_row(phase, ran, seconds, allocs);
  }
  report.metric("system_accesses_per_sec",
                add_row("system", system_accesses, system_seconds, system_allocs), 0);
  report.metric("system_allocs_per_access",
                system_accesses == 0
                    ? 0.0
                    : static_cast<double>(system_allocs) /
                          static_cast<double>(system_accesses),
                6);

  // --- L2 access path driven directly (steady-state allocation check). --
  {
    partition::CmpGeometry geometry;  // the paper's 8x16x8 baseline
    noc::NocConfig noc_config;
    noc_config.num_cores = geometry.num_cores;
    noc_config.num_banks = geometry.num_banks;
    noc::Noc noc(noc_config);
    nuca::DnucaConfig l2_config;
    l2_config.geometry = geometry;
    nuca::DnucaCache l2(l2_config, noc);
    l2.apply_assignment(partition::equal_partition(geometry).assignment);

    common::Rng rng(config.seed, 77);
    // Working set ~2x capacity so the steady state mixes hits, misses and
    // evictions — the full per-access path.
    const std::uint64_t working_set =
        2ull * geometry.num_banks * l2_config.sets_per_bank * geometry.ways_per_bank;
    L2BatchDriver driver;
    checksum += driver.drive(l2, rng, working_set, geometry.num_cores, accesses / 4,
                             batch_size);  // reach steady state
    const std::uint64_t allocs_before = allocations();
    std::uint64_t timed_sum = 0;
    {
      const auto scope = timers.scope("l2_path");
      timed_sum =
          driver.drive(l2, rng, working_set, geometry.num_cores, accesses, batch_size);
    }
    checksum += timed_sum;
    const std::uint64_t allocs = allocations() - allocs_before;
    report.metric("l2_path_accesses_per_sec",
                  add_row("l2_path", accesses, timers.seconds("l2_path"), allocs), 0);
    report.metric("l2_path_allocs", allocs);
    report.metric("l2_path_allocs_per_access",
                  accesses == 0 ? 0.0
                                : static_cast<double>(allocs) /
                                      static_cast<double>(accesses),
                  6);
  }

  // --- Batch-size sweep: the identical stream on a fresh instance per
  // size. Every point must land on the same checksum — batching is a speed
  // dial, not a result knob — and the fastest point is the evidence behind
  // sim::System::kDefaultBatchSize.
  {
    constexpr std::array<std::uint32_t, 5> kSweepSizes = {1, 4, 16, 64, 256};
    const std::uint64_t sweep_accesses = accesses / 2;
    std::uint64_t sweep_checksum = 0;
    std::uint32_t best_batch = 0;
    double best_rate = 0.0;
    for (const std::uint32_t batch : kSweepSizes) {
      partition::CmpGeometry geometry;
      noc::NocConfig noc_config;
      noc_config.num_cores = geometry.num_cores;
      noc_config.num_banks = geometry.num_banks;
      noc::Noc noc(noc_config);
      nuca::DnucaConfig l2_config;
      l2_config.geometry = geometry;
      nuca::DnucaCache l2(l2_config, noc);
      l2.apply_assignment(partition::equal_partition(geometry).assignment);
      common::Rng rng(config.seed, 80);
      const std::uint64_t working_set =
          2ull * geometry.num_banks * l2_config.sets_per_bank * geometry.ways_per_bank;
      L2BatchDriver driver;
      std::uint64_t sum = driver.drive(l2, rng, working_set, geometry.num_cores,
                                       sweep_accesses / 4, batch);
      const std::string phase = "l2_batch." + std::to_string(batch);
      const std::uint64_t allocs_before = allocations();
      {
        const auto scope = timers.scope(phase);
        sum += driver.drive(l2, rng, working_set, geometry.num_cores, sweep_accesses,
                            batch);
      }
      if (sweep_checksum == 0) sweep_checksum = sum;
      BACP_ASSERT(sum == sweep_checksum,
                  "batch-size sweep checksum drifted across batch sizes");
      const double rate = add_row(phase, sweep_accesses, timers.seconds(phase),
                                  allocations() - allocs_before);
      if (rate > best_rate) {
        best_rate = rate;
        best_batch = batch;
      }
    }
    report.metric("l2_batch_sweep_checksum", sweep_checksum);
    report.metric("l2_batch_best", static_cast<std::uint64_t>(best_batch));
    report.metric("l2_batch_best_accesses_per_sec", best_rate, 0);
  }

  // --- One bank's SetAssocCache: access + fill micro loop. --------------
  {
    cache::SetAssocCache::Config bank_config;
    bank_config.name = "perf.bank";
    bank_config.num_sets = 2048;
    bank_config.ways = 8;
    bank_config.num_cores = 1;
    cache::SetAssocCache bank(bank_config);
    common::Rng rng(config.seed, 78);
    const std::uint64_t working_set = 3ull * bank_config.num_sets * bank_config.ways;
    const auto drive = [&](std::uint64_t count) {
      for (std::uint64_t i = 0; i < count; ++i) {
        const BlockAddress block = rng.next_below(working_set);
        const auto result = bank.access(block, 0, (i & 15) == 0);
        if (!result.hit) {
          checksum += bank.fill(block, 0, false).way;
        } else {
          checksum += result.way;
        }
      }
    };
    drive(accesses / 4);
    const std::uint64_t allocs_before = allocations();
    {
      const auto scope = timers.scope("cache");
      drive(accesses);
    }
    report.metric("cache_accesses_per_sec",
                  add_row("cache", accesses, timers.seconds("cache"),
                          allocations() - allocs_before),
                  0);
  }

  // --- StackProfiler::observe: production sampling and dense. -----------
  {
    const auto drive_profiler = [&](const char* phase, std::uint32_t sampling) {
      msa::ProfilerConfig profiler_config;  // production: 2048 sets, 72 ways
      profiler_config.set_sampling = sampling;
      msa::StackProfiler profiler(profiler_config);
      common::Rng rng(config.seed, 79);
      const std::uint64_t working_set = 96ull * profiler_config.num_sets;
      const auto drive = [&](std::uint64_t count) {
        for (std::uint64_t i = 0; i < count; ++i) {
          profiler.observe(rng.next_below(working_set));
        }
      };
      drive(accesses / 4);
      const std::uint64_t allocs_before = allocations();
      {
        const auto scope = timers.scope(phase);
        drive(accesses);
      }
      checksum += profiler.histogram().total();
      return add_row(phase, accesses, timers.seconds(phase),
                     allocations() - allocs_before);
    };
    report.metric("profiler_observes_per_sec", drive_profiler("profiler", 32), 0);
    report.metric("profiler_dense_observes_per_sec",
                  drive_profiler("profiler_dense", 1), 0);
  }

  report.metric("checksum", checksum);
  report.note("accesses/sec is the headline; checksum pins simulated results "
              "(must not drift across perf PRs at fixed seed/scale)");
  return report.emit(std::cout, options) ? 0 : 1;
}
