// Ablation of the repartitioning epoch length (the paper fixes it at 100M
// cycles without exploring it): short epochs chase profiler noise and pay
// repartition transients (off-partition hits, migrations); long epochs
// react slowly and ride stale profiles. This bench sweeps the epoch length
// on a capacity-diverse mix and reports misses, CPI and transient traffic.
// The four epoch variants run concurrently over the sweep harness's
// snapshot-aware thread pool; rows are emitted in sweep order, so the
// artifact is byte-identical for any --threads value.
//
// Flags: --instr, --seed, --threads, --no-snapshot-reuse, --shared-warmup,
// --json-out, --csv-out (legacy env knobs BACP_SIM_INSTR, BACP_SIM_SEED,
// BACP_THREADS still work).

#include <iostream>
#include <vector>

#include "harness/config_cli.hpp"
#include "harness/experiments.hpp"
#include "harness/snapshot_cache.hpp"
#include "obs/report.hpp"
#include "sim/system.hpp"

int main(int argc, char** argv) {
  using namespace bacp;

  harness::FlagSpec spec = {harness::value_flag(harness::kInstrKnob),
                            harness::value_flag(harness::kSimSeedKnob)};
  for (auto& row : harness::VariantSweepOptions::cli_flags()) spec.push_back(std::move(row));
  common::ArgParser parser(obs::with_report_flags(std::move(spec)));
  if (const auto exit_code = obs::handle_cli(parser, argc, argv)) return *exit_code;
  const auto options = obs::ReportOptions::from_args(parser);

  const std::uint64_t instructions = harness::read_u64(parser, harness::kInstrKnob, 10'000'000);
  const std::uint64_t seed = harness::read_u64(parser, harness::kSimSeedKnob, 42);
  const auto sweep_options = harness::VariantSweepOptions::from_args(parser);
  const auto mix = harness::table3_sets()[1].mix();  // Set2

  std::vector<harness::SweepVariant> variants;
  for (const Cycle epoch : {500'000ull, 2'000'000ull, 8'000'000ull, 32'000'000ull}) {
    sim::SystemConfig config = sim::SystemConfig::baseline();
    config.policy = sim::PolicyKind::BankAware;
    config.epoch_cycles = epoch;
    config.seed = seed;
    config.finalize();
    variants.push_back({std::to_string(epoch), config, instructions / 2});
  }

  std::vector<sim::SystemResults> results(variants.size());
  harness::run_variant_sweep(variants, mix, sweep_options,
                             [&](sim::System& system, std::size_t index) {
                               system.run(instructions);
                               results[index] = system.results();
                             });

  obs::Report report("ablation_epoch_length",
                     "Ablation: repartition epoch length (Set2, Bank-aware)");
  auto& table = report.table(
      "epoch_sweep", {"epoch (cycles)", "epochs run", "L2 misses", "mean CPI",
                      "off-partition transient hits"});

  double best_cpi = 0.0;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    table.begin_row()
        .cell(variants[i].label)
        .cell(results[i].epochs())
        .cell(results[i].l2_misses())
        .cell(results[i].mean_cpi())
        .cell(results[i].offview_hits());
    if (best_cpi == 0.0 || results[i].mean_cpi() < best_cpi) {
      best_cpi = results[i].mean_cpi();
    }
  }
  report.metric("best_mean_cpi", best_cpi);
  report.note("expected: a broad sweet spot in the middle; very short epochs "
              "inflate transient traffic, very long ones forgo adaptation");
  return report.emit(std::cout, options) ? 0 : 1;
}
