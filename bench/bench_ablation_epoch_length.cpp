// Ablation of the repartitioning epoch length (the paper fixes it at 100M
// cycles without exploring it): short epochs chase profiler noise and pay
// repartition transients (off-partition hits, migrations); long epochs
// react slowly and ride stale profiles. This bench sweeps the epoch length
// on a capacity-diverse mix and reports misses, CPI and transient traffic.
//
// Scale knobs: BACP_SIM_INSTR (default 10M), BACP_SIM_SEED.

#include <iostream>

#include "common/env.hpp"
#include "common/table.hpp"
#include "harness/experiments.hpp"
#include "sim/system.hpp"

int main() {
  using namespace bacp;
  const std::uint64_t instructions = common::env_u64("BACP_SIM_INSTR", 10'000'000);
  const std::uint64_t seed = common::env_u64("BACP_SIM_SEED", 42);
  const auto mix = harness::table3_sets()[1].mix();  // Set2

  std::cout << "=== Ablation: repartition epoch length (Set2, Bank-aware) ===\n";
  common::Table table({"epoch (cycles)", "epochs run", "L2 misses", "mean CPI",
                       "off-partition transient hits"});

  for (const Cycle epoch : {500'000ull, 2'000'000ull, 8'000'000ull, 32'000'000ull}) {
    sim::SystemConfig config = sim::SystemConfig::baseline();
    config.policy = sim::PolicyKind::BankAware;
    config.epoch_cycles = epoch;
    config.seed = seed;
    config.finalize();
    sim::System system(config, mix);
    system.warm_up(instructions / 2);
    system.run(instructions);
    const auto results = system.results();
    table.begin_row()
        .add_cell(std::to_string(epoch))
        .add_cell(results.epochs)
        .add_cell(results.l2_misses)
        .add_cell(results.mean_cpi, 3)
        .add_cell(results.offview_hits);
  }
  table.print(std::cout);
  std::cout << "\nexpected: a broad sweet spot in the middle; very short epochs "
               "inflate\ntransient traffic, very long ones forgo adaptation.\n";
  return 0;
}
