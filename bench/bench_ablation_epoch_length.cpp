// Ablation of the repartitioning epoch length (the paper fixes it at 100M
// cycles without exploring it): short epochs chase profiler noise and pay
// repartition transients (off-partition hits, migrations); long epochs
// react slowly and ride stale profiles. This bench sweeps the epoch length
// on a capacity-diverse mix and reports misses, CPI and transient traffic.
//
// Flags: --instr, --seed, --json-out, --csv-out (legacy env knobs
// BACP_SIM_INSTR, BACP_SIM_SEED still work).

#include <iostream>

#include "common/env.hpp"
#include "harness/experiments.hpp"
#include "obs/report.hpp"
#include "sim/system.hpp"

int main(int argc, char** argv) {
  using namespace bacp;

  common::ArgParser parser(obs::with_report_flags(
      {{"instr=", "measured instructions per core (env BACP_SIM_INSTR)"},
       {"seed=", "simulation seed (env BACP_SIM_SEED)"}}));
  if (const auto exit_code = obs::handle_cli(parser, argc, argv)) return *exit_code;
  const auto options = obs::ReportOptions::from_args(parser);

  const std::uint64_t instructions =
      parser.get_u64_or_fail("instr", common::env_u64("BACP_SIM_INSTR", 10'000'000));
  const std::uint64_t seed =
      parser.get_u64_or_fail("seed", common::env_u64("BACP_SIM_SEED", 42));
  const auto mix = harness::table3_sets()[1].mix();  // Set2

  obs::Report report("ablation_epoch_length",
                     "Ablation: repartition epoch length (Set2, Bank-aware)");
  auto& table = report.table(
      "epoch_sweep", {"epoch (cycles)", "epochs run", "L2 misses", "mean CPI",
                      "off-partition transient hits"});

  double best_cpi = 0.0;
  for (const Cycle epoch : {500'000ull, 2'000'000ull, 8'000'000ull, 32'000'000ull}) {
    sim::SystemConfig config = sim::SystemConfig::baseline();
    config.policy = sim::PolicyKind::BankAware;
    config.epoch_cycles = epoch;
    config.seed = seed;
    config.finalize();
    sim::System system(config, mix);
    system.warm_up(instructions / 2);
    system.run(instructions);
    const auto results = system.results();
    table.begin_row()
        .cell(std::to_string(epoch))
        .cell(results.epochs())
        .cell(results.l2_misses())
        .cell(results.mean_cpi())
        .cell(results.offview_hits());
    if (best_cpi == 0.0 || results.mean_cpi() < best_cpi) best_cpi = results.mean_cpi();
  }
  report.metric("best_mean_cpi", best_cpi);
  report.note("expected: a broad sweet spot in the middle; very short epochs "
              "inflate transient traffic, very long ones forgo adaptation");
  return report.emit(std::cout, options) ? 0 : 1;
}
