// Ablation of the MSA profiler cost reductions (paper Section III-A):
// partial-tag width x set-sampling sweep against the full-tag, all-sets
// reference profiler. The paper's claim to verify: "12 bit partial tags
// combined with 1-in-32 set sampling produced error rates within 5% of the
// profiling accuracy obtained using a full tag implementation."
//
// Error metric: mean absolute relative error of the projected miss-ratio
// curve across allocation points 1..72, averaged over three workloads of
// different locality shapes.
//
// Flags: --accesses, --json-out, --csv-out (legacy env knob
// BACP_ACC_ACCESSES still works).

#include <cmath>
#include <iostream>

#include "common/env.hpp"
#include "msa/stack_profiler.hpp"
#include "obs/report.hpp"
#include "trace/spec2000.hpp"
#include "trace/synthetic.hpp"

namespace {

double curve_error(const bacp::msa::MissRatioCurve& reference,
                   const bacp::msa::MissRatioCurve& candidate, bacp::WayCount depth) {
  double total = 0.0;
  for (bacp::WayCount w = 1; w <= depth; ++w) {
    const double ref = reference.miss_ratio(w);
    const double got = candidate.miss_ratio(w);
    total += ref > 0.0 ? std::abs(got - ref) / ref : std::abs(got - ref);
  }
  return total / depth;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bacp;

  common::ArgParser parser(obs::with_report_flags(
      {{"accesses=", "profiled accesses per workload (env BACP_ACC_ACCESSES)"}}));
  if (const auto exit_code = obs::handle_cli(parser, argc, argv)) return *exit_code;
  const auto options = obs::ReportOptions::from_args(parser);

  const std::uint64_t accesses =
      parser.get_u64_or_fail("accesses", common::env_u64("BACP_ACC_ACCESSES", 1'500'000));
  const char* workloads[] = {"sixtrack", "bzip2", "mcf"};
  const std::uint32_t tag_bits[] = {6, 8, 12, 16};
  const std::uint32_t samplings[] = {8, 32, 128};
  constexpr WayCount kDepth = 72;

  obs::Report report("ablation_profiler_accuracy",
                     "Ablation: profiler accuracy vs partial-tag width x set sampling");
  report.meta("accesses", std::to_string(accesses));
  auto& table = report.table(
      "accuracy", {"tag bits", "sampling", "mean |rel. error| of miss curve",
                   "within paper's 5%?"});

  for (const std::uint32_t bits : tag_bits) {
    for (const std::uint32_t sampling : samplings) {
      double error_sum = 0.0;
      for (const char* name : workloads) {
        const auto& model = trace::spec2000_by_name(name);
        trace::GeneratorConfig generator_config;
        trace::SyntheticTraceGenerator generator(model, generator_config, 3);

        msa::ProfilerConfig reference_config;
        reference_config.set_sampling = 1;
        reference_config.partial_tag_bits = 0;  // full tags
        reference_config.profiled_ways = kDepth;
        msa::StackProfiler reference(reference_config);

        msa::ProfilerConfig candidate_config;
        candidate_config.set_sampling = sampling;
        candidate_config.partial_tag_bits = bits;
        candidate_config.profiled_ways = kDepth;
        msa::StackProfiler candidate(candidate_config);

        for (std::uint64_t i = 0; i < accesses; ++i) {
          const auto block = generator.next().block;
          reference.observe(block);
          candidate.observe(block);
        }
        error_sum += curve_error(reference.curve(), candidate.curve(), kDepth);
      }
      const double mean_error = error_sum / std::size(workloads);
      table.begin_row()
          .cell(std::to_string(bits))
          .cell("1-in-" + std::to_string(sampling))
          .cell(mean_error, 4)
          .cell(mean_error <= 0.05 ? "yes" : "no");
      if (bits == 12 && sampling == 32) {
        report.metric("paper_config_mean_error", mean_error, 4);
      }
    }
  }
  report.note("paper's configuration is 12-bit tags, 1-in-32 sampling");
  return report.emit(std::cout, options) ? 0 : 1;
}
