// Reproduces paper Table III: the Bank-aware way assignments for the eight
// detailed-simulation workload sets. The paper's own printed assignments
// are shown side by side. Exact way counts depend on the authors' measured
// MSA profiles (and two of the paper's rows do not even sum to 128), so
// the comparison to make is structural: who gets the big partitions, who
// gets squeezed, and that every row sums to the full 128 ways.

#include <iostream>
#include <sstream>

#include "common/table.hpp"
#include "harness/experiments.hpp"
#include "harness/monte_carlo.hpp"
#include "msa/miss_curve.hpp"
#include "partition/bank_aware.hpp"
#include "trace/spec2000.hpp"

int main() {
  using namespace bacp;
  partition::CmpGeometry geometry;

  std::cout << "=== Table III: Bank-aware cache-way assignments (core0..core7) ===\n";
  common::Table table({"set", "core", "benchmark", "paper ways", "our ways", "banks"});

  for (const auto& set : harness::table3_sets()) {
    const auto mix = set.mix();
    const auto& suite = trace::spec2000_suite();
    std::vector<msa::MissRatioCurve> curves;
    for (const std::size_t index : mix.workload_indices) {
      const auto& model = suite.at(index);
      curves.push_back(msa::MissRatioCurve::from_model(model, 128).scaled(model.l2_apki));
    }
    const auto result = partition::bank_aware_partition(geometry, curves);

    for (CoreId core = 0; core < geometry.num_cores; ++core) {
      std::ostringstream banks;
      banks << "local";
      for (const BankId bank : result.center_banks_of_core[core]) banks << "+C" << bank;
      for (const auto& pair : result.pairs) {
        if (pair.first == core || pair.second == core) {
          banks << " (paired " << pair.first << "&" << pair.second << ")";
        }
      }
      table.begin_row()
          .add_cell(core == 0 ? set.label : "")
          .add_cell(std::to_string(core))
          .add_cell(set.benchmarks[core])
          .add_cell(std::to_string(set.paper_ways[core]))
          .add_cell(std::to_string(result.allocation.ways_per_core[core]))
          .add_cell(banks.str());
    }
  }
  table.print(std::cout);
  return 0;
}
