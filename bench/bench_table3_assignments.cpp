// Reproduces paper Table III: the Bank-aware way assignments for the eight
// detailed-simulation workload sets. The paper's own printed assignments
// are shown side by side. Exact way counts depend on the authors' measured
// MSA profiles (and two of the paper's rows do not even sum to 128), so
// the comparison to make is structural: who gets the big partitions, who
// gets squeezed, and that every row sums to the full 128 ways.
//
// Flags: --json-out, --csv-out.

#include <iostream>
#include <sstream>

#include "harness/experiments.hpp"
#include "harness/monte_carlo.hpp"
#include "msa/miss_curve.hpp"
#include "obs/report.hpp"
#include "partition/bank_aware.hpp"
#include "trace/spec2000.hpp"

int main(int argc, char** argv) {
  using namespace bacp;

  common::ArgParser parser(obs::with_report_flags({}));
  if (const auto exit_code = obs::handle_cli(parser, argc, argv)) return *exit_code;
  const auto options = obs::ReportOptions::from_args(parser);

  partition::CmpGeometry geometry;

  obs::Report report("table3_assignments",
                     "Table III: Bank-aware cache-way assignments (core0..core7)");
  auto& table = report.table(
      "assignments", {"set", "core", "benchmark", "paper ways", "our ways", "banks"});

  std::uint64_t rows_at_full_capacity = 0;
  for (const auto& set : harness::table3_sets()) {
    const auto mix = set.mix();
    const auto& suite = trace::spec2000_suite();
    std::vector<msa::MissRatioCurve> curves;
    for (const std::size_t index : mix.workload_indices) {
      const auto& model = suite.at(index);
      curves.push_back(msa::MissRatioCurve::from_model(model, 128).scaled(model.l2_apki));
    }
    const auto result = partition::bank_aware_partition(geometry, curves);

    WayCount assigned_total = 0;
    for (CoreId core = 0; core < geometry.num_cores; ++core) {
      std::ostringstream banks;
      banks << "local";
      for (const BankId bank : result.center_banks_of_core[core]) banks << "+C" << bank;
      for (const auto& pair : result.pairs) {
        if (pair.first == core || pair.second == core) {
          banks << " (paired " << pair.first << "&" << pair.second << ")";
        }
      }
      assigned_total += result.allocation.ways_per_core[core];
      table.begin_row()
          .cell(core == 0 ? set.label : "")
          .cell(std::to_string(core))
          .cell(set.benchmarks[core])
          .cell(std::uint64_t{set.paper_ways[core]})
          .cell(std::uint64_t{result.allocation.ways_per_core[core]})
          .cell(banks.str());
    }
    if (assigned_total == geometry.total_ways()) ++rows_at_full_capacity;
  }
  report.metric("sets_summing_to_full_capacity", rows_at_full_capacity);
  report.metric("sets_total", std::uint64_t{harness::table3_sets().size()});
  return report.emit(std::cout, options) ? 0 : 1;
}
