#include "noc/noc.hpp"

#include <algorithm>
#include <span>

#include "common/assert.hpp"
#include "snapshot/codec.hpp"

namespace bacp::noc {

Noc::Noc(const NocConfig& config)
    : config_(config), bank_free_at_(config.num_banks, 0) {
  BACP_ASSERT(config_.num_cores >= 1, "NoC needs cores");
  BACP_ASSERT(config_.num_banks >= config_.num_cores, "NoC needs a bank per core");
  BACP_ASSERT(config_.cycles_per_hop >= 1, "hop latency must be positive");
  BACP_ASSERT(config_.max_hops >= 1, "max_hops must be positive");
  stats_.bank_requests.assign(config_.num_banks, 0);
}

std::uint32_t Noc::hops(CoreId core, BankId bank) const {
  BACP_DASSERT(core < config_.num_cores, "core out of range");
  BACP_DASSERT(bank < config_.num_banks, "bank out of range");
  const bool is_center = bank >= config_.num_cores;
  const std::uint32_t column = is_center ? bank - config_.num_cores : bank;
  const std::uint32_t horizontal = column > core ? column - core : core - column;
  // Local row: adjacent access costs one hop-unit (10 cycles); each column
  // of distance adds one. Center row: one extra vertical unit.
  const std::uint32_t units = std::max(1u, horizontal) + (is_center ? 1u : 0u);
  return std::min(units, config_.max_hops);
}

Cycle Noc::request(CoreId core, BankId bank, Cycle now) {
  const Cycle travel = access_latency(core, bank);
  const Cycle arrival = now + travel / 2;  // request flight: half round trip
  Cycle& free_at = bank_free_at_[bank];
  const Cycle service_start = std::max(arrival, free_at);
  stats_.total_queue_cycles += service_start - arrival;
  free_at = service_start + config_.bank_busy_cycles;
  ++stats_.bank_requests[bank];
  return service_start + config_.bank_busy_cycles + travel - travel / 2;
}

void Noc::migrate(BankId from, BankId to, Cycle now) {
  BACP_DASSERT(from < config_.num_banks && to < config_.num_banks,
               "bank out of range");
  ++stats_.migration_transfers;
  // The destination bank absorbs the write; the source port is assumed
  // dual-ported for reads (migrations are already off the critical path).
  Cycle& free_at = bank_free_at_[to];
  free_at = std::max(free_at, now) + config_.bank_busy_cycles;
}

void Noc::reset_in_place() {
  std::fill(bank_free_at_.begin(), bank_free_at_.end(), 0);
  clear_stats();
}

void Noc::clear_stats() {
  stats_.bank_requests.assign(config_.num_banks, 0);
  stats_.total_queue_cycles = 0;
  stats_.migration_transfers = 0;
}

void Noc::save_state(snapshot::Writer& writer) const {
  writer.u32(config_.num_cores);
  writer.u32(config_.num_banks);
  writer.scalars(std::span<const Cycle>(bank_free_at_));
  writer.scalars(std::span<const std::uint64_t>(stats_.bank_requests));
  writer.u64(stats_.total_queue_cycles);
  writer.u64(stats_.migration_transfers);
}

void Noc::restore_state(snapshot::Reader& reader) {
  BACP_ASSERT(reader.u32() == config_.num_cores, "snapshot num_cores mismatch");
  BACP_ASSERT(reader.u32() == config_.num_banks, "snapshot num_banks mismatch");
  reader.scalars_into(std::span<Cycle>(bank_free_at_));
  reader.scalars_into(std::span<std::uint64_t>(stats_.bank_requests));
  stats_.total_queue_cycles = reader.u64();
  stats_.migration_transfers = reader.u64();
}

void export_stats(const NocStats& stats, obs::Registry& registry) {
  registry.counter("noc.queue_cycles").set(stats.total_queue_cycles);
  registry.counter("noc.migration_transfers").set(stats.migration_transfers);
  auto& requests = registry.distribution("noc.bank_requests");
  for (const std::uint64_t count : stats.bank_requests) {
    requests.observe(static_cast<double>(count));
  }
}

}  // namespace bacp::noc
