#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "obs/metrics.hpp"

namespace bacp::snapshot {
class Writer;
class Reader;
}  // namespace bacp::snapshot

namespace bacp::audit {
class ComponentAuditor;
}  // namespace bacp::audit

namespace bacp::noc {

/// Latency/contention model of the Fig. 1 floorplan: a row of cores, the
/// Local banks beneath them, the Center banks in a second row. The paper
/// abstracts physical design to the bank-access-latency range — "from 10 up
/// to 70 cycles depending on the physical location of both the core ... and
/// the L2 bank", with a core adjacent to its Local bank paying 10 cycles
/// and 7 hops (core 0 to core 7's Local bank) paying 70. We reproduce that
/// exactly: latency = 10 x hop-units, where a Local bank costs
/// max(1, |core - bank column|) units and a Center bank costs one extra
/// vertical unit (so Center latencies sit higher on average but with less
/// spread, as the paper describes), capped at the 7-unit maximum.
struct NocConfig {
  std::uint32_t num_cores = 8;
  std::uint32_t num_banks = 16;
  Cycle cycles_per_hop = 10;
  std::uint32_t max_hops = 7;
  /// Bank service occupancy per request: back-to-back requests to one bank
  /// queue behind each other at this granularity.
  Cycle bank_busy_cycles = 4;
};

struct NocStats {
  std::vector<std::uint64_t> bank_requests;  // per bank
  std::uint64_t total_queue_cycles = 0;      // contention delay summed
  std::uint64_t migration_transfers = 0;     // bank-to-bank line moves
};

/// Exports under "noc.": queue_cycles and migration_transfers counters,
/// plus a "noc.bank_requests" distribution over the per-bank request
/// counts (its spread is the bank-pressure imbalance).
void export_stats(const NocStats& stats, obs::Registry& registry);

class Noc {
 public:
  explicit Noc(const NocConfig& config);

  /// Hop-units between a core and a bank (>= 1).
  std::uint32_t hops(CoreId core, BankId bank) const;

  /// Contention-free round-trip latency of one bank access.
  Cycle access_latency(CoreId core, BankId bank) const {
    return config_.cycles_per_hop * hops(core, bank);
  }

  /// Issues a request at `now`; returns its completion time including bank
  /// queueing (banks serve one request per bank_busy_cycles).
  Cycle request(CoreId core, BankId bank, Cycle now);

  /// Accounts a line migration between two banks (Cascade demotions,
  /// promotion swaps). Off the critical path; tracked for the aggregation
  /// ablation and to occupy the destination bank.
  void migrate(BankId from, BankId to, Cycle now);

  const NocConfig& config() const { return config_; }
  const NocStats& stats() const { return stats_; }
  void clear_stats();

  /// Rewinds bank occupancy and statistics to the just-constructed state
  /// without reallocating the per-bank arrays.
  void reset_in_place();

  /// Serializes bank occupancy and statistics; restore asserts the
  /// geometry echo.
  void save_state(snapshot::Writer& writer) const;
  void restore_state(snapshot::Reader& reader);

 private:
  friend class audit::ComponentAuditor;
  friend struct NocTestPeer;  ///< mutation hooks for the audit kill-tests

  NocConfig config_;
  std::vector<Cycle> bank_free_at_;
  NocStats stats_;
};

}  // namespace bacp::noc
