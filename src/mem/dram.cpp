#include "mem/dram.hpp"

#include <algorithm>

#include "snapshot/codec.hpp"

namespace bacp::mem {

Cycle Dram::claim_channel(Cycle now) {
  const Cycle start = std::max(now, channel_free_at_);
  stats_.total_channel_wait += start - now;
  channel_free_at_ = start + config_.cycles_per_line;
  return start;
}

Cycle Dram::read(Cycle now) {
  ++stats_.demand_reads;
  const Cycle start = claim_channel(now);
  return start + config_.access_latency;
}

void Dram::writeback(Cycle now) {
  ++stats_.writebacks;
  claim_channel(now);
}

void Dram::save_state(snapshot::Writer& writer) const {
  writer.u64(channel_free_at_);
  writer.u64(stats_.demand_reads);
  writer.u64(stats_.writebacks);
  writer.u64(stats_.total_channel_wait);
}

void Dram::restore_state(snapshot::Reader& reader) {
  channel_free_at_ = reader.u64();
  stats_.demand_reads = reader.u64();
  stats_.writebacks = reader.u64();
  stats_.total_channel_wait = reader.u64();
}

void export_stats(const DramStats& stats, obs::Registry& registry) {
  registry.counter("dram.demand_reads").set(stats.demand_reads);
  registry.counter("dram.writebacks").set(stats.writebacks);
  registry.counter("dram.channel_wait_cycles").set(stats.total_channel_wait);
}

}  // namespace bacp::mem
