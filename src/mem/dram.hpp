#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "obs/metrics.hpp"

namespace bacp::snapshot {
class Writer;
class Reader;
}  // namespace bacp::snapshot

namespace bacp::audit {
class ComponentAuditor;
}  // namespace bacp::audit

namespace bacp::mem {

/// Main-memory model matching Table I: fixed 260-cycle access latency and a
/// 64 GB/s channel. At the 4 GHz core clock, 64 GB/s moves one 64-byte
/// cache line every 4 cycles, modelled as a single serialized channel slot
/// (a token bucket of line transfers). Demand reads wait for both the slot
/// and the access latency; writebacks consume a slot but nothing waits on
/// them.
struct DramConfig {
  Cycle access_latency = 260;
  Cycle cycles_per_line = 4;  ///< 64 B line / (64 GB/s at 4 GHz)
};

struct DramStats {
  std::uint64_t demand_reads = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t total_channel_wait = 0;  ///< queueing behind the channel
};

/// Exports under "dram.": demand_reads, writebacks, channel_wait_cycles.
void export_stats(const DramStats& stats, obs::Registry& registry);

class Dram {
 public:
  explicit Dram(const DramConfig& config) : config_(config) {}

  /// Schedules a demand line read issued at `now`; returns the cycle the
  /// line is available at the L2.
  Cycle read(Cycle now);

  /// Schedules a dirty-line writeback; occupies channel bandwidth only.
  void writeback(Cycle now);

  const DramConfig& config() const { return config_; }
  const DramStats& stats() const { return stats_; }
  void clear_stats() { stats_ = DramStats{}; }

  /// Rewinds channel occupancy and statistics to the just-constructed state.
  void reset_in_place() {
    channel_free_at_ = 0;
    clear_stats();
  }

  /// Serializes channel occupancy and statistics.
  void save_state(snapshot::Writer& writer) const;
  void restore_state(snapshot::Reader& reader);

 private:
  friend class audit::ComponentAuditor;

  Cycle claim_channel(Cycle now);

  // NOLINTNEXTLINE(bacp-snapshot-fields, bacp-reset-fields): immutable model constants (Table I); pinned by config_digest
  DramConfig config_;
  Cycle channel_free_at_ = 0;
  DramStats stats_;
};

/// Miss-status holding registers: the per-core cap on outstanding memory
/// requests (Table I: 16 requests / core). The core model consults this to
/// bound its memory-level parallelism.
struct MshrConfig {
  std::uint32_t entries_per_core = 16;
};

}  // namespace bacp::mem
