#include "nuca/dnuca_cache.hpp"

#include <algorithm>
#include <numeric>

#include "cache/partial_tag.hpp"
#include "common/assert.hpp"

namespace bacp::nuca {

const char* to_string(AggregationKind kind) {
  switch (kind) {
    case AggregationKind::Parallel: return "Parallel";
    case AggregationKind::AddressHash: return "AddressHash";
    case AggregationKind::Cascade: return "Cascade";
    case AggregationKind::TwoLevelCascade: return "TwoLevelCascade";
    case AggregationKind::SharedDnuca: return "SharedDnuca";
  }
  return "?";
}

std::uint64_t DnucaStats::total_hits() const {
  return std::accumulate(hits.begin(), hits.end(), std::uint64_t{0});
}

std::uint64_t DnucaStats::total_misses() const {
  return std::accumulate(misses.begin(), misses.end(), std::uint64_t{0});
}

double DnucaStats::miss_ratio() const {
  const std::uint64_t total = total_hits() + total_misses();
  return total == 0 ? 0.0
                    : static_cast<double>(total_misses()) / static_cast<double>(total);
}

void export_stats(const DnucaStats& stats, obs::Registry& registry) {
  registry.counter("nuca.hits").set(stats.total_hits());
  registry.counter("nuca.misses").set(stats.total_misses());
  registry.counter("nuca.promotions").set(stats.promotions);
  registry.counter("nuca.demotions").set(stats.demotions);
  registry.counter("nuca.directory_lookups").set(stats.directory_lookups);
  registry.counter("nuca.offview_hits").set(stats.offview_hits);
}

DnucaCache::DnucaCache(const DnucaConfig& config, noc::Noc& noc)
    : config_(config), noc_(&noc) {
  config_.geometry.validate();
  BACP_ASSERT(is_pow2(config_.sets_per_bank), "sets_per_bank must be a power of two");
  banks_.reserve(config_.geometry.num_banks);
  for (BankId id = 0; id < config_.geometry.num_banks; ++id) {
    cache::SetAssocCache::Config bank_config;
    bank_config.name = "L2.bank" + std::to_string(id);
    bank_config.num_sets = config_.sets_per_bank;
    bank_config.ways = config_.geometry.ways_per_bank;
    bank_config.num_cores = config_.geometry.num_cores;
    banks_.emplace_back(bank_config);
  }
  // Until a plan is applied, the cache behaves as the No-partition shared
  // pool: every bank is in every core's view.
  views_.assign(config_.geometry.num_cores, {});
  for (CoreId core = 0; core < config_.geometry.num_cores; ++core) {
    for (BankId id = 0; id < config_.geometry.num_banks; ++id) {
      views_[core].push_back(id);
    }
  }
  round_robin_.assign(config_.geometry.num_cores, 0);
  stats_.hits.assign(config_.geometry.num_cores, 0);
  stats_.misses.assign(config_.geometry.num_cores, 0);
}

void DnucaCache::apply_assignment(const partition::BankAssignment& assignment) {
  BACP_ASSERT(assignment.way_masks.size() == banks_.size(), "mask/bank mismatch");
  BACP_ASSERT(assignment.banks_of_core.size() == views_.size(), "view/core mismatch");
  for (BankId id = 0; id < banks_.size(); ++id) {
    banks_[id].set_way_partition(assignment.way_masks[id]);
  }
  views_ = assignment.banks_of_core;
  std::fill(round_robin_.begin(), round_robin_.end(), 0);
  for (CoreId core = 0; core < views_.size(); ++core) {
    BACP_ASSERT(!views_[core].empty(), "every core needs at least one bank");
  }
}

BankId DnucaCache::pick_fill_bank(BlockAddress block, CoreId core) {
  const auto& view = views_[core];
  switch (config_.aggregation) {
    case AggregationKind::Parallel: {
      const std::size_t index = round_robin_[core]++ % view.size();
      return view[index];
    }
    case AggregationKind::AddressHash: {
      // Bit-select above the set index; non-power-of-two views fall back to
      // a modulo (the "complex modulo" hash the paper attributes to
      // POWER4/5-style three-bank hashing).
      const BlockAddress tag_bits = block >> log2_floor(config_.sets_per_bank);
      const std::uint32_t hashed = cache::partial_tag(tag_bits, 20);
      return view[hashed % view.size()];
    }
    case AggregationKind::Cascade:
    case AggregationKind::TwoLevelCascade:
      return view[0];
    case AggregationKind::SharedDnuca: {
      // Static hash home over the whole structure (identical for every
      // requester); migration, not placement, builds locality.
      const BlockAddress tag_bits = block >> log2_floor(config_.sets_per_bank);
      const std::uint32_t hashed = cache::partial_tag(tag_bits, 20);
      return static_cast<BankId>(hashed % config_.geometry.num_banks);
    }
  }
  return view[0];
}

void DnucaCache::fill_with_demotion(BlockAddress block, CoreId core, bool dirty,
                                    BankId bank_id,
                                    std::span<const BankId> demotion_chain, Cycle now,
                                    L2AccessOutcome& outcome) {
  BlockAddress current_block = block;
  bool current_dirty = dirty;
  BankId current_bank = bank_id;
  std::size_t chain_pos = 0;
  while (true) {
    const auto fill = banks_[current_bank].fill(current_block, core, current_dirty);
    if (!fill.evicted) return;
    if (chain_pos >= demotion_chain.size()) {
      outcome.evicted.push_back(*fill.evicted);
      return;
    }
    const BankId next = demotion_chain[chain_pos++];
    noc_->migrate(current_bank, next, now);
    ++stats_.demotions;
    current_block = fill.evicted->block;
    current_dirty = fill.evicted->dirty;
    current_bank = next;
  }
}

void DnucaCache::migrate_one_step(BlockAddress block, CoreId core, BankId from,
                                  Cycle now) {
  const auto& view = views_[core];
  const auto it = std::find(view.begin(), view.end(), from);
  BACP_DASSERT(it != view.end(), "migration source outside the view");
  if (it == view.begin()) return;  // already in the nearest bank
  const BankId target = *(it - 1);

  // Gradual promotion: swap the hit line one bank closer to the requester,
  // displacing that bank's LRU victim into the hole left behind.
  const auto line = banks_[from].invalidate(block);
  BACP_ASSERT(line.has_value(), "migrating line vanished");
  const auto fill = banks_[target].fill(line->block, core, line->dirty);
  ++stats_.promotions;
  noc_->migrate(from, target, now);
  if (fill.evicted) {
    banks_[from].fill(fill.evicted->block, fill.evicted->allocator,
                      fill.evicted->dirty);
    ++stats_.demotions;
    noc_->migrate(target, from, now);
  }
}

void DnucaCache::promote_to_head(BlockAddress block, CoreId core, BankId from,
                                 Cycle now, L2AccessOutcome& outcome) {
  const auto& view = views_[core];
  const BankId head = view.front();
  if (from == head) return;
  const auto line = banks_[from].invalidate(block);
  BACP_ASSERT(line.has_value(), "promotion source lost the line");
  ++stats_.promotions;
  noc_->migrate(from, head, now);

  // Demote displaced lines down the chain toward the hole left at `from`.
  std::vector<BankId> chain;
  if (config_.aggregation == AggregationKind::Cascade) {
    const auto from_it = std::find(view.begin(), view.end(), from);
    BACP_DASSERT(from_it != view.end(), "promotion source outside the view");
    chain.assign(view.begin() + 1, from_it + 1);
  } else {
    chain.push_back(from);  // TwoLevelCascade: straight swap with the head
  }
  fill_with_demotion(line->block, core, line->dirty, head, chain, now, outcome);
}

L2AccessOutcome DnucaCache::access(BlockAddress block, CoreId core, bool is_write,
                                   Cycle now) {
  BACP_DASSERT(core < views_.size(), "core out of range");
  L2AccessOutcome outcome;
  const auto& view = views_[core];

  // Probe the partition first (nearest bank first), then the rest of the
  // structure for repartition transients.
  BankId found_bank = kInvalidBank;
  bool in_view = false;
  for (std::size_t i = 0; i < view.size(); ++i) {
    if (banks_[view[i]].probe(block)) {
      found_bank = view[i];
      in_view = true;
      // Lookup energy accounting per scheme: Parallel probes the whole
      // partition directory at once; AddressHash exactly one bank; Cascade
      // walks the chain; TwoLevel touches at most the head + the group.
      switch (config_.aggregation) {
        case AggregationKind::Parallel: outcome.directory_lookups = static_cast<std::uint32_t>(view.size()); break;
        case AggregationKind::AddressHash: outcome.directory_lookups = 1; break;
        case AggregationKind::Cascade: outcome.directory_lookups = static_cast<std::uint32_t>(i) + 1; break;
        case AggregationKind::TwoLevelCascade: outcome.directory_lookups = i == 0 ? 1 : 2; break;
        case AggregationKind::SharedDnuca: outcome.directory_lookups = static_cast<std::uint32_t>(view.size()); break;
      }
      break;
    }
  }
  if (found_bank == kInvalidBank) {
    switch (config_.aggregation) {
      case AggregationKind::Parallel: outcome.directory_lookups = static_cast<std::uint32_t>(view.size()); break;
      case AggregationKind::AddressHash: outcome.directory_lookups = 1; break;
      case AggregationKind::Cascade: outcome.directory_lookups = static_cast<std::uint32_t>(view.size()); break;
      case AggregationKind::TwoLevelCascade: outcome.directory_lookups = std::min<std::uint32_t>(2, static_cast<std::uint32_t>(view.size())); break;
      case AggregationKind::SharedDnuca: outcome.directory_lookups = static_cast<std::uint32_t>(view.size()); break;
    }
    for (BankId id = 0; id < banks_.size(); ++id) {
      if (std::find(view.begin(), view.end(), id) != view.end()) continue;
      if (banks_[id].probe(block)) {
        found_bank = id;
        break;
      }
    }
  }
  stats_.directory_lookups += outcome.directory_lookups;

  if (found_bank != kInvalidBank && in_view) {
    ++stats_.hits[core];
    outcome.hit = true;
    outcome.bank = found_bank;
    outcome.ready_at = noc_->request(core, found_bank, now);
    banks_[found_bank].access(block, core, is_write);
    if (config_.aggregation == AggregationKind::Cascade ||
        config_.aggregation == AggregationKind::TwoLevelCascade) {
      promote_to_head(block, core, found_bank, now, outcome);
    } else if (config_.aggregation == AggregationKind::SharedDnuca) {
      migrate_one_step(block, core, found_bank, now);
    }
    return outcome;
  }

  if (found_bank != kInvalidBank) {
    // Off-view hit: the line survives from before a repartition. Serve it
    // from where it is, then migrate it into the core's own partition so
    // the transient drains.
    ++stats_.hits[core];
    ++stats_.offview_hits;
    outcome.hit = true;
    outcome.bank = found_bank;
    outcome.ready_at = noc_->request(core, found_bank, now);
    auto line = banks_[found_bank].invalidate(block);
    BACP_ASSERT(line.has_value(), "off-view line vanished");
    const BankId target = pick_fill_bank(block, core);
    noc_->migrate(found_bank, target, now);
    std::vector<BankId> chain;
    if (config_.aggregation == AggregationKind::Cascade) {
      chain.assign(view.begin() + 1, view.end());
    } else if (config_.aggregation == AggregationKind::TwoLevelCascade && view.size() > 1) {
      chain.push_back(view[1]);
    }
    fill_with_demotion(block, core, line->dirty || is_write, target, chain, now,
                       outcome);
    return outcome;
  }

  // Miss: detect at the fill bank, install there (caller adds memory
  // latency on top of ready_at).
  ++stats_.misses[core];
  const BankId fill_bank = pick_fill_bank(block, core);
  outcome.bank = fill_bank;
  outcome.ready_at = noc_->request(core, fill_bank, now);
  std::vector<BankId> chain;
  if (config_.aggregation == AggregationKind::Cascade) {
    chain.assign(view.begin() + 1, view.end());
  } else if (config_.aggregation == AggregationKind::TwoLevelCascade && view.size() > 1) {
    chain.push_back(view[1]);
  }
  fill_with_demotion(block, core, is_write, fill_bank, chain, now, outcome);
  return outcome;
}

bool DnucaCache::writeback_update(BlockAddress block) {
  for (auto& bank : banks_) {
    if (bank.mark_dirty(block)) return true;
  }
  return false;
}

bool DnucaCache::resident(BlockAddress block) const {
  return bank_of(block) != kInvalidBank;
}

BankId DnucaCache::bank_of(BlockAddress block) const {
  for (BankId id = 0; id < banks_.size(); ++id) {
    if (banks_[id].probe(block)) return id;
  }
  return kInvalidBank;
}

void DnucaCache::clear_stats() {
  std::fill(stats_.hits.begin(), stats_.hits.end(), 0);
  std::fill(stats_.misses.begin(), stats_.misses.end(), 0);
  stats_.promotions = 0;
  stats_.demotions = 0;
  stats_.directory_lookups = 0;
  stats_.offview_hits = 0;
  for (auto& bank : banks_) bank.clear_stats();
}

}  // namespace bacp::nuca
