#include "nuca/dnuca_cache.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "cache/partial_tag.hpp"
#include "common/assert.hpp"
#include "snapshot/codec.hpp"

namespace bacp::nuca {

const char* to_string(AggregationKind kind) {
  switch (kind) {
    case AggregationKind::Parallel: return "Parallel";
    case AggregationKind::AddressHash: return "AddressHash";
    case AggregationKind::Cascade: return "Cascade";
    case AggregationKind::TwoLevelCascade: return "TwoLevelCascade";
    case AggregationKind::SharedDnuca: return "SharedDnuca";
  }
  return "?";
}

std::uint64_t DnucaStats::total_hits() const {
  return std::accumulate(hits.begin(), hits.end(), std::uint64_t{0});
}

std::uint64_t DnucaStats::total_misses() const {
  return std::accumulate(misses.begin(), misses.end(), std::uint64_t{0});
}

double DnucaStats::miss_ratio() const {
  const std::uint64_t total = total_hits() + total_misses();
  return total == 0 ? 0.0
                    : static_cast<double>(total_misses()) / static_cast<double>(total);
}

void export_stats(const DnucaStats& stats, obs::Registry& registry) {
  registry.counter("nuca.hits").set(stats.total_hits());
  registry.counter("nuca.misses").set(stats.total_misses());
  registry.counter("nuca.promotions").set(stats.promotions);
  registry.counter("nuca.demotions").set(stats.demotions);
  registry.counter("nuca.directory_lookups").set(stats.directory_lookups);
  registry.counter("nuca.offview_hits").set(stats.offview_hits);
}

DnucaCache::DnucaCache(const DnucaConfig& config, noc::Noc& noc)
    : config_(config), noc_(&noc) {
  config_.geometry.validate();
  BACP_ASSERT(is_pow2(config_.sets_per_bank), "sets_per_bank must be a power of two");
  BACP_ASSERT(config_.geometry.num_banks <= std::numeric_limits<std::uint16_t>::max() &&
                  config_.geometry.ways_per_bank <= std::numeric_limits<std::uint16_t>::max(),
              "residency Location packs bank and way into 16 bits each");
  banks_.reserve(config_.geometry.num_banks);
  for (BankId id = 0; id < config_.geometry.num_banks; ++id) {
    cache::SetAssocCache::Config bank_config;
    bank_config.name = "L2.bank" + std::to_string(id);
    bank_config.num_sets = config_.sets_per_bank;
    bank_config.ways = config_.geometry.ways_per_bank;
    bank_config.num_cores = config_.geometry.num_cores;
    banks_.emplace_back(bank_config);
  }
  // Until a plan is applied, the cache behaves as the No-partition shared
  // pool: every bank is in every core's view.
  views_.assign(config_.geometry.num_cores, {});
  for (CoreId core = 0; core < config_.geometry.num_cores; ++core) {
    for (BankId id = 0; id < config_.geometry.num_banks; ++id) {
      views_[core].push_back(id);
    }
  }
  rebuild_view_positions();
  round_robin_.assign(config_.geometry.num_cores, 0);
  // The residency index can never hold more entries than the structure has
  // lines; sizing it up front keeps the access path allocation-free.
  residency_.reserve(std::size_t{config_.geometry.num_banks} * config_.sets_per_bank *
                     config_.geometry.ways_per_bank);
  stats_.hits.assign(config_.geometry.num_cores, 0);
  stats_.misses.assign(config_.geometry.num_cores, 0);
  batch_miss_scratch_.assign(config_.geometry.num_cores, 0);
  batch_bank_scratch_.assign(kMaxBatch, kInvalidBank);
  batch_way_scratch_.assign(kMaxBatch, 0);
  batch_fill_scratch_.assign(kMaxBatch, kInvalidBank);
  batch_miss_flag_.assign(kMaxBatch, 0);
}

void DnucaCache::rebuild_view_positions() {
  view_pos_.assign(std::size_t{config_.geometry.num_cores} * config_.geometry.num_banks,
                   kNotInView);
  for (CoreId core = 0; core < views_.size(); ++core) {
    const auto& view = views_[core];
    for (std::size_t i = 0; i < view.size(); ++i) {
      view_pos_[std::size_t{core} * config_.geometry.num_banks + view[i]] =
          static_cast<std::uint32_t>(i);
    }
  }
}

void DnucaCache::apply_assignment(const partition::BankAssignment& assignment) {
  BACP_ASSERT(assignment.way_masks.size() == banks_.size(), "mask/bank mismatch");
  BACP_ASSERT(assignment.banks_of_core.size() == views_.size(), "view/core mismatch");
  for (BankId id = 0; id < banks_.size(); ++id) {
    banks_[id].set_way_partition(assignment.way_masks[id]);
  }
  views_ = assignment.banks_of_core;
  std::fill(round_robin_.begin(), round_robin_.end(), 0);
  for (CoreId core = 0; core < views_.size(); ++core) {
    BACP_ASSERT(!views_[core].empty(), "every core needs at least one bank");
  }
  rebuild_view_positions();
}

BankId DnucaCache::peek_fill_bank(BlockAddress block, CoreId core,
                                  std::size_t miss_offset) const {
  // Mutation-free mirror of pick_fill_bank for the batch prefetch phase:
  // the Parallel cursor is projected forward by the lane's position in the
  // batch's predicted miss sequence instead of being advanced.
  const auto& view = views_[core];
  switch (config_.aggregation) {
    case AggregationKind::Parallel:
      return view[(round_robin_[core] + miss_offset) % view.size()];
    case AggregationKind::AddressHash: {
      const BlockAddress tag_bits = block >> log2_floor(config_.sets_per_bank);
      return view[cache::partial_tag(tag_bits, 20) % view.size()];
    }
    case AggregationKind::Cascade:
    case AggregationKind::TwoLevelCascade:
      return view[0];
    case AggregationKind::SharedDnuca: {
      const BlockAddress tag_bits = block >> log2_floor(config_.sets_per_bank);
      return static_cast<BankId>(cache::partial_tag(tag_bits, 20) %
                                 config_.geometry.num_banks);
    }
  }
  return view[0];
}

BankId DnucaCache::pick_fill_bank(BlockAddress block, CoreId core) {
  const auto& view = views_[core];
  switch (config_.aggregation) {
    case AggregationKind::Parallel: {
      const std::size_t index = round_robin_[core]++ % view.size();
      return view[index];
    }
    case AggregationKind::AddressHash: {
      // Bit-select above the set index; non-power-of-two views fall back to
      // a modulo (the "complex modulo" hash the paper attributes to
      // POWER4/5-style three-bank hashing).
      const BlockAddress tag_bits = block >> log2_floor(config_.sets_per_bank);
      const std::uint32_t hashed = cache::partial_tag(tag_bits, 20);
      return view[hashed % view.size()];
    }
    case AggregationKind::Cascade:
    case AggregationKind::TwoLevelCascade:
      return view[0];
    case AggregationKind::SharedDnuca: {
      // Static hash home over the whole structure (identical for every
      // requester); migration, not placement, builds locality.
      const BlockAddress tag_bits = block >> log2_floor(config_.sets_per_bank);
      const std::uint32_t hashed = cache::partial_tag(tag_bits, 20);
      return static_cast<BankId>(hashed % config_.geometry.num_banks);
    }
  }
  return view[0];
}

void DnucaCache::fill_with_demotion(BlockAddress block, CoreId core, bool dirty,
                                    BankId bank_id,
                                    std::span<const BankId> demotion_chain, Cycle now,
                                    L2AccessOutcome& outcome) {
  BlockAddress current_block = block;
  bool current_dirty = dirty;
  BankId current_bank = bank_id;
  std::size_t chain_pos = 0;
  while (true) {
    const auto fill = banks_[current_bank].fill(current_block, core, current_dirty);
    residency_.insert_or_assign(current_block,
                                Location{static_cast<std::uint16_t>(current_bank),
                                         static_cast<std::uint16_t>(fill.way)});
    if (!fill.evicted) return;
    if (chain_pos >= demotion_chain.size()) {
      residency_.erase(fill.evicted->block);
      outcome.evicted.push_back(*fill.evicted);
      return;
    }
    const BankId next = demotion_chain[chain_pos++];
    noc_->migrate(current_bank, next, now);
    ++stats_.demotions;
    current_block = fill.evicted->block;
    current_dirty = fill.evicted->dirty;
    current_bank = next;
  }
}

void DnucaCache::migrate_one_step(BlockAddress block, CoreId core, Location from,
                                  Cycle now) {
  const auto& view = views_[core];
  const std::uint32_t pos = view_position(core, from.bank);
  BACP_DASSERT(pos != kNotInView, "migration source outside the view");
  if (pos == 0) return;  // already in the nearest bank
  const BankId target = view[pos - 1];

  // Gradual promotion: swap the hit line one bank closer to the requester,
  // displacing that bank's LRU victim into the hole left behind.
  const auto line = banks_[from.bank].invalidate_at(block, from.way);
  const auto fill = banks_[target].fill(line.block, core, line.dirty);
  residency_.insert_or_assign(line.block,
                              Location{static_cast<std::uint16_t>(target),
                                       static_cast<std::uint16_t>(fill.way)});
  ++stats_.promotions;
  noc_->migrate(from.bank, target, now);
  if (fill.evicted) {
    const auto back = banks_[from.bank].fill(fill.evicted->block,
                                             fill.evicted->allocator,
                                             fill.evicted->dirty);
    residency_.insert_or_assign(fill.evicted->block,
                                Location{from.bank, static_cast<std::uint16_t>(back.way)});
    ++stats_.demotions;
    noc_->migrate(target, from.bank, now);
  }
}

void DnucaCache::promote_to_head(BlockAddress block, CoreId core, Location from,
                                 Cycle now, L2AccessOutcome& outcome) {
  const auto& view = views_[core];
  const BankId head = view.front();
  if (from.bank == head) return;
  const auto line = banks_[from.bank].invalidate_at(block, from.way);
  ++stats_.promotions;
  noc_->migrate(from.bank, head, now);

  // Demote displaced lines down the chain toward the hole left at `from`.
  // Chains are always contiguous stretches of the view, so they are spans
  // into it rather than freshly built vectors.
  std::span<const BankId> chain;
  if (config_.aggregation == AggregationKind::Cascade) {
    const std::uint32_t from_pos = view_position(core, from.bank);
    BACP_DASSERT(from_pos != kNotInView, "promotion source outside the view");
    chain = std::span<const BankId>(view.data() + 1, from_pos);  // view[1..from]
  } else {
    // TwoLevelCascade: straight swap with the head.
    const std::uint32_t from_pos = view_position(core, from.bank);
    chain = std::span<const BankId>(view.data() + from_pos, 1);
  }
  fill_with_demotion(line.block, core, line.dirty, head, chain, now, outcome);
}

L2AccessOutcome DnucaCache::access(BlockAddress block, CoreId core, bool is_write,
                                   Cycle now) {
  // Locate the line via the residency index. The modelled lookup cost still
  // follows the hardware's search: partition first (nearest bank first),
  // then the rest of the structure for repartition transients.
  return access_located(block, core, is_write, now, residency_.find(block));
}

L2AccessOutcome DnucaCache::access_located(BlockAddress block, CoreId core,
                                           bool is_write, Cycle now,
                                           const Location* located) {
  BACP_DASSERT(core < views_.size(), "core out of range");
  L2AccessOutcome outcome;
  const auto& view = views_[core];

  const Location* residency_entry = located;
  const bool resident_here = residency_entry != nullptr;
  const Location found = resident_here ? *residency_entry : Location{};
  const BankId found_bank = found.bank;
  const std::uint32_t pos =
      resident_here ? view_position(core, found_bank) : kNotInView;
  const bool in_view = pos != kNotInView;
  if (in_view) {
    // Lookup energy accounting per scheme: Parallel probes the whole
    // partition directory at once; AddressHash exactly one bank; Cascade
    // walks the chain; TwoLevel touches at most the head + the group.
    switch (config_.aggregation) {
      case AggregationKind::Parallel: outcome.directory_lookups = static_cast<std::uint32_t>(view.size()); break;
      case AggregationKind::AddressHash: outcome.directory_lookups = 1; break;
      case AggregationKind::Cascade: outcome.directory_lookups = pos + 1; break;
      case AggregationKind::TwoLevelCascade: outcome.directory_lookups = pos == 0 ? 1 : 2; break;
      case AggregationKind::SharedDnuca: outcome.directory_lookups = static_cast<std::uint32_t>(view.size()); break;
    }
  } else {
    switch (config_.aggregation) {
      case AggregationKind::Parallel: outcome.directory_lookups = static_cast<std::uint32_t>(view.size()); break;
      case AggregationKind::AddressHash: outcome.directory_lookups = 1; break;
      case AggregationKind::Cascade: outcome.directory_lookups = static_cast<std::uint32_t>(view.size()); break;
      case AggregationKind::TwoLevelCascade: outcome.directory_lookups = std::min<std::uint32_t>(2, static_cast<std::uint32_t>(view.size())); break;
      case AggregationKind::SharedDnuca: outcome.directory_lookups = static_cast<std::uint32_t>(view.size()); break;
    }
  }
  stats_.directory_lookups += outcome.directory_lookups;

  if (resident_here && in_view) {
    ++stats_.hits[core];
    outcome.hit = true;
    outcome.bank = found_bank;
    outcome.ready_at = noc_->request(core, found_bank, now);
    banks_[found_bank].touch_hit(block, found.way, core, is_write);
    if (config_.aggregation == AggregationKind::Cascade ||
        config_.aggregation == AggregationKind::TwoLevelCascade) {
      promote_to_head(block, core, found, now, outcome);
    } else if (config_.aggregation == AggregationKind::SharedDnuca) {
      migrate_one_step(block, core, found, now);
    }
    return outcome;
  }

  if (resident_here) {
    // Off-view hit: the line survives from before a repartition. Serve it
    // from where it is, then migrate it into the core's own partition so
    // the transient drains.
    ++stats_.hits[core];
    ++stats_.offview_hits;
    outcome.hit = true;
    outcome.bank = found_bank;
    outcome.ready_at = noc_->request(core, found_bank, now);
    const auto line = banks_[found_bank].invalidate_at(block, found.way);
    const BankId target = pick_fill_bank(block, core);
    noc_->migrate(found_bank, target, now);
    std::span<const BankId> chain;
    if (config_.aggregation == AggregationKind::Cascade) {
      chain = std::span<const BankId>(view.data() + 1, view.size() - 1);
    } else if (config_.aggregation == AggregationKind::TwoLevelCascade && view.size() > 1) {
      chain = std::span<const BankId>(view.data() + 1, 1);
    }
    fill_with_demotion(block, core, line.dirty || is_write, target, chain, now,
                       outcome);
    return outcome;
  }

  // Miss: detect at the fill bank, install there (caller adds memory
  // latency on top of ready_at).
  ++stats_.misses[core];
  const BankId fill_bank = pick_fill_bank(block, core);
  outcome.bank = fill_bank;
  outcome.ready_at = noc_->request(core, fill_bank, now);
  std::span<const BankId> chain;
  if (config_.aggregation == AggregationKind::Cascade) {
    chain = std::span<const BankId>(view.data() + 1, view.size() - 1);
  } else if (config_.aggregation == AggregationKind::TwoLevelCascade && view.size() > 1) {
    chain = std::span<const BankId>(view.data() + 1, 1);
  }
  fill_with_demotion(block, core, is_write, fill_bank, chain, now, outcome);
  return outcome;
}

void DnucaCache::access_batch(const BlockAddress* blocks, const CoreId* cores,
                              const bool* writes, const Cycle* times,
                              std::uint32_t count, L2AccessOutcome* outcomes) {
  BACP_DASSERT(count <= kMaxBatch, "batch larger than kMaxBatch");
  // Short software pipeline: a probe/classify stage leads the
  // authoritative replay by a few lanes, so every cache line a lane will
  // dereference is in flight before the replay needs it, while the
  // bookkeeping stays a handful of scratch writes per lane.
  //   probe (lane i): prefetch the residency probe line kProbeAhead lanes
  //     out; find lane i's block and classify it — in-view hit, off-view
  //     hit, or miss. Hits prefetch the serving bank's set lines; off-view
  //     hits and misses will fill, so they project the Parallel round-robin
  //     cursor forward by this batch's cursor consumers so far (off-view
  //     hits consume it too, not just misses) and prefetch the predicted
  //     fill set.
  //   victim (one lane behind): filling lanes peek the predicted set's
  //     would-be victim — its lines are warm by now — and prefetch the
  //     victim's residency probe line, which the eviction path erases.
  //   replay (kReplayAhead behind): the scalar path, bit-identical to
  //     `count` scalar calls. A hit verdict is re-certified with one tag
  //     compare (a block resides in at most one bank, so a matching valid
  //     tag *is* the residency) and then skips the duplicate index probe;
  //     a failed certificate — the block was displaced by an earlier lane
  //     in this batch — and every miss verdict (an earlier lane may have
  //     *filled* the block, so "absent" cannot be certified) re-probe in
  //     full. Any misprediction costs only a wasted prefetch.
  constexpr std::uint32_t kProbeAhead = 8;
  constexpr std::uint32_t kReplayAhead = 3;
  constexpr std::uint8_t kInViewHit = 0;
  constexpr std::uint8_t kOffViewHit = 1;
  constexpr std::uint8_t kMiss = 2;
  std::fill(batch_miss_scratch_.begin(), batch_miss_scratch_.end(), 0);
  const std::uint32_t lead = kProbeAhead < count ? kProbeAhead : count;
  for (std::uint32_t i = 0; i < lead; ++i) residency_.prefetch(blocks[i]);
  for (std::uint32_t i = 0; i < count + kReplayAhead; ++i) {
    if (i < count) {
      if (i + kProbeAhead < count) residency_.prefetch(blocks[i + kProbeAhead]);
      const CoreId core = cores[i];
      if (const Location* found = residency_.find(blocks[i])) {
        batch_bank_scratch_[i] = found->bank;
        batch_way_scratch_[i] = found->way;
        banks_[found->bank].prefetch_set(blocks[i]);
        if (view_position(core, found->bank) != kNotInView) {
          batch_miss_flag_[i] = kInViewHit;
        } else {
          batch_miss_flag_[i] = kOffViewHit;
          const BankId target =
              peek_fill_bank(blocks[i], core, batch_miss_scratch_[core]++);
          batch_fill_scratch_[i] = target;
          banks_[target].prefetch_set(blocks[i]);
        }
      } else {
        batch_miss_flag_[i] = kMiss;
        const BankId target =
            peek_fill_bank(blocks[i], core, batch_miss_scratch_[core]++);
        batch_fill_scratch_[i] = target;
        banks_[target].prefetch_set(blocks[i]);
      }
    }
    if (i >= 1 && i - 1 < count) {
      const std::uint32_t j = i - 1;
      if (batch_miss_flag_[j] != kInViewHit) {
        if (const auto victim =
                banks_[batch_fill_scratch_[j]].peek_victim(blocks[j], cores[j])) {
          residency_.prefetch(*victim);
        }
      }
    }
    if (i >= kReplayAhead) {
      const std::uint32_t r = i - kReplayAhead;
      if (batch_miss_flag_[r] != kMiss) {
        const Location hint{static_cast<std::uint16_t>(batch_bank_scratch_[r]),
                            batch_way_scratch_[r]};
        if (banks_[hint.bank].holds_at(blocks[r], hint.way)) {
          outcomes[r] =
              access_located(blocks[r], cores[r], writes[r], times[r], &hint);
          continue;
        }
      }
      outcomes[r] = access(blocks[r], cores[r], writes[r], times[r]);
    }
  }
}

bool DnucaCache::writeback_update(BlockAddress block) {
  const Location* location = residency_.find(block);
  if (location == nullptr) return false;
  banks_[location->bank].mark_dirty_at(block, location->way);
  return true;
}

bool DnucaCache::resident(BlockAddress block) const {
  return residency_.find(block) != nullptr;
}

BankId DnucaCache::bank_of(BlockAddress block) const {
  const Location* location = residency_.find(block);
  return location != nullptr ? location->bank : kInvalidBank;
}

void DnucaCache::reset_in_place() {
  for (auto& bank : banks_) bank.reset_in_place();
  // Views fall back to the construction default (every bank in every core's
  // view); the per-core vectors keep their capacity.
  for (CoreId core = 0; core < config_.geometry.num_cores; ++core) {
    views_[core].clear();
    for (BankId id = 0; id < config_.geometry.num_banks; ++id) {
      views_[core].push_back(id);
    }
  }
  rebuild_view_positions();
  std::fill(round_robin_.begin(), round_robin_.end(), 0);
  // FlatHash64::clear() keeps the slab; stale slot bytes are invisible to
  // snapshots (entries serialize in key order).
  residency_.clear();
  clear_stats();
  std::fill(batch_miss_scratch_.begin(), batch_miss_scratch_.end(), 0);
  std::fill(batch_bank_scratch_.begin(), batch_bank_scratch_.end(), kInvalidBank);
  std::fill(batch_way_scratch_.begin(), batch_way_scratch_.end(), 0);
  std::fill(batch_fill_scratch_.begin(), batch_fill_scratch_.end(), kInvalidBank);
  std::fill(batch_miss_flag_.begin(), batch_miss_flag_.end(), 0);
}

void DnucaCache::clear_stats() {
  std::fill(stats_.hits.begin(), stats_.hits.end(), 0);
  std::fill(stats_.misses.begin(), stats_.misses.end(), 0);
  stats_.promotions = 0;
  stats_.demotions = 0;
  stats_.directory_lookups = 0;
  stats_.offview_hits = 0;
  for (auto& bank : banks_) bank.clear_stats();
}

void DnucaCache::save_state(snapshot::Writer& writer) const {
  // Shape fields only — aggregation is a behavior knob, and shared-warmup
  // deliberately adopts warm contents across aggregation variants.
  writer.u32(config_.geometry.num_banks);
  writer.u32(config_.geometry.num_cores);
  for (const auto& bank : banks_) bank.save_state(writer);
  for (const auto& view : views_) writer.scalars(std::span<const BankId>(view));
  writer.scalars(std::span<const std::size_t>(round_robin_));
  // FlatHash64 iteration order depends on insertion history, not contents;
  // sorting by key makes identical residency state identical bytes.
  std::vector<std::pair<std::uint64_t, Location>> entries;
  entries.reserve(residency_.size());
  residency_.for_each([&entries](std::uint64_t key, const Location& location) {
    entries.emplace_back(key, location);
  });
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  writer.u64(entries.size());
  for (const auto& [key, location] : entries) {
    writer.u64(key);
    writer.u16(location.bank);
    writer.u16(location.way);
  }
  writer.scalars(std::span<const std::uint64_t>(stats_.hits));
  writer.scalars(std::span<const std::uint64_t>(stats_.misses));
  writer.u64(stats_.promotions);
  writer.u64(stats_.demotions);
  writer.u64(stats_.directory_lookups);
  writer.u64(stats_.offview_hits);
}

void DnucaCache::restore_state(snapshot::Reader& reader) {
  BACP_ASSERT(reader.u32() == config_.geometry.num_banks, "snapshot num_banks mismatch");
  BACP_ASSERT(reader.u32() == config_.geometry.num_cores, "snapshot num_cores mismatch");
  for (auto& bank : banks_) bank.restore_state(reader);
  for (auto& view : views_) view = reader.scalars<BankId>();
  reader.scalars_into(std::span<std::size_t>(round_robin_));
  // clear() keeps capacity (the ctor reserved the maximum possible line
  // count), so reinserting never grows the table.
  residency_.clear();
  const std::uint64_t entry_count = reader.u64();
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    const std::uint64_t key = reader.u64();
    Location location;
    location.bank = reader.u16();
    location.way = reader.u16();
    residency_.insert_or_assign(key, location);
  }
  reader.scalars_into(std::span<std::uint64_t>(stats_.hits));
  reader.scalars_into(std::span<std::uint64_t>(stats_.misses));
  stats_.promotions = reader.u64();
  stats_.demotions = reader.u64();
  stats_.directory_lookups = reader.u64();
  stats_.offview_hits = reader.u64();
  rebuild_view_positions();
}

}  // namespace bacp::nuca
