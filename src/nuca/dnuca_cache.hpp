#pragma once

#include <span>
#include <cstdint>
#include <string>
#include <vector>

#include "cache/set_assoc_cache.hpp"
#include "common/flat_hash.hpp"
#include "common/inline_vec.hpp"
#include "common/types.hpp"
#include "noc/noc.hpp"
#include "obs/metrics.hpp"
#include "partition/partition_types.hpp"

namespace bacp::audit {
class NucaAuditor;
}  // namespace bacp::audit

namespace bacp::snapshot {
class Writer;
class Reader;
}  // namespace bacp::snapshot

namespace bacp::nuca {

/// How a core's multi-bank partition behaves as one logical cache — the
/// three aggregation schemes of paper Fig. 4, plus the paper's mitigation
/// (Fig. 4c: cascading limited to two levels over a Parallel group).
enum class AggregationKind {
  /// Fig. 4 "Parallel": a line may live in any bank of the partition;
  /// allocation is round-robin; lookups probe the partition-wide partial-tag
  /// directory (wider lookups, low migration). The paper's choice.
  Parallel,
  /// Fig. 4 "Address Hash": the line's address selects the bank. Lowest
  /// lookup cost; requires symmetric bank capacities.
  AddressHash,
  /// Fig. 4a/b "Cascade": banks chained head-to-tail as one deep LRU;
  /// fills enter at the head, evictions demote down the chain, hits promote
  /// back to the head. Most flexible, prohibitive migration rate.
  Cascade,
  /// Fig. 4c: cascading limited to two levels — the Local bank in front of
  /// a Parallel group of the remaining banks.
  TwoLevelCascade,
  /// The unpartitioned CMP-DNUCA baseline (Beckmann & Wood's shared NUCA
  /// with gradual migration, which the paper's Section II baseline builds
  /// on): lines are placed by address hash over all banks and migrate one
  /// bank closer to the requesting core on each hit (swapping with that
  /// bank's LRU victim). Each core drags its hot data toward its own Local
  /// bank, so under multiprogrammed sharing the cores' working sets
  /// continuously displace each other — the destructive interference the
  /// paper's No-partition baseline exhibits.
  SharedDnuca,
};

const char* to_string(AggregationKind kind);

struct DnucaConfig {
  partition::CmpGeometry geometry;
  std::uint32_t sets_per_bank = 2048;  ///< 1 MB bank: 2048 sets x 8 ways x 64 B
  AggregationKind aggregation = AggregationKind::Parallel;
};

/// Outcome of one L2 access, including everything the system simulator
/// needs to account timing and inclusion. Plain value with inline storage:
/// the access path allocates nothing.
struct L2AccessOutcome {
  bool hit = false;
  BankId bank = kInvalidBank;  ///< serving bank (hit) or fill bank (miss)
  Cycle ready_at = 0;          ///< bank response time (miss: when the miss is known)
  std::uint32_t directory_lookups = 0;
  /// Lines that left the L2 this access. A single access displaces at most
  /// one line all the way out of the structure (each demotion chain
  /// terminates at the first non-demoted eviction); capacity 2 leaves
  /// headroom for future schemes.
  common::InlineVec<cache::Line, 2> evicted;
};

struct DnucaStats {
  std::vector<std::uint64_t> hits;    // per core
  std::vector<std::uint64_t> misses;  // per core
  std::uint64_t promotions = 0;       // cascade hit-promotions
  std::uint64_t demotions = 0;        // cascade demotion moves
  std::uint64_t directory_lookups = 0;
  std::uint64_t offview_hits = 0;     // hits outside the core's partition
                                      // (repartition transients)
  std::uint64_t total_hits() const;
  std::uint64_t total_misses() const;
  double miss_ratio() const;
};

/// Exports under "nuca.": live hit/miss totals, promotions, demotions,
/// directory_lookups and offview_hits counters. Live counters cover every
/// access in the window (including post-quota overrun) — the per-quota
/// accounting lives in sim::SystemResults.
void export_stats(const DnucaStats& stats, obs::Registry& registry);

/// The 16-bank DNUCA L2 (paper Section II): per-bank way-partitioned
/// 8-way caches plus the aggregation policy that welds each core's banks
/// into one partition. Timing is delegated to the NoC model.
///
/// Every block resides in at most one bank (all fill paths install only
/// non-resident blocks), so lookups go through a block -> bank residency
/// index instead of probing bank after bank; the modelled directory-lookup
/// *accounting* is unchanged — it depends only on the aggregation scheme
/// and the found bank's position in the requester's view, not on how the
/// software locates the line.
class DnucaCache {
 public:
  DnucaCache(const DnucaConfig& config, noc::Noc& noc);

  /// Installs a partitioning plan: per-bank way masks plus the bank lists
  /// that define each core's partition view (nearest bank first). Resident
  /// lines are untouched.
  void apply_assignment(const partition::BankAssignment& assignment);

  /// Demand access: looks up the whole structure, fills on miss (the caller
  /// layers DRAM latency on top for misses) and returns evicted lines for
  /// inclusion handling.
  L2AccessOutcome access(BlockAddress block, CoreId core, bool is_write, Cycle now);

  /// Batched access: column inputs (lane i = one access), outcomes written
  /// to outcomes[i]. The front half runs data-parallel — residency-table
  /// probe lines prefetch across the whole batch, candidate serving/fill
  /// sets prefetch next (with Parallel round-robin fill banks predicted per
  /// lane) — then every access replays through scalar access() in order, so
  /// outcomes and all simulated state are bit-identical to count scalar
  /// calls. Mispredicted candidates (intra-batch conflicts, repartition
  /// races) cost only a wasted prefetch. count <= kMaxBatch.
  void access_batch(const BlockAddress* blocks, const CoreId* cores,
                    const bool* writes, const Cycle* times, std::uint32_t count,
                    L2AccessOutcome* outcomes);

  /// Upper bound on access_batch's count (matches trace::AccessBatch).
  static constexpr std::uint32_t kMaxBatch = 256;

  /// Dirty-data update from an L1 writeback. Returns false if the block is
  /// no longer resident (caller forwards to memory).
  bool writeback_update(BlockAddress block);

  /// Read-prefetch of the residency probe line for `block` — the batched
  /// pipeline's lookahead hook (the index is the large, cold structure on
  /// the access path).
  void prefetch(BlockAddress block) const { residency_.prefetch(block); }

  /// Whole-structure presence probe (tests / invariants).
  bool resident(BlockAddress block) const;
  BankId bank_of(BlockAddress block) const;

  const DnucaStats& stats() const { return stats_; }
  void clear_stats();

  /// Rewinds the whole structure to its just-constructed state — every bank
  /// reset, every core's view back to the all-banks default, fill cursors
  /// and residency index empty, zero statistics — without freeing or
  /// reallocating the flat arrays or the residency table's slab. A snapshot
  /// taken after reset_in_place() is byte-identical to one taken after
  /// construction.
  void reset_in_place();

  const DnucaConfig& config() const { return config_; }
  const cache::SetAssocCache& bank(BankId id) const { return banks_.at(id); }
  const std::vector<BankId>& view_of(CoreId core) const { return views_.at(core); }

  /// Serializes all banks, the partition views, the fill cursors, the
  /// residency index (entries in key order, so identical state is identical
  /// bytes) and statistics. Restore asserts the geometry echo matches.
  void save_state(snapshot::Writer& writer) const;
  void restore_state(snapshot::Reader& reader);

 private:
  /// The structural auditor cross-checks the residency index against bank
  /// contents; the test peer desyncs them for the auditor's kill-tests.
  friend class audit::NucaAuditor;
  friend struct NucaTestPeer;

  /// Sentinel for "bank not in this core's view".
  static constexpr std::uint32_t kNotInView = static_cast<std::uint32_t>(-1);

  /// Where a resident block lives. The way is exact, not a hint: every
  /// path that installs or removes a line updates the index, and a line's
  /// way never changes while it stays resident — so hits, writebacks and
  /// migrations skip the bank's tag scan entirely. Half-width fields keep
  /// a residency hash slot (key + Location) at 16 bytes, four per cache
  /// line — the table is tens of megabytes, so probe misses dominate the
  /// lookup cost (the ctor asserts the geometry fits).
  struct Location {
    std::uint16_t bank = 0;
    std::uint16_t way = 0;
  };

  /// access() with the residency lookup already done: `located` is the
  /// line's exact Location, or nullptr for "not resident". Everything
  /// downstream of the lookup (accounting, NoC timing, fills, stats) is
  /// the single authoritative implementation both the scalar path and the
  /// batched replay share — the replay passes a *certified* stage-B verdict
  /// (see SetAssocCache::holds_at) so hit lanes skip the duplicate probe.
  L2AccessOutcome access_located(BlockAddress block, CoreId core, bool is_write,
                                 Cycle now, const Location* located);

  /// Fills `block` into `bank_id` for `core`, cascading the displaced
  /// victim down `chain` starting at `chain_next` (empty chain: victim
  /// leaves the cache). Appends fully-evicted lines to `outcome` and keeps
  /// the residency index in sync.
  void fill_with_demotion(BlockAddress block, CoreId core, bool dirty, BankId bank_id,
                          std::span<const BankId> demotion_chain, Cycle now,
                          L2AccessOutcome& outcome);

  BankId pick_fill_bank(BlockAddress block, CoreId core);
  BankId peek_fill_bank(BlockAddress block, CoreId core,
                        std::size_t miss_offset) const;
  void promote_to_head(BlockAddress block, CoreId core, Location from, Cycle now,
                       L2AccessOutcome& outcome);
  void migrate_one_step(BlockAddress block, CoreId core, Location from, Cycle now);
  void rebuild_view_positions();

  std::uint32_t view_position(CoreId core, BankId bank) const {
    return view_pos_[std::size_t{core} * config_.geometry.num_banks + bank];
  }

  DnucaConfig config_;
  // NOLINTNEXTLINE(bacp-snapshot-fields, bacp-reset-fields): non-owning wiring; the Noc serializes (and resets) itself
  noc::Noc* noc_;
  std::vector<cache::SetAssocCache> banks_;
  std::vector<std::vector<BankId>> views_;      // per core: banks with owned ways
  // NOLINTNEXTLINE(bacp-snapshot-fields): derived index over views_; rebuilt by rebuild_view_positions() on restore
  std::vector<std::uint32_t> view_pos_;         // core x bank -> index in view
  std::vector<std::size_t> round_robin_;        // per core: Parallel fill cursor
  common::FlatHash64<Location> residency_;      // block -> unique holding bank+way
  DnucaStats stats_;
  // access_batch scratch (sized at construction; the batch path allocates
  // nothing): per-core count of round-robin cursor consumers so far within
  // the batch — misses *and* off-view hits both fill, so both advance the
  // Parallel cursor — plus the per-lane probe-stage verdicts and bank/way
  // hints the later pipeline stages consume.
  // NOLINTNEXTLINE(bacp-snapshot-fields): batch scratch is dead outside one access_batch() call; never simulated state
  std::vector<std::uint32_t> batch_miss_scratch_;
  // NOLINTNEXTLINE(bacp-snapshot-fields): batch scratch, as above
  std::vector<BankId> batch_bank_scratch_;      // per lane: serving bank (hits)
  // NOLINTNEXTLINE(bacp-snapshot-fields): batch scratch, as above
  std::vector<std::uint16_t> batch_way_scratch_;  // per lane: hit way hint
  // NOLINTNEXTLINE(bacp-snapshot-fields): batch scratch, as above
  std::vector<BankId> batch_fill_scratch_;      // per lane: predicted fill bank
  // NOLINTNEXTLINE(bacp-snapshot-fields): batch scratch, as above
  std::vector<std::uint8_t> batch_miss_flag_;   // per lane: probe-stage verdict
};

}  // namespace bacp::nuca
