#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "harness/snapshot_cache.hpp"
#include "obs/json.hpp"
#include "sched/classifier.hpp"
#include "sched/events.hpp"
#include "sim/system.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/mix.hpp"

namespace bacp::sched {

/// Sentinel tenant id for a free core slot (tenant ids are caller-chosen;
/// kNoTenant is reserved).
inline constexpr std::uint64_t kNoTenant = ~std::uint64_t{0};

/// Partitioning-as-a-service configuration. `system.policy` is forced to
/// PolicyKind::External — the service owns the planning; the simulator only
/// ever installs plans handed to it.
struct ServiceConfig {
  sim::SystemConfig system;
  ClassifierConfig classifier;

  /// Substrate warm-up before the first epoch (0 = start cold). With a
  /// harness::SnapshotCache the warm state is computed once per fingerprint
  /// and forked bit-identically into every service lane.
  std::uint64_t warmup_instructions = 0;

  /// Live epochs before a tenant's own MSA profile replaces its analytic
  /// admission prior (the "no re-profiling stall": newcomers are planned
  /// from their workload model until their histogram has content).
  std::uint64_t profile_warm_epochs = 2;

  /// Class capacity budgets, in ways. Light and Streaming tenants are
  /// clustered onto these fixed per-class budgets (their shaped curves
  /// plateau here, so the allocator's marginal utility beyond the budget is
  /// zero); CacheSensitive tenants compete with their real curves.
  WayCount light_ways = 2;
  WayCount streaming_ways = 8;

  /// Derives dependent system fields and pins the policy; call before
  /// constructing a Service if fields were edited.
  void finalize();
};

/// Fingerprint over every ServiceConfig field (via sim::config_digest for
/// the nested system config) plus the substrate mix: two services resume
/// from each other's snapshots iff their digests match. The sizeof
/// static_asserts in service.cpp force this to be extended alongside the
/// struct.
std::uint64_t service_digest(const ServiceConfig& config, const trace::WorkloadMix& mix);

/// The tenant-churn admission spec.
struct Tenant {
  std::uint64_t id = 0;
  std::string workload;  ///< spec2000 benchmark name
};

/// Online bank-aware partitioning service over one sim::System.
///
/// Session surface instead of the batch warm_up()/run() API: tenants are
/// admitted into core slots and evicted as they depart; every admission,
/// departure and classifier-detected class change triggers a bank-aware
/// repartition over class-shaped miss-ratio curves — no tenant is ever
/// re-profiled from scratch, newcomers plan from analytic priors until
/// their live MSA profile warms. The service keeps the simulator at a
/// statistics-clean point every epoch (it harvests per-epoch deltas into
/// per-tenant series keyed by *tenant id*, with the core slot recorded as a
/// label), so a mid-churn checkpoint is always legal and resumes
/// bit-identically.
///
/// Thread model: thread-COMPATIBLE — one Service owns one sim::System and
/// is driven from a single thread (bench_sched_churn runs one Service per
/// lane, each lane on its own worker). It deliberately carries no lock and
/// no BACP_GUARDED_BY annotations; the shared structure it may touch
/// concurrently with other lanes, harness::SnapshotCache, carries the
/// mutex capability annotations instead (common/mutex.hpp, checked by
/// clang -Wthread-safety).
class Service {
 public:
  /// `substrate_mix` is the System's construction binding (one workload per
  /// core); it seeds the warm-up, after which every slot is deactivated —
  /// tenants only exist through admit(). `warm_cache` (optional) forks the
  /// substrate warm state instead of re-warming per service.
  Service(const ServiceConfig& config, const trace::WorkloadMix& substrate_mix,
          harness::SnapshotCache* warm_cache = nullptr);

  /// Admits a tenant into the lowest free slot: rebinds the slot's core
  /// (coherent L1 flush, fresh generator/timer streams), classifies the
  /// tenant from its analytic prior, and repartitions. Aborts if the id is
  /// live, reserved, or no slot is free — an event stream that over-admits
  /// is malformed, not schedulable.
  void admit(const Tenant& tenant);

  /// Evicts a live tenant: deactivates its slot and repartitions the
  /// survivors. The tenant's series are retained for reporting. Aborts on
  /// unknown ids.
  void evict(std::uint64_t tenant_id);

  /// Advances the service by `epochs` scheduler epochs. Each epoch: the
  /// simulator steps one epoch boundary, per-tenant deltas are harvested
  /// into the tenant series, warm tenants are reclassified (a class change
  /// triggers repartitioning), and the measurement window is re-armed so
  /// the system stays statistics-clean at every epoch edge.
  void step(std::uint64_t epochs = 1);

  /// Plays a churn event stream from the current epoch: events apply at the
  /// start of their epoch, in stream order. Aborts on epoch regressions.
  void play(std::span<const Event> events);

  /// Runs through `final_epoch`, then evicts every live tenant.
  void drain(std::uint64_t final_epoch);

  // --- Introspection ----------------------------------------------------

  std::uint64_t epoch() const { return epoch_; }
  std::size_t num_live() const { return tenants_.size(); }
  std::size_t capacity() const { return slot_tenant_.size(); }
  bool is_live(std::uint64_t tenant_id) const { return tenants_.count(tenant_id) != 0; }
  std::uint64_t admissions() const { return admissions_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t replans() const { return replans_; }
  std::uint64_t class_changes() const { return class_changes_; }
  const sim::System& system() const { return system_; }
  const ServiceConfig& config() const { return config_; }

  /// Access-pipeline batch size passthrough (see sim::System::set_batch_size).
  /// Pure speed dial — service history is identical for any value, so it is
  /// deliberately outside ServiceConfig and service_digest().
  void set_batch_size(std::uint32_t value) { system_.set_batch_size(value); }

  struct TenantStatus {
    std::uint64_t id = 0;
    CoreId slot = 0;
    std::size_t workload = 0;  ///< index into trace::spec2000_suite()
    TenantClass cls = TenantClass::Light;
    std::uint64_t admitted_epoch = 0;
    std::uint64_t live_epochs = 0;
    WayCount ways = 0;  ///< allocation installed for the slot at last replan
  };
  /// Live tenants in id order.
  std::vector<TenantStatus> live_tenants() const;

  /// Per-tenant epoch series, keyed by tenant id (stable across slot moves
  /// and retained after eviction): columns epoch / cpi / miss_ratio / ways
  /// / slot. The artifact every churn bench emits; byte-identical for
  /// identical (config, events, seed) regardless of thread count.
  obs::Json tenant_report() const;

  // --- Checkpoint/resume ------------------------------------------------

  /// Serializes the full mid-churn state — the wrapped system's sections
  /// plus the scheduler's tenant table, clocks and series — stamped with
  /// service_digest(). Legal at any epoch edge or admission/eviction
  /// boundary (the service keeps the system statistics-clean there).
  snapshot::SystemSnapshot save_state() const;

  /// Exact inverse of save_state() on a service built with the same
  /// (config, substrate_mix): replays every live tenant's slot binding,
  /// restores the system bit-exactly, and resumes — subsequent epochs are
  /// byte-identical to the saving service's future.
  void restore_state(const snapshot::SystemSnapshot& snapshot);

 private:
  friend class ServiceAuditor;
  friend struct ServiceTestPeer;  ///< mutation hooks for the audit kill-tests

  struct TenantState {
    std::uint64_t id = 0;
    CoreId slot = 0;
    std::size_t workload = 0;
    TenantClass cls = TenantClass::Light;
    std::uint64_t admitted_epoch = 0;
    std::uint64_t live_epochs = 0;
    std::uint64_t stream_salt = 0;
    WayCount ways = 0;
    /// Decayed instruction window normalizing the live profile to
    /// per-Minstr counts (same half-life as the histogram decay, so curve
    /// and window cover the same history).
    double decayed_instructions = 0.0;
  };

  struct TenantSeries {
    std::vector<double> epoch;
    std::vector<double> cpi;
    std::vector<double> miss_ratio;
    std::vector<double> ways;
    std::vector<double> slot;
  };

  /// Intensity-weighted (per-Minstr) miss-ratio curve for planning: the
  /// tenant's live profile once warm, its analytic model prior before.
  msa::MissRatioCurve planning_curve(const TenantState& tenant) const;
  /// The class-shaped curve fed to the allocator (plateau at the class
  /// budget for Light/Streaming; the real curve for CacheSensitive).
  msa::MissRatioCurve shaped_curve(const TenantState& tenant) const;
  void replan();
  void harvest_epoch();
  void audit_checkpoint(const char* where) const;

  // NOLINTNEXTLINE(bacp-audit-coverage): immutable after construction; validated by the admission path, never mutated per epoch
  ServiceConfig config_;
  // NOLINTNEXTLINE(bacp-audit-coverage): immutable substrate workload description resolved at construction
  trace::WorkloadMix substrate_mix_;
  sim::System system_;
  std::map<std::uint64_t, TenantState> tenants_;  ///< live only, id-ordered
  // NOLINTNEXTLINE(bacp-snapshot-fields): derived from the tenant table; rebuilt (and double-booking asserted) on restore
  std::vector<std::uint64_t> slot_tenant_;        ///< per core: id or kNoTenant
  std::map<std::uint64_t, TenantSeries> series_;  ///< retained after eviction
  std::uint64_t epoch_ = 0;
  std::uint64_t next_salt_ = 1;
  std::uint64_t admissions_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t replans_ = 0;
  std::uint64_t class_changes_ = 0;
};

}  // namespace bacp::sched
