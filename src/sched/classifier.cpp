#include "sched/classifier.hpp"

#include <algorithm>

namespace bacp::sched {

const char* to_string(TenantClass cls) {
  switch (cls) {
    case TenantClass::Light: return "light";
    case TenantClass::Streaming: return "streaming";
    case TenantClass::CacheSensitive: return "cache-sensitive";
  }
  return "?";
}

TenantClass classify(const msa::MissRatioCurve& curve, WayCount max_ways,
                     const ClassifierConfig& config) {
  if (curve.empty() || curve.total() < config.light_max_intensity) {
    return TenantClass::Light;
  }
  const WayCount deepest = std::min(max_ways, curve.max_ways());
  const double floor_misses = curve.miss_count(1);
  if (floor_misses <= 0.0) return TenantClass::Light;  // everything hits at 1 way
  const double flatness = curve.miss_count(deepest) / floor_misses;
  return flatness >= config.streaming_min_flatness ? TenantClass::Streaming
                                                   : TenantClass::CacheSensitive;
}

}  // namespace bacp::sched
