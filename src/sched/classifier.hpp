#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "msa/miss_curve.hpp"

namespace bacp::sched {

/// Capacity-behaviour buckets the scheduler plans with. Derived from the
/// same MSA miss-ratio curves the Bank-aware allocator consumes, so the
/// classification costs nothing beyond the profiling the paper already
/// mandates:
///   - Light: too few L2 accesses to matter — any allocation serves it;
///   - Streaming: accesses plenty, but the curve is flat — extra capacity
///     buys (almost) no misses back, so capacity spent here is wasted;
///   - CacheSensitive: misses fall materially with ways — the tenants the
///     marginal-utility machinery exists for.
enum class TenantClass : std::uint8_t {
  Light,
  Streaming,
  CacheSensitive,
};
const char* to_string(TenantClass cls);

struct ClassifierConfig {
  /// A tenant whose curve totals fewer accesses-per-Minstr than this is
  /// Light regardless of curve shape (default ~1 APKI).
  double light_max_intensity = 1000.0;
  /// A tenant keeping more than this fraction of its misses at the maximum
  /// assignable allocation (vs. one way) is Streaming: the curve is flat,
  /// capacity cannot help it.
  double streaming_min_flatness = 0.85;
};

/// Buckets one tenant from its intensity-weighted miss-ratio curve (counts
/// scaled to per-Minstr, as the epoch controller normalizes them).
/// `max_ways` is the deepest allocation the classifier considers — the
/// geometry's max assignable capacity.
TenantClass classify(const msa::MissRatioCurve& curve, WayCount max_ways,
                     const ClassifierConfig& config);

}  // namespace bacp::sched
