#include "sched/events.hpp"

#include <cmath>
#include <cstddef>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/assert.hpp"
#include "common/parse.hpp"
#include "trace/spec2000.hpp"

namespace bacp::sched {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::Admit: return "admit";
    case EventKind::Evict: return "evict";
  }
  return "?";
}

namespace {

/// Whitespace tokenizer for one event line (the grammar has no quoting).
std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
    const std::size_t start = pos;
    while (pos < line.size() && line[pos] != ' ' && line[pos] != '\t') ++pos;
    if (pos > start) fields.push_back(line.substr(start, pos - start));
  }
  return fields;
}

/// Non-aborting workload lookup (trace::spec2000_index aborts on unknown
/// names; a parse error must report, not kill the process).
bool known_workload(std::string_view name) {
  for (const auto& model : trace::spec2000_suite()) {
    if (model.name == name) return true;
  }
  return false;
}

std::string positioned(std::size_t line_number, const std::string& message) {
  return "line " + std::to_string(line_number) + ": " + message;
}

}  // namespace

EventParseResult parse_events(std::string_view text) {
  EventParseResult result;
  std::size_t line_number = 0;
  std::uint64_t last_epoch = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_number;

    if (const std::size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    const auto fields = split_fields(line);
    if (fields.empty()) continue;

    if (fields.size() < 3) {
      result.error = positioned(line_number, "expected '<epoch> <kind> <tenant-id> ...'");
      return result;
    }
    const auto epoch = common::parse_u64(fields[0]);
    if (!epoch) {
      result.error = positioned(
          line_number, "bad epoch '" + std::string(fields[0]) + "': " + epoch.error);
      return result;
    }
    if (*epoch < last_epoch) {
      result.error = positioned(
          line_number, "epoch " + std::to_string(*epoch) +
                           " regresses (previous event at epoch " +
                           std::to_string(last_epoch) + ")");
      return result;
    }
    const auto tenant = common::parse_u64(fields[2]);
    if (!tenant) {
      result.error = positioned(
          line_number, "bad tenant id '" + std::string(fields[2]) + "': " + tenant.error);
      return result;
    }

    Event event;
    event.epoch = *epoch;
    event.tenant = *tenant;
    if (fields[1] == "admit") {
      event.kind = EventKind::Admit;
      if (fields.size() != 4) {
        result.error =
            positioned(line_number, "admit takes exactly '<epoch> admit <tenant-id> <workload>'");
        return result;
      }
      if (!known_workload(fields[3])) {
        result.error = positioned(
            line_number, "unknown workload '" + std::string(fields[3]) + "'");
        return result;
      }
      event.workload = std::string(fields[3]);
    } else if (fields[1] == "evict") {
      event.kind = EventKind::Evict;
      if (fields.size() != 3) {
        result.error = positioned(line_number, "evict takes exactly '<epoch> evict <tenant-id>'");
        return result;
      }
    } else {
      result.error = positioned(
          line_number, "unknown event kind '" + std::string(fields[1]) +
                           "' (expected 'admit' or 'evict')");
      return result;
    }
    last_epoch = *epoch;
    result.events.push_back(std::move(event));
  }
  return result;
}

EventParseResult parse_events_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    EventParseResult result;
    result.error = "cannot read '" + path + "'";
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_events(buffer.str());
}

std::string format_events(const std::vector<Event>& events) {
  std::string out;
  for (const Event& event : events) {
    out += std::to_string(event.epoch);
    out += ' ';
    out += to_string(event.kind);
    out += ' ';
    out += std::to_string(event.tenant);
    if (event.kind == EventKind::Admit) {
      out += ' ';
      out += event.workload;
    }
    out += '\n';
  }
  return out;
}

namespace {

/// Knuth's product-of-uniforms Poisson sampler: exact, deterministic, and
/// cheap at the small per-epoch rates churn streams use.
std::uint64_t poisson_draw(common::Rng& rng, double mean) {
  if (mean <= 0.0) return 0;
  const double limit = std::exp(-mean);
  std::uint64_t count = 0;
  double product = rng.next_double();
  while (product > limit) {
    ++count;
    product *= rng.next_double();
  }
  return count;
}

/// Arrival palette spanning the three tenant classes: compute-bound lights,
/// flat-curve streamers, and capacity-hungry cache-sensitive benchmarks.
constexpr const char* kPalette[] = {
    "eon", "crafty", "mesa",          // light
    "swim", "lucas", "equake",        // streaming
    "bzip2", "facerec", "mcf", "gcc", // cache-sensitive
};
constexpr const char* kThrasher = "art";

}  // namespace

std::vector<Event> generate_churn(const ChurnConfig& config) {
  BACP_ASSERT(config.num_slots > 0, "churn needs at least one slot");
  BACP_ASSERT(config.min_residency > 0 && config.min_residency <= config.max_residency,
              "churn residency bounds are inverted");
  common::Rng rng(config.seed, 0x5C4EDULL);
  std::vector<Event> events;
  // Slot occupancy: tenant id per slot (0 = free). Ids start at 1 and are
  // never reused by the generator (reuse is exercised by dedicated tests).
  std::vector<std::uint64_t> slot_tenant(config.num_slots, 0);
  std::vector<std::uint64_t> slot_departs(config.num_slots, 0);
  std::uint64_t next_id = 1;
  constexpr double kPi = 3.14159265358979323846;

  for (std::uint64_t epoch = 0; epoch < config.epochs; ++epoch) {
    // Departures first: a slot freed this epoch is admissible this epoch.
    for (std::uint32_t slot = 0; slot < config.num_slots; ++slot) {
      if (slot_tenant[slot] != 0 && slot_departs[slot] == epoch) {
        events.push_back({epoch, EventKind::Evict, slot_tenant[slot], ""});
        slot_tenant[slot] = 0;
      }
    }

    const auto admit_to_free_slot = [&](const char* workload,
                                        std::uint64_t residency) {
      for (std::uint32_t slot = 0; slot < config.num_slots; ++slot) {
        if (slot_tenant[slot] != 0) continue;
        slot_tenant[slot] = next_id;
        slot_departs[slot] = epoch + residency;
        events.push_back({epoch, EventKind::Admit, next_id, workload});
        ++next_id;
        return;
      }
      // No free slot: the arrival balks. (Real services queue; a stream
      // that over-admits would just trip the Service's capacity assert.)
    };

    // Diurnal modulation: rate swings between ~0 and the configured peak.
    const double phase = 2.0 * kPi * static_cast<double>(epoch) / config.diurnal_period;
    const double rate = config.arrival_rate * 0.5 * (1.0 + std::sin(phase));
    const std::uint64_t arrivals = poisson_draw(rng, rate);
    for (std::uint64_t i = 0; i < arrivals; ++i) {
      const auto pick = rng.next_below(std::size(kPalette));
      const std::uint64_t residency =
          config.min_residency +
          rng.next_below(config.max_residency - config.min_residency + 1);
      admit_to_free_slot(kPalette[pick], residency);
    }

    // Adversarial thrasher: a streaming hog slammed in on a fixed cadence,
    // phase-locked to the diurnal peak (period/4 is where sin() crests).
    if (config.thrasher_period != 0 && epoch % config.thrasher_period == 0 &&
        epoch != 0) {
      admit_to_free_slot(kThrasher, config.thrasher_residency);
    }
  }
  return events;
}

}  // namespace bacp::sched
