#include "sched/sched_audit.hpp"

#include <string>

#include "sched/service.hpp"

namespace bacp::sched {

namespace {

void violation(audit::AuditReport& report, std::string field, std::string expected,
               std::string actual, std::uint64_t tenant_or_slot = audit::kNoIndex) {
  audit::Violation entry;
  entry.structure = audit::Structure::Sched;
  entry.object = "service";
  entry.field = std::move(field);
  entry.set = tenant_or_slot;  // tenant id / slot index in the set coordinate
  entry.expected = std::move(expected);
  entry.actual = std::move(actual);
  report.violations.push_back(std::move(entry));
}

}  // namespace

void ServiceAuditor::run(const Service& service, audit::AuditReport& report) {
  const auto& system = service.system_;
  const CoreId num_cores = service.config_.system.geometry.num_cores;

  ++report.checks;
  if (service.slot_tenant_.size() != num_cores) {
    violation(report, "slot_table_shape", std::to_string(num_cores) + " slots",
              std::to_string(service.slot_tenant_.size()) + " slots");
    return;  // nothing below can index safely
  }

  // Tenant side of the bijection: each live tenant's slot is in range,
  // names it back, runs its workload, and is simulator-active.
  for (const auto& [id, tenant] : service.tenants_) {
    ++report.checks;
    if (id != tenant.id) {
      violation(report, "tenant_key", "key == tenant.id",
                std::to_string(id) + " != " + std::to_string(tenant.id), id);
      continue;
    }
    ++report.checks;
    if (tenant.slot >= num_cores) {
      violation(report, "tenant_slot_range", "slot < " + std::to_string(num_cores),
                std::to_string(tenant.slot), id);
      continue;
    }
    ++report.checks;
    if (service.slot_tenant_[tenant.slot] != id) {
      violation(report, "slot_ownership",
                "slot " + std::to_string(tenant.slot) + " owned by tenant " +
                    std::to_string(id),
                "slot names tenant " + std::to_string(service.slot_tenant_[tenant.slot]),
                id);
    }
    ++report.checks;
    if (!system.core_active(tenant.slot)) {
      violation(report, "tenant_active", "live tenant's slot active in the simulator",
                "slot " + std::to_string(tenant.slot) + " inactive", id);
    }
    ++report.checks;
    if (system.bound_workload(tenant.slot) != tenant.workload) {
      violation(report, "workload_binding",
                "slot executes workload " + std::to_string(tenant.workload),
                "slot bound to workload " +
                    std::to_string(system.bound_workload(tenant.slot)),
                id);
    }
    ++report.checks;
    const WayCount installed = system.current_allocation().ways_per_core.at(tenant.slot);
    if (tenant.ways != installed) {
      violation(report, "allocation_agreement",
                "tenant grant == installed " + std::to_string(installed) + " ways",
                std::to_string(tenant.ways) + " ways recorded", id);
    }
  }

  // Slot side: every occupied slot names a live tenant that points back;
  // every free slot is simulator-inactive (no orphaned activity after an
  // eviction).
  for (CoreId slot = 0; slot < num_cores; ++slot) {
    const std::uint64_t owner = service.slot_tenant_[slot];
    if (owner == kNoTenant) {
      ++report.checks;
      if (system.core_active(slot)) {
        violation(report, "orphaned_active_slot", "free slot inactive in the simulator",
                  "slot " + std::to_string(slot) + " still active", slot);
      }
      continue;
    }
    ++report.checks;
    const auto it = service.tenants_.find(owner);
    if (it == service.tenants_.end()) {
      violation(report, "orphaned_slot_owner",
                "slot owner is a live tenant",
                "slot " + std::to_string(slot) + " names evicted tenant " +
                    std::to_string(owner),
                slot);
    } else if (it->second.slot != slot) {
      ++report.checks;
      violation(report, "slot_ownership",
                "tenant " + std::to_string(owner) + " claims slot " + std::to_string(slot),
                "tenant claims slot " + std::to_string(it->second.slot), slot);
    }
  }
}

audit::AuditReport audit_sched(const Service& service) {
  audit::AuditReport report;
  ServiceAuditor::run(service, report);
  return report;
}

}  // namespace bacp::sched
