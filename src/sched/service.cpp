#include "sched/service.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#ifdef BACP_AUDIT
#include <cstdio>
#include <cstdlib>
#endif

#include "common/assert.hpp"
#include "partition/bank_aware.hpp"
#include "sched/sched_audit.hpp"
#include "trace/spec2000.hpp"

namespace bacp::sched {

void ServiceConfig::finalize() {
  system.policy = sim::PolicyKind::External;
  system.finalize();
  BACP_ASSERT(light_ways >= 1 && streaming_ways >= 1,
              "class budgets need at least one way");
  BACP_ASSERT(light_ways <= system.geometry.max_assignable_ways() &&
                  streaming_ways <= system.geometry.max_assignable_ways(),
              "class budgets exceed the assignable capacity");
}

// Fingerprint completeness (same contract as sim::config_digest): every
// ServiceConfig field is folded below; these checks turn "added a field but
// not a digest line" into a compile error.
static_assert(sizeof(ClassifierConfig) == 16, "extend service_digest()");
static_assert(sizeof(ServiceConfig) == 184, "extend service_digest()");

std::uint64_t service_digest(const ServiceConfig& config, const trace::WorkloadMix& mix) {
  // FNV-1a fold over the sim digest and the sched-layer fields, each
  // widened to u64 (doubles as raw bit patterns).
  std::uint64_t hash = 0xCBF29CE484222325ull;
  const auto fold = [&hash](std::uint64_t value) {
    for (unsigned shift = 0; shift < 64; shift += 8) {
      hash ^= (value >> shift) & 0xFF;
      hash *= 0x00000100000001B3ull;
    }
  };
  fold(sim::config_digest(config.system, mix));
  fold(std::bit_cast<std::uint64_t>(config.classifier.light_max_intensity));
  fold(std::bit_cast<std::uint64_t>(config.classifier.streaming_min_flatness));
  fold(config.warmup_instructions);
  fold(config.profile_warm_epochs);
  fold(config.light_ways);
  fold(config.streaming_ways);
  return hash;
}

namespace {

ServiceConfig finalized(ServiceConfig config) {
  config.finalize();
  return config;
}

}  // namespace

Service::Service(const ServiceConfig& config, const trace::WorkloadMix& substrate_mix,
                 harness::SnapshotCache* warm_cache)
    : config_(finalized(config)),
      substrate_mix_(substrate_mix),
      system_(config_.system, substrate_mix_) {
  if (config_.warmup_instructions > 0) {
    harness::warm_system(system_, substrate_mix_, config_.warmup_instructions,
                         warm_cache, /*shared_warmup=*/false);
  }
  // The substrate workloads only warm the hierarchy; tenants exist solely
  // through admit(). All slots start idle.
  const CoreId num_cores = config_.system.geometry.num_cores;
  for (CoreId core = 0; core < num_cores; ++core) system_.set_core_active(core, false);
  slot_tenant_.assign(num_cores, kNoTenant);
  audit_checkpoint("service construction");
}

msa::MissRatioCurve Service::planning_curve(const TenantState& tenant) const {
  const WayCount max_ways = config_.system.geometry.max_assignable_ways();
  if (tenant.live_epochs >= config_.profile_warm_epochs &&
      tenant.decayed_instructions > 0.0) {
    // Live profile, normalized to misses-per-Minstr over the same decayed
    // history window the histogram covers (the window holds the *decayed*
    // value, i.e. exactly half the window used at the last harvest).
    const double window = std::max(1.0, tenant.decayed_instructions * 2.0);
    return system_.profiler(tenant.slot).curve().scaled(1.0e6 / window);
  }
  // Admission prior: the workload model's analytic curve (normalized to one
  // access) weighted by its access intensity — accesses-per-Minstr is APKI
  // x 1000. This is what lets a newcomer be planned for at admission
  // instead of stalling until it has been re-profiled from scratch.
  const auto& model = trace::spec2000_suite().at(tenant.workload);
  return msa::MissRatioCurve::from_model(model, max_ways).scaled(model.l2_apki * 1000.0);
}

msa::MissRatioCurve Service::shaped_curve(const TenantState& tenant) const {
  if (tenant.cls == TenantClass::CacheSensitive) return planning_curve(tenant);
  // Clustering by class: Light and Streaming tenants are lowered to a
  // synthetic all-or-nothing curve saturating at their class budget. The
  // allocator sees zero marginal utility past the budget (capacity flows to
  // the cache-sensitive tenants) but the tenant's real intensity below it,
  // so same-class tenants receive identical, adjacent-packed budgets
  // without breaking the single-owner way-mask invariant.
  const WayCount budget =
      tenant.cls == TenantClass::Light ? config_.light_ways : config_.streaming_ways;
  std::vector<double> hits(budget, 0.0);
  hits[budget - 1] = planning_curve(tenant).total();
  return msa::MissRatioCurve(std::move(hits), 0.0);
}

void Service::replan() {
  const auto& geometry = config_.system.geometry;
  // Idle slots plan with empty curves: zero marginal utility everywhere, so
  // they hold only the capacity nobody wants (the allocator must still
  // cover every bank — parked capacity, not an orphaned grant).
  std::vector<msa::MissRatioCurve> curves(geometry.num_cores);
  for (const auto& [id, tenant] : tenants_) curves[tenant.slot] = shaped_curve(tenant);
  const auto result = partition::bank_aware_partition(geometry, curves);
  system_.install_partition(result.allocation, result.assignment);
  for (auto& [id, tenant] : tenants_) {
    tenant.ways = result.allocation.ways_per_core.at(tenant.slot);
  }
  ++replans_;
}

void Service::admit(const Tenant& tenant) {
  BACP_ASSERT(tenant.id != kNoTenant, "tenant id is the reserved sentinel");
  BACP_ASSERT(tenants_.find(tenant.id) == tenants_.end(),
              "admit of a tenant id that is already live");
  CoreId slot = kInvalidCore;
  for (CoreId core = 0; core < slot_tenant_.size(); ++core) {
    if (slot_tenant_[core] == kNoTenant) {
      slot = core;
      break;
    }
  }
  BACP_ASSERT(slot != kInvalidCore, "admit with no free slot (stream over-admits)");

  TenantState state;
  state.id = tenant.id;
  state.slot = slot;
  state.workload = trace::spec2000_index(tenant.workload);
  state.admitted_epoch = epoch_;
  state.stream_salt = next_salt_++;
  system_.reset_core(slot, tenant.workload, state.stream_salt);
  system_.set_core_active(slot, true);
  state.cls = classify(planning_curve(state),
                       config_.system.geometry.max_assignable_ways(), config_.classifier);
  slot_tenant_[slot] = tenant.id;
  tenants_.emplace(tenant.id, state);
  ++admissions_;
  replan();
  audit_checkpoint("admit");
}

void Service::evict(std::uint64_t tenant_id) {
  const auto it = tenants_.find(tenant_id);
  BACP_ASSERT(it != tenants_.end(), "evict of a tenant that is not live");
  system_.set_core_active(it->second.slot, false);
  slot_tenant_[it->second.slot] = kNoTenant;
  tenants_.erase(it);
  ++evictions_;
  replan();
  audit_checkpoint("evict");
}

void Service::harvest_epoch() {
  const auto samples = system_.sample_cores();
  const WayCount max_ways = config_.system.geometry.max_assignable_ways();
  bool class_changed = false;
  for (auto& [id, tenant] : tenants_) {
    const auto& sample = samples.at(tenant.slot);
    const double accesses =
        static_cast<double>(sample.l2_hits) + static_cast<double>(sample.l2_misses);
    TenantSeries& series = series_[id];
    series.epoch.push_back(static_cast<double>(epoch_));
    series.cpi.push_back(sample.instructions > 0.0 ? sample.cycles / sample.instructions
                                                   : 0.0);
    series.miss_ratio.push_back(
        accesses > 0.0 ? static_cast<double>(sample.l2_misses) / accesses : 0.0);
    series.ways.push_back(static_cast<double>(sample.ways));
    series.slot.push_back(static_cast<double>(tenant.slot));
    tenant.ways = sample.ways;
    const double window = std::max(1.0, tenant.decayed_instructions + sample.instructions);
    tenant.decayed_instructions = window * 0.5;
    ++tenant.live_epochs;
    if (tenant.live_epochs >= config_.profile_warm_epochs) {
      const TenantClass cls =
          classify(planning_curve(tenant), max_ways, config_.classifier);
      if (cls != tenant.cls) {
        tenant.cls = cls;
        ++class_changes_;
        class_changed = true;
      }
    }
  }
  // Re-arm the measurement window: the system is statistics-clean at every
  // epoch edge, which is what makes mid-churn save_state() legal.
  system_.reset_measurement();
  ++epoch_;
  if (class_changed) replan();
}

void Service::step(std::uint64_t epochs) {
  for (std::uint64_t i = 0; i < epochs; ++i) {
    system_.step_epochs(1);
    harvest_epoch();
  }
}

void Service::play(std::span<const Event> events) {
  for (const Event& event : events) {
    BACP_ASSERT(event.epoch >= epoch_, "event stream is behind the service clock");
    if (event.epoch > epoch_) step(event.epoch - epoch_);
    if (event.kind == EventKind::Admit) {
      admit({event.tenant, event.workload});
    } else {
      evict(event.tenant);
    }
  }
}

void Service::drain(std::uint64_t final_epoch) {
  if (final_epoch > epoch_) step(final_epoch - epoch_);
  std::vector<std::uint64_t> live;
  live.reserve(tenants_.size());
  for (const auto& [id, tenant] : tenants_) live.push_back(id);
  for (const std::uint64_t id : live) evict(id);
}

std::vector<Service::TenantStatus> Service::live_tenants() const {
  std::vector<TenantStatus> out;
  out.reserve(tenants_.size());
  for (const auto& [id, tenant] : tenants_) {
    TenantStatus status;
    status.id = tenant.id;
    status.slot = tenant.slot;
    status.workload = tenant.workload;
    status.cls = tenant.cls;
    status.admitted_epoch = tenant.admitted_epoch;
    status.live_epochs = tenant.live_epochs;
    status.ways = tenant.ways;
    out.push_back(status);
  }
  return out;
}

obs::Json Service::tenant_report() const {
  obs::Json report = obs::Json::object();
  report.set("schema", std::uint64_t{1});
  report.set("epochs", epoch_);
  report.set("admissions", admissions_);
  report.set("evictions", evictions_);
  report.set("replans", replans_);
  report.set("class_changes", class_changes_);
  const auto& suite = trace::spec2000_suite();
  obs::Json tenants = obs::Json::array();
  for (const auto& [id, series] : series_) {
    obs::Json entry = obs::Json::object();
    entry.set("tenant", id);
    if (const auto it = tenants_.find(id); it != tenants_.end()) {
      entry.set("live", true);
      entry.set("workload", suite.at(it->second.workload).name);
      entry.set("class", to_string(it->second.cls));
      entry.set("slot", std::uint64_t{it->second.slot});
    } else {
      entry.set("live", false);
    }
    const auto column = [](const std::vector<double>& values) {
      obs::Json array = obs::Json::array();
      for (const double value : values) array.push_back(value);
      return array;
    };
    entry.set("epoch", column(series.epoch));
    entry.set("cpi", column(series.cpi));
    entry.set("miss_ratio", column(series.miss_ratio));
    entry.set("ways", column(series.ways));
    entry.set("slot_series", column(series.slot));
    tenants.push_back(std::move(entry));
  }
  report.set("tenants", std::move(tenants));
  return report;
}

snapshot::SystemSnapshot Service::save_state() const {
  snapshot::SnapshotBuilder builder(service_digest(config_, substrate_mix_));
  system_.save_into(builder);
  auto writer = builder.begin_section(snapshot::SectionId::Sched);
  writer.u64(epoch_);
  writer.u64(next_salt_);
  writer.u64(admissions_);
  writer.u64(evictions_);
  writer.u64(replans_);
  writer.u64(class_changes_);
  // Per-slot workload bindings (idle slots keep their last tenant's
  // binding): restore replays reset_core() over every slot so the timers'
  // unserialized gap-model parameters are rebuilt before the bit-exact
  // component restore.
  {
    const CoreId num_cores = config_.system.geometry.num_cores;
    std::vector<std::size_t> bound(num_cores);
    for (CoreId core = 0; core < num_cores; ++core) bound[core] = system_.bound_workload(core);
    writer.scalars(std::span<const std::size_t>(bound));
  }
  writer.u64(tenants_.size());
  for (const auto& [id, tenant] : tenants_) {
    writer.u64(tenant.id);
    writer.u32(tenant.slot);
    writer.u64(tenant.workload);
    writer.u8(static_cast<std::uint8_t>(tenant.cls));
    writer.u64(tenant.admitted_epoch);
    writer.u64(tenant.live_epochs);
    writer.u64(tenant.stream_salt);
    writer.u32(tenant.ways);
    writer.f64(tenant.decayed_instructions);
  }
  writer.u64(series_.size());
  for (const auto& [id, series] : series_) {
    writer.u64(id);
    const auto column = [&writer](const std::vector<double>& values) {
      writer.u64(values.size());
      for (const double value : values) writer.f64(value);
    };
    column(series.epoch);
    column(series.cpi);
    column(series.miss_ratio);
    column(series.ways);
    column(series.slot);
  }
  return builder.finish();
}

void Service::restore_state(const snapshot::SystemSnapshot& snapshot) {
  const snapshot::SnapshotView view(snapshot);
  BACP_ASSERT(view.config_digest() == service_digest(config_, substrate_mix_),
              "snapshot belongs to a different (service config, mix)");
  auto reader = view.section(snapshot::SectionId::Sched);
  epoch_ = reader.u64();
  next_salt_ = reader.u64();
  admissions_ = reader.u64();
  evictions_ = reader.u64();
  replans_ = reader.u64();
  class_changes_ = reader.u64();

  const CoreId num_cores = config_.system.geometry.num_cores;
  std::vector<std::size_t> bound(num_cores);
  reader.scalars_into(std::span<std::size_t>(bound));
  tenants_.clear();
  slot_tenant_.assign(num_cores, kNoTenant);
  const std::uint64_t live = reader.u64();
  for (std::uint64_t i = 0; i < live; ++i) {
    TenantState tenant;
    tenant.id = reader.u64();
    tenant.slot = reader.u32();
    tenant.workload = reader.u64();
    tenant.cls = static_cast<TenantClass>(reader.u8());
    tenant.admitted_epoch = reader.u64();
    tenant.live_epochs = reader.u64();
    tenant.stream_salt = reader.u64();
    tenant.ways = reader.u32();
    tenant.decayed_instructions = reader.f64();
    BACP_ASSERT(tenant.slot < num_cores, "snapshot tenant slot out of range");
    BACP_ASSERT(slot_tenant_[tenant.slot] == kNoTenant, "snapshot slot double-booked");
    slot_tenant_[tenant.slot] = tenant.id;
    tenants_.emplace(tenant.id, tenant);
  }

  series_.clear();
  const std::uint64_t num_series = reader.u64();
  for (std::uint64_t i = 0; i < num_series; ++i) {
    const std::uint64_t id = reader.u64();
    TenantSeries series;
    const auto column = [&reader](std::vector<double>& values) {
      const std::uint64_t count = reader.u64();
      values.resize(static_cast<std::size_t>(count));
      for (double& value : values) value = reader.f64();
    };
    column(series.epoch);
    column(series.cpi);
    column(series.miss_ratio);
    column(series.ways);
    column(series.slot);
    series_.emplace(id, std::move(series));
  }

  // Replay every slot's workload binding (timer gap-model parameters are
  // not serialized — see System::restore_from), then restore the component
  // state bit-exactly over the rebound slots. The replay salt is
  // irrelevant: every RNG stream, clock and footprint the replay seeds is
  // overwritten by the restore; only the rebuilt timer configs survive.
  const auto& suite = trace::spec2000_suite();
  for (CoreId core = 0; core < num_cores; ++core) {
    system_.set_core_active(core, false);
    system_.reset_core(core, suite.at(bound.at(core)).name, 0);
  }
  for (const auto& [id, tenant] : tenants_) system_.set_core_active(tenant.slot, true);
  system_.restore_from(view);
  audit_checkpoint("restore_state");
}

void Service::audit_checkpoint(const char* where) const {
#ifdef BACP_AUDIT
  const audit::AuditReport report = audit_sched(*this);
  if (!report.ok()) {
    std::fprintf(stderr, "BACP_AUDIT (sched) failed at %s: %s\n", where,
                 report.to_string().c_str());
    std::abort();
  }
#else
  (void)where;
#endif
}

}  // namespace bacp::sched
