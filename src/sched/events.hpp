#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"

namespace bacp::sched {

/// One tenant-churn event, applied at the *start* of the named scheduler
/// epoch (before that epoch is simulated).
enum class EventKind : std::uint8_t {
  Admit,  ///< a tenant arrives and claims a free core slot
  Evict,  ///< a live tenant departs and frees its slot
};
const char* to_string(EventKind kind);

struct Event {
  std::uint64_t epoch = 0;
  EventKind kind = EventKind::Admit;
  std::uint64_t tenant = 0;   ///< stable tenant id (ids may be reused after evict)
  std::string workload;       ///< spec2000 benchmark name; admits only
};

/// Strict parse of a churn event file. Grammar, one event per line:
///   <epoch> admit <tenant-id> <workload>
///   <epoch> evict <tenant-id>
/// '#' starts a comment; blank lines are skipped. Events must be sorted by
/// epoch (ties keep file order). Malformed numbers, unknown kinds, missing
/// or extra fields, unknown workload names and epoch regressions all fail
/// with a positioned "line N: ..." message — never a silently dropped or
/// repaired event (the artifact would mislabel the whole run).
struct EventParseResult {
  std::vector<Event> events;
  std::string error;  ///< "" iff parse succeeded

  bool ok() const { return error.empty(); }
};
EventParseResult parse_events(std::string_view text);

/// parse_events() over a file's contents; unreadable files report through
/// the same error channel ("cannot read ...").
EventParseResult parse_events_file(const std::string& path);

/// Serializes events back to the parse_events() grammar (round-trips).
std::string format_events(const std::vector<Event>& events);

/// Deterministic synthetic churn for the service benchmarks: Poisson
/// arrivals whose rate follows a diurnal (sinusoidal) curve, uniformly
/// drawn residencies, plus a periodic adversarial thrasher tenant (a
/// streaming memory hog admitted at the diurnal peak, when competition for
/// capacity is worst). The generator tracks slot occupancy so the stream
/// never over-admits: an arrival finding no free slot is dropped. Output is
/// a pure function of the config — same config, same byte-identical stream.
struct ChurnConfig {
  std::uint64_t epochs = 1000;      ///< stream length in scheduler epochs
  std::uint32_t num_slots = 8;      ///< core slots available to tenants
  std::uint64_t seed = 1;           ///< arrival/residency/workload draws
  double arrival_rate = 0.4;        ///< mean admits per epoch at diurnal peak
  double diurnal_period = 250.0;    ///< epochs per simulated "day"
  std::uint64_t min_residency = 25; ///< shortest tenant lifetime, epochs
  std::uint64_t max_residency = 150;
  std::uint64_t thrasher_period = 125;  ///< thrasher admission cadence (0 = off)
  std::uint64_t thrasher_residency = 20;
};
std::vector<Event> generate_churn(const ChurnConfig& config);

}  // namespace bacp::sched
