#pragma once

#include "audit/audit.hpp"

namespace bacp::sched {

class Service;

/// Structural audit of the scheduler's ownership model against the wrapped
/// system (Structure::Sched violations):
///   - tenant table <-> slot table bijection: every live tenant occupies
///     exactly the slot that names it, every occupied slot names a live
///     tenant, ids and slots are unique and in range;
///   - no orphaned activity: a slot is simulator-active iff a live tenant
///     owns it (an evicted tenant must leave nothing running);
///   - binding agreement: each tenant's workload is what the simulator
///     actually executes on its slot;
///   - allocation agreement: each tenant's recorded way grant matches the
///     installed partition for its slot (no stale or orphaned grants).
/// Violations are data (the kill-tests assert on structure/field); the
/// BACP_AUDIT checkpoint aborts on the first one.
audit::AuditReport audit_sched(const Service& service);

/// Friend-key auditor: Service grants access to its tenant and slot tables
/// so the audit reads raw state without widening the public API.
class ServiceAuditor {
 public:
  static void run(const Service& service, audit::AuditReport& report);
};

}  // namespace bacp::sched
