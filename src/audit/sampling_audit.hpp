#pragma once

#include <cstdint>
#include <vector>

#include "audit/audit.hpp"

namespace bacp::audit {

/// What one mix's interval-sampling plan claims about itself, stripped to
/// the facts the legality audit needs (the ShardMergeInput pattern: the
/// audit layer stays independent of bacp::sampling — the engine builds this
/// from its k-medoids output and the auditor never sees feature vectors or
/// simulation state).
struct SamplingPlanInput {
  std::uint32_t num_intervals = 0;  ///< population the plan extrapolates to
  std::uint32_t k = 0;              ///< representative intervals simulated
  std::vector<std::uint32_t> medoids;     ///< interval indices, strictly ascending
  std::vector<std::uint32_t> assignment;  ///< per interval: medoid slot in [0, k)
  std::vector<std::uint64_t> weights;     ///< per medoid slot: cluster population
};

/// Plan-legality audit: k in (0, num_intervals]; exactly k medoids, each a
/// distinct in-range interval index in strictly ascending order; every
/// interval assigned to an existing medoid slot; each medoid assigned to
/// its own slot (a medoid is its cluster's representative); each slot's
/// weight equals its assignment population; and the weights sum to the
/// full population — so the extrapolation can neither drop nor
/// double-count an interval. Violations are data, not aborts — the
/// sampling engine decides to refuse.
AuditReport audit_sampling_plan(const SamplingPlanInput& plan);

}  // namespace bacp::audit
