#pragma once

#include <cstdint>

#include "audit/audit.hpp"

namespace bacp::audit {

/// What a harness::SystemPool claims about its lease bookkeeping, stripped
/// to the counters the legality audit needs. The audit layer stays
/// independent of the harness: the pool (or a test) fills this from its
/// accessors and the auditor never sees Systems or leases.
struct PoolBookkeepingInput {
  std::uint64_t hits = 0;         ///< acquires served from the idle lists
  std::uint64_t misses = 0;       ///< acquires that constructed a System
  std::uint64_t outstanding = 0;  ///< leases issued and not yet returned
  std::uint64_t idle = 0;         ///< Systems parked in the idle lists
};

/// Lease-bookkeeping legality audit: every System the pool has ever handed
/// out originated from exactly one miss-construction and is never destroyed
/// while the pool lives, so `outstanding + idle == misses` at any observable
/// point; a hit can only be served by a previously constructed System, so
/// `hits > 0` requires `misses > 0`; and the pool cannot have more leases
/// out than acquires, so `outstanding <= hits + misses`. Violations are
/// data, not aborts — the kill-tests in tests/test_audit.cpp assert the
/// exact field reported here.
AuditReport audit_pool_bookkeeping(const PoolBookkeepingInput& input);

}  // namespace bacp::audit
