#pragma once

#include "audit/audit.hpp"

namespace bacp::noc {
class Noc;
}
namespace bacp::mem {
class Dram;
}
namespace bacp::trace {
class SyntheticTraceGenerator;
}
namespace bacp::msa {
class StackProfiler;
}
namespace bacp::core {
class CoreTimer;
}
namespace bacp::obs {
class TimeSeries;
}

namespace bacp::audit {

/// Single-component structural audits for the System members that sit
/// outside the cache/coherence/partition core: the NoC fabric, the DRAM
/// channel, the synthetic trace generators, the MSA profilers, the core
/// timers and the epoch time series. System::audit_checkpoint runs all of
/// them (under BACP_AUDIT), so every stateful structure reachable from
/// sim::System has a registered audit entry point — the contract the
/// bacp-audit-coverage static check enforces.

/// Noc: geometry sanity (non-zero cores/banks/hop latency), the per-bank
/// occupancy and request vectors are sized to the bank count, and every
/// core/bank hop distance lies in [1, max_hops].
AuditReport audit_noc_fabric(const noc::Noc& noc);

/// Dram: non-zero access latency and per-line channel occupancy (a zero
/// would make the channel model a no-op and silently uncap bandwidth).
AuditReport audit_dram_channel(const mem::Dram& dram);

/// SyntheticTraceGenerator: ring geometry (power-of-two capacity covering
/// max_depth, mask == capacity - 1, flat arrays sized num_sets x capacity),
/// per-set ring legality (head within the ring, size within max_depth),
/// every live block id below the allocation counter, no block listed twice
/// in one set's recency window, and batch quiescence (audits run only at
/// checkpoints, where no next_batch() may be outstanding).
AuditReport audit_trace_generator(const trace::SyntheticTraceGenerator& generator);

/// StackProfiler: derived set/sampling masks match the config they were
/// derived from, stack storage is sized num_stacks x profiled_ways, per-set
/// stack sizes fit the profiled depth, the histogram has profiled_ways + 1
/// bins and its total equals the bin sum, and sampled <= observed.
AuditReport audit_stack_profiler(const msa::StackProfiler& profiler);

/// CoreTimer: timing-model sanity (positive CPI and gap length, MLP window
/// >= 1), the in-flight window respects the MLP cap and is a valid min-heap
/// on completion time, and clocks/marks never run backwards.
AuditReport audit_core_timer(const core::CoreTimer& timer);

/// TimeSeries: every interned handle indexes a real column, handles are
/// distinct, and no column is longer than the epoch count (columns are
/// back-filled lazily, so shorter is legal; longer means a lost epoch).
AuditReport audit_epoch_series(const obs::TimeSeries& series);

/// Friend-key class (see CacheAuditor): the components grant this access to
/// their internals so the audits can check ring bytes and heap layouts
/// without widening their public APIs.
class ComponentAuditor {
 public:
  static void run(const noc::Noc& noc, AuditReport& report);
  static void run(const mem::Dram& dram, AuditReport& report);
  static void run(const trace::SyntheticTraceGenerator& generator,
                  AuditReport& report);
  static void run(const msa::StackProfiler& profiler, AuditReport& report);
  static void run(const core::CoreTimer& timer, AuditReport& report);
  static void run(const obs::TimeSeries& series, AuditReport& report);
};

}  // namespace bacp::audit
