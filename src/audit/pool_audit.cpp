#include "audit/pool_audit.hpp"

#include <string>
#include <utility>

namespace bacp::audit {
namespace {

/// Collects into `report`; every check() call counts one evaluated
/// invariant, pass or fail (mirrors the checkers in the sibling audits).
class PoolChecker {
 public:
  explicit PoolChecker(AuditReport& report) : report_(&report) {}

  bool check(bool ok, std::string field, std::string expected, std::string actual) {
    ++report_->checks;
    if (!ok) {
      Violation violation;
      violation.structure = Structure::Pool;
      violation.object = "system_pool";
      violation.field = std::move(field);
      violation.expected = std::move(expected);
      violation.actual = std::move(actual);
      report_->violations.push_back(std::move(violation));
    }
    return ok;
  }

 private:
  AuditReport* report_;
};

}  // namespace

AuditReport audit_pool_bookkeeping(const PoolBookkeepingInput& input) {
  AuditReport report;
  PoolChecker checker(report);

  // Conservation: a System exists iff one miss constructed it, and it is
  // always either leased out or parked idle — the pool never destroys one
  // while it lives. A drift here means a lease was dropped without release
  // or a System was double-returned.
  checker.check(input.outstanding + input.idle == input.misses, "conservation",
                "outstanding + idle == misses",
                std::to_string(input.outstanding) + " + " +
                    std::to_string(input.idle) +
                    " != " + std::to_string(input.misses));

  // A hit hands out a previously constructed System, so hits require at
  // least one construction to have happened.
  checker.check(input.hits == 0 || input.misses > 0, "hit_provenance",
                "hits > 0 implies misses > 0",
                std::to_string(input.hits) + " hits with " +
                    std::to_string(input.misses) + " misses");

  // Leases out can never exceed total acquires.
  checker.check(input.outstanding <= input.hits + input.misses, "lease_bound",
                "outstanding <= hits + misses",
                std::to_string(input.outstanding) + " > " +
                    std::to_string(input.hits + input.misses));

  return report;
}

}  // namespace bacp::audit
