#pragma once

#include "audit/audit.hpp"
#include "sim/system.hpp"

namespace bacp::audit {

/// Full structural + cross-structure audit of one sim::System. Header-only
/// so the audit *library* stays below sim in the dependency order (sim's
/// epoch hook links bacp_audit); callers of this helper sit above sim and
/// link both.
inline AuditReport audit_system(const sim::System& system) {
  SystemView view;
  view.l2 = &system.l2();
  view.l1s = system.l1s();
  view.directory = &system.directory();
  view.allocation = &system.current_allocation();
  return audit_system_components(view);
}

}  // namespace bacp::audit
