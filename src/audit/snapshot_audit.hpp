#pragma once

#include "audit/audit.hpp"

namespace bacp::snapshot {
struct SystemSnapshot;
}

namespace bacp::audit {

/// Graceful structural validation of a snapshot buffer. Unlike
/// snapshot::SnapshotView — whose constructor *asserts* well-formedness,
/// because restore paths are only handed vouched-for buffers — this walks
/// the raw bytes and reports every framing defect as a Violation: short or
/// truncated buffer, bad magic, version skew, oversized or unsorted section
/// table, sections outside the buffer or out of order, per-section checksum
/// mismatches, and trailing bytes past the last section. A snapshot that
/// passes is safe to hand to SnapshotView / System::restore_state; the
/// restored *state* is then cross-checked separately via
/// audit_system_components() (see audit_system()).
AuditReport audit_snapshot(const snapshot::SystemSnapshot& snapshot);

}  // namespace bacp::audit
