#include "audit/shard_audit.hpp"

#include <string>
#include <vector>

namespace bacp::audit {

namespace {

void violation(AuditReport& report, std::string field, std::string expected,
               std::string actual, std::uint64_t shard = kNoIndex) {
  Violation entry;
  entry.structure = Structure::Shard;
  entry.object = "shard_set";
  entry.field = std::move(field);
  entry.set = shard;  // shard id in the set coordinate
  entry.expected = std::move(expected);
  entry.actual = std::move(actual);
  report.violations.push_back(std::move(entry));
}

}  // namespace

AuditReport audit_shard_merge(std::span<const ShardMergeInput> shards) {
  AuditReport report;

  ++report.checks;
  if (shards.empty()) {
    violation(report, "shard_count", "at least one shard artifact", "none");
    return report;
  }

  // Shape agreement: every artifact must describe the same sharded sweep.
  const ShardMergeInput& first = shards.front();
  ++report.checks;
  if (first.shards == 0) {
    violation(report, "shards_field", "shards > 0", "0", first.shard_id);
    return report;
  }
  for (const ShardMergeInput& shard : shards) {
    ++report.checks;
    if (shard.shards != first.shards) {
      violation(report, "shards_agreement", std::to_string(first.shards) + " shards",
                std::to_string(shard.shards) + " shards", shard.shard_id);
    }
    ++report.checks;
    if (shard.trials != first.trials) {
      violation(report, "trials_agreement", std::to_string(first.trials) + " trials",
                std::to_string(shard.trials) + " trials", shard.shard_id);
    }
    ++report.checks;
    if (shard.config_digest != first.config_digest) {
      violation(report, "config_digest",
                "digest " + std::to_string(first.config_digest),
                "digest " + std::to_string(shard.config_digest), shard.shard_id);
    }
  }
  if (!report.ok()) return report;  // ids/coverage below assume one shape

  // Every shard id in [0, shards) exactly once — no slice missing, none
  // merged twice.
  ++report.checks;
  if (shards.size() != first.shards) {
    violation(report, "shard_set_size", std::to_string(first.shards) + " artifacts",
              std::to_string(shards.size()) + " artifacts");
  }
  std::vector<std::uint32_t> seen(first.shards, 0);
  for (const ShardMergeInput& shard : shards) {
    ++report.checks;
    if (shard.shard_id >= first.shards) {
      violation(report, "shard_id_range", "shard id < " + std::to_string(first.shards),
                std::to_string(shard.shard_id), shard.shard_id);
      continue;
    }
    ++report.checks;
    if (++seen[shard.shard_id] > 1) {
      violation(report, "shard_id_unique", "each shard id once",
                "shard id " + std::to_string(shard.shard_id) + " appears " +
                    std::to_string(seen[shard.shard_id]) + " times",
                shard.shard_id);
    }
  }
  if (!report.ok()) return report;

  // Ownership and coverage: trial t belongs to shard t % shards and to no
  // other (so no trial's mix can be double-counted), indices are strictly
  // ascending within a shard, and together the shards carry every trial of
  // the unsharded sweep exactly once.
  std::uint64_t covered = 0;
  for (const ShardMergeInput& shard : shards) {
    std::uint64_t previous = 0;
    bool have_previous = false;
    for (const std::uint64_t trial : shard.trial_indices) {
      ++report.checks;
      if (trial >= first.trials) {
        violation(report, "trial_range", "trial < " + std::to_string(first.trials),
                  "trial " + std::to_string(trial), shard.shard_id);
        continue;
      }
      ++report.checks;
      if (trial % first.shards != shard.shard_id) {
        violation(report, "trial_ownership",
                  "trial % " + std::to_string(first.shards) + " == " +
                      std::to_string(shard.shard_id),
                  "trial " + std::to_string(trial) + " owned by shard " +
                      std::to_string(trial % first.shards),
                  shard.shard_id);
      }
      ++report.checks;
      if (have_previous && trial <= previous) {
        violation(report, "trial_order", "strictly ascending trial indices",
                  std::to_string(trial) + " after " + std::to_string(previous),
                  shard.shard_id);
      }
      previous = trial;
      have_previous = true;
    }
    // Per-shard completeness: shard k owns ceil((trials - k) / shards)
    // trials; duplicates are excluded by the ascending check above.
    const std::uint64_t owned =
        first.trials > shard.shard_id
            ? (first.trials - shard.shard_id + first.shards - 1) / first.shards
            : 0;
    ++report.checks;
    if (shard.trial_indices.size() != owned) {
      violation(report, "shard_coverage",
                std::to_string(owned) + " owned trials carried",
                std::to_string(shard.trial_indices.size()) + " carried",
                shard.shard_id);
    }
    covered += shard.trial_indices.size();
  }
  ++report.checks;
  if (report.ok() && covered != first.trials) {
    violation(report, "total_coverage", std::to_string(first.trials) + " trials covered",
              std::to_string(covered) + " covered");
  }

  return report;
}

}  // namespace bacp::audit
