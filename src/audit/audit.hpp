#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace bacp::cache {
class SetAssocCache;
}
namespace bacp::nuca {
class DnucaCache;
}
namespace bacp::coherence {
class MoesiDirectory;
}
namespace bacp::partition {
struct CmpGeometry;
struct Allocation;
struct BankAssignment;
}  // namespace bacp::partition

namespace bacp::audit {

/// Which core structure a violation was found in.
enum class Structure : std::uint8_t {
  Cache,      ///< one cache::SetAssocCache instance (an L1 or an L2 bank)
  Nuca,       ///< nuca::DnucaCache aggregation state (residency index, views)
  Directory,  ///< coherence::MoesiDirectory entry legality
  Partition,  ///< partition plan (way masks, allocations, bank lists)
  Cross,      ///< cross-structure agreement (inclusion, directory vs. L1s)
  Snapshot,   ///< snapshot buffer framing (header, section table, checksums)
  Sched,      ///< sched::Service tenant table vs. system slot/allocation state
  Shard,      ///< Monte-Carlo shard set legality (coverage, ownership, digests)
  Sampling,   ///< interval-sampling plan legality (medoids, assignment, weights)
  Component,  ///< single-component state (NoC, DRAM, generators, profilers,
              ///< core timers, epoch series — see component_audit.hpp)
  Pool,       ///< harness::SystemPool lease bookkeeping (see pool_audit.hpp)
};
const char* to_string(Structure structure);

/// Sentinel for "no set / bank / way coordinate applies".
inline constexpr std::uint64_t kNoIndex = ~std::uint64_t{0};

/// One structural-invariant violation, located as precisely as the checked
/// structure allows. Violations are data, not aborts: the caller decides
/// whether to log, assert, or collect (the mutation kill-tests assert on
/// the exact structure/field reported here).
struct Violation {
  Structure structure = Structure::Cache;
  std::string object;  ///< instance name ("L1.core3", "L2.bank7", "directory")
  std::string field;   ///< invariant family ("lru_links", "residency_index", ...)
  std::uint64_t set = kNoIndex;   ///< set index within the object, if any
  std::uint64_t bank = kNoIndex;  ///< bank id, if any
  std::string expected;
  std::string actual;

  /// "structure=cache object=L2.bank3 field=lru_links set=12: expected ..."
  std::string to_string() const;
};

/// Outcome of one audit pass. `checks` counts every invariant evaluated
/// (so a kill-test can tell "clean because audited" from "clean because the
/// auditor never looked"); `violations` is empty iff the structure is
/// internally consistent.
struct AuditReport {
  std::uint64_t checks = 0;
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  void merge(AuditReport other);
  /// One line per violation, "" when ok(); capped at 32 violations so a
  /// totally corrupted structure cannot flood the log.
  std::string to_string() const;
};

/// SetAssocCache: the per-set LRU byte-links form a permutation of the ways
/// (head/tail endpoints agree, no cycles, every way linked exactly once);
/// valid/dirty bitmasks are consistent with each other, the way count, and
/// the tag/allocator columns; way masks are non-zero and the derived
/// per-core owned-way masks match them.
AuditReport audit_cache(const cache::SetAssocCache& cache);

/// DnucaCache: every bank passes audit_cache; the {bank, way} residency
/// index agrees *bidirectionally* with bank contents (every resident line
/// is indexed at its exact slot, every index entry points at a matching
/// valid line, so the index is neither stale nor missing entries); the
/// per-core bank views and the flattened view-position table agree.
AuditReport audit_nuca(const nuca::DnucaCache& cache);

/// MoesiDirectory: every entry has at least one sharer within the valid
/// core range; owner id and owner state are mutually consistent (an owner
/// holds E/O/M and its sharer bit; no owner means no ownership state); the
/// single-owner states E and M admit no other sharers.
AuditReport audit_directory(const coherence::MoesiDirectory& directory);

/// Partition plan: mask-vector shapes match the geometry; every way has an
/// owner; masks are single-owner or all-cores (no partial sharing scheme
/// exists); per-core way sums match `allocation` when given; fully
/// partitioned plans cover all ways exactly and respect the paper's 9/16
/// max-capacity rule; bank lists agree bidirectionally with the masks.
AuditReport audit_partition(const partition::CmpGeometry& geometry,
                            const partition::BankAssignment& assignment,
                            const partition::Allocation* allocation = nullptr);

/// Everything sim::System wires together, for cross-structure checks that
/// no single-structure audit can see. Null members are skipped.
struct SystemView {
  const nuca::DnucaCache* l2 = nullptr;
  std::span<const cache::SetAssocCache> l1s;  ///< index == core id
  const coherence::MoesiDirectory* directory = nullptr;
  const partition::Allocation* allocation = nullptr;
};

/// Runs every applicable single-structure audit plus the cross-structure
/// invariants: inclusion (every valid L1 line is L2-resident), directory /
/// L1 agreement in both directions (each valid L1 line is tracked with its
/// core's sharer bit set; each directory sharer bit corresponds to a
/// resident L1 line), and L2 way-partition sums vs. the installed
/// allocation.
AuditReport audit_system_components(const SystemView& view);

/// Friend-key classes: the structures grant these (and only these) access
/// to their internals, so the audits can check raw link bytes and hash
/// slots without widening the public API.
class CacheAuditor {
 public:
  static void run(const cache::SetAssocCache& cache, AuditReport& report);
};

class NucaAuditor {
 public:
  static void run(const nuca::DnucaCache& cache, AuditReport& report);
  static void cross_check(const SystemView& view, AuditReport& report);
};

class DirectoryAuditor {
 public:
  static void run(const coherence::MoesiDirectory& directory, AuditReport& report);
  static void cross_check(const SystemView& view, AuditReport& report);
};

}  // namespace bacp::audit
