#include "audit/component_audit.hpp"

#include <algorithm>
#include <bit>
#include <functional>
#include <set>
#include <string>

#include "core/core_timer.hpp"
#include "mem/dram.hpp"
#include "msa/stack_profiler.hpp"
#include "noc/noc.hpp"
#include "obs/timeseries.hpp"
#include "trace/synthetic.hpp"

namespace bacp::audit {

namespace {

void violation(AuditReport& report, const std::string& object,
               const std::string& field, std::string expected,
               std::string actual, std::uint64_t set = kNoIndex,
               std::uint64_t bank = kNoIndex) {
  Violation entry;
  entry.structure = Structure::Component;
  entry.object = object;
  entry.field = field;
  entry.set = set;
  entry.bank = bank;
  entry.expected = std::move(expected);
  entry.actual = std::move(actual);
  report.violations.push_back(std::move(entry));
}

/// ++checks, and records a violation when `ok` is false.
void check(AuditReport& report, bool ok, const std::string& object,
           const std::string& field, const std::string& expected,
           const std::string& actual, std::uint64_t set = kNoIndex,
           std::uint64_t bank = kNoIndex) {
  ++report.checks;
  if (!ok) violation(report, object, field, expected, actual, set, bank);
}

}  // namespace

void ComponentAuditor::run(const noc::Noc& noc, AuditReport& report) {
  const noc::NocConfig& config = noc.config_;
  check(report, config.num_cores > 0 && config.num_banks > 0, "noc",
        "geometry", "non-zero cores and banks",
        std::to_string(config.num_cores) + " cores, " +
            std::to_string(config.num_banks) + " banks");
  check(report, config.cycles_per_hop > 0 && config.max_hops >= 1, "noc",
        "latency_model", "non-zero hop latency and max_hops >= 1",
        std::to_string(config.cycles_per_hop) + " cycles/hop, max " +
            std::to_string(config.max_hops) + " hops");
  check(report, config.bank_busy_cycles > 0, "noc", "bank_service",
        "non-zero bank occupancy",
        std::to_string(config.bank_busy_cycles) + " cycles");
  check(report, noc.bank_free_at_.size() == config.num_banks, "noc",
        "bank_occupancy", std::to_string(config.num_banks) + " entries",
        std::to_string(noc.bank_free_at_.size()) + " entries");
  check(report, noc.stats_.bank_requests.size() == config.num_banks, "noc",
        "bank_requests", std::to_string(config.num_banks) + " counters",
        std::to_string(noc.stats_.bank_requests.size()) + " counters");
  for (CoreId core = 0; core < config.num_cores; ++core) {
    for (BankId bank = 0; bank < config.num_banks; ++bank) {
      const std::uint32_t hops = noc.hops(core, bank);
      check(report, hops >= 1 && hops <= config.max_hops, "noc", "hops",
            "hop distance in [1, " + std::to_string(config.max_hops) + "]",
            std::to_string(hops), kNoIndex, bank);
    }
  }
}

void ComponentAuditor::run(const mem::Dram& dram, AuditReport& report) {
  check(report, dram.config_.access_latency > 0, "dram", "access_latency",
        "non-zero", std::to_string(dram.config_.access_latency));
  check(report, dram.config_.cycles_per_line > 0, "dram", "cycles_per_line",
        "non-zero (zero uncaps channel bandwidth)",
        std::to_string(dram.config_.cycles_per_line));
}

void ComponentAuditor::run(const trace::SyntheticTraceGenerator& generator,
                           AuditReport& report) {
  const trace::GeneratorConfig& config = generator.config_;
  const std::string object = "generator.core" + std::to_string(config.core);
  const std::uint32_t capacity = generator.ring_capacity_;
  check(report,
        capacity > 0 && std::has_single_bit(capacity) &&
            capacity >= config.max_depth,
        object, "ring_capacity",
        "power of two covering max_depth " + std::to_string(config.max_depth),
        std::to_string(capacity));
  check(report, generator.ring_mask_ + 1 == capacity, object, "ring_mask",
        std::to_string(capacity - 1), std::to_string(generator.ring_mask_));
  check(report,
        generator.recency_entries_.size() ==
            std::size_t{config.num_sets} * capacity,
        object, "ring_storage",
        std::to_string(std::size_t{config.num_sets} * capacity) + " entries",
        std::to_string(generator.recency_entries_.size()) + " entries");
  check(report,
        generator.recency_heads_.size() == config.num_sets &&
            generator.recency_sizes_.size() == config.num_sets,
        object, "ring_tables", std::to_string(config.num_sets) + " sets",
        std::to_string(generator.recency_heads_.size()) + " heads, " +
            std::to_string(generator.recency_sizes_.size()) + " sizes");
  // A live batch is legal at an epoch-boundary checkpoint (the caller only
  // quiesces generators before snapshots, and save_state asserts that);
  // what must hold is that the batch is still rewindable.
  if (generator.live_batch_) {
    check(report,
          !generator.undo_log_.empty() &&
              generator.undo_log_.size() <= trace::AccessBatch::kMaxSize &&
              generator.batch_start_block_id_ <= generator.next_block_id_,
          object, "batch_bookkeeping", "live batch with a rewindable undo log",
          std::to_string(generator.undo_log_.size()) + " undo records, start id " +
              std::to_string(generator.batch_start_block_id_) + " vs counter " +
              std::to_string(generator.next_block_id_));
  }
  check(report, std::has_single_bit(config.num_sets), object, "set_geometry",
        "power-of-two num_sets", std::to_string(config.num_sets));
  if (!report.ok()) return;  // geometry is broken; ring walks would be UB
  // Block layout (fresh_block): | core (top 12b) | unique id | set index |.
  const auto set_bits =
      static_cast<std::uint32_t>(std::countr_zero(config.num_sets));
  const std::uint64_t id_mask = (std::uint64_t{1} << (52 - set_bits)) - 1;
  for (std::uint32_t set = 0; set < config.num_sets; ++set) {
    const std::uint32_t head = generator.recency_heads_[set];
    const std::uint32_t size = generator.recency_sizes_[set];
    check(report, head < capacity, object, "ring_head",
          "< " + std::to_string(capacity), std::to_string(head), set);
    check(report, size <= config.max_depth, object, "ring_size",
          "<= " + std::to_string(config.max_depth), std::to_string(size), set);
    if (head >= capacity || size > config.max_depth) continue;
    const BlockAddress* ring =
        generator.recency_entries_.data() + std::size_t{set} * capacity;
    std::set<BlockAddress> seen;
    for (std::uint32_t depth = 0; depth < size; ++depth) {
      const BlockAddress block = ring[(head + depth) & generator.ring_mask_];
      check(report,
            (block & (config.num_sets - 1)) == set &&
                (block >> 52) == config.core,
            object, "ring_addressing",
            "set bits " + std::to_string(set) + ", core stamp " +
                std::to_string(config.core),
            "block " + std::to_string(block), set);
      check(report, ((block >> set_bits) & id_mask) < generator.next_block_id_,
            object, "ring_entry",
            "block id below allocation counter " +
                std::to_string(generator.next_block_id_),
            std::to_string((block >> set_bits) & id_mask), set);
      check(report, seen.insert(block).second, object, "ring_uniqueness",
            "each block at most once per recency window",
            "block " + std::to_string(block) + " duplicated", set);
    }
  }
}

void ComponentAuditor::run(const msa::StackProfiler& profiler,
                           AuditReport& report) {
  const msa::ProfilerConfig& config = profiler.config_;
  const std::uint32_t sampling = std::max(1u, config.set_sampling);
  const std::size_t stacks =
      config.num_sets / sampling + (config.num_sets % sampling ? 1 : 0);
  check(report, profiler.set_mask_ == config.num_sets - 1, "profiler",
        "set_mask", std::to_string(config.num_sets - 1),
        std::to_string(profiler.set_mask_));
  check(report,
        profiler.sample_is_pow2_ == std::has_single_bit(sampling) &&
            (!profiler.sample_is_pow2_ ||
             profiler.sample_mask_ == sampling - 1),
        "profiler", "sampling_mask",
        "pow2 fast path consistent with sampling " + std::to_string(sampling),
        profiler.sample_is_pow2_
            ? "mask " + std::to_string(profiler.sample_mask_)
            : "modulo path");
  check(report,
        profiler.stack_entries_.size() == stacks * config.profiled_ways,
        "profiler", "stack_storage",
        std::to_string(stacks * config.profiled_ways) + " entries",
        std::to_string(profiler.stack_entries_.size()) + " entries");
  check(report, profiler.stack_sizes_.size() == stacks, "profiler",
        "stack_tables", std::to_string(stacks) + " stacks",
        std::to_string(profiler.stack_sizes_.size()) + " stacks");
  for (std::size_t i = 0; i < profiler.stack_sizes_.size(); ++i) {
    check(report, profiler.stack_sizes_[i] <= config.profiled_ways,
          "profiler", "stack_size",
          "<= " + std::to_string(config.profiled_ways),
          std::to_string(profiler.stack_sizes_[i]), i);
  }
  const common::Histogram& histogram = profiler.histogram_;
  check(report,
        histogram.num_bins() == std::size_t{config.profiled_ways} + 1,
        "profiler", "histogram_bins",
        std::to_string(std::size_t{config.profiled_ways} + 1),
        std::to_string(histogram.num_bins()));
  std::uint64_t bin_sum = 0;
  for (const std::uint64_t bin : histogram.bins()) bin_sum += bin;
  check(report, bin_sum == histogram.total(), "profiler", "histogram_total",
        std::to_string(bin_sum), std::to_string(histogram.total()));
  check(report, profiler.sampled_ <= profiler.observed_, "profiler",
        "access_counters",
        "sampled <= observed (" + std::to_string(profiler.observed_) + ")",
        std::to_string(profiler.sampled_));
}

void ComponentAuditor::run(const core::CoreTimer& timer, AuditReport& report) {
  const core::CoreTimerConfig& config = timer.config_;
  const std::string object = "timer.core" + std::to_string(config.core);
  check(report,
        config.base_cpi > 0.0 && config.instructions_per_l2_access > 0.0,
        object, "timing_model", "positive base CPI and gap length",
        std::to_string(config.base_cpi) + " cpi, " +
            std::to_string(config.instructions_per_l2_access) + " insns/gap");
  check(report, config.mlp_window >= 1, object, "mlp_window", ">= 1",
        std::to_string(config.mlp_window));
  check(report, timer.outstanding_.size() <= config.mlp_window, object,
        "inflight_window", "<= " + std::to_string(config.mlp_window),
        std::to_string(timer.outstanding_.size()));
  check(report,
        std::is_heap(timer.outstanding_.begin(), timer.outstanding_.end(),
                     std::greater<>{}),
        object, "inflight_heap", "min-heap on completion time", "not a heap");
  check(report, timer.time_ >= timer.mark_time_, object, "clock_marks",
        "time >= mark (" + std::to_string(timer.mark_time_) + ")",
        std::to_string(timer.time_));
  check(report, timer.instructions_ >= timer.mark_instructions_, object,
        "instruction_marks",
        "instructions >= mark (" + std::to_string(timer.mark_instructions_) +
            ")",
        std::to_string(timer.instructions_));
}

void ComponentAuditor::run(const obs::TimeSeries& series,
                           AuditReport& report) {
  std::set<std::size_t> handles;
  for (const auto& [name, handle] : series.index_) {
    check(report, handle < series.columns_.size(), "epoch_series",
          "handle_range",
          "handle < " + std::to_string(series.columns_.size()),
          name + " -> " + std::to_string(handle));
    check(report, handles.insert(handle).second, "epoch_series",
          "handle_uniqueness", "one column per interned name",
          name + " shares handle " + std::to_string(handle));
  }
  check(report, handles.size() == series.columns_.size(), "epoch_series",
        "column_ownership",
        std::to_string(series.columns_.size()) + " interned columns",
        std::to_string(handles.size()) + " handles");
  for (std::size_t i = 0; i < series.columns_.size(); ++i) {
    check(report, series.columns_[i].size() <= series.epochs_, "epoch_series",
          "column_length", "<= " + std::to_string(series.epochs_) + " epochs",
          std::to_string(series.columns_[i].size()) + " samples", i);
  }
}

AuditReport audit_noc_fabric(const noc::Noc& noc) {
  AuditReport report;
  ComponentAuditor::run(noc, report);
  return report;
}

AuditReport audit_dram_channel(const mem::Dram& dram) {
  AuditReport report;
  ComponentAuditor::run(dram, report);
  return report;
}

AuditReport audit_trace_generator(
    const trace::SyntheticTraceGenerator& generator) {
  AuditReport report;
  ComponentAuditor::run(generator, report);
  return report;
}

AuditReport audit_stack_profiler(const msa::StackProfiler& profiler) {
  AuditReport report;
  ComponentAuditor::run(profiler, report);
  return report;
}

AuditReport audit_core_timer(const core::CoreTimer& timer) {
  AuditReport report;
  ComponentAuditor::run(timer, report);
  return report;
}

AuditReport audit_epoch_series(const obs::TimeSeries& series) {
  AuditReport report;
  ComponentAuditor::run(series, report);
  return report;
}

}  // namespace bacp::audit
