#include "audit/sampling_audit.hpp"

#include <string>
#include <vector>

namespace bacp::audit {

namespace {

void violation(AuditReport& report, std::string field, std::string expected,
               std::string actual, std::uint64_t slot = kNoIndex) {
  Violation entry;
  entry.structure = Structure::Sampling;
  entry.object = "sampling_plan";
  entry.field = std::move(field);
  entry.set = slot;  // medoid slot (or interval index) in the set coordinate
  entry.expected = std::move(expected);
  entry.actual = std::move(actual);
  report.violations.push_back(std::move(entry));
}

}  // namespace

AuditReport audit_sampling_plan(const SamplingPlanInput& plan) {
  AuditReport report;

  // Shape first: a plan with no population or no representatives cannot be
  // checked further, and k > num_intervals means clustering produced more
  // clusters than points.
  ++report.checks;
  if (plan.num_intervals == 0) {
    violation(report, "interval_count", "at least one interval", "0");
    return report;
  }
  ++report.checks;
  if (plan.k == 0 || plan.k > plan.num_intervals) {
    violation(report, "k_range", "0 < k <= " + std::to_string(plan.num_intervals),
              std::to_string(plan.k));
    return report;
  }
  ++report.checks;
  if (plan.medoids.size() != plan.k) {
    violation(report, "medoid_set_size", std::to_string(plan.k) + " medoids",
              std::to_string(plan.medoids.size()) + " medoids");
    return report;
  }

  // Medoids: every representative is a real interval, and the list is
  // strictly ascending — which both fixes the simulation order (the engine
  // fast-forwards between medoids in index order) and excludes duplicates.
  for (std::size_t slot = 0; slot < plan.medoids.size(); ++slot) {
    ++report.checks;
    if (plan.medoids[slot] >= plan.num_intervals) {
      violation(report, "medoid_range",
                "medoid < " + std::to_string(plan.num_intervals),
                "medoid " + std::to_string(plan.medoids[slot]), slot);
    }
    ++report.checks;
    if (slot > 0 && plan.medoids[slot] <= plan.medoids[slot - 1]) {
      violation(report, "medoid_order", "strictly ascending medoid indices",
                std::to_string(plan.medoids[slot]) + " after " +
                    std::to_string(plan.medoids[slot - 1]),
                slot);
    }
  }
  if (!report.ok()) return report;

  // Assignment: every interval maps to an existing medoid slot, and each
  // medoid represents itself (a medoid belonging to another cluster would
  // mean the clustering's own representative is not its nearest medoid).
  ++report.checks;
  if (plan.assignment.size() != plan.num_intervals) {
    violation(report, "assignment_size",
              std::to_string(plan.num_intervals) + " assigned intervals",
              std::to_string(plan.assignment.size()) + " assigned");
    return report;
  }
  for (std::uint32_t interval = 0; interval < plan.num_intervals; ++interval) {
    ++report.checks;
    if (plan.assignment[interval] >= plan.k) {
      violation(report, "assignment_range", "slot < " + std::to_string(plan.k),
                "interval " + std::to_string(interval) + " assigned slot " +
                    std::to_string(plan.assignment[interval]),
                interval);
    }
  }
  if (!report.ok()) return report;
  for (std::size_t slot = 0; slot < plan.medoids.size(); ++slot) {
    ++report.checks;
    if (plan.assignment[plan.medoids[slot]] != slot) {
      violation(report, "medoid_self_assignment",
                "medoid " + std::to_string(plan.medoids[slot]) + " assigned slot " +
                    std::to_string(slot),
                "assigned slot " +
                    std::to_string(plan.assignment[plan.medoids[slot]]),
                slot);
    }
  }

  // Weights: slot w carries exactly its assignment population, and the
  // populations cover the whole run — the extrapolation is a partition of
  // the intervals, so no phase is dropped or double-counted.
  ++report.checks;
  if (plan.weights.size() != plan.k) {
    violation(report, "weight_set_size", std::to_string(plan.k) + " weights",
              std::to_string(plan.weights.size()) + " weights");
    return report;
  }
  std::vector<std::uint64_t> population(plan.k, 0);
  for (const std::uint32_t slot : plan.assignment) ++population[slot];
  std::uint64_t total = 0;
  for (std::size_t slot = 0; slot < plan.weights.size(); ++slot) {
    ++report.checks;
    if (plan.weights[slot] != population[slot]) {
      violation(report, "weight_match",
                "weight " + std::to_string(population[slot]) + " (cluster population)",
                "weight " + std::to_string(plan.weights[slot]), slot);
    }
    total += plan.weights[slot];
  }
  ++report.checks;
  if (report.ok() && total != plan.num_intervals) {
    violation(report, "weight_coverage",
              std::to_string(plan.num_intervals) + " intervals covered",
              std::to_string(total) + " covered");
  }

  return report;
}

}  // namespace bacp::audit
