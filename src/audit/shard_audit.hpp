#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "audit/audit.hpp"

namespace bacp::audit {

/// What one Monte-Carlo shard artifact claims about itself, stripped to the
/// facts the merge-legality audit needs. The audit layer stays independent
/// of the harness: harness::shard_io builds these from parsed artifacts and
/// the auditor never sees file formats or trial payloads.
struct ShardMergeInput {
  std::uint32_t shards = 0;    ///< shard count the run was split into
  std::uint32_t shard_id = 0;  ///< this shard's position in [0, shards)
  std::uint64_t trials = 0;    ///< total trials of the *unsharded* sweep
  std::uint64_t config_digest = 0;  ///< sweep-config fingerprint
  std::vector<std::uint64_t> trial_indices;  ///< trials this shard carries
};

/// Merge-legality audit over a set of shard artifacts: the shards agree on
/// the sweep shape (shards / trials / config digest); every shard id in
/// [0, shards) appears exactly once; each carried trial index is in range,
/// owned by its shard (trial % shards == shard_id, so no mix can be
/// double-counted), strictly ascending within the shard, and the union
/// covers every trial of the unsharded sweep exactly once. Violations are
/// data, not aborts — the merge step decides to refuse.
AuditReport audit_shard_merge(std::span<const ShardMergeInput> shards);

}  // namespace bacp::audit
