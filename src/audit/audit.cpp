#include "audit/audit.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <utility>

#include "cache/set_assoc_cache.hpp"
#include "coherence/moesi.hpp"
#include "nuca/dnuca_cache.hpp"
#include "partition/partition_types.hpp"

namespace bacp::audit {

const char* to_string(Structure structure) {
  switch (structure) {
    case Structure::Cache: return "cache";
    case Structure::Nuca: return "nuca";
    case Structure::Directory: return "directory";
    case Structure::Partition: return "partition";
    case Structure::Cross: return "cross";
    case Structure::Snapshot: return "snapshot";
    case Structure::Sched: return "sched";
    case Structure::Shard: return "shard";
    case Structure::Sampling: return "sampling";
    case Structure::Component: return "component";
    case Structure::Pool: return "pool";
  }
  return "?";
}

std::string Violation::to_string() const {
  std::ostringstream oss;
  oss << "structure=" << audit::to_string(structure) << " object=" << object
      << " field=" << field;
  if (bank != kNoIndex) oss << " bank=" << bank;
  if (set != kNoIndex) oss << " set=" << set;
  oss << ": expected " << expected << ", actual " << actual;
  return oss.str();
}

void AuditReport::merge(AuditReport other) {
  checks += other.checks;
  violations.insert(violations.end(),
                    std::make_move_iterator(other.violations.begin()),
                    std::make_move_iterator(other.violations.end()));
}

std::string AuditReport::to_string() const {
  if (ok()) return "";
  constexpr std::size_t kMaxListed = 32;
  std::ostringstream oss;
  oss << violations.size() << " violation(s) in " << checks << " checks";
  const std::size_t listed = std::min(violations.size(), kMaxListed);
  for (std::size_t i = 0; i < listed; ++i) {
    oss << "\n  " << violations[i].to_string();
  }
  if (violations.size() > kMaxListed) {
    oss << "\n  ... " << (violations.size() - kMaxListed) << " more";
  }
  return oss.str();
}

namespace {

/// Collects into `report`; every check() call counts one evaluated
/// invariant so kill-tests can assert the auditor actually looked.
class Collector {
 public:
  Collector(AuditReport& report, Structure structure, std::string object)
      : report_(&report), structure_(structure), object_(std::move(object)) {}

  /// Evaluates one invariant; on failure records a violation located at
  /// (bank, set) with the given field and expected/actual rendering.
  bool check(bool condition, const char* field, std::uint64_t bank, std::uint64_t set,
             std::string expected, std::string actual) {
    ++report_->checks;
    if (!condition) {
      Violation violation;
      violation.structure = structure_;
      violation.object = object_;
      violation.field = field;
      violation.set = set;
      violation.bank = bank;
      violation.expected = std::move(expected);
      violation.actual = std::move(actual);
      report_->violations.push_back(std::move(violation));
    }
    return condition;
  }

 private:
  AuditReport* report_;
  Structure structure_;
  std::string object_;
};

std::string u64_str(std::uint64_t value) { return std::to_string(value); }

std::string hex_str(std::uint64_t value) {
  std::ostringstream oss;
  oss << "0x" << std::hex << value;
  return oss.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// SetAssocCache
// ---------------------------------------------------------------------------

void CacheAuditor::run(const cache::SetAssocCache& cache, AuditReport& report) {
  using cache::SetAssocCache;
  const auto& config = cache.config_;
  Collector out(report, Structure::Cache, config.name);

  const std::uint64_t way_bits =
      config.ways >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << config.ways) - 1);

  // Way masks: one per way, each non-zero, and the derived per-core
  // owned-way bitmaps agree with them.
  out.check(cache.way_masks_.size() == config.ways, "way_masks", kNoIndex, kNoIndex,
            u64_str(config.ways) + " masks", u64_str(cache.way_masks_.size()));
  for (WayIndex way = 0; way < cache.way_masks_.size(); ++way) {
    out.check(cache.way_masks_[way] != 0, "way_masks", kNoIndex, way,
              "non-zero owner mask", "0");
  }
  for (CoreId core = 0; core < cache.owned_ways_.size(); ++core) {
    std::uint64_t derived = 0;
    for (WayIndex way = 0; way < cache.way_masks_.size(); ++way) {
      if ((cache.way_masks_[way] & core_bit(core)) != 0) {
        derived |= std::uint64_t{1} << way;
      }
    }
    out.check(cache.owned_ways_[core] == derived, "owned_ways", kNoIndex, core,
              hex_str(derived), hex_str(cache.owned_ways_[core]));
  }

  for (std::uint32_t set = 0; set < config.num_sets; ++set) {
    const auto& meta = cache.meta_[set];

    // Bitmask hygiene: no bits beyond the way count, dirty only on valid.
    out.check((meta.valid & ~way_bits) == 0, "valid_mask", kNoIndex, set,
              "bits within " + u64_str(config.ways) + " ways", hex_str(meta.valid));
    out.check((meta.dirty & ~meta.valid) == 0, "dirty_mask", kNoIndex, set,
              "dirty subset of valid " + hex_str(meta.valid), hex_str(meta.dirty));

    // LRU byte-links: walking next-links from head must visit every way
    // exactly once and end at tail, with prev-links mirroring each hop.
    std::uint64_t visited = 0;
    std::uint32_t steps = 0;
    std::uint8_t way = meta.head;
    std::uint8_t prev = SetAssocCache::kNil;
    bool links_ok = true;
    while (way != SetAssocCache::kNil && steps <= config.ways) {
      if (way >= config.ways || ((visited >> way) & 1) != 0) {
        links_ok = out.check(false, "lru_links", kNoIndex, set,
                             "permutation walk of " + u64_str(config.ways) + " ways",
                             "revisits or out-of-range way " + u64_str(way));
        break;
      }
      const std::uint8_t linked_prev = cache.links_[cache.link_index(set, way)];
      if (linked_prev != prev) {
        links_ok = out.check(false, "lru_links", kNoIndex, set,
                             "prev(" + u64_str(way) + ") == " + u64_str(prev),
                             u64_str(linked_prev));
        break;
      }
      visited |= std::uint64_t{1} << way;
      ++steps;
      prev = way;
      way = cache.links_[cache.link_index(set, way) + 1];
    }
    if (links_ok) {
      out.check(visited == way_bits && steps == config.ways, "lru_links", kNoIndex,
                set, "all " + u64_str(config.ways) + " ways visited",
                u64_str(steps) + " visited, mask " + hex_str(visited));
      out.check(meta.tail == prev, "lru_links", kNoIndex, set,
                "tail == last-walked way " + u64_str(prev), u64_str(meta.tail));
    }

    // Tag/allocator columns vs. the valid bitmask.
    for (WayIndex w = 0; w < config.ways; ++w) {
      const std::size_t index = cache.line_index(set, w);
      if (((meta.valid >> w) & 1) != 0) {
        out.check(cache.set_index(cache.tags_[index]) == set, "tags", kNoIndex, set,
                  "tag maps to set " + u64_str(set),
                  "block " + hex_str(cache.tags_[index]) + " maps to set " +
                      u64_str(cache.set_index(cache.tags_[index])));
        out.check(cache.allocators_[index] != kInvalidCore &&
                      cache.allocators_[index] < config.num_cores,
                  "allocator", kNoIndex, set, "valid core id for valid line",
                  u64_str(cache.allocators_[index]));
      } else {
        out.check(cache.allocators_[index] == kInvalidCore, "allocator", kNoIndex,
                  set, "kInvalidCore on invalid line",
                  u64_str(cache.allocators_[index]));
      }
    }
  }
}

AuditReport audit_cache(const cache::SetAssocCache& cache) {
  AuditReport report;
  CacheAuditor::run(cache, report);
  return report;
}

// ---------------------------------------------------------------------------
// DnucaCache
// ---------------------------------------------------------------------------

void NucaAuditor::run(const nuca::DnucaCache& cache, AuditReport& report) {
  const auto& geometry = cache.config_.geometry;
  Collector out(report, Structure::Nuca, "dnuca");

  std::uint64_t resident_lines = 0;
  for (BankId bank = 0; bank < cache.banks_.size(); ++bank) {
    CacheAuditor::run(cache.banks_[bank], report);

    // Forward direction: every valid line in every bank is indexed at its
    // exact {bank, way}. Together with the reverse walk and the size
    // equality below this makes the index exactly the resident set — the
    // membership structure can be neither stale nor lossy.
    const auto& bank_cache = cache.banks_[bank];
    const auto& config = bank_cache.config();
    for (std::uint32_t set = 0; set < config.num_sets; ++set) {
      for (WayIndex way = 0; way < config.ways; ++way) {
        const auto line = bank_cache.line_at(set, way);
        if (!line.valid) continue;
        ++resident_lines;
        const auto* location = cache.residency_.find(line.block);
        if (!out.check(location != nullptr, "residency_index", bank, set,
                       "entry for resident block " + hex_str(line.block),
                       "missing")) {
          continue;
        }
        out.check(location->bank == bank && location->way == way,
                  "residency_index", bank, set,
                  "{" + u64_str(bank) + "," + u64_str(way) + "}",
                  "{" + u64_str(location->bank) + "," + u64_str(location->way) + "}");
      }
    }
  }

  // Reverse direction: every index entry points at a matching valid line.
  cache.residency_.for_each([&](std::uint64_t block,
                                const nuca::DnucaCache::Location& location) {
    if (!out.check(location.bank < cache.banks_.size(), "residency_index",
                   location.bank, kNoIndex,
                   "bank < " + u64_str(cache.banks_.size()), u64_str(location.bank))) {
      return;
    }
    const auto& bank_cache = cache.banks_[location.bank];
    const auto& config = bank_cache.config();
    const std::uint32_t set = bank_cache.set_index(block);
    if (!out.check(location.way < config.ways, "residency_index", location.bank, set,
                   "way < " + u64_str(config.ways), u64_str(location.way))) {
      return;
    }
    const auto line = bank_cache.line_at(set, location.way);
    out.check(line.valid && line.block == block, "residency_index", location.bank,
              set, "valid line holding " + hex_str(block),
              line.valid ? "holds " + hex_str(line.block) : "invalid line");
  });
  out.check(cache.residency_.size() == resident_lines, "residency_index", kNoIndex,
            kNoIndex, u64_str(resident_lines) + " entries",
            u64_str(cache.residency_.size()));

  // Views: right shape, no out-of-range or duplicate banks, and the
  // flattened core x bank position table matches them bidirectionally.
  out.check(cache.views_.size() == geometry.num_cores, "views", kNoIndex, kNoIndex,
            u64_str(geometry.num_cores) + " views", u64_str(cache.views_.size()));
  out.check(cache.round_robin_.size() == geometry.num_cores, "round_robin", kNoIndex,
            kNoIndex, u64_str(geometry.num_cores) + " cursors",
            u64_str(cache.round_robin_.size()));
  for (CoreId core = 0; core < cache.views_.size(); ++core) {
    const auto& view = cache.views_[core];
    out.check(!view.empty(), "views", kNoIndex, core, "non-empty view", "empty");
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < view.size(); ++i) {
      const BankId bank = view[i];
      if (!out.check(bank < geometry.num_banks && ((seen >> bank) & 1) == 0, "views",
                     bank, core, "unique in-range bank", u64_str(bank))) {
        continue;
      }
      seen |= std::uint64_t{1} << bank;
      out.check(cache.view_position(core, bank) == i, "view_pos", bank, core,
                u64_str(i), u64_str(cache.view_position(core, bank)));
    }
    for (BankId bank = 0; bank < geometry.num_banks; ++bank) {
      if (((seen >> bank) & 1) == 0) {
        out.check(cache.view_position(core, bank) == nuca::DnucaCache::kNotInView,
                  "view_pos", bank, core, "kNotInView for bank outside view",
                  u64_str(cache.view_position(core, bank)));
      }
    }
  }
}

AuditReport audit_nuca(const nuca::DnucaCache& cache) {
  AuditReport report;
  NucaAuditor::run(cache, report);
  return report;
}

// ---------------------------------------------------------------------------
// MoesiDirectory
// ---------------------------------------------------------------------------

void DirectoryAuditor::run(const coherence::MoesiDirectory& directory,
                           AuditReport& report) {
  using coherence::MoesiDirectory;
  using coherence::MoesiState;
  Collector out(report, Structure::Directory, "directory");

  const CoreMask valid_cores = directory.num_cores_ >= 32
                                   ? ~CoreMask{0}
                                   : ((CoreMask{1} << directory.num_cores_) - 1);
  directory.entries_.for_each([&](std::uint64_t block,
                                  const MoesiDirectory::Entry& entry) {
    // Entries exist only while some L1 holds a copy, and sharer vectors are
    // exact — so an empty or out-of-range sharer mask is corruption.
    out.check(entry.sharers != 0, "sharers", kNoIndex, block,
              "at least one sharer while tracked", "0");
    out.check((entry.sharers & ~valid_cores) == 0, "sharers", kNoIndex, block,
              "sharers within " + u64_str(directory.num_cores_) + " cores",
              hex_str(entry.sharers));

    if (entry.owner == MoesiDirectory::kNoOwner) {
      // No owner token: all copies are plain Shared.
      out.check(entry.owner_state == MoesiState::Invalid, "owner_state", kNoIndex,
                block, "Invalid without an owner",
                coherence::to_string(entry.owner_state));
      return;
    }
    if (!out.check(entry.owner < directory.num_cores_, "owner", kNoIndex, block,
                   "owner < " + u64_str(directory.num_cores_),
                   u64_str(entry.owner))) {
      return;
    }
    out.check((entry.sharers & core_bit(entry.owner)) != 0, "owner", kNoIndex, block,
              "owner holds its own sharer bit", hex_str(entry.sharers));
    // Exactly one ownership token, in an ownership state.
    out.check(entry.owner_state == MoesiState::Exclusive ||
                  entry.owner_state == MoesiState::Owned ||
                  entry.owner_state == MoesiState::Modified,
              "owner_state", kNoIndex, block, "E, O or M for an owner",
              coherence::to_string(entry.owner_state));
    if (entry.owner_state == MoesiState::Exclusive ||
        entry.owner_state == MoesiState::Modified) {
      // E and M are sole-copy states: a second sharer is a forged copy that
      // would let two cores observe divergent data.
      out.check(entry.sharers == core_bit(entry.owner), "exclusive_sharers",
                kNoIndex, block,
                "only owner " + u64_str(entry.owner) + " in state " +
                    coherence::to_string(entry.owner_state),
                hex_str(entry.sharers));
    }
  });
}

AuditReport audit_directory(const coherence::MoesiDirectory& directory) {
  AuditReport report;
  DirectoryAuditor::run(directory, report);
  return report;
}

// ---------------------------------------------------------------------------
// Partition plans
// ---------------------------------------------------------------------------

AuditReport audit_partition(const partition::CmpGeometry& geometry,
                            const partition::BankAssignment& assignment,
                            const partition::Allocation* allocation) {
  AuditReport report;
  Collector out(report, Structure::Partition, "plan");

  const CoreMask all_cores = geometry.num_cores >= 32
                                 ? ~CoreMask{0}
                                 : ((CoreMask{1} << geometry.num_cores) - 1);
  out.check(assignment.way_masks.size() == geometry.num_banks, "way_masks", kNoIndex,
            kNoIndex, u64_str(geometry.num_banks) + " banks",
            u64_str(assignment.way_masks.size()));

  bool fully_partitioned = true;
  std::vector<WayCount> way_sums(geometry.num_cores, 0);
  for (BankId bank = 0; bank < assignment.way_masks.size(); ++bank) {
    const auto& masks = assignment.way_masks[bank];
    out.check(masks.size() == geometry.ways_per_bank, "way_masks", bank, kNoIndex,
              u64_str(geometry.ways_per_bank) + " ways", u64_str(masks.size()));
    for (WayIndex way = 0; way < masks.size(); ++way) {
      const CoreMask mask = masks[way];
      // Full coverage: an orphaned way is capacity silently lost.
      out.check(mask != 0, "way_masks", bank, way, "non-zero owner mask", "0");
      // Policies emit single-owner ways or the all-cores shared baseline;
      // any other sharing pattern is not a plan either policy can produce.
      out.check(std::popcount(mask) == 1 || (mask & all_cores) == all_cores,
                "way_masks", bank, way, "single owner or all cores shared",
                hex_str(mask));
      if (std::popcount(mask) != 1) fully_partitioned = false;
      for (CoreId core = 0; core < geometry.num_cores; ++core) {
        if ((mask & core_bit(core)) != 0) ++way_sums[core];
      }
    }
  }

  if (allocation != nullptr) {
    out.check(allocation->ways_per_core.size() == geometry.num_cores, "allocation",
              kNoIndex, kNoIndex, u64_str(geometry.num_cores) + " cores",
              u64_str(allocation->ways_per_core.size()));
    for (CoreId core = 0;
         core < std::min<std::size_t>(way_sums.size(), allocation->ways_per_core.size());
         ++core) {
      out.check(way_sums[core] == allocation->ways_per_core[core], "way_sum",
                kNoIndex, core, u64_str(allocation->ways_per_core[core]) + " ways",
                u64_str(way_sums[core]));
    }
  }
  if (fully_partitioned) {
    // Disjoint plans cover every way exactly once and obey the paper's
    // 9/16 maximum-capacity rule (Section III-A).
    WayCount total = 0;
    for (const WayCount sum : way_sums) total += sum;
    out.check(total == geometry.total_ways(), "way_sum", kNoIndex, kNoIndex,
              u64_str(geometry.total_ways()) + " total ways", u64_str(total));
    for (CoreId core = 0; core < way_sums.size(); ++core) {
      out.check(way_sums[core] <= geometry.max_assignable_ways(), "max_cap", kNoIndex,
                core, "<= " + u64_str(geometry.max_assignable_ways()),
                u64_str(way_sums[core]));
    }
  }

  // Bank lists: core c lists bank b iff c owns at least one way in b.
  out.check(assignment.banks_of_core.size() == geometry.num_cores, "banks_of_core",
            kNoIndex, kNoIndex, u64_str(geometry.num_cores) + " bank lists",
            u64_str(assignment.banks_of_core.size()));
  for (CoreId core = 0; core < assignment.banks_of_core.size(); ++core) {
    std::uint64_t listed = 0;
    for (const BankId bank : assignment.banks_of_core[core]) {
      if (!out.check(bank < geometry.num_banks && ((listed >> bank) & 1) == 0,
                     "banks_of_core", bank, core, "unique in-range bank",
                     u64_str(bank))) {
        continue;
      }
      listed |= std::uint64_t{1} << bank;
    }
    for (BankId bank = 0;
         bank < std::min<std::size_t>(geometry.num_banks, assignment.way_masks.size());
         ++bank) {
      bool owns = false;
      for (const CoreMask mask : assignment.way_masks[bank]) {
        owns = owns || (mask & core_bit(core)) != 0;
      }
      out.check(owns == (((listed >> bank) & 1) != 0), "banks_of_core", bank, core,
                owns ? "listed (owns ways)" : "absent (owns none)",
                ((listed >> bank) & 1) != 0 ? "listed" : "absent");
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Cross-structure
// ---------------------------------------------------------------------------

void NucaAuditor::cross_check(const SystemView& view, AuditReport& report) {
  if (view.l2 == nullptr || view.allocation == nullptr) return;
  Collector out(report, Structure::Cross, "l2-partition");
  const auto& cache = *view.l2;
  const auto& geometry = cache.config_.geometry;
  // The installed bank way-masks must sum to the allocation the policy
  // reported — otherwise the simulated partitioning and every per-core
  // `allocated_ways` statistic describe different machines.
  out.check(view.allocation->ways_per_core.size() == geometry.num_cores,
            "allocation", kNoIndex, kNoIndex, u64_str(geometry.num_cores) + " cores",
            u64_str(view.allocation->ways_per_core.size()));
  for (CoreId core = 0;
       core < std::min<std::size_t>(geometry.num_cores,
                                    view.allocation->ways_per_core.size());
       ++core) {
    WayCount owned = 0;
    for (BankId bank = 0; bank < cache.banks_.size(); ++bank) {
      owned += cache.banks_[bank].ways_owned(core);
    }
    out.check(owned == view.allocation->ways_per_core[core], "way_sum", kNoIndex,
              core, u64_str(view.allocation->ways_per_core[core]) + " ways",
              u64_str(owned));
  }
}

void DirectoryAuditor::cross_check(const SystemView& view, AuditReport& report) {
  if (view.directory == nullptr || view.l1s.empty()) return;
  using coherence::MoesiDirectory;
  Collector out(report, Structure::Cross, "directory-l1");
  const auto& directory = *view.directory;

  // L1 -> directory (and L1 -> L2 inclusion): every valid L1 line is
  // tracked with its core's sharer bit, and — the inclusive hierarchy's
  // defining property — still resident in the L2.
  std::uint64_t l1_lines = 0;
  for (CoreId core = 0; core < view.l1s.size(); ++core) {
    for (const auto& line : view.l1s[core].resident_lines()) {
      ++l1_lines;
      out.check((directory.sharers_of(line.block) & core_bit(core)) != 0, "sharers",
                kNoIndex, core,
                "sharer bit for L1-resident block " + hex_str(line.block),
                hex_str(directory.sharers_of(line.block)));
      if (view.l2 != nullptr) {
        out.check(view.l2->resident(line.block), "inclusion", kNoIndex, core,
                  "L2-resident copy of L1 block " + hex_str(line.block),
                  "not resident");
      }
    }
  }

  // Directory -> L1: every sharer bit corresponds to a resident L1 line.
  // With both directions clean, sum(popcount(sharers)) == total L1 lines —
  // the directory's copy-token count is conserved.
  std::uint64_t tokens = 0;
  directory.entries_.for_each([&](std::uint64_t block,
                                  const MoesiDirectory::Entry& entry) {
    tokens += static_cast<std::uint64_t>(std::popcount(entry.sharers));
    for (CoreId core = 0; core < view.l1s.size(); ++core) {
      if ((entry.sharers & core_bit(core)) == 0) continue;
      out.check(view.l1s[core].probe(block), "sharers", kNoIndex, core,
                "L1-resident copy of tracked block " + hex_str(block),
                "not in L1");
    }
  });
  out.check(tokens == l1_lines, "copy_tokens", kNoIndex, kNoIndex,
            u64_str(l1_lines) + " (total L1 lines)", u64_str(tokens));
}

AuditReport audit_system_components(const SystemView& view) {
  AuditReport report;
  if (view.l2 != nullptr) NucaAuditor::run(*view.l2, report);
  for (const auto& l1 : view.l1s) CacheAuditor::run(l1, report);
  if (view.directory != nullptr) DirectoryAuditor::run(*view.directory, report);
  NucaAuditor::cross_check(view, report);
  DirectoryAuditor::cross_check(view, report);
  return report;
}

}  // namespace bacp::audit
