#include "audit/snapshot_audit.hpp"

#include <cstring>
#include <span>
#include <string>
#include <utility>

#include "snapshot/snapshot.hpp"

namespace bacp::audit {
namespace {

std::uint64_t read_u64(const std::uint8_t* at) {
  std::uint64_t value;
  std::memcpy(&value, at, sizeof(value));
  return value;
}

std::uint32_t read_u32(const std::uint8_t* at) {
  std::uint32_t value;
  std::memcpy(&value, at, sizeof(value));
  return value;
}

/// Collects into `report`; every check() call counts one evaluated
/// invariant, pass or fail (mirrors the Checker in audit.cpp).
class SnapshotChecker {
 public:
  explicit SnapshotChecker(AuditReport& report) : report_(&report) {}

  bool check(bool ok, std::string object, std::string field, std::string expected,
             std::string actual) {
    ++report_->checks;
    if (!ok) {
      Violation violation;
      violation.structure = Structure::Snapshot;
      violation.object = std::move(object);
      violation.field = std::move(field);
      violation.expected = std::move(expected);
      violation.actual = std::move(actual);
      report_->violations.push_back(std::move(violation));
    }
    return ok;
  }

 private:
  AuditReport* report_;
};

}  // namespace

AuditReport audit_snapshot(const snapshot::SystemSnapshot& snapshot) {
  namespace snap = bacp::snapshot;
  AuditReport report;
  SnapshotChecker checker(report);
  // data(): a memory-mapped bank entry is audited against the mapped pages
  // themselves, so every checksum below reads the exact bytes a restore
  // would — the fail-closed gate for truncated or bit-rotted maps.
  const std::span<const std::uint8_t> bytes = snapshot.data();

  if (!checker.check(bytes.size() >= snap::kHeaderBytes, "snapshot", "min_size",
                     ">= " + std::to_string(snap::kHeaderBytes) + " bytes",
                     std::to_string(bytes.size()) + " bytes")) {
    return report;  // nothing past the (absent) header is interpretable
  }

  const std::uint64_t magic = read_u64(bytes.data());
  checker.check(magic == snap::kMagic, "snapshot", "magic",
                std::to_string(snap::kMagic), std::to_string(magic));
  const std::uint32_t version = read_u32(bytes.data() + 8);
  checker.check(version == snap::kVersion, "snapshot", "version",
                std::to_string(snap::kVersion), std::to_string(version));

  const std::uint32_t count = read_u32(bytes.data() + 12);
  if (!checker.check(count <= snap::kMaxSections, "snapshot", "section_count",
                     "<= " + std::to_string(snap::kMaxSections),
                     std::to_string(count))) {
    return report;  // a bogus count poisons every table offset below
  }
  const std::uint64_t payload_offset =
      snap::kHeaderBytes + std::uint64_t{count} * snap::kTableEntryBytes;
  if (!checker.check(bytes.size() >= payload_offset, "snapshot", "table_bounds",
                     ">= " + std::to_string(payload_offset) + " bytes",
                     std::to_string(bytes.size()) + " bytes")) {
    return report;
  }

  std::uint64_t expected_offset = payload_offset;
  std::uint32_t previous_id = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint8_t* entry = bytes.data() + snap::kHeaderBytes +
                                std::uint64_t{i} * snap::kTableEntryBytes;
    const std::uint32_t id = read_u32(entry);
    const std::uint64_t offset = read_u64(entry + 8);
    const std::uint64_t length = read_u64(entry + 16);
    const std::uint64_t checksum = read_u64(entry + 24);
    const std::string object =
        "section[" + std::to_string(i) + "]." +
        snap::to_string(static_cast<snap::SectionId>(id));

    checker.check(id > previous_id, object, "section_order",
                  "id > " + std::to_string(previous_id), std::to_string(id));
    previous_id = id;
    checker.check(offset == expected_offset, object, "section_offset",
                  std::to_string(expected_offset), std::to_string(offset));
    if (!checker.check(offset <= bytes.size() && length <= bytes.size() - offset,
                       object, "section_bounds",
                       "within " + std::to_string(bytes.size()) + " bytes",
                       "offset " + std::to_string(offset) + " length " +
                           std::to_string(length))) {
      return report;  // cannot checksum a payload outside the buffer
    }
    const std::span<const std::uint8_t> payload(bytes.data() + offset, length);
    checker.check(snap::fnv1a(payload) == checksum, object, "checksum",
                  std::to_string(checksum), std::to_string(snap::fnv1a(payload)));
    expected_offset = offset + length;
  }

  checker.check(bytes.size() == expected_offset, "snapshot", "trailing_bytes",
                std::to_string(expected_offset) + " bytes total",
                std::to_string(bytes.size()) + " bytes total");
  return report;
}

}  // namespace bacp::audit
