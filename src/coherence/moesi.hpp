#pragma once

#include <cstdint>

#include "common/flat_hash.hpp"
#include "common/types.hpp"
#include "obs/metrics.hpp"

namespace bacp::audit {
class DirectoryAuditor;
}  // namespace bacp::audit

namespace bacp::snapshot {
class Writer;
class Reader;
}  // namespace bacp::snapshot

namespace bacp::coherence {

/// MOESI state of a block *at a particular L1*. The directory is the
/// authority; L1s are modelled as obedient caches (the simulator routes all
/// fills/evictions through the directory, so states can never diverge).
enum class MoesiState : std::uint8_t {
  Invalid,
  Shared,     ///< clean copy, others may share
  Exclusive,  ///< clean sole copy
  Owned,      ///< dirty copy, responsible for data, others may share
  Modified,   ///< dirty sole copy
};

const char* to_string(MoesiState state);

/// Messages/side-effects one coherence event produced; the simulator turns
/// these into L1 invalidations and L2/DRAM writebacks.
struct CoherenceAction {
  std::uint32_t invalidations = 0;  ///< invalidate messages sent to L1s
  std::uint32_t interventions = 0;  ///< data forwarded from a dirty owner L1
  bool writeback_below = false;     ///< dirty data pushed to the level below
};

struct CoherenceStats {
  std::uint64_t read_fills = 0;
  std::uint64_t write_fills = 0;
  std::uint64_t upgrades = 0;         ///< write fill that found the S copy
  std::uint64_t invalidations = 0;
  std::uint64_t interventions = 0;
  std::uint64_t inclusion_recalls = 0;  ///< L1 copies recalled by L2 evictions
  std::uint64_t writebacks = 0;
};

/// Exports under "coherence.": one counter per CoherenceStats field.
void export_stats(const CoherenceStats& stats, obs::Registry& registry);

/// Directory-based MOESI protocol for the inclusive L2 (the paper's memory
/// timing model uses "a detailed message-based model of the inter-chip
/// network using a MOESI cache coherence protocol"). One entry exists per
/// block with at least one L1 copy; sharer vectors are exact.
class MoesiDirectory {
 public:
  explicit MoesiDirectory(std::uint32_t num_cores);

  /// Pre-sizes the entry table for the expected number of simultaneously
  /// tracked blocks (at most the total L1 line count: an entry exists only
  /// while some L1 holds a copy). Keeps the steady-state load factor low —
  /// directory entries churn on every L1 fill/evict, and probe/backward-
  /// shift chains grow sharply as the table fills.
  void reserve(std::size_t blocks) { entries_.reserve(blocks); }

  /// L1 of `core` fills the block for a load.
  CoherenceAction on_l1_read_fill(BlockAddress block, CoreId core);

  /// L1 of `core` fills/upgrades the block for a store: all other copies
  /// are invalidated and the requestor becomes Modified.
  CoherenceAction on_l1_write_fill(BlockAddress block, CoreId core);

  /// L1 of `core` evicts its copy. `dirty` distinguishes PutM/PutO from a
  /// silent clean eviction.
  CoherenceAction on_l1_evict(BlockAddress block, CoreId core, bool dirty);

  /// The L2 evicted the block: inclusion recalls every L1 copy; a dirty
  /// owner's data must accompany the line to memory.
  CoherenceAction on_l2_evict(BlockAddress block);

  /// State of the block at `core` (Invalid if untracked).
  MoesiState state_at(BlockAddress block, CoreId core) const;

  /// Cores currently holding the block in L1.
  CoreMask sharers_of(BlockAddress block) const;

  std::size_t tracked_blocks() const { return entries_.size(); }
  const CoherenceStats& stats() const { return stats_; }
  void clear_stats() { stats_ = CoherenceStats{}; }

  /// Rewinds the directory to its just-constructed state: every entry
  /// dropped (the table's slab is kept — no reallocation) and statistics
  /// zeroed. Snapshot bytes after reset match a fresh directory's.
  void reset_in_place() {
    entries_.clear();
    clear_stats();
  }

  /// Serializes every directory entry (in key order, so identical state is
  /// identical bytes) plus statistics. Restore asserts the core-count echo.
  void save_state(snapshot::Writer& writer) const;
  void restore_state(snapshot::Reader& reader);

 private:
  /// The structural auditor walks raw entries for state-legality checks;
  /// the test peer forges illegal states for the auditor's kill-tests.
  friend class audit::DirectoryAuditor;
  friend struct DirectoryTestPeer;

  /// Byte-wide owner id keeps Entry at 6 bytes so a directory hash slot
  /// (block + Entry + occupied flag) packs into 16 — four slots per cache
  /// line on a table that spans every L1-resident block.
  static constexpr std::uint8_t kNoOwner = 0xFF;

  struct Entry {
    CoreMask sharers = 0;
    std::uint8_t owner = kNoOwner;         ///< core in E/O/M, if any
    MoesiState owner_state = MoesiState::Invalid;
  };

  // NOLINTNEXTLINE(bacp-reset-fields): immutable geometry echo; pinned at construction, never rewound
  std::uint32_t num_cores_;
  // Open-addressing table: directory entries come and go on every L1
  // fill/evict, and std::unordered_map's node allocation churn on that path
  // was one of the hottest costs in the whole simulator.
  common::FlatHash64<Entry> entries_;
  CoherenceStats stats_;
};

}  // namespace bacp::coherence
