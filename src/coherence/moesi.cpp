#include "coherence/moesi.hpp"

#include <bit>

#include "common/assert.hpp"

namespace bacp::coherence {

const char* to_string(MoesiState state) {
  switch (state) {
    case MoesiState::Invalid: return "I";
    case MoesiState::Shared: return "S";
    case MoesiState::Exclusive: return "E";
    case MoesiState::Owned: return "O";
    case MoesiState::Modified: return "M";
  }
  return "?";
}

MoesiDirectory::MoesiDirectory(std::uint32_t num_cores) : num_cores_(num_cores) {
  BACP_ASSERT(num_cores_ >= 1 && num_cores_ <= 32, "1..32 cores supported");
}

CoherenceAction MoesiDirectory::on_l1_read_fill(BlockAddress block, CoreId core) {
  BACP_DASSERT(core < num_cores_, "core out of range");
  ++stats_.read_fills;
  CoherenceAction action;
  Entry& entry = entries_.find_or_emplace(block);
  const CoreMask bit = core_bit(core);
  if ((entry.sharers & bit) != 0) return action;  // already has a copy

  if (entry.sharers == 0) {
    // Sole copy: grant Exclusive (silent-upgrade-friendly, as in MOESI).
    entry.sharers = bit;
    entry.owner = static_cast<std::uint8_t>(core);
    entry.owner_state = MoesiState::Exclusive;
    return action;
  }

  if (entry.owner != kNoOwner) {
    switch (entry.owner_state) {
      case MoesiState::Modified:
        // Dirty owner forwards data and transitions M -> O.
        entry.owner_state = MoesiState::Owned;
        action.interventions = 1;
        ++stats_.interventions;
        break;
      case MoesiState::Owned:
        action.interventions = 1;
        ++stats_.interventions;
        break;
      case MoesiState::Exclusive:
        // Clean owner degrades E -> S; data supplied by the L2.
        entry.owner = kNoOwner;
        entry.owner_state = MoesiState::Invalid;
        break;
      default:
        BACP_ASSERT(false, "owner in non-ownership state");
    }
  }
  entry.sharers |= bit;
  return action;
}

CoherenceAction MoesiDirectory::on_l1_write_fill(BlockAddress block, CoreId core) {
  BACP_DASSERT(core < num_cores_, "core out of range");
  ++stats_.write_fills;
  CoherenceAction action;
  Entry& entry = entries_.find_or_emplace(block);
  const CoreMask bit = core_bit(core);

  if ((entry.sharers & bit) != 0 && entry.sharers != bit) ++stats_.upgrades;

  const CoreMask others = entry.sharers & ~bit;
  action.invalidations = static_cast<std::uint32_t>(std::popcount(others));
  stats_.invalidations += action.invalidations;
  if (entry.owner != kNoOwner && entry.owner != core &&
      (entry.owner_state == MoesiState::Modified ||
       entry.owner_state == MoesiState::Owned)) {
    // Dirty remote owner forwards its data with the invalidation.
    action.interventions = 1;
    ++stats_.interventions;
  }
  entry.sharers = bit;
  entry.owner = static_cast<std::uint8_t>(core);
  entry.owner_state = MoesiState::Modified;
  return action;
}

CoherenceAction MoesiDirectory::on_l1_evict(BlockAddress block, CoreId core, bool dirty) {
  BACP_DASSERT(core < num_cores_, "core out of range");
  CoherenceAction action;
  Entry* found = entries_.find(block);
  if (found == nullptr) return action;
  Entry& entry = *found;
  const CoreMask bit = core_bit(core);
  if ((entry.sharers & bit) == 0) return action;

  if (entry.owner == core) {
    const bool was_dirty = entry.owner_state == MoesiState::Modified ||
                           entry.owner_state == MoesiState::Owned;
    BACP_ASSERT(was_dirty == dirty || entry.owner_state == MoesiState::Exclusive,
                "L1 dirty bit disagrees with directory ownership state");
    if (was_dirty) {
      action.writeback_below = true;
      ++stats_.writebacks;
    }
    entry.owner = kNoOwner;
    entry.owner_state = MoesiState::Invalid;
  }
  entry.sharers &= ~bit;
  if (entry.sharers == 0) entries_.erase(block);
  return action;
}

CoherenceAction MoesiDirectory::on_l2_evict(BlockAddress block) {
  CoherenceAction action;
  Entry* found = entries_.find(block);
  if (found == nullptr) return action;
  Entry& entry = *found;
  action.invalidations = static_cast<std::uint32_t>(std::popcount(entry.sharers));
  stats_.inclusion_recalls += action.invalidations;
  if (entry.owner != kNoOwner &&
      (entry.owner_state == MoesiState::Modified ||
       entry.owner_state == MoesiState::Owned)) {
    action.writeback_below = true;
    ++stats_.writebacks;
  }
  entries_.erase(block);
  return action;
}

MoesiState MoesiDirectory::state_at(BlockAddress block, CoreId core) const {
  const Entry* found = entries_.find(block);
  if (found == nullptr) return MoesiState::Invalid;
  const Entry& entry = *found;
  if ((entry.sharers & core_bit(core)) == 0) return MoesiState::Invalid;
  if (entry.owner == core) return entry.owner_state;
  return MoesiState::Shared;
}

CoreMask MoesiDirectory::sharers_of(BlockAddress block) const {
  const Entry* found = entries_.find(block);
  return found == nullptr ? 0 : found->sharers;
}

void export_stats(const CoherenceStats& stats, obs::Registry& registry) {
  registry.counter("coherence.read_fills").set(stats.read_fills);
  registry.counter("coherence.write_fills").set(stats.write_fills);
  registry.counter("coherence.upgrades").set(stats.upgrades);
  registry.counter("coherence.invalidations").set(stats.invalidations);
  registry.counter("coherence.interventions").set(stats.interventions);
  registry.counter("coherence.inclusion_recalls").set(stats.inclusion_recalls);
  registry.counter("coherence.writebacks").set(stats.writebacks);
}

}  // namespace bacp::coherence
