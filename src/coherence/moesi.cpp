#include "coherence/moesi.hpp"

#include <algorithm>
#include <bit>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "snapshot/codec.hpp"

namespace bacp::coherence {

const char* to_string(MoesiState state) {
  switch (state) {
    case MoesiState::Invalid: return "I";
    case MoesiState::Shared: return "S";
    case MoesiState::Exclusive: return "E";
    case MoesiState::Owned: return "O";
    case MoesiState::Modified: return "M";
  }
  return "?";
}

MoesiDirectory::MoesiDirectory(std::uint32_t num_cores) : num_cores_(num_cores) {
  BACP_ASSERT(num_cores_ >= 1 && num_cores_ <= 32, "1..32 cores supported");
}

CoherenceAction MoesiDirectory::on_l1_read_fill(BlockAddress block, CoreId core) {
  BACP_DASSERT(core < num_cores_, "core out of range");
  ++stats_.read_fills;
  CoherenceAction action;
  Entry& entry = entries_.find_or_emplace(block);
  const CoreMask bit = core_bit(core);
  if ((entry.sharers & bit) != 0) return action;  // already has a copy

  if (entry.sharers == 0) {
    // Sole copy: grant Exclusive (silent-upgrade-friendly, as in MOESI).
    entry.sharers = bit;
    entry.owner = static_cast<std::uint8_t>(core);
    entry.owner_state = MoesiState::Exclusive;
    return action;
  }

  if (entry.owner != kNoOwner) {
    switch (entry.owner_state) {
      case MoesiState::Modified:
        // Dirty owner forwards data and transitions M -> O.
        entry.owner_state = MoesiState::Owned;
        action.interventions = 1;
        ++stats_.interventions;
        break;
      case MoesiState::Owned:
        action.interventions = 1;
        ++stats_.interventions;
        break;
      case MoesiState::Exclusive:
        // Clean owner degrades E -> S; data supplied by the L2.
        entry.owner = kNoOwner;
        entry.owner_state = MoesiState::Invalid;
        break;
      default:
        BACP_ASSERT(false, "owner in non-ownership state");
    }
  }
  entry.sharers |= bit;
  return action;
}

CoherenceAction MoesiDirectory::on_l1_write_fill(BlockAddress block, CoreId core) {
  BACP_DASSERT(core < num_cores_, "core out of range");
  ++stats_.write_fills;
  CoherenceAction action;
  Entry& entry = entries_.find_or_emplace(block);
  const CoreMask bit = core_bit(core);

  if ((entry.sharers & bit) != 0 && entry.sharers != bit) ++stats_.upgrades;

  const CoreMask others = entry.sharers & ~bit;
  action.invalidations = static_cast<std::uint32_t>(std::popcount(others));
  stats_.invalidations += action.invalidations;
  if (entry.owner != kNoOwner && entry.owner != core &&
      (entry.owner_state == MoesiState::Modified ||
       entry.owner_state == MoesiState::Owned)) {
    // Dirty remote owner forwards its data with the invalidation.
    action.interventions = 1;
    ++stats_.interventions;
  }
  entry.sharers = bit;
  entry.owner = static_cast<std::uint8_t>(core);
  entry.owner_state = MoesiState::Modified;
  return action;
}

CoherenceAction MoesiDirectory::on_l1_evict(BlockAddress block, CoreId core, bool dirty) {
  BACP_DASSERT(core < num_cores_, "core out of range");
  CoherenceAction action;
  Entry* found = entries_.find(block);
  if (found == nullptr) return action;
  Entry& entry = *found;
  const CoreMask bit = core_bit(core);
  if ((entry.sharers & bit) == 0) return action;

  if (entry.owner == core) {
    const bool was_dirty = entry.owner_state == MoesiState::Modified ||
                           entry.owner_state == MoesiState::Owned;
    BACP_ASSERT(was_dirty == dirty || entry.owner_state == MoesiState::Exclusive,
                "L1 dirty bit disagrees with directory ownership state");
    if (was_dirty) {
      action.writeback_below = true;
      ++stats_.writebacks;
    }
    entry.owner = kNoOwner;
    entry.owner_state = MoesiState::Invalid;
  }
  entry.sharers &= ~bit;
  if (entry.sharers == 0) entries_.erase(block);
  return action;
}

CoherenceAction MoesiDirectory::on_l2_evict(BlockAddress block) {
  CoherenceAction action;
  Entry* found = entries_.find(block);
  if (found == nullptr) return action;
  Entry& entry = *found;
  action.invalidations = static_cast<std::uint32_t>(std::popcount(entry.sharers));
  stats_.inclusion_recalls += action.invalidations;
  if (entry.owner != kNoOwner &&
      (entry.owner_state == MoesiState::Modified ||
       entry.owner_state == MoesiState::Owned)) {
    action.writeback_below = true;
    ++stats_.writebacks;
  }
  entries_.erase(block);
  return action;
}

MoesiState MoesiDirectory::state_at(BlockAddress block, CoreId core) const {
  const Entry* found = entries_.find(block);
  if (found == nullptr) return MoesiState::Invalid;
  const Entry& entry = *found;
  if ((entry.sharers & core_bit(core)) == 0) return MoesiState::Invalid;
  if (entry.owner == core) return entry.owner_state;
  return MoesiState::Shared;
}

CoreMask MoesiDirectory::sharers_of(BlockAddress block) const {
  const Entry* found = entries_.find(block);
  return found == nullptr ? 0 : found->sharers;
}

void export_stats(const CoherenceStats& stats, obs::Registry& registry) {
  registry.counter("coherence.read_fills").set(stats.read_fills);
  registry.counter("coherence.write_fills").set(stats.write_fills);
  registry.counter("coherence.upgrades").set(stats.upgrades);
  registry.counter("coherence.invalidations").set(stats.invalidations);
  registry.counter("coherence.interventions").set(stats.interventions);
  registry.counter("coherence.inclusion_recalls").set(stats.inclusion_recalls);
  registry.counter("coherence.writebacks").set(stats.writebacks);
}

void MoesiDirectory::save_state(snapshot::Writer& writer) const {
  writer.u32(num_cores_);
  // FlatHash64 iteration order depends on insertion history; sort by key so
  // identical directory contents serialize to identical bytes.
  std::vector<std::pair<std::uint64_t, Entry>> entries;
  entries.reserve(entries_.size());
  entries_.for_each([&entries](std::uint64_t key, const Entry& entry) {
    entries.emplace_back(key, entry);
  });
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  writer.u64(entries.size());
  for (const auto& [key, entry] : entries) {
    writer.u64(key);
    writer.u32(entry.sharers);
    writer.u8(entry.owner);
    writer.u8(static_cast<std::uint8_t>(entry.owner_state));
  }
  writer.u64(stats_.read_fills);
  writer.u64(stats_.write_fills);
  writer.u64(stats_.upgrades);
  writer.u64(stats_.invalidations);
  writer.u64(stats_.interventions);
  writer.u64(stats_.inclusion_recalls);
  writer.u64(stats_.writebacks);
}

void MoesiDirectory::restore_state(snapshot::Reader& reader) {
  BACP_ASSERT(reader.u32() == num_cores_, "snapshot num_cores mismatch");
  // clear() keeps capacity (System reserved the maximum L1 line count), so
  // reinserting never grows the table.
  entries_.clear();
  const std::uint64_t entry_count = reader.u64();
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    const std::uint64_t key = reader.u64();
    Entry entry;
    entry.sharers = reader.u32();
    entry.owner = reader.u8();
    entry.owner_state = static_cast<MoesiState>(reader.u8());
    entries_.insert_or_assign(key, entry);
  }
  stats_.read_fills = reader.u64();
  stats_.write_fills = reader.u64();
  stats_.upgrades = reader.u64();
  stats_.invalidations = reader.u64();
  stats_.interventions = reader.u64();
  stats_.inclusion_recalls = reader.u64();
  stats_.writebacks = reader.u64();
}

}  // namespace bacp::coherence
