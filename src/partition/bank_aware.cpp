#include "partition/bank_aware.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"
#include "partition/marginal_utility.hpp"

namespace bacp::partition {

namespace {

/// Optimal 16-way split of two adjacent Local banks between a pair of
/// cores: the (w, 16-w) with minimal combined projected misses, each core
/// keeping at least one way. Ties prefer the balanced 8/8 split (least
/// perturbation of the private baseline).
struct PairSplit {
  WayCount first_ways = 8;
  double combined_misses = 0.0;
};

PairSplit best_pair_split(const msa::MissRatioCurve& first,
                          const msa::MissRatioCurve& second, WayCount pair_ways) {
  PairSplit best;
  best.combined_misses = std::numeric_limits<double>::infinity();
  for (WayCount w = 1; w <= pair_ways - 1; ++w) {
    const double misses = first.miss_count(w) + second.miss_count(pair_ways - w);
    const WayCount half = pair_ways / 2;
    const bool better =
        misses < best.combined_misses ||
        (misses == best.combined_misses &&
         (w > half ? w - half : half - w) <
             (best.first_ways > half ? best.first_ways - half : half - best.first_ways));
    if (better) {
      best.combined_misses = misses;
      best.first_ways = w;
    }
  }
  return best;
}

/// Shared core of both bank_aware_capacity overloads — Boxes 1-5, the
/// decision half of the algorithm. No per-bank data structures are built
/// here; the lowering consumes the returned decisions separately.
template <typename CurveAt>
BankAwareCapacity bank_aware_capacity_impl(const CmpGeometry& geometry,
                                           std::size_t num_curves,
                                           const CurveAt& curve_at) {
  geometry.validate();
  BACP_ASSERT(num_curves == geometry.num_cores, "one curve per core");
  const WayCount bank_ways = geometry.ways_per_bank;
  const WayCount max_ways = geometry.max_assignable_ways();

  BankAwareCapacity result;
  auto& ways = result.allocation.ways_per_core;
  // "For the calculations, we assume that each Local bank is assigned to
  // the associated processor."
  ways.assign(geometry.num_cores, bank_ways);
  auto& center_count = result.center_banks_per_core;
  center_count.assign(geometry.num_cores, 0);

  // --- Boxes 1-2: hand out every Center bank by maximum Marginal Utility,
  // under the 9/16 capacity clamp (Rule 1: banks whole; Rule 2 is implied
  // by the Local-bank presumption above). The utility is evaluated with
  // lookahead over *multiple* whole banks — MU(n) = dMiss/n maximized over
  // n = 1..k banks — so a working set spanning several banks (zero benefit
  // from the first bank alone, large benefit from three) still attracts
  // capacity; the winner receives one bank per iteration and keeps winning
  // until its lookahead target is reached.
  for (std::uint32_t granted = 0; granted < geometry.num_center_banks(); ++granted) {
    const std::uint32_t banks_left = geometry.num_center_banks() - granted;
    CoreId winner = kInvalidCore;
    double winner_mu = -1.0;
    double winner_misses = -1.0;
    for (CoreId core = 0; core < geometry.num_cores; ++core) {
      if (ways[core] + bank_ways > max_ways) continue;
      const auto headroom_banks = std::min<std::uint32_t>(
          banks_left, (max_ways - ways[core]) / bank_ways);
      double mu = 0.0;
      for (std::uint32_t k = 1; k <= headroom_banks; ++k) {
        mu = std::max(mu, marginal_utility(curve_at(core), ways[core],
                                           k * bank_ways));
      }
      const double misses = curve_at(core).miss_count(ways[core]);
      const bool better = winner == kInvalidCore || mu > winner_mu ||
                          (mu == winner_mu && misses > winner_misses);
      if (better) {
        winner = core;
        winner_mu = mu;
        winner_misses = misses;
      }
    }
    BACP_ASSERT(winner != kInvalidCore,
                "capacity clamp made a center bank unassignable");
    ways[winner] += bank_ways;
    ++center_count[winner];
  }

  // --- Box 3: cores holding Center banks are complete.
  std::vector<bool> complete(geometry.num_cores, false);
  for (CoreId core = 0; core < geometry.num_cores; ++core) {
    if (center_count[core] > 0) complete[core] = true;
  }

  // --- Boxes 4-5: deferred pairing over the remaining Local banks.
  auto incomplete_cores = [&] {
    std::vector<CoreId> cores;
    for (CoreId core = 0; core < geometry.num_cores; ++core) {
      if (!complete[core]) cores.push_back(core);
    }
    return cores;
  };

  while (true) {
    const auto pending = incomplete_cores();
    if (pending.empty()) break;
    if (pending.size() == 1) {
      complete[pending.front()] = true;  // nobody left to pair with
      break;
    }

    // Max Marginal Utility of growing beyond the own Local bank, limited to
    // what a pair could ever provide (partner keeps >= 1 way).
    CoreId hungry = kInvalidCore;
    double hungry_mu = 0.0;
    for (CoreId core : pending) {
      const auto mu =
          max_marginal_utility(curve_at(core), ways[core], bank_ways - 1);
      if (mu.extra != 0 && mu.utility > hungry_mu) {
        hungry = core;
        hungry_mu = mu.utility;
      }
    }
    if (hungry == kInvalidCore) {
      // No incomplete core benefits from more capacity: everyone keeps the
      // private Local bank.
      for (CoreId core : pending) complete[core] = true;
      break;
    }

    // Overflow into an adjacent Local region: resolve the ideal pair now
    // (Box 5 - "make the best pairing choice once it is decided a processor
    // should receive a fraction of an adjacent Local bank").
    std::optional<CoreId> partner;
    PairSplit partner_split;
    for (const CoreId candidate : pending) {
      if (candidate == hungry || !geometry.adjacent(hungry, candidate)) continue;
      const auto split =
          best_pair_split(curve_at(hungry), curve_at(candidate), 2 * bank_ways);
      if (!partner || split.combined_misses < partner_split.combined_misses) {
        partner = candidate;
        partner_split = split;
      }
    }
    if (!partner) {
      // Both neighbours are already complete; the core keeps its own bank.
      complete[hungry] = true;
      continue;
    }

    ways[hungry] = partner_split.first_ways;
    ways[*partner] = 2 * bank_ways - partner_split.first_ways;
    complete[hungry] = true;
    complete[*partner] = true;
    result.pairs.push_back({hungry, *partner, partner_split.first_ways,
                            static_cast<WayCount>(2 * bank_ways - partner_split.first_ways)});
  }

  BACP_ASSERT(result.allocation.total() == geometry.total_ways(),
              "bank-aware allocation must cover the cache");
  return result;
}

}  // namespace

BankAwareCapacity bank_aware_capacity(const CmpGeometry& geometry,
                                      std::span<const msa::MissRatioCurve> curves) {
  return bank_aware_capacity_impl(
      geometry, curves.size(),
      [&](CoreId core) -> const msa::MissRatioCurve& { return curves[core]; });
}

BankAwareCapacity bank_aware_capacity(
    const CmpGeometry& geometry,
    std::span<const msa::MissRatioCurve* const> curves) {
  return bank_aware_capacity_impl(
      geometry, curves.size(),
      [&](CoreId core) -> const msa::MissRatioCurve& { return *curves[core]; });
}

BankAwareResult bank_aware_lowering(const CmpGeometry& geometry,
                                    BankAwareCapacity capacity) {
  const WayCount bank_ways = geometry.ways_per_bank;
  const auto& center_count = capacity.center_banks_per_core;
  BACP_ASSERT(center_count.size() == geometry.num_cores,
              "capacity decision core count mismatch");

  BankAwareResult result;
  result.allocation = std::move(capacity.allocation);
  result.pairs = std::move(capacity.pairs);

  // --- Lowering: pick physical Center banks nearest each holder, then
  // emit per-bank way masks.
  result.center_banks_of_core.assign(geometry.num_cores, {});
  {
    std::vector<bool> bank_taken(geometry.num_banks, false);
    // Greedy nearest-bank matching, heaviest holders first, keeps partitions
    // physically compact (low NoC hop counts).
    std::vector<CoreId> order(geometry.num_cores);
    for (CoreId core = 0; core < geometry.num_cores; ++core) order[core] = core;
    std::sort(order.begin(), order.end(), [&](CoreId a, CoreId b) {
      return center_count[a] != center_count[b] ? center_count[a] > center_count[b]
                                                : a < b;
    });
    for (const CoreId core : order) {
      for (std::uint32_t k = 0; k < center_count[core]; ++k) {
        BankId best_bank = kInvalidBank;
        std::uint32_t best_distance = 0;
        for (BankId bank = geometry.num_cores; bank < geometry.num_banks; ++bank) {
          if (bank_taken[bank]) continue;
          const std::uint32_t column = bank - geometry.num_cores;
          const std::uint32_t distance =
              column > core ? column - core : core - column;
          if (best_bank == kInvalidBank || distance < best_distance) {
            best_bank = bank;
            best_distance = distance;
          }
        }
        BACP_ASSERT(best_bank != kInvalidBank, "ran out of center banks");
        bank_taken[best_bank] = true;
        result.center_banks_of_core[core].push_back(best_bank);
      }
    }
  }

  auto& masks = result.assignment.way_masks;
  masks.assign(geometry.num_banks, std::vector<CoreMask>(geometry.ways_per_bank, 0));
  result.assignment.banks_of_core.assign(geometry.num_cores, {});

  auto grant_ways = [&](BankId bank, WayIndex first, WayCount count, CoreId core) {
    if (count == 0) return;
    for (WayIndex way = first; way < first + count; ++way) {
      BACP_DASSERT(masks[bank][way] == 0, "way granted twice");
      masks[bank][way] = core_bit(core);
    }
    result.assignment.banks_of_core[core].push_back(bank);
  };

  std::vector<bool> local_done(geometry.num_cores, false);
  for (const auto& pair : result.pairs) {
    // The pair's two Local banks hold first_ways + second_ways ways; fill
    // the first core's ways from its own bank outward (Fig. 5 layout).
    const BankId bank_a = geometry.local_bank(pair.first);
    const BankId bank_b = geometry.local_bank(pair.second);
    const WayCount in_own = std::min(pair.first_ways, bank_ways);
    const WayCount spill = pair.first_ways - in_own;
    grant_ways(bank_a, 0, in_own, pair.first);
    grant_ways(bank_a, in_own, bank_ways - in_own, pair.second);
    grant_ways(bank_b, 0, spill, pair.first);
    grant_ways(bank_b, spill, bank_ways - spill, pair.second);
    local_done[pair.first] = true;
    local_done[pair.second] = true;
  }
  for (CoreId core = 0; core < geometry.num_cores; ++core) {
    if (!local_done[core]) grant_ways(geometry.local_bank(core), 0, bank_ways, core);
    for (const BankId bank : result.center_banks_of_core[core]) {
      grant_ways(bank, 0, bank_ways, core);
    }
  }

  result.assignment.validate_against(geometry, result.allocation);
  return result;
}

BankAwareResult bank_aware_partition(const CmpGeometry& geometry,
                                     std::span<const msa::MissRatioCurve> curves) {
  return bank_aware_lowering(geometry, bank_aware_capacity(geometry, curves));
}

}  // namespace bacp::partition
