#pragma once

#include <span>

#include "partition/partition_types.hpp"

namespace bacp::partition {

/// The *Unrestricted* MSA-based partitioner the paper compares against
/// (Section III-B / IV-A): a fully configurable way-granular split of the
/// whole cache with no banking constraints — in essence Qureshi & Patt's
/// utility-based cache partitioning with lookahead, generalized to N cores.
/// It is the performance envelope: physically unrealizable on a banked
/// DNUCA, but the quality bar the Bank-aware scheme is measured against.
struct UnrestrictedConfig {
  WayCount min_ways_per_core = 1;
  /// 0 means "no cap". The paper's Unrestricted has no 9/16 clamp.
  WayCount max_ways_per_core = 0;
};

/// Partitions `geometry.total_ways()` ways among the cores by iterated
/// maximum Marginal Utility with lookahead. Deterministic: ties break
/// toward the core with more remaining misses, then the lower core id.
///
/// The lookahead scans run through the common::simd::mu_scan kernel and
/// are cached per core as first-wins prefix maxima, so a grant round costs
/// one table lookup per core and one rescan for the winner — identical
/// selections (bit-identical utilities) to the direct per-round scan, at a
/// fraction of the divides.
Allocation unrestricted_partition(const CmpGeometry& geometry,
                                  std::span<const msa::MissRatioCurve> curves,
                                  const UnrestrictedConfig& config = {});

/// Pointer-view overload for hot sweeps: identical algorithm, no curve
/// copies.
Allocation unrestricted_partition(const CmpGeometry& geometry,
                                  std::span<const msa::MissRatioCurve* const> curves,
                                  const UnrestrictedConfig& config = {});

}  // namespace bacp::partition
