#include "partition/unrestricted.hpp"

#include "common/assert.hpp"
#include "partition/marginal_utility.hpp"

namespace bacp::partition {

Allocation unrestricted_partition(const CmpGeometry& geometry,
                                  std::span<const msa::MissRatioCurve> curves,
                                  const UnrestrictedConfig& config) {
  geometry.validate();
  BACP_ASSERT(curves.size() == geometry.num_cores, "one curve per core");
  const WayCount total = geometry.total_ways();
  const WayCount cap =
      config.max_ways_per_core == 0 ? total : config.max_ways_per_core;
  BACP_ASSERT(config.min_ways_per_core * geometry.num_cores <= total,
              "minimum allocations exceed the cache");
  BACP_ASSERT(cap * geometry.num_cores >= total,
              "per-core cap too small to place all ways");

  Allocation allocation;
  allocation.ways_per_core.assign(geometry.num_cores, config.min_ways_per_core);
  WayCount balance =
      total - config.min_ways_per_core * geometry.num_cores;

  while (balance > 0) {
    CoreId winner = kInvalidCore;
    MaxMarginalUtility winner_mu;
    double winner_misses = -1.0;
    for (CoreId core = 0; core < geometry.num_cores; ++core) {
      const WayCount current = allocation.ways_per_core[core];
      const WayCount headroom = std::min<WayCount>(cap - current, balance);
      if (headroom == 0) continue;
      const auto mu = max_marginal_utility(curves[core], current, headroom);
      if (mu.extra == 0) continue;
      const double misses = curves[core].miss_count(current);
      const bool better = winner == kInvalidCore || mu.utility > winner_mu.utility ||
                          (mu.utility == winner_mu.utility && misses > winner_misses);
      if (better) {
        winner = core;
        winner_mu = mu;
        winner_misses = misses;
      }
    }

    if (winner == kInvalidCore) {
      // Every curve is flat from here on: spread the remaining ways
      // round-robin so the full cache is still handed out (a way owned by
      // nobody would be dead capacity).
      for (CoreId core = 0; core < geometry.num_cores && balance > 0; ++core) {
        if (allocation.ways_per_core[core] < cap) {
          ++allocation.ways_per_core[core];
          --balance;
        }
      }
      continue;
    }

    allocation.ways_per_core[winner] += winner_mu.extra;
    balance -= winner_mu.extra;
  }

  BACP_ASSERT(allocation.total() == total, "unrestricted allocation must cover the cache");
  return allocation;
}

}  // namespace bacp::partition
