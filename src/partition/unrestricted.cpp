#include "partition/unrestricted.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"
#include "common/simd.hpp"
#include "partition/marginal_utility.hpp"

namespace bacp::partition {

namespace {

/// Shared core of both unrestricted_partition overloads.
///
/// The direct formulation rescans max_marginal_utility(curve, current,
/// headroom) for every core in every grant round, which is quadratic in
/// the way count (a convex curve grants ~1 way per round). Instead we scan
/// each core's full lookahead window once per allocation level through
/// common::simd::mu_scan and store the first-wins running maximum per
/// depth, so
///   best_mu[h-1] / best_extra[h-1] == max_marginal_utility(curve, current, h)
/// for any headroom h up to the scan depth. A round is then one O(1) table
/// lookup per core; only the winner's table is rebuilt (its allocation
/// changed). The scan replays marginal_utility's exact op sequence and the
/// prefix maximum uses the same strict-greater comparison, so selections —
/// and the resulting allocation — are bit-identical to the direct loop.
template <typename CurveAt>
Allocation unrestricted_partition_impl(const CmpGeometry& geometry,
                                       std::size_t num_curves,
                                       const CurveAt& curve_at,
                                       const UnrestrictedConfig& config) {
  geometry.validate();
  BACP_ASSERT(num_curves == geometry.num_cores, "one curve per core");
  const WayCount total = geometry.total_ways();
  const WayCount cap =
      config.max_ways_per_core == 0 ? total : config.max_ways_per_core;
  BACP_ASSERT(config.min_ways_per_core * geometry.num_cores <= total,
              "minimum allocations exceed the cache");
  BACP_ASSERT(cap * geometry.num_cores >= total,
              "per-core cap too small to place all ways");

  Allocation allocation;
  allocation.ways_per_core.assign(geometry.num_cores, config.min_ways_per_core);
  WayCount balance =
      total - config.min_ways_per_core * geometry.num_cores;

  // Per-core cached lookahead tables, valid while the core's allocation
  // still equals scanned_at[core] (the sentinel total + 1 marks "never
  // scanned"; an allocation can never reach it).
  const std::size_t cores = geometry.num_cores;
  const WayCount kNeverScanned = total + 1;
  std::vector<double> mu_buffer(cap, 0.0);
  std::vector<double> best_mu(cores * cap, 0.0);
  std::vector<WayCount> best_extra(cores * cap, 0);
  std::vector<WayCount> scanned_at(cores, kNeverScanned);

  const auto rescan = [&](CoreId core) {
    const WayCount current = allocation.ways_per_core[core];
    const WayCount depth = cap - current;
    const msa::MissRatioCurve& curve = curve_at(core);
    const auto prefix = curve.prefix_hits();
    common::simd::mu_scan(prefix.data(),
                          static_cast<std::uint32_t>(prefix.size()),
                          curve.total(), current, depth, mu_buffer.data());
    double running = 0.0;
    WayCount running_extra = 0;
    double* bm = best_mu.data() + static_cast<std::size_t>(core) * cap;
    WayCount* be = best_extra.data() + static_cast<std::size_t>(core) * cap;
    for (WayCount n = 1; n <= depth; ++n) {
      if (mu_buffer[n - 1] > running) {
        running = mu_buffer[n - 1];
        running_extra = n;
      }
      bm[n - 1] = running;
      be[n - 1] = running_extra;
    }
    scanned_at[core] = current;
  };

  while (balance > 0) {
    CoreId winner = kInvalidCore;
    MaxMarginalUtility winner_mu;
    double winner_misses = -1.0;
    for (CoreId core = 0; core < geometry.num_cores; ++core) {
      const WayCount current = allocation.ways_per_core[core];
      const WayCount headroom = std::min<WayCount>(cap - current, balance);
      if (headroom == 0) continue;
      if (scanned_at[core] != current) rescan(core);
      const std::size_t slot =
          static_cast<std::size_t>(core) * cap + headroom - 1;
      MaxMarginalUtility mu;
      mu.extra = best_extra[slot];
      mu.utility = best_mu[slot];
      if (mu.extra == 0) continue;
      const double misses = curve_at(core).miss_count(current);
      const bool better = winner == kInvalidCore || mu.utility > winner_mu.utility ||
                          (mu.utility == winner_mu.utility && misses > winner_misses);
      if (better) {
        winner = core;
        winner_mu = mu;
        winner_misses = misses;
      }
    }

    if (winner == kInvalidCore) {
      // Every curve is flat from here on: spread the remaining ways
      // round-robin so the full cache is still handed out (a way owned by
      // nobody would be dead capacity).
      for (CoreId core = 0; core < geometry.num_cores && balance > 0; ++core) {
        if (allocation.ways_per_core[core] < cap) {
          ++allocation.ways_per_core[core];
          --balance;
        }
      }
      continue;
    }

    allocation.ways_per_core[winner] += winner_mu.extra;
    balance -= winner_mu.extra;
  }

  BACP_ASSERT(allocation.total() == total, "unrestricted allocation must cover the cache");
  return allocation;
}

}  // namespace

Allocation unrestricted_partition(const CmpGeometry& geometry,
                                  std::span<const msa::MissRatioCurve> curves,
                                  const UnrestrictedConfig& config) {
  return unrestricted_partition_impl(
      geometry, curves.size(),
      [&](CoreId core) -> const msa::MissRatioCurve& { return curves[core]; },
      config);
}

Allocation unrestricted_partition(const CmpGeometry& geometry,
                                  std::span<const msa::MissRatioCurve* const> curves,
                                  const UnrestrictedConfig& config) {
  return unrestricted_partition_impl(
      geometry, curves.size(),
      [&](CoreId core) -> const msa::MissRatioCurve& { return *curves[core]; },
      config);
}

}  // namespace bacp::partition
