#include "partition/marginal_utility.hpp"

#include "common/assert.hpp"

namespace bacp::partition {

double marginal_utility(const msa::MissRatioCurve& curve, WayCount current,
                        WayCount extra) {
  BACP_ASSERT(extra >= 1, "marginal utility of a zero increment is undefined");
  const double removed = curve.miss_count(current) - curve.miss_count(current + extra);
  return removed / static_cast<double>(extra);
}

MaxMarginalUtility max_marginal_utility(const msa::MissRatioCurve& curve,
                                        WayCount current, WayCount max_extra) {
  MaxMarginalUtility best;
  for (WayCount n = 1; n <= max_extra; ++n) {
    const double mu = marginal_utility(curve, current, n);
    if (mu > best.utility) {
      best.utility = mu;
      best.extra = n;
    }
  }
  return best;
}

}  // namespace bacp::partition
