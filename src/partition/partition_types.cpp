#include "partition/partition_types.hpp"

#include <numeric>

#include "common/assert.hpp"
#include "common/simd.hpp"

namespace bacp::partition {

void CmpGeometry::validate() const {
  BACP_ASSERT(num_cores >= 2, "geometry needs at least two cores");
  BACP_ASSERT(num_banks >= num_cores, "need at least one local bank per core");
  BACP_ASSERT(ways_per_bank >= 1, "banks need at least one way");
}

WayCount Allocation::total() const {
  return std::accumulate(ways_per_core.begin(), ways_per_core.end(), WayCount{0});
}

WayCount BankAssignment::ways_of_core(CoreId core) const {
  const CoreMask bit = core_bit(core);
  WayCount total = 0;
  for (const auto& bank : way_masks) {
    for (CoreMask mask : bank) {
      if ((mask & bit) != 0) ++total;
    }
  }
  return total;
}

void BankAssignment::validate_against(const CmpGeometry& geometry,
                                      const Allocation& allocation) const {
  BACP_ASSERT(way_masks.size() == geometry.num_banks, "one mask vector per bank");
  for (const auto& bank : way_masks) {
    BACP_ASSERT(bank.size() == geometry.ways_per_bank, "one mask per way");
    for (CoreMask mask : bank) {
      BACP_ASSERT(mask != 0, "every way must be owned by at least one core");
    }
  }
  BACP_ASSERT(allocation.ways_per_core.size() == geometry.num_cores,
              "allocation core count mismatch");
  for (CoreId core = 0; core < geometry.num_cores; ++core) {
    BACP_ASSERT(ways_of_core(core) == allocation.ways_per_core[core],
                "bank lowering does not match the way allocation");
  }
}

namespace {

/// Shared core of both projected_total_misses overloads: evaluate the
/// per-core miss counts in fixed-size lanes through the simd kernel, then
/// accumulate strictly in core order. The in-order sum is the determinism
/// contract — only the per-lane lookups are batched.
template <typename CurveAt>
double projected_total_misses_impl(std::size_t count, const CurveAt& curve_at,
                                   std::span<const WayCount> ways) {
  constexpr std::size_t kLanes = 64;
  const double* prefixes[kLanes];
  std::uint32_t sizes[kLanes];
  double totals[kLanes];
  double counts[kLanes];
  double total = 0.0;
  for (std::size_t start = 0; start < count; start += kLanes) {
    const std::size_t lanes = std::min(kLanes, count - start);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const msa::MissRatioCurve& curve = curve_at(start + lane);
      const auto prefix = curve.prefix_hits();
      prefixes[lane] = prefix.data();
      sizes[lane] = static_cast<std::uint32_t>(prefix.size());
      totals[lane] = curve.total();
    }
    common::simd::miss_counts(prefixes, sizes, totals, ways.data() + start, lanes,
                              counts);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      total += counts[lane];
    }
  }
  return total;
}

}  // namespace

double projected_total_misses(std::span<const msa::MissRatioCurve> curves,
                              std::span<const WayCount> ways) {
  BACP_ASSERT(curves.size() == ways.size(), "curves/ways size mismatch");
  return projected_total_misses_impl(
      curves.size(), [&](std::size_t i) -> const msa::MissRatioCurve& {
        return curves[i];
      },
      ways);
}

double projected_total_misses(std::span<const msa::MissRatioCurve* const> curves,
                              std::span<const WayCount> ways) {
  BACP_ASSERT(curves.size() == ways.size(), "curves/ways size mismatch");
  return projected_total_misses_impl(
      curves.size(), [&](std::size_t i) -> const msa::MissRatioCurve& {
        return *curves[i];
      },
      ways);
}

}  // namespace bacp::partition
