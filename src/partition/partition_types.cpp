#include "partition/partition_types.hpp"

#include <numeric>

#include "common/assert.hpp"

namespace bacp::partition {

void CmpGeometry::validate() const {
  BACP_ASSERT(num_cores >= 2, "geometry needs at least two cores");
  BACP_ASSERT(num_banks >= num_cores, "need at least one local bank per core");
  BACP_ASSERT(ways_per_bank >= 1, "banks need at least one way");
}

WayCount Allocation::total() const {
  return std::accumulate(ways_per_core.begin(), ways_per_core.end(), WayCount{0});
}

WayCount BankAssignment::ways_of_core(CoreId core) const {
  const CoreMask bit = core_bit(core);
  WayCount total = 0;
  for (const auto& bank : way_masks) {
    for (CoreMask mask : bank) {
      if ((mask & bit) != 0) ++total;
    }
  }
  return total;
}

void BankAssignment::validate_against(const CmpGeometry& geometry,
                                      const Allocation& allocation) const {
  BACP_ASSERT(way_masks.size() == geometry.num_banks, "one mask vector per bank");
  for (const auto& bank : way_masks) {
    BACP_ASSERT(bank.size() == geometry.ways_per_bank, "one mask per way");
    for (CoreMask mask : bank) {
      BACP_ASSERT(mask != 0, "every way must be owned by at least one core");
    }
  }
  BACP_ASSERT(allocation.ways_per_core.size() == geometry.num_cores,
              "allocation core count mismatch");
  for (CoreId core = 0; core < geometry.num_cores; ++core) {
    BACP_ASSERT(ways_of_core(core) == allocation.ways_per_core[core],
                "bank lowering does not match the way allocation");
  }
}

double projected_total_misses(std::span<const msa::MissRatioCurve> curves,
                              std::span<const WayCount> ways) {
  BACP_ASSERT(curves.size() == ways.size(), "curves/ways size mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < curves.size(); ++i) {
    total += curves[i].miss_count(ways[i]);
  }
  return total;
}

}  // namespace bacp::partition
