#pragma once

#include "partition/partition_types.hpp"

namespace bacp::partition {

/// *Equal-partitions* baseline (paper Section IV-B): private, equal-size
/// partitions — each core owns its Local bank plus one Center bank
/// (16 ways = 2 MB per core in the baseline geometry).
struct StaticPlan {
  Allocation allocation;
  BankAssignment assignment;
};

StaticPlan equal_partition(const CmpGeometry& geometry);

/// *No-partitions* baseline: the whole cache is one shared LRU pool; every
/// way of every bank is replaceable by every core. The Allocation records
/// total_ways for projection bookkeeping is not meaningful here, so
/// ways_per_core is the shared-equivalent (all cores see all ways).
StaticPlan no_partition(const CmpGeometry& geometry);

}  // namespace bacp::partition
