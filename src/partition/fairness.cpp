#include "partition/fairness.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace bacp::partition {

Allocation communist_partition(const CmpGeometry& geometry,
                               std::span<const msa::MissRatioCurve> curves,
                               const CommunistConfig& config) {
  geometry.validate();
  BACP_ASSERT(curves.size() == geometry.num_cores, "one curve per core");
  const WayCount total = geometry.total_ways();
  BACP_ASSERT(config.min_ways_per_core * geometry.num_cores <= total,
              "minimum allocations exceed the cache");

  Allocation allocation;
  allocation.ways_per_core.assign(geometry.num_cores, config.min_ways_per_core);
  WayCount balance = total - config.min_ways_per_core * geometry.num_cores;

  while (balance > 0) {
    // Grant the next way to the currently worst-off core. Ties break to
    // the lower core id for determinism. Note the deliberate absence of a
    // utility test: equalization, not throughput, is the objective.
    CoreId worst = 0;
    double worst_ratio = -1.0;
    for (CoreId core = 0; core < geometry.num_cores; ++core) {
      const double ratio = curves[core].miss_ratio(allocation.ways_per_core[core]);
      if (ratio > worst_ratio) {
        worst_ratio = ratio;
        worst = core;
      }
    }
    ++allocation.ways_per_core[worst];
    --balance;
  }

  BACP_ASSERT(allocation.total() == total, "communist allocation must cover the cache");
  return allocation;
}

double miss_ratio_spread(std::span<const msa::MissRatioCurve> curves,
                         std::span<const WayCount> ways) {
  BACP_ASSERT(curves.size() == ways.size() && !curves.empty(),
              "curves/ways size mismatch");
  double lo = 1.0;
  double hi = 0.0;
  for (std::size_t i = 0; i < curves.size(); ++i) {
    const double ratio = curves[i].miss_ratio(ways[i]);
    lo = std::min(lo, ratio);
    hi = std::max(hi, ratio);
  }
  return hi - lo;
}

}  // namespace bacp::partition
