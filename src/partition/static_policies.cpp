#include "partition/static_policies.hpp"

#include "common/assert.hpp"

namespace bacp::partition {

StaticPlan equal_partition(const CmpGeometry& geometry) {
  geometry.validate();
  BACP_ASSERT(geometry.num_banks % geometry.num_cores == 0,
              "equal partitioning requires banks divisible by cores");
  const std::uint32_t banks_per_core = geometry.num_banks / geometry.num_cores;

  StaticPlan plan;
  plan.allocation.ways_per_core.assign(geometry.num_cores,
                                       banks_per_core * geometry.ways_per_bank);
  plan.assignment.way_masks.assign(
      geometry.num_banks, std::vector<CoreMask>(geometry.ways_per_bank, 0));
  plan.assignment.banks_of_core.assign(geometry.num_cores, {});

  for (CoreId core = 0; core < geometry.num_cores; ++core) {
    // Local bank + the Center bank in the same column: physically the
    // nearest private 2 MB slice.
    const BankId local = geometry.local_bank(core);
    const BankId center = geometry.num_cores + core;
    for (const BankId bank : {local, center}) {
      if (bank >= geometry.num_banks) break;  // geometries without centers
      for (WayIndex way = 0; way < geometry.ways_per_bank; ++way) {
        plan.assignment.way_masks[bank][way] = core_bit(core);
      }
      plan.assignment.banks_of_core[core].push_back(bank);
    }
  }
  plan.assignment.validate_against(geometry, plan.allocation);
  return plan;
}

StaticPlan no_partition(const CmpGeometry& geometry) {
  geometry.validate();
  StaticPlan plan;
  // Shared pool: every core may replace in every way; the "allocation" is
  // the shared-equivalent view (each core can reach all ways).
  plan.allocation.ways_per_core.assign(geometry.num_cores, geometry.total_ways());
  plan.assignment.way_masks.assign(
      geometry.num_banks,
      std::vector<CoreMask>(geometry.ways_per_bank, ~CoreMask{0}));
  plan.assignment.banks_of_core.assign(geometry.num_cores, {});
  for (CoreId core = 0; core < geometry.num_cores; ++core) {
    for (BankId bank = 0; bank < geometry.num_banks; ++bank) {
      plan.assignment.banks_of_core[core].push_back(bank);
    }
  }
  return plan;
}

}  // namespace bacp::partition
