#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "msa/miss_curve.hpp"

namespace bacp::partition {

/// Physical shape of the CMP-DNUCA baseline (paper Fig. 1): a row of cores,
/// each with one *Local* bank physically adjacent, plus an equal number of
/// *Center* banks; every bank is 8-way. Defaults are the paper's 8-core,
/// 16 x 1MB, 128-way-equivalent L2.
struct CmpGeometry {
  std::uint32_t num_cores = 8;
  std::uint32_t num_banks = 16;
  WayCount ways_per_bank = 8;

  WayCount total_ways() const { return num_banks * ways_per_bank; }

  /// Rule cap: no core may be assigned more than 9/16 of the cache (paper
  /// Section III-A: "limits each core to a maximum of 9/16 of the total
  /// cache capacity" — its local bank plus all eight center banks).
  WayCount max_assignable_ways() const { return total_ways() * 9 / 16; }

  std::uint32_t num_local_banks() const { return num_cores; }
  std::uint32_t num_center_banks() const { return num_banks - num_cores; }

  /// Bank ids [0, num_cores) are Local (bank i next to core i);
  /// [num_cores, num_banks) are Center.
  BankId local_bank(CoreId core) const { return core; }
  bool is_center_bank(BankId bank) const { return bank >= num_cores; }
  CoreId local_owner(BankId bank) const { return bank; }  // local banks only

  /// Cores are adjacent iff they are neighbours in the physical row
  /// (Rule 3: local banks may only be shared with an adjacent core).
  bool adjacent(CoreId a, CoreId b) const {
    return (a > b ? a - b : b - a) == 1;
  }

  void validate() const;
};

/// Way-count assignment per core; the common currency of all policies.
struct Allocation {
  std::vector<WayCount> ways_per_core;

  WayCount total() const;
};

/// A realizable lowering of an allocation onto the banked cache: per-bank,
/// per-way core masks (identical across sets within a bank, as in the
/// paper), plus the list of banks making up each core's partition (for the
/// aggregation layer and the NoC placement).
struct BankAssignment {
  /// [bank][way] -> core mask. A mask of ~0 means the way is shared by all
  /// cores (the No-partition baseline).
  std::vector<std::vector<CoreMask>> way_masks;

  /// Banks where core i owns at least one way, in allocation order.
  std::vector<std::vector<BankId>> banks_of_core;

  /// Ways owned by `core` summed over all banks.
  WayCount ways_of_core(CoreId core) const;

  /// Aborts unless every way has a non-zero mask and the per-core totals
  /// match `allocation` (full coverage, no loss).
  void validate_against(const CmpGeometry& geometry, const Allocation& allocation) const;
};

/// Total projected miss count if each core i receives allocation[i] ways,
/// given per-core (already intensity-weighted) miss-ratio curves. The
/// per-core miss counts are evaluated through the batched
/// common::simd::miss_counts kernel; the summation stays strictly in core
/// order — that ordered double sum is pinned by every projected-miss
/// artifact's byte-identity contract and must never be reassociated.
double projected_total_misses(std::span<const msa::MissRatioCurve> curves,
                              std::span<const WayCount> ways);

/// Pointer-view overload for hot sweeps (Monte-Carlo trials index a shared
/// curve bank): identical math and summation order, no curve copies.
double projected_total_misses(std::span<const msa::MissRatioCurve* const> curves,
                              std::span<const WayCount> ways);

}  // namespace bacp::partition
