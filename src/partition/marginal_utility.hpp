#pragma once

#include "common/types.hpp"
#include "msa/miss_curve.hpp"

namespace bacp::partition {

/// Marginal Utility of growing an allocation (paper Section III-C, after
/// Wieser):  MU(n) = (MissRate(c) - MissRate(c + n)) / n
/// i.e. misses removed per additional way. Computed on miss *counts* so
/// cores of different access intensity compete fairly.
double marginal_utility(const msa::MissRatioCurve& curve, WayCount current,
                        WayCount extra);

/// Best increment by lookahead (Qureshi & Patt's UCP refinement): scanning
/// all n in [1, max_extra] rides through locally-flat regions of non-convex
/// miss curves that a single-step greedy would stall on.
struct MaxMarginalUtility {
  WayCount extra = 0;   ///< 0 when no increment reduces misses
  double utility = 0.0;
};

MaxMarginalUtility max_marginal_utility(const msa::MissRatioCurve& curve,
                                        WayCount current, WayCount max_extra);

}  // namespace bacp::partition
