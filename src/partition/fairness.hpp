#pragma once

#include <span>

#include "partition/partition_types.hpp"

namespace bacp::partition {

/// The policy family of Hsu, Reinhardt, Iyer & Makineni, "Communist,
/// Utilitarian, and Capitalist Cache Policies on CMPs" (PACT 2006) — the
/// paper's reference [7] and a standard yardstick for partitioning studies:
///
///  - *Capitalist*: the free market — unmanaged LRU sharing. In this
///    repository that is the No-partition baseline (`no_partition` /
///    PolicyKind::NoPartition).
///  - *Utilitarian*: maximize aggregate utility — minimize total misses.
///    That is exactly `unrestricted_partition`.
///  - *Communist*: equalize per-core performance regardless of aggregate
///    cost. Implemented here: ways are granted one at a time to whichever
///    core currently projects the worst miss ratio, so the allocation
///    converges toward equal miss ratios even when that wastes capacity on
///    incompressible workloads.
///
/// Useful for the ablation that shows where Bank-aware sits between
/// fairness and throughput.
struct CommunistConfig {
  WayCount min_ways_per_core = 1;
};

Allocation communist_partition(const CmpGeometry& geometry,
                               std::span<const msa::MissRatioCurve> curves,
                               const CommunistConfig& config = {});

/// Max-min fairness metric: the spread (max - min) of per-core miss ratios
/// under an allocation. Communist should minimize this among the policies.
double miss_ratio_spread(std::span<const msa::MissRatioCurve> curves,
                         std::span<const WayCount> ways);

}  // namespace bacp::partition
