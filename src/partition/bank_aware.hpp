#pragma once

#include <optional>
#include <span>
#include <vector>

#include "partition/partition_types.hpp"

namespace bacp::partition {

/// Diagnostics of one Bank-aware run (used by tests, the Table III bench
/// and the epoch reporter).
struct BankAwareResult {
  Allocation allocation;
  BankAssignment assignment;

  /// Center banks granted to each core (physical ids), nearest-first.
  std::vector<std::vector<BankId>> center_banks_of_core;

  /// Local-bank sharing pairs resolved in Boxes 4/5, with the split chosen
  /// (ways of the first / second core out of the pair's 16).
  struct Pair {
    CoreId first = kInvalidCore;
    CoreId second = kInvalidCore;
    WayCount first_ways = 0;
    WayCount second_ways = 0;
  };
  std::vector<Pair> pairs;
};

/// The paper's Bank-aware assignment algorithm (Section III-B/C, Fig. 6),
/// honouring the three banking rules:
///   1. Center banks are assigned whole to a single core;
///   2. any core holding Center banks also owns its full Local bank;
///   3. Local banks may be way-shared, but only with the adjacent core.
///
/// Flow: Center banks are handed out one at a time to the core with the
/// maximum Marginal Utility of one more full bank (each core is presumed to
/// own its Local bank during these comparisons, and the 9/16 capacity clamp
/// applies). Cores that received Center banks are then marked complete; the
/// remaining cores resolve their Local banks by deferred pairing — a core
/// whose Marginal Utility demands ways beyond its own Local bank is paired
/// with whichever adjacent incomplete core yields minimal combined misses
/// under the pair's optimal 16-way split.
BankAwareResult bank_aware_partition(const CmpGeometry& geometry,
                                     std::span<const msa::MissRatioCurve> curves);

}  // namespace bacp::partition
