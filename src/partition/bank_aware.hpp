#pragma once

#include <optional>
#include <span>
#include <vector>

#include "partition/partition_types.hpp"

namespace bacp::partition {

/// Diagnostics of one Bank-aware run (used by tests, the Table III bench
/// and the epoch reporter).
struct BankAwareResult {
  Allocation allocation;
  BankAssignment assignment;

  /// Center banks granted to each core (physical ids), nearest-first.
  std::vector<std::vector<BankId>> center_banks_of_core;

  /// Local-bank sharing pairs resolved in Boxes 4/5, with the split chosen
  /// (ways of the first / second core out of the pair's 16).
  struct Pair {
    CoreId first = kInvalidCore;
    CoreId second = kInvalidCore;
    WayCount first_ways = 0;
    WayCount second_ways = 0;
  };
  std::vector<Pair> pairs;
};

/// Capacity-phase output (Boxes 1-5): the way allocation plus the decisions
/// the lowering needs to realize it. Consumers that only compare projected
/// misses (the Monte-Carlo trial loop) stop here and skip the per-bank mask
/// construction entirely.
struct BankAwareCapacity {
  Allocation allocation;

  /// Center banks granted per core (counts only; physical ids are chosen by
  /// the lowering).
  std::vector<std::uint32_t> center_banks_per_core;

  /// Local-bank sharing pairs resolved in Boxes 4/5.
  std::vector<BankAwareResult::Pair> pairs;
};

/// The capacity phase of the paper's Bank-aware assignment algorithm
/// (Section III-B/C, Fig. 6), honouring the three banking rules:
///   1. Center banks are assigned whole to a single core;
///   2. any core holding Center banks also owns its full Local bank;
///   3. Local banks may be way-shared, but only with the adjacent core.
///
/// Flow: Center banks are handed out one at a time to the core with the
/// maximum Marginal Utility of one more full bank (each core is presumed to
/// own its Local bank during these comparisons, and the 9/16 capacity clamp
/// applies). Cores that received Center banks are then marked complete; the
/// remaining cores resolve their Local banks by deferred pairing — a core
/// whose Marginal Utility demands ways beyond its own Local bank is paired
/// with whichever adjacent incomplete core yields minimal combined misses
/// under the pair's optimal 16-way split.
BankAwareCapacity bank_aware_capacity(const CmpGeometry& geometry,
                                      std::span<const msa::MissRatioCurve> curves);

/// Pointer-view overload for hot sweeps: identical algorithm, no curve
/// copies.
BankAwareCapacity bank_aware_capacity(
    const CmpGeometry& geometry,
    std::span<const msa::MissRatioCurve* const> curves);

/// Lowering of a capacity decision onto physical banks: picks the Center
/// banks nearest each holder (greedy, heaviest holders first, for compact
/// partitions / low NoC hop counts) and emits per-bank way masks, validated
/// against the allocation.
BankAwareResult bank_aware_lowering(const CmpGeometry& geometry,
                                    BankAwareCapacity capacity);

/// Capacity phase + lowering in one call (the original full-pipeline entry
/// point; epoch control and the Table III bench still use this).
BankAwareResult bank_aware_partition(const CmpGeometry& geometry,
                                     std::span<const msa::MissRatioCurve> curves);

}  // namespace bacp::partition
