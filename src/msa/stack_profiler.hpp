#pragma once

#include <cstdint>
#include <vector>

#include "common/histogram.hpp"
#include "common/types.hpp"
#include "msa/miss_curve.hpp"

namespace bacp::snapshot {
class Writer;
class Reader;
}  // namespace bacp::snapshot

namespace bacp::audit {
class ComponentAuditor;
}  // namespace bacp::audit

namespace bacp::msa {

/// Hardware-faithful Mattson stack-distance profiler (paper Section III-A).
///
/// One profiler shadows one core's L2 reference stream against a
/// `profiled_ways`-deep LRU stack per monitored set. K+1 counters record
/// hits per stack position plus misses (Fig. 2). The three hardware cost
/// reductions the paper applies are all modelled:
///   - *set sampling* (1-in-N sets monitored; Kessler trace-sampling),
///   - *partial tags*  (width-limited tag compare; aliasing is real here —
///     two blocks hashing alike are confused, exactly the 5%-error source
///     the paper quantifies),
///   - *maximum assignable capacity* (stack only as deep as a core could
///     ever be allocated: 9/16 of the cache in the Bank-aware scheme).
struct ProfilerConfig {
  std::uint32_t num_sets = 2048;       ///< sets of the monitored cache view
  std::uint32_t set_sampling = 32;     ///< monitor 1 in N sets (1 = all)
  std::uint32_t partial_tag_bits = 12; ///< 0 = full-tag reference profiler
  WayCount profiled_ways = 72;         ///< stack depth == max assignable ways
};

class StackProfiler {
 public:
  explicit StackProfiler(const ProfilerConfig& config);

  /// Feeds one block-granular L2 access. Non-sampled sets are ignored (the
  /// hardware never sees them).
  void observe(BlockAddress block);

  /// Feeds `count` accesses with the front half batched: the pow2 sampling
  /// mask resolves across the whole batch (one AND+compare per lane), the
  /// partial-tag mix vectorizes over the survivors, and their stack lines
  /// are prefetched before the per-access move-to-front updates replay in
  /// order. Counters and stacks end bit-identical to calling observe() per
  /// element.
  void observe_batch(const BlockAddress* blocks, std::uint32_t count);

  /// Counters C1..CK (hits by stack position) plus C(K+1) (misses).
  const common::Histogram& histogram() const { return histogram_; }

  /// Projection to a miss-ratio curve over 1..profiled_ways, scaled back up
  /// by the sampling factor so curves are comparable across sampling rates.
  MissRatioCurve curve() const;

  /// Epoch-boundary decay: halves all counters (and leaves the stacks
  /// intact, as real hardware would).
  void decay();

  void clear();

  /// Rewinds the profiler to its just-constructed state without
  /// reallocating the stack arrays. Unlike clear() — which leaves stack
  /// *entries* in place, as the counters-only reset of real hardware would
  /// — this also zeroes the tag stacks, because save_state() serializes
  /// them and a reset profiler must snapshot byte-identical to a fresh one.
  void reset_in_place();

  std::uint64_t observed_accesses() const { return observed_; }
  std::uint64_t sampled_accesses() const { return sampled_; }
  const ProfilerConfig& config() const { return config_; }

  /// Serializes the histogram, the per-set tag stacks and the access
  /// counters. Restore asserts the config echo matches.
  void save_state(snapshot::Writer& writer) const;
  void restore_state(snapshot::Reader& reader);

 private:
  friend class audit::ComponentAuditor;
  friend struct ProfilerTestPeer;  ///< mutation hooks for the audit kill-tests

  bool is_sampled_set(std::uint32_t set) const {
    // observe() runs per L2 access and the default sampling (1 in 32) is a
    // power of two, so the common case is a mask test, not a division.
    if (sample_is_pow2_) return (set & sample_mask_) == 0;
    return set % config_.set_sampling == 0;
  }
  std::uint32_t stored_tag(BlockAddress block) const;
  void update_stack(std::size_t stack_index, std::uint64_t entry);

  // NOLINTNEXTLINE(bacp-reset-fields): immutable profiler geometry; pinned at construction, never rewound
  ProfilerConfig config_;
  // Set-index geometry, derived once at construction: observe() runs per L2
  // access, so the shift/mask must not be recomputed per call.
  // NOLINTNEXTLINE(bacp-snapshot-fields, bacp-reset-fields): derived from config at construction; restore asserts the echo
  std::uint32_t set_shift_ = 0;
  // NOLINTNEXTLINE(bacp-snapshot-fields, bacp-reset-fields): derived from config, as above
  std::uint64_t set_mask_ = 0;
  // Sampling-test fast path, derived once at construction.
  // NOLINTNEXTLINE(bacp-snapshot-fields, bacp-reset-fields): derived from config, as above
  bool sample_is_pow2_ = false;
  // NOLINTNEXTLINE(bacp-snapshot-fields, bacp-reset-fields): derived from config, as above
  std::uint32_t sample_mask_ = 0;
  common::Histogram histogram_;  // profiled_ways + 1 bins
  // Per sampled set: tag stack, MRU first. Tags are either partial hashes
  // or (width 0) the full tag bits — stored uniformly as 64-bit entries.
  // Stacks live in one flat array (profiled_ways entries per sampled set)
  // so the move-to-front on every observe() is a single memmove over
  // contiguous memory instead of a vector erase/insert.
  std::vector<std::uint64_t> stack_entries_;  // num_stacks * profiled_ways
  std::vector<std::uint32_t> stack_sizes_;    // per sampled set
  std::uint64_t observed_ = 0;
  std::uint64_t sampled_ = 0;
};

}  // namespace bacp::msa
