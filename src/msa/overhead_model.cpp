#include "msa/overhead_model.hpp"

#include "common/assert.hpp"
#include "common/types.hpp"

namespace bacp::msa {

OverheadReport compute_overhead(const OverheadConfig& config) {
  BACP_ASSERT(config.profiled_ways >= 2, "profiler needs >= 2 ways");
  OverheadReport report;

  // Row 1 — partial tags: tag_width x ways x monitored sets.
  report.partial_tag_bits_total = static_cast<std::uint64_t>(config.partial_tag_bits) *
                                  config.profiled_ways * config.monitored_sets;

  // Row 2 — LRU stack as a linked list of way pointers: each of the `ways`
  // entries holds a next-pointer of ceil-ish log2(ways) bits, plus head and
  // tail pointers, replicated per monitored set. The paper's 27-kbit figure
  // corresponds to floor(log2(72)) = 6-bit pointers.
  const std::uint64_t pointer_bits = bacp::log2_floor(config.profiled_ways);
  report.lru_stack_bits_total =
      ((pointer_bits * config.profiled_ways) + 2 * pointer_bits) * config.monitored_sets;

  // Row 3 — hit counters: shared across sets, one per stack position.
  report.hit_counter_bits_total =
      static_cast<std::uint64_t>(config.profiled_ways) * config.hit_counter_bits;

  return report;
}

}  // namespace bacp::msa
