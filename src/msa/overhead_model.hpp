#pragma once

#include <cstdint>

namespace bacp::msa {

/// Hardware-cost model of one MSA profiler — the three rows of Table II.
/// All sizes in bits; "kbits" in the paper are 1024-bit units.
struct OverheadConfig {
  std::uint32_t partial_tag_bits = 12;  ///< stored tag width
  std::uint32_t profiled_ways = 72;     ///< max assignable: 9/16 of 128 ways
  std::uint32_t monitored_sets = 64;    ///< 2048 sets / 1-in-32 sampling
  std::uint32_t hit_counter_bits = 32;  ///< per-stack-position hit counter
  std::uint32_t num_profilers = 8;      ///< one per core
};

struct OverheadReport {
  // Table II row 1: tag_width x ways x cache_sets.
  std::uint64_t partial_tag_bits_total = 0;
  // Table II row 2: ((lru_pointer_size x ways) + head/tail) x cache_sets.
  std::uint64_t lru_stack_bits_total = 0;
  // Table II row 3: cache_ways x hit_counter_size.
  std::uint64_t hit_counter_bits_total = 0;

  std::uint64_t per_profiler_bits() const {
    return partial_tag_bits_total + lru_stack_bits_total + hit_counter_bits_total;
  }

  double per_profiler_kbits() const {
    return static_cast<double>(per_profiler_bits()) / 1024.0;
  }

  /// Overhead of all profilers as a fraction of a cache of `cache_bytes`
  /// data capacity (paper: ~0.4% of the 16 MB L2).
  double fraction_of_cache(std::uint64_t cache_bytes, std::uint32_t num_profilers) const {
    return static_cast<double>(per_profiler_bits()) * num_profilers /
           (static_cast<double>(cache_bytes) * 8.0);
  }
};

/// Evaluates the Table II equations for a configuration.
OverheadReport compute_overhead(const OverheadConfig& config);

}  // namespace bacp::msa
