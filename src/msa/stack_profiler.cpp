#include "msa/stack_profiler.hpp"

#include <algorithm>
#include <cstring>

#include "cache/partial_tag.hpp"
#include "common/assert.hpp"
#include "common/simd.hpp"
#include "snapshot/codec.hpp"

namespace bacp::msa {

namespace {

std::size_t num_stacks(const ProfilerConfig& config) {
  const std::uint32_t sampling = std::max(1u, config.set_sampling);
  return config.num_sets / sampling + (config.num_sets % sampling ? 1 : 0);
}

}  // namespace

StackProfiler::StackProfiler(const ProfilerConfig& config)
    : config_(config),
      histogram_(static_cast<std::size_t>(config.profiled_ways) + 1),
      stack_entries_(num_stacks(config) * config.profiled_ways, 0),
      stack_sizes_(num_stacks(config), 0) {
  BACP_ASSERT(is_pow2(config_.num_sets), "num_sets must be a power of two");
  BACP_ASSERT(config_.set_sampling >= 1, "set_sampling must be >= 1");
  BACP_ASSERT(config_.profiled_ways >= 1, "profiled_ways must be >= 1");
  set_shift_ = log2_floor(config_.num_sets);
  set_mask_ = config_.num_sets - 1;
  sample_is_pow2_ = is_pow2(config_.set_sampling);
  sample_mask_ = config_.set_sampling - 1;
}

std::uint32_t StackProfiler::stored_tag(BlockAddress block) const {
  // Not used for full tags; callers branch on partial_tag_bits.
  return cache::partial_tag(block >> set_shift_, config_.partial_tag_bits);
}

void StackProfiler::update_stack(std::size_t stack_index, std::uint64_t entry) {
  std::uint64_t* stack = stack_entries_.data() + stack_index * config_.profiled_ways;
  const std::uint32_t size = stack_sizes_[stack_index];

  const std::uint32_t depth = common::simd::find_first_equal_u64(stack, size, entry);
  if (depth != common::simd::kLaneNotFound) {
    // Hit at `depth`: move-to-front shifts the shallower entries down one.
    histogram_.increment(depth);
    std::memmove(stack + 1, stack, depth * sizeof(std::uint64_t));
  } else {
    // Miss: everything shifts down; the LRU entry falls off a full stack.
    histogram_.increment(config_.profiled_ways);
    const std::uint32_t new_size = std::min(size + 1, config_.profiled_ways);
    std::memmove(stack + 1, stack, (new_size - 1) * sizeof(std::uint64_t));
    stack_sizes_[stack_index] = new_size;
  }
  stack[0] = entry;
}

void StackProfiler::observe(BlockAddress block) {
  ++observed_;
  const auto set = static_cast<std::uint32_t>(block & set_mask_);
  if (!is_sampled_set(set)) return;
  ++sampled_;

  const std::uint64_t entry =
      config_.partial_tag_bits == 0
          ? (block >> set_shift_)
          : static_cast<std::uint64_t>(stored_tag(block));

  update_stack(set / config_.set_sampling, entry);
}

void StackProfiler::observe_batch(const BlockAddress* blocks, std::uint32_t count) {
  if (!sample_is_pow2_) {
    // Modulo sampling has no one-instruction batch test; stay scalar.
    for (std::uint32_t i = 0; i < count; ++i) observe(blocks[i]);
    return;
  }
  constexpr std::uint32_t kChunk = 256;
  // Sampled iff (set & sample_mask_) == 0 with set = block & set_mask_, so
  // membership collapses to one masked-zero test against the combined mask.
  const std::uint64_t member_mask =
      set_mask_ & static_cast<std::uint64_t>(sample_mask_);
  while (count > 0) {
    const std::uint32_t n = std::min(count, kChunk);
    observed_ += n;
    std::uint32_t sampled_at[kChunk];
    const std::size_t num_sampled =
        common::simd::collect_masked_zero(blocks, n, member_mask, sampled_at);
    sampled_ += num_sampled;

    std::uint64_t entries[kChunk];
    if (config_.partial_tag_bits == 0) {
      for (std::size_t i = 0; i < num_sampled; ++i) {
        entries[i] = blocks[sampled_at[i]] >> set_shift_;
      }
    } else {
      std::uint64_t tag_bits[kChunk];
      for (std::size_t i = 0; i < num_sampled; ++i) {
        tag_bits[i] = blocks[sampled_at[i]] >> set_shift_;
      }
      cache::partial_tags(tag_bits, entries, num_sampled, config_.partial_tag_bits);
    }

    std::size_t stack_index[kChunk];
    for (std::size_t i = 0; i < num_sampled; ++i) {
      const auto set = static_cast<std::uint32_t>(blocks[sampled_at[i]] & set_mask_);
      stack_index[i] = set / config_.set_sampling;
      common::simd::prefetch_write(stack_entries_.data() +
                                   stack_index[i] * config_.profiled_ways);
    }
    for (std::size_t i = 0; i < num_sampled; ++i) {
      update_stack(stack_index[i], entries[i]);
    }
    blocks += n;
    count -= n;
  }
}

MissRatioCurve StackProfiler::curve() const {
  const auto raw = MissRatioCurve::from_histogram(histogram_);
  // Scale back up by the sampling factor: 1-in-N sampling sees 1/N of the
  // stream, and curves must carry absolute (estimated) miss counts so the
  // allocator can weight cores by intensity.
  return raw.scaled(static_cast<double>(config_.set_sampling));
}

void StackProfiler::decay() { histogram_.decay_halve(); }

void StackProfiler::clear() {
  histogram_.clear();
  std::fill(stack_sizes_.begin(), stack_sizes_.end(), 0);
  observed_ = 0;
  sampled_ = 0;
}

void StackProfiler::reset_in_place() {
  clear();
  std::fill(stack_entries_.begin(), stack_entries_.end(), 0);
}

void StackProfiler::save_state(snapshot::Writer& writer) const {
  writer.u32(config_.num_sets);
  writer.u32(config_.set_sampling);
  writer.u32(config_.partial_tag_bits);
  writer.u32(config_.profiled_ways);
  writer.scalars(histogram_.bins());
  writer.scalars(std::span<const std::uint64_t>(stack_entries_));
  writer.scalars(std::span<const std::uint32_t>(stack_sizes_));
  writer.u64(observed_);
  writer.u64(sampled_);
}

void StackProfiler::restore_state(snapshot::Reader& reader) {
  BACP_ASSERT(reader.u32() == config_.num_sets, "snapshot num_sets mismatch");
  BACP_ASSERT(reader.u32() == config_.set_sampling, "snapshot set_sampling mismatch");
  BACP_ASSERT(reader.u32() == config_.partial_tag_bits,
              "snapshot partial_tag_bits mismatch");
  BACP_ASSERT(reader.u32() == config_.profiled_ways, "snapshot profiled_ways mismatch");
  // Rebuild the histogram through its public interface so its total/bins
  // invariant holds by construction.
  const std::vector<std::uint64_t> bins = reader.scalars<std::uint64_t>();
  BACP_ASSERT(bins.size() == histogram_.num_bins(), "snapshot histogram shape mismatch");
  histogram_.clear();
  for (std::size_t bin = 0; bin < bins.size(); ++bin) {
    if (bins[bin] != 0) histogram_.increment(bin, bins[bin]);
  }
  reader.scalars_into(std::span<std::uint64_t>(stack_entries_));
  reader.scalars_into(std::span<std::uint32_t>(stack_sizes_));
  observed_ = reader.u64();
  sampled_ = reader.u64();
}

}  // namespace bacp::msa
