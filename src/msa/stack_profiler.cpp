#include "msa/stack_profiler.hpp"

#include <algorithm>

#include "cache/partial_tag.hpp"
#include "common/assert.hpp"

namespace bacp::msa {

StackProfiler::StackProfiler(const ProfilerConfig& config)
    : config_(config),
      histogram_(static_cast<std::size_t>(config.profiled_ways) + 1),
      stacks_(config.num_sets / std::max(1u, config.set_sampling) +
              (config.num_sets % std::max(1u, config.set_sampling) ? 1 : 0)) {
  BACP_ASSERT(is_pow2(config_.num_sets), "num_sets must be a power of two");
  BACP_ASSERT(config_.set_sampling >= 1, "set_sampling must be >= 1");
  BACP_ASSERT(config_.profiled_ways >= 1, "profiled_ways must be >= 1");
  set_shift_ = log2_floor(config_.num_sets);
  set_mask_ = config_.num_sets - 1;
  for (auto& stack : stacks_) stack.reserve(config_.profiled_ways);
}

std::uint32_t StackProfiler::stored_tag(BlockAddress block) const {
  // Not used for full tags; callers branch on partial_tag_bits.
  return cache::partial_tag(block >> set_shift_, config_.partial_tag_bits);
}

void StackProfiler::observe(BlockAddress block) {
  ++observed_;
  const auto set = static_cast<std::uint32_t>(block & set_mask_);
  if (!is_sampled_set(set)) return;
  ++sampled_;

  const std::uint64_t entry =
      config_.partial_tag_bits == 0
          ? (block >> set_shift_)
          : static_cast<std::uint64_t>(stored_tag(block));

  auto& stack = stacks_[set / config_.set_sampling];
  const auto it = std::find(stack.begin(), stack.end(), entry);
  if (it != stack.end()) {
    const auto depth = static_cast<std::size_t>(it - stack.begin());  // 0-based
    histogram_.increment(depth);
    stack.erase(it);
    stack.insert(stack.begin(), entry);
  } else {
    histogram_.increment(config_.profiled_ways);  // C(K+1): miss counter
    stack.insert(stack.begin(), entry);
    if (stack.size() > config_.profiled_ways) stack.pop_back();
  }
}

MissRatioCurve StackProfiler::curve() const {
  const auto raw = MissRatioCurve::from_histogram(histogram_);
  // Scale back up by the sampling factor: 1-in-N sampling sees 1/N of the
  // stream, and curves must carry absolute (estimated) miss counts so the
  // allocator can weight cores by intensity.
  return raw.scaled(static_cast<double>(config_.set_sampling));
}

void StackProfiler::decay() { histogram_.decay_halve(); }

void StackProfiler::clear() {
  histogram_.clear();
  for (auto& stack : stacks_) stack.clear();
  observed_ = 0;
  sampled_ = 0;
}

}  // namespace bacp::msa
