#include "msa/miss_curve.hpp"

#include "common/assert.hpp"

namespace bacp::msa {

MissRatioCurve::MissRatioCurve(std::vector<double> hits_by_depth, double deep_misses) {
  BACP_ASSERT(deep_misses >= 0.0, "negative miss count");
  prefix_hits_ = std::move(hits_by_depth);
  double running = 0.0;
  for (auto& h : prefix_hits_) {
    BACP_ASSERT(h >= 0.0, "negative hit count");
    running += h;
    h = running;
  }
  total_ = running + deep_misses;
}

MissRatioCurve MissRatioCurve::from_histogram(const common::Histogram& histogram) {
  BACP_ASSERT(histogram.num_bins() >= 2, "histogram needs >= 1 depth bin + miss bin");
  std::vector<double> hits(histogram.num_bins() - 1);
  for (std::size_t i = 0; i + 1 < histogram.num_bins(); ++i) {
    hits[i] = static_cast<double>(histogram.bin(i));
  }
  const auto deep = static_cast<double>(histogram.bin(histogram.num_bins() - 1));
  return MissRatioCurve(std::move(hits), deep);
}

MissRatioCurve MissRatioCurve::from_model(const trace::WorkloadModel& model,
                                          WayCount max_depth) {
  auto weights = model.stack_distance_weights(max_depth);
  const double deep = weights.back();
  weights.pop_back();
  return MissRatioCurve(std::move(weights), deep);
}

double MissRatioCurve::miss_count(WayCount ways) const {
  if (ways == 0 || prefix_hits_.empty()) return total_;
  const std::size_t index = std::min<std::size_t>(ways, prefix_hits_.size()) - 1;
  return total_ - prefix_hits_[index];
}

double MissRatioCurve::miss_ratio(WayCount ways) const {
  return total_ == 0.0 ? 0.0 : miss_count(ways) / total_;
}

MissRatioCurve MissRatioCurve::scaled(double factor) const {
  BACP_ASSERT(factor >= 0.0, "scale factor must be non-negative");
  MissRatioCurve out = *this;
  for (auto& h : out.prefix_hits_) h *= factor;
  out.total_ *= factor;
  return out;
}

}  // namespace bacp::msa
