#pragma once

#include <span>
#include <vector>

#include "common/histogram.hpp"
#include "common/types.hpp"
#include "trace/workload_model.hpp"

namespace bacp::msa {

/// Projected misses as a function of allocated ways, derived from an MSA
/// LRU histogram via the inclusion property (paper Section III-A): with w
/// ways, every access whose stack distance exceeds w becomes a miss, so
///   misses(w) = total_accesses - sum of hits at depths 1..w.
/// Values are doubles so curves can be weighted by per-core access rates
/// before policies compare Marginal Utilities across cores.
class MissRatioCurve {
 public:
  MissRatioCurve() = default;

  /// hits_by_depth[i] = hits observed at stack distance i+1;
  /// deep_misses = accesses beyond the deepest profiled position (cold
  /// misses plus beyond-capacity reuse).
  MissRatioCurve(std::vector<double> hits_by_depth, double deep_misses);

  /// From a profiler histogram whose final bin is the miss counter.
  static MissRatioCurve from_histogram(const common::Histogram& histogram);

  /// Analytic curve of a workload model (ground truth for the profiler
  /// accuracy tests), normalized to one access total.
  static MissRatioCurve from_model(const trace::WorkloadModel& model,
                                   WayCount max_depth);

  /// Total accesses in the curve (hits + deep misses).
  double total() const { return total_; }

  /// Deepest way count the curve can project (== hits_by_depth.size()).
  WayCount max_ways() const { return static_cast<WayCount>(prefix_hits_.size()); }

  /// Projected miss count with `ways` allocated ways (`ways` may be 0, and
  /// is clamped to max_ways() above).
  double miss_count(WayCount ways) const;

  /// Raw cumulative-hits representation — prefix_hits()[w-1] = hits at
  /// depth <= w — for the vectorized projection kernels
  /// (common::simd::mu_scan / miss_counts), which replay miss_count's
  /// clamped lookup per lane. miss_count() stays the scalar reference.
  std::span<const double> prefix_hits() const { return prefix_hits_; }

  /// miss_count / total (0 if the curve is empty).
  double miss_ratio(WayCount ways) const;

  /// Curve with every count multiplied by `factor` (used to weight cores by
  /// their access intensity so miss *counts*, not ratios, are compared).
  MissRatioCurve scaled(double factor) const;

  bool empty() const { return total_ == 0.0; }

 private:
  std::vector<double> prefix_hits_;  // prefix_hits_[w-1] = hits at depth <= w
  double total_ = 0.0;
};

}  // namespace bacp::msa
