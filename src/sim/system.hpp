#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "coherence/moesi.hpp"
#include "core/core_timer.hpp"
#include "mem/dram.hpp"
#include "msa/stack_profiler.hpp"
#include "noc/noc.hpp"
#include "nuca/dnuca_cache.hpp"
#include "sim/system_config.hpp"
#include "trace/mix.hpp"
#include "trace/synthetic.hpp"

namespace bacp::sim {

/// Per-core results over the measurement window.
struct CoreResult {
  double instructions = 0.0;
  double cycles = 0.0;
  double cpi = 0.0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;
  WayCount allocated_ways = 0;
  const char* workload = "";
};

struct SystemResults {
  std::vector<CoreResult> cores;
  std::uint64_t l2_accesses = 0;
  /// All L2 accesses seen live in the measurement window, including the
  /// post-quota overrun that keeps co-runner interference alive. Use this
  /// as the denominator for live counters (migrations, directory lookups,
  /// NoC/DRAM traffic); use l2_accesses for per-quota miss accounting.
  std::uint64_t live_l2_accesses = 0;
  std::uint64_t l2_misses = 0;
  double l2_miss_ratio = 0.0;
  double mean_cpi = 0.0;
  std::uint64_t epochs = 0;
  std::uint64_t promotions = 0;
  std::uint64_t demotions = 0;
  std::uint64_t offview_hits = 0;
  std::uint64_t directory_lookups = 0;
  std::uint64_t dram_reads = 0;
  std::uint64_t dram_writebacks = 0;
  std::uint64_t noc_queue_cycles = 0;
  std::uint64_t inclusion_recalls = 0;
};

/// The full CMP: synthetic cores -> private L1s -> MOESI directory ->
/// banked DNUCA L2 -> DRAM, with the epoch controller re-running the
/// Bank-aware allocator on live MSA profiles. This is the substitution for
/// the paper's Simics+GEMS stack (see DESIGN.md section 1): a conservative,
/// issue-time-ordered event simulation over the shared memory subsystem.
class System {
 public:
  System(const SystemConfig& config, const trace::WorkloadMix& mix);

  /// Runs `instructions_per_core` committed instructions on every core to
  /// warm the hierarchy, then resets all statistics (paper: 100M-instruction
  /// cache warm-up). Per-core L2-access quotas are derived from each
  /// workload's APKI, so - as in the paper's equal-instruction slices -
  /// memory-intensive cores contribute proportionally more L2 traffic.
  void warm_up(std::uint64_t instructions_per_core);

  /// Measurement run over `instructions_per_core` instructions per core.
  /// May be called repeatedly; statistics accumulate across calls.
  void run(std::uint64_t instructions_per_core);

  /// Program phase change on one core: the generator's reuse structure and
  /// write mix switch to `workload_name` (timing parameters and the mix
  /// labels keep the original workload — the phase changes *what the
  /// program does with memory*, which is what the MSA profiler must chase).
  void switch_workload(CoreId core, std::string_view workload_name);

  SystemResults results() const;

  const partition::Allocation& current_allocation() const { return allocation_; }

  /// One entry per epoch boundary (Bank-aware policy only): the allocation
  /// installed at that boundary. Lets callers trace how the partitioning
  /// adapts over time.
  const std::vector<partition::Allocation>& allocation_history() const {
    return allocation_history_;
  }
  const nuca::DnucaCache& l2() const { return *l2_; }
  const cache::SetAssocCache& l1(CoreId core) const { return l1_.at(core); }
  const msa::StackProfiler& profiler(CoreId core) const { return *profilers_.at(core); }
  std::uint64_t epochs_run() const { return epochs_; }

 private:
  /// Per-core statistics frozen at quota completion (cores run on past
  /// their quota to keep interference alive until the slowest finishes).
  struct CoreSnapshot {
    double instructions = 0.0;
    double cycles = 0.0;
    double cpi = 0.0;
    std::uint64_t l2_hits = 0;
    std::uint64_t l2_misses = 0;
    bool taken = false;
  };

  void execute(std::uint64_t instructions_per_core);
  void run_epoch_boundary();
  Cycle serve_access(CoreId core, Cycle issue_time);
  void apply_policy_plan();
  void clear_all_stats();
  void snapshot_core(CoreId core);

  SystemConfig config_;
  trace::WorkloadMix mix_;

  noc::Noc noc_;
  mem::Dram dram_;
  coherence::MoesiDirectory directory_;
  std::unique_ptr<nuca::DnucaCache> l2_;
  std::vector<cache::SetAssocCache> l1_;
  std::vector<std::unique_ptr<trace::SyntheticTraceGenerator>> generators_;
  std::vector<std::unique_ptr<msa::StackProfiler>> profilers_;
  std::vector<std::unique_ptr<core::CoreTimer>> timers_;

  partition::Allocation allocation_;
  std::vector<partition::Allocation> allocation_history_;
  std::vector<CoreSnapshot> snapshots_;
  // Per-instruction normalization state for epoch profiles (see
  // run_epoch_boundary): total instructions at the last boundary, and an
  // instruction window decayed with the histogram's half-life.
  std::vector<double> last_epoch_instructions_;
  std::vector<double> decayed_instructions_;
  Cycle next_epoch_ = 0;
  std::uint64_t epochs_ = 0;
};

}  // namespace bacp::sim
