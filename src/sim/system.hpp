#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "coherence/moesi.hpp"
#include "core/core_timer.hpp"
#include "mem/dram.hpp"
#include "msa/stack_profiler.hpp"
#include "noc/noc.hpp"
#include "nuca/dnuca_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "sim/system_config.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/mix.hpp"
#include "trace/synthetic.hpp"

namespace bacp::sim {

/// Per-core results over the measurement window, backed by an obs::Registry
/// (gauges "core.instructions|cycles|cpi", counters
/// "core.l2_hits|l2_misses|allocated_ways"). The typed accessors are the
/// stable API; metrics() exposes the registry to sinks and to callers that
/// attach ad-hoc metrics.
class CoreResult {
 public:
  double instructions() const { return metrics_.gauge_value("core.instructions"); }
  double cycles() const { return metrics_.gauge_value("core.cycles"); }
  double cpi() const { return metrics_.gauge_value("core.cpi"); }
  std::uint64_t l2_hits() const { return metrics_.counter_value("core.l2_hits"); }
  std::uint64_t l2_misses() const { return metrics_.counter_value("core.l2_misses"); }
  std::uint64_t l2_accesses() const { return l2_hits() + l2_misses(); }
  double l2_miss_ratio() const;
  WayCount allocated_ways() const {
    return static_cast<WayCount>(metrics_.counter_value("core.allocated_ways"));
  }
  /// Owned copy of the workload name (safe to outlive the suite entry).
  const std::string& workload() const { return workload_; }

  CoreResult& set_instructions(double value);
  CoreResult& set_cycles(double value);
  CoreResult& set_cpi(double value);
  CoreResult& set_l2_hits(std::uint64_t value);
  CoreResult& set_l2_misses(std::uint64_t value);
  CoreResult& set_allocated_ways(WayCount ways);
  CoreResult& set_workload(std::string name);

  obs::Registry& metrics() { return metrics_; }
  const obs::Registry& metrics() const { return metrics_; }

  /// {"workload": ..., "metrics": {...}}.
  obs::Json to_json() const;

 private:
  obs::Registry metrics_;
  std::string workload_;
};

/// Whole-run results. All scalar statistics live in one obs::Registry under
/// the exporting component's namespace ("sim.", "nuca.", "noc.", "dram.",
/// "coherence."); the typed accessors below are the stable reading API and
/// document which registry name each figure comes from. The per-epoch
/// adaptation record is exposed as an obs::TimeSeries.
class SystemResults {
 public:
  const std::vector<CoreResult>& cores() const { return cores_; }
  std::vector<CoreResult>& cores() { return cores_; }

  /// Sum of the per-core quota slices ("sim.l2_accesses"): exactly
  /// `l2_accesses_per_core` accesses per core, the denominator for
  /// per-quota miss accounting.
  std::uint64_t l2_accesses() const { return metrics_.counter_value("sim.l2_accesses"); }
  /// All L2 accesses seen live in the measurement window
  /// ("sim.live_l2_accesses"), including the post-quota overrun that keeps
  /// co-runner interference alive. Use this as the denominator for live
  /// counters (migrations, directory lookups, NoC/DRAM traffic).
  std::uint64_t live_l2_accesses() const {
    return metrics_.counter_value("sim.live_l2_accesses");
  }
  std::uint64_t l2_misses() const { return metrics_.counter_value("sim.l2_misses"); }
  double l2_miss_ratio() const { return metrics_.gauge_value("sim.l2_miss_ratio"); }
  double mean_cpi() const { return metrics_.gauge_value("sim.mean_cpi"); }
  std::uint64_t epochs() const { return metrics_.counter_value("sim.epochs"); }
  std::uint64_t promotions() const { return metrics_.counter_value("nuca.promotions"); }
  std::uint64_t demotions() const { return metrics_.counter_value("nuca.demotions"); }
  std::uint64_t offview_hits() const {
    return metrics_.counter_value("nuca.offview_hits");
  }
  std::uint64_t directory_lookups() const {
    return metrics_.counter_value("nuca.directory_lookups");
  }
  std::uint64_t dram_reads() const { return metrics_.counter_value("dram.demand_reads"); }
  std::uint64_t dram_writebacks() const {
    return metrics_.counter_value("dram.writebacks");
  }
  std::uint64_t noc_queue_cycles() const {
    return metrics_.counter_value("noc.queue_cycles");
  }
  std::uint64_t inclusion_recalls() const {
    return metrics_.counter_value("coherence.inclusion_recalls");
  }

  SystemResults& set_l2_accesses(std::uint64_t value);
  SystemResults& set_l2_misses(std::uint64_t value);
  SystemResults& set_l2_miss_ratio(double value);
  SystemResults& set_mean_cpi(double value);
  SystemResults& set_epochs(std::uint64_t value);

  obs::Registry& metrics() { return metrics_; }
  const obs::Registry& metrics() const { return metrics_; }

  /// Per-epoch adaptation record ("core<N>.ways", "core<N>.cpi",
  /// "promotions", "demotions", "offview_hits", "noc_queue_cycles",
  /// "dram_reads", "dram_writebacks"); one sample per epoch boundary of the
  /// measurement window, so num_epochs() == epochs().
  obs::TimeSeries& epoch_series() { return epoch_series_; }
  const obs::TimeSeries& epoch_series() const { return epoch_series_; }

  /// {"schema": 1, "metrics": ..., "cores": [...], "epoch_series": ...}.
  obs::Json to_json() const;

 private:
  std::vector<CoreResult> cores_;
  obs::Registry metrics_;
  obs::TimeSeries epoch_series_;
};

/// The full CMP: synthetic cores -> private L1s -> MOESI directory ->
/// banked DNUCA L2 -> DRAM, with the epoch controller re-running the
/// Bank-aware allocator on live MSA profiles. This is the substitution for
/// the paper's Simics+GEMS stack (see DESIGN.md section 1): a conservative,
/// issue-time-ordered event simulation over the shared memory subsystem.
class System {
 public:
  System(const SystemConfig& config, const trace::WorkloadMix& mix);

  /// Runs `instructions_per_core` committed instructions on every core to
  /// warm the hierarchy, then resets all statistics (paper: 100M-instruction
  /// cache warm-up). Per-core L2-access quotas are derived from each
  /// workload's APKI, so - as in the paper's equal-instruction slices -
  /// memory-intensive cores contribute proportionally more L2 traffic.
  void warm_up(std::uint64_t instructions_per_core);

  /// Default trace batch depth (see set_batch_size); chosen by the
  /// bench_perf_throughput batch sweep.
  static constexpr std::uint32_t kDefaultBatchSize = 64;

  /// Sets how many accesses each core's generator produces per refill of
  /// its batched stream buffer (clamped to [1, AccessBatch::kMaxSize]).
  /// Purely a performance knob — unconsumed buffers are rewound at every
  /// run boundary, so the simulated trajectory, statistics and snapshots
  /// are bit-identical across batch sizes. Not serialized and not part of
  /// the config digest, like thread counts. BACP_BATCH overrides the
  /// construction default.
  void set_batch_size(std::uint32_t batch);
  std::uint32_t batch_size() const { return batch_size_; }

  /// Measurement run over `instructions_per_core` instructions per core.
  /// May be called repeatedly; statistics accumulate across calls.
  void run(std::uint64_t instructions_per_core);

  /// Functional warming (SMARTS-style): advances every active core by
  /// `instructions_per_core` instructions exercising the *state* machinery
  /// in full — generator streams, L1/L2/directory transitions, MSA
  /// profiles, epoch-boundary repartitions — under a flat timing model (no
  /// MLP window, no issue queue, no gap jitter; core RNG streams are not
  /// consumed). Caches and profiles land where a detailed run would put
  /// them up to timing-induced reorderings; clocks advance approximately.
  /// Deterministic: identical state in, identical state out. Statistics
  /// accumulate as under run() — fast-forwarded spans must be excluded
  /// from measurement with reset_measurement(), which also re-establishes
  /// the statistics-clean point save_state() requires.
  void fast_forward(std::uint64_t instructions_per_core);

  /// Session-style stepping (the sched::Service run surface): advances the
  /// simulation until `epochs` epoch boundaries have fired, with no
  /// per-core instruction quotas — every active core keeps executing until
  /// the last boundary. With no active cores the epoch clock still
  /// advances (boundaries fire over an idle machine). Statistics
  /// accumulate exactly as under run().
  void step_epochs(std::uint64_t epochs);

  /// Program phase change on one core: the generator's reuse structure and
  /// write mix switch to `workload_name` (timing parameters and the mix
  /// labels keep the original workload — the phase changes *what the
  /// program does with memory*, which is what the MSA profiler must chase).
  void switch_workload(CoreId core, std::string_view workload_name);

  /// Tenant admission primitive: rebinds core slot `core` to a fresh
  /// instance of `workload_name` — coherently flushes the slot's L1 (dirty
  /// data drains through the directory and L2, exactly as evictions do),
  /// clears the slot's MSA profile, replaces the trace generator and the
  /// timer's workload parameters with streams seeded by `stream_salt`, and
  /// zeroes the slot's per-instruction profile window. Global time never
  /// rewinds; L2 contents are left to be displaced naturally (a newcomer
  /// starts cold, its predecessor's lines age out under the new plan).
  void reset_core(CoreId core, std::string_view workload_name,
                  std::uint64_t stream_salt);

  /// Idle-slot control: an inactive core is not scheduled by run() or
  /// step_epochs() — it issues no accesses and its clock freezes — but its
  /// caches stay in place and stay coherent. Cores start active.
  void set_core_active(CoreId core, bool active);
  bool core_active(CoreId core) const { return active_.at(core) != 0; }
  std::uint32_t num_active_cores() const;

  /// Installs an externally computed partitioning plan (PolicyKind::External
  /// drivers). The assignment is validated against the allocation, applied
  /// to the L2, and recorded in allocation_history().
  void install_partition(const partition::Allocation& allocation,
                         const partition::BankAssignment& assignment);

  /// Rewinds the whole system to the state a fresh `System(config(), mix)`
  /// would have — every component cold, generators and timers rebound to
  /// the new mix's workloads, the policy's initial plan reinstalled, the
  /// epoch clock re-armed — without freeing or reallocating any component's
  /// flat storage (cache columns, recency rings, hash slabs, stack arrays
  /// all keep their allocations). `mix` must have the same core count as
  /// the construction mix. A save_state() after reset_in_place() is
  /// byte-identical to one taken from a freshly constructed System, so
  /// pooled Systems (harness::SystemPool) replay trials bit-exactly.
  void reset_in_place(const trace::WorkloadMix& mix);

  /// Clears all statistics and re-arms the measurement window at the
  /// current point (what warm_up() does after its run). Simulation
  /// trajectory is unaffected: only counters, marks and the per-epoch
  /// series reset. Public so session-style drivers can harvest per-epoch
  /// deltas and keep the system at a statistics-clean point, where
  /// save_state() is legal.
  void reset_measurement();

  /// The workload currently bound to `core` (index into spec2000_suite());
  /// follows reset_core(), unlike the construction mix.
  std::size_t bound_workload(CoreId core) const { return bound_workloads_.at(core); }

  SystemResults results() const;

  /// Cheap per-core counters for per-epoch harvesting (no registry or
  /// string work): cumulative since the last statistics reset.
  struct CoreSample {
    double instructions = 0.0;
    double cycles = 0.0;
    std::uint64_t l2_hits = 0;
    std::uint64_t l2_misses = 0;
    WayCount ways = 0;
    bool active = false;
  };
  std::vector<CoreSample> sample_cores() const;

  const partition::Allocation& current_allocation() const { return allocation_; }

  /// One entry per epoch boundary (Bank-aware policy only): the allocation
  /// installed at that boundary. Lets callers trace how the partitioning
  /// adapts over time.
  const std::vector<partition::Allocation>& allocation_history() const {
    return allocation_history_;
  }
  const nuca::DnucaCache& l2() const { return *l2_; }
  const cache::SetAssocCache& l1(CoreId core) const { return l1_.at(core); }
  std::span<const cache::SetAssocCache> l1s() const {
    return {l1_.data(), l1_.size()};
  }
  const coherence::MoesiDirectory& directory() const { return directory_; }
  const SystemConfig& config() const { return config_; }
  const msa::StackProfiler& profiler(CoreId core) const { return *profilers_.at(core); }
  /// Epoch boundaries crossed since the last statistics reset (warm_up()
  /// ends with a reset, so after a measurement run this counts measured
  /// epochs only).
  std::uint64_t epochs_run() const { return epochs_; }

  /// Live view of the per-epoch recorder (also copied into results()).
  const obs::TimeSeries& epoch_series() const { return epoch_series_; }

  /// Serializes the entire warm state — caches, directory, profilers,
  /// generators, timers, NoC/DRAM occupancy, partition state, RNG streams —
  /// into one flat buffer stamped with config_digest(). Only legal at a
  /// statistics-clean point (right after construction or warm_up(): no
  /// epochs counted, no core snapshots frozen); identical state always
  /// produces identical bytes.
  snapshot::SystemSnapshot save_state() const;

  /// Exact inverse of save_state(): asserts the snapshot's digest matches
  /// this system's config_digest(), then rebuilds every component so a
  /// subsequent run() is bit-identical to one the saving system would have
  /// produced.
  void restore_state(const snapshot::SystemSnapshot& snapshot);

  /// Shared-warmup adoption: takes warm state produced by a system built
  /// from canonical_warm_config() (asserted via warm_state_digest()),
  /// reinstalls *this* config's partitioning plan over the warm contents and
  /// re-arms the epoch clock. Results differ from a cold per-variant warm-up
  /// by design — this is the opt-in --shared-warmup mode.
  void adopt_warm_state(const snapshot::SystemSnapshot& snapshot);

  /// Composable halves of save_state()/restore_state() for embedders
  /// (sched::Service) that wrap the system sections in a larger snapshot:
  /// save_into() appends sections SystemMeta..Timers to `builder` (same
  /// statistics-clean precondition as save_state()); restore_from() rebuilds
  /// the components from `view` without checking the stamp — the embedder
  /// owns the digest, and must have rebound every core (reset_core) to the
  /// binding live at save time, since generator/timer configs are restored
  /// by replay, not serialized.
  void save_into(snapshot::SnapshotBuilder& builder) const;
  void restore_from(const snapshot::SnapshotView& view);

 private:
  /// Per-core statistics frozen at quota completion (cores run on past
  /// their quota to keep interference alive until the slowest finishes).
  struct CoreSnapshot {
    double instructions = 0.0;
    double cycles = 0.0;
    double cpi = 0.0;
    std::uint64_t l2_hits = 0;
    std::uint64_t l2_misses = 0;
    bool taken = false;
  };

  /// Interned TimeSeries column handles for every series the epoch
  /// recorder emits, so an epoch boundary performs no string building or
  /// map lookups ("core<N>.ways" etc. are interned once per reset, not
  /// rebuilt per epoch). Rebuilt by reset_epoch_tracking() because
  /// TimeSeries::clear() invalidates handles.
  struct EpochSeriesHandles {
    std::vector<obs::TimeSeries::SeriesHandle> ways;  // per core
    std::vector<obs::TimeSeries::SeriesHandle> cpi;   // per core
    obs::TimeSeries::SeriesHandle promotions = 0;
    obs::TimeSeries::SeriesHandle demotions = 0;
    obs::TimeSeries::SeriesHandle offview_hits = 0;
    obs::TimeSeries::SeriesHandle dram_reads = 0;
    obs::TimeSeries::SeriesHandle dram_writebacks = 0;
    obs::TimeSeries::SeriesHandle noc_queue_cycles = 0;
  };

  /// Component-stat values at the last epoch boundary (or stats reset);
  /// the per-epoch time series records deltas against these.
  struct EpochBaseline {
    std::vector<double> instructions;  // per core, absolute
    std::vector<double> cycles;        // per core, absolute
    std::uint64_t promotions = 0;
    std::uint64_t demotions = 0;
    std::uint64_t offview_hits = 0;
    std::uint64_t dram_reads = 0;
    std::uint64_t dram_writebacks = 0;
    std::uint64_t noc_queue_cycles = 0;
  };

  /// One core's buffered slice of its generator stream. Batches exist only
  /// within execute()/step_epochs(): flush_streams() rewinds every
  /// unconsumed suffix before control returns, so snapshots, workload
  /// switches and core resets always see generators in their exact scalar
  /// state.
  struct CoreStream {
    trace::AccessBatch batch;
    std::uint32_t cursor = 0;
  };

  void execute(std::uint64_t instructions_per_core);
  trace::MemoryAccess next_access(CoreId core);
  void flush_stream(CoreId core);
  void flush_streams();
  /// Full structural audit of every component (builds configured with
  /// -DBACP_AUDIT=ON only; a no-op otherwise). Aborts with the audit
  /// report on the first violation: simulating onward from corrupted
  /// structures would only bury the root cause under derived damage.
  void audit_checkpoint(const char* where) const;
  void run_epoch_boundary();
  void record_epoch_series();
  void reset_epoch_tracking();
  Cycle serve_access(CoreId core, Cycle issue_time);
  void apply_policy_plan();
  void clear_all_stats();
  void snapshot_core(CoreId core);
  void restore_components(const snapshot::SnapshotView& view);

  // NOLINTNEXTLINE(bacp-audit-coverage): immutable after construction; validated by SystemConfig parsing and pinned by config_digest
  SystemConfig config_;
  // NOLINTNEXTLINE(bacp-audit-coverage): immutable workload description; resolved against the SPEC2000 registry at construction
  trace::WorkloadMix mix_;

  noc::Noc noc_;
  mem::Dram dram_;
  coherence::MoesiDirectory directory_;
  std::unique_ptr<nuca::DnucaCache> l2_;
  std::vector<cache::SetAssocCache> l1_;
  std::vector<std::unique_ptr<trace::SyntheticTraceGenerator>> generators_;
  // NOLINTNEXTLINE(bacp-snapshot-fields): transient batched-access buffers; flushed (and generators rewound) before any snapshot
  std::vector<CoreStream> streams_;
  // NOLINTNEXTLINE(bacp-snapshot-fields, bacp-reset-fields): execution knob, not simulated state; survives resets like thread counts
  std::uint32_t batch_size_ = kDefaultBatchSize;
  std::vector<std::unique_ptr<msa::StackProfiler>> profilers_;
  std::vector<std::unique_ptr<core::CoreTimer>> timers_;

  partition::Allocation allocation_;
  std::vector<partition::Allocation> allocation_history_;
  std::vector<CoreSnapshot> snapshots_;
  // Session-layer slot state: scheduling eligibility per core (u8, not
  // bool, so it serializes through the flat codec unchanged) and the
  // workload index each slot currently executes (reset_core() moves it off
  // the construction mix).
  std::vector<std::uint8_t> active_;
  std::vector<std::size_t> bound_workloads_;
  // Per-instruction normalization state for epoch profiles (see
  // run_epoch_boundary): total instructions at the last boundary, and an
  // instruction window decayed with the histogram's half-life.
  std::vector<double> last_epoch_instructions_;
  std::vector<double> decayed_instructions_;
  Cycle next_epoch_ = 0;
  std::uint64_t epochs_ = 0;
  // NOLINTNEXTLINE(bacp-snapshot-fields): observability sink, harvested by reporting; reset (not replayed) on restore
  obs::TimeSeries epoch_series_;
  // NOLINTNEXTLINE(bacp-snapshot-fields): interned handles into epoch_series_; re-interned by reset_epoch_tracking() on restore
  EpochSeriesHandles epoch_handles_;
  // NOLINTNEXTLINE(bacp-snapshot-fields): per-epoch delta baseline; reset with the series on restore
  EpochBaseline epoch_baseline_;
};

}  // namespace bacp::sim
