#include "sim/system_config.hpp"

#include "common/assert.hpp"

namespace bacp::sim {

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::NoPartition: return "No-partitions";
    case PolicyKind::EqualPartition: return "Equal-partitions";
    case PolicyKind::BankAware: return "Bank-aware";
  }
  return "?";
}

SystemConfig SystemConfig::baseline() {
  SystemConfig config;
  config.finalize();
  return config;
}

void SystemConfig::finalize() {
  noc.num_cores = geometry.num_cores;
  noc.num_banks = geometry.num_banks;
  profiler.num_sets = sets_per_bank;
  // The profiler stack is as deep as the maximum assignable capacity
  // (paper Section III-A's third reduction technique).
  profiler.profiled_ways = geometry.max_assignable_ways();
  validate();
}

void SystemConfig::validate() const {
  geometry.validate();
  BACP_ASSERT(is_pow2(l1_sets), "l1_sets must be a power of two");
  BACP_ASSERT(l1_ways >= 1, "L1 needs at least one way");
  BACP_ASSERT(is_pow2(sets_per_bank), "sets_per_bank must be a power of two");
  BACP_ASSERT(noc.num_cores == geometry.num_cores, "NoC core count mismatch");
  BACP_ASSERT(noc.num_banks == geometry.num_banks, "NoC bank count mismatch");
  BACP_ASSERT(profiler.num_sets == sets_per_bank, "profiler set count mismatch");
  BACP_ASSERT(epoch_cycles > 0, "epoch_cycles must be positive");
}

}  // namespace bacp::sim
