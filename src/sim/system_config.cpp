#include "sim/system_config.hpp"

#include <bit>
#include <cstdint>

#include "common/assert.hpp"

namespace bacp::sim {

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::NoPartition: return "No-partitions";
    case PolicyKind::EqualPartition: return "Equal-partitions";
    case PolicyKind::BankAware: return "Bank-aware";
    case PolicyKind::External: return "External";
  }
  return "?";
}

SystemConfig SystemConfig::baseline() {
  SystemConfig config;
  config.finalize();
  return config;
}

void SystemConfig::finalize() {
  noc.num_cores = geometry.num_cores;
  noc.num_banks = geometry.num_banks;
  profiler.num_sets = sets_per_bank;
  // The profiler stack is as deep as the maximum assignable capacity
  // (paper Section III-A's third reduction technique).
  profiler.profiled_ways = geometry.max_assignable_ways();
  validate();
}

void SystemConfig::validate() const {
  geometry.validate();
  BACP_ASSERT(is_pow2(l1_sets), "l1_sets must be a power of two");
  BACP_ASSERT(l1_ways >= 1, "L1 needs at least one way");
  BACP_ASSERT(is_pow2(sets_per_bank), "sets_per_bank must be a power of two");
  BACP_ASSERT(noc.num_cores == geometry.num_cores, "NoC core count mismatch");
  BACP_ASSERT(noc.num_banks == geometry.num_banks, "NoC bank count mismatch");
  BACP_ASSERT(profiler.num_sets == sets_per_bank, "profiler set count mismatch");
  BACP_ASSERT(epoch_cycles > 0, "epoch_cycles must be positive");
}

// Fingerprint completeness: the digest below serializes every field of
// SystemConfig and of each nested config struct. These size checks make
// "someone added a field but not a digest line" a compile error instead of
// a silently-stale snapshot cache key. When one fires, extend
// config_digest() with the new field, then update the expected size.
static_assert(sizeof(partition::CmpGeometry) == 12, "extend config_digest()");
static_assert(sizeof(noc::NocConfig) == 32, "extend config_digest()");
static_assert(sizeof(mem::DramConfig) == 16, "extend config_digest()");
static_assert(sizeof(mem::MshrConfig) == 4, "extend config_digest()");
static_assert(sizeof(msa::ProfilerConfig) == 16, "extend config_digest()");
static_assert(sizeof(SystemConfig) == 144, "extend config_digest()");

namespace {

/// Streaming FNV-1a over 64-bit words (each field widened to u64 before
/// hashing, so field widths can change without reshuffling the stream).
class FieldDigest {
 public:
  void u64(std::uint64_t value) {
    for (unsigned shift = 0; shift < 64; shift += 8) {
      hash_ ^= (value >> shift) & 0xFF;
      hash_ *= 0x00000100000001B3ull;
    }
  }
  void f64(double value) { u64(std::bit_cast<std::uint64_t>(value)); }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ull;
};

}  // namespace

namespace {

/// Folds every SystemConfig field into `digest` (the mix-independent half of
/// config_digest(); see the completeness static_asserts above).
void digest_config_fields(FieldDigest& digest, const SystemConfig& config) {
  digest.u64(config.geometry.num_cores);
  digest.u64(config.geometry.num_banks);
  digest.u64(config.geometry.ways_per_bank);
  digest.u64(static_cast<std::uint64_t>(config.policy));
  digest.u64(static_cast<std::uint64_t>(config.aggregation));
  digest.u64(config.l1_sets);
  digest.u64(config.l1_ways);
  digest.u64(config.l1_latency);
  digest.u64(config.sets_per_bank);
  digest.u64(config.noc.num_cores);
  digest.u64(config.noc.num_banks);
  digest.u64(config.noc.cycles_per_hop);
  digest.u64(config.noc.max_hops);
  digest.u64(config.noc.bank_busy_cycles);
  digest.u64(config.dram.access_latency);
  digest.u64(config.dram.cycles_per_line);
  digest.u64(config.mshr.entries_per_core);
  digest.u64(config.profiler.num_sets);
  digest.u64(config.profiler.set_sampling);
  digest.u64(config.profiler.partial_tag_bits);
  digest.u64(config.profiler.profiled_ways);
  digest.u64(config.epoch_cycles);
  digest.u64(config.seed);
  digest.f64(config.gap_jitter);
}

}  // namespace

std::uint64_t config_digest(const SystemConfig& config, const trace::WorkloadMix& mix) {
  FieldDigest digest;
  digest_config_fields(digest, config);
  digest.u64(mix.workload_indices.size());
  for (const std::size_t index : mix.workload_indices) digest.u64(index);
  return digest.value();
}

std::uint64_t config_digest(const SystemConfig& config) {
  FieldDigest digest;
  digest_config_fields(digest, config);
  return digest.value();
}

SystemConfig canonical_warm_config(const SystemConfig& config) {
  SystemConfig canonical = config;
  canonical.policy = PolicyKind::EqualPartition;
  canonical.aggregation = nuca::AggregationKind::Parallel;
  canonical.epoch_cycles = Cycle{1} << 62;
  return canonical;
}

std::uint64_t warm_state_digest(const SystemConfig& config, const trace::WorkloadMix& mix) {
  return config_digest(canonical_warm_config(config), mix);
}

}  // namespace bacp::sim
