#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "mem/dram.hpp"
#include "msa/stack_profiler.hpp"
#include "noc/noc.hpp"
#include "nuca/dnuca_cache.hpp"
#include "partition/partition_types.hpp"
#include "trace/mix.hpp"

namespace bacp::sim {

/// The three partitioning schemes of the paper's detailed evaluation
/// (Section IV-B, Figs. 8 and 9), plus `External` for session-style
/// drivers (bacp::sched) that compute plans above the simulator and
/// install them via System::install_partition() — no epoch boundary ever
/// repartitions on its own under External.
enum class PolicyKind {
  NoPartition,     ///< one shared LRU pool
  EqualPartition,  ///< static private 2 MB per core
  BankAware,       ///< dynamic MSA-driven Bank-aware partitioning
  External,        ///< plans installed by the caller (sched::Service)
};

const char* to_string(PolicyKind kind);

/// Full-system configuration; defaults reproduce Table I (scaled for
/// laptop-length simulations where noted).
struct SystemConfig {
  partition::CmpGeometry geometry;  ///< 8 cores, 16 x 1MB banks, 8-way

  PolicyKind policy = PolicyKind::BankAware;
  nuca::AggregationKind aggregation = nuca::AggregationKind::Parallel;

  // L1: 64 KB, 2-way, 64 B blocks, 3-cycle access (Table I).
  std::uint32_t l1_sets = 512;
  WayCount l1_ways = 2;
  Cycle l1_latency = 3;

  // L2 bank geometry: 1 MB, 8-way, 64 B blocks -> 2048 sets.
  std::uint32_t sets_per_bank = 2048;

  noc::NocConfig noc;    ///< 10..70-cycle bank access window
  mem::DramConfig dram;  ///< 260 cycles, 64 GB/s
  mem::MshrConfig mshr;  ///< 16 outstanding requests / core

  msa::ProfilerConfig profiler;  ///< 12-bit tags, 1-in-32 sets, 72 ways

  /// Repartition interval. The paper uses 100M-cycle epochs over 200M+
  /// instruction slices; the default here is proportionally scaled so the
  /// shipped benchmarks run in seconds. Override for full-length runs.
  Cycle epoch_cycles = 8'000'000;

  std::uint64_t seed = 42;
  double gap_jitter = 0.5;

  /// Table I baseline, with cross-field consistency applied (NoC core/bank
  /// counts and profiler set count follow the geometry).
  static SystemConfig baseline();

  /// Re-derives dependent fields after edits; call before constructing a
  /// System if geometry fields were changed.
  void finalize();

  void validate() const;
};

/// Fingerprint over *every* SystemConfig field plus the workload mix: two
/// (config, mix) pairs warm up to byte-identical state iff their digests
/// match, so the snapshot cache keys on this value and snapshot restore
/// asserts it. The implementation serializes each field explicitly and
/// static_asserts the struct sizes, so adding a config field without
/// extending the digest fails the build (fingerprint completeness).
std::uint64_t config_digest(const SystemConfig& config, const trace::WorkloadMix& mix);

/// Mix-independent fingerprint over every SystemConfig field (the same
/// field stream as above, minus the mix tail). Two Systems with equal
/// digests have identical component shapes — the same flat-array sizes,
/// RNG seeding and policy wiring — so a pooled System built under one
/// config can be reset_in_place() to serve any trial whose config digests
/// equal (harness::SystemPool keys on this).
std::uint64_t config_digest(const SystemConfig& config);

/// The policy-neutral warm-up configuration for --shared-warmup: the same
/// system with EqualPartition/Parallel and an epoch interval no run ever
/// reaches, so no epoch boundary (profiler decay, repartition) fires during
/// warm-up and the warm state is identical for every policy/epoch/aggregation
/// variant sharing the remaining fields.
SystemConfig canonical_warm_config(const SystemConfig& config);

/// config_digest() of canonical_warm_config(): the shared-warmup cache key.
std::uint64_t warm_state_digest(const SystemConfig& config, const trace::WorkloadMix& mix);

}  // namespace bacp::sim
