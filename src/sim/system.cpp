#include "sim/system.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/assert.hpp"
#include "common/stats.hpp"
#include "partition/bank_aware.hpp"
#include "partition/static_policies.hpp"
#include "trace/spec2000.hpp"

namespace bacp::sim {

System::System(const SystemConfig& config, const trace::WorkloadMix& mix)
    : config_(config),
      mix_(mix),
      noc_(config.noc),
      dram_(config.dram),
      directory_(config.geometry.num_cores) {
  config_.validate();
  BACP_ASSERT(mix_.num_cores() == config_.geometry.num_cores,
              "mix size must match the core count");

  nuca::DnucaConfig l2_config;
  l2_config.geometry = config_.geometry;
  l2_config.sets_per_bank = config_.sets_per_bank;
  // The No-partition baseline is the shared CMP-DNUCA itself: hash
  // placement with gradual migration toward the requester (Section II),
  // not a partition-aggregation scheme.
  l2_config.aggregation = config_.policy == PolicyKind::NoPartition
                              ? nuca::AggregationKind::SharedDnuca
                              : config_.aggregation;
  l2_ = std::make_unique<nuca::DnucaCache>(l2_config, noc_);

  const auto& suite = trace::spec2000_suite();
  for (CoreId core = 0; core < config_.geometry.num_cores; ++core) {
    const auto& model = suite.at(mix_.workload_indices[core]);

    cache::SetAssocCache::Config l1_config;
    l1_config.name = "L1.core" + std::to_string(core);
    l1_config.num_sets = config_.l1_sets;
    l1_config.ways = config_.l1_ways;
    l1_config.num_cores = 1;
    l1_.emplace_back(l1_config);

    trace::GeneratorConfig generator_config;
    generator_config.num_sets = config_.sets_per_bank;
    generator_config.max_depth = config_.geometry.total_ways();
    generator_config.core = core;
    generators_.push_back(std::make_unique<trace::SyntheticTraceGenerator>(
        model, generator_config, config_.seed));

    profilers_.push_back(std::make_unique<msa::StackProfiler>(config_.profiler));

    core::CoreTimerConfig timer_config;
    timer_config.base_cpi = model.base_cpi;
    timer_config.instructions_per_l2_access = 1000.0 / model.l2_apki;
    timer_config.mlp_window = std::clamp<std::uint32_t>(
        static_cast<std::uint32_t>(std::lround(model.mlp)), 1,
        config_.mshr.entries_per_core);
    timer_config.gap_jitter = config_.gap_jitter;
    timer_config.seed = config_.seed ^ 0x5175ULL;
    timer_config.core = core;
    timers_.push_back(std::make_unique<core::CoreTimer>(timer_config));
  }

  snapshots_.assign(config_.geometry.num_cores, CoreSnapshot{});
  last_epoch_instructions_.assign(config_.geometry.num_cores, 0.0);
  decayed_instructions_.assign(config_.geometry.num_cores, 0.0);
  apply_policy_plan();
  next_epoch_ = config_.epoch_cycles;
}

void System::apply_policy_plan() {
  switch (config_.policy) {
    case PolicyKind::NoPartition: {
      auto plan = partition::no_partition(config_.geometry);
      // Migration needs distance-ordered views: each core's view leads with
      // its Local bank so hits gradually pull lines toward the requester.
      for (CoreId core = 0; core < config_.geometry.num_cores; ++core) {
        auto& view = plan.assignment.banks_of_core[core];
        std::sort(view.begin(), view.end(), [&](BankId a, BankId b) {
          const auto ha = noc_.hops(core, a);
          const auto hb = noc_.hops(core, b);
          return ha != hb ? ha < hb : a < b;
        });
      }
      l2_->apply_assignment(plan.assignment);
      allocation_ = plan.allocation;
      break;
    }
    case PolicyKind::EqualPartition:
    case PolicyKind::BankAware: {
      // Bank-aware starts from the equal static plan; the first epoch's
      // profiles then drive the first dynamic reassignment.
      const auto plan = partition::equal_partition(config_.geometry);
      l2_->apply_assignment(plan.assignment);
      allocation_ = plan.allocation;
      break;
    }
  }
}

void System::run_epoch_boundary() {
  ++epochs_;
  if (config_.policy == PolicyKind::BankAware) {
    std::vector<msa::MissRatioCurve> curves;
    curves.reserve(profilers_.size());
    for (CoreId core = 0; core < profilers_.size(); ++core) {
      // Normalize each profile to misses-per-megainstruction. Raw per-epoch
      // counts weight cores by wall-clock request rate, which starves slow
      // memory-bound cores in a vicious cycle (few ways -> high CPI ->
      // few samples per epoch -> few ways). Per-instruction weighting is
      // what the paper's equal-instruction-slice evaluation measures. The
      // instruction window decays with the same half-life as the histogram
      // so numerator and denominator cover the same history.
      const double delta =
          timers_[core]->instructions() - last_epoch_instructions_[core];
      last_epoch_instructions_[core] = timers_[core]->instructions();
      const double window = std::max(1.0, decayed_instructions_[core] + delta);
      decayed_instructions_[core] = window * 0.5;
      curves.push_back(profilers_[core]->curve().scaled(1.0e6 / window));
    }
    const auto result = partition::bank_aware_partition(config_.geometry, curves);
    l2_->apply_assignment(result.assignment);
    allocation_ = result.allocation;
    allocation_history_.push_back(result.allocation);
  }
  // Histogram decay keeps the profile tracking the current phase.
  for (auto& profiler : profilers_) profiler->decay();
}

Cycle System::serve_access(CoreId core, Cycle issue_time) {
  const auto access = generators_[core]->next();

  // L1 lookup. The synthetic stream is the L2-intent stream, so L1 hits are
  // rare residual locality; their cost is the L1 latency only.
  if (l1_[core].access(access.block, 0, access.is_write).hit) {
    return issue_time + config_.l1_latency;
  }

  // L1 miss: the profiler shadows the L2 reference stream (Section III-A).
  profilers_[core]->observe(access.block);

  // Coherence: GetS/GetM to the directory. Workload address spaces are
  // disjoint by construction, so cross-core invalidations cannot occur in
  // these runs (the protocol paths are exercised by the unit tests).
  if (access.is_write) {
    directory_.on_l1_write_fill(access.block, core);
  } else {
    directory_.on_l1_read_fill(access.block, core);
  }

  // L2 access.
  const Cycle l2_issue = issue_time + config_.l1_latency;
  auto outcome = l2_->access(access.block, core, access.is_write, l2_issue);
  Cycle data_ready = outcome.ready_at;
  if (!outcome.hit) data_ready = dram_.read(outcome.ready_at);

  // Inclusion: lines that left the L2 recall their L1 copies; dirty data
  // drains to memory. Writebacks are stamped at the bank access time (when
  // the eviction happens), never at the demand data's return time: a
  // future-stamped writeback would ratchet the channel ahead of wall-clock
  // and falsely serialize every later demand read behind it.
  for (const auto& evicted : outcome.evicted) {
    const auto action = directory_.on_l2_evict(evicted.block);
    if (evicted.allocator != kInvalidCore &&
        evicted.allocator < config_.geometry.num_cores) {
      l1_[evicted.allocator].invalidate(evicted.block);
    }
    if (evicted.dirty || action.writeback_below) dram_.writeback(outcome.ready_at);
  }

  // L1 fill; its eviction may push dirty data back into the L2.
  const auto l1_fill = l1_[core].fill(access.block, 0, access.is_write);
  if (l1_fill.evicted) {
    const auto action =
        directory_.on_l1_evict(l1_fill.evicted->block, core, l1_fill.evicted->dirty);
    if (l1_fill.evicted->dirty || action.writeback_below) {
      if (!l2_->writeback_update(l1_fill.evicted->block)) {
        dram_.writeback(outcome.ready_at);
      }
    }
  }

  return data_ready;
}

void System::execute(std::uint64_t instructions_per_core) {
  struct QueueEntry {
    Cycle issue_at;
    CoreId core;
    bool operator>(const QueueEntry& other) const { return issue_at > other.issue_at; }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue;
  // Equal instruction slices (the paper's methodology): each core's access
  // quota follows its APKI, so per-policy total miss counts weight each
  // workload by its real memory intensity.
  const auto& suite = trace::spec2000_suite();
  std::vector<std::uint64_t> remaining(config_.geometry.num_cores);
  for (CoreId core = 0; core < config_.geometry.num_cores; ++core) {
    const double apki = suite.at(mix_.workload_indices[core]).l2_apki;
    remaining[core] = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(static_cast<double>(instructions_per_core) *
                                      apki / 1000.0));
  }
  std::uint32_t unfinished = config_.geometry.num_cores;
  for (CoreId core = 0; core < config_.geometry.num_cores; ++core) {
    queue.push({timers_[core]->peek_issue(), core});
  }

  // Co-scheduled slices: every core keeps executing (and keeps polluting
  // the shared structures and feeding its profiler) until the *slowest*
  // core completes its quota — a fast core finishing early and going quiet
  // would both starve its own profile of samples and unrealistically
  // relieve its co-runners of interference for the tail of the run.
  // Per-core statistics snapshot at quota completion, so reported counts
  // always cover exactly `l2_accesses_per_core` accesses per core.
  while (unfinished > 0) {
    const auto entry = queue.top();
    // Epoch boundaries fire in global time order, before any access that
    // crosses them.
    if (entry.issue_at >= next_epoch_) {
      run_epoch_boundary();
      next_epoch_ += config_.epoch_cycles;
      continue;
    }
    queue.pop();

    const Cycle issue_time = timers_[entry.core]->advance_to_issue();
    const Cycle done_at = serve_access(entry.core, issue_time);
    timers_[entry.core]->record_completion(done_at);

    if (remaining[entry.core] > 0 && --remaining[entry.core] == 0) {
      snapshot_core(entry.core);
      --unfinished;
    }
    if (unfinished > 0) queue.push({timers_[entry.core]->peek_issue(), entry.core});
  }
  for (auto& timer : timers_) timer->drain();
}

void System::snapshot_core(CoreId core) {
  CoreSnapshot snapshot;
  snapshot.instructions = timers_[core]->instructions_since_mark();
  snapshot.cycles = timers_[core]->cycles_since_mark();
  snapshot.cpi = timers_[core]->cpi_since_mark();
  snapshot.l2_hits = l2_->stats().hits[core];
  snapshot.l2_misses = l2_->stats().misses[core];
  snapshot.taken = true;
  snapshots_[core] = snapshot;
}

void System::clear_all_stats() {
  l2_->clear_stats();
  dram_.clear_stats();
  noc_.clear_stats();
  directory_.clear_stats();
  for (auto& timer : timers_) timer->mark();
  snapshots_.assign(config_.geometry.num_cores, CoreSnapshot{});
}

void System::switch_workload(CoreId core, std::string_view workload_name) {
  BACP_ASSERT(core < generators_.size(), "core out of range");
  generators_[core]->switch_model(trace::spec2000_by_name(workload_name));
}

void System::warm_up(std::uint64_t instructions_per_core) {
  execute(instructions_per_core);
  clear_all_stats();
}

void System::run(std::uint64_t instructions_per_core) {
  execute(instructions_per_core);
}

SystemResults System::results() const {
  SystemResults results;
  const auto& suite = trace::spec2000_suite();
  const auto& l2_stats = l2_->stats();
  std::vector<double> cpis;
  std::uint64_t hits_total = 0;
  std::uint64_t misses_total = 0;
  for (CoreId core = 0; core < config_.geometry.num_cores; ++core) {
    CoreResult core_result;
    if (core < snapshots_.size() && snapshots_[core].taken) {
      // Quota snapshot: exactly the core's measurement slice.
      core_result.instructions = snapshots_[core].instructions;
      core_result.cycles = snapshots_[core].cycles;
      core_result.cpi = snapshots_[core].cpi;
      core_result.l2_hits = snapshots_[core].l2_hits;
      core_result.l2_misses = snapshots_[core].l2_misses;
    } else {
      core_result.instructions = timers_[core]->instructions_since_mark();
      core_result.cycles = timers_[core]->cycles_since_mark();
      core_result.cpi = timers_[core]->cpi_since_mark();
      core_result.l2_hits = l2_stats.hits[core];
      core_result.l2_misses = l2_stats.misses[core];
    }
    core_result.allocated_ways = allocation_.ways_per_core.at(core);
    core_result.workload = suite.at(mix_.workload_indices[core]).name.c_str();
    cpis.push_back(core_result.cpi);
    hits_total += core_result.l2_hits;
    misses_total += core_result.l2_misses;
    results.cores.push_back(core_result);
  }
  results.l2_accesses = hits_total + misses_total;
  results.live_l2_accesses = l2_stats.total_hits() + l2_stats.total_misses();
  results.l2_misses = misses_total;
  results.l2_miss_ratio =
      results.l2_accesses == 0
          ? 0.0
          : static_cast<double>(misses_total) / static_cast<double>(results.l2_accesses);
  results.mean_cpi = common::arithmetic_mean(cpis);
  results.epochs = epochs_;
  results.promotions = l2_stats.promotions;
  results.demotions = l2_stats.demotions;
  results.offview_hits = l2_stats.offview_hits;
  results.directory_lookups = l2_stats.directory_lookups;
  results.dram_reads = dram_.stats().demand_reads;
  results.dram_writebacks = dram_.stats().writebacks;
  results.noc_queue_cycles = noc_.stats().total_queue_cycles;
  results.inclusion_recalls = directory_.stats().inclusion_recalls;
  return results;
}

}  // namespace bacp::sim
